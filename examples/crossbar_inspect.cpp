// Inspect the RRAM crossbar substrate directly: program a weight matrix,
// compare ideal vs perturbed/quantized MVM, and relate the crossbar's
// programming variation to the layer-level lognormal model of Eq. (1)-(2).
#include <cmath>
#include <cstdio>

#include "analog/crossbar.h"
#include "tensor/ops.h"

int main() {
  using namespace cn;

  Rng rng(11);
  Tensor w({64, 64});
  rng.fill_normal(w, 0.0f, 0.5f);
  Tensor x({64});
  rng.fill_normal(x, 0.0f, 1.0f);
  Tensor ideal = matvec(w, x);

  auto report = [&](const char* name, const analog::RramDeviceParams& dev) {
    Rng prog_rng(22);
    analog::CrossbarArray xbar(w, dev, prog_rng, 32);
    Tensor y = xbar.matvec(x);
    double err = 0.0, ref = 0.0;
    for (int64_t i = 0; i < y.size(); ++i) {
      err += (y[i] - ideal[i]) * (y[i] - ideal[i]);
      ref += ideal[i] * ideal[i];
    }
    std::printf("  %-38s rel. MVM error %.4f  (%lld tiles)\n", name,
                std::sqrt(err / ref), static_cast<long long>(xbar.num_tiles()));
  };

  std::printf("crossbar MVM vs ideal matvec (64x64 weights, differential pairs):\n");
  analog::RramDeviceParams dev;
  report("ideal device", dev);

  dev.conductance_levels = 16;
  report("16-level conductance quantization", dev);

  dev.conductance_levels = 0;
  dev.program_sigma = 0.1f;
  report("programming variation sigma=0.1", dev);

  dev.program_sigma = 0.5f;
  report("programming variation sigma=0.5", dev);

  dev.program_sigma = 0.0f;
  dev.readout.adc_bits = 6;
  report("6-bit ADC readout", dev);

  dev.readout.adc_bits = 0;
  dev.readout.dac_bits = 4;
  report("4-bit DAC inputs", dev);

  // Relate crossbar programming variation to the weight-level factors the
  // training pipeline uses (DESIGN.md: the fast path injects factors
  // directly; the crossbar validates the substrate).
  std::printf("\neffective-weight deviation at sigma=0.3 vs lognormal theory:\n");
  analog::RramDeviceParams vdev;
  vdev.program_sigma = 0.3f;
  Rng prog_rng(33);
  analog::CrossbarArray xbar(w, vdev, prog_rng, 64);
  Tensor w_eff = xbar.effective_weights();
  double mean_ratio = 0.0;
  int64_t count = 0;
  for (int64_t i = 0; i < w.size(); ++i) {
    if (std::fabs(w[i]) > 0.2f) {
      mean_ratio += w_eff[i] / w[i];
      ++count;
    }
  }
  std::printf("  mean(w_eff / w) = %.3f, lognormal E[e^theta] = %.3f\n",
              mean_ratio / count, std::exp(0.3 * 0.3 / 2.0));
  return 0;
}
