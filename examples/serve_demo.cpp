// serve_demo: the inference runtime end to end — train a small model, spin
// up a ChipFarm of variation-afflicted chip instances, serve concurrent
// clients through the micro-batching InferenceServer, and print the full
// stats snapshot (throughput plus p50/p99/p999 latency percentiles).
#include <cstdio>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "core/trainer.h"
#include "data/synthetic.h"
#include "models/lenet.h"
#include "obs/metrics.h"
#include "runtime/chip_farm.h"
#include "runtime/inference_server.h"
#include "tensor/ops.h"

int main() {
  using namespace cn;
  obs::init_from_env();  // CORRECTNET_METRICS / _TRACE / _LOG hookup
  std::printf("== serve_demo: micro-batched inference over a chip farm ==\n");

  data::DigitsSpec spec;
  spec.train_count = 600;
  spec.test_count = 200;
  data::SplitDataset ds = data::make_digits(spec);
  Rng rng(7);
  nn::Sequential model = models::lenet5(1, 28, 10, rng);
  core::TrainConfig cfg;
  cfg.epochs = 2;
  std::printf("[train] LeNet5 on synthetic digits (%d epochs)...\n", cfg.epochs);
  core::train(model, ds.train, ds.test, cfg);
  std::printf("[train] clean test accuracy: %.3f\n", core::evaluate(model, ds.test));

  // A farm of chips, each with its own sampled programming variation — the
  // traffic is spread over instances the way a real deployment would spread
  // it over dies.
  analog::VariationModel vm{analog::VariationKind::kLognormal, 0.2f};
  runtime::ChipFarmOptions fo;
  fo.instances = 2;
  fo.max_live = 2;
  fo.seed = 42;
  runtime::ChipFarm farm(model, vm, fo);

  runtime::InferenceServerOptions so;
  so.max_batch = 16;
  so.max_wait_us = 1500;
  so.workers = 2;
  runtime::InferenceServer server(farm, so);

  constexpr int kClients = 3;
  const int64_t per_client = ds.test.size() / kClients;
  std::printf("[serve] %d clients x %lld requests, max_batch=%lld, "
              "max_wait=%lldus, workers=%d\n",
              kClients, static_cast<long long>(per_client),
              static_cast<long long>(so.max_batch),
              static_cast<long long>(so.max_wait_us), so.workers);

  std::mutex mu;
  std::vector<std::pair<int64_t, std::future<Tensor>>> futs;
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c)
    clients.emplace_back([&, c] {
      for (int64_t i = 0; i < per_client; ++i) {
        const int64_t idx = c * per_client + i;
        auto fut = server.submit(ds.test.image(idx));
        std::lock_guard<std::mutex> lk(mu);
        futs.emplace_back(idx, std::move(fut));
      }
    });
  for (auto& c : clients) c.join();

  int64_t correct = 0;
  for (auto& [idx, fut] : futs) {
    Tensor logits = fut.get();
    logits.reshape({1, logits.size()});
    if (argmax_row(logits, 0) == ds.test.labels[static_cast<size_t>(idx)]) ++correct;
  }
  server.shutdown();

  // The one formatting of the stats snapshot — percentiles included — lives
  // on ServerStats itself; no more hand-rolled averages here.
  const runtime::ServerStats st = server.stats();
  std::printf("[serve] %s\n", st.summary().c_str());
  std::printf("[serve] accuracy under variation: %.3f\n",
              static_cast<double>(correct) / static_cast<double>(futs.size()));
  std::printf("done.\n");
  return 0;
}
