// serve_demo: the inference runtime end to end — train a small model, spin
// up a ChipFarm of variation-afflicted chip instances, serve concurrent
// clients through the micro-batching InferenceServer, and print the full
// stats snapshot (throughput plus p50/p99/p999 latency percentiles and the
// SLO burn-rate line when an objective is set).
//
// Serving-policy mode (any of --models/--config/--drill) swaps the single
// server for a ModelRouter: one lane per model id under a shared live-slot
// budget, per-model admission control, and an optional mid-traffic fault
// drill — N workers of one lane degraded/remapped/evicted between two
// traffic phases while /healthz is queried through the degraded window.
//
// Flags (all optional):
//   --statusz-port N     serve /metrics, /healthz, /statusz on 127.0.0.1:N
//                        while the demo runs (0 = ephemeral; port printed)
//   --linger-s S         keep the process (and the exposition server) alive S
//                        seconds after serving finishes — lets `curl` inspect
//                        the endpoints post-run (CI does exactly this)
//   --slo-p99-ms X       latency objective p99 < X ms (default 50; 0 = off)
//   --models a,b         serving-policy mode: route across these model ids
//   --config FILE        serving-policy mode: key=value serving config
//                        (docs/CONFIG.md serving table); flags override
//   --queue-limit N      admission: bounded per-model queue
//   --queue-budget-us N  admission: estimated-wait latency budget
//   --drill RATE         mid-traffic stuck-at drill at this cell-fault rate
//   --drill-action A     degrade | evict | remap (default remap)
//   --drill-hold-s S     hold the process S seconds inside the degraded
//                        window (statusz live) so an external prober can
//                        watch /healthz through it
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <future>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/config.h"
#include "core/trainer.h"
#include "data/synthetic.h"
#include "faultsim/fault_models.h"
#include "models/lenet.h"
#include "obs/exposition.h"
#include "obs/metrics.h"
#include "obs/slo.h"
#include "runtime/chip_farm.h"
#include "runtime/inference_server.h"
#include "runtime/model_router.h"
#include "runtime/serving_config.h"
#include "tensor/ops.h"

namespace {

struct PhaseResult {
  int64_t ok = 0;        // futures that resolved with an output
  int64_t rejected = 0;  // admission-rejected (typed Overloaded)
  int64_t failed = 0;    // any other future failure — must stay 0
  int64_t correct = 0;   // of ok, correctly classified
};

// One traffic phase: `count` requests round-robined across the router's
// models from 3 client threads, then every future drained.
PhaseResult run_phase(cn::runtime::ModelRouter& router,
                      const std::vector<std::string>& ids,
                      const cn::data::Dataset& test, int64_t count) {
  using cn::Tensor;
  constexpr int kClients = 3;
  std::mutex mu;
  std::vector<std::tuple<int64_t, std::future<Tensor>>> futs;
  std::vector<std::thread> clients;
  const int64_t per_client = count / kClients;
  for (int c = 0; c < kClients; ++c)
    clients.emplace_back([&, c] {
      for (int64_t i = 0; i < per_client; ++i) {
        const int64_t n = c * per_client + i;
        const int64_t idx = n % test.size();
        const std::string& id = ids[static_cast<size_t>(n) % ids.size()];
        auto fut = router.submit(id, test.image(idx));
        std::lock_guard<std::mutex> lk(mu);
        futs.emplace_back(idx, std::move(fut));
      }
    });
  for (auto& c : clients) c.join();
  PhaseResult r;
  for (auto& [idx, fut] : futs) {
    try {
      Tensor logits = fut.get();
      logits.reshape({1, logits.size()});
      ++r.ok;
      if (cn::argmax_row(logits, 0) == test.labels[static_cast<size_t>(idx)])
        ++r.correct;
    } catch (const cn::runtime::Overloaded&) {
      ++r.rejected;
    } catch (const std::exception& e) {
      if (r.failed == 0)
        std::fprintf(stderr, "[serve] FAILED future: %s\n", e.what());
      ++r.failed;
    }
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cn;
  obs::init_from_env();  // CORRECTNET_METRICS / _TRACE / _LOG / _STATUSZ_PORT...

  int64_t statusz_port = -1;
  double linger_s = 0;
  double slo_p99_ms = 50;  // small-model latencies are sub-ms; 50ms = healthy
  std::string models_flag, config_path, drill_action_flag;
  int64_t queue_limit = -1, queue_budget_us = -1;
  double drill_rate = 0;
  double drill_hold_s = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string k = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr,
                     "usage: %s [--statusz-port N] [--linger-s S] "
                     "[--slo-p99-ms X] [--models a,b] [--config FILE] "
                     "[--queue-limit N] [--queue-budget-us N] [--drill RATE] "
                     "[--drill-action degrade|evict|remap] [--drill-hold-s S]\n",
                     argv[0]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (k == "--statusz-port") statusz_port = std::atoll(next());
    else if (k == "--linger-s") linger_s = std::atof(next());
    else if (k == "--slo-p99-ms") slo_p99_ms = std::atof(next());
    else if (k == "--models") models_flag = next();
    else if (k == "--config") config_path = next();
    else if (k == "--queue-limit") queue_limit = std::atoll(next());
    else if (k == "--queue-budget-us") queue_budget_us = std::atoll(next());
    else if (k == "--drill") drill_rate = std::atof(next());
    else if (k == "--drill-action") drill_action_flag = next();
    else if (k == "--drill-hold-s") drill_hold_s = std::atof(next());
    else {
      std::fprintf(stderr, "%s: unknown flag %s\n", argv[0], k.c_str());
      return 2;
    }
  }
  const bool policy_mode =
      !models_flag.empty() || !config_path.empty() || drill_rate > 0;

  std::printf("== serve_demo: micro-batched inference over a chip farm ==\n");
  if (statusz_port >= 0) {
    obs::ExpositionServer& srv =
        obs::ExpositionServer::start_global(static_cast<int>(statusz_port));
    std::printf("[obs] statusz on http://127.0.0.1:%d (/metrics /healthz "
                "/statusz) — not ready until the farm is programmed\n",
                srv.port());
  }

  data::DigitsSpec spec;
  spec.train_count = 600;
  spec.test_count = 200;
  data::SplitDataset ds = data::make_digits(spec);
  Rng rng(7);
  nn::Sequential model = models::lenet5(1, 28, 10, rng);
  core::TrainConfig cfg;
  cfg.epochs = 2;
  std::printf("[train] LeNet5 on synthetic digits (%d epochs)...\n", cfg.epochs);
  core::train(model, ds.train, ds.test, cfg);
  std::printf("[train] clean test accuracy: %.3f\n", core::evaluate(model, ds.test));

  if (policy_mode) {
    // ---- serving-policy mode: ModelRouter + admission + fault drill ----
    core::KeyValueConfig kcfg;
    if (!config_path.empty()) kcfg = core::KeyValueConfig::from_file(config_path);
    if (!models_flag.empty()) kcfg.set("models", models_flag);
    if (queue_limit >= 0) kcfg.set("queue_limit", std::to_string(queue_limit));
    if (queue_budget_us >= 0)
      kcfg.set("queue_budget_us", std::to_string(queue_budget_us));
    if (drill_rate > 0) {
      kcfg.set("drill.kind", "stuck_at");
      kcfg.set("drill.severity", std::to_string(drill_rate));
    }
    if (!drill_action_flag.empty()) kcfg.set("drill.action", drill_action_flag);
    const runtime::ServingConfig sc = runtime::serving_from_config(kcfg);

    runtime::ModelRouterOptions ro;
    ro.max_live_total = sc.live_slots;
    runtime::ModelRouter router(ro);
    const bool crossbar = !sc.drill_kind.empty();
    for (size_t m = 0; m < sc.models.size(); ++m) {
      runtime::ChipFarmOptions fo;
      fo.instances = sc.chips;
      fo.max_live = sc.chips;  // explicit: don't let a small machine's pool
                               // clamp the lane below its configured chips
      fo.seed = 42 + m;
      runtime::InferenceServerOptions so;
      so.max_batch = sc.max_batch;
      so.max_wait_us = sc.max_wait_us;
      so.workers = static_cast<int>(sc.workers);
      so.queue_limit = sc.queue_limit;
      so.queue_budget_us = sc.queue_budget_us;
      so.admission_burn_max = sc.admission_burn_max;
      so.slo_p99_ms = sc.slo_p99_ms > 0 ? sc.slo_p99_ms : slo_p99_ms;
      if (crossbar) {
        // Drills inject device faults: lanes need the crossbar substrate.
        analog::RramDeviceParams dev;
        dev.program_sigma = 0.1f;
        router.add_model(sc.models[m], model, dev, fo, so);
      } else {
        analog::VariationModel vm{analog::VariationKind::kLognormal, 0.2f};
        router.add_model(sc.models[m], model, vm, fo, so);
      }
    }
    std::printf("[router] %zu models (%s), %lld live slots used, "
                "workers=%lld, max_batch=%lld, queue_limit=%lld, "
                "queue_budget=%lldus\n",
                sc.models.size(), crossbar ? "crossbar" : "factor",
                static_cast<long long>(router.live_slots_used()),
                static_cast<long long>(sc.workers),
                static_cast<long long>(sc.max_batch),
                static_cast<long long>(sc.queue_limit),
                static_cast<long long>(sc.queue_budget_us));

    const int64_t phase_requests = 3 * ds.test.size();
    const PhaseResult before =
        run_phase(router, sc.models, ds.test, phase_requests);
    std::printf("[serve] phase 1: %lld ok, %lld rejected, %lld failed, "
                "accuracy %.3f\n",
                static_cast<long long>(before.ok),
                static_cast<long long>(before.rejected),
                static_cast<long long>(before.failed),
                before.ok ? static_cast<double>(before.correct) /
                                static_cast<double>(before.ok)
                          : 0.0);

    PhaseResult after;
    if (!sc.drill_kind.empty()) {
      const faultsim::FaultSpec fault =
          faultsim::make_fault(sc.drill_kind, sc.drill_severity);
      runtime::DrillSpec drill;
      drill.action = sc.drill_action == "evict"
                         ? runtime::DrillSpec::Action::kEvict
                     : sc.drill_action == "degrade"
                         ? runtime::DrillSpec::Action::kDegrade
                         : runtime::DrillSpec::Action::kRemap;
      for (int64_t w : sc.drill_workers)
        drill.workers.push_back(static_cast<int>(w));
      drill.faults = fault.models;
      const std::string& victim = sc.models.front();
      std::printf("[drill] %s worker(s) of model \"%s\": %s severity %g "
                  "mid-traffic\n",
                  sc.drill_action.c_str(), victim.c_str(),
                  sc.drill_kind.c_str(), sc.drill_severity);
      router.drill(victim, drill);
      after = run_phase(router, sc.models, ds.test, phase_requests);
      if (obs::ExpositionServer* srv = obs::ExpositionServer::global()) {
        int code = 0;
        srv->handle("/healthz", &code);
        std::printf("[drill] healthz during drill: %d\n", code);
      }
      if (drill_hold_s > 0) {
        std::printf("[drill] holding degraded window %.1fs for external "
                    "probes...\n",
                    drill_hold_s);
        std::fflush(stdout);
        std::this_thread::sleep_for(std::chrono::duration<double>(drill_hold_s));
      }
      std::printf("[serve] phase 2 (degraded): %lld ok, %lld rejected, "
                  "%lld failed, accuracy %.3f\n",
                  static_cast<long long>(after.ok),
                  static_cast<long long>(after.rejected),
                  static_cast<long long>(after.failed),
                  after.ok ? static_cast<double>(after.correct) /
                                 static_cast<double>(after.ok)
                           : 0.0);
    }

    for (const auto& [id, st] : router.stats())
      std::printf("[serve] model %s:\n%s\n", id.c_str(), st.summary().c_str());
    const long long failed =
        static_cast<long long>(before.failed + after.failed);
    std::printf("[serve] failed futures: %lld\n", failed);

    if (linger_s > 0) {
      std::printf("[obs] lingering %.1fs for endpoint inspection...\n",
                  linger_s);
      std::fflush(stdout);
      std::this_thread::sleep_for(std::chrono::duration<double>(linger_s));
    }
    std::printf("done.\n");
    return failed == 0 ? 0 : 1;
  }

  // ---- classic single-model path (unlabeled server.* metrics) ----
  // A farm of chips, each with its own sampled programming variation — the
  // traffic is spread over instances the way a real deployment would spread
  // it over dies.
  analog::VariationModel vm{analog::VariationKind::kLognormal, 0.2f};
  runtime::ChipFarmOptions fo;
  fo.instances = 2;
  fo.max_live = 2;
  fo.seed = 42;
  runtime::ChipFarm farm(model, vm, fo);

  runtime::InferenceServerOptions so;
  so.max_batch = 16;
  so.max_wait_us = 1500;
  so.workers = 2;
  so.slo_p99_ms = slo_p99_ms;  // server ctor flips /healthz to ready
  runtime::InferenceServer server(farm, so);

  constexpr int kClients = 3;
  const int64_t per_client = ds.test.size() / kClients;
  std::printf("[serve] %d clients x %lld requests, max_batch=%lld, "
              "max_wait=%lldus, workers=%d\n",
              kClients, static_cast<long long>(per_client),
              static_cast<long long>(so.max_batch),
              static_cast<long long>(so.max_wait_us), so.workers);

  std::mutex mu;
  std::vector<std::pair<int64_t, std::future<Tensor>>> futs;
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c)
    clients.emplace_back([&, c] {
      for (int64_t i = 0; i < per_client; ++i) {
        const int64_t idx = c * per_client + i;
        auto fut = server.submit(ds.test.image(idx));
        std::lock_guard<std::mutex> lk(mu);
        futs.emplace_back(idx, std::move(fut));
      }
    });
  for (auto& c : clients) c.join();

  int64_t correct = 0;
  for (auto& [idx, fut] : futs) {
    Tensor logits = fut.get();
    logits.reshape({1, logits.size()});
    if (argmax_row(logits, 0) == ds.test.labels[static_cast<size_t>(idx)]) ++correct;
  }

  // The one formatting of the stats snapshot — percentiles included — lives
  // on ServerStats itself; no more hand-rolled averages here. The server is
  // NOT shut down before the linger: shutdown clears /healthz readiness
  // (refcounted, see InferenceServer::shutdown), and the linger exists
  // precisely so external probes can watch a live, ready server.
  const runtime::ServerStats st = server.stats();
  std::printf("[serve] %s\n", st.summary().c_str());
  std::printf("[serve] accuracy under variation: %.3f\n",
              static_cast<double>(correct) / static_cast<double>(futs.size()));

  if (linger_s > 0) {
    // The server object (and its /statusz section) stays alive through the
    // linger so curl sees the full page.
    std::printf("[obs] lingering %.1fs for endpoint inspection...\n", linger_s);
    std::fflush(stdout);
    std::this_thread::sleep_for(std::chrono::duration<double>(linger_s));
  }
  std::printf("done.\n");
  return 0;
}
