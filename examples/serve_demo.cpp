// serve_demo: the inference runtime end to end — train a small model, spin
// up a ChipFarm of variation-afflicted chip instances, serve concurrent
// clients through the micro-batching InferenceServer, and print the full
// stats snapshot (throughput plus p50/p99/p999 latency percentiles and the
// SLO burn-rate line when an objective is set).
//
// Flags (all optional):
//   --statusz-port N   serve /metrics, /healthz, /statusz on 127.0.0.1:N
//                      while the demo runs (0 = ephemeral; port is printed)
//   --linger-s S       keep the process (and the exposition server) alive S
//                      seconds after serving finishes — lets `curl` inspect
//                      the endpoints post-run (CI does exactly this)
//   --slo-p99-ms X     latency objective p99 < X ms (default 50; 0 = off)
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "core/trainer.h"
#include "data/synthetic.h"
#include "models/lenet.h"
#include "obs/exposition.h"
#include "obs/metrics.h"
#include "obs/slo.h"
#include "runtime/chip_farm.h"
#include "runtime/inference_server.h"
#include "tensor/ops.h"

int main(int argc, char** argv) {
  using namespace cn;
  obs::init_from_env();  // CORRECTNET_METRICS / _TRACE / _LOG / _STATUSZ_PORT...

  int64_t statusz_port = -1;
  double linger_s = 0;
  double slo_p99_ms = 50;  // small-model latencies are sub-ms; 50ms = healthy
  for (int i = 1; i < argc; ++i) {
    const std::string k = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr,
                     "usage: %s [--statusz-port N] [--linger-s S] "
                     "[--slo-p99-ms X]\n",
                     argv[0]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (k == "--statusz-port") statusz_port = std::atoll(next());
    else if (k == "--linger-s") linger_s = std::atof(next());
    else if (k == "--slo-p99-ms") slo_p99_ms = std::atof(next());
    else {
      std::fprintf(stderr, "%s: unknown flag %s\n", argv[0], k.c_str());
      return 2;
    }
  }

  std::printf("== serve_demo: micro-batched inference over a chip farm ==\n");
  if (statusz_port >= 0) {
    obs::ExpositionServer& srv =
        obs::ExpositionServer::start_global(static_cast<int>(statusz_port));
    std::printf("[obs] statusz on http://127.0.0.1:%d (/metrics /healthz "
                "/statusz) — not ready until the farm is programmed\n",
                srv.port());
  }

  data::DigitsSpec spec;
  spec.train_count = 600;
  spec.test_count = 200;
  data::SplitDataset ds = data::make_digits(spec);
  Rng rng(7);
  nn::Sequential model = models::lenet5(1, 28, 10, rng);
  core::TrainConfig cfg;
  cfg.epochs = 2;
  std::printf("[train] LeNet5 on synthetic digits (%d epochs)...\n", cfg.epochs);
  core::train(model, ds.train, ds.test, cfg);
  std::printf("[train] clean test accuracy: %.3f\n", core::evaluate(model, ds.test));

  // A farm of chips, each with its own sampled programming variation — the
  // traffic is spread over instances the way a real deployment would spread
  // it over dies.
  analog::VariationModel vm{analog::VariationKind::kLognormal, 0.2f};
  runtime::ChipFarmOptions fo;
  fo.instances = 2;
  fo.max_live = 2;
  fo.seed = 42;
  runtime::ChipFarm farm(model, vm, fo);

  runtime::InferenceServerOptions so;
  so.max_batch = 16;
  so.max_wait_us = 1500;
  so.workers = 2;
  so.slo_p99_ms = slo_p99_ms;  // server ctor flips /healthz to ready
  runtime::InferenceServer server(farm, so);

  constexpr int kClients = 3;
  const int64_t per_client = ds.test.size() / kClients;
  std::printf("[serve] %d clients x %lld requests, max_batch=%lld, "
              "max_wait=%lldus, workers=%d\n",
              kClients, static_cast<long long>(per_client),
              static_cast<long long>(so.max_batch),
              static_cast<long long>(so.max_wait_us), so.workers);

  std::mutex mu;
  std::vector<std::pair<int64_t, std::future<Tensor>>> futs;
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c)
    clients.emplace_back([&, c] {
      for (int64_t i = 0; i < per_client; ++i) {
        const int64_t idx = c * per_client + i;
        auto fut = server.submit(ds.test.image(idx));
        std::lock_guard<std::mutex> lk(mu);
        futs.emplace_back(idx, std::move(fut));
      }
    });
  for (auto& c : clients) c.join();

  int64_t correct = 0;
  for (auto& [idx, fut] : futs) {
    Tensor logits = fut.get();
    logits.reshape({1, logits.size()});
    if (argmax_row(logits, 0) == ds.test.labels[static_cast<size_t>(idx)]) ++correct;
  }
  server.shutdown();

  // The one formatting of the stats snapshot — percentiles included — lives
  // on ServerStats itself; no more hand-rolled averages here.
  const runtime::ServerStats st = server.stats();
  std::printf("[serve] %s\n", st.summary().c_str());
  std::printf("[serve] accuracy under variation: %.3f\n",
              static_cast<double>(correct) / static_cast<double>(futs.size()));

  if (linger_s > 0) {
    // The server object (and its /statusz section) stays alive through the
    // linger so curl sees the full page.
    std::printf("[obs] lingering %.1fs for endpoint inspection...\n", linger_s);
    std::fflush(stdout);
    std::this_thread::sleep_for(std::chrono::duration<double>(linger_s));
  }
  std::printf("done.\n");
  return 0;
}
