// Command-line front end for the CorrectNet pipeline.
//
// Usage:
//   correctnet_cli [--net lenet|vgg] [--dataset digits|objects10|objects100]
//                  [--sigma 0.5] [--epochs 6] [--comp-epochs 5]
//                  [--beta 3e-2] [--lambda-min 0] [--warmup 0]
//                  [--ratio 0.5] [--max-layers 4] [--mc 15] [--rl]
//                  [--train N] [--test N] [--save-prefix PATH]
//                  [--metrics-out F] [--trace-out F] [--log-level L]
//
// Runs baseline -> suppression -> sensitivity -> compensation -> Monte-Carlo
// and prints a summary; optionally saves the trained weights.
//
// Subcommand:
//   correctnet_cli faults [--config PATH] [--out PATH] [--chips N]
//                         [--epochs N] [--comp-epochs N] [--train N] [--test N]
//                         [--sigma S] [--target NAME] [--fusion on|off]
//                         [--metrics-out F] [--trace-out F]
//                         [--log-level quiet|info|debug] [--quiet]
//
// `--list-targets` prints the execution-target registry (src/exec/target.h);
// `--target NAME` selects the target crossbar farms execute with (main
// command: process default; faults subcommand: the campaign `target` key).
// `--fusion on|off` steers the layer-graph fusion knob the same way (main:
// nn::set_fusion_enabled process default; faults: the campaign `fusion` key).
// CORRECTNET_FUSION does the same from the environment; default on.
//
// Observability (docs/OBSERVABILITY.md): `--metrics-out F` writes the
// MetricsRegistry snapshot, `--trace-out F` enables the span tracer and
// writes Chrome trace_event JSON, `--log-level` / `--quiet` steer the obs
// Logger (faults defaults to debug so per-scenario progress stays visible).
// `--statusz-port N` serves /metrics, /healthz and /statusz live over HTTP
// (0 = ephemeral port), `--metrics-stream F` appends 1 Hz interval-delta
// JSONL snapshots, and `--version` prints the build identity line.
// CORRECTNET_METRICS / CORRECTNET_TRACE / CORRECTNET_LOG (plus
// CORRECTNET_STATUSZ_PORT / CORRECTNET_METRICS_STREAM / CORRECTNET_SLO_P99_MS
// / CORRECTNET_SIGNAL_FLUSH) do the same from the environment. None of it
// changes results: every report is byte-identical with metrics and tracing
// on or off.
//
// Trains the CorrectNet pipeline, then drives a faultsim::Campaign — device
// faults (stuck-at cells, conductance drift, IR drop, temperature) swept
// against the baseline, suppression-only, and compensated networks on the
// crossbar substrate — and writes a JSON CampaignReport. The scenario grid
// comes from a key=value config file (see examples/fault_campaign.cfg); a
// built-in quick grid is used when --config is omitted.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "core/pipeline.h"
#include "data/synthetic.h"
#include "exec/target.h"
#include "faultsim/campaign.h"
#include "models/lenet.h"
#include "models/vgg.h"
#include "nn/fusion.h"
#include "nn/serialize.h"
#include "obs/build_info.h"
#include "obs/exposition.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/snapshot_stream.h"
#include "obs/trace.h"
#include "runtime/scheduler.h"

namespace {

struct Args {
  std::string net = "lenet";
  std::string dataset = "digits";
  float sigma = 0.5f;
  int epochs = 6;
  int comp_epochs = 5;
  float beta = 3e-2f;
  float lambda_min = 0.0f;
  int warmup = 0;
  float ratio = 0.5f;
  int max_layers = 4;
  int mc = 15;
  bool rl = false;
  int64_t train = 2500;
  int64_t test = 600;
  std::string save_prefix;
  std::string target;  // crossbar execution target (process default override)
  std::string fusion;  // on|off: layer-graph fusion (process default override)
  std::string metrics_out;  // write the metrics snapshot here at the end
  std::string trace_out;    // enable tracing, write Chrome trace JSON here
  std::string log_level;    // quiet|info|debug; empty = leave the default
  int64_t statusz_port = -1;   // >= 0: start the exposition server (0 = ephemeral)
  std::string metrics_stream;  // start the JSONL metrics snapshotter here
};

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--net lenet|vgg] [--dataset digits|objects10|objects100]\n"
               "          [--sigma S] [--epochs N] [--comp-epochs N] [--beta B]\n"
               "          [--lambda-min L] [--warmup N] [--ratio R] [--max-layers N]\n"
               "          [--mc N] [--rl] [--train N] [--test N] [--save-prefix P]\n"
               "          [--target NAME] [--fusion on|off]\n"
               "          [--metrics-out F] [--trace-out F]\n"
               "          [--log-level quiet|info|debug]\n"
               "          [--statusz-port N] [--metrics-stream F]\n"
               "       %s --list-targets\n"
               "       %s --version\n",
               argv0, argv0, argv0);
  std::exit(2);
}

// Sets the process-wide default execution target (everything that programs
// crossbars after this — campaign farms, demo runs — lowers through it).
void apply_target(const char* argv0, const std::string& name) {
  try {
    cn::exec::set_default_target(name);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s: %s\n", argv0, e.what());
    std::exit(2);
  }
}

// Sets the process-wide layer-graph fusion override (nn::fusion_enabled
// gates every eval-mode Sequential::forward after this).
void apply_fusion(const char* argv0, const std::string& v) {
  if (v == "on" || v == "1") cn::nn::set_fusion_enabled(true);
  else if (v == "off" || v == "0") cn::nn::set_fusion_enabled(false);
  else {
    std::fprintf(stderr, "%s: --fusion expects on|off, got '%s'\n", argv0,
                 v.c_str());
    std::exit(2);
  }
}

int list_targets() {
  const std::string def = cn::exec::default_target().name();
  std::printf("registered execution targets (* = default):\n");
  for (const cn::exec::Target* t : cn::exec::registered_targets())
    std::printf("%c %-14s %-12s %-10s %s\n", t->name() == def ? '*' : ' ',
                t->name().c_str(), t->available() ? "available" : "unavailable",
                t->bit_exact() ? "bit-exact" : "approx",
                t->description().c_str());
  return 0;
}

Args parse(int argc, char** argv) {
  Args a;
  for (int i = 1; i < argc; ++i) {
    const std::string k = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (k == "--net") a.net = next();
    else if (k == "--dataset") a.dataset = next();
    else if (k == "--sigma") a.sigma = std::strtof(next(), nullptr);
    else if (k == "--epochs") a.epochs = std::atoi(next());
    else if (k == "--comp-epochs") a.comp_epochs = std::atoi(next());
    else if (k == "--beta") a.beta = std::strtof(next(), nullptr);
    else if (k == "--lambda-min") a.lambda_min = std::strtof(next(), nullptr);
    else if (k == "--warmup") a.warmup = std::atoi(next());
    else if (k == "--ratio") a.ratio = std::strtof(next(), nullptr);
    else if (k == "--max-layers") a.max_layers = std::atoi(next());
    else if (k == "--mc") a.mc = std::atoi(next());
    else if (k == "--rl") a.rl = true;
    else if (k == "--train") a.train = std::atoll(next());
    else if (k == "--test") a.test = std::atoll(next());
    else if (k == "--save-prefix") a.save_prefix = next();
    else if (k == "--target") a.target = next();
    else if (k == "--fusion") a.fusion = next();
    else if (k == "--metrics-out") a.metrics_out = next();
    else if (k == "--trace-out") a.trace_out = next();
    else if (k == "--log-level") a.log_level = next();
    else if (k == "--statusz-port") a.statusz_port = std::atoll(next());
    else if (k == "--metrics-stream") a.metrics_stream = next();
    else usage(argv[0]);
  }
  return a;
}

// ---------- faults subcommand ----------

struct FaultArgs {
  std::string config;  // key=value campaign file; empty = built-in quick grid
  std::string target;  // overrides the config's `target` key
  std::string fusion;  // on|off: overrides the config's `fusion` key
  std::string out = "faultsim_report.json";
  int64_t chips = 0;  // >0 overrides the config's chip count
  bool remap = false; // force the fault-aware remapping axis on
  bool parallel_set = false;  // --parallel given: override parallel_scenarios
  int64_t parallel = 0;       // passed through verbatim — negatives must throw
  int epochs = 3;
  int comp_epochs = 3;
  float sigma = 0.5f;
  int64_t train = 800;
  int64_t test = 200;
  std::string metrics_out;  // campaign `metrics_out` key override
  std::string trace_out;    // campaign `trace_out` key override
  std::string log_level;    // campaign `log_level` key override
  bool quiet = false;       // shorthand for --log-level quiet (wins)
  bool statusz_set = false;   // --statusz-port given: override `statusz_port`
  int64_t statusz_port = -1;  // passed through verbatim (ctor validates)
  std::string metrics_stream; // campaign `metrics_stream` key override
};

[[noreturn]] void usage_faults(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s faults [--config PATH] [--out PATH] [--chips N]\n"
               "          [--epochs N] [--comp-epochs N] [--train N] [--test N]\n"
               "          [--sigma S] [--remap] [--parallel N] [--target NAME]\n"
               "          [--fusion on|off] [--metrics-out F] [--trace-out F]\n"
               "          [--log-level quiet|info|debug] [--quiet]\n"
               "          [--statusz-port N] [--metrics-stream F]\n",
               argv0);
  std::exit(2);
}

FaultArgs parse_faults(int argc, char** argv) {
  FaultArgs a;
  for (int i = 2; i < argc; ++i) {
    const std::string k = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage_faults(argv[0]);
      return argv[++i];
    };
    if (k == "--config") a.config = next();
    else if (k == "--target") a.target = next();
    else if (k == "--fusion") a.fusion = next();
    else if (k == "--out") a.out = next();
    else if (k == "--chips") a.chips = std::atoll(next());
    else if (k == "--remap") a.remap = true;
    else if (k == "--parallel") { a.parallel = std::atoll(next()); a.parallel_set = true; }
    else if (k == "--epochs") a.epochs = std::atoi(next());
    else if (k == "--comp-epochs") a.comp_epochs = std::atoi(next());
    else if (k == "--train") a.train = std::atoll(next());
    else if (k == "--test") a.test = std::atoll(next());
    else if (k == "--sigma") a.sigma = std::strtof(next(), nullptr);
    else if (k == "--metrics-out") a.metrics_out = next();
    else if (k == "--trace-out") a.trace_out = next();
    else if (k == "--log-level") a.log_level = next();
    else if (k == "--quiet") a.quiet = true;
    else if (k == "--statusz-port") { a.statusz_port = std::atoll(next()); a.statusz_set = true; }
    else if (k == "--metrics-stream") a.metrics_stream = next();
    else usage_faults(argv[0]);
  }
  return a;
}

// The grid used when no --config is given: one severity ladder per fault
// kind, small enough for smoke runs.
constexpr const char* kDefaultCampaign =
    "chips = 4\n"
    "seed = 42\n"
    "catastrophic = 0.2\n"
    "stuck.rates = 0.01, 0.05\n"
    "drift.times = 100, 1000\n"
    "ir.alphas = 0.1\n"
    "thermal.temps = 400\n";

int run_faults(int argc, char** argv) {
  using namespace cn;
  const FaultArgs args = parse_faults(argc, argv);

  // Load and parse the campaign grid first: a bad --config path or value
  // must fail before minutes of training, not after. Flag overrides go
  // through KeyValueConfig::set (the parser rejects duplicate keys).
  faultsim::Campaign campaign = [&] {
    try {
      core::KeyValueConfig cfg =
          args.config.empty()
              ? core::KeyValueConfig::from_string(kDefaultCampaign)
              : core::KeyValueConfig::from_file(args.config);
      if (args.chips > 0) cfg.set("chips", std::to_string(args.chips));
      if (args.remap) cfg.set("remap", "1");
      // Validated like the config-file twin: the Campaign ctor resolves the
      // name against the exec registry and throws on a typo.
      if (!args.target.empty()) cfg.set("target", args.target);
      if (!args.fusion.empty()) {
        if (args.fusion != "on" && args.fusion != "1" && args.fusion != "off" &&
            args.fusion != "0")
          throw std::runtime_error("--fusion expects on|off, got '" +
                                   args.fusion + "'");
        cfg.set("fusion",
                (args.fusion == "on" || args.fusion == "1") ? "1" : "0");
      }
      // Passed through unvalidated on purpose: a bad value (e.g. negative)
      // must throw from the Campaign ctor like its config-file twin would,
      // not be silently dropped here.
      if (args.parallel_set)
        cfg.set("parallel_scenarios", std::to_string(args.parallel));
      if (!args.metrics_out.empty()) cfg.set("metrics_out", args.metrics_out);
      if (!args.trace_out.empty()) cfg.set("trace_out", args.trace_out);
      if (args.statusz_set)
        cfg.set("statusz_port", std::to_string(args.statusz_port));
      if (!args.metrics_stream.empty())
        cfg.set("metrics_stream", args.metrics_stream);
      // The campaign's per-scenario progress logs at debug; the faults
      // frontend keeps it visible by default (matching the CLI's historical
      // output), unless the config or a flag says otherwise. --quiet wins.
      if (args.quiet) cfg.set("log_level", "quiet");
      else if (!args.log_level.empty()) cfg.set("log_level", args.log_level);
      else if (!cfg.has("log_level")) cfg.set("log_level", "debug");
      return faultsim::campaign_from_config(cfg);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "bad campaign config%s%s: %s\n",
                   args.config.empty() ? "" : " ", args.config.c_str(), e.what());
      std::exit(2);
    }
  }();

  data::DigitsSpec spec;
  spec.train_count = args.train;
  spec.test_count = args.test;
  data::SplitDataset ds = data::make_digits(spec);

  core::PipelineConfig cfg;
  cfg.name = "faults-lenet-digits";
  cfg.sigma = args.sigma;
  cfg.base_train.epochs = args.epochs;
  cfg.lipschitz_train.epochs = args.epochs;
  cfg.comp_train.epochs = args.comp_epochs;
  cfg.comp_train.lr = 2e-3f;
  cfg.mc.samples = 4;  // pipeline-internal MC; the campaign does the real sweep
  cfg.plan_mode = core::PlanMode::kFixedRatio;
  cfg.log = [](const std::string& s) { std::printf("%s\n", s.c_str()); };
  auto make_model = [](Rng& rng) { return models::lenet5(1, 28, 10, rng); };
  core::PipelineResult r = core::run_correctnet(make_model, ds.train, ds.test, cfg);

  campaign.add_model("baseline", r.base_model, false);
  campaign.add_model("suppressed", r.lipschitz_model, false);
  campaign.add_model("corrected", r.corrected_model, true);

  std::printf("\nrunning fault campaign: %lld scenarios (%lld fault specs x %lld "
              "protection variants%s), target %s, concurrency %lld\n",
              static_cast<long long>(campaign.num_scenarios()),
              static_cast<long long>(campaign.num_faults()),
              static_cast<long long>(campaign.num_models()),
              campaign.remap_enabled() ? " x 2 remap variants" : "",
              campaign.target().empty() ? exec::default_target().name().c_str()
                                        : campaign.target().c_str(),
              static_cast<long long>(runtime::effective_concurrency(
                  campaign.parallel_scenarios(), campaign.num_scenarios())));
  const faultsim::CampaignReport report = campaign.run(ds.test);

  std::printf("\n==== fault campaign (%lld chips/scenario, %.2fs) ====\n",
              static_cast<long long>(report.chips), report.wall_s);
  std::printf("%-10s %-9s | %-22s %-22s %-22s\n", "fault", "severity", "baseline",
              "suppressed", "corrected");
  for (const auto* row : report.for_model("baseline")) {
    const faultsim::ScenarioResult* sup = nullptr;
    const faultsim::ScenarioResult* cor = nullptr;
    for (const auto& s : report.scenarios) {
      if (s.fault_kind != row->fault_kind || s.severity != row->severity ||
          s.remapped != row->remapped)
        continue;
      if (s.model_name == "suppressed") sup = &s;
      if (s.model_name == "corrected") cor = &s;
    }
    auto cell = [](const faultsim::ScenarioResult* s) {
      char buf[64];
      if (!s) {
        std::snprintf(buf, sizeof(buf), "-");
      } else {
        std::snprintf(buf, sizeof(buf), "%5.2f%% +-%5.2f%% (%lldc)",
                      100.0 * s->acc.mean, 100.0 * s->acc.stddev,
                      static_cast<long long>(s->catastrophic));
      }
      return std::string(buf);
    };
    const std::string label =
        row->fault_kind + (row->remapped ? "+rm" : "");
    std::printf("%-10s %-9.4g | %-22s %-22s %-22s\n", label.c_str(),
                row->severity, cell(row).c_str(), cell(sup).c_str(),
                cell(cor).c_str());
    if (row->remapped && row->defects > 0)
      std::printf("%-10s %-9s |   defects %lld, absorbed %lld, residual %lld\n",
                  "", "", static_cast<long long>(row->defects),
                  static_cast<long long>(row->absorbed),
                  static_cast<long long>(row->residual));
  }
  std::printf("mean over grid: baseline %.2f%%, suppressed %.2f%%, corrected "
              "%.2f%%; catastrophic chips: %lld\n",
              100.0 * report.mean_accuracy("baseline"),
              100.0 * report.mean_accuracy("suppressed"),
              100.0 * report.mean_accuracy("corrected"),
              static_cast<long long>(report.total_catastrophic()));
  if (report.total_absorbed() > 0)
    std::printf("remap axis: baseline %.2f%% -> %.2f%% with remapping; "
                "defective devices absorbed across the grid: %lld\n",
                100.0 * report.mean_accuracy("baseline", false),
                100.0 * report.mean_accuracy("baseline", true),
                static_cast<long long>(report.total_absorbed()));
  report.write_json(args.out);
  std::printf("report -> %s\n", args.out.c_str());
  obs::MetricsSnapshotter::stop_global();  // final partial-interval line
  // Campaign::run already wrote these (config keys metrics_out/trace_out);
  // just point at them.
  const std::string metrics_path = args.metrics_out;
  const std::string trace_path = args.trace_out;
  if (!metrics_path.empty()) std::printf("metrics -> %s\n", metrics_path.c_str());
  if (!trace_path.empty()) std::printf("trace -> %s\n", trace_path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cn;
  // Environment observability hookup first (CORRECTNET_METRICS / _TRACE /
  // _LOG), so it covers every command including the subcommands; flags below
  // layer on top.
  try {
    obs::init_from_env();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s: %s\n", argv[0], e.what());
    return 2;
  }
  if (argc > 1 && std::strcmp(argv[1], "--version") == 0) {
    std::printf("%s\n", obs::build_info_line().c_str());
    return 0;
  }
  if (argc > 1 && std::strcmp(argv[1], "--list-targets") == 0) return list_targets();
  if (argc > 1 && std::strcmp(argv[1], "faults") == 0) return run_faults(argc, argv);
  const Args args = parse(argc, argv);
  if (!args.target.empty()) apply_target(argv[0], args.target);
  if (!args.fusion.empty()) apply_fusion(argv[0], args.fusion);
  if (args.statusz_port >= 0 || !args.metrics_stream.empty()) {
    try {
      if (args.statusz_port >= 0)
        obs::ExpositionServer::start_global(
            static_cast<int>(args.statusz_port))
            .set_ready(true);
      if (!args.metrics_stream.empty())
        obs::MetricsSnapshotter::start_global(args.metrics_stream);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s: %s\n", argv[0], e.what());
      return 2;
    }
  }
  if (!args.log_level.empty()) {
    try {
      obs::Logger::global().set_level(obs::parse_log_level(args.log_level));
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s: %s\n", argv[0], e.what());
      return 2;
    }
  }
  if (!args.trace_out.empty()) obs::Tracer::global().set_enabled(true);

  // Dataset.
  data::SplitDataset ds;
  int num_classes = 10;
  int64_t in_c = 1, in_hw = 28;
  if (args.dataset == "digits") {
    data::DigitsSpec spec;
    spec.train_count = args.train;
    spec.test_count = args.test;
    ds = data::make_digits(spec);
  } else if (args.dataset == "objects10" || args.dataset == "objects100") {
    data::ObjectsSpec spec;
    spec.num_classes = (args.dataset == "objects100") ? 100 : 10;
    num_classes = static_cast<int>(spec.num_classes);
    spec.train_count = args.train;
    spec.test_count = args.test;
    if (num_classes >= 100) {
      spec.noise_std = 0.35f;
      spec.class_similarity = 0.4f;
      spec.jitter_frac = 0.1f;
    } else {
      spec.noise_std = 0.7f;
      spec.class_similarity = 0.6f;
      spec.jitter_frac = 0.15f;
    }
    ds = data::make_objects(spec);
    in_c = 3;
    in_hw = 32;
  } else {
    usage(argv[0]);
  }

  core::PipelineConfig cfg;
  cfg.name = args.net + "-" + args.dataset;
  cfg.sigma = args.sigma;
  cfg.base_train.epochs = args.epochs;
  cfg.lipschitz_train.epochs = args.epochs;
  cfg.lipschitz_train.lipschitz.beta = args.beta;
  cfg.lipschitz_train.lipschitz.lambda_min = args.lambda_min;
  cfg.lipschitz_train.lipschitz_warmup_epochs = args.warmup;
  cfg.comp_train.epochs = args.comp_epochs;
  cfg.comp_train.lr = 2e-3f;
  cfg.mc.samples = args.mc;
  cfg.fixed_ratio = args.ratio;
  cfg.max_candidates = args.max_layers;
  cfg.plan_mode = args.rl ? core::PlanMode::kRl : core::PlanMode::kFixedRatio;
  if (args.rl) {
    cfg.search.reinforce.iterations = 10;
    cfg.search.comp_train.epochs = 1;
    cfg.search.mc.samples = std::max(3, args.mc / 4);
    cfg.search.overhead_limit = 0.05f;
  }
  cfg.log = [](const std::string& s) { std::printf("%s\n", s.c_str()); };

  auto make_model = [&](Rng& rng) -> nn::Sequential {
    if (args.net == "vgg") {
      models::VggConfig vcfg;
      vcfg.num_classes = num_classes;
      return models::vgg16(vcfg, rng);
    }
    return models::lenet5(in_c, in_hw, num_classes, rng);
  };

  core::PipelineResult r =
      core::run_correctnet(make_model, ds.train, ds.test, cfg);

  std::printf("\n==== %s, sigma = %.2f ====\n", cfg.name.c_str(), args.sigma);
  std::printf("clean:       baseline %.2f%%, lipschitz %.2f%%\n",
              100.0 * r.clean_acc_base, 100.0 * r.clean_acc_lipschitz);
  std::printf("variations:  baseline %.2f%% +- %.2f%%\n", 100.0 * r.base_var.mean,
              100.0 * r.base_var.stddev);
  std::printf("suppressed:  %.2f%% +- %.2f%%\n", 100.0 * r.lipschitz_var.mean,
              100.0 * r.lipschitz_var.stddev);
  std::printf("CorrectNet:  %.2f%% +- %.2f%%  (overhead %.2f%%, %lld layers)\n",
              100.0 * r.corrected_var.mean, 100.0 * r.corrected_var.stddev,
              100.0 * r.overhead, static_cast<long long>(r.comp_layers));

  if (!args.save_prefix.empty()) {
    nn::save_weights(r.base_model, args.save_prefix + "_base.wts");
    nn::save_weights(r.lipschitz_model, args.save_prefix + "_lip.wts");
    nn::save_weights(r.corrected_model, args.save_prefix + "_corrected.wts");
    std::printf("weights saved with prefix %s\n", args.save_prefix.c_str());
  }
  if (!args.metrics_out.empty()) {
    obs::metrics().write_json(args.metrics_out);
    std::printf("metrics -> %s\n", args.metrics_out.c_str());
  }
  if (!args.trace_out.empty()) {
    obs::Tracer::global().write_json(args.trace_out);
    std::printf("trace -> %s\n", args.trace_out.c_str());
  }
  obs::MetricsSnapshotter::stop_global();  // final partial-interval line
  return 0;
}
