// Fig. 9-style layer-sensitivity sweep under stuck-at device faults.
//
// The paper sweeps *variation* injection from layer i to the last layer to
// find the layers too sensitive for suppression alone. This example runs the
// same sweep with a device-fault campaign instead: chips are programmed onto
// the crossbar substrate and stuck-at cell defects are injected only into
// analog sites >= i (runtime::ChipFarm first_site + faultsim fault list),
// reusing McEngine::sensitivity_sweep unchanged.
//
// --spare N additionally runs the sweep with the fault-aware remapping
// controller on (N spare rows + N spare columns per tile, differential-pair
// swap enabled) on the *same* chip seeds, printing the matched-pair recovery
// and how many defective devices the controller absorbed.
//
// --parallel N evaluates sweep points concurrently (N at a time; 0 = auto):
// point i gets its own farm keyed exactly like McEngine::sensitivity_sweep's
// reconfigure (seed base + i*stride, injection start i), so every printed
// number is bit-identical to the sequential sweep.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "core/trainer.h"
#include "data/synthetic.h"
#include "faultsim/fault_models.h"
#include "models/lenet.h"
#include "runtime/chip_farm.h"
#include "runtime/mc_engine.h"
#include "runtime/scheduler.h"

namespace {

// The Fig. 9 sweep with scenario-level concurrency: one farm per point
// instead of re-keying a single farm, seeded to match
// McEngine::sensitivity_sweep (its exported seed stride, first_site =
// point), so the results are bit-identical to the sequential engine path
// for any --parallel value.
std::vector<cn::core::SensitivityPoint> sweep_points(
    const cn::nn::Sequential& model, const cn::analog::FaultList& list,
    const cn::runtime::ChipFarmOptions& base, const cn::data::Dataset& test,
    int64_t sites, uint64_t base_seed, int64_t parallel) {
  using namespace cn;
  std::vector<core::SensitivityPoint> out(static_cast<size_t>(sites));
  const int64_t conc = runtime::effective_concurrency(parallel, sites);
  runtime::parallel_indexed(sites, conc, [&](int64_t i) {
    runtime::ChipFarmOptions fo = base;
    fo.seed =
        base_seed + static_cast<uint64_t>(i) * runtime::McEngine::kSweepSeedStride;
    fo.first_site = i;
    if (conc > 1) fo.max_live = 1;  // one model clone per in-flight point
    runtime::ChipFarm farm(model, analog::RramDeviceParams{}, fo, list);
    runtime::McEngineOptions eo;
    if (conc > 1) eo.threads = 1;
    const core::McResult r = runtime::McEngine(farm, eo).accuracy(test);
    out[static_cast<size_t>(i)] = core::SensitivityPoint{i, r.mean, r.stddev};
  });
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cn;
  double rate = 0.05;
  int chips = 6;
  int64_t spare = -1;     // <0 = remap comparison off
  int64_t parallel = 1;   // sweep-point concurrency; 0 = auto
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--rate") == 0 && i + 1 < argc)
      rate = std::atof(argv[++i]);
    else if (std::strcmp(argv[i], "--chips") == 0 && i + 1 < argc)
      chips = std::atoi(argv[++i]);
    else if (std::strcmp(argv[i], "--spare") == 0 && i + 1 < argc)
      spare = std::atoll(argv[++i]);
    else if (std::strcmp(argv[i], "--parallel") == 0 && i + 1 < argc)
      parallel = std::atoll(argv[++i]);
  }
  if (parallel < 0) {  // fail loudly, like correctnet_cli faults --parallel
    std::fprintf(stderr, "fault_sweep: --parallel must be >= 0 (0 = auto)\n");
    return 2;
  }

  data::DigitsSpec spec;
  spec.train_count = 800;
  spec.test_count = 200;
  data::SplitDataset ds = data::make_digits(spec);
  Rng rng(2023);
  nn::Sequential model = models::lenet5(1, 28, 10, rng);
  core::TrainConfig cfg;
  cfg.epochs = 3;
  std::printf("[train] LeNet5-Digits (%d epochs)...\n", cfg.epochs);
  core::train(model, ds.train, ds.test, cfg);
  const float clean = core::evaluate(model, ds.test);

  const faultsim::FaultSpec fault = faultsim::stuck_at(rate);
  const analog::FaultList flist = fault.list();
  const int64_t sites = static_cast<int64_t>(model.analog_sites().size());
  runtime::ChipFarmOptions fo;
  fo.instances = chips;
  fo.seed = 42;
  const auto sweep =
      sweep_points(model, flist, fo, ds.test, sites, /*base_seed=*/42, parallel);

  const bool remapping = spare >= 0;
  std::vector<core::SensitivityPoint> remapped;
  remap::RemapStats absorbed_at_full;
  if (remapping) {
    runtime::ChipFarmOptions ro = fo;
    ro.remap.enabled = true;
    ro.remap.spare_rows = spare;
    ro.remap.spare_cols = spare;
    // Same base seed: point i runs under the seed the unremapped sweep
    // used, so each pair of rows sees identical defect maps.
    remapped =
        sweep_points(model, flist, ro, ds.test, sites, /*base_seed=*/42, parallel);
    // Repair accounting at the full-injection point (faults from site 0).
    runtime::ChipFarm rfarm(model, analog::RramDeviceParams{}, ro, flist);
    for (int64_t s = 0; s < chips; ++s)
      absorbed_at_full += rfarm.chip_remap_stats(s);
  }

  std::printf("\nstuck-at layer sensitivity (rate %.3f, %d chips, clean %.2f%%):\n",
              rate, chips, 100.0f * clean);
  if (remapping)
    std::printf("  %-28s %-18s %s\n", "faults injected from site",
                "no remap", "remap");
  else
    std::printf("  %-28s %-10s %s\n", "faults injected from site", "mean", "stddev");
  for (size_t i = 0; i < sweep.size(); ++i) {
    const auto& p = sweep[i];
    if (remapping) {
      std::printf("  site %2lld .. last               %6.2f%%          %6.2f%%\n",
                  static_cast<long long>(p.first_site), 100.0 * p.mean,
                  100.0 * remapped[i].mean);
    } else {
      std::printf("  site %2lld .. last               %6.2f%%   %5.2f%%\n",
                  static_cast<long long>(p.first_site), 100.0 * p.mean,
                  100.0 * p.stddev);
    }
  }
  if (remapping) {
    std::printf("\nremap controller at full injection (%d chips, %lld spare "
                "rows+cols per tile):\n  %lld defective devices, %lld absorbed "
                "(%lld swapped, %lld spared), %lld residual\n",
                chips, static_cast<long long>(spare),
                static_cast<long long>(absorbed_at_full.defects),
                static_cast<long long>(absorbed_at_full.absorbed()),
                static_cast<long long>(absorbed_at_full.swapped),
                static_cast<long long>(absorbed_at_full.spared),
                static_cast<long long>(absorbed_at_full.residual));
  }
  std::printf("\nreading: the earlier the first faulty layer, the larger the "
              "drop — early\nlayers amplify device faults exactly like they "
              "amplify programming variation\n(paper Fig. 9), which is what "
              "makes them compensation candidates.\n");
  return 0;
}
