// RL placement search demo (paper Fig. 6/10 machinery) on a small
// LeNet/digits workload, small enough to run in under a minute.
#include <cstdio>

#include "core/search.h"
#include "core/trainer.h"
#include "data/synthetic.h"
#include "models/lenet.h"

int main() {
  using namespace cn;

  data::DigitsSpec spec;
  spec.train_count = 1200;
  spec.test_count = 300;
  data::SplitDataset ds = data::make_digits(spec);

  Rng rng(1);
  nn::Sequential lip = models::lenet5(1, 28, 10, rng);
  core::TrainConfig tcfg;
  tcfg.epochs = 4;
  tcfg.lipschitz.enabled = true;
  tcfg.lipschitz.sigma = 0.5f;
  tcfg.lipschitz.beta = 3e-2f;
  core::train(lip, ds.train, ds.test, tcfg);

  core::SearchConfig cfg;
  cfg.candidate_layers = core::conv_layer_indices(lip);
  cfg.ratio_menu = {0.0f, 0.5f, 1.0f};
  cfg.overhead_limit = 0.05f;
  cfg.reinforce.iterations = 12;
  cfg.comp_train.epochs = 2;
  cfg.comp_train.lr = 2e-3f;
  cfg.mc.samples = 6;
  cfg.variation = analog::VariationModel{analog::VariationKind::kLognormal, 0.5f};

  std::printf("searching %zu candidate conv layers, %zu-way ratio menu, %d episodes\n",
              cfg.candidate_layers.size(), cfg.ratio_menu.size(),
              cfg.reinforce.iterations);
  core::SearchOutcome out = core::rl_search(lip, ds.train, ds.test, cfg);

  std::printf("\nexplored plans (reward = acc_mean - acc_std - overhead, Eq. 12):\n");
  for (const auto& t : out.trace) {
    std::printf("  filters [");
    for (size_t i = 0; i < t.filters.size(); ++i)
      std::printf("%s%lld", i ? ", " : "", static_cast<long long>(t.filters[i]));
    std::printf("]: overhead %.2f%%, acc %.2f%%, reward %.3f%s\n",
                100.0 * t.overhead, 100.0 * t.acc_mean, t.reward,
                t.trained ? "" : " (over budget, skipped)");
  }
  std::printf("\nbest plan:");
  for (const auto& [idx, m] : out.best_plan.entries)
    std::printf(" layer %lld -> %lld filters;", static_cast<long long>(idx),
                static_cast<long long>(m));
  std::printf("\nbest reward %.3f (acc %.2f%% +- %.2f%%, overhead %.2f%%)\n",
              out.best.reward, 100.0 * out.best.acc_mean, 100.0 * out.best.acc_std,
              100.0 * out.best.overhead);
  return 0;
}
