// Full CorrectNet pipeline on VGG-16 / 10-class objects via run_correctnet():
// baseline -> Lipschitz suppression -> sensitivity sweep -> compensation ->
// final Monte-Carlo comparison. The heaviest example (several minutes on a
// multicore CPU); shrink with CORRECTNET_* env knobs if needed.
#include <cstdio>

#include "core/pipeline.h"
#include "data/synthetic.h"
#include "models/vgg.h"

int main() {
  using namespace cn;

  data::ObjectsSpec spec;
  spec.num_classes = 10;
  spec.train_count = 3000;
  spec.test_count = 600;
  spec.noise_std = 0.7f;
  spec.class_similarity = 0.6f;
  spec.jitter_frac = 0.15f;
  data::SplitDataset ds = data::make_objects(spec);

  core::PipelineConfig cfg;
  cfg.name = "VGG16-Objects10";
  cfg.sigma = 0.5f;
  cfg.base_train.epochs = 8;
  cfg.base_train.lr_decay = 0.85f;
  cfg.lipschitz_train = cfg.base_train;
  cfg.lipschitz_train.lipschitz.beta = 3e-2f;
  cfg.lipschitz_train.lipschitz.lambda_min = 1.0f;
  cfg.lipschitz_train.lipschitz_warmup_epochs = 3;
  cfg.comp_train.epochs = 4;
  cfg.comp_train.lr = 2e-3f;
  cfg.mc.samples = 10;
  cfg.plan_mode = core::PlanMode::kFixedRatio;
  cfg.fixed_ratio = 0.5f;
  cfg.max_candidates = 3;
  cfg.log = [](const std::string& s) { std::printf("%s\n", s.c_str()); };

  auto make_model = [](Rng& rng) {
    models::VggConfig vcfg;
    vcfg.num_classes = 10;
    return models::vgg16(vcfg, rng);
  };
  core::PipelineResult r = core::run_correctnet(make_model, ds.train, ds.test, cfg);

  std::printf("\n==== summary (sigma = 0.5) ====\n");
  std::printf("clean accuracy:       baseline %.2f%%, lipschitz %.2f%%\n",
              100.0 * r.clean_acc_base, 100.0 * r.clean_acc_lipschitz);
  std::printf("under variations:     baseline %.2f%% +- %.2f%%\n",
              100.0 * r.base_var.mean, 100.0 * r.base_var.stddev);
  std::printf("suppression only:     %.2f%% +- %.2f%%\n",
              100.0 * r.lipschitz_var.mean, 100.0 * r.lipschitz_var.stddev);
  std::printf("CorrectNet:           %.2f%% +- %.2f%%\n",
              100.0 * r.corrected_var.mean, 100.0 * r.corrected_var.stddev);
  std::printf("compensated layers:   %lld (overhead %.2f%%)\n",
              static_cast<long long>(r.comp_layers), 100.0 * r.overhead);
  std::printf("recovery ratio:       %.1f%% of clean accuracy\n",
              100.0 * r.corrected_var.mean / r.clean_acc_base);
  return 0;
}
