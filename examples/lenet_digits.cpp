// LeNet-5 robustness walk-through on the digit dataset:
// trains baseline + Lipschitz models, runs the sensitivity sweep (Fig. 9
// style), and prints a per-sigma comparison — a compact tour of the
// error-suppression half of CorrectNet.
#include <cstdio>

#include "core/lipschitz.h"
#include "core/montecarlo.h"
#include "core/sensitivity.h"
#include "core/trainer.h"
#include "data/synthetic.h"
#include "models/lenet.h"

int main() {
  using namespace cn;

  data::DigitsSpec spec;
  spec.train_count = 2500;
  spec.test_count = 600;
  data::SplitDataset ds = data::make_digits(spec);

  // Baseline.
  Rng rng(7);
  nn::Sequential base = models::lenet5(1, 28, 10, rng);
  core::TrainConfig cfg;
  cfg.epochs = 6;
  core::TrainResult base_tr = core::train(base, ds.train, ds.test, cfg);

  // Error suppression (Eq. 11), unclamped lambda from Eq. 10.
  Rng rng2(8);
  nn::Sequential lip = models::lenet5(1, 28, 10, rng2);
  core::TrainConfig lcfg = cfg;
  lcfg.lipschitz.enabled = true;
  lcfg.lipschitz.sigma = 0.5f;
  lcfg.lipschitz.beta = 3e-2f;
  core::TrainResult lip_tr = core::train(lip, ds.train, ds.test, lcfg);

  std::printf("clean accuracy: baseline %.2f%%, lipschitz %.2f%%\n",
              100.0 * base_tr.test_acc, 100.0 * lip_tr.test_acc);
  std::printf("lambda target (k=1, sigma=0.5): %.3f\n",
              core::lipschitz_lambda(1.0, 0.5));
  std::printf("\nper-layer spectral norms (baseline vs lipschitz):\n");
  auto pb = base.params();
  auto pl = lip.params();
  for (size_t i = 0; i < pb.size(); ++i) {
    if (pb[i]->value.rank() < 2) continue;
    std::printf("  %-10s %6.2f -> %6.2f\n", pb[i]->name.c_str(),
                core::spectral_norm(pb[i]->value), core::spectral_norm(pl[i]->value));
  }

  std::printf("\naccuracy under variations (mean +- std, 15 samples):\n");
  std::printf("  %-6s %-18s %-18s\n", "sigma", "baseline(%)", "lipschitz(%)");
  core::McOptions mc;
  mc.samples = 15;
  for (float sigma : {0.1f, 0.3f, 0.5f}) {
    analog::VariationModel vm{analog::VariationKind::kLognormal, sigma};
    core::McResult rb = core::mc_accuracy(base, ds.test, vm, mc);
    core::McResult rl = core::mc_accuracy(lip, ds.test, vm, mc);
    std::printf("  %-6.1f %6.2f +- %-8.2f %6.2f +- %-8.2f\n", sigma, 100.0 * rb.mean,
                100.0 * rb.stddev, 100.0 * rl.mean, 100.0 * rl.stddev);
  }

  std::printf("\nsensitivity sweep at sigma=0.5 (variations from site i..end):\n");
  analog::VariationModel vm{analog::VariationKind::kLognormal, 0.5f};
  mc.samples = 10;
  auto sweep = core::sensitivity_sweep(lip, ds.test, vm, mc);
  for (const auto& p : sweep)
    std::printf("  from site %lld: %.2f%% +- %.2f%%\n",
                static_cast<long long>(p.first_site + 1), 100.0 * p.mean,
                100.0 * p.stddev);
  const int64_t cand = core::compensation_candidate_count(sweep, lip_tr.test_acc);
  std::printf("=> first %lld site(s) would get error compensation\n",
              static_cast<long long>(cand));
  return 0;
}
