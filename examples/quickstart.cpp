// Quickstart: train LeNet-5 on the synthetic digit dataset, watch accuracy
// collapse under analog weight variations, then recover it with CorrectNet
// (Lipschitz regularization + error compensation).
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/quickstart
#include <cstdio>

#include "core/compensation.h"
#include "core/lipschitz.h"
#include "core/montecarlo.h"
#include "core/trainer.h"
#include "data/synthetic.h"
#include "models/lenet.h"

int main() {
  using namespace cn;

  // 1. A synthetic MNIST-like dataset (see src/data/synthetic.h).
  data::DigitsSpec dspec;
  dspec.train_count = 2000;
  dspec.test_count = 500;
  data::SplitDataset ds = data::make_digits(dspec);
  std::printf("dataset: %lld train / %lld test images (1x28x28, 10 classes)\n",
              static_cast<long long>(ds.train.size()),
              static_cast<long long>(ds.test.size()));

  // 2. Baseline LeNet-5.
  Rng rng(1);
  nn::Sequential base = models::lenet5(1, 28, 10, rng);
  core::TrainConfig tcfg;
  tcfg.epochs = 3;
  tcfg.lr = 1e-3f;
  core::TrainResult tr = core::train(base, ds.train, ds.test, tcfg);
  std::printf("baseline clean accuracy: %.2f%%\n", 100.0 * tr.test_acc);

  // 3. Inject lognormal weight variations (paper Eq. 1-2) at sigma = 0.5.
  analog::VariationModel vm{analog::VariationKind::kLognormal, 0.5f};
  core::McOptions mc;
  mc.samples = 15;
  core::McResult varied = core::mc_accuracy(base, ds.test, vm, mc);
  std::printf("baseline at sigma=0.5: %.2f%% +- %.2f%%\n", 100.0 * varied.mean,
              100.0 * varied.stddev);

  // 4. Error suppression: retrain with Lipschitz regularization (Eq. 11).
  Rng rng2(2);
  nn::Sequential lip = models::lenet5(1, 28, 10, rng2);
  core::TrainConfig lcfg = tcfg;
  lcfg.lipschitz.enabled = true;
  lcfg.lipschitz.sigma = 0.5f;
  lcfg.lipschitz.beta = 1e-3f;
  lcfg.lipschitz.lambda_min = 0.4f;
  core::TrainResult ltr = core::train(lip, ds.train, ds.test, lcfg);
  core::McResult lip_var = core::mc_accuracy(lip, ds.test, vm, mc);
  std::printf("lipschitz clean: %.2f%%, at sigma=0.5: %.2f%% +- %.2f%%\n",
              100.0 * ltr.test_acc, 100.0 * lip_var.mean, 100.0 * lip_var.stddev);

  // 5. Error compensation on the first conv layer.
  core::CompensationPlan plan;
  plan.entries.emplace_back(0, 3);  // layer 0 (conv1), 3 generator filters
  Rng crng(3);
  nn::Sequential corrected = core::with_compensation(lip, plan, crng);
  core::TrainConfig ccfg = tcfg;
  ccfg.epochs = 3;
  ccfg.variation = vm;
  core::train_compensation(corrected, ds.train, ds.test, ccfg);
  core::McResult cor_var = core::mc_accuracy(corrected, ds.test, vm, mc);
  std::printf("CorrectNet at sigma=0.5: %.2f%% +- %.2f%% (overhead %.2f%%)\n",
              100.0 * cor_var.mean, 100.0 * cor_var.stddev,
              100.0 * core::compensation_overhead(corrected));
  return 0;
}
