// Fig. 7 — CorrectNet vs the original network across the σ sweep, for all
// four network-dataset pairs (mean ± std).
//
// Paper shape: the corrected curve stays near the clean accuracy across the
// whole σ range while the original curve collapses; the gap widens with σ.
#include "common.h"

int main() {
  using namespace cn;
  using namespace cn::bench;
  std::printf("=== Fig. 7: CorrectNet accuracy under different variations ===\n");
  Csv csv("bench_fig7.csv");
  csv.row({"workload", "sigma", "orig_mean", "orig_std", "corrected_mean",
           "corrected_std"});

  for (const Workload& w : all_workloads()) {
    data::SplitDataset ds = make_dataset(w);
    nn::Sequential base = get_base_model(w, ds);
    nn::Sequential corrected = get_corrected_model(w, ds);
    std::printf("\n%s (paper: %s, overhead %.2f%%)\n", w.name.c_str(),
                w.paper_name.c_str(),
                100.0 * core::compensation_overhead(corrected));
    std::printf("  %-8s %-20s %-20s\n", "sigma", "original(%)", "corrected(%)");
    for (float sigma : sigma_grid()) {
      core::McResult ro =
          core::mc_accuracy(base, ds.test, lognormal(sigma), mc_options());
      core::McResult rc =
          core::mc_accuracy(corrected, ds.test, lognormal(sigma), mc_options());
      std::printf("  %-8.2f %6.2f +- %-10.2f %6.2f +- %-10.2f\n", sigma,
                  100.0 * ro.mean, 100.0 * ro.stddev, 100.0 * rc.mean,
                  100.0 * rc.stddev);
      std::fflush(stdout);
      csv.row({w.name, fmt(sigma, 2), fmt(100.0 * ro.mean), fmt(100.0 * ro.stddev),
               fmt(100.0 * rc.mean), fmt(100.0 * rc.stddev)});
    }
  }
  std::printf("\nExpected shape: corrected curves stay flat-ish; original "
              "curves collapse with sigma.\n");
  return 0;
}
