// google-benchmark microbenchmarks for the compute kernels underneath the
// experiments: matmul, conv2d forward/backward, im2col, crossbar MVM, the
// batched crossbar matmul on every registered execution target, and
// Monte-Carlo perturbation sampling.
#include <benchmark/benchmark.h>

#include <string>

#include "analog/crossbar.h"
#include "analog/variation.h"
#include "exec/target.h"
#include "nn/conv2d.h"
#include "tensor/ops.h"
#include "tensor/rng.h"

namespace {

using namespace cn;

void BM_Matmul(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(1);
  Tensor a({n, n}), b({n, n});
  rng.fill_normal(a, 0.0f, 1.0f);
  rng.fill_normal(b, 0.0f, 1.0f);
  Tensor c({n, n});
  for (auto _ : state) {
    matmul_into(a, b, c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_Matmul)->Arg(64)->Arg(128)->Arg(256);

void BM_Im2col(benchmark::State& state) {
  const int64_t hw = state.range(0);
  ConvGeom g{16, hw, hw, 3, 3, 1, 1};
  Rng rng(2);
  Tensor img({16 * hw * hw});
  rng.fill_normal(img, 0.0f, 1.0f);
  Tensor cols({16 * 9 * g.out_h() * g.out_w()});
  for (auto _ : state) {
    im2col(img.data(), g, cols.data());
    benchmark::DoNotOptimize(cols.data());
  }
}
BENCHMARK(BM_Im2col)->Arg(16)->Arg(32);

void BM_Conv2DForward(benchmark::State& state) {
  const int64_t c = state.range(0);
  Rng rng(3);
  nn::Conv2D conv(c, c, 3, 1, 1, 32, 32, "bench");
  rng.fill_normal(conv.weight().value, 0.0f, 0.1f);
  Tensor x({8, c, 32, 32});
  rng.fill_normal(x, 0.0f, 1.0f);
  for (auto _ : state) {
    Tensor y = conv.forward(x, false);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_Conv2DForward)->Arg(16)->Arg(32);

void BM_Conv2DBackward(benchmark::State& state) {
  const int64_t c = state.range(0);
  Rng rng(4);
  nn::Conv2D conv(c, c, 3, 1, 1, 16, 16, "bench");
  rng.fill_normal(conv.weight().value, 0.0f, 0.1f);
  Tensor x({8, c, 16, 16});
  rng.fill_normal(x, 0.0f, 1.0f);
  Tensor y = conv.forward(x, true);
  for (auto _ : state) {
    Tensor gx = conv.backward(y);
    benchmark::DoNotOptimize(gx.data());
  }
}
BENCHMARK(BM_Conv2DBackward)->Arg(16)->Arg(32);

void BM_CrossbarMatvec(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(5);
  Tensor w({n, n});
  rng.fill_normal(w, 0.0f, 0.5f);
  analog::RramDeviceParams dev;
  dev.program_sigma = 0.1f;
  analog::CrossbarArray xbar(w, dev, rng, 128);
  Tensor x({n});
  rng.fill_normal(x, 0.0f, 1.0f);
  for (auto _ : state) {
    Tensor y = xbar.matvec(x);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n);
}
BENCHMARK(BM_CrossbarMatvec)->Arg(128)->Arg(512);

// The batched crossbar matmul on one explicit execution target; registered
// per target in main (targets are enumerated from the registry at startup,
// so a new register_target call grows the bench without edits here).
void BM_CrossbarMatmulTarget(benchmark::State& state, const exec::Target* t) {
  const int64_t n = state.range(0), batch = 32;
  Rng rng(7);
  Tensor w({n, n});
  rng.fill_normal(w, 0.0f, 0.5f);
  analog::RramDeviceParams dev;
  dev.program_sigma = 0.1f;
  Rng prog(8);
  analog::CrossbarArray xbar(w, dev, prog, /*tile=*/128, nullptr, nullptr, t);
  Tensor x({batch, n});
  rng.fill_normal(x, 0.0f, 1.0f);
  for (auto _ : state) {
    Tensor y = xbar.matmul(x);
    benchmark::DoNotOptimize(y.data());
  }
  // 4 flops per cell per item (differential pair: 2 products + 2 adds).
  state.SetItemsProcessed(state.iterations() * 4 * n * n * batch);
}

void BM_VariationSampling(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(6);
  Tensor w({n, n});
  rng.fill_normal(w, 0.0f, 0.5f);
  analog::VariationModel vm{analog::VariationKind::kLognormal, 0.5f};
  for (auto _ : state) {
    Tensor f = vm.sample_factors(w, rng);
    benchmark::DoNotOptimize(f.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n);
}
BENCHMARK(BM_VariationSampling)->Arg(128)->Arg(512);

}  // namespace

// Custom main instead of BENCHMARK_MAIN(): the per-target crossbar legs are
// registered dynamically from the execution-target registry.
int main(int argc, char** argv) {
  for (const cn::exec::Target* t : cn::exec::registered_targets()) {
    if (!t->available()) continue;
    const std::string name = "BM_CrossbarMatmul/" + t->name();
    benchmark::RegisterBenchmark(
        name.c_str(),
        [t](benchmark::State& s) { BM_CrossbarMatmulTarget(s, t); })
        ->Arg(128)
        ->Arg(512);
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
