// Fig. 9 — effectiveness of Lipschitz regularization alone: variations are
// injected from analog site i to the last layer (sites before i stay
// nominal), compensation disabled, σ = 0.5.
//
// Paper shape: accuracy rises as the starting layer moves deeper — the
// regularization handles late-layer variations well, but early-layer
// variations still hurt (which motivates compensation in early layers).
// The 95%-of-clean line marks the compensation candidate cut.
#include "common.h"

int main() {
  using namespace cn;
  using namespace cn::bench;
  std::printf("=== Fig. 9: Lipschitz regularization vs variation start layer ===\n");
  Csv csv("bench_fig9.csv");
  csv.row({"workload", "start_site", "acc_mean", "acc_std", "target95"});

  // The paper plots VGG16-Cifar100, VGG16-Cifar10, LeNet-5-Cifar10.
  for (const Workload& w : {wl_vgg_obj100(), wl_vgg_obj10(), wl_lenet_obj10()}) {
    data::SplitDataset ds = make_dataset(w);
    nn::Sequential lip = get_lipschitz_model(w, ds);
    const float clean = core::evaluate(lip, ds.test);
    const double target = 0.95 * clean;

    core::McOptions mc = mc_options();
    mc.samples = std::max(5, mc.samples / 2);  // sweep cost scales with sites
    auto sweep = core::sensitivity_sweep(lip, ds.test, lognormal(0.5f), mc);
    const int64_t candidates =
        core::compensation_candidate_count(sweep, clean, 0.95);

    std::printf("\n%s (paper: %s; clean %.2f%%, 95%% line %.2f%%)\n",
                w.name.c_str(), w.paper_name.c_str(), 100.0 * clean,
                100.0 * target);
    std::printf("  %-12s %-12s %-10s\n", "start site", "acc_mean(%)", "acc_std(%)");
    for (const auto& p : sweep) {
      std::printf("  %-12lld %-12.2f %-10.2f%s\n",
                  static_cast<long long>(p.first_site + 1), 100.0 * p.mean,
                  100.0 * p.stddev, p.mean >= target ? "  <-- above 95% line" : "");
      csv.row({w.name, std::to_string(p.first_site + 1), fmt(100.0 * p.mean),
               fmt(100.0 * p.stddev), fmt(100.0 * target)});
    }
    std::printf("  => first %lld layers are compensation candidates\n",
                static_cast<long long>(candidates));
    std::fflush(stdout);
  }
  std::printf("\nExpected shape: accuracy rises with the start layer; early "
              "layers stay below the 95%% line.\n");
  return 0;
}
