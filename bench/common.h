// Shared infrastructure for the experiment benches.
//
// Each bench binary regenerates one paper table/figure. The four
// network-dataset pairs of the paper's evaluation map to:
//   VGG16-Cifar100  -> VGG16-Objects100   (3x32x32, 100 classes)
//   VGG16-Cifar10   -> VGG16-Objects10    (3x32x32, 10 classes)
//   LeNet-5-Cifar10 -> LeNet5-Objects10   (3x32x32, 10 classes)
//   LeNet-5-MNIST   -> LeNet5-Digits      (1x28x28, 10 classes)
//
// Trained models are cached under ./cnet_cache/ so benches share artifacts;
// delete the directory to retrain from scratch. Every bench prints aligned
// text tables (the paper's rows/series) and writes a CSV alongside.
#pragma once

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "core/compensation.h"
#include "core/config.h"
#include "core/lipschitz.h"
#include "core/montecarlo.h"
#include "core/sensitivity.h"
#include "core/trainer.h"
#include "data/synthetic.h"
#include "models/lenet.h"
#include "models/vgg.h"
#include "nn/serialize.h"

namespace cn::bench {

// ---------- workload definitions ----------

enum class Net { kLeNet, kVgg };

struct Workload {
  std::string name;        // e.g. "VGG16-Objects100"
  std::string paper_name;  // e.g. "VGG16-Cifar100"
  Net net = Net::kLeNet;
  bool digits = false;     // digits vs objects dataset
  int num_classes = 10;
  // training recipe (tuned in DESIGN.md; epochs scale with CORRECTNET_EPOCHS)
  int epochs = 6;
  float lr = 1e-3f;
  float lr_decay = 1.0f;
  float lip_beta = 3e-2f;
  float lip_lambda_min = 0.0f;
  int lip_warmup = 0;  // epochs before the penalty switches on (deep nets)
  int comp_epochs = 5;
  float comp_lr = 2e-3f;
  int64_t train_count = 4000;
  int64_t test_count = 800;
  float fixed_ratio = 0.5f;   // generator filters / base filters
  int64_t max_comp_layers = 4;
};

inline Workload wl_lenet_digits() {
  Workload w;
  w.name = "LeNet5-Digits";
  w.paper_name = "LeNet-5-MNIST";
  w.net = Net::kLeNet;
  w.digits = true;
  w.epochs = 8;
  w.train_count = 2500;
  w.test_count = 600;
  w.max_comp_layers = 2;
  return w;
}

inline Workload wl_lenet_obj10() {
  Workload w;
  w.name = "LeNet5-Objects10";
  w.paper_name = "LeNet-5-Cifar10";
  w.net = Net::kLeNet;
  w.epochs = 10;
  w.lr_decay = 0.85f;
  w.train_count = 4000;
  w.test_count = 800;
  w.max_comp_layers = 1;
  return w;
}

inline Workload wl_vgg_obj10() {
  Workload w;
  w.name = "VGG16-Objects10";
  w.paper_name = "VGG16-Cifar10";
  w.net = Net::kVgg;
  w.epochs = 12;
  w.lr_decay = 0.85f;
  w.lip_lambda_min = 1.0f;  // deep net: unclamped λ collapses training
  w.lip_warmup = 3;
  w.train_count = 4000;
  w.test_count = 800;
  w.max_comp_layers = 3;
  return w;
}

inline Workload wl_vgg_obj100() {
  Workload w;
  w.name = "VGG16-Objects100";
  w.paper_name = "VGG16-Cifar100";
  w.net = Net::kVgg;
  w.num_classes = 100;
  w.epochs = 14;
  w.lr = 1.5e-3f;
  w.lr_decay = 0.88f;
  w.lip_lambda_min = 1.0f;
  w.lip_warmup = 5;
  w.train_count = 8000;  // 100 classes need >= 80 samples/class to converge
  w.test_count = 800;
  w.max_comp_layers = 4;
  return w;
}

inline std::vector<Workload> all_workloads() {
  return {wl_vgg_obj100(), wl_vgg_obj10(), wl_lenet_obj10(), wl_lenet_digits()};
}

// ---------- dataset / model construction ----------

inline data::SplitDataset make_dataset(const Workload& w) {
  const auto& rc = core::RuntimeConfig::get();
  if (w.digits) {
    data::DigitsSpec spec;
    spec.train_count = std::min(w.train_count, rc.train_cap);
    spec.test_count = std::min(w.test_count, rc.test_cap);
    return data::make_digits(spec);
  }
  data::ObjectsSpec spec;
  spec.num_classes = w.num_classes;
  spec.train_count = std::min(w.train_count, std::max(rc.train_cap, w.train_count));
  spec.test_count = std::min(w.test_count, rc.test_cap);
  if (w.num_classes >= 100) {
    spec.noise_std = 0.35f;
    spec.class_similarity = 0.4f;
    spec.jitter_frac = 0.1f;
  } else {
    spec.noise_std = 0.7f;
    spec.class_similarity = 0.6f;
    spec.jitter_frac = 0.15f;
  }
  return data::make_objects(spec);
}

inline nn::Sequential make_model(const Workload& w, Rng& rng) {
  if (w.net == Net::kLeNet)
    return models::lenet5(w.digits ? 1 : 3, w.digits ? 28 : 32, w.num_classes, rng);
  models::VggConfig cfg;
  cfg.num_classes = w.num_classes;
  return models::vgg16(cfg, rng);
}

// ---------- cached training ----------

inline std::string cache_dir() {
  std::filesystem::create_directories("cnet_cache");
  return "cnet_cache";
}

inline core::TrainConfig base_train_config(const Workload& w) {
  const auto& rc = core::RuntimeConfig::get();
  core::TrainConfig cfg;
  cfg.epochs = rc.epochs(w.epochs);
  cfg.lr = w.lr;
  cfg.lr_decay = w.lr_decay;
  return cfg;
}

inline core::TrainConfig lipschitz_train_config(const Workload& w, float sigma = 0.5f) {
  core::TrainConfig cfg = base_train_config(w);
  cfg.lipschitz.enabled = true;
  cfg.lipschitz.sigma = sigma;
  cfg.lipschitz.beta = w.lip_beta;
  cfg.lipschitz.lambda_min = w.lip_lambda_min;
  cfg.lipschitz_warmup_epochs = w.lip_warmup;
  return cfg;
}

inline core::TrainConfig comp_train_config(const Workload& w, float sigma = 0.5f) {
  const auto& rc = core::RuntimeConfig::get();
  core::TrainConfig cfg;
  cfg.epochs = rc.epochs(w.comp_epochs);
  cfg.lr = w.comp_lr;
  cfg.variation = analog::VariationModel{analog::VariationKind::kLognormal, sigma};
  return cfg;
}

/// Trains (or loads from cache) the baseline network for a workload.
inline nn::Sequential get_base_model(const Workload& w, const data::SplitDataset& ds) {
  Rng rng(2023);
  nn::Sequential m = make_model(w, rng);
  const std::string path = cache_dir() + "/" + w.name + "_base.wts";
  if (std::filesystem::exists(path)) {
    nn::load_weights(m, path);
    return m;
  }
  std::printf("  [train] %s baseline (%d epochs)...\n", w.name.c_str(),
              base_train_config(w).epochs);
  std::fflush(stdout);
  core::train(m, ds.train, ds.test, base_train_config(w));
  nn::save_weights(m, path);
  return m;
}

/// Trains (or loads) the Lipschitz-regularized network.
inline nn::Sequential get_lipschitz_model(const Workload& w,
                                          const data::SplitDataset& ds) {
  Rng rng(2024);
  nn::Sequential m = make_model(w, rng);
  const std::string path = cache_dir() + "/" + w.name + "_lip.wts";
  if (std::filesystem::exists(path)) {
    nn::load_weights(m, path);
    return m;
  }
  std::printf("  [train] %s with Lipschitz regularization (%d epochs)...\n",
              w.name.c_str(), lipschitz_train_config(w).epochs);
  std::fflush(stdout);
  core::train(m, ds.train, ds.test, lipschitz_train_config(w));
  nn::save_weights(m, path);
  return m;
}

/// The default compensation plan: fixed ratio on the first max_comp_layers
/// candidate convs (Table I's RL-chosen layer counts are mirrored by
/// max_comp_layers per workload; bench_fig10 runs the actual RL search).
inline core::CompensationPlan default_plan(const Workload& w, nn::Sequential& lip) {
  core::CompensationPlan plan;
  auto convs = core::conv_layer_indices(lip);
  for (int64_t i = 0; i < std::min<int64_t>(w.max_comp_layers,
                                            static_cast<int64_t>(convs.size()));
       ++i) {
    auto* conv = dynamic_cast<nn::Conv2D*>(&lip.layer(convs[static_cast<size_t>(i)]));
    const int64_t m = std::max<int64_t>(
        1, static_cast<int64_t>(w.fixed_ratio * conv->out_channels() + 0.5f));
    plan.entries.emplace_back(convs[static_cast<size_t>(i)], m);
  }
  return plan;
}

/// Trains (or loads) the full CorrectNet model (suppression + compensation).
inline nn::Sequential get_corrected_model(const Workload& w,
                                          const data::SplitDataset& ds,
                                          core::CompensationPlan* plan_out = nullptr) {
  data::SplitDataset local;  // keep ds alive; nothing to copy
  nn::Sequential lip = get_lipschitz_model(w, ds);
  core::CompensationPlan plan = default_plan(w, lip);
  if (plan_out) *plan_out = plan;
  Rng rng(2025);
  nn::Sequential m = core::with_compensation(lip, plan, rng);
  const std::string path = cache_dir() + "/" + w.name + "_corr.wts";
  if (std::filesystem::exists(path)) {
    nn::load_weights(m, path);
    return m;
  }
  std::printf("  [train] %s compensation blocks (%d epochs)...\n", w.name.c_str(),
              comp_train_config(w).epochs);
  std::fflush(stdout);
  core::train_compensation(m, ds.train, ds.test, comp_train_config(w));
  nn::save_weights(m, path);
  return m;
}

// ---------- output helpers ----------

/// Minimal CSV writer: one file per bench, header + rows.
class Csv {
 public:
  explicit Csv(const std::string& path) : os_(path) {
    std::printf("  (csv -> %s)\n", path.c_str());
  }
  void row(const std::vector<std::string>& cells) {
    for (size_t i = 0; i < cells.size(); ++i) {
      if (i) os_ << ',';
      os_ << cells[i];
    }
    os_ << '\n';
  }

 private:
  std::ofstream os_;
};

inline std::string fmt(double v, int prec = 2) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", prec, v);
  return buf;
}

/// Minimal JSON emitter: every bench can record its headline numbers
/// (name, wall time, throughput, ...) as BENCH_<name>.json so the perf
/// trajectory is machine-readable across commits. Keys keep insertion order.
class BenchJson {
 public:
  explicit BenchJson(std::string bench_name) : name_(std::move(bench_name)) {
    set("name", name_);
  }

  void set(const std::string& key, const std::string& v) {
    entries_.emplace_back(key, "\"" + escaped(v) + "\"");
  }
  void set(const std::string& key, const char* v) { set(key, std::string(v)); }
  void set(const std::string& key, double v) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    entries_.emplace_back(key, buf);
  }
  void set(const std::string& key, int64_t v) {
    entries_.emplace_back(key, std::to_string(v));
  }
  void set(const std::string& key, int v) { set(key, static_cast<int64_t>(v)); }
  void set(const std::string& key, bool v) {
    entries_.emplace_back(key, v ? "true" : "false");
  }

  /// Writes BENCH_<name>.json into the working directory.
  void write() const {
    const std::string path = "BENCH_" + name_ + ".json";
    std::ofstream os(path);
    os << "{\n";
    for (size_t i = 0; i < entries_.size(); ++i) {
      os << "  \"" << escaped(entries_[i].first) << "\": " << entries_[i].second;
      if (i + 1 < entries_.size()) os << ',';
      os << '\n';
    }
    os << "}\n";
    std::printf("  (json -> %s)\n", path.c_str());
  }

 private:
  static std::string escaped(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
      if (c == '"' || c == '\\') out.push_back('\\');
      if (c == '\n') {
        out += "\\n";
        continue;
      }
      out.push_back(c);
    }
    return out;
  }

  std::string name_;
  std::vector<std::pair<std::string, std::string>> entries_;
};

inline analog::VariationModel lognormal(float sigma) {
  return analog::VariationModel{analog::VariationKind::kLognormal, sigma};
}

inline core::McOptions mc_options(int64_t first_site = 0) {
  core::McOptions mc;
  mc.samples = core::RuntimeConfig::get().mc_samples;
  mc.first_site = first_site;
  return mc;
}

inline const std::vector<float>& sigma_grid() {
  static const std::vector<float> grid = {0.0f, 0.1f, 0.2f, 0.3f, 0.4f, 0.5f};
  return grid;
}

}  // namespace cn::bench
