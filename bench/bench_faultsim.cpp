// bench_faultsim: fault-campaign throughput on the inference runtime.
//
// Times a faultsim::Campaign — a fault kind x severity x protection grid
// executed as crossbar chip farms on McEngine — and reports scenarios/sec,
// chip evaluations/sec and images/sec on the current machine (1 core in CI).
// Also asserts the campaign determinism contract: a second run must
// reproduce every per-chip accuracy sample bit for bit.
//
// Writes BENCH_faultsim.json (see bench::BenchJson). `--quick` shrinks the
// grid for CI smoke runs.
#include <chrono>
#include <cstring>

#include "common.h"
#include "faultsim/campaign.h"

namespace {

using Clock = std::chrono::steady_clock;

cn::faultsim::Campaign make_campaign(const cn::nn::Sequential& model, bool quick) {
  using namespace cn;
  faultsim::CampaignOptions co;
  co.chips = quick ? 2 : 6;
  co.seed = 42;
  co.batch_size = 128;
  co.dev.program_sigma = 0.1f;
  faultsim::Campaign c(co);
  c.add_model("baseline", model, false);
  if (quick) {
    c.add_fault(faultsim::fault_free());
    c.add_stuck_at_grid({0.02});
    c.add_drift_grid({100.0});
    c.add_ir_drop_grid({0.1});
    c.add_thermal_grid({400.0});
  } else {
    c.add_fault(faultsim::fault_free());
    c.add_stuck_at_grid({0.005, 0.02, 0.05});
    c.add_drift_grid({10.0, 100.0, 1000.0});
    c.add_ir_drop_grid({0.05, 0.1});
    c.add_thermal_grid({350.0, 400.0, 500.0});
  }
  return c;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cn;
  bool quick = false;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;

  const int64_t test_count = quick ? 100 : 300;
  std::printf("== bench_faultsim (%s, %lld test images) ==\n",
              quick ? "quick" : "full", static_cast<long long>(test_count));

  data::DigitsSpec spec;
  spec.train_count = 800;
  spec.test_count = test_count;
  data::SplitDataset ds = data::make_digits(spec);
  Rng rng(2023);
  nn::Sequential model = models::lenet5(1, 28, 10, rng);
  core::TrainConfig cfg;
  cfg.epochs = 2;
  std::printf("  [train] LeNet5-Digits (%d epochs)...\n", cfg.epochs);
  core::train(model, ds.train, ds.test, cfg);

  faultsim::Campaign campaign = make_campaign(model, quick);
  const int64_t scenarios = campaign.num_scenarios();
  std::printf("  [campaign] %lld scenarios, warming up...\n",
              static_cast<long long>(scenarios));

  const auto t0 = Clock::now();
  const faultsim::CampaignReport report = campaign.run(ds.test);
  const double wall =
      std::chrono::duration<double>(Clock::now() - t0).count();

  const int64_t chip_evals = scenarios * report.chips;
  const double images = static_cast<double>(chip_evals * test_count);
  std::printf("  [campaign] %lld scenarios in %.2fs: %.2f scenarios/s, "
              "%.1f chip-evals/s, %.0f images/s\n",
              static_cast<long long>(scenarios), wall,
              static_cast<double>(scenarios) / wall,
              static_cast<double>(chip_evals) / wall, images / wall);
  std::printf("  [campaign] grid mean accuracy %.3f, catastrophic chips %lld\n",
              report.mean_accuracy("baseline"),
              static_cast<long long>(report.total_catastrophic()));

  // Determinism: a re-run must reproduce every sample bit for bit.
  faultsim::Campaign again = make_campaign(model, quick);
  const faultsim::CampaignReport repeat = again.run(ds.test);
  bool identical = repeat.scenarios.size() == report.scenarios.size();
  for (size_t i = 0; identical && i < report.scenarios.size(); ++i) {
    const auto& a = report.scenarios[i].acc.samples;
    const auto& b = repeat.scenarios[i].acc.samples;
    identical = a.size() == b.size();
    for (size_t s = 0; identical && s < a.size(); ++s) identical = a[s] == b[s];
  }
  std::printf("  [campaign] repeat run bit-identical: %s\n",
              identical ? "yes" : "NO");

  bench::BenchJson json("faultsim");
  json.set("quick", quick);
  json.set("test_images", test_count);
  json.set("scenarios", scenarios);
  json.set("chips_per_scenario", report.chips);
  json.set("wall_s", wall);
  json.set("scenarios_per_s", static_cast<double>(scenarios) / wall);
  json.set("chip_evals_per_s", static_cast<double>(chip_evals) / wall);
  json.set("images_per_s", images / wall);
  json.set("grid_mean_acc", report.mean_accuracy("baseline"));
  json.set("catastrophic", report.total_catastrophic());
  json.set("deterministic", identical);
  json.write();

  if (!identical) {
    std::printf("FAIL: campaign re-run diverged\n");
    return 1;
  }
  std::printf("done.\n");
  return 0;
}
