// bench_faultsim: fault-campaign throughput on the inference runtime.
//
// Times a faultsim::Campaign — a fault kind x severity x protection grid
// executed as crossbar chip farms on McEngine — twice: once sequentially
// (parallel_scenarios = 1) and once with scenario-level concurrency
// (--threads N; default 0 = auto, one worker per core), reporting
// scenarios/sec for both and the speedup. On a multi-core box the outer
// grid is embarrassingly parallel and the auto-width leg should be
// >= 1.5x at 2+ workers; an explicit N below the core count trades away
// the sequential leg's chip-level parallelism and can report < 1x on wide
// machines (scenario-granular scheduling — see docs/ARCHITECTURE.md). On a
// 1-core box the speedup is reported, not asserted; pass an explicit
// --threads N >= 2 there to exercise the dedicated scheduler pool (CI
// does).
//
// Also asserts the campaign determinism contracts: the parallel report must
// be byte-identical to the sequential one (scheduling independence), and a
// second parallel run must reproduce it byte for byte (run-to-run).
//
// Writes BENCH_faultsim.json (see bench::BenchJson). `--quick` shrinks the
// grid for CI smoke runs.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common.h"
#include "faultsim/campaign.h"
#include "nn/fusion.h"
#include "runtime/scheduler.h"

namespace {

using Clock = std::chrono::steady_clock;

cn::faultsim::Campaign make_campaign(const cn::nn::Sequential& model, bool quick,
                                     int64_t parallel, int fusion) {
  using namespace cn;
  faultsim::CampaignOptions co;
  co.chips = quick ? 2 : 6;
  co.seed = 42;
  co.batch_size = 128;
  co.parallel_scenarios = parallel;
  co.fusion = fusion;
  co.dev.program_sigma = 0.1f;
  faultsim::Campaign c(co);
  c.add_model("baseline", model, false);
  if (quick) {
    c.add_fault(faultsim::fault_free());
    c.add_stuck_at_grid({0.02});
    c.add_drift_grid({100.0});
    c.add_ir_drop_grid({0.1});
    c.add_thermal_grid({400.0});
  } else {
    c.add_fault(faultsim::fault_free());
    c.add_stuck_at_grid({0.005, 0.02, 0.05});
    c.add_drift_grid({10.0, 100.0, 1000.0});
    c.add_ir_drop_grid({0.05, 0.1});
    c.add_thermal_grid({350.0, 400.0, 500.0});
  }
  return c;
}

std::string normalized_json(cn::faultsim::CampaignReport r) {
  r.wall_s = 0.0;  // the one field that legitimately differs between runs
  return r.to_json();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cn;
  bool quick = false;
  int64_t threads = 0;  // parallel-leg concurrency; 0 = auto (pool width)
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc)
      threads = std::atoll(argv[++i]);
  }
  if (threads < 0) {  // fail at parse time, not after minutes of training
    std::fprintf(stderr, "bench_faultsim: --threads must be >= 0 (0 = auto)\n");
    return 2;
  }

  const int64_t test_count = quick ? 100 : 300;
  std::printf("== bench_faultsim (%s, %lld test images) ==\n",
              quick ? "quick" : "full", static_cast<long long>(test_count));

  data::DigitsSpec spec;
  spec.train_count = 800;
  spec.test_count = test_count;
  data::SplitDataset ds = data::make_digits(spec);
  Rng rng(2023);
  nn::Sequential model = models::lenet5(1, 28, 10, rng);
  core::TrainConfig cfg;
  cfg.epochs = 2;
  std::printf("  [train] LeNet5-Digits (%d epochs)...\n", cfg.epochs);
  core::train(model, ds.train, ds.test, cfg);

  const int64_t scenarios = make_campaign(model, quick, 1, 1).num_scenarios();
  std::printf("  [campaign] %lld scenarios, sequential leg...\n",
              static_cast<long long>(scenarios));

  // Every leg pins the campaign `fusion` key explicitly (the timing legs and
  // determinism contracts run fused; the dedicated fusion-off leg below is
  // the only unfused run), so results don't depend on the ambient knob.
  auto timed_run = [&](int64_t parallel, int fusion, double& wall) {
    faultsim::Campaign c = make_campaign(model, quick, parallel, fusion);
    const auto t0 = Clock::now();
    faultsim::CampaignReport r = c.run(ds.test);
    wall = std::chrono::duration<double>(Clock::now() - t0).count();
    return r;
  };

  double wall_seq = 0.0, wall_par = 0.0, wall_rep = 0.0;
  const faultsim::CampaignReport seq = timed_run(1, 1, wall_seq);
  const int64_t conc = runtime::effective_concurrency(threads, scenarios);
  std::printf("  [campaign] parallel leg (%lld scenarios at a time)...\n",
              static_cast<long long>(conc));
  const faultsim::CampaignReport par = timed_run(threads, 1, wall_par);

  const int64_t chip_evals = scenarios * seq.chips;
  const double images = static_cast<double>(chip_evals * test_count);
  const double seq_rate = static_cast<double>(scenarios) / wall_seq;
  const double par_rate = static_cast<double>(scenarios) / wall_par;
  const double speedup = wall_par > 0.0 ? wall_seq / wall_par : 0.0;
  std::printf("  [campaign] sequential: %.2fs, %.2f scenarios/s, "
              "%.1f chip-evals/s, %.0f images/s\n",
              wall_seq, seq_rate, static_cast<double>(chip_evals) / wall_seq,
              images / wall_seq);
  std::printf("  [campaign] parallel:   %.2fs, %.2f scenarios/s (%.2fx)\n",
              wall_par, par_rate, speedup);
  std::printf("  [campaign] grid mean accuracy %.3f, catastrophic chips %lld\n",
              seq.mean_accuracy("baseline"),
              static_cast<long long>(seq.total_catastrophic()));

  // Determinism contracts. Scheduling independence: the parallel report must
  // be byte-identical to the sequential one. Run-to-run: a repeated parallel
  // run must reproduce it byte for byte.
  const std::string seq_json = normalized_json(seq);
  const bool scheduling_identical = normalized_json(par) == seq_json;
  const faultsim::CampaignReport repeat = timed_run(threads, 1, wall_rep);
  const bool rerun_identical = normalized_json(repeat) == seq_json;
  std::printf("  [campaign] sequential-vs-parallel byte-identical: %s\n",
              scheduling_identical ? "yes" : "NO");
  std::printf("  [campaign] repeat run byte-identical: %s\n",
              rerun_identical ? "yes" : "NO");

  // Fusion parity: the same sequential campaign with layer-graph fusion
  // forced off must reproduce the fused report byte for byte (no shipped
  // model carries batchnorm; every other rewrite is bitwise-exact — the
  // docs/ARCHITECTURE.md tolerance contract). The delta is runtime only;
  // the speedup is reported, not asserted (campaign time is dominated by
  // crossbar evaluation, which fusion does not rewrite).
  std::printf("  [campaign] fusion-off leg...\n");
  double wall_foff = 0.0;
  const faultsim::CampaignReport foff = timed_run(1, 0, wall_foff);
  nn::reset_fusion_enabled();  // campaign fusion overrides are process-wide
  const bool fusion_identical = normalized_json(foff) == seq_json;
  const double fusion_speedup = wall_seq > 0.0 ? wall_foff / wall_seq : 0.0;
  std::printf("  [campaign] fused: %.2fs  unfused: %.2fs  speedup: %.2fx  "
              "byte-identical: %s\n",
              wall_seq, wall_foff, fusion_speedup,
              fusion_identical ? "yes" : "NO");

  bench::BenchJson json("faultsim");
  json.set("quick", quick);
  json.set("test_images", test_count);
  json.set("scenarios", scenarios);
  json.set("chips_per_scenario", seq.chips);
  json.set("scenario_threads", conc);
  json.set("wall_s_seq", wall_seq);
  json.set("wall_s_par", wall_par);
  json.set("scenarios_per_s_seq", seq_rate);
  json.set("scenarios_per_s_par", par_rate);
  json.set("parallel_speedup", speedup);
  json.set("chip_evals_per_s", static_cast<double>(chip_evals) / wall_seq);
  json.set("images_per_s", images / wall_seq);
  json.set("grid_mean_acc", seq.mean_accuracy("baseline"));
  json.set("catastrophic", seq.total_catastrophic());
  json.set("deterministic", scheduling_identical && rerun_identical);
  json.set("fusion_wall_s_off", wall_foff);
  json.set("fusion_speedup", fusion_speedup);
  json.set("fusion_identical", fusion_identical);
  json.write();

  if (!scheduling_identical) {
    std::printf("FAIL: parallel campaign diverged from sequential\n");
    return 1;
  }
  if (!rerun_identical) {
    std::printf("FAIL: campaign re-run diverged\n");
    return 1;
  }
  if (!fusion_identical) {
    std::printf("FAIL: fusion-off campaign diverged from fused run\n");
    return 1;
  }
  std::printf("done.\n");
  return 0;
}
