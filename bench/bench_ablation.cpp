// Ablations on the DESIGN.md design choices (not a paper figure):
//   A. regularization strength β — robustness vs clean accuracy trade-off;
//   B. λ floor (the "modified" clamp) — unclamped Eq. 10 vs clamped;
//   C. technique decomposition: none / suppression-only / compensation-only /
//      both (CorrectNet);
//   D. variation-model generality: lognormal vs multiplicative Gaussian.
// Runs on LeNet5-Digits to stay fast.
#include "common.h"

int main() {
  using namespace cn;
  using namespace cn::bench;
  std::printf("=== Ablations (LeNet5-Digits, sigma = 0.5) ===\n");
  Csv csv("bench_ablation.csv");
  csv.row({"ablation", "setting", "clean_acc", "acc_mean", "acc_std"});

  const Workload w = wl_lenet_digits();
  data::SplitDataset ds = make_dataset(w);
  const analog::VariationModel vm = lognormal(0.5f);

  auto train_lip = [&](float beta, float lambda_min) {
    Rng rng(31);
    nn::Sequential m = make_model(w, rng);
    core::TrainConfig cfg = base_train_config(w);
    cfg.lipschitz.enabled = beta > 0.0f;
    cfg.lipschitz.sigma = 0.5f;
    cfg.lipschitz.beta = beta;
    cfg.lipschitz.lambda_min = lambda_min;
    core::train(m, ds.train, ds.test, cfg);
    return m;
  };
  auto report = [&](const std::string& ab, const std::string& setting,
                    nn::Sequential& m) {
    const float clean = core::evaluate(m, ds.test);
    core::McResult r = core::mc_accuracy(m, ds.test, vm, mc_options());
    std::printf("  %-28s %-18s clean %6.2f%%  var %6.2f%% +- %5.2f%%\n", ab.c_str(),
                setting.c_str(), 100.0 * clean, 100.0 * r.mean, 100.0 * r.stddev);
    std::fflush(stdout);
    csv.row({ab, setting, fmt(100.0 * clean), fmt(100.0 * r.mean),
             fmt(100.0 * r.stddev)});
  };

  std::printf("\nA. Regularization strength beta (lambda unclamped):\n");
  for (float beta : {0.0f, 3e-3f, 3e-2f, 3e-1f}) {
    nn::Sequential m = train_lip(beta, 0.0f);
    report("beta sweep", "beta=" + fmt(beta, 3), m);
  }

  std::printf("\nB. Lambda floor (beta = 3e-2): Eq. 10 gives lambda = %.3f at "
              "sigma = 0.5\n",
              core::lipschitz_lambda(1.0, 0.5));
  for (float lmin : {0.0f, 0.5f, 1.0f, 2.0f}) {
    nn::Sequential m = train_lip(3e-2f, lmin);
    report("lambda floor", "lambda_min=" + fmt(lmin, 1), m);
  }

  std::printf("\nC. Technique decomposition:\n");
  {
    nn::Sequential plain = train_lip(0.0f, 0.0f);
    report("decomposition", "none", plain);

    nn::Sequential lip = train_lip(3e-2f, 0.0f);
    report("decomposition", "suppression-only", lip);

    // Compensation on the plain model (no suppression).
    Rng crng(32);
    core::CompensationPlan plan = default_plan(w, plain);
    nn::Sequential comp_only = core::with_compensation(plain, plan, crng);
    core::train_compensation(comp_only, ds.train, ds.test, comp_train_config(w));
    report("decomposition", "compensation-only", comp_only);

    nn::Sequential both = core::with_compensation(lip, plan, crng);
    core::train_compensation(both, ds.train, ds.test, comp_train_config(w));
    report("decomposition", "both (CorrectNet)", both);
  }

  std::printf("\nD. Variation-model generality (suppression-only model):\n");
  {
    nn::Sequential lip = train_lip(3e-2f, 0.0f);
    for (auto kind : {analog::VariationKind::kLognormal,
                      analog::VariationKind::kGaussianMultiplicative}) {
      analog::VariationModel m{kind, 0.3f};
      core::McResult r = core::mc_accuracy(lip, ds.test, m, mc_options());
      std::printf("  %-28s %-18s var %6.2f%% +- %5.2f%%\n", "variation model",
                  m.name().c_str(), 100.0 * r.mean, 100.0 * r.stddev);
      csv.row({"variation model", m.name(), "", fmt(100.0 * r.mean),
               fmt(100.0 * r.stddev)});
    }
  }
  std::printf("\nExpected: beta trades clean accuracy for robustness; both "
              "techniques together dominate either alone.\n");
  return 0;
}
