// Fig. 2 — inference accuracy degradation of the *unprotected* networks under
// lognormal weight variations, σ ∈ {0, 0.1, ..., 0.5}, mean ± std over
// Monte-Carlo chip instances.
//
// Paper shape to reproduce: accuracy falls monotonically with σ; the deep
// VGG16 collapses far harder than LeNet-5 at the same σ (error amplification
// across depth).
#include "common.h"

int main() {
  using namespace cn;
  using namespace cn::bench;
  std::printf("=== Fig. 2: accuracy degradation under weight variations ===\n");
  Csv csv("bench_fig2.csv");
  csv.row({"workload", "sigma", "acc_mean", "acc_std"});

  for (const Workload& w : all_workloads()) {
    data::SplitDataset ds = make_dataset(w);
    nn::Sequential base = get_base_model(w, ds);
    std::printf("\n%s (paper: %s)\n", w.name.c_str(), w.paper_name.c_str());
    std::printf("  %-8s %-12s %-10s\n", "sigma", "acc_mean(%)", "acc_std(%)");
    for (float sigma : sigma_grid()) {
      core::McResult r = core::mc_accuracy(base, ds.test, lognormal(sigma),
                                           mc_options());
      std::printf("  %-8.2f %-12.2f %-10.2f\n", sigma, 100.0 * r.mean,
                  100.0 * r.stddev);
      std::fflush(stdout);
      csv.row({w.name, fmt(sigma, 2), fmt(100.0 * r.mean), fmt(100.0 * r.stddev)});
    }
  }
  std::printf("\nExpected shape: monotone degradation; VGG16 collapses harder "
              "than LeNet-5 at sigma=0.5.\n");
  return 0;
}
