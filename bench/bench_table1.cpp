// Table I — the headline CorrectNet result: clean accuracy, accuracy at
// σ=0.5 for the original network, accuracy at σ=0.5 for CorrectNet
// (suppression + compensation), weight overhead, and compensation layers.
//
// Paper shape: original networks collapse at σ=0.5 (down to ~2% for the
// 100-class VGG); CorrectNet recovers to >~92% of the clean accuracy with
// only a few percent weight overhead on a handful of early layers.
#include "common.h"

int main() {
  using namespace cn;
  using namespace cn::bench;
  std::printf("=== Table I: CorrectNet experimental results ===\n");
  Csv csv("bench_table1.csv");
  csv.row({"workload", "clean_acc", "orig_sigma05", "correctnet_sigma05",
           "overhead_pct", "comp_layers", "recovery_ratio"});

  std::printf("\n%-18s %10s %12s %14s %10s %8s %9s\n", "Network-Dataset",
              "sigma=0(%)", "orig@0.5(%)", "CorrectNet(%)", "overhd(%)",
              "#layers", "recov(%)");

  for (const Workload& w : all_workloads()) {
    data::SplitDataset ds = make_dataset(w);
    nn::Sequential base = get_base_model(w, ds);
    const float clean = core::evaluate(base, ds.test);
    core::McResult orig = core::mc_accuracy(base, ds.test, lognormal(0.5f),
                                            mc_options());

    core::CompensationPlan plan;
    nn::Sequential corrected = get_corrected_model(w, ds, &plan);
    const double overhead = core::compensation_overhead(corrected);
    core::McResult corr = core::mc_accuracy(corrected, ds.test, lognormal(0.5f),
                                            mc_options());
    int64_t layers = 0;
    for (const auto& [idx, m] : plan.entries)
      if (m > 0) ++layers;

    const double recovery = 100.0 * corr.mean / clean;
    std::printf("%-18s %10.2f %12.2f %14.2f %10.2f %8lld %9.1f\n", w.name.c_str(),
                100.0 * clean, 100.0 * orig.mean, 100.0 * corr.mean,
                100.0 * overhead, static_cast<long long>(layers), recovery);
    std::fflush(stdout);
    csv.row({w.name, fmt(100.0 * clean), fmt(100.0 * orig.mean),
             fmt(100.0 * corr.mean), fmt(100.0 * overhead), std::to_string(layers),
             fmt(recovery, 1)});
  }
  std::printf("\nExpected shape: CorrectNet recovers to >~92%% of the clean "
              "accuracy with low single-digit %% overhead.\n");
  return 0;
}
