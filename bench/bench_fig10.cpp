// Fig. 10 — RL search over compensation locations/filter counts for
// VGG16-Objects100 at σ = 0.5: every explored plan is a dot (overhead vs
// accuracy); the RL pick is compared against exhaustive compensation of all
// candidate layers.
//
// Paper shape: the RL-selected plan reaches accuracy comparable to
// exhaustive compensation at lower overhead.
//
// Note: reward evaluations train compensation blocks, so this bench uses a
// shortened schedule (1 epoch on a training subset, few MC samples). Scale
// with CORRECTNET_EPOCHS / CORRECTNET_MC for higher fidelity.
#include "common.h"

#include "core/search.h"

int main() {
  using namespace cn;
  using namespace cn::bench;
  std::printf("=== Fig. 10: RL search for compensation plans (VGG16-Objects100) ===\n");
  Csv csv("bench_fig10.csv");
  csv.row({"kind", "filters", "overhead_pct", "acc_mean", "acc_std", "reward"});

  const Workload w = wl_vgg_obj100();
  data::SplitDataset ds = make_dataset(w);
  nn::Sequential lip = get_lipschitz_model(w, ds);

  // Candidates: first 6 conv layers (paper: first six layers of VGG16).
  core::SearchConfig cfg;
  auto convs = core::conv_layer_indices(lip);
  for (int i = 0; i < 6; ++i) cfg.candidate_layers.push_back(convs[static_cast<size_t>(i)]);
  cfg.ratio_menu = {0.0f, 0.25f, 0.5f};
  cfg.overhead_limit = 0.03f;
  cfg.reinforce.iterations = 6;
  cfg.reinforce.lr = 0.05f;
  cfg.comp_train.epochs = 1;
  cfg.comp_train.lr = 2e-3f;
  cfg.variation = lognormal(0.5f);
  cfg.mc = mc_options();
  cfg.mc.samples = std::max(4, cfg.mc.samples / 5);

  // Subset data for the reward loop (full test for the final comparison).
  data::Dataset train_sub = ds.train.head(1500);
  data::Dataset test_sub = ds.test.head(400);

  core::SearchOutcome out = core::rl_search(lip, train_sub, test_sub, cfg);

  std::printf("\nExplored plans (dots in the figure):\n");
  std::printf("  %-26s %10s %12s %10s %9s\n", "filters per candidate", "overhd(%)",
              "acc_mean(%)", "acc_std(%)", "reward");
  for (const auto& t : out.trace) {
    std::string filt;
    for (size_t i = 0; i < t.filters.size(); ++i)
      filt += (i ? "," : "") + std::to_string(t.filters[i]);
    std::printf("  %-26s %10.2f %12.2f %10.2f %9.3f%s\n", filt.c_str(),
                100.0 * t.overhead, 100.0 * t.acc_mean, 100.0 * t.acc_std,
                t.reward, t.trained ? "" : "  (skipped: over budget)");
    csv.row({"explored", filt, fmt(100.0 * t.overhead), fmt(100.0 * t.acc_mean),
             fmt(100.0 * t.acc_std), fmt(t.reward, 3)});
  }

  // RL pick, retrained on a larger split and evaluated on the full test set.
  data::Dataset train_final = ds.train.head(3000);
  {
    core::SearchConfig full = cfg;
    full.comp_train = comp_train_config(w);
    full.comp_train.epochs = std::max(2, full.comp_train.epochs / 2);
    full.mc = mc_options();
    full.overhead_limit = 1.0f;  // evaluate regardless
    core::ExploredPlan best =
        core::evaluate_plan(lip, train_final, ds.test, full, out.best_plan);
    std::printf("\nRL-selected plan: overhead %.2f%%, accuracy %.2f%% +- %.2f%%\n",
                100.0 * best.overhead, 100.0 * best.acc_mean, 100.0 * best.acc_std);
    csv.row({"rl_pick", "", fmt(100.0 * best.overhead), fmt(100.0 * best.acc_mean),
             fmt(100.0 * best.acc_std), fmt(best.reward, 3)});
  }

  // Exhaustive compensation of all 6 candidates at ratio 0.5.
  {
    core::CompensationPlan all;
    std::vector<int> actions(cfg.candidate_layers.size(), 2);  // ratio 0.5
    all = core::plan_from_actions(lip, cfg, actions);
    core::SearchConfig full = cfg;
    full.comp_train = comp_train_config(w);
    full.comp_train.epochs = std::max(2, full.comp_train.epochs / 2);
    full.mc = mc_options();
    full.overhead_limit = 1.0f;
    core::ExploredPlan ex =
        core::evaluate_plan(lip, train_final, ds.test, full, all);
    std::printf("Exhaustive (all 6 layers): overhead %.2f%%, accuracy %.2f%% +- %.2f%%\n",
                100.0 * ex.overhead, 100.0 * ex.acc_mean, 100.0 * ex.acc_std);
    csv.row({"exhaustive", "", fmt(100.0 * ex.overhead), fmt(100.0 * ex.acc_mean),
             fmt(100.0 * ex.acc_std), fmt(ex.reward, 3)});
  }
  std::printf("\nExpected shape: the RL pick approaches exhaustive-compensation "
              "accuracy at lower overhead.\n");
  return 0;
}
