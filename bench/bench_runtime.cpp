// bench_runtime: the inference-runtime speedup bench.
//
// Measures Monte-Carlo evaluation over a farm of programmed crossbar chips
// two ways on the identical workload and chip seeds:
//   seed path   — sequential chip loop, per-column CrossbarArray::matvec
//                 (the code shape before the runtime subsystem existed);
//   runtime     — ChipFarm + McEngine with sample-level parallelism and the
//                 tile-blocked CrossbarArray::matmul batched kernel.
// The two must agree bit-for-bit (read noise off); the interesting number is
// the wall-clock ratio. A second section benches the factor-injection MC
// path and the micro-batching InferenceServer.
//
// Writes BENCH_runtime.json (see bench::BenchJson). `--quick` shrinks the
// workload for CI smoke runs.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <future>
#include <thread>

#include "common.h"
#include "exec/target.h"
#include "faultsim/fault_models.h"
#include "nn/activations.h"
#include "nn/batchnorm.h"
#include "nn/dense.h"
#include "nn/dropout.h"
#include "nn/fusion.h"
#include "nn/pooling.h"
#include "obs/exposition.h"
#include "obs/metrics.h"
#include "tensor/ops.h"
#include "tensor/threadpool.h"
#include "runtime/chip_farm.h"
#include "runtime/inference_server.h"
#include "runtime/mc_engine.h"

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cn;
  obs::init_from_env();  // CORRECTNET_METRICS / _TRACE / _LOG hookup
  bool quick = false;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;

  const int chips = quick ? 4 : 8;
  const int64_t test_count = quick ? 120 : 400;
  std::printf("== bench_runtime (%s: %d crossbar chips, %lld test images) ==\n",
              quick ? "quick" : "full", chips, static_cast<long long>(test_count));

  data::DigitsSpec spec;
  spec.train_count = 800;
  spec.test_count = test_count;
  data::SplitDataset ds = data::make_digits(spec);
  Rng rng(2023);
  nn::Sequential model = models::lenet5(1, 28, 10, rng);
  core::TrainConfig cfg;
  cfg.epochs = 2;
  std::printf("  [train] LeNet5-Digits (%d epochs)...\n", cfg.epochs);
  core::train(model, ds.train, ds.test, cfg);
  const float clean = core::evaluate(model, ds.test);
  std::printf("  clean accuracy: %.3f\n", clean);

  bench::BenchJson json("runtime");
  json.set("quick", quick);
  json.set("chips", static_cast<int64_t>(chips));
  json.set("test_images", test_count);

  // ---------- layer-graph fusion: fused vs unfused digital forward ----------
  // Two digital-path legs, both timing core::evaluate over the test set with
  // the fusion knob forced off vs on. Timed reps interleave the legs (min of
  // several multi-eval samples), so clock drift hits both sides equally.
  //
  //   (a) the trained LeNet5 — no batchnorm, so every engaged rewrite (relu
  //       epilogues, both pools into the conv epilogues, the flatten
  //       reshape) is bitwise-exact by contract, asserted on sampled images;
  //   (b) a conv-bn stack (conv+bn+relu+pool blocks plus an eval dropout) —
  //       the workload where ALL passes engage, bn-fold included; parity is
  //       asserted per the pinned kBnFold* tolerance contract.
  //
  // Leg (b) is the headline `fusion_speedup` and gates the bench: the pass
  // pipeline exists to win wall-clock, so below 1.15x fails.
  {
    const int reps = quick ? 5 : 5;
    const int inner = quick ? 6 : 2;  // evaluates per timed sample
    auto timed_legs = [&](nn::Sequential& m, double& t_unfused,
                          double& t_fused) {
      nn::set_fusion_enabled(false);
      (void)core::evaluate(m, ds.test, 128);  // warm-up (caches)
      nn::set_fusion_enabled(true);
      (void)core::evaluate(m, ds.test, 128);  // warm-up (plan build)
      t_unfused = t_fused = 1e100;
      for (int r = 0; r < reps; ++r) {
        for (const bool fused : {false, true}) {
          nn::set_fusion_enabled(fused);
          const auto tt = Clock::now();
          for (int k = 0; k < inner; ++k) (void)core::evaluate(m, ds.test, 128);
          const double s = seconds_since(tt) / inner;
          (fused ? t_fused : t_unfused) = std::min(fused ? t_fused : t_unfused, s);
        }
      }
    };
    auto forward_image = [&](nn::Sequential& m, int64_t i, bool fused) {
      Tensor img = ds.test.image(i);
      img.reshape({1, ds.test.channels(), ds.test.height(), ds.test.width()});
      nn::set_fusion_enabled(fused);
      return m.forward(img, false);
    };

    // (a) LeNet5: bitwise parity.
    double lenet_unfused = 0.0, lenet_fused = 0.0;
    timed_legs(model, lenet_unfused, lenet_fused);
    bool bit_identical = true;
    const int64_t sampled = std::min<int64_t>(test_count, 16);
    for (int64_t i = 0; i < sampled && bit_identical; ++i) {
      const Tensor a = forward_image(model, i, false);
      const Tensor b = forward_image(model, i, true);
      bit_identical = a.size() == b.size() &&
                      std::memcmp(a.data(), b.data(),
                                  static_cast<size_t>(a.size()) * sizeof(float)) == 0;
    }
    const double lenet_speedup =
        lenet_fused > 0 ? lenet_unfused / lenet_fused : 0.0;
    std::printf("  [fusion] lenet5    unfused: %.3fs  fused: %.3fs  "
                "speedup: %.2fx  bit-identical (%lld images): %s\n",
                lenet_unfused, lenet_fused, lenet_speedup,
                static_cast<long long>(sampled), bit_identical ? "yes" : "NO");

    // (b) conv-bn stack: untrained weights (timing only), batchnorm running
    // stats warmed by a few train-mode forwards so the fold is non-trivial.
    Rng frng(4242);
    nn::Sequential bnm("convbn");
    auto& c1 = bnm.emplace<nn::Conv2D>(1, 3, 3, 1, 1, 28, 28, "c1");
    frng.fill_normal(c1.weight().value, 0.0f, 0.3f);
    frng.fill_normal(c1.bias().value, 0.0f, 0.1f);
    auto& b1 = bnm.emplace<nn::BatchNorm2D>(3, 0.9f, 1e-5f, "b1");
    frng.fill_normal(b1.gamma().value, 1.0f, 0.2f);
    frng.fill_normal(b1.beta().value, 0.0f, 0.2f);
    bnm.emplace<nn::ReLU>("r1");
    bnm.emplace<nn::Dropout>(0.25f, 13, "d1");
    bnm.emplace<nn::MaxPool2D>(2, "p1");
    auto& c2 = bnm.emplace<nn::Conv2D>(3, 6, 3, 1, 1, 14, 14, "c2");
    frng.fill_normal(c2.weight().value, 0.0f, 0.3f);
    frng.fill_normal(c2.bias().value, 0.0f, 0.1f);
    auto& b2 = bnm.emplace<nn::BatchNorm2D>(6, 0.9f, 1e-5f, "b2");
    frng.fill_normal(b2.gamma().value, 1.0f, 0.2f);
    frng.fill_normal(b2.beta().value, 0.0f, 0.2f);
    bnm.emplace<nn::ReLU>("r2");
    bnm.emplace<nn::Dropout>(0.25f, 17, "d2");
    bnm.emplace<nn::AvgPool2D>(2, "p2");
    bnm.emplace<nn::Flatten>();
    auto& fc = bnm.emplace<nn::Dense>(6 * 7 * 7, 10, "fc");
    frng.fill_normal(fc.weight().value, 0.0f, 0.2f);
    frng.fill_normal(fc.bias().value, 0.0f, 0.1f);
    {
      Tensor warm({32, 1, 28, 28});
      for (int it = 0; it < 3; ++it) {
        frng.fill_normal(warm, 0.0f, 1.0f);
        (void)bnm.forward(warm, /*train=*/true);
      }
    }
    double bn_unfused = 0.0, bn_fused = 0.0;
    timed_legs(bnm, bn_unfused, bn_fused);
    // Parity per the bn-fold contract: |ulps| <= kBnFoldMaxUlps, or abs diff
    // within kBnFoldRangeTol of the unfused output range (same predicate as
    // tests/exec_testutil.h expect_within_ulps).
    auto ordinal = [](float f) {
      int32_t i;
      std::memcpy(&i, &f, sizeof(i));
      return static_cast<int64_t>(i >= 0 ? i : -(i & 0x7FFFFFFF));
    };
    bool within_tol = true;
    float range = 0.0f;
    for (int64_t i = 0; i < sampled; ++i) {
      const Tensor a = forward_image(bnm, i, false);
      for (int64_t j = 0; j < a.size(); ++j)
        range = std::max(range, std::abs(a[j]));
    }
    for (int64_t i = 0; i < sampled && within_tol; ++i) {
      const Tensor a = forward_image(bnm, i, false);
      const Tensor b = forward_image(bnm, i, true);
      within_tol = a.size() == b.size();
      for (int64_t j = 0; within_tol && j < a.size(); ++j) {
        const int64_t ulps = std::llabs(ordinal(a[j]) - ordinal(b[j]));
        within_tol = ulps <= nn::kBnFoldMaxUlps ||
                     std::abs(a[j] - b[j]) <= nn::kBnFoldRangeTol * range;
      }
    }
    nn::reset_fusion_enabled();
    const double fusion_speedup = bn_fused > 0 ? bn_unfused / bn_fused : 0.0;
    std::printf("  [fusion] conv-bn   unfused: %.3fs  fused: %.3fs  "
                "speedup: %.2fx  within bn-fold tolerance: %s\n",
                bn_unfused, bn_fused, fusion_speedup,
                within_tol ? "yes" : "NO");
    json.set("fusion_lenet_unfused_s", lenet_unfused);
    json.set("fusion_lenet_fused_s", lenet_fused);
    json.set("fusion_lenet_speedup", lenet_speedup);
    json.set("fusion_bit_identical", bit_identical);
    json.set("fusion_unfused_s", bn_unfused);
    json.set("fusion_fused_s", bn_fused);
    json.set("fusion_speedup", fusion_speedup);
    json.set("fusion_bn_within_tol", within_tol);
    if (!bit_identical) {
      std::printf("FAIL: fused LeNet5 forward diverged from the unfused path\n");
      return 1;
    }
    if (!within_tol) {
      std::printf("FAIL: fused conv-bn forward outside the bn-fold tolerance\n");
      return 1;
    }
    if (fusion_speedup < 1.15) {
      std::printf("FAIL: fusion speedup %.2fx below the 1.15x floor\n",
                  fusion_speedup);
      return 1;
    }
  }

  // ---------- MC over programmed crossbar chips: seed path vs runtime ----------
  analog::RramDeviceParams dev;
  dev.g_min = 1e-6f;
  dev.g_max = 1e-4f;
  dev.program_sigma = 0.3f;

  runtime::ChipFarmOptions fo;
  fo.instances = chips;
  fo.max_live = chips;  // keep every chip resident: programming timed once
  fo.seed = 42;
  runtime::ChipFarm farm(model, dev, fo);

  auto t0 = Clock::now();
  for (int s = 0; s < chips; ++s) farm.chip(s);
  const double t_program = seconds_since(t0);
  std::printf("  [farm] programmed %d chips in %.2fs\n", chips, t_program);
  json.set("program_s", t_program);

  // Seed path: sequential chip loop + per-column matvec execution.
  for (int s = 0; s < chips; ++s) analog::set_batched(farm.chip(s), false);
  std::vector<double> seq_samples(static_cast<size_t>(chips));
  t0 = Clock::now();
  for (int s = 0; s < chips; ++s)
    seq_samples[static_cast<size_t>(s)] = core::evaluate(farm.chip(s), ds.test, 128);
  const double t_seq = seconds_since(t0);

  // Runtime: batched matmul kernels + sample-parallel McEngine.
  for (int s = 0; s < chips; ++s) analog::set_batched(farm.chip(s), true);
  runtime::McEngineOptions eo;
  eo.batch_size = 128;
  runtime::McEngine engine(farm, eo);
  t0 = Clock::now();
  const core::McResult rt = engine.accuracy(ds.test);
  const double t_runtime = seconds_since(t0);

  bool identical = rt.samples.size() == seq_samples.size();
  for (size_t s = 0; identical && s < seq_samples.size(); ++s)
    identical = rt.samples[s] == seq_samples[s];
  const double speedup = t_runtime > 0 ? t_seq / t_runtime : 0.0;
  std::printf("  [mc-crossbar] seed path   : %.3fs\n", t_seq);
  std::printf("  [mc-crossbar] runtime     : %.3fs  (mean acc %.3f ± %.3f)\n",
              t_runtime, rt.mean, rt.stddev);
  std::printf("  [mc-crossbar] speedup     : %.2fx  bit-identical: %s\n", speedup,
              identical ? "yes" : "NO");
  json.set("mc_crossbar_seed_s", t_seq);
  json.set("mc_crossbar_runtime_s", t_runtime);
  json.set("mc_crossbar_speedup", speedup);
  json.set("mc_crossbar_bit_identical", identical);
  json.set("mc_crossbar_mean_acc", rt.mean);

  // ---------- factor-injection MC: seed-style loop vs McEngine ----------
  analog::VariationModel vm{analog::VariationKind::kLognormal, 0.4f};
  const int mc_samples = quick ? 8 : 16;
  {
    // Seed-style: one work clone, one rng stream, strictly sequential.
    nn::Sequential work = model.clone_model();
    Rng mc_rng(4242);
    t0 = Clock::now();
    for (int s = 0; s < mc_samples; ++s) {
      analog::perturb_from(work, vm, mc_rng, 0);
      core::evaluate(work, ds.test, 128);
    }
    work.clear_all_variations();
  }
  const double t_factor_seq = seconds_since(t0);
  core::McOptions mo;
  mo.samples = mc_samples;
  mo.seed = 4242;
  t0 = Clock::now();
  const core::McResult fr = core::mc_accuracy(model, ds.test, vm, mo);
  const double t_factor_rt = seconds_since(t0);
  std::printf("  [mc-factor]   seed path   : %.3fs\n", t_factor_seq);
  std::printf("  [mc-factor]   runtime     : %.3fs  (mean acc %.3f, %u threads)\n",
              t_factor_rt, fr.mean, ThreadPool::global().size());
  json.set("mc_factor_seed_s", t_factor_seq);
  json.set("mc_factor_runtime_s", t_factor_rt);
  json.set("mc_factor_samples", static_cast<int64_t>(mc_samples));
  json.set("threads", static_cast<int64_t>(ThreadPool::global().size()));

  // ---------- InferenceServer micro-batching ----------
  double base_server_rps = 0;  // unscraped throughput, scrape-leg baseline
  {
    analog::VariationModel none{analog::VariationKind::kNone, 0.0f};
    runtime::ChipFarmOptions sfo;
    sfo.instances = 2;
    sfo.max_live = 2;
    runtime::ChipFarm sfarm(model, none, sfo);
    runtime::InferenceServerOptions so;
    so.max_batch = 32;
    so.max_wait_us = 1000;
    so.workers = 2;
    runtime::InferenceServer server(sfarm, so);
    const int64_t requests = std::min<int64_t>(test_count, quick ? 120 : 400);
    std::vector<std::future<Tensor>> futs;
    futs.reserve(static_cast<size_t>(requests));
    t0 = Clock::now();
    std::thread client([&] {
      for (int64_t i = 0; i < requests; ++i)
        futs.push_back(server.submit(ds.test.image(i)));
    });
    client.join();
    int64_t correct = 0;
    for (int64_t i = 0; i < requests; ++i) {
      Tensor logits = futs[static_cast<size_t>(i)].get();
      logits.reshape({1, logits.size()});
      if (argmax_row(logits, 0) == ds.test.labels[static_cast<size_t>(i)]) ++correct;
    }
    const double t_serve = seconds_since(t0);
    const runtime::ServerStats st = server.stats();
    std::printf("  [server] %lld requests in %.3fs: %.0f req/s, avg batch %.1f, "
                "latency avg %.0fus p50 %.0fus p99 %.0fus p999 %.0fus, acc %.3f\n",
                static_cast<long long>(requests), t_serve, st.throughput_rps(),
                st.avg_batch(), st.avg_latency_us(), st.p50_latency_us,
                st.p99_latency_us, st.p999_latency_us,
                static_cast<double>(correct) / static_cast<double>(requests));
    base_server_rps = st.throughput_rps();
    json.set("server_requests", requests);
    json.set("server_throughput_rps", st.throughput_rps());
    json.set("server_avg_batch", st.avg_batch());
    json.set("server_avg_latency_us", st.avg_latency_us());
    json.set("server_p50_us", st.p50_latency_us);
    json.set("server_p99_us", st.p99_latency_us);
    json.set("server_p999_us", st.p999_latency_us);
  }

  // ---------- InferenceServer under bursty arrivals ----------
  // The open-loop leg above slams every request in at once, so latency is
  // dominated by queueing behind the drain. This leg sends small bursts with
  // idle gaps — the arrival pattern micro-batching exists for — and records
  // the tail percentiles, which the avg-only stats used to hide.
  {
    analog::VariationModel none{analog::VariationKind::kNone, 0.0f};
    runtime::ChipFarmOptions sfo;
    sfo.instances = 2;
    sfo.max_live = 2;
    runtime::ChipFarm sfarm(model, none, sfo);
    runtime::InferenceServerOptions so;
    so.max_batch = 16;
    so.max_wait_us = 500;
    so.workers = 2;
    runtime::InferenceServer server(sfarm, so);
    const int64_t burst_size = 8;
    const int64_t bursts = quick ? 8 : 24;
    const int64_t requests = burst_size * bursts;
    std::vector<std::future<Tensor>> futs;
    futs.reserve(static_cast<size_t>(requests));
    t0 = Clock::now();
    for (int64_t b = 0; b < bursts; ++b) {
      for (int64_t i = 0; i < burst_size; ++i) {
        const int64_t idx = (b * burst_size + i) % test_count;
        futs.push_back(server.submit(ds.test.image(idx)));
      }
      // Wait the burst out before the gap so each burst's latency is its
      // own batching story, not queueing behind the previous one.
      futs.back().wait();
      std::this_thread::sleep_for(std::chrono::microseconds(quick ? 500 : 2000));
    }
    for (auto& f : futs) f.wait();
    const double t_burst = seconds_since(t0);
    const runtime::ServerStats st = server.stats();
    std::printf("  [burst]  %lld bursts x %lld requests in %.3fs: %.0f req/s, "
                "latency p50 %.0fus p99 %.0fus p999 %.0fus\n",
                static_cast<long long>(bursts),
                static_cast<long long>(burst_size), t_burst,
                st.throughput_rps(), st.p50_latency_us, st.p99_latency_us,
                st.p999_latency_us);
    json.set("burst_requests", requests);
    json.set("burst_throughput_rps", st.throughput_rps());
    json.set("burst_avg_batch", st.avg_batch());
    json.set("burst_p50_us", st.p50_latency_us);
    json.set("burst_p99_us", st.p99_latency_us);
    json.set("burst_p999_us", st.p999_latency_us);
  }

  // ---------- serving throughput with a live scraper ----------
  // The open-loop server leg again, but with an ephemeral ExpositionServer
  // up and a client hitting /metrics at 10 Hz — the deployment shape the
  // exposition tier is designed for. Recorded (not asserted): the point is a
  // machine-readable trajectory of scrape overhead, which should stay noise.
  {
    analog::VariationModel none{analog::VariationKind::kNone, 0.0f};
    runtime::ChipFarmOptions sfo;
    sfo.instances = 2;
    sfo.max_live = 2;
    runtime::ChipFarm sfarm(model, none, sfo);
    runtime::InferenceServerOptions so;
    so.max_batch = 32;
    so.max_wait_us = 1000;
    so.workers = 2;
    runtime::InferenceServer server(sfarm, so);
    obs::ExpositionServer expo;  // port 0 = ephemeral
    expo.set_ready(true);
    std::atomic<bool> stop_scraper{false};
    std::atomic<int64_t> scrapes{0};
    std::thread scraper([&] {
      while (!stop_scraper.load(std::memory_order_relaxed)) {
        try {
          obs::http_get_local(expo.port(), "/metrics");
          scrapes.fetch_add(1, std::memory_order_relaxed);
        } catch (const std::exception&) {
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
      }
    });
    const int64_t requests = std::min<int64_t>(test_count, quick ? 120 : 400);
    std::vector<std::future<Tensor>> futs;
    futs.reserve(static_cast<size_t>(requests));
    t0 = Clock::now();
    for (int64_t i = 0; i < requests; ++i)
      futs.push_back(server.submit(ds.test.image(i)));
    for (auto& f : futs) f.wait();
    const double t_scraped = seconds_since(t0);
    stop_scraper.store(true, std::memory_order_relaxed);
    scraper.join();
    const runtime::ServerStats st = server.stats();
    const double overhead =
        base_server_rps > 0 ? 1.0 - st.throughput_rps() / base_server_rps : 0.0;
    std::printf("  [scrape] %lld requests in %.3fs with %lld scrapes: "
                "%.0f req/s (overhead vs unscraped %.1f%%)\n",
                static_cast<long long>(requests), t_scraped,
                static_cast<long long>(scrapes.load()), st.throughput_rps(),
                100.0 * overhead);
    json.set("server_throughput_rps_scraped", st.throughput_rps());
    json.set("scrape_count", scrapes.load());
    json.set("scrape_overhead_frac", overhead);
  }

  // ---------- bounded-queue admission under sustained 2x overload ----------
  // A paced client offers requests at twice the measured open-loop capacity.
  // Without admission control the queue (and the tail) grows without bound
  // for as long as the overload lasts; with the bounded queue + latency
  // budget armed, the server sheds the excess as typed Overloaded rejections
  // and the admitted requests' p99 stays within the budget target. Both
  // properties are asserted — this leg is the serving-policy contract, not
  // just a trajectory.
  {
    analog::VariationModel none{analog::VariationKind::kNone, 0.0f};
    runtime::ChipFarmOptions sfo;
    sfo.instances = 2;
    sfo.max_live = 2;
    runtime::ChipFarm sfarm(model, none, sfo);
    // Per-request sustained service time from the open-loop leg; the budget
    // admits roughly 48 queued requests' worth of wait, so thresholds scale
    // with the machine instead of hard-coding microseconds.
    const double svc_us =
        base_server_rps > 0 ? 1e6 / base_server_rps : 1000.0;
    runtime::InferenceServerOptions so;
    so.max_batch = 16;
    so.max_wait_us = 500;
    so.workers = 2;
    so.queue_limit = 64;
    so.queue_budget_us =
        std::max<int64_t>(10000, static_cast<int64_t>(48.0 * svc_us));
    runtime::InferenceServer server(sfarm, so);
    const double offered_rps = 2.0 * (base_server_rps > 0 ? base_server_rps : 1000.0);
    const int64_t requests = quick ? 400 : 1600;
    const auto interval =
        std::chrono::duration<double>(1.0 / offered_rps);
    std::vector<std::future<Tensor>> futs;
    futs.reserve(static_cast<size_t>(requests));
    t0 = Clock::now();
    for (int64_t i = 0; i < requests; ++i) {
      std::this_thread::sleep_until(
          t0 + std::chrono::duration_cast<Clock::duration>(interval * i));
      futs.push_back(server.submit(ds.test.image(i % test_count)));
    }
    int64_t accepted = 0, rejected = 0;
    for (auto& f : futs) {
      try {
        f.get();
        ++accepted;
      } catch (const runtime::Overloaded&) {
        ++rejected;
      }
    }
    const double t_over = seconds_since(t0);
    const runtime::ServerStats st = server.stats();
    // The budget bounds the admission-time queue-wait estimate; an admitted
    // request additionally rides out its own batch's service time, and the
    // histogram's power-of-two buckets round p99 up. 3x absorbs both while
    // still catching unbounded-queue regressions (which blow past any
    // constant multiple as the overload runs).
    const double p99_target_us = 3.0 * static_cast<double>(so.queue_budget_us);
    std::printf("  [overload] offered %.0f req/s (2x capacity) for %.2fs: "
                "%lld accepted, %lld rejected, max queue %lld/%lld, "
                "p99 %.0fus (target %.0fus)\n",
                offered_rps, t_over, static_cast<long long>(accepted),
                static_cast<long long>(rejected),
                static_cast<long long>(st.max_queue_depth),
                static_cast<long long>(so.queue_limit), st.p99_latency_us,
                p99_target_us);
    json.set("overload_offered_rps", offered_rps);
    json.set("overload_requests", requests);
    json.set("overload_accepted", accepted);
    json.set("overload_rejected", rejected);
    json.set("overload_queue_budget_us", so.queue_budget_us);
    json.set("overload_p99_us", st.p99_latency_us);
    json.set("overload_p99_target_us", p99_target_us);
    json.set("overload_max_queue_depth", st.max_queue_depth);
    if (rejected <= 0) {
      std::printf("FAIL: 2x overload produced no admission rejections\n");
      return 1;
    }
    if (st.max_queue_depth > so.queue_limit) {
      std::printf("FAIL: queue grew past its limit (%lld > %lld)\n",
                  static_cast<long long>(st.max_queue_depth),
                  static_cast<long long>(so.queue_limit));
      return 1;
    }
    if (st.p99_latency_us > p99_target_us) {
      std::printf("FAIL: admitted p99 %.0fus exceeded the budget target "
                  "%.0fus\n",
                  st.p99_latency_us, p99_target_us);
      return 1;
    }
  }

  // ---------- mid-traffic fault drill ----------
  // A crossbar farm serves a request stream while 1 of its 2 workers is
  // drilled (stuck-at faults + remap repair) between two traffic phases.
  // The serving contract under test: the afflicted worker rebuilds its chip
  // on its own thread between batches, so no future — queued, in-flight, or
  // post-drill — ever fails. Asserted, with the drill bookkeeping checked.
  {
    analog::RramDeviceParams sdev;
    sdev.g_min = 1e-6f;
    sdev.g_max = 1e-4f;
    sdev.program_sigma = 0.1f;
    runtime::ChipFarmOptions sfo;
    sfo.instances = 2;
    sfo.max_live = 2;
    sfo.seed = 42;
    runtime::ChipFarm sfarm(model, sdev, sfo);
    runtime::InferenceServerOptions so;
    so.max_batch = 16;
    so.max_wait_us = 500;
    so.workers = 2;
    runtime::InferenceServer server(sfarm, so);
    const int64_t phase = quick ? 60 : 200;
    std::vector<std::future<Tensor>> futs;
    futs.reserve(static_cast<size_t>(2 * phase));
    t0 = Clock::now();
    for (int64_t i = 0; i < phase; ++i)
      futs.push_back(server.submit(ds.test.image(i % test_count)));
    runtime::DrillSpec drill;
    drill.action = runtime::DrillSpec::Action::kRemap;
    drill.workers = {0};
    drill.faults = faultsim::stuck_at(0.02).models;
    server.drill(drill);  // mid-traffic: phase-1 requests still in flight
    for (int64_t i = 0; i < phase; ++i)
      futs.push_back(server.submit(ds.test.image(i % test_count)));
    int64_t failed = 0;
    for (auto& f : futs) {
      try {
        f.get();
      } catch (const std::exception&) {
        ++failed;
      }
    }
    const double t_drill = seconds_since(t0);
    const runtime::ServerStats st = server.stats();
    std::printf("  [drill]  %lld requests across a 1-of-2 worker remap drill "
                "in %.2fs: %lld failed futures, %d drilled / %d active "
                "workers, p99 %.0fus\n",
                static_cast<long long>(2 * phase), t_drill,
                static_cast<long long>(failed), st.drilled_workers,
                st.active_workers, st.p99_latency_us);
    json.set("drill_requests", 2 * phase);
    json.set("drill_failed_futures", failed);
    json.set("drill_drilled_workers", static_cast<int64_t>(st.drilled_workers));
    json.set("drill_active_workers", static_cast<int64_t>(st.active_workers));
    json.set("drill_p99_us", st.p99_latency_us);
    if (failed != 0 || st.drilled_workers != 1 || st.active_workers != 2) {
      std::printf("FAIL: drill contract violated (failed %lld, drilled %d, "
                  "active %d)\n",
                  static_cast<long long>(failed), st.drilled_workers,
                  st.active_workers);
      return 1;
    }
  }

  // ---------- per-execution-target kernel legs ----------
  // One square array per registered target (identical conductances via a
  // re-seeded programming rng), the batched matmul timed per target:
  // GFLOP/s, bit-exactness vs the scalar matvec reference, and the worst
  // relative error for approximate targets. Written to BENCH_targets.json
  // so the per-target perf/parity trajectory is machine-readable.
  {
    const int64_t n = quick ? 256 : 512;
    const int64_t batch = quick ? 32 : 64;
    const int reps = quick ? 3 : 5;
    Rng wrng(777);
    Tensor w({n, n});
    wrng.fill_normal(w, 0.0f, 0.5f);
    Tensor x({batch, n});
    wrng.fill_normal(x, 0.0f, 1.0f);
    analog::RramDeviceParams tdev;
    tdev.g_min = 1e-6f;
    tdev.g_max = 1e-4f;
    tdev.program_sigma = 0.1f;

    // Scalar per-column reference (target-independent), computed once.
    Rng prog_ref(778);
    analog::CrossbarArray ref_arr(w, tdev, prog_ref, /*tile=*/n);
    std::vector<Tensor> ref;
    ref.reserve(static_cast<size_t>(batch));
    Tensor xi({n});
    for (int64_t b = 0; b < batch; ++b) {
      std::copy(x.data() + b * n, x.data() + (b + 1) * n, xi.data());
      ref.push_back(ref_arr.matvec(xi));
    }

    bench::BenchJson tj("targets");
    tj.set("quick", quick);
    tj.set("n", n);
    tj.set("batch", batch);
    std::printf("  [targets] %lldx%lld array, batch %lld:\n",
                static_cast<long long>(n), static_cast<long long>(n),
                static_cast<long long>(batch));
    for (const exec::Target* t : exec::registered_targets()) {
      if (!t->available()) continue;
      Rng prog(778);  // same conductances as the reference array
      analog::CrossbarArray arr(w, tdev, prog, /*tile=*/n, nullptr, nullptr, t);
      Tensor y = arr.matmul(x);  // warm-up + parity sample
      t0 = Clock::now();
      for (int r = 0; r < reps; ++r) {
        Tensor yr = arr.matmul(x);
        y = std::move(yr);
      }
      const double dt = seconds_since(t0) / reps;
      // 4 flops per cell per item: two products and two adds across the
      // differential pair.
      const double gflops =
          dt > 0 ? 4.0 * static_cast<double>(n) * static_cast<double>(n) *
                       static_cast<double>(batch) / dt / 1e9
                 : 0.0;
      bool exact = true;
      double max_err = 0.0, max_abs = 0.0;
      for (int64_t b = 0; b < batch; ++b) {
        for (int64_t o = 0; o < n; ++o) {
          const float yv = y[b * n + o];
          const float rv = ref[static_cast<size_t>(b)][o];
          if (yv != rv) exact = false;
          max_err = std::max(max_err, std::abs(static_cast<double>(yv) - rv));
          max_abs = std::max(max_abs, std::abs(static_cast<double>(rv)));
        }
      }
      const double rel = max_abs > 0 ? max_err / max_abs : 0.0;
      std::printf("    %-13s %8.2f GFLOP/s  bit-identical: %-3s  "
                  "max rel err %.2e\n",
                  t->name().c_str(), gflops, exact ? "yes" : "no", rel);
      tj.set(t->name() + ".gflops", gflops);
      tj.set(t->name() + ".bit_exact", exact);
      tj.set(t->name() + ".max_rel_err", rel);
      // A target that claims bit-exactness and misses it is a bench
      // failure, same as the runtime/seed divergence check below.
      if (t->bit_exact() && !exact) {
        std::printf("FAIL: target %s claims bit-exactness but diverged\n",
                    t->name().c_str());
        return 1;
      }
    }
    tj.write();
  }

  json.set("wall_s", t_program + t_seq + t_runtime + t_factor_seq + t_factor_rt);
  json.write();

  if (!identical) {
    std::printf("FAIL: runtime MC result diverged from the seed path\n");
    return 1;
  }
  std::printf("done.\n");
  return 0;
}
