// Fig. 8 — CorrectNet vs prior work at σ = 0.5: accuracy against weight
// overhead, on the LeNet-Objects10 and VGG16-Objects10 pairs.
//
// Comparators (mechanism re-implementations, see DESIGN.md §2):
//   [8]  important-weight replication into SRAM (top-|w| protection),
//        with and without per-chip online adaptation;
//   [9]  random sparse adaptation (random protection), with/without online
//        retraining;
//   [11] variation-aware (statistical) training, no weight overhead.
//
// Paper shape: CorrectNet beats the non-retrained baselines at much lower
// overhead, and matches online-retrained baselines without their per-chip
// retraining cost.
#include "common.h"

#include "core/baselines.h"

int main() {
  using namespace cn;
  using namespace cn::bench;
  std::printf("=== Fig. 8: CorrectNet vs state of the art (sigma = 0.5) ===\n");
  Csv csv("bench_fig8.csv");
  csv.row({"workload", "method", "overhead_pct", "acc_mean", "acc_std"});

  const analog::VariationModel vm = lognormal(0.5f);

  for (const Workload& w : {wl_lenet_obj10(), wl_vgg_obj10()}) {
    data::SplitDataset ds = make_dataset(w);
    nn::Sequential base = get_base_model(w, ds);
    std::printf("\n%s (paper: %s)\n", w.name.c_str(), w.paper_name.c_str());
    std::printf("  %-34s %10s %12s %10s\n", "method", "overhd(%)", "acc_mean(%)",
                "acc_std(%)");

    auto report = [&](const std::string& method, double overhead,
                      const core::McResult& r) {
      std::printf("  %-34s %10.2f %12.2f %10.2f\n", method.c_str(),
                  100.0 * overhead, 100.0 * r.mean, 100.0 * r.stddev);
      std::fflush(stdout);
      csv.row({w.name, method, fmt(100.0 * overhead), fmt(100.0 * r.mean),
               fmt(100.0 * r.stddev)});
    };

    // CorrectNet point.
    nn::Sequential corrected = get_corrected_model(w, ds);
    report("CorrectNet", core::compensation_overhead(corrected),
           core::mc_accuracy(corrected, ds.test, vm, mc_options()));

    // Protection baselines across an overhead sweep.
    core::McOptions mc = mc_options();
    for (double frac : {0.02, 0.05, 0.20}) {
      Rng rng(77);
      auto topk = core::protection_masks(base, frac, /*topk=*/true, rng);
      report("[8] top-|w| SRAM, no retrain (" + fmt(100 * frac, 0) + "%)", frac,
             core::mc_accuracy_protected(base, ds.test, vm, topk, mc));
      auto rnd = core::protection_masks(base, frac, /*topk=*/false, rng);
      report("[9] random sparse, no retrain (" + fmt(100 * frac, 0) + "%)", frac,
             core::mc_accuracy_protected(base, ds.test, vm, rnd, mc));
    }

    // Online-retrained variants (expensive per chip: few MC samples).
    core::McOptions mc_online = mc_options();
    mc_online.samples = std::max(3, mc_online.samples / 5);
    core::OnlineRetrainOptions online;
    online.steps = 25;
    for (double frac : {0.10}) {
      Rng rng(78);
      auto topk = core::protection_masks(base, frac, true, rng);
      report("[8] top-|w| SRAM + online (" + fmt(100 * frac, 0) + "%)", frac,
             core::mc_accuracy_protected_online(base, ds.train, ds.test, vm, topk,
                                                mc_online, online));
      auto rnd = core::protection_masks(base, frac, false, rng);
      report("[9] random sparse + online (" + fmt(100 * frac, 0) + "%)", frac,
             core::mc_accuracy_protected_online(base, ds.train, ds.test, vm, rnd,
                                                mc_online, online));
    }

    // Variation-aware training [11]: zero overhead.
    {
      Rng rng(79);
      nn::Sequential init = make_model(w, rng);
      core::TrainConfig cfg = base_train_config(w);
      cfg.epochs = std::max(1, cfg.epochs / 2);
      cfg.variation = vm;
      nn::Sequential aware =
          core::train_variation_aware(init, ds.train, ds.test, cfg);
      report("[11] variation-aware training", 0.0,
             core::mc_accuracy(aware, ds.test, vm, mc_options()));
    }
  }
  std::printf("\nExpected shape: CorrectNet dominates non-retrained baselines at "
              "lower overhead and matches online-retrained ones without "
              "per-chip retraining.\n");
  return 0;
}
