// LeNet-5 (LeCun et al. 1989), as used in the paper's evaluation.
#pragma once

#include "nn/sequential.h"
#include "tensor/rng.h"

namespace cn::models {

/// Builds LeNet-5 for `in_c`×`in_hw`×`in_hw` inputs and `num_classes` outputs:
/// conv(6,5x5) → ReLU → avgpool2 → conv(16,5x5) → ReLU → avgpool2 →
/// flatten → fc120 → ReLU → fc84 → ReLU → fc(num_classes).
/// Inputs of 28x28 are padded by the first conv (pad 2) so geometry matches
/// the canonical 32x32 formulation.
nn::Sequential lenet5(int64_t in_c, int64_t in_hw, int num_classes, Rng& rng);

}  // namespace cn::models
