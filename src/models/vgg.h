// VGG-16 topology (Simonyan & Zisserman), slimmed channel widths.
//
// The paper trains full VGG16 on GPUs; depth (13 conv + 3 FC) is what drives
// the error-amplification phenomenon the experiments probe, so we preserve
// the exact topology and shrink channel counts to keep CPU training feasible
// (DESIGN.md §2). `width` scales all channel counts: width=1 gives
// [16,16 | 32,32 | 64,64,64 | 96,96,96 | 96,96,96].
#pragma once

#include "nn/sequential.h"
#include "tensor/rng.h"

namespace cn::models {

struct VggConfig {
  int64_t in_c = 3;
  int64_t in_hw = 32;
  int num_classes = 10;
  float width = 1.0f;     // channel multiplier
  float dropout = 0.0f;   // applied before the two hidden FC layers
  uint64_t dropout_seed = 99;
};

/// Builds the 16-layer VGG: 13 3x3 convs in 5 blocks with maxpool, then
/// FC-128, FC-128, FC-classes (sizes scale with `width`).
nn::Sequential vgg16(const VggConfig& cfg, Rng& rng);

}  // namespace cn::models
