#include "models/vgg.h"

#include <algorithm>
#include <string>
#include <vector>

#include "nn/activations.h"
#include "nn/conv2d.h"
#include "nn/dense.h"
#include "nn/dropout.h"
#include "nn/init.h"
#include "nn/pooling.h"

namespace cn::models {

nn::Sequential vgg16(const VggConfig& cfg, Rng& rng) {
  using namespace cn::nn;
  Sequential m("vgg16");
  // Base widths per block (slim); the canonical ratios 64..512 preserved as
  // 16..96 with the last block kept flat to bound FC size.
  const std::vector<std::vector<int64_t>> blocks = {
      {16, 16}, {32, 32}, {64, 64, 64}, {96, 96, 96}, {128, 128, 128}};
  int64_t c_in = cfg.in_c;
  int64_t hw = cfg.in_hw;
  int conv_idx = 0;
  for (size_t b = 0; b < blocks.size(); ++b) {
    for (size_t l = 0; l < blocks[b].size(); ++l) {
      const int64_t c_out =
          std::max<int64_t>(4, static_cast<int64_t>(static_cast<float>(blocks[b][l]) * cfg.width));
      ++conv_idx;
      const std::string name = "conv" + std::to_string(b + 1) + "_" + std::to_string(l + 1);
      m.emplace<Conv2D>(c_in, c_out, 3, 1, 1, hw, hw, name);
      m.emplace<ReLU>("relu_" + name);
      c_in = c_out;
    }
    m.emplace<MaxPool2D>(2, "pool" + std::to_string(b + 1));
    hw /= 2;
  }
  m.emplace<Flatten>("flatten");
  const int64_t feat = c_in * hw * hw;
  const int64_t fc_w = std::max<int64_t>(32, static_cast<int64_t>(192 * cfg.width));
  if (cfg.dropout > 0.0f) m.emplace<Dropout>(cfg.dropout, cfg.dropout_seed, "drop1");
  m.emplace<Dense>(feat, fc_w, "fc1");
  m.emplace<ReLU>("relu_fc1");
  if (cfg.dropout > 0.0f) m.emplace<Dropout>(cfg.dropout, cfg.dropout_seed + 1, "drop2");
  m.emplace<Dense>(fc_w, fc_w, "fc2");
  m.emplace<ReLU>("relu_fc2");
  m.emplace<Dense>(fc_w, cfg.num_classes, "fc3");
  init_model(m, rng);
  return m;
}

}  // namespace cn::models
