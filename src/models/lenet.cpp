#include "models/lenet.h"

#include <stdexcept>

#include "nn/activations.h"
#include "nn/conv2d.h"
#include "nn/dense.h"
#include "nn/init.h"
#include "nn/pooling.h"

namespace cn::models {

nn::Sequential lenet5(int64_t in_c, int64_t in_hw, int num_classes, Rng& rng) {
  using namespace cn::nn;
  Sequential m("lenet5");
  const int64_t pad = (in_hw == 28) ? 2 : 0;
  const int64_t hw1 = in_hw + 2 * pad - 4;  // after conv 5x5
  if (hw1 % 2 != 0 || ((hw1 / 2) - 4) % 2 != 0)
    throw std::invalid_argument("lenet5: unsupported input size");
  m.emplace<Conv2D>(in_c, 6, 5, 1, pad, in_hw, in_hw, "conv1");
  m.emplace<ReLU>("relu1");
  m.emplace<AvgPool2D>(2, "pool1");
  const int64_t hw2 = hw1 / 2;
  m.emplace<Conv2D>(6, 16, 5, 1, 0, hw2, hw2, "conv2");
  m.emplace<ReLU>("relu2");
  m.emplace<AvgPool2D>(2, "pool2");
  const int64_t hw3 = (hw2 - 4) / 2;
  m.emplace<Flatten>("flatten");
  m.emplace<Dense>(16 * hw3 * hw3, 120, "fc1");
  m.emplace<ReLU>("relu3");
  m.emplace<Dense>(120, 84, "fc2");
  m.emplace<ReLU>("relu4");
  m.emplace<Dense>(84, num_classes, "fc3");
  init_model(m, rng);
  return m;
}

}  // namespace cn::models
