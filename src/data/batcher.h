// Mini-batch iteration over a Dataset.
#pragma once

#include <vector>

#include "data/dataset.h"
#include "tensor/rng.h"

namespace cn::data {

/// One mini-batch: images (B,C,H,W) + labels.
struct Batch {
  Tensor images;
  std::vector<int> labels;
  int64_t size() const { return images.empty() ? 0 : images.dim(0); }
};

/// Deterministic shuffling batcher. Call `reshuffle(rng)` between epochs.
class Batcher {
 public:
  Batcher(const Dataset& ds, int64_t batch_size);

  int64_t num_batches() const;
  /// Materializes batch `b` (last batch may be smaller).
  Batch get(int64_t b) const;
  void reshuffle(Rng& rng);

 private:
  const Dataset& ds_;
  int64_t batch_size_;
  std::vector<int64_t> order_;
};

/// Gathers arbitrary indices into a batch (used by evaluation subsets).
Batch gather(const Dataset& ds, const std::vector<int64_t>& idx);

}  // namespace cn::data
