// Procedural image-classification datasets.
//
// The paper evaluates on MNIST / CIFAR-10 / CIFAR-100, none of which are
// available offline here. These generators produce classification tasks at
// the same tensor shapes and class counts, with tunable difficulty, so the
// robustness experiments exercise identical code paths (see DESIGN.md §2):
//
//  - make_digits:  1×28×28, 10 classes — stroke-segment glyphs with jitter,
//    thickness and noise (MNIST stand-in; LeNet-5 reaches high-90s clean).
//  - make_objects: 3×32×32, N classes — per-class prototypes built from
//    random Gaussian blobs and oriented gratings, blended with a shared
//    background pattern to control inter-class similarity (CIFAR stand-in;
//    difficulty rises with class count, noise and similarity).
#pragma once

#include <cstdint>

#include "data/dataset.h"

namespace cn::data {

/// Parameters for the digit-glyph generator.
struct DigitsSpec {
  int64_t train_count = 4000;
  int64_t test_count = 1000;
  float jitter_px = 1.5f;      // endpoint jitter
  float thickness = 1.2f;      // stroke radius in pixels
  float noise_std = 0.15f;     // additive pixel noise
  uint64_t seed = 1;
};

/// Parameters for the blob/grating object generator.
struct ObjectsSpec {
  int64_t num_classes = 10;
  int64_t train_count = 4000;
  int64_t test_count = 1000;
  int blobs_per_class = 4;
  int gratings_per_class = 2;
  float jitter_frac = 0.08f;     // prototype element position jitter
  float noise_std = 0.25f;       // additive pixel noise
  float class_similarity = 0.3f; // blend weight of a shared background pattern
  uint64_t seed = 2;
};

/// MNIST stand-in (1x28x28, 10 classes). Images normalized to zero mean /
/// unit std over the training set; the same affine applies to test images.
SplitDataset make_digits(const DigitsSpec& spec);

/// CIFAR stand-in (3x32x32, spec.num_classes classes).
SplitDataset make_objects(const ObjectsSpec& spec);

}  // namespace cn::data
