#include "data/augment.h"

#include <algorithm>
#include <vector>

namespace cn::data {

void shift_image(float* img, int64_t c, int64_t h, int64_t w, int dy, int dx,
                 float pad_value) {
  if (dy == 0 && dx == 0) return;
  std::vector<float> tmp(static_cast<size_t>(h * w));
  for (int64_t ch = 0; ch < c; ++ch) {
    float* chan = img + ch * h * w;
    std::fill(tmp.begin(), tmp.end(), pad_value);
    for (int64_t y = 0; y < h; ++y) {
      const int64_t sy = y - dy;
      if (sy < 0 || sy >= h) continue;
      for (int64_t x = 0; x < w; ++x) {
        const int64_t sx = x - dx;
        if (sx < 0 || sx >= w) continue;
        tmp[static_cast<size_t>(y * w + x)] = chan[sy * w + sx];
      }
    }
    std::copy(tmp.begin(), tmp.end(), chan);
  }
}

void hflip_image(float* img, int64_t c, int64_t h, int64_t w) {
  for (int64_t ch = 0; ch < c; ++ch) {
    float* chan = img + ch * h * w;
    for (int64_t y = 0; y < h; ++y) {
      float* row = chan + y * w;
      for (int64_t x = 0; x < w / 2; ++x) std::swap(row[x], row[w - 1 - x]);
    }
  }
}

void augment_batch(Batch& batch, const AugmentSpec& spec, Rng& rng) {
  if (batch.size() == 0) return;
  const int64_t c = batch.images.dim(1);
  const int64_t h = batch.images.dim(2);
  const int64_t w = batch.images.dim(3);
  const int64_t sz = c * h * w;
  for (int64_t i = 0; i < batch.size(); ++i) {
    float* img = batch.images.data() + i * sz;
    if (spec.max_shift > 0) {
      const int dy = static_cast<int>(rng.uniform_int(2 * spec.max_shift + 1)) -
                     spec.max_shift;
      const int dx = static_cast<int>(rng.uniform_int(2 * spec.max_shift + 1)) -
                     spec.max_shift;
      shift_image(img, c, h, w, dy, dx, spec.pad_value);
    }
    if (spec.hflip && rng.bernoulli(0.5)) hflip_image(img, c, h, w);
  }
}

}  // namespace cn::data
