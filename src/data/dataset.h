// In-memory labeled image dataset.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace cn::data {

/// A labeled image set: images in NCHW, labels as class indices.
struct Dataset {
  Tensor images;            // (N, C, H, W)
  std::vector<int> labels;  // N entries in [0, num_classes)
  int num_classes = 0;

  int64_t size() const { return images.empty() ? 0 : images.dim(0); }
  int64_t channels() const { return images.dim(1); }
  int64_t height() const { return images.dim(2); }
  int64_t width() const { return images.dim(3); }

  /// Copies one image into a (C,H,W)-shaped tensor.
  Tensor image(int64_t i) const;

  /// First n samples as a new dataset (for quick evaluation subsets).
  Dataset head(int64_t n) const;
};

/// Train/test split produced by the generators.
struct SplitDataset {
  Dataset train;
  Dataset test;
};

}  // namespace cn::data
