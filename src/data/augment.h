// Training-time data augmentation (random shift and horizontal flip).
//
// Augmentation operates on batches in place, with an explicit RNG for
// determinism. Digits are shift-only (flipping digits changes their class
// semantics); object images use shift + flip.
#pragma once

#include "data/batcher.h"
#include "tensor/rng.h"

namespace cn::data {

struct AugmentSpec {
  int max_shift = 2;      // pixels, per axis, uniform in [-max_shift, max_shift]
  bool hflip = true;      // random horizontal flip with p = 0.5
  float pad_value = 0.0f; // fill for pixels shifted in from outside
};

/// Randomly shifts one image (C,H,W view) by (dy, dx), filling with pad_value.
void shift_image(float* img, int64_t c, int64_t h, int64_t w, int dy, int dx,
                 float pad_value);

/// Flips one image horizontally in place.
void hflip_image(float* img, int64_t c, int64_t h, int64_t w);

/// Applies the augmentation spec to every image of the batch in place.
void augment_batch(Batch& batch, const AugmentSpec& spec, Rng& rng);

}  // namespace cn::data
