#include "data/synthetic.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "tensor/rng.h"

namespace cn::data {

Tensor Dataset::image(int64_t i) const {
  const int64_t sz = channels() * height() * width();
  Tensor img({channels(), height(), width()});
  std::copy(images.data() + i * sz, images.data() + (i + 1) * sz, img.data());
  return img;
}

Dataset Dataset::head(int64_t n) const {
  n = std::min(n, size());
  Dataset d;
  d.num_classes = num_classes;
  d.images = Tensor({n, channels(), height(), width()});
  const int64_t sz = channels() * height() * width();
  std::copy(images.data(), images.data() + n * sz, d.images.data());
  d.labels.assign(labels.begin(), labels.begin() + n);
  return d;
}

namespace {

// ---------- digit glyphs ----------

struct Seg {
  float x0, y0, x1, y1;
};

// Seven-segment-style strokes on a [0,1]^2 canvas, one glyph per class,
// extended with diagonals so all ten classes are geometrically distinct.
const std::vector<std::vector<Seg>>& digit_glyphs() {
  static const std::vector<std::vector<Seg>> glyphs = {
      // 0: rectangle
      {{0.25f, 0.15f, 0.75f, 0.15f}, {0.75f, 0.15f, 0.75f, 0.85f},
       {0.75f, 0.85f, 0.25f, 0.85f}, {0.25f, 0.85f, 0.25f, 0.15f}},
      // 1: vertical bar
      {{0.5f, 0.1f, 0.5f, 0.9f}},
      // 2: top, diag, bottom
      {{0.25f, 0.2f, 0.75f, 0.2f}, {0.75f, 0.2f, 0.25f, 0.8f},
       {0.25f, 0.8f, 0.75f, 0.8f}},
      // 3: top, middle, bottom, right
      {{0.25f, 0.15f, 0.75f, 0.15f}, {0.3f, 0.5f, 0.75f, 0.5f},
       {0.25f, 0.85f, 0.75f, 0.85f}, {0.75f, 0.15f, 0.75f, 0.85f}},
      // 4: left-upper, middle, right full
      {{0.3f, 0.1f, 0.3f, 0.5f}, {0.3f, 0.5f, 0.75f, 0.5f},
       {0.7f, 0.1f, 0.7f, 0.9f}},
      // 5: top, left-upper, middle, right-lower, bottom
      {{0.75f, 0.15f, 0.25f, 0.15f}, {0.25f, 0.15f, 0.25f, 0.5f},
       {0.25f, 0.5f, 0.75f, 0.5f}, {0.75f, 0.5f, 0.75f, 0.85f},
       {0.75f, 0.85f, 0.25f, 0.85f}},
      // 6: like 5 plus left-lower
      {{0.75f, 0.15f, 0.25f, 0.15f}, {0.25f, 0.15f, 0.25f, 0.85f},
       {0.25f, 0.5f, 0.75f, 0.5f}, {0.75f, 0.5f, 0.75f, 0.85f},
       {0.75f, 0.85f, 0.25f, 0.85f}},
      // 7: top + diagonal
      {{0.2f, 0.15f, 0.8f, 0.15f}, {0.8f, 0.15f, 0.4f, 0.9f}},
      // 8: rectangle + middle
      {{0.25f, 0.15f, 0.75f, 0.15f}, {0.75f, 0.15f, 0.75f, 0.85f},
       {0.75f, 0.85f, 0.25f, 0.85f}, {0.25f, 0.85f, 0.25f, 0.15f},
       {0.25f, 0.5f, 0.75f, 0.5f}},
      // 9: like 8 without lower-left
      {{0.25f, 0.15f, 0.75f, 0.15f}, {0.75f, 0.15f, 0.75f, 0.85f},
       {0.25f, 0.5f, 0.75f, 0.5f}, {0.25f, 0.15f, 0.25f, 0.5f},
       {0.75f, 0.85f, 0.3f, 0.85f}},
  };
  return glyphs;
}

// Distance from point p to segment (a,b), all in pixel coordinates.
float point_seg_dist(float px, float py, float ax, float ay, float bx, float by) {
  const float dx = bx - ax, dy = by - ay;
  const float len2 = dx * dx + dy * dy;
  float t = len2 > 0.0f ? ((px - ax) * dx + (py - ay) * dy) / len2 : 0.0f;
  t = std::clamp(t, 0.0f, 1.0f);
  const float cx = ax + t * dx, cy = ay + t * dy;
  return std::sqrt((px - cx) * (px - cx) + (py - cy) * (py - cy));
}

void render_digit(float* img, int64_t H, int64_t W, int label, const DigitsSpec& spec,
                  Rng& rng) {
  const auto& glyph = digit_glyphs()[static_cast<size_t>(label)];
  // Jittered copy of the segments in pixel space.
  const float ox = static_cast<float>(rng.normal(0.0, spec.jitter_px));
  const float oy = static_cast<float>(rng.normal(0.0, spec.jitter_px));
  const float s = 1.0f + static_cast<float>(rng.normal(0.0, 0.06));
  std::vector<Seg> segs;
  segs.reserve(glyph.size());
  for (const Seg& g : glyph) {
    Seg j;
    j.x0 = (0.5f + (g.x0 - 0.5f) * s) * W + ox +
           static_cast<float>(rng.normal(0.0, spec.jitter_px * 0.5));
    j.y0 = (0.5f + (g.y0 - 0.5f) * s) * H + oy +
           static_cast<float>(rng.normal(0.0, spec.jitter_px * 0.5));
    j.x1 = (0.5f + (g.x1 - 0.5f) * s) * W + ox +
           static_cast<float>(rng.normal(0.0, spec.jitter_px * 0.5));
    j.y1 = (0.5f + (g.y1 - 0.5f) * s) * H + oy +
           static_cast<float>(rng.normal(0.0, spec.jitter_px * 0.5));
    segs.push_back(j);
  }
  const float radius = spec.thickness * (1.0f + static_cast<float>(rng.normal(0.0, 0.15)));
  for (int64_t y = 0; y < H; ++y) {
    for (int64_t x = 0; x < W; ++x) {
      float d = 1e9f;
      for (const Seg& sg : segs)
        d = std::min(d, point_seg_dist(static_cast<float>(x), static_cast<float>(y),
                                       sg.x0, sg.y0, sg.x1, sg.y1));
      // Soft stroke profile.
      const float v = 1.0f / (1.0f + std::exp((d - radius) * 2.5f));
      img[y * W + x] = v + static_cast<float>(rng.normal(0.0, spec.noise_std));
    }
  }
}

// ---------- blob/grating objects ----------

struct Blob {
  float cx, cy, sx, sy;  // center, extents (fractions of image)
  float amp;
  float ch[3];  // per-channel amplitude mix
};

struct Grating {
  float freq, phase, angle, amp;
  float ch[3];
};

struct ClassProto {
  std::vector<Blob> blobs;
  std::vector<Grating> gratings;
};

ClassProto random_proto(const ObjectsSpec& spec, Rng& rng) {
  ClassProto p;
  for (int b = 0; b < spec.blobs_per_class; ++b) {
    Blob bl;
    bl.cx = static_cast<float>(rng.uniform(0.15, 0.85));
    bl.cy = static_cast<float>(rng.uniform(0.15, 0.85));
    bl.sx = static_cast<float>(rng.uniform(0.05, 0.25));
    bl.sy = static_cast<float>(rng.uniform(0.05, 0.25));
    bl.amp = static_cast<float>(rng.uniform(0.5, 1.0)) * (rng.bernoulli(0.5) ? 1.0f : -1.0f);
    for (float& c : bl.ch) c = static_cast<float>(rng.uniform(0.0, 1.0));
    p.blobs.push_back(bl);
  }
  for (int g = 0; g < spec.gratings_per_class; ++g) {
    Grating gr;
    gr.freq = static_cast<float>(rng.uniform(1.5, 5.0));
    gr.phase = static_cast<float>(rng.uniform(0.0, 6.28318));
    gr.angle = static_cast<float>(rng.uniform(0.0, 3.14159));
    gr.amp = static_cast<float>(rng.uniform(0.25, 0.6));
    for (float& c : gr.ch) c = static_cast<float>(rng.uniform(0.0, 1.0));
    p.gratings.push_back(gr);
  }
  return p;
}

void render_object(float* img, int64_t C, int64_t H, int64_t W, const ClassProto& proto,
                   const ClassProto& shared, const ObjectsSpec& spec, Rng& rng) {
  const float jit = spec.jitter_frac;
  auto draw = [&](const ClassProto& pr, float weight) {
    for (const Blob& b : pr.blobs) {
      const float cx = (b.cx + static_cast<float>(rng.normal(0.0, jit))) * W;
      const float cy = (b.cy + static_cast<float>(rng.normal(0.0, jit))) * H;
      const float sx = std::max(1.0f, b.sx * W * (1.0f + static_cast<float>(rng.normal(0.0, 0.2))));
      const float sy = std::max(1.0f, b.sy * H * (1.0f + static_cast<float>(rng.normal(0.0, 0.2))));
      for (int64_t c = 0; c < C; ++c) {
        const float a = weight * b.amp * b.ch[c % 3];
        if (std::fabs(a) < 1e-4f) continue;
        float* chan = img + c * H * W;
        for (int64_t y = 0; y < H; ++y) {
          const float dy = (static_cast<float>(y) - cy) / sy;
          for (int64_t x = 0; x < W; ++x) {
            const float dx = (static_cast<float>(x) - cx) / sx;
            chan[y * W + x] += a * std::exp(-0.5f * (dx * dx + dy * dy));
          }
        }
      }
    }
    for (const Grating& g : pr.gratings) {
      const float ph = g.phase + static_cast<float>(rng.normal(0.0, 0.5));
      const float ca = std::cos(g.angle), sa = std::sin(g.angle);
      const float k = 6.28318f * g.freq;
      for (int64_t c = 0; c < C; ++c) {
        const float a = weight * g.amp * g.ch[c % 3];
        if (std::fabs(a) < 1e-4f) continue;
        float* chan = img + c * H * W;
        for (int64_t y = 0; y < H; ++y) {
          const float fy = static_cast<float>(y) / H;
          for (int64_t x = 0; x < W; ++x) {
            const float fx = static_cast<float>(x) / W;
            chan[y * W + x] += a * std::sin(k * (ca * fx + sa * fy) + ph);
          }
        }
      }
    }
  };
  draw(proto, 1.0f - spec.class_similarity);
  draw(shared, spec.class_similarity);
  for (int64_t i = 0; i < C * H * W; ++i)
    img[i] += static_cast<float>(rng.normal(0.0, spec.noise_std));
}

// Normalizes train+test with the training set's mean/std.
void normalize(Dataset& train, Dataset& test) {
  double mean = 0.0;
  for (int64_t i = 0; i < train.images.size(); ++i) mean += train.images[i];
  mean /= static_cast<double>(train.images.size());
  double var = 0.0;
  for (int64_t i = 0; i < train.images.size(); ++i) {
    const double d = train.images[i] - mean;
    var += d * d;
  }
  var /= static_cast<double>(train.images.size());
  const float m = static_cast<float>(mean);
  const float inv = static_cast<float>(1.0 / std::sqrt(var + 1e-8));
  for (int64_t i = 0; i < train.images.size(); ++i)
    train.images[i] = (train.images[i] - m) * inv;
  for (int64_t i = 0; i < test.images.size(); ++i)
    test.images[i] = (test.images[i] - m) * inv;
}

}  // namespace

SplitDataset make_digits(const DigitsSpec& spec) {
  constexpr int64_t H = 28, W = 28;
  constexpr int kClasses = 10;
  Rng rng(spec.seed);
  SplitDataset out;
  auto gen = [&](Dataset& d, int64_t count) {
    d.num_classes = kClasses;
    d.images = Tensor({count, 1, H, W});
    d.labels.resize(static_cast<size_t>(count));
    for (int64_t i = 0; i < count; ++i) {
      const int label = static_cast<int>(i % kClasses);
      d.labels[static_cast<size_t>(i)] = label;
      render_digit(d.images.data() + i * H * W, H, W, label, spec, rng);
    }
  };
  gen(out.train, spec.train_count);
  gen(out.test, spec.test_count);
  normalize(out.train, out.test);
  return out;
}

SplitDataset make_objects(const ObjectsSpec& spec) {
  constexpr int64_t C = 3, H = 32, W = 32;
  if (spec.num_classes < 2) throw std::invalid_argument("make_objects: need >= 2 classes");
  Rng rng(spec.seed);
  std::vector<ClassProto> protos;
  protos.reserve(static_cast<size_t>(spec.num_classes));
  for (int64_t c = 0; c < spec.num_classes; ++c) protos.push_back(random_proto(spec, rng));
  const ClassProto shared = random_proto(spec, rng);

  SplitDataset out;
  auto gen = [&](Dataset& d, int64_t count) {
    d.num_classes = static_cast<int>(spec.num_classes);
    d.images = Tensor({count, C, H, W});
    d.labels.resize(static_cast<size_t>(count));
    for (int64_t i = 0; i < count; ++i) {
      const int label = static_cast<int>(i % spec.num_classes);
      d.labels[static_cast<size_t>(i)] = label;
      render_object(d.images.data() + i * C * H * W, C, H, W,
                    protos[static_cast<size_t>(label)], shared, spec, rng);
    }
  };
  gen(out.train, spec.train_count);
  gen(out.test, spec.test_count);
  normalize(out.train, out.test);
  return out;
}

}  // namespace cn::data
