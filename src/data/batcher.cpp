#include "data/batcher.h"

#include <algorithm>
#include <numeric>

namespace cn::data {

Batcher::Batcher(const Dataset& ds, int64_t batch_size)
    : ds_(ds), batch_size_(batch_size), order_(static_cast<size_t>(ds.size())) {
  std::iota(order_.begin(), order_.end(), 0);
}

int64_t Batcher::num_batches() const {
  return (ds_.size() + batch_size_ - 1) / batch_size_;
}

Batch Batcher::get(int64_t b) const {
  const int64_t lo = b * batch_size_;
  const int64_t hi = std::min(ds_.size(), lo + batch_size_);
  std::vector<int64_t> idx(order_.begin() + lo, order_.begin() + hi);
  return gather(ds_, idx);
}

void Batcher::reshuffle(Rng& rng) { rng.shuffle(order_); }

Batch gather(const Dataset& ds, const std::vector<int64_t>& idx) {
  const int64_t n = static_cast<int64_t>(idx.size());
  const int64_t sz = ds.channels() * ds.height() * ds.width();
  Batch batch;
  batch.images = Tensor({n, ds.channels(), ds.height(), ds.width()});
  batch.labels.resize(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    const int64_t src = idx[static_cast<size_t>(i)];
    std::copy(ds.images.data() + src * sz, ds.images.data() + (src + 1) * sz,
              batch.images.data() + i * sz);
    batch.labels[static_cast<size_t>(i)] = ds.labels[static_cast<size_t>(src)];
  }
  return batch;
}

}  // namespace cn::data
