#include "nn/metrics.h"

#include <cmath>

#include "tensor/ops.h"

namespace cn::nn {

float accuracy(const Tensor& logits, const std::vector<int>& labels) {
  const int64_t n = logits.dim(0);
  if (n == 0) return 0.0f;
  int64_t correct = 0;
  for (int64_t i = 0; i < n; ++i)
    if (argmax_row(logits, i) == labels[static_cast<size_t>(i)]) ++correct;
  return static_cast<float>(correct) / static_cast<float>(n);
}

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double d = x - mean_;
  mean_ += d / static_cast<double>(n_);
  m2_ += d * (x - mean_);
}

double RunningStats::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

}  // namespace cn::nn
