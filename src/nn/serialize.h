// Binary (de)serialization of model parameters.
//
// Format: magic "CNWT", version, param count, then per param:
// name length + name, rank, dims, raw float data. Parameters are matched by
// order and shape, with names checked when present.
#pragma once

#include <string>

#include "nn/sequential.h"

namespace cn::nn {

/// Writes all parameters of `model` to `path`. Throws std::runtime_error on IO failure.
void save_weights(Sequential& model, const std::string& path);

/// Loads parameters into `model` (shapes must match). Throws on mismatch/IO failure.
void load_weights(Sequential& model, const std::string& path);

}  // namespace cn::nn
