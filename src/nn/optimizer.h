// First-order optimizers. State is keyed by Param pointer; optimizers are
// created per training run and must not outlive the model they train.
#pragma once

#include <unordered_map>
#include <vector>

#include "nn/param.h"

namespace cn::nn {

class Optimizer {
 public:
  virtual ~Optimizer() = default;
  /// Applies one update to every trainable param and leaves grads intact
  /// (call zero_grad separately so regularizers can inspect gradients).
  virtual void step(const std::vector<Param*>& params) = 0;

  static void zero_grad(const std::vector<Param*>& params) {
    for (Param* p : params) p->zero_grad();
  }
};

/// SGD with momentum and decoupled weight decay.
class SGD final : public Optimizer {
 public:
  explicit SGD(float lr, float momentum = 0.9f, float weight_decay = 0.0f)
      : lr_(lr), momentum_(momentum), weight_decay_(weight_decay) {}

  void step(const std::vector<Param*>& params) override;

  void set_lr(float lr) { lr_ = lr; }
  float lr() const { return lr_; }

 private:
  float lr_, momentum_, weight_decay_;
  std::unordered_map<Param*, Tensor> velocity_;
};

/// Adam (Kingma & Ba) with decoupled weight decay (AdamW-style).
class Adam final : public Optimizer {
 public:
  explicit Adam(float lr, float beta1 = 0.9f, float beta2 = 0.999f,
                float eps = 1e-8f, float weight_decay = 0.0f)
      : lr_(lr), beta1_(beta1), beta2_(beta2), eps_(eps), weight_decay_(weight_decay) {}

  void step(const std::vector<Param*>& params) override;

  void set_lr(float lr) { lr_ = lr; }
  float lr() const { return lr_; }

 private:
  float lr_, beta1_, beta2_, eps_, weight_decay_;
  int64_t t_ = 0;
  std::unordered_map<Param*, Tensor> m_, v_;
};

/// Clips the global L2 norm of all trainable gradients to `max_norm`.
/// Returns the pre-clip norm.
float clip_grad_norm(const std::vector<Param*>& params, float max_norm);

}  // namespace cn::nn
