#include "nn/dense.h"

#include <algorithm>
#include <stdexcept>

#include "tensor/ops.h"

namespace cn::nn {

Dense::Dense(int64_t in_features, int64_t out_features, std::string label)
    : in_(in_features),
      out_(out_features),
      w_(Shape{out_features, in_features}, label + ".w"),
      b_(Shape{out_features}, label + ".b") {
  label_ = std::move(label);
}

Tensor Dense::forward(const Tensor& x, bool train) {
  if (x.rank() != 2 || x.dim(1) != in_)
    throw std::invalid_argument(label_ + ": bad input shape " + to_string(x.shape()));
  if (train) x_cache_ = x;
  // live_weight() refreshes the effective weight so nominal-weight edits
  // between forwards (optimizer steps, tests) are always reflected.
  return forward_fused(x, live_weight(), b_.value.data(), /*relu=*/false);
}

Tensor Dense::forward_relu(const Tensor& x) {
  return forward_fused(x, live_weight(), b_.value.data(), /*relu=*/true);
}

const Tensor& Dense::live_weight() {
  if (var_active_) w_eff_ = mul(w_.value, factors_);
  return effective_weight();
}

Tensor Dense::forward_fused(const Tensor& x, const Tensor& w, const float* b,
                            bool relu) {
  if (x.rank() != 2 || x.dim(1) != in_)
    throw std::invalid_argument(label_ + ": bad input shape " + to_string(x.shape()));
  Tensor y = matmul_nt(x, w);  // (N, out)
  const int64_t N = y.dim(0);
  for (int64_t n = 0; n < N; ++n) {
    float* row = y.data() + n * out_;
    for (int64_t o = 0; o < out_; ++o) row[o] += b[o];
    if (relu)
      for (int64_t o = 0; o < out_; ++o) row[o] = std::max(row[o], 0.0f);
  }
  return y;
}

Tensor Dense::backward(const Tensor& grad_out) {
  if (x_cache_.empty())
    throw std::logic_error(label_ + ": backward without cached forward");
  const int64_t N = grad_out.dim(0);
  // dW_eff = dY^T X, db = colsum(dY), dX = dY W_eff.
  // With variation active, W_eff = W ∘ f, so dL/dW = dL/dW_eff ∘ f.
  Tensor dW = matmul_tn(grad_out, x_cache_);  // (out, in)
  if (var_active_) mul_inplace(dW, factors_);
  add_inplace(w_.grad, dW);
  for (int64_t n = 0; n < N; ++n) {
    const float* row = grad_out.data() + n * out_;
    for (int64_t o = 0; o < out_; ++o) b_.grad[o] += row[o];
  }
  return matmul(grad_out, effective_weight());
}

void Dense::set_weight_factors(const Tensor& f) {
  if (!f.same_shape(w_.value))
    throw std::invalid_argument(label_ + ": factor shape mismatch");
  w_eff_ = mul(w_.value, f);
  factors_ = f;
  var_active_ = true;
}

void Dense::clear_weight_factors() {
  var_active_ = false;
  w_eff_ = Tensor();
  factors_ = Tensor();
}

std::unique_ptr<Layer> Dense::clone() const {
  auto c = std::make_unique<Dense>(in_, out_, label_);
  c->w_ = w_;
  c->b_ = b_;
  c->w_eff_ = w_eff_;
  c->factors_ = factors_;
  c->var_active_ = var_active_;
  return c;
}

}  // namespace cn::nn
