// Weight initialization schemes.
#pragma once

#include "nn/sequential.h"
#include "tensor/rng.h"

namespace cn::nn {

/// He (Kaiming) normal init for a weight matrix shaped (fan_out, fan_in...).
void he_normal(Tensor& w, int64_t fan_in, Rng& rng);

/// Xavier/Glorot uniform init.
void xavier_uniform(Tensor& w, int64_t fan_in, int64_t fan_out, Rng& rng);

/// Orthogonal-ish init: He normal followed by row normalization to `gain`.
/// A cheap stand-in for true orthogonal init that pairs well with the
/// Lipschitz regularizer (rows start near the target norm).
void scaled_rows(Tensor& w, float gain, Rng& rng);

/// Initializes every Dense/Conv2D weight in the model with He normal and
/// zeroes the biases. Layers are discovered via params() naming convention.
void init_model(Sequential& model, Rng& rng);

}  // namespace cn::nn
