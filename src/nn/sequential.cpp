#include "nn/sequential.h"

#include <stdexcept>

#include "nn/fusion.h"

namespace cn::nn {

// Out of line: ~FusedPlan must be visible to destroy/move the cached plan.
Sequential::Sequential(std::string label) { label_ = std::move(label); }
Sequential::~Sequential() = default;
Sequential::Sequential(Sequential&&) noexcept = default;
Sequential& Sequential::operator=(Sequential&&) noexcept = default;

Layer& Sequential::add(LayerPtr layer) {
  plan_.reset();  // structural edit: any cached fused plan is stale
  layers_.push_back(std::move(layer));
  return *layers_.back();
}

Tensor Sequential::forward(const Tensor& x, bool train) {
  if (!train && fusion_enabled()) {
    // The plan holds raw pointers into layers_; moving this Sequential keeps
    // them valid (layers_ owns through unique_ptr), structural edits reset it.
    if (!plan_) plan_ = std::make_unique<FusedPlan>(*this);
    return plan_->execute(x);
  }
  Tensor h = x;
  for (auto& l : layers_) h = l->forward(h, train);
  return h;
}

Tensor Sequential::backward(const Tensor& grad_out) {
  Tensor g = grad_out;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) g = (*it)->backward(g);
  return g;
}

std::vector<Param*> Sequential::params() {
  std::vector<Param*> out;
  for (auto& l : layers_)
    for (Param* p : l->params()) out.push_back(p);
  return out;
}

void Sequential::collect_analog(std::vector<PerturbableWeight*>& out) {
  for (auto& l : layers_) l->collect_analog(out);
}

std::unique_ptr<Layer> Sequential::clone() const {
  auto c = std::make_unique<Sequential>(label_);
  for (const auto& l : layers_) c->layers_.push_back(l->clone());
  return c;
}

Sequential Sequential::clone_model() const {
  Sequential c(label_);
  for (const auto& l : layers_) c.layers_.push_back(l->clone());
  return c;
}

LayerPtr Sequential::replace_layer(int64_t i, LayerPtr l) {
  if (i < 0 || i >= num_layers())
    throw std::out_of_range("replace_layer: index " + std::to_string(i));
  plan_.reset();  // structural edit: any cached fused plan is stale
  std::swap(layers_[static_cast<size_t>(i)], l);
  return l;
}

std::vector<PerturbableWeight*> Sequential::analog_sites() {
  std::vector<PerturbableWeight*> out;
  collect_analog(out);
  return out;
}

void Sequential::clear_all_variations() {
  for (PerturbableWeight* s : analog_sites()) s->clear_weight_factors();
}

int64_t Sequential::num_params() const {
  int64_t n = 0;
  for (Param* p : const_cast<Sequential*>(this)->params()) n += p->size();
  return n;
}

int64_t Sequential::num_trainable_params() const {
  int64_t n = 0;
  for (Param* p : const_cast<Sequential*>(this)->params())
    if (p->trainable) n += p->size();
  return n;
}

void Sequential::set_trainable(bool trainable) {
  for (Param* p : params()) p->trainable = trainable;
}

}  // namespace cn::nn
