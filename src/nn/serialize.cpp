#include "nn/serialize.h"

#include <cstdint>
#include <fstream>
#include <stdexcept>

namespace cn::nn {

namespace {
constexpr uint32_t kMagic = 0x434E5754;  // "CNWT"
constexpr uint32_t kVersion = 1;

template <typename T>
void write_pod(std::ofstream& os, const T& v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
void read_pod(std::ifstream& is, T& v) {
  is.read(reinterpret_cast<char*>(&v), sizeof(T));
  if (!is) throw std::runtime_error("load_weights: truncated file");
}
}  // namespace

void save_weights(Sequential& model, const std::string& path) {
  std::ofstream os(path, std::ios::binary);
  if (!os) throw std::runtime_error("save_weights: cannot open " + path);
  auto params = model.params();
  write_pod(os, kMagic);
  write_pod(os, kVersion);
  write_pod(os, static_cast<uint64_t>(params.size()));
  for (Param* p : params) {
    write_pod(os, static_cast<uint32_t>(p->name.size()));
    os.write(p->name.data(), static_cast<std::streamsize>(p->name.size()));
    write_pod(os, static_cast<uint32_t>(p->value.rank()));
    for (int64_t d : p->value.shape()) write_pod(os, static_cast<int64_t>(d));
    os.write(reinterpret_cast<const char*>(p->value.data()),
             static_cast<std::streamsize>(p->value.size() * sizeof(float)));
  }
  if (!os) throw std::runtime_error("save_weights: write failed for " + path);
}

void load_weights(Sequential& model, const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("load_weights: cannot open " + path);
  uint32_t magic = 0, version = 0;
  uint64_t count = 0;
  read_pod(is, magic);
  read_pod(is, version);
  read_pod(is, count);
  if (magic != kMagic) throw std::runtime_error("load_weights: bad magic");
  if (version != kVersion) throw std::runtime_error("load_weights: bad version");
  auto params = model.params();
  if (count != params.size())
    throw std::runtime_error("load_weights: param count mismatch");
  for (Param* p : params) {
    uint32_t name_len = 0;
    read_pod(is, name_len);
    std::string name(name_len, '\0');
    is.read(name.data(), name_len);
    uint32_t rank = 0;
    read_pod(is, rank);
    Shape shape(rank);
    for (auto& d : shape) read_pod(is, d);
    if (shape != p->value.shape())
      throw std::runtime_error("load_weights: shape mismatch for " + p->name);
    is.read(reinterpret_cast<char*>(p->value.data()),
            static_cast<std::streamsize>(p->value.size() * sizeof(float)));
    if (!is) throw std::runtime_error("load_weights: truncated tensor data");
  }
}

}  // namespace cn::nn
