#include "nn/fusion.h"

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <mutex>
#include <stdexcept>
#include <string>

#include "nn/batchnorm.h"
#include "nn/dense.h"
#include "nn/pooling.h"
#include "obs/metrics.h"

namespace cn::nn {

// ---------------------------------------------------------------------------
// Process-wide knob. Same shape as the exec-target default: an explicit
// override wins, otherwise CORRECTNET_FUSION is read and validated once at
// first use (so a typo'd CI matrix value fails loudly), default on.
// ---------------------------------------------------------------------------

namespace {

struct FusionKnob {
  std::once_flag env_once;
  bool env_default = true;
  std::atomic<int> override_{-1};  // -1 = none, 0 = off, 1 = on
};

FusionKnob& knob() {
  static FusionKnob k;
  return k;
}

bool parse_fusion_env() {
  const char* v = std::getenv("CORRECTNET_FUSION");
  if (!v || !*v) return true;
  const std::string s(v);
  if (s == "on" || s == "1" || s == "true") return true;
  if (s == "off" || s == "0" || s == "false") return false;
  throw std::runtime_error("CORRECTNET_FUSION: invalid value '" + s +
                           "' (expected on/off/1/0)");
}

}  // namespace

bool fusion_enabled() {
  FusionKnob& k = knob();
  const int ov = k.override_.load(std::memory_order_relaxed);
  if (ov >= 0) return ov != 0;
  std::call_once(k.env_once, [&k] { k.env_default = parse_fusion_env(); });
  return k.env_default;
}

void set_fusion_enabled(bool on) {
  knob().override_.store(on ? 1 : 0, std::memory_order_relaxed);
}

void reset_fusion_enabled() {
  knob().override_.store(-1, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Passes. The chain is linear (one producer, one consumer per node), so a
// node's effective producer is found by walking through skipped nodes.
// ---------------------------------------------------------------------------

namespace {

GraphNode* live_producer(LayerGraph& g, const GraphNode& n) {
  const GraphNode* cur = &n;
  while (!cur->producers.empty()) {
    GraphNode* p = &g.nodes[static_cast<size_t>(cur->producers.front())];
    if (!p->skip) return p;
    cur = p;
  }
  return nullptr;
}

int64_t pass_elide_dropout(LayerGraph& g) {
  int64_t n = 0;
  for (GraphNode& node : g.nodes) {
    if (node.op != OpKind::kDropout || node.skip) continue;
    node.skip = true;
    ++n;
  }
  return n;
}

int64_t pass_fold_batchnorm(LayerGraph& g) {
  int64_t n = 0;
  for (GraphNode& node : g.nodes) {
    if (node.op != OpKind::kBatchNorm || node.skip) continue;
    auto* bn = dynamic_cast<BatchNorm2D*>(node.layer);
    if (!bn) continue;
    GraphNode* p = live_producer(g, node);
    // Only conv2d: batchnorm2d is NCHW-only, so it can never legally follow
    // a dense (rank-2 output) — there is no dense+bn graph to fold. Crossbar
    // convs keep their bn standalone: conductances are programmed, not
    // re-scalable per forward.
    if (!p || p->op != OpKind::kConv2D || p->folded_bn) continue;
    auto* conv = dynamic_cast<Conv2D*>(p->layer);
    if (!conv || conv->out_channels() != bn->channels()) continue;
    p->folded_bn = bn;
    node.skip = true;
    ++n;
  }
  return n;
}

// Reads a pool layer's window/kind into a PrePool; window 0 = not a pool.
PrePool pool_params(const GraphNode& node) {
  PrePool pp;
  if (auto* mp = dynamic_cast<MaxPool2D*>(node.layer)) {
    pp.kind = PrePool::Kind::kMax;
    pp.window = mp->window();
  } else if (auto* ap = dynamic_cast<AvgPool2D*>(node.layer)) {
    pp.kind = PrePool::Kind::kAvg;
    pp.window = ap->window();
  }
  return pp;
}

// Pool consuming a digital conv's output (directly, or through skipped
// relu/bn/dropout nodes) pools inside that conv's kernel epilogue. Runs
// before pass_fuse_pool so the upstream conv — whose full-resolution output
// the rewrite elides — wins over the downstream one.
int64_t pass_fuse_post_pool(LayerGraph& g) {
  int64_t n = 0;
  for (GraphNode& node : g.nodes) {
    if ((node.op != OpKind::kMaxPool && node.op != OpKind::kAvgPool) ||
        node.skip)
      continue;
    GraphNode* p = live_producer(g, node);
    if (!p || p->op != OpKind::kConv2D || p->post_pool.window > 0) continue;
    auto* conv = dynamic_cast<Conv2D*>(p->layer);
    if (!conv) continue;
    const PrePool pp = pool_params(node);
    if (pp.window <= 0 || conv->out_h() % pp.window != 0 ||
        conv->out_w() % pp.window != 0)
      continue;
    p->post_pool = pp;
    node.skip = true;
    ++n;
  }
  return n;
}

int64_t pass_fuse_pool(LayerGraph& g) {
  int64_t n = 0;
  for (GraphNode& node : g.nodes) {
    if (node.op != OpKind::kConv2D || node.skip) continue;
    if (node.pre_pool.window > 0) continue;
    auto* conv = dynamic_cast<Conv2D*>(node.layer);
    if (!conv) continue;
    GraphNode* p = live_producer(g, node);
    if (!p || (p->op != OpKind::kMaxPool && p->op != OpKind::kAvgPool)) continue;
    const PrePool pp = pool_params(*p);
    if (pp.window <= 0) continue;
    node.pre_pool = pp;
    p->skip = true;
    ++n;
  }
  return n;
}

int64_t pass_fuse_relu(LayerGraph& g) {
  int64_t n = 0;
  for (GraphNode& node : g.nodes) {
    if (node.op != OpKind::kReLU || node.skip) continue;
    GraphNode* p = live_producer(g, node);
    if (!p || p->relu_epilogue) continue;
    const bool matmul_bearing =
        p->op == OpKind::kConv2D || p->op == OpKind::kDense ||
        p->op == OpKind::kCrossbarConv2D || p->op == OpKind::kCrossbarDense;
    if (!matmul_bearing) continue;
    p->relu_epilogue = true;
    node.skip = true;
    ++n;
  }
  return n;
}

}  // namespace

FusionStats run_fusion_passes(LayerGraph& g, const FusionOptions& opts) {
  FusionStats s;
  if (opts.elide_dropout) s.dropout_elided = pass_elide_dropout(g);
  if (opts.fold_batchnorm) s.bn_folded = pass_fold_batchnorm(g);
  if (opts.fuse_relu) s.relu_fused = pass_fuse_relu(g);
  if (opts.fuse_pool) {
    s.post_pools_fused = pass_fuse_post_pool(g);
    s.pools_fused = pass_fuse_pool(g);
  }
  auto& m = obs::metrics();
  m.counter("fusion.dropout_elided").add(static_cast<uint64_t>(s.dropout_elided));
  m.counter("fusion.bn_folded").add(static_cast<uint64_t>(s.bn_folded));
  m.counter("fusion.pools_fused").add(static_cast<uint64_t>(s.pools_fused));
  m.counter("fusion.post_pools_fused")
      .add(static_cast<uint64_t>(s.post_pools_fused));
  m.counter("fusion.relu_fused").add(static_cast<uint64_t>(s.relu_fused));
  return s;
}

// ---------------------------------------------------------------------------
// Executor.
// ---------------------------------------------------------------------------

namespace {

// Folds a batchnorm's eval-time affine into explicit conv weight/bias
// tensors: y = γ·(conv(x)+b−μ)·inv_std + β with inv_std = 1/√(σ²+ε), i.e.
// w' = w·s, b' = (b−μ)·s + β with s = γ·inv_std. Matches BatchNorm2D's
// float arithmetic (same inv_std expression); re-rounding of the scaled
// products is what the kBnFold* tolerance covers.
void fold_batchnorm_params(Conv2D& conv, BatchNorm2D& bn, Tensor& wf, Tensor& bf) {
  const Tensor& w = conv.live_weight();
  const int64_t out_c = conv.out_channels();
  const int64_t k2 = w.dim(1);
  wf = Tensor(w.shape());
  bf = Tensor({out_c});
  const float* pw = w.data();
  const float* pb = conv.bias().value.data();
  const float* g = bn.gamma().value.data();
  const float* beta = bn.beta().value.data();
  const float* rm = bn.running_mean().data();
  const float* rv = bn.running_var().data();
  const float eps = bn.eps();
  for (int64_t c = 0; c < out_c; ++c) {
    const float inv_std = 1.0f / std::sqrt(rv[c] + eps);
    const float s = g[c] * inv_std;
    float* wrow = wf.data() + c * k2;
    const float* srow = pw + c * k2;
    for (int64_t k = 0; k < k2; ++k) wrow[k] = srow[k] * s;
    bf[c] = (pb[c] - rm[c]) * s + beta[c];
  }
}

}  // namespace

FusedPlan::FusedPlan(Sequential& model, const FusionOptions& opts)
    : graph_(LayerGraph::build(model, /*train=*/false)) {
  stats_ = run_fusion_passes(graph_, opts);
  obs::metrics().counter("fusion.plans").add(1);
}

Tensor FusedPlan::run_node(GraphNode& n, const Tensor& x) {
  if (n.op == OpKind::kConv2D) {
    if (auto* conv = dynamic_cast<Conv2D*>(n.layer)) {
      const PrePool* pp = n.pre_pool.window > 0 ? &n.pre_pool : nullptr;
      const PrePool* post = n.post_pool.window > 0 ? &n.post_pool : nullptr;
      if (n.folded_bn) {
        // Folded per call: weights are always read live (variation factors,
        // weight edits); the fold is O(weights), negligible next to the conv.
        Tensor wf, bf;
        fold_batchnorm_params(*conv, *n.folded_bn, wf, bf);
        return conv->forward_fused(x, wf.data(), bf.data(), pp, n.relu_epilogue,
                                   post);
      }
      return conv->forward_fused(x, conv->live_weight().data(),
                                 conv->bias().value.data(), pp, n.relu_epilogue,
                                 post);
    }
  }
  if (n.op == OpKind::kDense) {
    if (auto* d = dynamic_cast<Dense*>(n.layer))
      return d->forward_fused(x, d->live_weight(), d->bias().value.data(),
                              n.relu_epilogue);
  }
  if (n.relu_epilogue) return n.layer->forward_relu(x);
  return n.layer->forward(x, /*train=*/false);
}

Tensor FusedPlan::execute(const Tensor& x) {
  const Tensor* cur = &x;
  Tensor h;
  bool ran = false;
  for (GraphNode& n : graph_.nodes) {
    if (n.skip) continue;
    // Flatten over an intermediate the plan owns is pure metadata: reshape
    // in place instead of Flatten::forward's deep copy. Bitwise-exact (the
    // buffer is untouched). The graph-input case still copies — the caller's
    // tensor must not be mutated.
    if (n.op == OpKind::kFlatten && ran && h.rank() >= 1 && h.dim(0) > 0) {
      h.reshape({h.dim(0), h.size() / h.dim(0)});
      continue;
    }
    Tensor out = run_node(n, *cur);
    h = std::move(out);
    cur = &h;
    ran = true;
  }
  // Empty or fully-elided graph: identity, matching the plain layer loop.
  return ran ? std::move(h) : Tensor(x);
}

}  // namespace cn::nn
