// 2-D batch normalization.
//
// In analog-in-memory designs the affine normalization typically executes in
// the digital periphery, so BatchNorm2D carries no analog site: its
// parameters are never perturbed. At inference it applies fixed running
// statistics, so it does NOT adapt to (and cannot mask) weight variations.
#pragma once

#include "nn/layer.h"

namespace cn::nn {

class BatchNorm2D final : public Layer {
 public:
  explicit BatchNorm2D(int64_t channels, float momentum = 0.9f, float eps = 1e-5f,
                       std::string label = "bn");

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<Param*> params() override { return {&gamma_, &beta_}; }
  std::unique_ptr<Layer> clone() const override;
  std::string kind() const override { return "batchnorm2d"; }
  /// Train mode uses batch statistics and updates the running stats — folding
  /// a train-mode BN into its producer would bake stale statistics in.
  bool train_mode_sensitive() const override { return true; }

  Param& gamma() { return gamma_; }
  Param& beta() { return beta_; }
  const Tensor& running_mean() const { return running_mean_; }
  const Tensor& running_var() const { return running_var_; }
  int64_t channels() const { return channels_; }
  float eps() const { return eps_; }

 private:
  int64_t channels_;
  float momentum_, eps_;
  Param gamma_, beta_;
  Tensor running_mean_, running_var_;
  // backward caches
  Tensor x_hat_;       // normalized input
  Tensor batch_inv_std_;
  Shape in_shape_;
};

}  // namespace cn::nn
