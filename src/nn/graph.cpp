#include "nn/graph.h"

#include <sstream>
#include <stdexcept>

namespace cn::nn {

OpKind classify_op(const std::string& kind) {
  if (kind == "conv2d") return OpKind::kConv2D;
  if (kind == "dense") return OpKind::kDense;
  if (kind == "batchnorm2d") return OpKind::kBatchNorm;
  if (kind == "relu") return OpKind::kReLU;
  if (kind == "maxpool") return OpKind::kMaxPool;
  if (kind == "avgpool") return OpKind::kAvgPool;
  if (kind == "dropout") return OpKind::kDropout;
  if (kind == "flatten") return OpKind::kFlatten;
  if (kind == "crossbar_conv2d") return OpKind::kCrossbarConv2D;
  if (kind == "crossbar_dense") return OpKind::kCrossbarDense;
  return OpKind::kOpaque;
}

const char* to_string(OpKind k) {
  switch (k) {
    case OpKind::kConv2D: return "conv2d";
    case OpKind::kDense: return "dense";
    case OpKind::kBatchNorm: return "batchnorm";
    case OpKind::kReLU: return "relu";
    case OpKind::kMaxPool: return "maxpool";
    case OpKind::kAvgPool: return "avgpool";
    case OpKind::kDropout: return "dropout";
    case OpKind::kFlatten: return "flatten";
    case OpKind::kCrossbarConv2D: return "crossbar_conv2d";
    case OpKind::kCrossbarDense: return "crossbar_dense";
    case OpKind::kOpaque: return "opaque";
  }
  return "?";
}

LayerGraph LayerGraph::build(Sequential& model, bool train) {
  if (train) {
    std::string sensitive;
    for (int64_t i = 0; i < model.num_layers(); ++i) {
      const Layer& l = model.layer(i);
      if (!l.train_mode_sensitive()) continue;
      if (!sensitive.empty()) sensitive += ", ";
      sensitive += l.label();
    }
    throw std::logic_error(
        "LayerGraph: train-mode lowering is not supported" +
        (sensitive.empty()
             ? std::string(" (no eval-time semantics for training graphs)")
             : " — train-mode-sensitive layers present: " + sensitive));
  }
  LayerGraph g;
  const int64_t n = model.num_layers();
  g.nodes.reserve(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    GraphNode node;
    node.id = i;
    node.layer = &model.layer(i);
    node.op = classify_op(node.layer->kind());
    if (i > 0) node.producers.push_back(i - 1);
    if (i + 1 < n) node.consumers.push_back(i + 1);
    g.nodes.push_back(std::move(node));
  }
  return g;
}

std::string LayerGraph::to_string() const {
  std::ostringstream os;
  for (const GraphNode& n : nodes) {
    os << "#" << n.id << " " << cn::nn::to_string(n.op) << " '"
       << (n.layer ? n.layer->label() : "<null>") << "'";
    os << " <-[";
    for (size_t i = 0; i < n.producers.size(); ++i)
      os << (i ? "," : "") << n.producers[i];
    os << "] ->[";
    for (size_t i = 0; i < n.consumers.size(); ++i)
      os << (i ? "," : "") << n.consumers[i];
    os << "]";
    if (n.skip) os << " skip";
    if (n.relu_epilogue) os << " +relu";
    if (n.folded_bn) os << " +bn-fold";
    if (n.pre_pool.window > 0)
      os << " +pre-" << (n.pre_pool.kind == PrePool::Kind::kMax ? "max" : "avg")
         << "pool" << n.pre_pool.window;
    if (n.post_pool.window > 0)
      os << " +post-" << (n.post_pool.kind == PrePool::Kind::kMax ? "max" : "avg")
         << "pool" << n.post_pool.window;
    os << "\n";
  }
  return os.str();
}

}  // namespace cn::nn
