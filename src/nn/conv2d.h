// 2-D convolution (NCHW) via im2col + matmul, with analog-weight support.
#pragma once

#include "nn/layer.h"
#include "tensor/ops.h"

namespace cn::nn {

/// A pooling stage fused ahead of a convolution's im2col producer (the
/// pool-fusion pass, nn/fusion.h): each input image is pooled into a
/// per-thread staging buffer with arithmetic identical to MaxPool2D /
/// AvgPool2D, then convolved from the staging buffer — the pooled
/// intermediate tensor is never materialized.
struct PrePool {
  enum class Kind { kMax, kAvg };
  Kind kind = Kind::kAvg;
  int64_t window = 0;  // square window == stride, matching the pool layers
};

/// Convolution with kernel W stored as (out_c, in_c*kh*kw) and bias (out_c).
///
/// Forward/backward run per-image im2col in parallel over the batch. The
/// kernel matrix is the analog crossbar payload; variation factors multiply
/// it elementwise (paper Eq. 1).
class Conv2D final : public Layer, public PerturbableWeight {
 public:
  Conv2D(int64_t in_c, int64_t out_c, int64_t kernel, int64_t stride, int64_t pad,
         int64_t in_h, int64_t in_w, std::string label = "conv");

  Tensor forward(const Tensor& x, bool train) override;
  Tensor forward_relu(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;

  /// Eval/exec kernel through explicit weight (out_c, in_c*kh*kw) and bias
  /// (out_c) buffers — the bn-fold pass feeds folded tensors here — with an
  /// optional fused pre-pool stage, branchless ReLU epilogue, and optional
  /// post-pool stage (the conv's output is pooled per image from a scratch
  /// buffer before it is written back, so the full-resolution feature map is
  /// never materialized; the ReLU epilogue, when requested, applies before
  /// pooling, matching the conv→relu→pool graph order). forward() routes
  /// through this with the live weight, so the fused and unfused paths share
  /// one accumulation order (the exactness contract). A post-pool window
  /// must divide the conv output exactly (the fusion pass guarantees it).
  Tensor forward_fused(const Tensor& x, const float* w, const float* b,
                       const PrePool* pre_pool, bool relu,
                       const PrePool* post_pool = nullptr);

  /// The weight tensor forward() would use right now: refreshes w ∘ f when
  /// variation factors are active. Used by the fused graph executor.
  const Tensor& live_weight() {
    if (var_active_) w_eff_ = mul(w_.value, factors_);
    return effective_weight();
  }

  std::vector<Param*> params() override { return {&w_, &b_}; }
  void collect_analog(std::vector<PerturbableWeight*>& out) override {
    out.push_back(this);
  }
  std::unique_ptr<Layer> clone() const override;
  std::string kind() const override { return "conv2d"; }
  bool is_analog() const override { return true; }

  // PerturbableWeight
  const Tensor& nominal_weight() const override { return w_.value; }
  void set_weight_factors(const Tensor& f) override;
  void clear_weight_factors() override;
  int64_t weight_count() const override { return w_.size(); }
  const std::string& site_label() const override { return label_; }

  const ConvGeom& geom() const { return geom_; }
  int64_t out_channels() const { return out_c_; }
  int64_t in_channels() const { return geom_.in_c; }
  int64_t out_h() const { return geom_.out_h(); }
  int64_t out_w() const { return geom_.out_w(); }
  Param& weight() { return w_; }
  Param& bias() { return b_; }

 private:
  const Tensor& effective_weight() const { return var_active_ ? w_eff_ : w_.value; }

  ConvGeom geom_;
  int64_t out_c_;
  Param w_, b_;
  Tensor w_eff_;
  Tensor factors_;     // f, kept to chain dL/dW = dL/dW_eff ∘ f
  bool var_active_ = false;
  Tensor x_cache_;     // (N, C, H, W) input for backward
};

}  // namespace cn::nn
