#include "nn/activations.h"

#include <cmath>

namespace cn::nn {

Tensor ReLU::forward(const Tensor& x, bool train) {
  // Branchless: sign-random activations make the naive `if` loop pay a
  // mispredict per element, which dominated inference profiles.
  Tensor y = x;
  float* yd = y.data();
  if (train) {
    mask_ = Tensor(x.shape());
    float* md = mask_.data();
    for (int64_t i = 0; i < y.size(); ++i) {
      md[i] = yd[i] > 0.0f ? 1.0f : 0.0f;
      yd[i] = std::max(yd[i], 0.0f);
    }
  } else {
    for (int64_t i = 0; i < y.size(); ++i) yd[i] = std::max(yd[i], 0.0f);
  }
  return y;
}

Tensor ReLU::backward(const Tensor& grad_out) {
  Tensor gx = grad_out;
  for (int64_t i = 0; i < gx.size(); ++i) gx[i] *= mask_[i];
  return gx;
}

std::unique_ptr<Layer> ReLU::clone() const { return std::make_unique<ReLU>(label_); }

Tensor Tanh::forward(const Tensor& x, bool train) {
  Tensor y = x;
  for (int64_t i = 0; i < y.size(); ++i) y[i] = std::tanh(y[i]);
  if (train) y_cache_ = y;
  return y;
}

Tensor Tanh::backward(const Tensor& grad_out) {
  Tensor gx = grad_out;
  for (int64_t i = 0; i < gx.size(); ++i) gx[i] *= 1.0f - y_cache_[i] * y_cache_[i];
  return gx;
}

std::unique_ptr<Layer> Tanh::clone() const { return std::make_unique<Tanh>(label_); }

Tensor Flatten::forward(const Tensor& x, bool train) {
  if (train) in_shape_ = x.shape();
  else if (in_shape_.empty()) in_shape_ = x.shape();
  return x.reshaped({x.dim(0), x.size() / x.dim(0)});
}

Tensor Flatten::backward(const Tensor& grad_out) {
  return grad_out.reshaped(in_shape_);
}

std::unique_ptr<Layer> Flatten::clone() const {
  auto c = std::make_unique<Flatten>(label_);
  c->in_shape_ = in_shape_;
  return c;
}

}  // namespace cn::nn
