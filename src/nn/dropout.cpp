#include "nn/dropout.h"

#include <stdexcept>

namespace cn::nn {

Dropout::Dropout(float p, uint64_t seed, std::string label)
    : p_(p), rng_(seed), seed_(seed) {
  if (p < 0.0f || p >= 1.0f) throw std::invalid_argument("Dropout: p must be in [0,1)");
  label_ = std::move(label);
}

Tensor Dropout::forward(const Tensor& x, bool train) {
  if (!train || p_ == 0.0f) return x;
  mask_ = Tensor(x.shape());
  const float keep = 1.0f - p_;
  const float inv_keep = 1.0f / keep;
  Tensor y = x;
  for (int64_t i = 0; i < y.size(); ++i) {
    const float m = rng_.bernoulli(keep) ? inv_keep : 0.0f;
    mask_[i] = m;
    y[i] *= m;
  }
  return y;
}

Tensor Dropout::backward(const Tensor& grad_out) {
  if (mask_.empty()) return grad_out;
  Tensor gx = grad_out;
  for (int64_t i = 0; i < gx.size(); ++i) gx[i] *= mask_[i];
  return gx;
}

std::unique_ptr<Layer> Dropout::clone() const {
  return std::make_unique<Dropout>(p_, seed_, label_);
}

}  // namespace cn::nn
