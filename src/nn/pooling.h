// Max and average pooling layers (NCHW).
#pragma once

#include "nn/layer.h"
#include "tensor/ops.h"

namespace cn::nn {

/// Max pooling with square window == stride (the only form VGG/LeNet need).
class MaxPool2D final : public Layer {
 public:
  MaxPool2D(int64_t window, std::string label = "maxpool")
      : window_(window) {
    label_ = std::move(label);
  }
  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::unique_ptr<Layer> clone() const override;
  std::string kind() const override { return "maxpool"; }

  int64_t window() const { return window_; }

 private:
  int64_t window_;
  Shape in_shape_;
  std::vector<int64_t> argmax_;  // flat input index of each pooled max
};

/// Average pooling with square window == stride.
/// Also used standalone by the compensation generator to shrink input maps
/// so they concatenate with the output maps (paper Fig. 5).
class AvgPool2D final : public Layer {
 public:
  AvgPool2D(int64_t window, std::string label = "avgpool")
      : window_(window) {
    label_ = std::move(label);
  }
  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::unique_ptr<Layer> clone() const override;
  std::string kind() const override { return "avgpool"; }

  int64_t window() const { return window_; }

 private:
  int64_t window_;
  Shape in_shape_;
};

}  // namespace cn::nn
