#include "nn/activations_extra.h"

#include <cmath>
#include <stdexcept>

#include "tensor/ops.h"

namespace cn::nn {

Tensor LeakyReLU::forward(const Tensor& x, bool train) {
  Tensor y = x;
  if (train) mask_ = Tensor(x.shape());
  for (int64_t i = 0; i < y.size(); ++i) {
    if (y[i] >= 0.0f) {
      if (train) mask_[i] = 1.0f;
    } else {
      y[i] *= slope_;
      if (train) mask_[i] = slope_;
    }
  }
  return y;
}

Tensor LeakyReLU::backward(const Tensor& grad_out) {
  Tensor gx = grad_out;
  for (int64_t i = 0; i < gx.size(); ++i) gx[i] *= mask_[i];
  return gx;
}

std::unique_ptr<Layer> LeakyReLU::clone() const {
  return std::make_unique<LeakyReLU>(slope_, label_);
}

Tensor Sigmoid::forward(const Tensor& x, bool train) {
  Tensor y = x;
  for (int64_t i = 0; i < y.size(); ++i) y[i] = 1.0f / (1.0f + std::exp(-y[i]));
  if (train) y_cache_ = y;
  return y;
}

Tensor Sigmoid::backward(const Tensor& grad_out) {
  Tensor gx = grad_out;
  for (int64_t i = 0; i < gx.size(); ++i)
    gx[i] *= y_cache_[i] * (1.0f - y_cache_[i]);
  return gx;
}

std::unique_ptr<Layer> Sigmoid::clone() const { return std::make_unique<Sigmoid>(label_); }

Tensor Softmax::forward(const Tensor& x, bool train) {
  if (x.rank() != 2) throw std::invalid_argument(label_ + ": expected rank-2 logits");
  Tensor y = softmax_rows(x);
  if (train) y_cache_ = y;
  return y;
}

Tensor Softmax::backward(const Tensor& grad_out) {
  const int64_t N = y_cache_.dim(0), C = y_cache_.dim(1);
  Tensor gx(y_cache_.shape());
  for (int64_t n = 0; n < N; ++n) {
    const float* y = y_cache_.data() + n * C;
    const float* g = grad_out.data() + n * C;
    double dotp = 0.0;
    for (int64_t c = 0; c < C; ++c) dotp += static_cast<double>(g[c]) * y[c];
    float* out = gx.data() + n * C;
    for (int64_t c = 0; c < C; ++c)
      out[c] = y[c] * (g[c] - static_cast<float>(dotp));
  }
  return gx;
}

std::unique_ptr<Layer> Softmax::clone() const { return std::make_unique<Softmax>(label_); }

Tensor GlobalAvgPool::forward(const Tensor& x, bool train) {
  if (x.rank() != 4) throw std::invalid_argument(label_ + ": expected NCHW");
  if (train) in_shape_ = x.shape();
  else in_shape_ = x.shape();
  const int64_t N = x.dim(0), C = x.dim(1), HW = x.dim(2) * x.dim(3);
  Tensor y({N, C});
  const float inv = 1.0f / static_cast<float>(HW);
  for (int64_t n = 0; n < N; ++n)
    for (int64_t c = 0; c < C; ++c) {
      const float* chan = x.data() + (n * C + c) * HW;
      double acc = 0.0;
      for (int64_t i = 0; i < HW; ++i) acc += chan[i];
      y[n * C + c] = static_cast<float>(acc) * inv;
    }
  return y;
}

Tensor GlobalAvgPool::backward(const Tensor& grad_out) {
  const int64_t N = in_shape_[0], C = in_shape_[1], HW = in_shape_[2] * in_shape_[3];
  Tensor gx(in_shape_);
  const float inv = 1.0f / static_cast<float>(HW);
  for (int64_t n = 0; n < N; ++n)
    for (int64_t c = 0; c < C; ++c) {
      const float g = grad_out[n * C + c] * inv;
      float* chan = gx.data() + (n * C + c) * HW;
      for (int64_t i = 0; i < HW; ++i) chan[i] = g;
    }
  return gx;
}

std::unique_ptr<Layer> GlobalAvgPool::clone() const {
  return std::make_unique<GlobalAvgPool>(label_);
}

}  // namespace cn::nn
