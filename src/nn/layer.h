// Layer interface for the feed-forward NN stack.
//
// Layers own their parameters and the activation caches needed by backward.
// The model is a Sequential of Layers; composite layers (e.g. CorrectNet's
// CompensatedConv2D) nest further layers and recurse in params()/analog
// traversal.
#pragma once

#include <algorithm>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "nn/param.h"
#include "tensor/rng.h"
#include "tensor/tensor.h"

namespace cn::nn {

/// Interface to a weight tensor that is physically realized on an analog
/// crossbar and therefore subject to programming variation (paper Eq. 1-2).
///
/// The Monte-Carlo evaluator perturbs every site of a model via
/// `set_weight_factors` (w_eff = w ∘ f, f = e^θ) and restores with
/// `clear_weight_factors`. Digital layers (compensation blocks) are simply
/// never registered as sites.
class PerturbableWeight {
 public:
  virtual ~PerturbableWeight() = default;
  /// The trained nominal weight tensor.
  virtual const Tensor& nominal_weight() const = 0;
  /// Applies multiplicative factors f (same shape as the weight).
  virtual void set_weight_factors(const Tensor& f) = 0;
  /// Restores the nominal weight.
  virtual void clear_weight_factors() = 0;
  /// Number of weight scalars at this site.
  virtual int64_t weight_count() const = 0;
  /// Owning-layer label, for reports.
  virtual const std::string& site_label() const = 0;
};

class Layer {
 public:
  virtual ~Layer() = default;

  /// Computes the layer output; `train` enables training-only behaviour
  /// (dropout, batch-norm batch statistics) and activation caching.
  virtual Tensor forward(const Tensor& x, bool train) = 0;

  /// Given dL/d(output), accumulates parameter gradients and returns
  /// dL/d(input). Must be preceded by forward(x, /*train=*/true).
  virtual Tensor backward(const Tensor& grad_out) = 0;

  /// All parameters, recursively for composite layers.
  virtual std::vector<Param*> params() { return {}; }

  /// Analog weight sites, recursively, in execution order.
  virtual void collect_analog(std::vector<PerturbableWeight*>&) {}

  /// Substrate hook for composite analog layers (e.g. core's compensated
  /// conv, whose base conv sits on the crossbar while its compensation
  /// blocks stay digital): visits each analog sub-layer together with an
  /// owning override slot. Installing a layer into the slot makes it execute
  /// in place of the original at inference; the composite must then reject
  /// training (backward throws). Leaves do nothing. Visit order must match
  /// collect_analog's site order.
  virtual void visit_analog_bases(
      const std::function<void(const Layer& base, std::unique_ptr<Layer>& override_slot)>&) {}

  /// Deep copy (parameters included, caches not required to be preserved).
  virtual std::unique_ptr<Layer> clone() const = 0;

  /// Short type tag, e.g. "conv2d".
  virtual std::string kind() const = 0;

  /// Instance label, e.g. "conv3_1".
  const std::string& label() const { return label_; }
  void set_label(std::string l) { label_ = std::move(l); }

  /// True if the layer carries weights that would sit on an analog crossbar.
  virtual bool is_analog() const { return false; }

  /// True if forward(x, train) behaves differently in train mode beyond
  /// activation caching (dropout masks, batch-norm batch statistics). The
  /// layer-graph IR builder (nn/graph.h) refuses to lower train-mode graphs
  /// and uses this to name the layers that make the lowering unsound.
  virtual bool train_mode_sensitive() const { return false; }

  /// Eval-mode forward with a ReLU epilogue fused into the output: returns
  /// max(0, forward(x, false)) without materializing the pre-activation as a
  /// separate tensor. The default clamps in place after forward — already
  /// exact and already cheaper than a standalone ReLU layer (which deep-copies
  /// its input); layers with a bias-add epilogue override to absorb the clamp
  /// into that loop. Overrides MUST stay bitwise-identical to the default
  /// (the fusion-pass tolerance contract, docs/ARCHITECTURE.md).
  virtual Tensor forward_relu(const Tensor& x) {
    Tensor y = forward(x, /*train=*/false);
    float* d = y.data();
    const int64_t n = y.size();
    for (int64_t i = 0; i < n; ++i) d[i] = std::max(d[i], 0.0f);
    return y;
  }

 protected:
  std::string label_;
};

using LayerPtr = std::unique_ptr<Layer>;

}  // namespace cn::nn
