#include "nn/optimizer.h"

#include <cmath>

namespace cn::nn {

void SGD::step(const std::vector<Param*>& params) {
  for (Param* p : params) {
    if (!p->trainable) continue;
    auto [it, inserted] = velocity_.try_emplace(p, p->value.shape());
    Tensor& vel = it->second;
    float* v = vel.data();
    float* w = p->value.data();
    const float* g = p->grad.data();
    for (int64_t i = 0; i < p->size(); ++i) {
      v[i] = momentum_ * v[i] + g[i];
      w[i] -= lr_ * (v[i] + weight_decay_ * w[i]);
    }
  }
}

void Adam::step(const std::vector<Param*>& params) {
  ++t_;
  const float bc1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
  const float bc2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
  for (Param* p : params) {
    if (!p->trainable) continue;
    auto [mit, mi] = m_.try_emplace(p, p->value.shape());
    auto [vit, vi] = v_.try_emplace(p, p->value.shape());
    float* m = mit->second.data();
    float* v = vit->second.data();
    float* w = p->value.data();
    const float* g = p->grad.data();
    for (int64_t i = 0; i < p->size(); ++i) {
      m[i] = beta1_ * m[i] + (1.0f - beta1_) * g[i];
      v[i] = beta2_ * v[i] + (1.0f - beta2_) * g[i] * g[i];
      const float mhat = m[i] / bc1;
      const float vhat = v[i] / bc2;
      w[i] -= lr_ * (mhat / (std::sqrt(vhat) + eps_) + weight_decay_ * w[i]);
    }
  }
}

float clip_grad_norm(const std::vector<Param*>& params, float max_norm) {
  double total = 0.0;
  for (Param* p : params) {
    if (!p->trainable) continue;
    const float* g = p->grad.data();
    for (int64_t i = 0; i < p->size(); ++i) total += static_cast<double>(g[i]) * g[i];
  }
  const float norm = static_cast<float>(std::sqrt(total));
  if (norm > max_norm && norm > 0.0f) {
    const float s = max_norm / norm;
    for (Param* p : params) {
      if (!p->trainable) continue;
      float* g = p->grad.data();
      for (int64_t i = 0; i < p->size(); ++i) g[i] *= s;
    }
  }
  return norm;
}

}  // namespace cn::nn
