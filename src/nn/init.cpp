#include "nn/init.h"

#include <cmath>

namespace cn::nn {

void he_normal(Tensor& w, int64_t fan_in, Rng& rng) {
  const float stddev = std::sqrt(2.0f / static_cast<float>(fan_in));
  rng.fill_normal(w, 0.0f, stddev);
}

void xavier_uniform(Tensor& w, int64_t fan_in, int64_t fan_out, Rng& rng) {
  const float limit = std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
  rng.fill_uniform(w, -limit, limit);
}

void scaled_rows(Tensor& w, float gain, Rng& rng) {
  rng.fill_normal(w, 0.0f, 1.0f);
  const int64_t rows = w.dim(0);
  const int64_t cols = w.size() / rows;
  for (int64_t r = 0; r < rows; ++r) {
    float* row = w.data() + r * cols;
    double norm = 0.0;
    for (int64_t c = 0; c < cols; ++c) norm += static_cast<double>(row[c]) * row[c];
    const float s = gain / static_cast<float>(std::sqrt(norm) + 1e-12);
    for (int64_t c = 0; c < cols; ++c) row[c] *= s;
  }
}

void init_model(Sequential& model, Rng& rng) {
  for (Param* p : model.params()) {
    if (p->value.rank() >= 2) {
      // Weight matrix: (fan_out, fan_in) after conv flattening.
      he_normal(p->value, p->value.size() / p->value.dim(0), rng);
    } else {
      p->value.zero();
    }
  }
}

}  // namespace cn::nn
