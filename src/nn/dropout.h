// Dropout regularization layer.
#pragma once

#include "nn/layer.h"

namespace cn::nn {

/// Inverted dropout: active only during training; identity at inference.
/// Takes an explicit RNG so training runs stay deterministic.
class Dropout final : public Layer {
 public:
  Dropout(float p, uint64_t seed, std::string label = "dropout");

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::unique_ptr<Layer> clone() const override;
  std::string kind() const override { return "dropout"; }
  /// Train mode draws a random mask; eval is the identity.
  bool train_mode_sensitive() const override { return true; }

  float rate() const { return p_; }

 private:
  float p_;
  Rng rng_;
  uint64_t seed_;
  Tensor mask_;
};

}  // namespace cn::nn
