// Trainable parameter: value + gradient + trainable flag.
#pragma once

#include <string>

#include "tensor/tensor.h"

namespace cn::nn {

/// A learnable tensor with its gradient accumulator.
///
/// `trainable == false` freezes the parameter: optimizers skip it and layers
/// still compute input gradients through it (needed when training
/// compensation blocks on top of a frozen, perturbed base network).
struct Param {
  Param() = default;
  explicit Param(Shape shape, std::string name_ = "")
      : value(shape), grad(shape), name(std::move(name_)) {}

  Tensor value;
  Tensor grad;
  bool trainable = true;
  std::string name;

  void zero_grad() { grad.zero(); }
  int64_t size() const { return value.size(); }
};

}  // namespace cn::nn
