// Fusion pass pipeline + fused graph executor over the layer-graph IR.
//
// Three passes (plus one trivial elision) rewrite the graph nn::LayerGraph
// builds from a Sequential:
//
//   1. bn-fold        batchnorm2d following a conv2d folds into the conv's
//                     weight/bias (w' = w·γ/√(σ²+ε), b' = (b−μ)·γ/√(σ²+ε)+β).
//                     APPROXIMATE: scaling weights before accumulation
//                     re-rounds every product, so outputs carry a pinned
//                     float tolerance (kBnFold* below). The shipped models
//                     carry no batchnorm, so campaign reports stay
//                     byte-identical with fusion on.
//   2. relu-epilogue  relu following a matmul-bearing op (conv2d, dense,
//                     crossbar_conv2d, crossbar_dense) becomes a branchless
//                     max(0,·) in that op's bias epilogue. EXACT.
//   3. post-pool      max/avg pooling consuming a conv2d's output (directly,
//                     or through an already-fused relu/bn) pools inside the
//                     conv kernel from a per-image scratch buffer — the
//                     full-resolution feature map is never materialized.
//                     Guarded on the window dividing the conv output.
//                     EXACT: bitwise-identical.
//   4. pool-fuse      max/avg pooling feeding a conv2d moves into the conv's
//                     im2col producer (per-image staging buffer, identical
//                     pooling arithmetic). Mops up pools post-pool could not
//                     claim (no digital conv upstream). EXACT.
//   +  dropout-elide  dropout is the identity at eval; the node is dropped
//                     (the standalone layer would deep-copy). EXACT.
//
// Pass order matters and is fixed: dropout-elide → bn-fold → relu-epilogue →
// post-pool → pool-fuse. Relu fuses into a conv whose batchnorm was already
// folded away, and a conv→relu→pool chain collapses into one kernel because
// the pool's producer is resolved through the skipped relu node. Post-pool
// runs before pool-fuse so a pool between two convs fuses into the upstream
// conv (eliding its full-resolution output) rather than the downstream one.
//
// The executor adds one rewrite of its own: a flatten node whose input is an
// intermediate the plan owns is an in-place reshape (pure metadata, zero
// copy) instead of Flatten::forward's deep copy. EXACT.
//
// Per-pass rewrite counts land on the obs counters fusion.bn_folded,
// fusion.pools_fused, fusion.post_pools_fused, fusion.relu_fused,
// fusion.dropout_elided, and fusion.plans counts plan builds.
//
// The process-wide knob: set_fusion_enabled() override > CORRECTNET_FUSION
// env ("on"/"off"/"1"/"0", validated at first use) > default ON.
#pragma once

#include <cstdint>

#include "nn/graph.h"

namespace cn::nn {

/// True if Sequential::forward should execute eval passes through the fused
/// graph plan. Override > CORRECTNET_FUSION env > default on. An invalid
/// env value throws std::runtime_error at first use.
bool fusion_enabled();
/// Process-wide override (tests, campaign `fusion` key, --fusion flag).
void set_fusion_enabled(bool on);
/// Drops the override, falling back to env/default.
void reset_fusion_enabled();

struct FusionOptions {
  bool fold_batchnorm = true;
  bool fuse_pool = true;
  bool fuse_relu = true;
  bool elide_dropout = true;
};

struct FusionStats {
  int64_t bn_folded = 0;
  int64_t pools_fused = 0;       // pool-fuse (pool ahead of a conv's im2col)
  int64_t post_pools_fused = 0;  // post-pool (pool inside a conv's epilogue)
  int64_t relu_fused = 0;
  int64_t dropout_elided = 0;
  int64_t rewrites() const {
    return bn_folded + pools_fused + post_pools_fused + relu_fused +
           dropout_elided;
  }
};

/// Runs the pass pipeline over a built graph, annotating nodes in place, and
/// bumps the per-pass obs counters.
FusionStats run_fusion_passes(LayerGraph& g, const FusionOptions& opts = {});

// Tolerance contract for the bn-fold pass (the only approximate pass; every
// other rewrite is bitwise-exact). Per element: PASS iff the fused output is
// within kBnFoldMaxUlps ULPs of the unfused output, or within
// kBnFoldRangeTol × max|unfused| absolute (the escape hatch for catastrophic
// cancellation near zero, where ULP distance is meaningless). The bound is
// ~10× the analytic worst case 2·K·ε_f32·max|term| for the conv reduction
// depths the op set reaches (K ≲ 600). Enforced by tests/test_fusion.cpp.
constexpr int64_t kBnFoldMaxUlps = 2048;
constexpr float kBnFoldRangeTol = 1e-3f;

/// A built+fused execution plan for one Sequential. Sequential::forward
/// caches one lazily per instance (invalidated on structural edits); tests
/// construct it directly to inspect the graph and stats.
class FusedPlan {
 public:
  explicit FusedPlan(Sequential& model, const FusionOptions& opts = {});

  /// Executes the annotated graph (eval mode). Weights are read live from
  /// the layers on every call, so weight edits and variation factors between
  /// forwards behave exactly like the unfused path.
  Tensor execute(const Tensor& x);

  const LayerGraph& graph() const { return graph_; }
  const FusionStats& stats() const { return stats_; }

 private:
  Tensor run_node(GraphNode& n, const Tensor& x);

  LayerGraph graph_;
  FusionStats stats_;
};

}  // namespace cn::nn
