// Additional pointwise activations: LeakyReLU, Sigmoid, and a Softmax layer.
//
// Note on Lipschitz properties (relevant to error suppression, §III-A):
// ReLU, LeakyReLU (slope <= 1) and Sigmoid are all 1-Lipschitz, so none of
// them amplifies propagated errors; swapping them for ReLU preserves the
// suppression bound of Eq. (5).
#pragma once

#include "nn/layer.h"

namespace cn::nn {

class LeakyReLU final : public Layer {
 public:
  explicit LeakyReLU(float slope = 0.01f, std::string label = "leaky_relu")
      : slope_(slope) {
    label_ = std::move(label);
  }
  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::unique_ptr<Layer> clone() const override;
  std::string kind() const override { return "leaky_relu"; }
  float slope() const { return slope_; }

 private:
  float slope_;
  Tensor mask_;  // per-element applied slope (1 or slope_)
};

class Sigmoid final : public Layer {
 public:
  explicit Sigmoid(std::string label = "sigmoid") { label_ = std::move(label); }
  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::unique_ptr<Layer> clone() const override;
  std::string kind() const override { return "sigmoid"; }

 private:
  Tensor y_cache_;
};

/// Row-wise softmax as a layer (for models that need probabilities inline;
/// training normally uses the fused SoftmaxCrossEntropy loss instead).
class Softmax final : public Layer {
 public:
  explicit Softmax(std::string label = "softmax") { label_ = std::move(label); }
  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::unique_ptr<Layer> clone() const override;
  std::string kind() const override { return "softmax"; }

 private:
  Tensor y_cache_;
};

/// Global average pooling (N,C,H,W) -> (N,C).
class GlobalAvgPool final : public Layer {
 public:
  explicit GlobalAvgPool(std::string label = "gap") { label_ = std::move(label); }
  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::unique_ptr<Layer> clone() const override;
  std::string kind() const override { return "global_avgpool"; }

 private:
  Shape in_shape_;
};

}  // namespace cn::nn
