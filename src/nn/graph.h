// Layer-graph IR: a node-per-op view of a Sequential's layer chain, with
// explicit producer/consumer edges, built so fusion passes (nn/fusion.h) can
// annotate and elide ops without touching the layers themselves.
//
// The IR is deliberately small — Sequential models are linear chains, so
// every node has at most one producer and one consumer — but edges are kept
// explicit (in the spirit of lazy-tensor node-per-op IRs and MIGraphX-style
// pass pipelines) so passes reason about structure, not vector indices.
//
// Lowering is eval-mode only. Train-mode graphs are refused at build time:
// dropout draws masks and batch-norm consumes batch statistics in train mode
// (Layer::train_mode_sensitive), so folding or eliding them there would
// silently change training semantics.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "nn/conv2d.h"
#include "nn/sequential.h"

namespace cn::nn {

class BatchNorm2D;

/// Op classification for pass pattern-matching, derived from Layer::kind().
/// Unknown kinds become kOpaque and always execute via Layer::forward.
enum class OpKind {
  kConv2D,
  kDense,
  kBatchNorm,
  kReLU,
  kMaxPool,
  kAvgPool,
  kDropout,
  kFlatten,
  kCrossbarConv2D,
  kCrossbarDense,
  kOpaque,
};

OpKind classify_op(const std::string& kind);
const char* to_string(OpKind k);

/// One op in the graph. Fusion passes record their rewrites as annotations;
/// the executor (nn::FusedPlan) interprets them. A node never owns its layer.
struct GraphNode {
  int64_t id = 0;
  OpKind op = OpKind::kOpaque;
  Layer* layer = nullptr;
  std::vector<int64_t> producers;  // input node ids (empty = graph input)
  std::vector<int64_t> consumers;  // output node ids (empty = graph output)

  // ---- fusion annotations (written by nn::run_fusion_passes) ----
  bool skip = false;           // absorbed into another node, or elided
  bool relu_epilogue = false;  // apply max(0, ·) inside this node's epilogue
  BatchNorm2D* folded_bn = nullptr;  // conv only: fold this BN at execution
  PrePool pre_pool;            // conv only: pooling fused into im2col
                               // (window 0 = none)
  PrePool post_pool;           // conv only: pool the conv's output inside the
                               // kernel epilogue (window 0 = none)
};

/// The layer graph for one Sequential, nodes in execution (topological)
/// order. Holds raw Layer pointers into the model: any structural edit of
/// the Sequential (add / replace_layer) invalidates the graph — Sequential's
/// cached plan handles that.
struct LayerGraph {
  std::vector<GraphNode> nodes;

  /// Builds the node-per-op graph from a Sequential's layer chain. Eval-mode
  /// lowering only: `train == true` throws std::logic_error, naming every
  /// train_mode_sensitive layer, instead of silently folding batchnorm with
  /// stale running statistics or eliding live dropout.
  static LayerGraph build(Sequential& model, bool train = false);

  /// Debug dump: one line per node with op, label, edges and annotations.
  std::string to_string() const;
};

}  // namespace cn::nn
