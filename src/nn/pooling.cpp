#include "nn/pooling.h"

#include <limits>
#include <stdexcept>

namespace cn::nn {

namespace {
void check_input(const Tensor& x, int64_t window, const std::string& label) {
  if (x.rank() != 4)
    throw std::invalid_argument(label + ": expected NCHW input, got " +
                                to_string(x.shape()));
  if (x.dim(2) % window != 0 || x.dim(3) % window != 0)
    throw std::invalid_argument(label + ": input " + to_string(x.shape()) +
                                " not divisible by window " + std::to_string(window));
}
}  // namespace

Tensor MaxPool2D::forward(const Tensor& x, bool train) {
  check_input(x, window_, label_);
  const int64_t N = x.dim(0), C = x.dim(1), H = x.dim(2), W = x.dim(3);
  const int64_t OH = H / window_, OW = W / window_;
  Tensor y({N, C, OH, OW});
  if (train) {
    in_shape_ = x.shape();
    argmax_.assign(static_cast<size_t>(y.size()), 0);
  }
  int64_t oi = 0;
  for (int64_t n = 0; n < N; ++n) {
    for (int64_t c = 0; c < C; ++c) {
      const float* chan = x.data() + (n * C + c) * H * W;
      for (int64_t oh = 0; oh < OH; ++oh) {
        for (int64_t ow = 0; ow < OW; ++ow, ++oi) {
          float best = -std::numeric_limits<float>::infinity();
          int64_t best_idx = 0;
          for (int64_t kh = 0; kh < window_; ++kh) {
            const int64_t ih = oh * window_ + kh;
            for (int64_t kw = 0; kw < window_; ++kw) {
              const int64_t iw = ow * window_ + kw;
              const int64_t idx = ih * W + iw;
              if (chan[idx] > best) {
                best = chan[idx];
                best_idx = (n * C + c) * H * W + idx;
              }
            }
          }
          y[oi] = best;
          if (train) argmax_[static_cast<size_t>(oi)] = best_idx;
        }
      }
    }
  }
  return y;
}

Tensor MaxPool2D::backward(const Tensor& grad_out) {
  Tensor gx(in_shape_);
  for (int64_t i = 0; i < grad_out.size(); ++i)
    gx[argmax_[static_cast<size_t>(i)]] += grad_out[i];
  return gx;
}

std::unique_ptr<Layer> MaxPool2D::clone() const {
  return std::make_unique<MaxPool2D>(window_, label_);
}

Tensor AvgPool2D::forward(const Tensor& x, bool train) {
  check_input(x, window_, label_);
  const int64_t N = x.dim(0), C = x.dim(1), H = x.dim(2), W = x.dim(3);
  const int64_t OH = H / window_, OW = W / window_;
  if (train) in_shape_ = x.shape();
  else in_shape_ = x.shape();  // AvgPool backward used in frozen-base training too
  Tensor y({N, C, OH, OW});
  const float inv = 1.0f / static_cast<float>(window_ * window_);
  int64_t oi = 0;
  for (int64_t n = 0; n < N; ++n) {
    for (int64_t c = 0; c < C; ++c) {
      const float* chan = x.data() + (n * C + c) * H * W;
      for (int64_t oh = 0; oh < OH; ++oh) {
        for (int64_t ow = 0; ow < OW; ++ow, ++oi) {
          float acc = 0.0f;
          for (int64_t kh = 0; kh < window_; ++kh) {
            const float* row = chan + (oh * window_ + kh) * W + ow * window_;
            for (int64_t kw = 0; kw < window_; ++kw) acc += row[kw];
          }
          y[oi] = acc * inv;
        }
      }
    }
  }
  return y;
}

Tensor AvgPool2D::backward(const Tensor& grad_out) {
  const int64_t N = in_shape_[0], C = in_shape_[1], H = in_shape_[2], W = in_shape_[3];
  const int64_t OH = H / window_, OW = W / window_;
  Tensor gx(in_shape_);
  const float inv = 1.0f / static_cast<float>(window_ * window_);
  int64_t oi = 0;
  for (int64_t n = 0; n < N; ++n) {
    for (int64_t c = 0; c < C; ++c) {
      float* chan = gx.data() + (n * C + c) * H * W;
      for (int64_t oh = 0; oh < OH; ++oh) {
        for (int64_t ow = 0; ow < OW; ++ow, ++oi) {
          const float g = grad_out[oi] * inv;
          for (int64_t kh = 0; kh < window_; ++kh) {
            float* row = chan + (oh * window_ + kh) * W + ow * window_;
            for (int64_t kw = 0; kw < window_; ++kw) row[kw] += g;
          }
        }
      }
    }
  }
  return gx;
}

std::unique_ptr<Layer> AvgPool2D::clone() const {
  return std::make_unique<AvgPool2D>(window_, label_);
}

}  // namespace cn::nn
