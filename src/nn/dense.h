// Fully-connected layer with analog-weight (variation) support.
#pragma once

#include "nn/layer.h"

namespace cn::nn {

/// y = x W^T + b, with W (out, in) mapped onto an analog crossbar.
///
/// When variation factors are set (Monte-Carlo evaluation or
/// variation-in-the-loop training), forward/backward use
/// `w_eff = W ∘ f` so gradients flow through the *perturbed* operator —
/// exactly what CorrectNet's compensation training requires.
class Dense final : public Layer, public PerturbableWeight {
 public:
  Dense(int64_t in_features, int64_t out_features, std::string label = "dense");

  Tensor forward(const Tensor& x, bool train) override;
  Tensor forward_relu(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;

  /// Eval/exec kernel through an explicit weight (out, in) and bias (out)
  /// buffer, with an optional branchless ReLU epilogue folded into the
  /// bias-add loop. forward() routes through this with the live weight, so
  /// the fused and unfused paths share one accumulation order.
  Tensor forward_fused(const Tensor& x, const Tensor& w, const float* b, bool relu);

  /// The weight tensor forward() would use right now: refreshes w ∘ f when
  /// variation factors are active. Used by the fused graph executor.
  const Tensor& live_weight();

  std::vector<Param*> params() override { return {&w_, &b_}; }
  void collect_analog(std::vector<PerturbableWeight*>& out) override {
    out.push_back(this);
  }
  std::unique_ptr<Layer> clone() const override;
  std::string kind() const override { return "dense"; }
  bool is_analog() const override { return true; }

  // PerturbableWeight
  const Tensor& nominal_weight() const override { return w_.value; }
  void set_weight_factors(const Tensor& f) override;
  void clear_weight_factors() override;
  int64_t weight_count() const override { return w_.size(); }
  const std::string& site_label() const override { return label_; }

  int64_t in_features() const { return in_; }
  int64_t out_features() const { return out_; }
  Param& weight() { return w_; }
  Param& bias() { return b_; }

 private:
  const Tensor& effective_weight() const { return var_active_ ? w_eff_ : w_.value; }

  int64_t in_, out_;
  Param w_, b_;
  Tensor w_eff_;        // W ∘ f when variation active
  Tensor factors_;      // f, kept to chain dL/dW = dL/dW_eff ∘ f
  bool var_active_ = false;
  Tensor x_cache_;      // input saved by forward(train)
};

}  // namespace cn::nn
