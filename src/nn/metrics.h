// Evaluation metrics.
#pragma once

#include <vector>

#include "nn/sequential.h"
#include "tensor/tensor.h"

namespace cn::nn {

/// Fraction of rows of `logits` whose argmax equals the label.
float accuracy(const Tensor& logits, const std::vector<int>& labels);

/// Simple running mean/std accumulator (Welford).
class RunningStats {
 public:
  void add(double x);
  int64_t count() const { return n_; }
  double mean() const { return mean_; }
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  int64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0, max_ = 0.0;
};

}  // namespace cn::nn
