// Sequential container: the top-level model type used throughout.
#pragma once

#include <memory>
#include <vector>

#include "nn/layer.h"

namespace cn::nn {

class FusedPlan;  // nn/fusion.h

/// Ordered composition of layers. Itself a Layer, so it can nest.
///
/// CorrectNet manipulates models at this level: the sensitivity sweep
/// perturbs analog sites by execution order, and the RL environment splices
/// CompensatedConv2D wrappers in place of plain convolutions.
///
/// Eval-mode forwards execute through a lazily-built fused graph plan
/// (nn/fusion.h) when fusion_enabled(); structural edits (add /
/// replace_layer) invalidate the cached plan. Train-mode forwards always run
/// the plain layer loop.
class Sequential final : public Layer {
 public:
  explicit Sequential(std::string label = "model");
  ~Sequential() override;
  Sequential(Sequential&&) noexcept;
  Sequential& operator=(Sequential&&) noexcept;

  /// Appends a layer; returns a reference to it for chaining/config.
  Layer& add(LayerPtr layer);

  template <typename L, typename... Args>
  L& emplace(Args&&... args) {
    auto p = std::make_unique<L>(std::forward<Args>(args)...);
    L& ref = *p;
    add(std::move(p));
    return ref;
  }

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<Param*> params() override;
  void collect_analog(std::vector<PerturbableWeight*>& out) override;
  std::unique_ptr<Layer> clone() const override;
  std::string kind() const override { return "sequential"; }

  /// Deep copy with the concrete Sequential type (convenience over clone()).
  Sequential clone_model() const;

  int64_t num_layers() const { return static_cast<int64_t>(layers_.size()); }
  Layer& layer(int64_t i) { return *layers_[static_cast<size_t>(i)]; }
  const Layer& layer(int64_t i) const { return *layers_[static_cast<size_t>(i)]; }

  /// Replaces layer i, returning the old layer.
  LayerPtr replace_layer(int64_t i, LayerPtr l);

  /// All analog weight sites in execution order.
  std::vector<PerturbableWeight*> analog_sites();

  /// Restores nominal weights at every analog site.
  void clear_all_variations();

  /// Total trainable / total parameter scalar counts.
  int64_t num_params() const;
  int64_t num_trainable_params() const;

  /// Sets `trainable` on every parameter (used to freeze the base network
  /// before compensation training).
  void set_trainable(bool trainable);

 private:
  std::vector<LayerPtr> layers_;
  std::unique_ptr<FusedPlan> plan_;  // lazy eval-path fused plan
};

}  // namespace cn::nn
