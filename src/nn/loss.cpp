#include "nn/loss.h"

#include <cmath>
#include <stdexcept>

#include "tensor/ops.h"

namespace cn::nn {

float SoftmaxCrossEntropy::forward(const Tensor& logits, const std::vector<int>& labels,
                                   Tensor* grad) const {
  if (logits.rank() != 2)
    throw std::invalid_argument("SoftmaxCrossEntropy: logits must be rank-2");
  const int64_t N = logits.dim(0), C = logits.dim(1);
  if (static_cast<int64_t>(labels.size()) != N)
    throw std::invalid_argument("SoftmaxCrossEntropy: label count mismatch");

  Tensor probs = softmax_rows(logits);
  double loss = 0.0;
  for (int64_t n = 0; n < N; ++n) {
    const int y = labels[static_cast<size_t>(n)];
    if (y < 0 || y >= C) throw std::invalid_argument("SoftmaxCrossEntropy: bad label");
    loss -= std::log(std::max(1e-12f, probs[n * C + y]));
  }
  if (grad) {
    *grad = probs;
    const float inv_n = 1.0f / static_cast<float>(N);
    for (int64_t n = 0; n < N; ++n) {
      (*grad)[n * C + labels[static_cast<size_t>(n)]] -= 1.0f;
    }
    scale_inplace(*grad, inv_n);
  }
  return static_cast<float>(loss / static_cast<double>(N));
}

float MeanSquaredError::forward(const Tensor& pred, const Tensor& target,
                                Tensor* grad) const {
  if (!pred.same_shape(target))
    throw std::invalid_argument("MeanSquaredError: shape mismatch");
  const int64_t n = pred.size();
  double loss = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    const double d = static_cast<double>(pred[i]) - target[i];
    loss += d * d;
  }
  if (grad) {
    *grad = sub(pred, target);
    scale_inplace(*grad, 2.0f / static_cast<float>(n));
  }
  return static_cast<float>(loss / static_cast<double>(n));
}

}  // namespace cn::nn
