// Loss functions.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace cn::nn {

/// Fused softmax + cross-entropy.
///
/// forward() returns the mean loss over the batch and, if `grad` is non-null,
/// writes dL/dlogits (already divided by batch size) into it.
class SoftmaxCrossEntropy {
 public:
  /// logits: (N, C); labels: N class indices in [0, C).
  float forward(const Tensor& logits, const std::vector<int>& labels,
                Tensor* grad = nullptr) const;
};

/// Mean squared error (used by tests and the RL value baseline).
class MeanSquaredError {
 public:
  float forward(const Tensor& pred, const Tensor& target, Tensor* grad = nullptr) const;
};

}  // namespace cn::nn
