#include "nn/batchnorm.h"

#include <cmath>
#include <stdexcept>

namespace cn::nn {

BatchNorm2D::BatchNorm2D(int64_t channels, float momentum, float eps,
                         std::string label)
    : channels_(channels),
      momentum_(momentum),
      eps_(eps),
      gamma_(Shape{channels}, label + ".gamma"),
      beta_(Shape{channels}, label + ".beta"),
      running_mean_({channels}),
      running_var_({channels}, 1.0f) {
  label_ = std::move(label);
  gamma_.value.fill(1.0f);
}

Tensor BatchNorm2D::forward(const Tensor& x, bool train) {
  if (x.rank() != 4 || x.dim(1) != channels_)
    throw std::invalid_argument(label_ + ": bad input shape " + to_string(x.shape()));
  const int64_t N = x.dim(0), C = channels_, H = x.dim(2), W = x.dim(3);
  const int64_t per_c = N * H * W;
  Tensor y(x.shape());
  if (train) {
    in_shape_ = x.shape();
    x_hat_ = Tensor(x.shape());
    batch_inv_std_ = Tensor({C});
  }
  for (int64_t c = 0; c < C; ++c) {
    double mean = 0.0, var = 0.0;
    if (train) {
      for (int64_t n = 0; n < N; ++n) {
        const float* chan = x.data() + (n * C + c) * H * W;
        for (int64_t i = 0; i < H * W; ++i) mean += chan[i];
      }
      mean /= per_c;
      for (int64_t n = 0; n < N; ++n) {
        const float* chan = x.data() + (n * C + c) * H * W;
        for (int64_t i = 0; i < H * W; ++i) {
          const double d = chan[i] - mean;
          var += d * d;
        }
      }
      var /= per_c;
      running_mean_[c] = momentum_ * running_mean_[c] + (1.0f - momentum_) * static_cast<float>(mean);
      running_var_[c] = momentum_ * running_var_[c] + (1.0f - momentum_) * static_cast<float>(var);
    } else {
      mean = running_mean_[c];
      var = running_var_[c];
    }
    const float inv_std = 1.0f / std::sqrt(static_cast<float>(var) + eps_);
    if (train) batch_inv_std_[c] = inv_std;
    const float g = gamma_.value[c], b = beta_.value[c], m = static_cast<float>(mean);
    for (int64_t n = 0; n < N; ++n) {
      const float* chan = x.data() + (n * C + c) * H * W;
      float* out = y.data() + (n * C + c) * H * W;
      float* xh = train ? x_hat_.data() + (n * C + c) * H * W : nullptr;
      for (int64_t i = 0; i < H * W; ++i) {
        const float h = (chan[i] - m) * inv_std;
        if (xh) xh[i] = h;
        out[i] = g * h + b;
      }
    }
  }
  return y;
}

Tensor BatchNorm2D::backward(const Tensor& grad_out) {
  if (x_hat_.empty()) throw std::logic_error(label_ + ": backward without forward");
  const int64_t N = in_shape_[0], C = channels_, H = in_shape_[2], W = in_shape_[3];
  const int64_t per_c = N * H * W;
  Tensor gx(in_shape_);
  for (int64_t c = 0; c < C; ++c) {
    // Accumulate dgamma, dbeta and the two reduction terms.
    double dg = 0.0, db = 0.0;
    for (int64_t n = 0; n < N; ++n) {
      const float* g = grad_out.data() + (n * C + c) * H * W;
      const float* xh = x_hat_.data() + (n * C + c) * H * W;
      for (int64_t i = 0; i < H * W; ++i) {
        dg += static_cast<double>(g[i]) * xh[i];
        db += g[i];
      }
    }
    gamma_.grad[c] += static_cast<float>(dg);
    beta_.grad[c] += static_cast<float>(db);
    const float gam = gamma_.value[c];
    const float inv_std = batch_inv_std_[c];
    const float mean_dy = static_cast<float>(db / per_c);
    const float mean_dy_xhat = static_cast<float>(dg / per_c);
    for (int64_t n = 0; n < N; ++n) {
      const float* g = grad_out.data() + (n * C + c) * H * W;
      const float* xh = x_hat_.data() + (n * C + c) * H * W;
      float* out = gx.data() + (n * C + c) * H * W;
      for (int64_t i = 0; i < H * W; ++i)
        out[i] = gam * inv_std * (g[i] - mean_dy - xh[i] * mean_dy_xhat);
    }
  }
  return gx;
}

std::unique_ptr<Layer> BatchNorm2D::clone() const {
  auto c = std::make_unique<BatchNorm2D>(channels_, momentum_, eps_, label_);
  c->gamma_ = gamma_;
  c->beta_ = beta_;
  c->running_mean_ = running_mean_;
  c->running_var_ = running_var_;
  return c;
}

}  // namespace cn::nn
