// Pointwise activation layers.
#pragma once

#include "nn/layer.h"

namespace cn::nn {

/// ReLU. 1-Lipschitz, so it never amplifies propagated errors (paper §III-A).
class ReLU final : public Layer {
 public:
  explicit ReLU(std::string label = "relu") { label_ = std::move(label); }
  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::unique_ptr<Layer> clone() const override;
  std::string kind() const override { return "relu"; }

 private:
  Tensor mask_;  // 1 where x > 0
};

/// Tanh (used by the RL policy RNN, not by the CNN models).
class Tanh final : public Layer {
 public:
  explicit Tanh(std::string label = "tanh") { label_ = std::move(label); }
  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::unique_ptr<Layer> clone() const override;
  std::string kind() const override { return "tanh"; }

 private:
  Tensor y_cache_;
};

/// Flatten (N, C, H, W) -> (N, C*H*W). Shape bookkeeping only.
class Flatten final : public Layer {
 public:
  explicit Flatten(std::string label = "flatten") { label_ = std::move(label); }
  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::unique_ptr<Layer> clone() const override;
  std::string kind() const override { return "flatten"; }

 private:
  Shape in_shape_;
};

}  // namespace cn::nn
