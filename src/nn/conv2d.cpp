#include "nn/conv2d.h"

#include <algorithm>
#include <atomic>
#include <limits>
#include <stdexcept>

#include "tensor/threadpool.h"

namespace cn::nn {

namespace {

// Pools one image (C, OH*win, OW*win) -> (C, OH, OW) into `out`, with
// arithmetic identical to MaxPool2D / AvgPool2D forward (same accumulation
// order, same 1/(win*win) factor), so the pool-fusion pass is bitwise-exact.
void pool_image(const float* img, const PrePool& p, int64_t C, int64_t OH,
                int64_t OW, float* out) {
  const int64_t win = p.window;
  const int64_t H = OH * win, W = OW * win;
  for (int64_t c = 0; c < C; ++c) {
    const float* chan = img + c * H * W;
    float* ochan = out + c * OH * OW;
    if (p.kind == PrePool::Kind::kAvg) {
      const float inv = 1.0f / static_cast<float>(win * win);
      for (int64_t oh = 0; oh < OH; ++oh) {
        for (int64_t ow = 0; ow < OW; ++ow) {
          float acc = 0.0f;
          for (int64_t kh = 0; kh < win; ++kh) {
            const float* row = chan + (oh * win + kh) * W + ow * win;
            for (int64_t kw = 0; kw < win; ++kw) acc += row[kw];
          }
          ochan[oh * OW + ow] = acc * inv;
        }
      }
    } else {
      for (int64_t oh = 0; oh < OH; ++oh) {
        for (int64_t ow = 0; ow < OW; ++ow) {
          float best = -std::numeric_limits<float>::infinity();
          for (int64_t kh = 0; kh < win; ++kh) {
            for (int64_t kw = 0; kw < win; ++kw) {
              const int64_t idx = (oh * win + kh) * W + (ow * win + kw);
              if (chan[idx] > best) best = chan[idx];
            }
          }
          ochan[oh * OW + ow] = best;
        }
      }
    }
  }
}

}  // namespace

Conv2D::Conv2D(int64_t in_c, int64_t out_c, int64_t kernel, int64_t stride,
               int64_t pad, int64_t in_h, int64_t in_w, std::string label)
    : out_c_(out_c),
      w_(Shape{out_c, in_c * kernel * kernel}, label + ".w"),
      b_(Shape{out_c}, label + ".b") {
  geom_ = ConvGeom{in_c, in_h, in_w, kernel, kernel, stride, pad};
  label_ = std::move(label);
}

Tensor Conv2D::forward(const Tensor& x, bool train) {
  if (x.rank() != 4 || x.dim(1) != geom_.in_c || x.dim(2) != geom_.in_h ||
      x.dim(3) != geom_.in_w)
    throw std::invalid_argument(label_ + ": bad input shape " + to_string(x.shape()));
  if (train) x_cache_ = x;
  // live_weight() refreshes the effective weight so nominal-weight edits
  // between forwards (optimizer steps, tests) are always reflected.
  return forward_fused(x, live_weight().data(), b_.value.data(),
                       /*pre_pool=*/nullptr, /*relu=*/false);
}

Tensor Conv2D::forward_relu(const Tensor& x) {
  return forward_fused(x, live_weight().data(), b_.value.data(),
                       /*pre_pool=*/nullptr, /*relu=*/true);
}

Tensor Conv2D::forward_fused(const Tensor& x, const float* pw, const float* pb,
                             const PrePool* pre_pool, bool relu,
                             const PrePool* post_pool) {
  const int64_t win = pre_pool ? pre_pool->window : 1;
  const int64_t N = x.dim(0);
  if (x.rank() != 4 || x.dim(1) != geom_.in_c || x.dim(2) != geom_.in_h * win ||
      x.dim(3) != geom_.in_w * win)
    throw std::invalid_argument(label_ + ": bad input shape " + to_string(x.shape()));

  const int64_t OH = geom_.out_h(), OW = geom_.out_w();
  const int64_t pwin = post_pool ? post_pool->window : 1;
  if (post_pool && (pwin <= 0 || OH % pwin != 0 || OW % pwin != 0))
    throw std::logic_error(label_ + ": post-pool window does not divide conv output");
  const int64_t POH = OH / pwin, POW = OW / pwin;
  const int64_t K2 = geom_.in_c * geom_.k_h * geom_.k_w;
  const int64_t img_pooled = geom_.in_c * geom_.in_h * geom_.in_w;
  const int64_t img_in = pre_pool ? img_pooled * win * win : img_pooled;
  const int64_t img_conv = out_c_ * OH * OW;
  const int64_t img_out = out_c_ * POH * POW;
  Tensor y({N, out_c_, POH, POW});

  parallel_for(0, N, [&](int64_t lo, int64_t hi) {
    std::vector<float> cols(static_cast<size_t>(K2 * OH * OW));
    std::vector<float> staged;
    if (pre_pool) staged.resize(static_cast<size_t>(img_pooled));
    std::vector<float> full;  // per-image conv output when a post-pool runs
    if (post_pool) full.resize(static_cast<size_t>(img_conv));
    for (int64_t n = lo; n < hi; ++n) {
      const float* img = x.data() + n * img_in;
      if (pre_pool) {
        pool_image(img, *pre_pool, geom_.in_c, geom_.in_h, geom_.in_w,
                   staged.data());
        img = staged.data();
      }
      im2col(img, geom_, cols.data());
      float* out = post_pool ? full.data() : y.data() + n * img_out;
      // out(out_c, OH*OW) = W(out_c, K2) * cols(K2, OH*OW)
      const int64_t M = out_c_, Kd = K2, Nd = OH * OW;
      for (int64_t i = 0; i < M; ++i) {
        float* orow = out + i * Nd;
        const float bi = pb[i];
        for (int64_t j = 0; j < Nd; ++j) orow[j] = bi;
        const float* wrow = pw + i * Kd;
        for (int64_t k = 0; k < Kd; ++k) {
          const float wv = wrow[k];
          if (wv == 0.0f) continue;
          const float* crow = cols.data() + k * Nd;
          for (int64_t j = 0; j < Nd; ++j) orow[j] += wv * crow[j];
        }
        if (relu)
          for (int64_t j = 0; j < Nd; ++j) orow[j] = std::max(orow[j], 0.0f);
      }
      if (post_pool)
        pool_image(full.data(), *post_pool, out_c_, POH, POW,
                   y.data() + n * img_out);
    }
  });
  return y;
}

Tensor Conv2D::backward(const Tensor& grad_out) {
  if (x_cache_.empty())
    throw std::logic_error(label_ + ": backward without cached forward");
  const int64_t N = x_cache_.dim(0);
  const int64_t OH = geom_.out_h(), OW = geom_.out_w();
  const int64_t K2 = geom_.in_c * geom_.k_h * geom_.k_w;
  const int64_t img_in = geom_.in_c * geom_.in_h * geom_.in_w;
  const int64_t img_out = out_c_ * OH * OW;
  const int64_t Nd = OH * OW;

  Tensor dx(x_cache_.shape());
  const Tensor& W = effective_weight();
  const float* pw = W.data();

  // Per-thread gradient accumulators, reduced at the end.
  const unsigned T = ThreadPool::global().size();
  std::vector<Tensor> dw_acc(T, Tensor(w_.value.shape()));
  std::vector<Tensor> db_acc(T, Tensor(b_.value.shape()));
  std::atomic<unsigned> tid_counter{0};

  parallel_for(0, N, [&](int64_t lo, int64_t hi) {
    const unsigned tid = tid_counter.fetch_add(1) % T;
    float* dw = dw_acc[tid].data();
    float* db = db_acc[tid].data();
    std::vector<float> cols(static_cast<size_t>(K2 * Nd));
    std::vector<float> dcols(static_cast<size_t>(K2 * Nd));
    for (int64_t n = lo; n < hi; ++n) {
      im2col(x_cache_.data() + n * img_in, geom_, cols.data());
      const float* gout = grad_out.data() + n * img_out;
      // dW += gout(out_c, Nd) * cols^T(Nd, K2)
      for (int64_t i = 0; i < out_c_; ++i) {
        const float* grow = gout + i * Nd;
        float* dwrow = dw + i * K2;
        double bsum = 0.0;
        for (int64_t j = 0; j < Nd; ++j) bsum += grow[j];
        db[i] += static_cast<float>(bsum);
        for (int64_t k = 0; k < K2; ++k) {
          const float* crow = cols.data() + k * Nd;
          double acc = 0.0;
          for (int64_t j = 0; j < Nd; ++j) acc += static_cast<double>(grow[j]) * crow[j];
          dwrow[k] += static_cast<float>(acc);
        }
      }
      // dcols = W^T(K2, out_c) * gout(out_c, Nd)
      std::fill(dcols.begin(), dcols.end(), 0.0f);
      for (int64_t i = 0; i < out_c_; ++i) {
        const float* grow = gout + i * Nd;
        const float* wrow = pw + i * K2;
        for (int64_t k = 0; k < K2; ++k) {
          const float wv = wrow[k];
          if (wv == 0.0f) continue;
          float* drow = dcols.data() + k * Nd;
          for (int64_t j = 0; j < Nd; ++j) drow[j] += wv * grow[j];
        }
      }
      col2im(dcols.data(), geom_, dx.data() + n * img_in);
    }
  });

  for (unsigned t = 0; t < T; ++t) {
    // dw_acc holds dL/dW_eff; with variation active W_eff = W ∘ f,
    // so chain dL/dW = dL/dW_eff ∘ f.
    if (var_active_) mul_inplace(dw_acc[t], factors_);
    add_inplace(w_.grad, dw_acc[t]);
    add_inplace(b_.grad, db_acc[t]);
  }
  return dx;
}

void Conv2D::set_weight_factors(const Tensor& f) {
  if (!f.same_shape(w_.value))
    throw std::invalid_argument(label_ + ": factor shape mismatch");
  w_eff_ = mul(w_.value, f);
  factors_ = f;
  var_active_ = true;
}

void Conv2D::clear_weight_factors() {
  var_active_ = false;
  w_eff_ = Tensor();
  factors_ = Tensor();
}

std::unique_ptr<Layer> Conv2D::clone() const {
  auto c = std::make_unique<Conv2D>(geom_.in_c, out_c_, geom_.k_h, geom_.stride,
                                    geom_.pad, geom_.in_h, geom_.in_w, label_);
  c->w_ = w_;
  c->b_ = b_;
  c->w_eff_ = w_eff_;
  c->factors_ = factors_;
  c->var_active_ = var_active_;
  return c;
}

}  // namespace cn::nn
