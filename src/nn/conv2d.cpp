#include "nn/conv2d.h"

#include <atomic>
#include <stdexcept>

#include "tensor/threadpool.h"

namespace cn::nn {

Conv2D::Conv2D(int64_t in_c, int64_t out_c, int64_t kernel, int64_t stride,
               int64_t pad, int64_t in_h, int64_t in_w, std::string label)
    : out_c_(out_c),
      w_(Shape{out_c, in_c * kernel * kernel}, label + ".w"),
      b_(Shape{out_c}, label + ".b") {
  geom_ = ConvGeom{in_c, in_h, in_w, kernel, kernel, stride, pad};
  label_ = std::move(label);
}

Tensor Conv2D::forward(const Tensor& x, bool train) {
  const int64_t N = x.dim(0);
  if (x.rank() != 4 || x.dim(1) != geom_.in_c || x.dim(2) != geom_.in_h ||
      x.dim(3) != geom_.in_w)
    throw std::invalid_argument(label_ + ": bad input shape " + to_string(x.shape()));
  if (train) x_cache_ = x;

  const int64_t OH = geom_.out_h(), OW = geom_.out_w();
  const int64_t K2 = geom_.in_c * geom_.k_h * geom_.k_w;
  const int64_t img_in = geom_.in_c * geom_.in_h * geom_.in_w;
  const int64_t img_out = out_c_ * OH * OW;
  Tensor y({N, out_c_, OH, OW});
  // Refresh the effective weight so nominal-weight edits between forwards
  // (optimizer steps, tests) are always reflected.
  if (var_active_) w_eff_ = mul(w_.value, factors_);
  const Tensor& W = effective_weight();
  const float* pw = W.data();
  const float* pb = b_.value.data();

  parallel_for(0, N, [&](int64_t lo, int64_t hi) {
    std::vector<float> cols(static_cast<size_t>(K2 * OH * OW));
    for (int64_t n = lo; n < hi; ++n) {
      im2col(x.data() + n * img_in, geom_, cols.data());
      float* out = y.data() + n * img_out;
      // out(out_c, OH*OW) = W(out_c, K2) * cols(K2, OH*OW)
      const int64_t M = out_c_, Kd = K2, Nd = OH * OW;
      for (int64_t i = 0; i < M; ++i) {
        float* orow = out + i * Nd;
        const float bi = pb[i];
        for (int64_t j = 0; j < Nd; ++j) orow[j] = bi;
        const float* wrow = pw + i * Kd;
        for (int64_t k = 0; k < Kd; ++k) {
          const float wv = wrow[k];
          if (wv == 0.0f) continue;
          const float* crow = cols.data() + k * Nd;
          for (int64_t j = 0; j < Nd; ++j) orow[j] += wv * crow[j];
        }
      }
    }
  });
  return y;
}

Tensor Conv2D::backward(const Tensor& grad_out) {
  if (x_cache_.empty())
    throw std::logic_error(label_ + ": backward without cached forward");
  const int64_t N = x_cache_.dim(0);
  const int64_t OH = geom_.out_h(), OW = geom_.out_w();
  const int64_t K2 = geom_.in_c * geom_.k_h * geom_.k_w;
  const int64_t img_in = geom_.in_c * geom_.in_h * geom_.in_w;
  const int64_t img_out = out_c_ * OH * OW;
  const int64_t Nd = OH * OW;

  Tensor dx(x_cache_.shape());
  const Tensor& W = effective_weight();
  const float* pw = W.data();

  // Per-thread gradient accumulators, reduced at the end.
  const unsigned T = ThreadPool::global().size();
  std::vector<Tensor> dw_acc(T, Tensor(w_.value.shape()));
  std::vector<Tensor> db_acc(T, Tensor(b_.value.shape()));
  std::atomic<unsigned> tid_counter{0};

  parallel_for(0, N, [&](int64_t lo, int64_t hi) {
    const unsigned tid = tid_counter.fetch_add(1) % T;
    float* dw = dw_acc[tid].data();
    float* db = db_acc[tid].data();
    std::vector<float> cols(static_cast<size_t>(K2 * Nd));
    std::vector<float> dcols(static_cast<size_t>(K2 * Nd));
    for (int64_t n = lo; n < hi; ++n) {
      im2col(x_cache_.data() + n * img_in, geom_, cols.data());
      const float* gout = grad_out.data() + n * img_out;
      // dW += gout(out_c, Nd) * cols^T(Nd, K2)
      for (int64_t i = 0; i < out_c_; ++i) {
        const float* grow = gout + i * Nd;
        float* dwrow = dw + i * K2;
        double bsum = 0.0;
        for (int64_t j = 0; j < Nd; ++j) bsum += grow[j];
        db[i] += static_cast<float>(bsum);
        for (int64_t k = 0; k < K2; ++k) {
          const float* crow = cols.data() + k * Nd;
          double acc = 0.0;
          for (int64_t j = 0; j < Nd; ++j) acc += static_cast<double>(grow[j]) * crow[j];
          dwrow[k] += static_cast<float>(acc);
        }
      }
      // dcols = W^T(K2, out_c) * gout(out_c, Nd)
      std::fill(dcols.begin(), dcols.end(), 0.0f);
      for (int64_t i = 0; i < out_c_; ++i) {
        const float* grow = gout + i * Nd;
        const float* wrow = pw + i * K2;
        for (int64_t k = 0; k < K2; ++k) {
          const float wv = wrow[k];
          if (wv == 0.0f) continue;
          float* drow = dcols.data() + k * Nd;
          for (int64_t j = 0; j < Nd; ++j) drow[j] += wv * grow[j];
        }
      }
      col2im(dcols.data(), geom_, dx.data() + n * img_in);
    }
  });

  for (unsigned t = 0; t < T; ++t) {
    // dw_acc holds dL/dW_eff; with variation active W_eff = W ∘ f,
    // so chain dL/dW = dL/dW_eff ∘ f.
    if (var_active_) mul_inplace(dw_acc[t], factors_);
    add_inplace(w_.grad, dw_acc[t]);
    add_inplace(b_.grad, db_acc[t]);
  }
  return dx;
}

void Conv2D::set_weight_factors(const Tensor& f) {
  if (!f.same_shape(w_.value))
    throw std::invalid_argument(label_ + ": factor shape mismatch");
  w_eff_ = mul(w_.value, f);
  factors_ = f;
  var_active_ = true;
}

void Conv2D::clear_weight_factors() {
  var_active_ = false;
  w_eff_ = Tensor();
  factors_ = Tensor();
}

std::unique_ptr<Layer> Conv2D::clone() const {
  auto c = std::make_unique<Conv2D>(geom_.in_c, out_c_, geom_.k_h, geom_.stride,
                                    geom_.pad, geom_.in_h, geom_.in_w, label_);
  c->w_ = w_;
  c->b_ = b_;
  c->w_eff_ = w_eff_;
  c->factors_ = factors_;
  c->var_active_ = var_active_;
  return c;
}

}  // namespace cn::nn
