#include "tensor/threadpool.h"

#include <algorithm>
#include <atomic>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace cn {

namespace {
// The pool a worker thread belongs to, or nullptr on external threads. Lets
// parallel_for detect calls made from inside any pool task.
thread_local const ThreadPool* tl_current_pool = nullptr;
}  // namespace

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) threads = std::max(1u, std::thread::hardware_concurrency());
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  tl_current_pool = this;
  // Resolved once per worker; counting/tracing is timing-only and never
  // perturbs task results (metrics-on/off byte-exactness contract).
  obs::Counter& m_tasks = obs::metrics().counter("pool.tasks");
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_.wait(lk, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    m_tasks.add(1);
    obs::Span span("pool.task", "pool");
    task();
  }
}

void ThreadPool::parallel_for(int64_t begin, int64_t end,
                              const std::function<void(int64_t, int64_t)>& fn,
                              int64_t min_chunk) {
  const int64_t n = end - begin;
  if (n <= 0) return;
  const int64_t nthreads = static_cast<int64_t>(size());
  // Small ranges: run inline, skip synchronization overhead.
  if (n <= min_chunk || nthreads <= 1) {
    fn(begin, end);
    return;
  }
  // Call from inside any pool worker — ours or another pool's — runs inline.
  // Re-entrant use would deadlock once every worker waits on a nested loop
  // (e.g. MC sample tasks whose forward passes also call parallel_for), and
  // cross-pool dispatch (a campaign scheduler worker reaching the global
  // pool) would at best serialize every caller through the other pool's
  // queue and at worst deadlock once the pools wait on each other. A thread
  // that already lives inside a parallel region IS the parallelism; nested
  // ranges execute as a single inline chunk.
  if (tl_current_pool != nullptr) {
    fn(begin, end);
    return;
  }
  const int64_t chunks = std::min(nthreads, std::max<int64_t>(1, n / min_chunk));
  const int64_t chunk = (n + chunks - 1) / chunks;

  // Completion state guarded by done_mu: the decrement happens under the
  // mutex so the waiter cannot observe zero (and destroy these stack
  // objects) while a worker is still between decrement and notify.
  std::mutex done_mu;
  std::condition_variable done_cv;
  int64_t remaining = 0;

  int64_t launched = 0;
  {
    std::lock_guard<std::mutex> lk(mu_);
    for (int64_t c = 0; c < chunks; ++c) {
      const int64_t lo = begin + c * chunk;
      const int64_t hi = std::min(end, lo + chunk);
      if (lo >= hi) break;
      ++launched;
      tasks_.push([&, lo, hi] {
        fn(lo, hi);
        std::lock_guard<std::mutex> dlk(done_mu);
        if (--remaining == 0) done_cv.notify_one();
      });
    }
    remaining = launched;
  }
  if (launched == 0) return;
  cv_.notify_all();
  std::unique_lock<std::mutex> dlk(done_mu);
  done_cv.wait(dlk, [&] { return remaining == 0; });
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

bool ThreadPool::current_thread_in_pool() { return tl_current_pool != nullptr; }

void parallel_for(int64_t begin, int64_t end,
                  const std::function<void(int64_t, int64_t)>& fn,
                  int64_t min_chunk) {
  ThreadPool::global().parallel_for(begin, end, fn, min_chunk);
}

}  // namespace cn
