// Deterministic random number generation for the whole stack.
//
// Every stochastic component (weight init, dataset synthesis, variation
// sampling, RL exploration) takes an explicit Rng so experiments are
// reproducible bit-for-bit across runs given a seed.
#pragma once

#include <cstdint>

#include "tensor/tensor.h"

namespace cn {

/// splitmix64 finalizer: spreads correlated inputs (seed ^ index mixes) into
/// independent-looking seeds. Used to derive per-chip and per-read-noise
/// streams deterministically.
uint64_t mix64(uint64_t z);

/// xoshiro256** generator: fast, high-quality, splittable via `fork`.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull);

  /// Next raw 64-bit value.
  uint64_t next_u64();

  /// Uniform in [0, 1).
  double uniform();
  /// Uniform in [lo, hi).
  double uniform(double lo, double hi);
  /// Uniform integer in [0, n).
  int64_t uniform_int(int64_t n);
  /// Standard normal via Box-Muller (cached second value).
  double normal();
  /// Normal with the given mean / stddev.
  double normal(double mean, double stddev);
  /// Lognormal: exp(N(mu, sigma^2)).
  double lognormal(double mu, double sigma);
  /// Bernoulli trial with probability p of true.
  bool bernoulli(double p);

  /// A statistically independent child generator (for per-thread streams).
  Rng fork();

  // Tensor fills.
  void fill_normal(Tensor& t, float mean, float stddev);
  void fill_uniform(Tensor& t, float lo, float hi);
  /// Fills with exp(theta), theta ~ N(0, sigma^2) — the paper's Eq. (1)-(2).
  void fill_lognormal_factor(Tensor& t, float sigma);

  /// Fisher-Yates shuffle of an index array.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (int64_t i = static_cast<int64_t>(v.size()) - 1; i > 0; --i) {
      int64_t j = uniform_int(i + 1);
      std::swap(v[static_cast<size_t>(i)], v[static_cast<size_t>(j)]);
    }
  }

 private:
  uint64_t s_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace cn
