#include "tensor/ops.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "tensor/threadpool.h"

namespace cn {

namespace {
void check_same_shape(const Tensor& a, const Tensor& b, const char* op) {
  if (!a.same_shape(b)) {
    throw std::invalid_argument(std::string(op) + ": shape mismatch " +
                                to_string(a.shape()) + " vs " + to_string(b.shape()));
  }
}
void check_rank2(const Tensor& a, const char* op) {
  if (a.rank() != 2)
    throw std::invalid_argument(std::string(op) + ": expected rank-2, got " +
                                to_string(a.shape()));
}
}  // namespace

Tensor add(const Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "add");
  Tensor out = a;
  add_inplace(out, b);
  return out;
}

Tensor sub(const Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "sub");
  Tensor out = a;
  sub_inplace(out, b);
  return out;
}

Tensor mul(const Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "mul");
  Tensor out = a;
  mul_inplace(out, b);
  return out;
}

Tensor scale(const Tensor& a, float s) {
  Tensor out = a;
  scale_inplace(out, s);
  return out;
}

void add_inplace(Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "add_inplace");
  float* pa = a.data();
  const float* pb = b.data();
  for (int64_t i = 0; i < a.size(); ++i) pa[i] += pb[i];
}

void sub_inplace(Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "sub_inplace");
  float* pa = a.data();
  const float* pb = b.data();
  for (int64_t i = 0; i < a.size(); ++i) pa[i] -= pb[i];
}

void mul_inplace(Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "mul_inplace");
  float* pa = a.data();
  const float* pb = b.data();
  for (int64_t i = 0; i < a.size(); ++i) pa[i] *= pb[i];
}

void scale_inplace(Tensor& a, float s) {
  float* pa = a.data();
  for (int64_t i = 0; i < a.size(); ++i) pa[i] *= s;
}

void axpy_inplace(Tensor& a, float s, const Tensor& b) {
  check_same_shape(a, b, "axpy_inplace");
  float* pa = a.data();
  const float* pb = b.data();
  for (int64_t i = 0; i < a.size(); ++i) pa[i] += s * pb[i];
}

float sum(const Tensor& a) {
  double acc = 0.0;
  for (int64_t i = 0; i < a.size(); ++i) acc += a[i];
  return static_cast<float>(acc);
}

float mean(const Tensor& a) {
  return a.size() == 0 ? 0.0f : sum(a) / static_cast<float>(a.size());
}

float max_abs(const Tensor& a) {
  float m = 0.0f;
  for (int64_t i = 0; i < a.size(); ++i) m = std::max(m, std::fabs(a[i]));
  return m;
}

float sum_sq(const Tensor& a) {
  double acc = 0.0;
  for (int64_t i = 0; i < a.size(); ++i) acc += static_cast<double>(a[i]) * a[i];
  return static_cast<float>(acc);
}

float l2_norm(const Tensor& a) { return std::sqrt(sum_sq(a)); }

int64_t argmax_row(const Tensor& a, int64_t r) {
  check_rank2(a, "argmax_row");
  const int64_t cols = a.dim(1);
  const float* row = a.data() + r * cols;
  int64_t best = 0;
  for (int64_t c = 1; c < cols; ++c)
    if (row[c] > row[best]) best = c;
  return best;
}

// ---------- matmul ----------

namespace {
// Inner kernel: rows [r0, r1) of C(M,N) = A(M,K) * B(K,N), accumulate or set.
void matmul_rows(const float* a, const float* b, float* c, int64_t r0, int64_t r1,
                 int64_t K, int64_t N, bool accumulate) {
  for (int64_t i = r0; i < r1; ++i) {
    float* crow = c + i * N;
    if (!accumulate) std::fill(crow, crow + N, 0.0f);
    const float* arow = a + i * K;
    for (int64_t k = 0; k < K; ++k) {
      const float aik = arow[k];
      if (aik == 0.0f) continue;
      const float* brow = b + k * N;
      for (int64_t j = 0; j < N; ++j) crow[j] += aik * brow[j];
    }
  }
}
}  // namespace

void matmul_into(const Tensor& a, const Tensor& b, Tensor& c, bool accumulate) {
  check_rank2(a, "matmul");
  check_rank2(b, "matmul");
  const int64_t M = a.dim(0), K = a.dim(1), N = b.dim(1);
  if (b.dim(0) != K)
    throw std::invalid_argument("matmul: inner dim mismatch " + to_string(a.shape()) +
                                " x " + to_string(b.shape()));
  if (c.rank() != 2 || c.dim(0) != M || c.dim(1) != N)
    throw std::invalid_argument("matmul_into: bad output shape " + to_string(c.shape()));
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  // Parallelize over rows; keep chunks big enough to amortize scheduling.
  const int64_t min_chunk = std::max<int64_t>(1, 16384 / std::max<int64_t>(1, K * N / M + 1));
  parallel_for(
      0, M,
      [&](int64_t lo, int64_t hi) { matmul_rows(pa, pb, pc, lo, hi, K, N, accumulate); },
      std::max<int64_t>(4, min_chunk));
}

Tensor matmul(const Tensor& a, const Tensor& b) {
  Tensor c({a.dim(0), b.dim(1)});
  matmul_into(a, b, c, false);
  return c;
}

Tensor matmul_tn(const Tensor& a, const Tensor& b) {
  check_rank2(a, "matmul_tn");
  check_rank2(b, "matmul_tn");
  const int64_t K = a.dim(0), M = a.dim(1), N = b.dim(1);
  if (b.dim(0) != K)
    throw std::invalid_argument("matmul_tn: inner dim mismatch");
  Tensor c({M, N});
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  // C[i,j] = sum_k A[k,i] * B[k,j]; loop k outer for sequential access.
  parallel_for(0, M, [&](int64_t lo, int64_t hi) {
    for (int64_t k = 0; k < K; ++k) {
      const float* arow = pa + k * M;
      const float* brow = pb + k * N;
      for (int64_t i = lo; i < hi; ++i) {
        const float aki = arow[i];
        if (aki == 0.0f) continue;
        float* crow = pc + i * N;
        for (int64_t j = 0; j < N; ++j) crow[j] += aki * brow[j];
      }
    }
  }, 8);
  return c;
}

Tensor matmul_nt(const Tensor& a, const Tensor& b) {
  check_rank2(a, "matmul_nt");
  check_rank2(b, "matmul_nt");
  const int64_t M = a.dim(0), K = a.dim(1), N = b.dim(0);
  if (b.dim(1) != K)
    throw std::invalid_argument("matmul_nt: inner dim mismatch");
  Tensor c({M, N});
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  parallel_for(0, M, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      const float* arow = pa + i * K;
      float* crow = pc + i * N;
      for (int64_t j = 0; j < N; ++j) {
        const float* brow = pb + j * K;
        double acc = 0.0;
        for (int64_t k = 0; k < K; ++k) acc += static_cast<double>(arow[k]) * brow[k];
        crow[j] = static_cast<float>(acc);
      }
    }
  }, 8);
  return c;
}

Tensor transpose(const Tensor& a) {
  check_rank2(a, "transpose");
  const int64_t M = a.dim(0), N = a.dim(1);
  Tensor t({N, M});
  for (int64_t i = 0; i < M; ++i)
    for (int64_t j = 0; j < N; ++j) t[j * M + i] = a[i * N + j];
  return t;
}

Tensor matvec(const Tensor& a, const Tensor& x) {
  check_rank2(a, "matvec");
  const int64_t M = a.dim(0), N = a.dim(1);
  if (x.size() != N) throw std::invalid_argument("matvec: size mismatch");
  Tensor y({M});
  const float* pa = a.data();
  const float* px = x.data();
  for (int64_t i = 0; i < M; ++i) {
    double acc = 0.0;
    const float* row = pa + i * N;
    for (int64_t j = 0; j < N; ++j) acc += static_cast<double>(row[j]) * px[j];
    y[i] = static_cast<float>(acc);
  }
  return y;
}

Tensor matvec_t(const Tensor& a, const Tensor& x) {
  check_rank2(a, "matvec_t");
  const int64_t M = a.dim(0), N = a.dim(1);
  if (x.size() != M) throw std::invalid_argument("matvec_t: size mismatch");
  Tensor y({N});
  const float* pa = a.data();
  for (int64_t i = 0; i < M; ++i) {
    const float xi = x[i];
    const float* row = pa + i * N;
    for (int64_t j = 0; j < N; ++j) y[j] += xi * row[j];
  }
  return y;
}

float dot(const Tensor& a, const Tensor& b) {
  if (a.size() != b.size()) throw std::invalid_argument("dot: size mismatch");
  double acc = 0.0;
  for (int64_t i = 0; i < a.size(); ++i) acc += static_cast<double>(a[i]) * b[i];
  return static_cast<float>(acc);
}

// ---------- im2col / col2im ----------

void im2col(const float* img, const ConvGeom& g, float* cols) {
  const int64_t OH = g.out_h(), OW = g.out_w();
  const int64_t ncols = OH * OW;
  int64_t row = 0;
  for (int64_t c = 0; c < g.in_c; ++c) {
    const float* chan = img + c * g.in_h * g.in_w;
    for (int64_t kh = 0; kh < g.k_h; ++kh) {
      for (int64_t kw = 0; kw < g.k_w; ++kw, ++row) {
        float* out = cols + row * ncols;
        for (int64_t oh = 0; oh < OH; ++oh) {
          const int64_t ih = oh * g.stride + kh - g.pad;
          if (ih < 0 || ih >= g.in_h) {
            std::fill(out + oh * OW, out + (oh + 1) * OW, 0.0f);
            continue;
          }
          const float* src = chan + ih * g.in_w;
          float* dst = out + oh * OW;
          for (int64_t ow = 0; ow < OW; ++ow) {
            const int64_t iw = ow * g.stride + kw - g.pad;
            dst[ow] = (iw < 0 || iw >= g.in_w) ? 0.0f : src[iw];
          }
        }
      }
    }
  }
}

void col2im(const float* cols, const ConvGeom& g, float* img) {
  const int64_t OH = g.out_h(), OW = g.out_w();
  const int64_t ncols = OH * OW;
  int64_t row = 0;
  for (int64_t c = 0; c < g.in_c; ++c) {
    float* chan = img + c * g.in_h * g.in_w;
    for (int64_t kh = 0; kh < g.k_h; ++kh) {
      for (int64_t kw = 0; kw < g.k_w; ++kw, ++row) {
        const float* in = cols + row * ncols;
        for (int64_t oh = 0; oh < OH; ++oh) {
          const int64_t ih = oh * g.stride + kh - g.pad;
          if (ih < 0 || ih >= g.in_h) continue;
          float* dst = chan + ih * g.in_w;
          const float* src = in + oh * OW;
          for (int64_t ow = 0; ow < OW; ++ow) {
            const int64_t iw = ow * g.stride + kw - g.pad;
            if (iw >= 0 && iw < g.in_w) dst[iw] += src[ow];
          }
        }
      }
    }
  }
}

Tensor softmax_rows(const Tensor& logits) {
  if (logits.rank() != 2) throw std::invalid_argument("softmax_rows: expected rank-2");
  const int64_t N = logits.dim(0), C = logits.dim(1);
  Tensor out(logits.shape());
  for (int64_t i = 0; i < N; ++i) {
    const float* in = logits.data() + i * C;
    float* o = out.data() + i * C;
    float mx = in[0];
    for (int64_t c = 1; c < C; ++c) mx = std::max(mx, in[c]);
    double z = 0.0;
    for (int64_t c = 0; c < C; ++c) {
      o[c] = std::exp(in[c] - mx);
      z += o[c];
    }
    const float inv = static_cast<float>(1.0 / z);
    for (int64_t c = 0; c < C; ++c) o[c] *= inv;
  }
  return out;
}

}  // namespace cn
