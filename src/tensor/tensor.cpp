#include "tensor/tensor.h"

#include <sstream>
#include <stdexcept>

namespace cn {

int64_t numel(const Shape& s) {
  int64_t n = 1;
  for (int64_t d : s) n *= d;
  return n;
}

std::string to_string(const Shape& s) {
  std::ostringstream os;
  os << '[';
  for (size_t i = 0; i < s.size(); ++i) {
    if (i) os << ", ";
    os << s[i];
  }
  os << ']';
  return os.str();
}

Tensor::Tensor(Shape shape)
    : shape_(std::move(shape)), data_(static_cast<size_t>(numel(shape_)), 0.0f) {}

Tensor::Tensor(Shape shape, float fill)
    : shape_(std::move(shape)), data_(static_cast<size_t>(numel(shape_)), fill) {}

Tensor::Tensor(Shape shape, std::vector<float> data)
    : shape_(std::move(shape)), data_(std::move(data)) {
  if (static_cast<int64_t>(data_.size()) != numel(shape_)) {
    throw std::invalid_argument("Tensor: data size " + std::to_string(data_.size()) +
                                " does not match shape " + to_string(shape_));
  }
}

Tensor Tensor::from(std::initializer_list<float> vals) {
  return Tensor({static_cast<int64_t>(vals.size())}, std::vector<float>(vals));
}

int64_t Tensor::dim(int64_t i) const {
  if (i < 0) i += rank();
  assert(i >= 0 && i < rank());
  return shape_[static_cast<size_t>(i)];
}

float& Tensor::at(int64_t r, int64_t c) {
  assert(rank() == 2 && r < dim(0) && c < dim(1));
  return data_[static_cast<size_t>(r * dim(1) + c)];
}

float Tensor::at(int64_t r, int64_t c) const {
  assert(rank() == 2 && r < dim(0) && c < dim(1));
  return data_[static_cast<size_t>(r * dim(1) + c)];
}

Tensor Tensor::reshaped(Shape new_shape) const {
  Tensor t = *this;
  t.reshape(std::move(new_shape));
  return t;
}

void Tensor::reshape(Shape new_shape) {
  if (numel(new_shape) != size()) {
    throw std::invalid_argument("reshape: element count mismatch: " + to_string(shape_) +
                                " -> " + to_string(new_shape));
  }
  shape_ = std::move(new_shape);
}

void Tensor::fill(float v) {
  for (float& x : data_) x = v;
}

}  // namespace cn
