// A small fixed-size thread pool with a parallel_for primitive.
//
// Used for data-parallel work: blocked matmul rows, im2col batches, and
// Monte-Carlo variation sampling (each sample evaluates a cloned model).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace cn {

class ThreadPool {
 public:
  /// Creates `threads` workers; 0 means hardware_concurrency (min 1).
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned size() const { return static_cast<unsigned>(workers_.size()); }

  /// Runs fn(begin..end) split into contiguous chunks across the pool,
  /// blocking until all chunks finish. fn(lo, hi) processes [lo, hi).
  /// Nested calls from inside ANY pool task — this pool's or another
  /// ThreadPool's — run inline (single chunk), so outer parallelism (e.g.
  /// runtime::McEngine samples, the faultsim campaign scenario scheduler)
  /// composes with inner parallel kernels without deadlocking a pool or
  /// funneling every scheduler worker through another pool's queue.
  void parallel_for(int64_t begin, int64_t end,
                    const std::function<void(int64_t, int64_t)>& fn,
                    int64_t min_chunk = 1);

  /// Process-wide pool (sized once from hardware_concurrency).
  static ThreadPool& global();

  /// Whether the calling thread is a worker of any ThreadPool — i.e. a
  /// parallel_for issued here would run inline. Lets schedulers skip
  /// provisioning workers that could never dispatch.
  static bool current_thread_in_pool();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

/// Convenience wrapper over the global pool.
void parallel_for(int64_t begin, int64_t end,
                  const std::function<void(int64_t, int64_t)>& fn,
                  int64_t min_chunk = 1);

}  // namespace cn
