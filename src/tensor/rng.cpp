#include "tensor/rng.h"

#include <cmath>

namespace cn {

namespace {
inline uint64_t rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

// splitmix64 for seeding.
uint64_t splitmix64(uint64_t& state) {
  uint64_t z = (state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}
}  // namespace

uint64_t mix64(uint64_t z) {
  uint64_t state = z;
  return splitmix64(state);
}

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

uint64_t Rng::next_u64() {
  const uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 random mantissa bits -> [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

int64_t Rng::uniform_int(int64_t n) {
  return n <= 0 ? 0 : static_cast<int64_t>(uniform() * static_cast<double>(n));
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 1e-300);
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double a = 6.283185307179586476925286766559 * u2;
  cached_normal_ = r * std::sin(a);
  has_cached_normal_ = true;
  return r * std::cos(a);
}

double Rng::normal(double mean, double stddev) { return mean + stddev * normal(); }

double Rng::lognormal(double mu, double sigma) { return std::exp(normal(mu, sigma)); }

bool Rng::bernoulli(double p) { return uniform() < p; }

Rng Rng::fork() { return Rng(next_u64() ^ 0xD1B54A32D192ED03ull); }

void Rng::fill_normal(Tensor& t, float mean, float stddev) {
  for (int64_t i = 0; i < t.size(); ++i)
    t[i] = static_cast<float>(normal(mean, stddev));
}

void Rng::fill_uniform(Tensor& t, float lo, float hi) {
  for (int64_t i = 0; i < t.size(); ++i) t[i] = static_cast<float>(uniform(lo, hi));
}

void Rng::fill_lognormal_factor(Tensor& t, float sigma) {
  for (int64_t i = 0; i < t.size(); ++i)
    t[i] = static_cast<float>(lognormal(0.0, sigma));
}

}  // namespace cn
