// Dense math kernels on Tensor.
//
// All functions are shape-checked (throw std::invalid_argument on mismatch).
// Conventions:
//  - matrices are rank-2 tensors, row-major;
//  - images are NCHW;
//  - "into" variants write into a preallocated output to avoid allocation in
//    hot training loops.
#pragma once

#include "tensor/tensor.h"

namespace cn {

// ---------- elementwise ----------

/// out = a + b (same shape).
Tensor add(const Tensor& a, const Tensor& b);
/// out = a - b.
Tensor sub(const Tensor& a, const Tensor& b);
/// out = a * b (Hadamard).
Tensor mul(const Tensor& a, const Tensor& b);
/// out = a * s.
Tensor scale(const Tensor& a, float s);
/// a += b.
void add_inplace(Tensor& a, const Tensor& b);
/// a -= b.
void sub_inplace(Tensor& a, const Tensor& b);
/// a *= b (Hadamard).
void mul_inplace(Tensor& a, const Tensor& b);
/// a *= s.
void scale_inplace(Tensor& a, float s);
/// a += s * b (axpy).
void axpy_inplace(Tensor& a, float s, const Tensor& b);

// ---------- reductions / stats ----------

float sum(const Tensor& a);
float mean(const Tensor& a);
float max_abs(const Tensor& a);
/// Sum of squared elements.
float sum_sq(const Tensor& a);
/// Euclidean norm.
float l2_norm(const Tensor& a);
/// Index of the maximum element in row `r` of a 2-D tensor.
int64_t argmax_row(const Tensor& a, int64_t r);

// ---------- linear algebra ----------

/// C = A(M,K) * B(K,N). Parallel blocked kernel.
Tensor matmul(const Tensor& a, const Tensor& b);
/// C += or = A*B with preallocated C; if accumulate, adds into C.
void matmul_into(const Tensor& a, const Tensor& b, Tensor& c, bool accumulate = false);
/// C = A^T(K,M) * B(K,N) -> (M,N).
Tensor matmul_tn(const Tensor& a, const Tensor& b);
/// C = A(M,K) * B^T(N,K) -> (M,N).
Tensor matmul_nt(const Tensor& a, const Tensor& b);
/// Transpose of a rank-2 tensor.
Tensor transpose(const Tensor& a);
/// y = A(M,N) * x(N).
Tensor matvec(const Tensor& a, const Tensor& x);
/// y = A^T(M,N) * x(M) -> (N).
Tensor matvec_t(const Tensor& a, const Tensor& x);
/// Dot product of two same-size tensors (flattened).
float dot(const Tensor& a, const Tensor& b);

// ---------- convolution support ----------

/// Geometry of a 2-D convolution / pooling window.
struct ConvGeom {
  int64_t in_c = 0, in_h = 0, in_w = 0;
  int64_t k_h = 0, k_w = 0;
  int64_t stride = 1;
  int64_t pad = 0;
  int64_t out_h() const { return (in_h + 2 * pad - k_h) / stride + 1; }
  int64_t out_w() const { return (in_w + 2 * pad - k_w) / stride + 1; }
};

/// im2col for one image: input (C,H,W) -> cols (C*kh*kw, OH*OW).
void im2col(const float* img, const ConvGeom& g, float* cols);
/// col2im scatter-add: cols (C*kh*kw, OH*OW) -> img (C,H,W) (img must be zeroed).
void col2im(const float* cols, const ConvGeom& g, float* img);

// ---------- activations (out-of-place building blocks) ----------

/// Row-wise softmax of a 2-D tensor.
Tensor softmax_rows(const Tensor& logits);

}  // namespace cn
