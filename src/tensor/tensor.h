// Tensor: a minimal dense float tensor with value semantics.
//
// The CorrectNet reproduction deliberately avoids external ML frameworks; this
// tensor is the substrate for the whole NN/analog stack. Design choices:
//  - contiguous row-major float32 storage owned by the tensor (deep copies);
//  - shapes are small vectors of int64_t; rank is typically 1..4;
//  - all heavy math lives in free functions (ops.h) so the class stays small.
#pragma once

#include <cassert>
#include <cstdint>
#include <initializer_list>
#include <numeric>
#include <string>
#include <vector>

namespace cn {

/// Shape of a tensor: dimension sizes, row-major (last index fastest).
using Shape = std::vector<int64_t>;

/// Number of elements a shape describes (product of dims; 1 for scalars).
int64_t numel(const Shape& s);

/// Human-readable form, e.g. "[2, 3, 4]".
std::string to_string(const Shape& s);

/// Dense row-major float tensor with owning, value-semantic storage.
class Tensor {
 public:
  /// Empty tensor (rank 0, zero elements).
  Tensor() = default;

  /// Zero-initialized tensor of the given shape.
  explicit Tensor(Shape shape);

  /// Tensor of the given shape with every element set to `fill`.
  Tensor(Shape shape, float fill);

  /// Tensor taking ownership of `data`; data.size() must equal numel(shape).
  Tensor(Shape shape, std::vector<float> data);

  static Tensor zeros(Shape shape) { return Tensor(std::move(shape)); }
  static Tensor full(Shape shape, float v) { return Tensor(std::move(shape), v); }
  /// 1-D tensor from an explicit list of values.
  static Tensor from(std::initializer_list<float> vals);

  const Shape& shape() const { return shape_; }
  int64_t rank() const { return static_cast<int64_t>(shape_.size()); }
  /// Size of dimension i; negative i counts from the end (-1 = last).
  int64_t dim(int64_t i) const;
  int64_t size() const { return static_cast<int64_t>(data_.size()); }
  bool empty() const { return data_.empty(); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  std::vector<float>& vec() { return data_; }
  const std::vector<float>& vec() const { return data_; }

  float& operator[](int64_t i) { return data_[static_cast<size_t>(i)]; }
  float operator[](int64_t i) const { return data_[static_cast<size_t>(i)]; }

  /// 2-D accessors (row-major). Debug-checked.
  float& at(int64_t r, int64_t c);
  float at(int64_t r, int64_t c) const;

  /// Returns a copy with a new shape; element count must match.
  Tensor reshaped(Shape new_shape) const;
  /// In-place reshape; element count must match.
  void reshape(Shape new_shape);

  /// Deep copy (Tensor already copies deeply; provided for clarity at call sites).
  Tensor clone() const { return *this; }

  /// Sets every element to `v`.
  void fill(float v);
  /// Sets every element to zero.
  void zero() { fill(0.0f); }

  bool same_shape(const Tensor& other) const { return shape_ == other.shape_; }

 private:
  Shape shape_;
  std::vector<float> data_;
};

}  // namespace cn
