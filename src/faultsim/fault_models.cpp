#include "faultsim/fault_models.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace cn::faultsim {

void StuckAtFault::apply(float* g_pos, float* g_neg, const TileCtx& ctx,
                         const analog::RramDeviceParams& dev, Rng& rng) const {
  apply_mapped(g_pos, g_neg, ctx, dev, rng, nullptr);
}

void StuckAtFault::apply_mapped(float* g_pos, float* g_neg, const TileCtx& ctx,
                                const analog::RramDeviceParams& dev, Rng& rng,
                                remap::DefectMap* defects) const {
  if (rate_low <= 0.0 && rate_high <= 0.0) return;
  const double p_any = rate_low + rate_high;
  const int64_t n = ctx.rows * ctx.cols;
  // One uniform per physical cell; G+ and G- fail independently. The draw
  // sequence is identical with and without defect recording (matched-pair
  // remap-on/off chips must realize the same defect maps).
  for (int pol = 0; pol < 2; ++pol) {
    float* g = pol == 0 ? g_pos : g_neg;
    for (int64_t i = 0; i < n; ++i) {
      const double u = rng.uniform();
      float stuck;
      if (u < rate_low) stuck = dev.g_min;
      else if (u < p_any) stuck = dev.g_max;
      else continue;
      g[i] = stuck;
      if (defects) defects->push_back({i, pol == 1, stuck});
    }
  }
}

void DriftFault::apply(float* g_pos, float* g_neg, const TileCtx& ctx,
                       const analog::RramDeviceParams&, Rng& rng) const {
  if (t_ratio == 1.0 || (nu_mean == 0.0 && nu_sigma == 0.0)) return;
  const double log_t = std::log(t_ratio);
  const int64_t n = ctx.rows * ctx.cols;
  for (float* g : {g_pos, g_neg}) {
    for (int64_t i = 0; i < n; ++i) {
      const double nu = std::max(0.0, rng.normal(nu_mean, nu_sigma));
      g[i] = static_cast<float>(g[i] * std::exp(-nu * log_t));
    }
  }
}

void IrDropFault::apply(float* g_pos, float* g_neg, const TileCtx& ctx,
                        const analog::RramDeviceParams&, Rng&) const {
  if (alpha_wordline == 0.0 && alpha_bitline == 0.0) return;
  const double row_span = static_cast<double>(std::max<int64_t>(1, ctx.array_rows - 1));
  const double col_span = static_cast<double>(std::max<int64_t>(1, ctx.array_cols - 1));
  for (int64_t r = 0; r < ctx.rows; ++r) {
    const double bl = alpha_bitline * static_cast<double>(ctx.row0 + r) / row_span;
    for (int64_t c = 0; c < ctx.cols; ++c) {
      const double wl = alpha_wordline * static_cast<double>(ctx.col0 + c) / col_span;
      const float att = static_cast<float>(std::max(0.0, 1.0 - wl - bl));
      const int64_t i = r * ctx.cols + c;
      g_pos[i] *= att;
      g_neg[i] *= att;
    }
  }
}

void ThermalFault::prepare_device(analog::RramDeviceParams& dev) const {
  if (temperature == t_nominal) return;
  const float scale =
      static_cast<float>(std::sqrt(std::max(0.0, temperature / t_nominal)));
  dev.program_sigma *= scale;
  dev.readout.read_sigma *= scale;
}

void ThermalFault::apply(float* g_pos, float* g_neg, const TileCtx& ctx,
                         const analog::RramDeviceParams&, Rng& rng) const {
  const double over = temperature / t_nominal - 1.0;
  const double sigma = cell_sigma * over;
  if (sigma <= 0.0) return;
  const int64_t n = ctx.rows * ctx.cols;
  for (float* g : {g_pos, g_neg}) {
    for (int64_t i = 0; i < n; ++i)
      g[i] = static_cast<float>(g[i] * rng.lognormal(0.0, sigma));
  }
}

FaultSpec fault_free() {
  FaultSpec s;
  s.kind = "none";
  return s;
}

FaultSpec stuck_at(double rate, double high_fraction) {
  FaultSpec s;
  s.kind = "stuck_at";
  s.severity = rate;
  s.models.push_back(std::make_shared<StuckAtFault>(
      rate * (1.0 - high_fraction), rate * high_fraction));
  return s;
}

FaultSpec drift(double t_ratio, double nu_mean, double nu_sigma) {
  FaultSpec s;
  s.kind = "drift";
  s.severity = t_ratio;
  s.models.push_back(std::make_shared<DriftFault>(t_ratio, nu_mean, nu_sigma));
  return s;
}

FaultSpec ir_drop(double alpha) {
  FaultSpec s;
  s.kind = "ir_drop";
  s.severity = alpha;
  s.models.push_back(std::make_shared<IrDropFault>(alpha, alpha));
  return s;
}

FaultSpec thermal(double temperature, double t_nominal) {
  FaultSpec s;
  s.kind = "thermal";
  s.severity = temperature;
  s.models.push_back(std::make_shared<ThermalFault>(temperature, t_nominal));
  return s;
}

FaultSpec make_fault(const std::string& kind, double severity) {
  if (kind.empty() || kind == "none") return fault_free();
  if (kind == "stuck_at") return stuck_at(severity);
  if (kind == "drift") return drift(severity);
  if (kind == "ir_drop") return ir_drop(severity);
  if (kind == "thermal") return thermal(severity);
  throw std::invalid_argument(
      "make_fault: unknown fault kind \"" + kind +
      "\" (known: none, stuck_at, drift, ir_drop, thermal)");
}

}  // namespace cn::faultsim
