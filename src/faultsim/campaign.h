// Campaign: robustness-evaluation engine over the inference runtime.
//
// A campaign is a scenario grid — fault kind x severity x protection variant
// (compensation on/off, baseline protections) — where every scenario builds
// a crossbar-mode runtime::ChipFarm carrying the scenario's fault list and
// evaluates it with runtime::McEngine. Scenario fault realizations are
// paired across protection variants (same per-scenario chip seeds), making
// the compensation-on/off comparison a matched-pairs experiment.
//
// The outer grid itself is embarrassingly parallel and is scheduled with
// runtime::parallel_indexed: up to `parallel_scenarios` cells run
// concurrently, each with its own farm/engine state, and every result is
// written to its grid-order slot (deterministic reduction keyed by scenario
// index, never by completion order). Per-scenario chip seeds depend only on
// (campaign seed, fault index), so the CampaignReport — including its JSON —
// is byte-identical for any scheduling (asserted in tier-1 and by
// bench_faultsim).
//
// The *description* of a campaign (FaultSpecs + model variants + options) is
// plain data, separate from *execution* (run) and *reporting*
// (CampaignReport with a JSON emitter in the BENCH_*.json key/value shape).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/config.h"
#include "core/montecarlo.h"
#include "data/dataset.h"
#include "faultsim/fault_models.h"
#include "nn/sequential.h"

namespace cn::faultsim {

struct CampaignOptions {
  int64_t chips = 8;          // MC samples (chip instances) per scenario
  uint64_t seed = 42;         // campaign seed; per-scenario seeds derive from it
  int64_t batch_size = 128;   // evaluation batch size
  int64_t max_live = 0;       // ChipFarm physical slots; 0 = auto
  int64_t tile = 128;         // crossbar tile edge
  int threads = 0;            // McEngine threads; 1 forces the serial path
  // Scenario-level concurrency: how many grid cells run at once on the
  // shared tensor pool (a dedicated pool is provisioned when the shared one
  // is narrower — see runtime::parallel_indexed). 0 = auto (pool width),
  // 1 = sequential. Results are byte-identical for every value. Parallelism
  // is scenario-granular: under any value > 1 each scenario runs serially
  // inside its worker (nested parallel_for is inline), so an explicit value
  // *below* the core count trades away the sequential path's chip-level
  // parallelism — on wide boxes use 0 (auto) or >= the core count.
  int64_t parallel_scenarios = 0;
  double catastrophic_below = 0.2;  // accuracy counted as catastrophic failure
  // Execution target every scenario's crossbar farms lower with, validated
  // against the exec registry by the Campaign ctor. Empty = process default.
  // Bit-exact targets never change a report; approximate ones (int8) shift
  // accuracies within their pinned bounds.
  std::string target;
  analog::RramDeviceParams dev;     // baseline device every scenario starts from
  // Fault-aware remapping protection axis: when `remap.enabled`, every
  // (fault, model) cell runs twice — remap off, then remap on with these
  // params — under the same per-scenario chip seeds, so the pair sees
  // identical defect maps (a matched-pairs experiment, like compensation).
  remap::RemapParams remap;
  // Observability sinks (both optional). When `trace_out` is set, run()
  // enables the process-wide obs::Tracer and writes a Chrome trace_event
  // JSON there; when `metrics_out` is set, run() writes a
  // MetricsRegistry::snapshot_json() there. Instrumentation is timing-only:
  // the CampaignReport (and its JSON) is byte-identical with either sink on
  // or off — asserted in tier-1 (tests/test_obs.cpp).
  std::string metrics_out;
  std::string trace_out;
  // Live introspection (all optional, all timing-only like the sinks above).
  // statusz_port >= 0 starts the process-global obs::ExpositionServer before
  // the grid runs (-1 = off, 0 = ephemeral port) and marks it ready;
  // metrics_stream starts the process-global obs::MetricsSnapshotter
  // appending 1 Hz interval-delta JSONL there; slo_p99_ms > 0 sets the
  // process-default latency objective (obs::set_default_slo_p99_ms) that
  // InferenceServers built later adopt.
  int64_t statusz_port = -1;
  std::string metrics_stream;
  double slo_p99_ms = 0;
  // Layer-graph fusion for every digital forward in the campaign (the fused
  // eval path in nn::Sequential): -1 = leave the process default
  // (set_fusion_enabled / CORRECTNET_FUSION / on), 0 = force off, 1 = force
  // on. Reports are byte-identical either way: the campaign models carry no
  // batchnorm, and every other fusion rewrite is bitwise-exact
  // (docs/ARCHITECTURE.md tolerance contract; asserted by tests/test_fusion
  // and bench_faultsim).
  int fusion = -1;
};

/// One grid cell's outcome.
struct ScenarioResult {
  std::string fault_kind;
  double severity = 0.0;
  std::string model_name;     // protection variant ("baseline", "corrected", ...)
  bool compensation = false;  // variant has error compensation on
  bool remapped = false;      // fault-aware remapping was on for this cell
  core::McResult acc;         // mean/std/min/max + per-chip samples
  int64_t catastrophic = 0;   // chips with accuracy < catastrophic_below
  // Repair accounting summed over the scenario's chips (remap-on rows only;
  // the matching remap-off row realizes the same `defects` by construction).
  int64_t defects = 0;        // defective devices injected
  int64_t absorbed = 0;       // repaired by pair swap or spare lines
  int64_t residual = 0;       // left in the programmed arrays
};

struct CampaignReport {
  int64_t chips = 0;
  uint64_t seed = 0;
  double catastrophic_below = 0.0;
  double wall_s = 0.0;
  std::vector<ScenarioResult> scenarios;

  int64_t total_catastrophic() const;
  /// Defective devices absorbed by remapping, summed over remap-on rows.
  int64_t total_absorbed() const;
  /// Scenarios of one protection variant, grid order preserved (both remap
  /// variants when the remap axis is on).
  std::vector<const ScenarioResult*> for_model(const std::string& name) const;
  /// One remap variant of one protection variant, grid order preserved.
  std::vector<const ScenarioResult*> for_model(const std::string& name,
                                               bool remapped) const;
  /// Mean accuracy over every scenario of one variant (the headline
  /// robustness number the compensation-on/off comparison reads).
  double mean_accuracy(const std::string& model_name) const;
  /// Mean accuracy of one remap variant of one protection variant.
  double mean_accuracy(const std::string& model_name, bool remapped) const;

  /// JSON in the BENCH_*.json shape (ordered keys, %.6g numbers): campaign
  /// metadata at the top level plus a "scenarios" array.
  std::string to_json() const;
  void write_json(const std::string& path) const;
};

class Campaign {
 public:
  explicit Campaign(CampaignOptions opts = {});

  /// Registers a protection variant (evaluated against every fault spec).
  /// The model is cloned; `compensation` is recorded in the report rows.
  void add_model(const std::string& name, const nn::Sequential& model,
                 bool compensation);
  /// Appends one scenario column to the grid.
  void add_fault(FaultSpec spec);
  /// Convenience: severity grids of the four built-in fault kinds.
  void add_stuck_at_grid(const std::vector<double>& rates);
  void add_drift_grid(const std::vector<double>& t_ratios);
  void add_ir_drop_grid(const std::vector<double>& alphas);
  void add_thermal_grid(const std::vector<double>& temperatures);

  int64_t num_models() const { return static_cast<int64_t>(models_.size()); }
  int64_t num_faults() const { return static_cast<int64_t>(faults_.size()); }
  /// Whether the remap-on/off protection axis is part of the grid.
  bool remap_enabled() const { return opts_.remap.enabled; }
  /// The scenario-concurrency knob (0 = auto); frontends print it.
  int64_t parallel_scenarios() const { return opts_.parallel_scenarios; }
  /// The configured execution target ("" = process default).
  const std::string& target() const { return opts_.target; }
  /// Grid size = fault specs x protection variants x remap variants.
  int64_t num_scenarios() const {
    return num_models() * num_faults() * (opts_.remap.enabled ? 2 : 1);
  }

  /// Runs the whole grid and aggregates the report. Deterministic: scenario
  /// (fi, model) uses chip seeds derived from (opts.seed, fi) only, so the
  /// same chips and fault realizations meet every protection variant — and
  /// results land at their grid index, so the report does not depend on
  /// `parallel_scenarios` (only wall_s does).
  ///
  /// Per-cell "[k/N] scenario ..." progress goes through obs::Logger at
  /// debug level (frontends opt in via --log-level / the `log_level` config
  /// key); each cell also emits an obs::Span and bumps campaign.* metrics.
  /// None of it feeds rng streams or the numeric path.
  CampaignReport run(const data::Dataset& test);

 private:
  struct ModelEntry {
    std::string name;
    std::unique_ptr<nn::Sequential> model;  // indirection: Sequential is move-hostile
    bool compensation;
  };
  CampaignOptions opts_;
  std::vector<ModelEntry> models_;
  std::vector<FaultSpec> faults_;
};

/// The campaign config-key set campaign_from_config declares to
/// core::KeyValueConfig::validate_keys. Exposed so docs/CONFIG.md can be
/// test-enforced against the code (tests/test_config.cpp diffs the
/// documented table against this list).
const std::vector<std::string>& campaign_config_keys();

/// Builds a campaign grid from config-file keys (core::KeyValueConfig);
/// docs/CONFIG.md is the per-key reference (type, default, validation),
/// kept honest by a tier-1 test. Summary:
///   chips, seed, batch, catastrophic, tile    — CampaignOptions scalars
///   target = simd|simd-generic|int8|...       — execution target (registry-validated)
///   parallel_scenarios = 0|1|N — scenario-level concurrency (0 = auto)
///   program_sigma, read_sigma, adc_bits, dac_bits, levels — baseline device
///   control = 0|1            — include the fault-free control scenario (default 1)
///   stuck.rates = 0.001,0.01 — stuck-at severity grid (stuck.high_fraction)
///   drift.times = 10,1000    — drift t/t0 grid (drift.nu, drift.nu_sigma)
///   ir.alphas = 0.05,0.1     — IR-drop attenuation grid
///   thermal.temps = 350,400  — temperature grid (thermal.t0)
///   remap = 0|1              — fault-aware remapping protection axis
///     (remap.spare_rows / remap.spare_cols — per-tile spare budget,
///      remap.pair_swap = 0|1 — differential-pair partner re-programming)
/// Unknown keys throw (validate_keys): a typo must not silently drop a
/// scenario axis. Models are registered by the caller, not the config.
Campaign campaign_from_config(const core::KeyValueConfig& cfg);

}  // namespace cn::faultsim
