// Device-fault and nonideality models for analog in-memory computing
// (paper §II: the failure space CorrectNet's error suppression +
// compensation must survive goes well beyond programming variation).
//
// Every model is a construction-time transform of the programmed
// conductances behind the analog::FaultModel hook, so the batched matmul and
// per-column matvec execution paths read identical arrays and stay
// bit-identical under every fault. All randomness comes from the chip's own
// programming rng stream, keeping chips pure functions of their seed
// (runtime::ChipFarm's determinism contract). Models at zero severity are
// true no-ops: no rng draws, no writes — a zero-rate scenario is
// bit-identical to a fault-free chip.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "analog/crossbar.h"

namespace cn::faultsim {

/// Stuck-at cell defects: each physical conductance (G+ and G- cells are
/// independent devices) is stuck at G_min with probability rate_low and at
/// G_max with probability rate_high — the classic SA0/SA1 defect map,
/// Bernoulli per cell with deterministic per-chip seeds.
///
/// The defect map is known at program time (wafer test / program-verify),
/// so apply_mapped reports every stuck device to the fault-aware remapping
/// controller; apply() is the same transform with the report discarded —
/// both draw one uniform per physical device in the same order.
struct StuckAtFault final : public analog::FaultModel {
  double rate_low = 0.0;   // P(cell stuck at g_min)
  double rate_high = 0.0;  // P(cell stuck at g_max)

  StuckAtFault() = default;
  StuckAtFault(double low, double high) : rate_low(low), rate_high(high) {}

  void apply(float* g_pos, float* g_neg, const TileCtx& ctx,
             const analog::RramDeviceParams& dev, Rng& rng) const override;
  void apply_mapped(float* g_pos, float* g_neg, const TileCtx& ctx,
                    const analog::RramDeviceParams& dev, Rng& rng,
                    remap::DefectMap* defects) const override;
  bool has_defect_map() const override { return true; }
  std::string name() const override { return "stuck_at"; }
};

/// Conductance drift: G(t) = G0 * (t/t0)^(-nu) with a per-cell nu spread
/// (nu ~ N(nu_mean, nu_sigma), clamped at 0 so cells never gain
/// conductance). t_ratio = t/t0 >= 1 is the aging knob; 1 is a no-op.
struct DriftFault final : public analog::FaultModel {
  double t_ratio = 1.0;    // elapsed time over reference time t0
  double nu_mean = 0.05;   // mean drift exponent
  double nu_sigma = 0.02;  // per-cell spread of the exponent

  DriftFault() = default;
  explicit DriftFault(double t, double nu = 0.05, double spread = 0.02)
      : t_ratio(t), nu_mean(nu), nu_sigma(spread) {}

  void apply(float* g_pos, float* g_neg, const TileCtx& ctx,
             const analog::RramDeviceParams& dev, Rng& rng) const override;
  std::string name() const override { return "drift"; }
};

/// Wordline/bitline IR drop: parasitic wire resistance attenuates the
/// voltage a cell sees in proportion to its distance from the drivers.
/// Closed-form linear model (deterministic, no rng): cell (r, c) of the
/// full array keeps the fraction
///   1 - alpha_wordline * c/(cols-1) - alpha_bitline * r/(rows-1)
/// of its current contribution (wordlines run across bitline columns,
/// bitlines across wordline rows), folded into the conductances so both
/// execution paths stay cheap and exactly equal. Clamped at 0.
struct IrDropFault final : public analog::FaultModel {
  double alpha_wordline = 0.0;  // fractional drop at the far end of a wordline
  double alpha_bitline = 0.0;   // fractional drop at the far end of a bitline

  IrDropFault() = default;
  IrDropFault(double wl, double bl) : alpha_wordline(wl), alpha_bitline(bl) {}

  void apply(float* g_pos, float* g_neg, const TileCtx& ctx,
             const analog::RramDeviceParams& dev, Rng& rng) const override;
  std::string name() const override { return "ir_drop"; }
};

/// Temperature-scaled sigmas: noise power grows linearly with absolute
/// temperature, so programming and read sigma scale by sqrt(T/T0)
/// (prepare_device). Above T0 an additional per-cell lognormal fluctuation
/// with sigma = cell_sigma * (T/T0 - 1) models thermally activated
/// conductance instability. T == T0 is a no-op.
struct ThermalFault final : public analog::FaultModel {
  double temperature = 300.0;  // Kelvin
  double t_nominal = 300.0;    // reference temperature the sigmas are rated at
  double cell_sigma = 0.05;    // lognormal sigma of cell instability per (T/T0 - 1)

  ThermalFault() = default;
  explicit ThermalFault(double t_kelvin, double t0 = 300.0, double cs = 0.05)
      : temperature(t_kelvin), t_nominal(t0), cell_sigma(cs) {}

  void prepare_device(analog::RramDeviceParams& dev) const override;
  void apply(float* g_pos, float* g_neg, const TileCtx& ctx,
             const analog::RramDeviceParams& dev, Rng& rng) const override;
  std::string name() const override { return "thermal"; }
};

/// One named fault scenario: a severity scalar for reporting plus the owned
/// model list. list() yields the non-owning view the analog layer consumes;
/// the FaultSpec must outlive every chip programmed with it.
struct FaultSpec {
  std::string kind;        // e.g. "stuck_at"; "none" for the control scenario
  double severity = 0.0;   // the scalar knob the campaign grid sweeps
  std::vector<std::shared_ptr<const analog::FaultModel>> models;

  analog::FaultList list() const {
    analog::FaultList out;
    out.reserve(models.size());
    for (const auto& m : models) out.push_back(m.get());
    return out;
  }
};

// Grid builders: one FaultSpec per severity value.
FaultSpec fault_free();
FaultSpec stuck_at(double rate, double high_fraction = 0.5);
FaultSpec drift(double t_ratio, double nu_mean = 0.05, double nu_sigma = 0.02);
FaultSpec ir_drop(double alpha);
FaultSpec thermal(double temperature, double t_nominal = 300.0);

/// Builder dispatch by kind name — the serve-path drill / config seam:
/// "none" (or "") -> fault_free(), "stuck_at" -> stuck_at(severity),
/// "drift" -> drift(severity), "ir_drop" -> ir_drop(severity),
/// "thermal" -> thermal(severity). Unknown kinds throw
/// std::invalid_argument. Severity semantics match the campaign grid axes
/// (rate / t_ratio / alpha / Kelvin respectively).
FaultSpec make_fault(const std::string& kind, double severity);

}  // namespace cn::faultsim
