#include "faultsim/campaign.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <stdexcept>

#include "exec/target.h"
#include "nn/fusion.h"
#include "obs/exposition.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/slo.h"
#include "obs/snapshot_stream.h"
#include "obs/trace.h"
#include "runtime/chip_farm.h"
#include "runtime/mc_engine.h"
#include "runtime/scheduler.h"

namespace cn::faultsim {

namespace {

// Number formatting matching bench::BenchJson (%.6g, ordered keys).
std::string json_num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

std::string json_escaped(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out.push_back(c);
  }
  return out;
}

}  // namespace

int64_t CampaignReport::total_catastrophic() const {
  int64_t n = 0;
  for (const ScenarioResult& s : scenarios) n += s.catastrophic;
  return n;
}

int64_t CampaignReport::total_absorbed() const {
  int64_t n = 0;
  for (const ScenarioResult& s : scenarios)
    if (s.remapped) n += s.absorbed;
  return n;
}

std::vector<const ScenarioResult*> CampaignReport::for_model(
    const std::string& name) const {
  std::vector<const ScenarioResult*> out;
  for (const ScenarioResult& s : scenarios)
    if (s.model_name == name) out.push_back(&s);
  return out;
}

std::vector<const ScenarioResult*> CampaignReport::for_model(
    const std::string& name, bool remapped) const {
  std::vector<const ScenarioResult*> out;
  for (const ScenarioResult& s : scenarios)
    if (s.model_name == name && s.remapped == remapped) out.push_back(&s);
  return out;
}

double CampaignReport::mean_accuracy(const std::string& model_name) const {
  double sum = 0.0;
  int64_t n = 0;
  for (const ScenarioResult& s : scenarios) {
    if (s.model_name != model_name) continue;
    sum += s.acc.mean;
    ++n;
  }
  return n > 0 ? sum / static_cast<double>(n) : 0.0;
}

double CampaignReport::mean_accuracy(const std::string& model_name,
                                     bool remapped) const {
  double sum = 0.0;
  int64_t n = 0;
  for (const ScenarioResult& s : scenarios) {
    if (s.model_name != model_name || s.remapped != remapped) continue;
    sum += s.acc.mean;
    ++n;
  }
  return n > 0 ? sum / static_cast<double>(n) : 0.0;
}

std::string CampaignReport::to_json() const {
  std::string j = "{\n";
  j += "  \"name\": \"faultsim_campaign\",\n";
  j += "  \"chips\": " + std::to_string(chips) + ",\n";
  j += "  \"seed\": " + std::to_string(seed) + ",\n";
  j += "  \"catastrophic_below\": " + json_num(catastrophic_below) + ",\n";
  j += "  \"total_catastrophic\": " + std::to_string(total_catastrophic()) + ",\n";
  j += "  \"total_absorbed\": " + std::to_string(total_absorbed()) + ",\n";
  j += "  \"wall_s\": " + json_num(wall_s) + ",\n";
  j += "  \"scenarios\": [\n";
  for (size_t i = 0; i < scenarios.size(); ++i) {
    const ScenarioResult& s = scenarios[i];
    j += "    {\"fault\": \"" + json_escaped(s.fault_kind) + "\"";
    j += ", \"severity\": " + json_num(s.severity);
    j += ", \"model\": \"" + json_escaped(s.model_name) + "\"";
    j += std::string(", \"compensation\": ") + (s.compensation ? "true" : "false");
    j += std::string(", \"remap\": ") + (s.remapped ? "true" : "false");
    if (s.remapped) {
      j += ", \"defects\": " + std::to_string(s.defects);
      j += ", \"absorbed\": " + std::to_string(s.absorbed);
      j += ", \"residual\": " + std::to_string(s.residual);
    }
    j += ", \"mean\": " + json_num(s.acc.mean);
    j += ", \"stddev\": " + json_num(s.acc.stddev);
    j += ", \"min\": " + json_num(s.acc.min);
    j += ", \"max\": " + json_num(s.acc.max);
    j += ", \"catastrophic\": " + std::to_string(s.catastrophic);
    j += ", \"samples\": [";
    for (size_t k = 0; k < s.acc.samples.size(); ++k) {
      if (k) j += ", ";
      j += json_num(s.acc.samples[k]);
    }
    j += "]}";
    if (i + 1 < scenarios.size()) j += ",";
    j += "\n";
  }
  j += "  ]\n}\n";
  return j;
}

void CampaignReport::write_json(const std::string& path) const {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("CampaignReport: cannot write " + path);
  os << to_json();
}

Campaign::Campaign(CampaignOptions opts) : opts_(opts) {
  if (opts_.chips < 1)
    throw std::invalid_argument("Campaign: need at least one chip per scenario");
  if (opts_.parallel_scenarios < 0)
    throw std::invalid_argument(
        "Campaign: parallel_scenarios must be >= 0 (0 = auto)");
  // An enabled remap axis with every repair move switched off would double
  // the grid with bit-identical no-op rows — the silent-misconfiguration
  // class the config hardening exists to stop.
  if (opts_.remap.enabled && !opts_.remap.active())
    throw std::invalid_argument(
        "Campaign: remap axis enabled but no repair moves configured "
        "(spare budget 0 and pair_swap off)");
  if (opts_.statusz_port > 65535)
    throw std::invalid_argument("Campaign: statusz_port must be <= 65535");
  if (opts_.slo_p99_ms < 0)
    throw std::invalid_argument("Campaign: slo_p99_ms must be >= 0 (0 = off)");
  // Resolve the execution target against the registry now: a typo'd name
  // must fail before any training or scenario work, not at the first farm.
  if (!opts_.target.empty()) exec::get_target(opts_.target);
}

void Campaign::add_model(const std::string& name, const nn::Sequential& model,
                         bool compensation) {
  models_.push_back(ModelEntry{
      name, std::make_unique<nn::Sequential>(model.clone_model()), compensation});
}

void Campaign::add_fault(FaultSpec spec) { faults_.push_back(std::move(spec)); }

void Campaign::add_stuck_at_grid(const std::vector<double>& rates) {
  for (double r : rates) add_fault(stuck_at(r));
}

void Campaign::add_drift_grid(const std::vector<double>& t_ratios) {
  for (double t : t_ratios) add_fault(drift(t));
}

void Campaign::add_ir_drop_grid(const std::vector<double>& alphas) {
  for (double a : alphas) add_fault(ir_drop(a));
}

void Campaign::add_thermal_grid(const std::vector<double>& temperatures) {
  for (double t : temperatures) add_fault(thermal(t));
}

CampaignReport Campaign::run(const data::Dataset& test) {
  if (models_.empty()) throw std::logic_error("Campaign: no models registered");
  if (faults_.empty()) throw std::logic_error("Campaign: no fault specs added");
  // The fusion axis is process-wide (the knob gates Sequential::forward);
  // apply an explicit override before any chip evaluates. -1 leaves the
  // ambient default (CORRECTNET_FUSION / set_fusion_enabled) in place.
  if (opts_.fusion >= 0) nn::set_fusion_enabled(opts_.fusion != 0);
  const auto t0 = std::chrono::steady_clock::now();

  CampaignReport report;
  report.chips = opts_.chips;
  report.seed = opts_.seed;
  report.catastrophic_below = opts_.catastrophic_below;

  // Flatten the grid in report (grid) order — fault spec outer, protection
  // variant, then the remap axis (off first, then on, under the *same*
  // scenario seed: the pair realizes identical defect maps, so any accuracy
  // gap is the controller's doing; matched pairs, like the compensation
  // variants). Cell i owns report.scenarios[i], so the report layout is
  // fixed before anything runs and never depends on completion order.
  struct Cell {
    size_t fi;
    size_t mi;
    bool remap_on;
  };
  std::vector<Cell> cells;
  cells.reserve(static_cast<size_t>(num_scenarios()));
  const int remap_variants = opts_.remap.enabled ? 2 : 1;
  for (size_t fi = 0; fi < faults_.size(); ++fi)
    for (size_t mi = 0; mi < models_.size(); ++mi)
      for (int rv = 0; rv < remap_variants; ++rv)
        cells.push_back(Cell{fi, mi, rv == 1});
  // Fault lists are shared across a spec's cells: fault models are
  // stateless (const apply, per-chip rng), so concurrent scenarios of one
  // spec can read one list.
  std::vector<analog::FaultList> lists;
  lists.reserve(faults_.size());
  for (const FaultSpec& spec : faults_) lists.push_back(spec.list());

  const int64_t n = static_cast<int64_t>(cells.size());
  const int64_t conc =
      runtime::effective_concurrency(opts_.parallel_scenarios, n);
  report.scenarios.resize(static_cast<size_t>(n));

  // Observability plumbing. All of it is timing/count-only — nothing below
  // touches rng streams or the numeric path, so the report JSON is
  // byte-identical with metrics/tracing on or off (tier-1 asserted).
  if (!opts_.trace_out.empty()) obs::Tracer::global().set_enabled(true);
  obs::Counter& m_scenarios = obs::metrics().counter("campaign.scenarios");
  obs::Gauge& m_rate = obs::metrics().gauge("campaign.scenarios_per_s");
  // Live introspection: a /statusz scrape mid-run sees the grid size and a
  // completed-cell count (progress order-independent: cells only increment).
  if (opts_.slo_p99_ms > 0) obs::set_default_slo_p99_ms(opts_.slo_p99_ms);
  if (!opts_.metrics_stream.empty())
    obs::MetricsSnapshotter::start_global(opts_.metrics_stream);
  if (opts_.statusz_port >= 0)
    obs::ExpositionServer::start_global(static_cast<int>(opts_.statusz_port))
        .set_ready(true);
  obs::Gauge& m_total = obs::metrics().gauge("campaign.cells_total");
  obs::Gauge& m_done = obs::metrics().gauge("campaign.cells_done");
  m_total.set(static_cast<double>(n));
  m_done.set(0);
  std::atomic<int64_t> cells_done{0};

  runtime::parallel_indexed(n, conc, [&](int64_t i) {
    const Cell& cell = cells[static_cast<size_t>(i)];
    const FaultSpec& spec = faults_[cell.fi];
    const ModelEntry& me = models_[cell.mi];
    // Per-scenario seed depends on the fault index only: every protection
    // variant sees the same chips and the same fault realizations.
    const uint64_t scenario_seed = mix64(
        opts_.seed ^
        (0x9E3779B97F4A7C15ull * (static_cast<uint64_t>(cell.fi) + 1)));
    // The cell label is shared by the progress line and the trace span; build
    // it only when either consumer is live (string assembly is cheap, but the
    // quiet path should stay print- and allocation-free).
    const bool want_label =
        obs::Logger::global().should_log(obs::LogLevel::kDebug) ||
        obs::Tracer::global().enabled();
    std::string label;
    if (want_label) {
      label = "scenario " + spec.kind + "@" + json_num(spec.severity) + " x " +
              me.name +
              (opts_.remap.enabled
                   ? (cell.remap_on ? " x remap" : " x no-remap")
                   : "");
      // The Logger sink serializes concurrent lines; "[k/N]" carries the grid
      // index since completion order is scheduler-dependent.
      obs::log_debug("[campaign] [" + std::to_string(i + 1) + "/" +
                     std::to_string(n) + "] " + label);
    }
    obs::Span cell_span(label, "campaign");
    m_scenarios.add(1);
    runtime::ChipFarmOptions fo;
    fo.instances = opts_.chips;
    fo.seed = scenario_seed;
    fo.max_live = opts_.max_live;
    // Partition farm slots across live scenarios: a scheduler worker
    // evaluates its scenario inline (nested parallel_for runs inline), so
    // extra live slots buy nothing and cost one model clone each — one slot
    // per concurrent scenario bounds memory at conc models. Chips are pure
    // functions of chip_seed(s), so the slot count never changes results.
    if (fo.max_live == 0 && conc > 1) fo.max_live = 1;
    fo.tile = opts_.tile;
    fo.target = opts_.target;
    if (cell.remap_on) fo.remap = opts_.remap;
    runtime::ChipFarm farm(*me.model, opts_.dev, fo, lists[cell.fi]);
    runtime::McEngineOptions eo;
    eo.batch_size = opts_.batch_size;
    eo.threads = opts_.threads;
    ScenarioResult res;
    res.fault_kind = spec.kind;
    res.severity = spec.severity;
    res.model_name = me.name;
    res.compensation = me.compensation;
    res.remapped = cell.remap_on;
    res.acc = runtime::McEngine(farm, eo).accuracy(test);
    for (double a : res.acc.samples)
      if (a < opts_.catastrophic_below) ++res.catastrophic;
    if (cell.remap_on) {
      for (int64_t s = 0; s < opts_.chips; ++s) {
        const remap::RemapStats st = farm.chip_remap_stats(s);
        res.defects += st.defects;
        res.absorbed += st.absorbed();
        res.residual += st.residual;
      }
    }
    report.scenarios[static_cast<size_t>(i)] = std::move(res);
    m_done.set(
        static_cast<double>(cells_done.fetch_add(1, std::memory_order_relaxed) +
                            1));
  });
  report.wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  if (report.wall_s > 0)
    m_rate.set(static_cast<double>(n) / report.wall_s);
  if (!opts_.metrics_out.empty()) obs::metrics().write_json(opts_.metrics_out);
  if (!opts_.trace_out.empty())
    obs::Tracer::global().write_json(opts_.trace_out);
  return report;
}

const std::vector<std::string>& campaign_config_keys() {
  // The single source of truth for the campaign key set: validate_keys
  // enforces it at parse time and tests/test_config.cpp diffs docs/CONFIG.md
  // against it, so a key added here without documentation (or vice versa)
  // fails tier-1.
  static const std::vector<std::string> keys = {
      "chips", "seed", "batch", "catastrophic", "tile", "target", "control",
      "parallel_scenarios",
      "program_sigma", "read_sigma", "adc_bits", "dac_bits", "levels",
      "stuck.rates", "stuck.high_fraction", "drift.times", "drift.nu",
      "drift.nu_sigma", "ir.alphas", "thermal.temps", "thermal.t0",
      "remap", "remap.spare_rows", "remap.spare_cols", "remap.pair_swap",
      "metrics_out", "trace_out", "log_level",
      "statusz_port", "metrics_stream", "slo_p99_ms", "fusion",
  };
  return keys;
}

Campaign campaign_from_config(const core::KeyValueConfig& cfg) {
  // A typo'd key must fail loudly, not silently drop a scenario axis.
  cfg.validate_keys(campaign_config_keys());
  CampaignOptions opts;
  opts.chips = cfg.integer("chips", opts.chips);
  opts.seed = static_cast<uint64_t>(cfg.integer("seed", static_cast<int64_t>(opts.seed)));
  opts.batch_size = cfg.integer("batch", opts.batch_size);
  opts.tile = cfg.integer("tile", opts.tile);
  opts.target = cfg.str("target", opts.target);
  opts.parallel_scenarios =
      cfg.integer("parallel_scenarios", opts.parallel_scenarios);
  opts.catastrophic_below = cfg.number("catastrophic", opts.catastrophic_below);
  opts.dev.program_sigma = static_cast<float>(cfg.number("program_sigma", 0.0));
  opts.dev.readout.read_sigma = static_cast<float>(cfg.number("read_sigma", 0.0));
  opts.dev.readout.adc_bits = static_cast<int>(cfg.integer("adc_bits", 0));
  opts.dev.readout.dac_bits = static_cast<int>(cfg.integer("dac_bits", 0));
  opts.dev.conductance_levels = static_cast<int>(cfg.integer("levels", 0));
  opts.remap.enabled = cfg.integer("remap", 0) != 0;
  opts.remap.spare_rows = cfg.integer("remap.spare_rows", opts.remap.spare_rows);
  opts.remap.spare_cols = cfg.integer("remap.spare_cols", opts.remap.spare_cols);
  opts.remap.pair_swap = cfg.integer("remap.pair_swap", 1) != 0;
  opts.metrics_out = cfg.str("metrics_out", opts.metrics_out);
  opts.trace_out = cfg.str("trace_out", opts.trace_out);
  opts.statusz_port = cfg.integer("statusz_port", opts.statusz_port);
  opts.metrics_stream = cfg.str("metrics_stream", opts.metrics_stream);
  opts.slo_p99_ms = cfg.number("slo_p99_ms", opts.slo_p99_ms);
  if (cfg.has("fusion"))
    opts.fusion = cfg.integer("fusion", 1) != 0 ? 1 : 0;
  // log_level steers the process-wide Logger (the campaign's progress lines
  // go through it at debug); parse now so a typo fails at config time.
  const std::string log_level = cfg.str("log_level", "");
  if (!log_level.empty())
    obs::Logger::global().set_level(obs::parse_log_level(log_level));

  Campaign c(opts);
  if (cfg.integer("control", 1) != 0) c.add_fault(fault_free());
  const double high_frac = cfg.number("stuck.high_fraction", 0.5);
  for (double r : cfg.numbers("stuck.rates")) c.add_fault(stuck_at(r, high_frac));
  const double nu = cfg.number("drift.nu", 0.05);
  const double nu_sigma = cfg.number("drift.nu_sigma", 0.02);
  for (double t : cfg.numbers("drift.times")) c.add_fault(drift(t, nu, nu_sigma));
  for (double a : cfg.numbers("ir.alphas")) c.add_fault(ir_drop(a));
  const double t0 = cfg.number("thermal.t0", 300.0);
  for (double t : cfg.numbers("thermal.temps")) c.add_fault(thermal(t, t0));
  return c;
}

}  // namespace cn::faultsim
