#include "core/lipschitz.h"

#include <cmath>

#include "analog/variation.h"
#include "tensor/ops.h"
#include "tensor/rng.h"

namespace cn::core {

double lipschitz_lambda(double k, double sigma) {
  if (sigma <= 0.0) return k;
  return k / analog::VariationModel::lognormal_bound3(sigma);
}

double LipschitzConfig::lambda() const {
  return std::max(static_cast<double>(lambda_min),
                  lipschitz_lambda(k, sigma));
}

namespace {
// Returns W viewed as 2-D (dim0, rest).
Tensor as_matrix(const Tensor& w) {
  return w.reshaped({w.dim(0), w.size() / w.dim(0)});
}
}  // namespace

float orthogonal_penalty(const Tensor& w, float lambda) {
  if (w.rank() < 2) return 0.0f;
  Tensor W = as_matrix(w);
  const int64_t rows = W.dim(0), cols = W.dim(1);
  const float l2 = lambda * lambda;
  Tensor G = (rows <= cols) ? matmul_nt(W, W)          // (rows, rows)
                            : matmul_tn(W, W);         // (cols, cols)
  const int64_t n = G.dim(0);
  for (int64_t i = 0; i < n; ++i) G[i * n + i] -= l2;
  return sum_sq(G);
}

float orthogonal_penalty_grad(nn::Param& p, float beta, float lambda) {
  if (p.value.rank() < 2) return 0.0f;
  Tensor W = as_matrix(p.value);
  const int64_t rows = W.dim(0), cols = W.dim(1);
  const float l2 = lambda * lambda;
  float penalty = 0.0f;
  Tensor dW;
  if (rows <= cols) {
    Tensor G = matmul_nt(W, W);  // (rows, rows)
    for (int64_t i = 0; i < rows; ++i) G[i * rows + i] -= l2;
    penalty = beta * sum_sq(G);
    // d/dW ||WW^T - λ²I||² = 4 (WW^T - λ²I) W
    dW = matmul(G, W);
  } else {
    Tensor G = matmul_tn(W, W);  // (cols, cols)
    for (int64_t i = 0; i < cols; ++i) G[i * cols + i] -= l2;
    penalty = beta * sum_sq(G);
    // d/dW ||W^T W - λ²I||² = 4 W (W^T W - λ²I)
    dW = matmul(W, G);
  }
  scale_inplace(dW, 4.0f * beta);
  dW.reshape(p.grad.shape());
  add_inplace(p.grad, dW);
  return penalty;
}

float apply_lipschitz_regularization(const std::vector<nn::Param*>& params,
                                     const LipschitzConfig& cfg) {
  if (!cfg.enabled) return 0.0f;
  const float lambda = static_cast<float>(cfg.lambda());
  float total = 0.0f;
  for (nn::Param* p : params) {
    if (!p->trainable || p->value.rank() < 2) continue;
    total += orthogonal_penalty_grad(*p, cfg.beta, lambda);
  }
  return total;
}

float spectral_norm(const Tensor& w, int iters, uint64_t seed) {
  if (w.rank() < 2) return max_abs(w);
  Tensor W = as_matrix(w);
  const int64_t cols = W.dim(1);
  Rng rng(seed);
  Tensor v({cols});
  rng.fill_normal(v, 0.0f, 1.0f);
  float nv = l2_norm(v);
  if (nv == 0.0f) return 0.0f;
  scale_inplace(v, 1.0f / nv);
  float sigma = 0.0f;
  for (int it = 0; it < iters; ++it) {
    Tensor u = matvec(W, v);          // (rows)
    const float nu = l2_norm(u);
    if (nu < 1e-20f) return 0.0f;
    scale_inplace(u, 1.0f / nu);
    v = matvec_t(W, u);               // (cols)
    sigma = l2_norm(v);
    if (sigma < 1e-20f) return 0.0f;
    scale_inplace(v, 1.0f / sigma);
  }
  return sigma;
}

}  // namespace cn::core
