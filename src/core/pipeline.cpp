#include "core/pipeline.h"

#include <algorithm>
#include <cmath>

namespace cn::core {

namespace {
void say(const PipelineConfig& cfg, const std::string& msg) {
  if (cfg.log) cfg.log("[" + cfg.name + "] " + msg);
}
}  // namespace

PipelineResult run_correctnet(const std::function<nn::Sequential(Rng&)>& make_model,
                              const data::Dataset& train_set,
                              const data::Dataset& test_set, PipelineConfig cfg) {
  PipelineResult result;
  cfg.variation.sigma = cfg.sigma;
  Rng rng(cfg.seed);

  // 1. Baseline network.
  say(cfg, "training baseline network");
  result.base_model = make_model(rng);
  TrainConfig base_cfg = cfg.base_train;
  base_cfg.lipschitz.enabled = false;
  const TrainResult base_tr = train(result.base_model, train_set, test_set, base_cfg);
  result.clean_acc_base = base_tr.test_acc;

  say(cfg, "evaluating baseline under variations");
  result.base_var = mc_accuracy(result.base_model, test_set, cfg.variation, cfg.mc);

  // 2. Error suppression: Lipschitz-regularized training (Eq. 11).
  say(cfg, "training with Lipschitz regularization");
  result.lipschitz_model = make_model(rng);
  TrainConfig lip_cfg = cfg.lipschitz_train;
  lip_cfg.lipschitz.enabled = true;
  lip_cfg.lipschitz.sigma = cfg.sigma;
  const TrainResult lip_tr =
      train(result.lipschitz_model, train_set, test_set, lip_cfg);
  result.clean_acc_lipschitz = lip_tr.test_acc;
  result.lipschitz_var =
      mc_accuracy(result.lipschitz_model, test_set, cfg.variation, cfg.mc);

  // 3. Sensitivity sweep (Fig. 9) -> candidate prefix.
  say(cfg, "running sensitivity sweep");
  McOptions sweep_mc = cfg.mc;
  sweep_mc.samples = std::max(5, cfg.mc.samples / 2);
  result.sensitivity =
      sensitivity_sweep(result.lipschitz_model, test_set, cfg.variation, sweep_mc);
  result.candidate_sites = compensation_candidate_count(
      result.sensitivity, result.clean_acc_lipschitz, 0.95);

  // Candidate conv layers: the convs among the first candidate_sites analog
  // sites (sites and conv order coincide up to FC layers at the tail).
  const std::vector<int64_t> convs = conv_layer_indices(result.lipschitz_model);
  std::vector<int64_t> candidates;
  for (int64_t i = 0;
       i < std::min<int64_t>({static_cast<int64_t>(convs.size()),
                              std::max<int64_t>(result.candidate_sites, 1),
                              cfg.max_candidates});
       ++i)
    candidates.push_back(convs[static_cast<size_t>(i)]);

  // 4-5. Plan selection + compensation training.
  if (cfg.plan_mode == PlanMode::kRl) {
    say(cfg, "RL search over compensation plans");
    SearchConfig scfg = cfg.search;
    scfg.candidate_layers = candidates;
    scfg.variation = cfg.variation;
    if (scfg.comp_train.epochs == 0) scfg.comp_train = cfg.comp_train;
    const SearchOutcome so =
        rl_search(result.lipschitz_model, train_set, test_set, scfg);
    result.plan = so.best_plan;
  } else {
    for (int64_t idx : candidates) {
      const auto* conv = dynamic_cast<const nn::Conv2D*>(
          &result.lipschitz_model.layer(idx));
      const int64_t m = std::max<int64_t>(
          1, std::llround(cfg.fixed_ratio * conv->out_channels()));
      result.plan.entries.emplace_back(idx, m);
    }
  }

  say(cfg, "training compensation blocks");
  Rng comp_rng(cfg.seed ^ 0x5151ull);
  result.corrected_model =
      with_compensation(result.lipschitz_model, result.plan, comp_rng);
  result.overhead = compensation_overhead(result.corrected_model);
  for (const auto& [idx, m] : result.plan.entries)
    if (m > 0) ++result.comp_layers;
  TrainConfig comp_cfg = cfg.comp_train;
  comp_cfg.variation = cfg.variation;
  train_compensation(result.corrected_model, train_set, test_set, comp_cfg);

  // 6. Final Monte-Carlo evaluation.
  say(cfg, "evaluating CorrectNet under variations");
  result.corrected_var =
      mc_accuracy(result.corrected_model, test_set, cfg.variation, cfg.mc);
  return result;
}

}  // namespace cn::core
