// Error compensation (paper §III-B, Fig. 5).
//
// A protected conv layer gets two small digital 1×1 convolutions:
//  - generator: m filters of 1×1×(l+n) reading concat(avgpool(input), output)
//    of the base layer (average pooling matches the spatial dims);
//  - compensator: n filters of 1×1×(n+m) reading concat(output, generator
//    output), emitting the corrected n feature maps.
//
// Both run on digital circuits and are therefore variation-free; only their
// weights train (base weights frozen), with fresh variations sampled on the
// base weights every batch. The compensator is initialized to the identity
// on the base output channels so an untrained block is a no-op.
#pragma once

#include <memory>
#include <vector>

#include "analog/variation.h"
#include "core/trainer.h"
#include "data/dataset.h"
#include "nn/conv2d.h"
#include "nn/sequential.h"

namespace cn::core {

/// Adaptive average pooling to an arbitrary output size (each output cell
/// averages its fractional input region). Free function used by the
/// compensation block; exposed for tests.
Tensor adaptive_avgpool(const Tensor& x, int64_t out_h, int64_t out_w);
/// Backward of adaptive_avgpool given input/output geometry.
Tensor adaptive_avgpool_backward(const Tensor& grad_out, int64_t in_h, int64_t in_w);

/// Concatenates two NCHW tensors along channels.
Tensor concat_channels(const Tensor& a, const Tensor& b);
/// Splits grad of a channel concat back into the two parts (a: first ca ch).
void split_channels(const Tensor& g, int64_t ca, Tensor& ga, Tensor& gb);

/// A convolution wrapped with CorrectNet error compensation.
class CompensatedConv2D final : public nn::Layer {
 public:
  /// Takes ownership of the (already trained) base conv; m_filters is the
  /// generator filter count. Generator/compensator weights are initialized
  /// here (compensator ≈ identity + noise).
  CompensatedConv2D(std::unique_ptr<nn::Conv2D> base, int64_t m_filters, Rng& rng);

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<nn::Param*> params() override;
  void collect_analog(std::vector<nn::PerturbableWeight*>& out) override;
  void visit_analog_bases(
      const std::function<void(const nn::Layer&, std::unique_ptr<nn::Layer>&)>& fn)
      override;
  std::unique_ptr<nn::Layer> clone() const override;
  std::string kind() const override { return "compensated_conv2d"; }
  bool is_analog() const override { return true; }

  const nn::Conv2D& base() const { return *base_; }
  nn::Conv2D& base() { return *base_; }
  int64_t generator_filters() const { return m_; }
  /// Weight count of generator + compensator (the overhead numerator).
  int64_t compensation_weight_count() const;

 private:
  CompensatedConv2D(const CompensatedConv2D&) = default;

  std::unique_ptr<nn::Conv2D> base_;
  // Substrate override (visit_analog_bases): when set, executes instead of
  // base_ at inference — how program_to_crossbars puts the compensated
  // conv's analog half on the crossbar while gen_/comp_ stay digital.
  // Training through an overridden base is rejected (backward throws).
  std::unique_ptr<nn::Layer> base_override_;
  std::unique_ptr<nn::Conv2D> gen_;   // digital: not collected as analog
  std::unique_ptr<nn::Conv2D> comp_;  // digital
  int64_t m_;
  // caches for backward
  Tensor relu_mask_;   // generator ReLU mask
  int64_t in_h_ = 0, in_w_ = 0;
};

/// A compensation plan: generator filter count per model layer index
/// (0 = no compensation at that layer).
struct CompensationPlan {
  std::vector<std::pair<int64_t, int64_t>> entries;  // (layer index, m filters)

  int64_t num_layers() const { return static_cast<int64_t>(entries.size()); }
  bool empty() const;
};

/// Wraps the conv at model layer `layer_idx` with compensation (in place).
/// Returns the new composite layer.
CompensatedConv2D& attach_compensation(nn::Sequential& model, int64_t layer_idx,
                                       int64_t m_filters, Rng& rng);

/// Applies a whole plan to a model clone and returns it.
nn::Sequential with_compensation(const nn::Sequential& model,
                                 const CompensationPlan& plan, Rng& rng);

/// Indices of plain Conv2D layers in the model, execution order.
std::vector<int64_t> conv_layer_indices(const nn::Sequential& model);

/// Total weights in compensation blocks / weights in the original network.
double compensation_overhead(nn::Sequential& model);

/// Freezes all non-compensation weights and trains the generator/compensator
/// parameters with variation-in-the-loop (paper §III-B training procedure).
TrainResult train_compensation(nn::Sequential& model, const data::Dataset& train_set,
                               const data::Dataset& test_set, const TrainConfig& cfg);

}  // namespace cn::core
