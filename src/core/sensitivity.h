// Layer-sensitivity analysis (paper §III-B, Fig. 9).
//
// Variations are injected from analog site i to the last site while sites
// before i stay nominal. Accuracy as a function of i reveals which early
// layers are too sensitive for Lipschitz regularization alone; those become
// the candidate set for error compensation.
#pragma once

#include <vector>

#include "core/montecarlo.h"

namespace cn::core {

struct SensitivityPoint {
  int64_t first_site = 0;  // variations injected from this site onward
  double mean = 0.0;
  double stddev = 0.0;
};

/// Sweeps first_site = 0..num_sites-1 and measures MC accuracy for each.
std::vector<SensitivityPoint> sensitivity_sweep(const nn::Sequential& model,
                                                const data::Dataset& test,
                                                const analog::VariationModel& vm,
                                                const McOptions& opts);

/// Paper's candidate rule: the first i layers are compensation candidates
/// when variations from site i onward already reach >= ratio*clean_acc
/// (i.e. everything earlier is still too sensitive). Returns the smallest i
/// with sweep[i].mean >= ratio*clean_acc; if none qualifies, returns the
/// number of sites.
int64_t compensation_candidate_count(const std::vector<SensitivityPoint>& sweep,
                                     double clean_acc, double ratio = 0.95);

}  // namespace cn::core
