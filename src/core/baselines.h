// Fig. 8 comparators, re-implemented from their mechanisms (DESIGN.md §2):
//
//  - Weight protection [8] (Charan et al., DAC'20): the most important
//    (largest-magnitude) weights are replicated into SRAM and therefore see
//    no variation. Overhead = protected fraction. The "online adaptation"
//    variant additionally fine-tunes the protected weights per chip.
//  - Random sparse adaptation [9] (Mohanty et al., IEDM'17): a random subset
//    of weights lives in reliable on-chip memory; the online variant
//    retrains that subset per chip instance.
//  - Variation-aware / statistical training [11] (Long et al., DATE'19):
//    the whole network is trained with variations injected in the loop; no
//    weight overhead.
#pragma once

#include <vector>

#include "core/montecarlo.h"
#include "core/trainer.h"

namespace cn::core {

/// Per-analog-site protection masks: 1 = weight held in SRAM (exact).
std::vector<Tensor> protection_masks(nn::Sequential& model, double frac, bool topk,
                                     Rng& rng);

/// MC accuracy where protected weights (mask==1) see no variation.
McResult mc_accuracy_protected(const nn::Sequential& model, const data::Dataset& test,
                               const analog::VariationModel& vm,
                               const std::vector<Tensor>& masks, const McOptions& opts);

struct OnlineRetrainOptions {
  int steps = 30;          // SGD steps per chip instance
  float lr = 5e-3f;
  int64_t batch_size = 32;
};

/// MC accuracy where, for each chip instance, the protected weights are
/// fine-tuned on training data with the chip's variations frozen in
/// (emulates per-chip online adaptation; expensive, keep opts.samples small).
McResult mc_accuracy_protected_online(const nn::Sequential& model,
                                      const data::Dataset& train_set,
                                      const data::Dataset& test,
                                      const analog::VariationModel& vm,
                                      const std::vector<Tensor>& masks,
                                      const McOptions& opts,
                                      const OnlineRetrainOptions& online);

/// Variation-aware training baseline: returns a model trained with
/// variations sampled fresh every batch (all weights trainable).
nn::Sequential train_variation_aware(const nn::Sequential& init_model,
                                     const data::Dataset& train_set,
                                     const data::Dataset& test_set,
                                     const TrainConfig& cfg);

}  // namespace cn::core
