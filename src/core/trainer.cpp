#include "core/trainer.h"

#include <memory>

#include "data/batcher.h"
#include "nn/loss.h"
#include "nn/metrics.h"
#include "nn/optimizer.h"
#include "tensor/ops.h"

namespace cn::core {

TrainResult train(nn::Sequential& model, const data::Dataset& train_set,
                  const data::Dataset& test_set, const TrainConfig& cfg) {
  using namespace cn::nn;
  Rng rng(cfg.seed);
  Rng var_rng = rng.fork();
  data::Batcher batcher(train_set, cfg.batch_size);
  SoftmaxCrossEntropy loss_fn;

  std::unique_ptr<Optimizer> opt;
  if (cfg.optimizer == OptimizerKind::kAdam)
    opt = std::make_unique<Adam>(cfg.lr, 0.9f, 0.999f, 1e-8f, cfg.weight_decay);
  else
    opt = std::make_unique<SGD>(cfg.lr, 0.9f, cfg.weight_decay);

  auto params = model.params();
  auto sites = model.analog_sites();
  TrainResult result;
  float lr = cfg.lr;

  for (int epoch = 0; epoch < cfg.epochs; ++epoch) {
    batcher.reshuffle(rng);
    double epoch_loss = 0.0, epoch_pen = 0.0;
    int64_t seen = 0, correct = 0;
    for (int64_t b = 0; b < batcher.num_batches(); ++b) {
      data::Batch batch = batcher.get(b);
      if (cfg.variation_in_loop) {
        for (PerturbableWeight* s : sites) cfg.variation.perturb(*s, var_rng);
      }
      Optimizer::zero_grad(params);
      Tensor logits = model.forward(batch.images, /*train=*/true);
      Tensor grad;
      const float loss = loss_fn.forward(logits, batch.labels, &grad);
      model.backward(grad);
      // Clip the task gradient first, then add the (smooth, bounded)
      // penalty gradient: clipping the sum lets the penalty starve the task
      // gradient on deep networks.
      if (cfg.clip_norm > 0.0f) clip_grad_norm(params, cfg.clip_norm);
      float pen = 0.0f;
      if (epoch >= cfg.lipschitz_warmup_epochs)
        pen = apply_lipschitz_regularization(params, cfg.lipschitz);
      opt->step(params);

      epoch_loss += static_cast<double>(loss) * batch.size();
      epoch_pen += pen;
      for (int64_t i = 0; i < batch.size(); ++i)
        if (argmax_row(logits, i) == batch.labels[static_cast<size_t>(i)]) ++correct;
      seen += batch.size();
    }
    if (cfg.variation_in_loop) model.clear_all_variations();
    lr *= cfg.lr_decay;
    if (auto* adam = dynamic_cast<Adam*>(opt.get())) adam->set_lr(lr);
    if (auto* sgd = dynamic_cast<SGD*>(opt.get())) sgd->set_lr(lr);

    result.final_loss = static_cast<float>(epoch_loss / static_cast<double>(seen));
    result.final_train_acc = static_cast<float>(correct) / static_cast<float>(seen);
    result.final_penalty =
        static_cast<float>(epoch_pen / static_cast<double>(batcher.num_batches()));
    if (cfg.on_epoch) cfg.on_epoch(epoch, result.final_loss, result.final_train_acc);
  }
  result.test_acc = evaluate(model, test_set);
  return result;
}

float evaluate(nn::Sequential& model, const data::Dataset& ds, int64_t batch_size) {
  if (ds.size() == 0) return 0.0f;
  data::Batcher batcher(ds, batch_size);
  int64_t correct = 0;
  for (int64_t b = 0; b < batcher.num_batches(); ++b) {
    data::Batch batch = batcher.get(b);
    Tensor logits = model.forward(batch.images, /*train=*/false);
    for (int64_t i = 0; i < batch.size(); ++i)
      if (argmax_row(logits, i) == batch.labels[static_cast<size_t>(i)]) ++correct;
  }
  return static_cast<float>(correct) / static_cast<float>(ds.size());
}

}  // namespace cn::core
