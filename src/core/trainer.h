// Training loop shared by all experiments.
//
// Supports the three training regimes the paper uses:
//  - plain cross-entropy training (baseline networks);
//  - cross-entropy + Lipschitz orthogonality regularization (error
//    suppression, Eq. 11);
//  - variation-in-the-loop training of compensation blocks: base weights
//    frozen, fresh variation factors sampled on every batch (paper §III-B),
//    only generator/compensator weights updated.
#pragma once

#include <functional>
#include <iosfwd>

#include "analog/variation.h"
#include "core/lipschitz.h"
#include "data/dataset.h"
#include "nn/sequential.h"

namespace cn::core {

enum class OptimizerKind { kAdam, kSgd };

struct TrainConfig {
  int epochs = 10;
  int64_t batch_size = 32;
  float lr = 1e-3f;
  float lr_decay = 1.0f;   // multiplicative per-epoch decay
  OptimizerKind optimizer = OptimizerKind::kAdam;
  float weight_decay = 0.0f;
  float clip_norm = 5.0f;  // 0 disables
  LipschitzConfig lipschitz;
  /// Epochs trained without the Lipschitz penalty before it switches on.
  /// Deep networks need the task loss to take hold first; regularizing from
  /// step 0 can keep a 16-layer net at chance accuracy.
  int lipschitz_warmup_epochs = 0;
  /// If true, every batch samples fresh variation factors on all analog
  /// sites before forward/backward (and clears them afterwards).
  bool variation_in_loop = false;
  analog::VariationModel variation;
  uint64_t seed = 1234;
  /// Progress callback (epoch, train_loss, train_acc); optional.
  std::function<void(int, float, float)> on_epoch;
};

struct TrainResult {
  float final_loss = 0.0f;
  float final_train_acc = 0.0f;
  float test_acc = 0.0f;
  float final_penalty = 0.0f;  // Lipschitz penalty at last epoch
};

/// Trains `model` in place; returns summary stats (test_acc on clean weights).
TrainResult train(nn::Sequential& model, const data::Dataset& train_set,
                  const data::Dataset& test_set, const TrainConfig& cfg);

/// Clean (no-variation) accuracy of the model on a dataset.
float evaluate(nn::Sequential& model, const data::Dataset& ds, int64_t batch_size = 64);

}  // namespace cn::core
