// End-to-end CorrectNet pipeline (paper §III, evaluated in §IV):
//   1. train the baseline network (reference accuracy, Fig. 2 data);
//   2. train the Lipschitz-regularized network (error suppression);
//   3. sensitivity sweep to find compensation candidates (Fig. 9);
//   4. choose compensation locations/filters (RL search or a fixed plan);
//   5. train compensation blocks with variation-in-the-loop;
//   6. Monte-Carlo evaluation of all three networks (Table I, Fig. 7).
#pragma once

#include <functional>
#include <optional>
#include <string>

#include "core/compensation.h"
#include "core/montecarlo.h"
#include "core/search.h"
#include "core/sensitivity.h"
#include "core/trainer.h"

namespace cn::core {

/// How step 4 picks the plan.
enum class PlanMode {
  kFixedRatio,  // compensate every candidate conv with `fixed_ratio`
  kRl,          // run the REINFORCE search (expensive)
};

struct PipelineConfig {
  std::string name;  // e.g. "VGG16-Objects100"
  float sigma = 0.5f;
  analog::VariationModel variation{analog::VariationKind::kLognormal, 0.5f};

  TrainConfig base_train;
  TrainConfig lipschitz_train;  // .lipschitz is force-enabled by the pipeline
  TrainConfig comp_train;
  McOptions mc;

  PlanMode plan_mode = PlanMode::kFixedRatio;
  float fixed_ratio = 0.5f;
  /// Cap on how many candidate conv layers may receive compensation.
  int64_t max_candidates = 6;
  SearchConfig search;  // used when plan_mode == kRl

  uint64_t seed = 2023;
  /// Progress sink (stage description); optional.
  std::function<void(const std::string&)> log;
};

struct PipelineResult {
  // Step 1-2 artifacts.
  nn::Sequential base_model{"base"};
  nn::Sequential lipschitz_model{"lipschitz"};
  nn::Sequential corrected_model{"corrected"};
  float clean_acc_base = 0.0f;       // σ=0 accuracy, original network
  float clean_acc_lipschitz = 0.0f;  // σ=0 accuracy after regularization
  McResult base_var;                 // original network under variations
  McResult lipschitz_var;            // suppression only
  McResult corrected_var;            // full CorrectNet
  std::vector<SensitivityPoint> sensitivity;
  int64_t candidate_sites = 0;
  CompensationPlan plan;
  double overhead = 0.0;
  int64_t comp_layers = 0;  // layers that actually received compensation
};

/// Runs the full pipeline. `make_model` must build a freshly initialized
/// network for the dataset (it is called twice: baseline + Lipschitz run).
PipelineResult run_correctnet(const std::function<nn::Sequential(Rng&)>& make_model,
                              const data::Dataset& train_set,
                              const data::Dataset& test_set, PipelineConfig cfg);

}  // namespace cn::core
