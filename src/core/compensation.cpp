#include "core/compensation.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "nn/init.h"
#include "tensor/ops.h"

namespace cn::core {

Tensor adaptive_avgpool(const Tensor& x, int64_t out_h, int64_t out_w) {
  if (x.rank() != 4) throw std::invalid_argument("adaptive_avgpool: expected NCHW");
  const int64_t N = x.dim(0), C = x.dim(1), H = x.dim(2), W = x.dim(3);
  Tensor y({N, C, out_h, out_w});
  for (int64_t n = 0; n < N; ++n) {
    for (int64_t c = 0; c < C; ++c) {
      const float* chan = x.data() + (n * C + c) * H * W;
      float* out = y.data() + (n * C + c) * out_h * out_w;
      for (int64_t oh = 0; oh < out_h; ++oh) {
        const int64_t h0 = oh * H / out_h;
        const int64_t h1 = std::max(h0 + 1, (oh + 1) * H / out_h + (((oh + 1) * H) % out_h ? 1 : 0));
        for (int64_t ow = 0; ow < out_w; ++ow) {
          const int64_t w0 = ow * W / out_w;
          const int64_t w1 = std::max(w0 + 1, (ow + 1) * W / out_w + (((ow + 1) * W) % out_w ? 1 : 0));
          float acc = 0.0f;
          for (int64_t h = h0; h < h1; ++h)
            for (int64_t w = w0; w < w1; ++w) acc += chan[h * W + w];
          out[oh * out_w + ow] = acc / static_cast<float>((h1 - h0) * (w1 - w0));
        }
      }
    }
  }
  return y;
}

Tensor adaptive_avgpool_backward(const Tensor& grad_out, int64_t in_h, int64_t in_w) {
  const int64_t N = grad_out.dim(0), C = grad_out.dim(1);
  const int64_t out_h = grad_out.dim(2), out_w = grad_out.dim(3);
  Tensor gx({N, C, in_h, in_w});
  for (int64_t n = 0; n < N; ++n) {
    for (int64_t c = 0; c < C; ++c) {
      float* chan = gx.data() + (n * C + c) * in_h * in_w;
      const float* g = grad_out.data() + (n * C + c) * out_h * out_w;
      for (int64_t oh = 0; oh < out_h; ++oh) {
        const int64_t h0 = oh * in_h / out_h;
        const int64_t h1 =
            std::max(h0 + 1, (oh + 1) * in_h / out_h + (((oh + 1) * in_h) % out_h ? 1 : 0));
        for (int64_t ow = 0; ow < out_w; ++ow) {
          const int64_t w0 = ow * in_w / out_w;
          const int64_t w1 =
              std::max(w0 + 1, (ow + 1) * in_w / out_w + (((ow + 1) * in_w) % out_w ? 1 : 0));
          const float gv = g[oh * out_w + ow] / static_cast<float>((h1 - h0) * (w1 - w0));
          for (int64_t h = h0; h < h1; ++h)
            for (int64_t w = w0; w < w1; ++w) chan[h * in_w + w] += gv;
        }
      }
    }
  }
  return gx;
}

Tensor concat_channels(const Tensor& a, const Tensor& b) {
  if (a.rank() != 4 || b.rank() != 4 || a.dim(0) != b.dim(0) || a.dim(2) != b.dim(2) ||
      a.dim(3) != b.dim(3))
    throw std::invalid_argument("concat_channels: incompatible shapes " +
                                to_string(a.shape()) + " / " + to_string(b.shape()));
  const int64_t N = a.dim(0), Ca = a.dim(1), Cb = b.dim(1), H = a.dim(2), W = a.dim(3);
  Tensor out({N, Ca + Cb, H, W});
  const int64_t hw = H * W;
  for (int64_t n = 0; n < N; ++n) {
    std::copy(a.data() + n * Ca * hw, a.data() + (n + 1) * Ca * hw,
              out.data() + n * (Ca + Cb) * hw);
    std::copy(b.data() + n * Cb * hw, b.data() + (n + 1) * Cb * hw,
              out.data() + (n * (Ca + Cb) + Ca) * hw);
  }
  return out;
}

void split_channels(const Tensor& g, int64_t ca, Tensor& ga, Tensor& gb) {
  const int64_t N = g.dim(0), C = g.dim(1), H = g.dim(2), W = g.dim(3);
  const int64_t cb = C - ca;
  ga = Tensor({N, ca, H, W});
  gb = Tensor({N, cb, H, W});
  const int64_t hw = H * W;
  for (int64_t n = 0; n < N; ++n) {
    std::copy(g.data() + n * C * hw, g.data() + n * C * hw + ca * hw,
              ga.data() + n * ca * hw);
    std::copy(g.data() + n * C * hw + ca * hw, g.data() + (n + 1) * C * hw,
              gb.data() + n * cb * hw);
  }
}

CompensatedConv2D::CompensatedConv2D(std::unique_ptr<nn::Conv2D> base,
                                     int64_t m_filters, Rng& rng)
    : base_(std::move(base)), m_(m_filters) {
  if (m_ < 1) throw std::invalid_argument("CompensatedConv2D: m_filters must be >= 1");
  label_ = base_->label() + "+comp";
  const int64_t l = base_->in_channels();
  const int64_t n = base_->out_channels();
  const int64_t oh = base_->out_h(), ow = base_->out_w();
  gen_ = std::make_unique<nn::Conv2D>(l + n, m_, 1, 1, 0, oh, ow, label_ + ".gen");
  comp_ = std::make_unique<nn::Conv2D>(n + m_, n, 1, 1, 0, oh, ow, label_ + ".comp");
  nn::he_normal(gen_->weight().value, l + n, rng);
  gen_->bias().value.zero();
  // Identity init: untrained compensation passes the base output through.
  comp_->weight().value.zero();
  for (int64_t o = 0; o < n; ++o) comp_->weight().value[o * (n + m_) + o] = 1.0f;
  // Small noise on the generator-channel taps so gradients break symmetry
  // (exactly zero taps would leave the generator without gradient signal).
  for (int64_t o = 0; o < n; ++o)
    for (int64_t k = n; k < n + m_; ++k)
      comp_->weight().value[o * (n + m_) + k] =
          static_cast<float>(rng.normal(0.0, 0.003));
  comp_->bias().value.zero();
}

Tensor CompensatedConv2D::forward(const Tensor& x, bool train) {
  in_h_ = x.dim(2);
  in_w_ = x.dim(3);
  // Substrate-backed chips execute the override (geometry mirrors base_).
  nn::Layer& analog_base =
      base_override_ ? *base_override_ : static_cast<nn::Layer&>(*base_);
  Tensor y = analog_base.forward(x, train);
  Tensor xp = adaptive_avgpool(x, base_->out_h(), base_->out_w());
  Tensor gin = concat_channels(xp, y);
  Tensor g = gen_->forward(gin, train);
  // ReLU on the generated compensation data (documented design choice:
  // the paper draws plain conv blocks; the nonlinearity lets the generator
  // encode signed corrections through the compensator).
  if (train) {
    relu_mask_ = Tensor(g.shape());
    for (int64_t i = 0; i < g.size(); ++i) {
      if (g[i] > 0.0f) relu_mask_[i] = 1.0f;
      else g[i] = 0.0f;
    }
  } else {
    for (int64_t i = 0; i < g.size(); ++i)
      if (g[i] < 0.0f) g[i] = 0.0f;
  }
  Tensor cin = concat_channels(y, g);
  return comp_->forward(cin, train);
}

Tensor CompensatedConv2D::backward(const Tensor& grad_out) {
  if (base_override_)
    throw std::logic_error(label_ + ": substrate-backed base is inference-only");
  const int64_t l = base_->in_channels();
  const int64_t n = base_->out_channels();
  Tensor dcin = comp_->backward(grad_out);
  Tensor dy1, dg;
  split_channels(dcin, n, dy1, dg);
  for (int64_t i = 0; i < dg.size(); ++i) dg[i] *= relu_mask_[i];
  Tensor dgin = gen_->backward(dg);
  Tensor dxp, dy2;
  split_channels(dgin, l, dxp, dy2);
  add_inplace(dy1, dy2);
  Tensor dx = base_->backward(dy1);
  Tensor dx_pool = adaptive_avgpool_backward(dxp, in_h_, in_w_);
  add_inplace(dx, dx_pool);
  return dx;
}

std::vector<nn::Param*> CompensatedConv2D::params() {
  std::vector<nn::Param*> out = base_->params();
  for (nn::Param* p : gen_->params()) out.push_back(p);
  for (nn::Param* p : comp_->params()) out.push_back(p);
  return out;
}

void CompensatedConv2D::collect_analog(std::vector<nn::PerturbableWeight*>& out) {
  // Only the base conv sits on the analog crossbar; generator/compensator
  // execute digitally (paper §III-B) and are immune to variations. With a
  // substrate override installed the dormant base_ exposes no sites (factor
  // perturbation would not affect execution); the override contributes any
  // sites of its own (none for crossbar layers — variation is programmed in).
  if (base_override_) {
    base_override_->collect_analog(out);
    return;
  }
  base_->collect_analog(out);
}

void CompensatedConv2D::visit_analog_bases(
    const std::function<void(const nn::Layer&, std::unique_ptr<nn::Layer>&)>& fn) {
  fn(*base_, base_override_);
}

std::unique_ptr<nn::Layer> CompensatedConv2D::clone() const {
  // Clone via the private copy path: deep-copy each sub-layer.
  auto base_clone = std::unique_ptr<nn::Conv2D>(
      static_cast<nn::Conv2D*>(base_->clone().release()));
  Rng dummy(1);
  auto c = std::make_unique<CompensatedConv2D>(std::move(base_clone), m_, dummy);
  c->gen_ = std::unique_ptr<nn::Conv2D>(static_cast<nn::Conv2D*>(gen_->clone().release()));
  c->comp_ =
      std::unique_ptr<nn::Conv2D>(static_cast<nn::Conv2D*>(comp_->clone().release()));
  if (base_override_) c->base_override_ = base_override_->clone();
  c->label_ = label_;
  return c;
}

int64_t CompensatedConv2D::compensation_weight_count() const {
  int64_t n = 0;
  for (const nn::Param* p : const_cast<nn::Conv2D*>(gen_.get())->params()) n += p->size();
  for (const nn::Param* p : const_cast<nn::Conv2D*>(comp_.get())->params()) n += p->size();
  return n;
}

bool CompensationPlan::empty() const {
  for (const auto& [idx, m] : entries)
    if (m > 0) return false;
  return true;
}

CompensatedConv2D& attach_compensation(nn::Sequential& model, int64_t layer_idx,
                                       int64_t m_filters, Rng& rng) {
  auto* conv = dynamic_cast<nn::Conv2D*>(&model.layer(layer_idx));
  if (!conv)
    throw std::invalid_argument("attach_compensation: layer " +
                                std::to_string(layer_idx) + " is not a Conv2D");
  auto placeholder = std::make_unique<nn::Conv2D>(1, 1, 1, 1, 0, 1, 1, "tmp");
  nn::LayerPtr old = model.replace_layer(layer_idx, std::move(placeholder));
  auto base = std::unique_ptr<nn::Conv2D>(static_cast<nn::Conv2D*>(old.release()));
  auto comp = std::make_unique<CompensatedConv2D>(std::move(base), m_filters, rng);
  CompensatedConv2D& ref = *comp;
  model.replace_layer(layer_idx, std::move(comp));
  return ref;
}

nn::Sequential with_compensation(const nn::Sequential& model,
                                 const CompensationPlan& plan, Rng& rng) {
  nn::Sequential out = model.clone_model();
  for (const auto& [idx, m] : plan.entries) {
    if (m > 0) attach_compensation(out, idx, m, rng);
  }
  return out;
}

std::vector<int64_t> conv_layer_indices(const nn::Sequential& model) {
  std::vector<int64_t> idx;
  for (int64_t i = 0; i < model.num_layers(); ++i) {
    if (model.layer(i).kind() == "conv2d") idx.push_back(i);
  }
  return idx;
}

double compensation_overhead(nn::Sequential& model) {
  int64_t comp_weights = 0;
  for (int64_t i = 0; i < model.num_layers(); ++i) {
    if (auto* c = dynamic_cast<CompensatedConv2D*>(&model.layer(i)))
      comp_weights += c->compensation_weight_count();
  }
  const int64_t total = model.num_params();
  const int64_t original = total - comp_weights;
  return original > 0 ? static_cast<double>(comp_weights) / static_cast<double>(original)
                      : 0.0;
}

TrainResult train_compensation(nn::Sequential& model, const data::Dataset& train_set,
                               const data::Dataset& test_set, const TrainConfig& cfg) {
  // Freeze everything, then re-enable only generator/compensator weights.
  model.set_trainable(false);
  for (int64_t i = 0; i < model.num_layers(); ++i) {
    if (auto* c = dynamic_cast<CompensatedConv2D*>(&model.layer(i))) {
      auto all = c->params();
      auto base = c->base().params();
      for (nn::Param* p : all) {
        const bool is_base =
            std::find(base.begin(), base.end(), p) != base.end();
        p->trainable = !is_base;
      }
    }
  }
  TrainConfig comp_cfg = cfg;
  comp_cfg.variation_in_loop = true;
  comp_cfg.lipschitz.enabled = false;  // base weights frozen; Eq. 11 not needed
  return train(model, train_set, test_set, comp_cfg);
}

}  // namespace cn::core
