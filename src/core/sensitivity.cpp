#include "core/sensitivity.h"

#include <algorithm>

#include "runtime/chip_farm.h"
#include "runtime/mc_engine.h"

namespace cn::core {

std::vector<SensitivityPoint> sensitivity_sweep(const nn::Sequential& model,
                                                const data::Dataset& test,
                                                const analog::VariationModel& vm,
                                                const McOptions& opts) {
  // One farm serves every sweep point: reconfigure() re-keys the live chip
  // clones instead of re-deriving them from scratch per point.
  runtime::ChipFarmOptions fo;
  fo.instances = std::max(opts.samples, 1);
  fo.seed = opts.seed;
  runtime::ChipFarm farm(model, vm, fo);
  const int64_t sites = farm.num_analog_sites();
  if (opts.samples < 1) {
    // No MC budget (e.g. CORRECTNET_MC=0): zero-stat points, like the seed
    // loop produced.
    std::vector<SensitivityPoint> out;
    for (int64_t i = 0; i < sites; ++i) out.push_back(SensitivityPoint{i, 0.0, 0.0});
    return out;
  }
  runtime::McEngineOptions eo;
  eo.batch_size = opts.batch_size;
  runtime::McEngine engine(farm, eo);
  return engine.sensitivity_sweep(test, sites, opts.seed);
}

int64_t compensation_candidate_count(const std::vector<SensitivityPoint>& sweep,
                                     double clean_acc, double ratio) {
  const double target = ratio * clean_acc;
  for (const SensitivityPoint& p : sweep) {
    if (p.mean >= target) return p.first_site;
  }
  return static_cast<int64_t>(sweep.size());
}

}  // namespace cn::core
