#include "core/sensitivity.h"

namespace cn::core {

std::vector<SensitivityPoint> sensitivity_sweep(const nn::Sequential& model,
                                                const data::Dataset& test,
                                                const analog::VariationModel& vm,
                                                const McOptions& opts) {
  nn::Sequential probe = model.clone_model();
  const int64_t sites = static_cast<int64_t>(probe.analog_sites().size());
  std::vector<SensitivityPoint> out;
  out.reserve(static_cast<size_t>(sites));
  for (int64_t i = 0; i < sites; ++i) {
    McOptions o = opts;
    o.first_site = i;
    o.seed = opts.seed + static_cast<uint64_t>(i) * 1000003ull;
    const McResult r = mc_accuracy(probe, test, vm, o);
    out.push_back(SensitivityPoint{i, r.mean, r.stddev});
  }
  return out;
}

int64_t compensation_candidate_count(const std::vector<SensitivityPoint>& sweep,
                                     double clean_acc, double ratio) {
  const double target = ratio * clean_acc;
  for (const SensitivityPoint& p : sweep) {
    if (p.mean >= target) return p.first_site;
  }
  return static_cast<int64_t>(sweep.size());
}

}  // namespace cn::core
