#include "core/baselines.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "data/batcher.h"
#include "nn/loss.h"
#include "nn/metrics.h"
#include "nn/optimizer.h"
#include "tensor/ops.h"

namespace cn::core {

std::vector<Tensor> protection_masks(nn::Sequential& model, double frac, bool topk,
                                     Rng& rng) {
  std::vector<Tensor> masks;
  for (nn::PerturbableWeight* site : model.analog_sites()) {
    const Tensor& w = site->nominal_weight();
    Tensor mask(w.shape());
    const int64_t n = w.size();
    const int64_t kprot = static_cast<int64_t>(std::llround(frac * static_cast<double>(n)));
    if (kprot > 0) {
      std::vector<int64_t> idx(static_cast<size_t>(n));
      std::iota(idx.begin(), idx.end(), 0);
      if (topk) {
        std::partial_sort(idx.begin(), idx.begin() + std::min(kprot, n), idx.end(),
                          [&](int64_t a, int64_t b) {
                            return std::fabs(w[a]) > std::fabs(w[b]);
                          });
      } else {
        rng.shuffle(idx);
      }
      for (int64_t i = 0; i < std::min(kprot, n); ++i) mask[idx[static_cast<size_t>(i)]] = 1.0f;
    }
    masks.push_back(std::move(mask));
  }
  return masks;
}

namespace {
// Applies vm-sampled factors to every site, forcing factor 1 where protected.
void perturb_masked(nn::Sequential& model, const analog::VariationModel& vm, Rng& rng,
                    const std::vector<Tensor>& masks) {
  auto sites = model.analog_sites();
  for (size_t i = 0; i < sites.size(); ++i) {
    Tensor f = vm.sample_factors(sites[i]->nominal_weight(), rng);
    const Tensor& mask = masks[i];
    for (int64_t j = 0; j < f.size(); ++j)
      if (mask[j] != 0.0f) f[j] = 1.0f;
    sites[i]->set_weight_factors(f);
  }
}
}  // namespace

McResult mc_accuracy_protected(const nn::Sequential& model, const data::Dataset& test,
                               const analog::VariationModel& vm,
                               const std::vector<Tensor>& masks, const McOptions& opts) {
  nn::Sequential work = model.clone_model();
  Rng rng(opts.seed);
  nn::RunningStats stats;
  McResult result;
  for (int s = 0; s < opts.samples; ++s) {
    perturb_masked(work, vm, rng, masks);
    const float acc = evaluate(work, test, opts.batch_size);
    stats.add(acc);
    result.samples.push_back(acc);
  }
  work.clear_all_variations();
  result.mean = stats.mean();
  result.stddev = stats.stddev();
  result.min = stats.min();
  result.max = stats.max();
  return result;
}

McResult mc_accuracy_protected_online(const nn::Sequential& model,
                                      const data::Dataset& train_set,
                                      const data::Dataset& test,
                                      const analog::VariationModel& vm,
                                      const std::vector<Tensor>& masks,
                                      const McOptions& opts,
                                      const OnlineRetrainOptions& online) {
  Rng rng(opts.seed);
  nn::RunningStats stats;
  McResult result;
  nn::SoftmaxCrossEntropy loss_fn;
  for (int s = 0; s < opts.samples; ++s) {
    nn::Sequential work = model.clone_model();
    auto sites = work.analog_sites();
    // Freeze this chip's variations into the nominal weights of the clone so
    // fine-tuning sees them; then protected entries are retrained.
    std::vector<Tensor> factors;
    for (size_t i = 0; i < sites.size(); ++i) {
      Tensor f = vm.sample_factors(sites[i]->nominal_weight(), rng);
      for (int64_t j = 0; j < f.size(); ++j)
        if (masks[i][j] != 0.0f) f[j] = 1.0f;
      sites[i]->set_weight_factors(f);
      factors.push_back(std::move(f));
    }
    // Fine-tune: gradients masked so only protected (SRAM) entries move.
    auto params = work.params();
    data::Batcher batcher(train_set, online.batch_size);
    Rng brng(opts.seed + 31ull * static_cast<uint64_t>(s));
    batcher.reshuffle(brng);
    for (int step = 0; step < online.steps; ++step) {
      data::Batch batch = batcher.get(step % batcher.num_batches());
      nn::Optimizer::zero_grad(params);
      Tensor logits = work.forward(batch.images, /*train=*/true);
      Tensor grad;
      loss_fn.forward(logits, batch.labels, &grad);
      work.backward(grad);
      // Masked SGD: only protected (SRAM) entries of analog weights move.
      // Params are matched to sites by the identity of the value tensor.
      for (nn::Param* p : params) {
        for (size_t i = 0; i < sites.size(); ++i) {
          if (&p->value == &sites[i]->nominal_weight()) {
            const Tensor& mask = masks[i];
            for (int64_t j = 0; j < p->size(); ++j)
              if (mask[j] != 0.0f) p->value[j] -= online.lr * p->grad[j];
            // Re-apply the chip's variation on top of updated nominals.
            sites[i]->set_weight_factors(factors[i]);
            break;
          }
        }
      }
    }
    const float acc = evaluate(work, test, opts.batch_size);
    stats.add(acc);
    result.samples.push_back(acc);
  }
  result.mean = stats.mean();
  result.stddev = stats.stddev();
  result.min = stats.min();
  result.max = stats.max();
  return result;
}

nn::Sequential train_variation_aware(const nn::Sequential& init_model,
                                     const data::Dataset& train_set,
                                     const data::Dataset& test_set,
                                     const TrainConfig& cfg) {
  nn::Sequential model = init_model.clone_model();
  // Clean pretraining first: statistical training from scratch at large σ
  // does not converge (the loss sees a different network every batch);
  // the published methods fine-tune a converged network.
  TrainConfig pre = cfg;
  pre.variation_in_loop = false;
  train(model, train_set, test_set, pre);
  TrainConfig vcfg = cfg;
  vcfg.variation_in_loop = true;
  vcfg.lr = cfg.lr * 0.5f;
  train(model, train_set, test_set, vcfg);
  return model;
}

}  // namespace cn::core
