// Experiment scaling knobs, read once from the environment.
//
// The paper's experiments (250 variation samples, full datasets, GPU
// training) are scaled to CPU budgets by default; every knob can be raised
// to paper fidelity:
//   CORRECTNET_MC      Monte-Carlo variation samples per point (default 25)
//   CORRECTNET_EPOCHS  multiplier (x100) on training epochs  (default 100 = 1.0x)
//   CORRECTNET_TRAIN   training-set size cap                  (default 4000)
//   CORRECTNET_TEST    test-set size cap                      (default 800)
//   CORRECTNET_THREADS (informational; pool sizes from hardware_concurrency)
#pragma once

#include <cstdint>

namespace cn::core {

struct RuntimeConfig {
  int mc_samples = 25;
  double epoch_scale = 1.0;
  int64_t train_cap = 4000;
  int64_t test_cap = 800;

  /// Scales an epoch count by epoch_scale, min 1.
  int epochs(int base) const;

  /// Singleton, parsed from the environment on first use.
  static const RuntimeConfig& get();
};

}  // namespace cn::core
