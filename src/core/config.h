// Experiment scaling knobs, read once from the environment.
//
// The paper's experiments (250 variation samples, full datasets, GPU
// training) are scaled to CPU budgets by default; every knob can be raised
// to paper fidelity:
//   CORRECTNET_MC      Monte-Carlo variation samples per point (default 25)
//   CORRECTNET_EPOCHS  multiplier (x100) on training epochs  (default 100 = 1.0x)
//   CORRECTNET_TRAIN   training-set size cap                  (default 4000)
//   CORRECTNET_TEST    test-set size cap                      (default 800)
//   CORRECTNET_THREADS (informational; pool sizes from hardware_concurrency)
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace cn::core {

struct RuntimeConfig {
  int mc_samples = 25;
  double epoch_scale = 1.0;
  int64_t train_cap = 4000;
  int64_t test_cap = 800;

  /// Scales an epoch count by epoch_scale, min 1.
  int epochs(int base) const;

  /// Singleton, parsed from the environment on first use.
  static const RuntimeConfig& get();
};

/// Minimal `key = value` config-file reader: one pair per line, '#' starts a
/// comment, whitespace around keys and values is trimmed. The parser fails
/// loudly on anything that would silently reshape an experiment: a non-blank
/// line without '=', a key that appears twice, and a config with no pairs at
/// all (e.g. an empty file) each throw std::runtime_error. Programmatic
/// overrides (a CLI flag beating a file value) go through set(). Values
/// parse on access: the caller default covers absent or empty keys, while a
/// present value that does not fully parse throws. Drives the fault-campaign
/// CLI (faultsim keys like `stuck.rates`, `drift.times`, `thermal.temps`;
/// see faultsim::campaign_from_config). docs/CONFIG.md is the per-key
/// reference; its campaign table is test-enforced against the declared
/// validate_keys set (faultsim::campaign_config_keys).
class KeyValueConfig {
 public:
  KeyValueConfig() = default;
  /// Throws std::runtime_error when the file cannot be opened or parsed.
  static KeyValueConfig from_file(const std::string& path);
  static KeyValueConfig from_string(const std::string& text);

  bool has(const std::string& key) const { return find(key) != nullptr; }
  /// Sets or replaces a key: the override layer on top of a parsed file.
  void set(const std::string& key, const std::string& value);
  /// Throws std::runtime_error naming every key not in `known` — consumers
  /// declare their key set so an unknown (typo'd) key cannot be silently
  /// ignored.
  void validate_keys(const std::vector<std::string>& known) const;

  std::string str(const std::string& key, const std::string& def = "") const;
  int64_t integer(const std::string& key, int64_t def) const;
  double number(const std::string& key, double def) const;
  /// Comma-separated numeric list; `def` when the key is absent. Unlike the
  /// scalar getters, an unparsable cell throws (a dropped severity value
  /// would silently shrink a campaign grid).
  std::vector<double> numbers(const std::string& key,
                              std::vector<double> def = {}) const;

 private:
  const std::string* find(const std::string& key) const;
  std::vector<std::pair<std::string, std::string>> kv_;
};

}  // namespace cn::core
