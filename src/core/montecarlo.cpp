#include "core/montecarlo.h"

#include "core/trainer.h"
#include "nn/metrics.h"

namespace cn::core {

McResult mc_accuracy(const nn::Sequential& model, const data::Dataset& test,
                     const analog::VariationModel& vm, const McOptions& opts) {
  nn::Sequential work = model.clone_model();
  Rng rng(opts.seed);
  nn::RunningStats stats;
  McResult result;
  result.samples.reserve(static_cast<size_t>(opts.samples));
  // Samples run sequentially; each forward pass parallelizes over the batch,
  // which keeps the thread pool saturated without nested blocking.
  for (int s = 0; s < opts.samples; ++s) {
    analog::perturb_from(work, vm, rng, opts.first_site);
    const float acc = evaluate(work, test, opts.batch_size);
    stats.add(acc);
    result.samples.push_back(acc);
  }
  work.clear_all_variations();
  result.mean = stats.mean();
  result.stddev = stats.stddev();
  result.min = stats.min();
  result.max = stats.max();
  return result;
}

}  // namespace cn::core
