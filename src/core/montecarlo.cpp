#include "core/montecarlo.h"

#include "runtime/chip_farm.h"
#include "runtime/mc_engine.h"

namespace cn::core {

McResult mc_accuracy(const nn::Sequential& model, const data::Dataset& test,
                     const analog::VariationModel& vm, const McOptions& opts) {
  // samples < 1 (e.g. CORRECTNET_MC=0) skips MC entirely, as the seed
  // sequential loop did.
  if (opts.samples < 1) return McResult{};
  // One chip instance per sample, materialized by the farm with
  // deterministic per-sample seeds and evaluated sample-parallel. Physical
  // clones are bounded by the pool size (ChipFarmOptions.max_live default),
  // so memory stays at seed-code levels on small machines.
  runtime::ChipFarmOptions fo;
  fo.instances = opts.samples;
  fo.seed = opts.seed;
  fo.first_site = opts.first_site;
  runtime::ChipFarm farm(model, vm, fo);
  runtime::McEngineOptions eo;
  eo.batch_size = opts.batch_size;
  runtime::McEngine engine(farm, eo);
  return engine.accuracy(test);
}

}  // namespace cn::core
