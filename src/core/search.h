// RL search for compensation locations and filter counts (paper §III-B,
// Fig. 6 and Fig. 10).
//
// The environment trains + evaluates a candidate compensation plan; the
// reward (Eq. 12) is  acc_avg − acc_std − overhead  when the weight overhead
// is within the limit, and −overhead otherwise (in which case the expensive
// compensation training is skipped, exactly as the paper describes).
#pragma once

#include <map>
#include <vector>

#include "core/compensation.h"
#include "core/montecarlo.h"
#include "rl/reinforce.h"

namespace cn::core {

struct SearchConfig {
  /// Model layer indices eligible for compensation (the candidate prefix
  /// from the sensitivity sweep).
  std::vector<int64_t> candidate_layers;
  /// Ratio menu: generator filters = round(ratio * base out_channels);
  /// ratio <= 0 means no compensation at that layer (paper's S ≤ 0).
  std::vector<float> ratio_menu = {0.0f, 0.25f, 0.5f, 1.0f};
  float overhead_limit = 0.03f;
  int64_t policy_hidden = 32;
  rl::ReinforceConfig reinforce;
  /// Short compensation-training schedule used inside the reward.
  TrainConfig comp_train;
  McOptions mc;
  analog::VariationModel variation;
  uint64_t seed = 4242;
};

/// One explored plan (a dot in the paper's Fig. 10).
struct ExploredPlan {
  std::vector<int64_t> filters;  // per candidate layer
  double overhead = 0.0;
  double acc_mean = 0.0;
  double acc_std = 0.0;
  float reward = 0.0f;
  bool trained = false;  // false when skipped for exceeding the limit
};

struct SearchOutcome {
  CompensationPlan best_plan;
  ExploredPlan best;
  std::vector<ExploredPlan> trace;  // unique plans explored, in order
};

/// Runs the RL search on a Lipschitz-trained model. The model is cloned per
/// evaluation; the argument is left untouched.
SearchOutcome rl_search(const nn::Sequential& model, const data::Dataset& train_set,
                        const data::Dataset& test_set, const SearchConfig& cfg);

/// Builds the plan for an action sequence (used by rl_search and tests).
CompensationPlan plan_from_actions(const nn::Sequential& model,
                                   const SearchConfig& cfg,
                                   const std::vector<int>& actions);

/// Evaluates one plan end-to-end (attach, train compensation, MC eval).
ExploredPlan evaluate_plan(const nn::Sequential& model, const data::Dataset& train_set,
                           const data::Dataset& test_set, const SearchConfig& cfg,
                           const CompensationPlan& plan);

}  // namespace cn::core
