// Error suppression: modified Lipschitz-constant regularization (paper §III-A).
//
// For each layer weight W (out, in) the spectral norm ‖W‖₂ bounds how much
// the layer amplifies an input deviation (Eq. 9). Since the analog factors
// e^θ are random, the paper bounds them with μ + 3σ of the lognormal
// (Eq. 10), yielding a per-layer target λ = k / (e^{σ²/2} + 3√((e^{σ²}−1)e^{σ²})).
// Training adds β·Σ‖WᵀW − λ²I‖²_F to the loss (Eq. 11), driving all singular
// values toward λ, i.e. W toward a scaled orthogonal matrix.
//
// Implementation note: for W with fewer rows than columns we penalize the
// smaller Gram matrix ‖WWᵀ − λ²I‖²_F instead. Both penalties equal
// Σᵢ(σᵢ²−λ²)² up to a constant (the extra null-space term (n−r)λ⁴ has zero
// gradient), so gradients are identical and cost drops from O(in²·out) to
// O(out²·in).
#pragma once

#include <vector>

#include "nn/param.h"
#include "tensor/tensor.h"

namespace cn::core {

/// λ(k, σ) per Eq. (10): k over the 3-sigma bound of the lognormal factor.
double lipschitz_lambda(double k, double sigma);

/// Configuration of the regularizer.
struct LipschitzConfig {
  bool enabled = false;
  float k = 1.0f;       // target Lipschitz constant per layer
  float sigma = 0.5f;   // variation level the network must survive
  float beta = 1e-3f;   // regularization strength β in Eq. (11)
  /// λ floor: Eq. (10) at large σ drives λ extremely low, which can collapse
  /// clean accuracy on deep nets; the "modified" regularization clamps it.
  float lambda_min = 0.0f;

  double lambda() const;
};

/// Adds the orthogonality-penalty gradient for one weight to `p.grad` and
/// returns the penalty value β·‖G − λ²I‖²_F (G = smaller Gram matrix).
/// Rank-1 params (biases) are ignored and return 0.
float orthogonal_penalty_grad(nn::Param& p, float beta, float lambda);

/// Penalty value only (no gradient), for monitoring/tests.
float orthogonal_penalty(const Tensor& w, float lambda);

/// Applies the penalty to every rank>=2 trainable param; returns total penalty.
float apply_lipschitz_regularization(const std::vector<nn::Param*>& params,
                                     const LipschitzConfig& cfg);

/// Largest singular value of W (rows = out), via power iteration.
float spectral_norm(const Tensor& w, int iters = 60, uint64_t seed = 7);

}  // namespace cn::core
