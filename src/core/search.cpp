#include "core/search.h"

#include <cmath>

#include "nn/conv2d.h"

namespace cn::core {

CompensationPlan plan_from_actions(const nn::Sequential& model, const SearchConfig& cfg,
                                   const std::vector<int>& actions) {
  CompensationPlan plan;
  for (size_t i = 0; i < cfg.candidate_layers.size(); ++i) {
    const int64_t layer_idx = cfg.candidate_layers[i];
    const float ratio = cfg.ratio_menu[static_cast<size_t>(actions[i])];
    int64_t m = 0;
    if (ratio > 0.0f) {
      const auto* conv =
          dynamic_cast<const nn::Conv2D*>(&model.layer(layer_idx));
      if (conv) m = std::max<int64_t>(1, std::llround(ratio * conv->out_channels()));
    }
    plan.entries.emplace_back(layer_idx, m);
  }
  return plan;
}

ExploredPlan evaluate_plan(const nn::Sequential& model, const data::Dataset& train_set,
                           const data::Dataset& test_set, const SearchConfig& cfg,
                           const CompensationPlan& plan) {
  ExploredPlan result;
  for (const auto& [idx, m] : plan.entries) result.filters.push_back(m);

  Rng rng(cfg.seed ^ 0xABCDEFull);
  nn::Sequential candidate = with_compensation(model, plan, rng);
  result.overhead = compensation_overhead(candidate);

  if (result.overhead > cfg.overhead_limit) {
    // Over budget: negative reward, skip training (paper's fast path).
    result.reward = -static_cast<float>(result.overhead);
    return result;
  }
  if (!plan.empty()) {
    train_compensation(candidate, train_set, test_set, cfg.comp_train);
    result.trained = true;
  }
  const McResult mc = mc_accuracy(candidate, test_set, cfg.variation, cfg.mc);
  result.acc_mean = mc.mean;
  result.acc_std = mc.stddev;
  result.reward = static_cast<float>(mc.mean - mc.stddev - result.overhead);
  return result;
}

SearchOutcome rl_search(const nn::Sequential& model, const data::Dataset& train_set,
                        const data::Dataset& test_set, const SearchConfig& cfg) {
  rl::RnnPolicy policy(static_cast<int64_t>(cfg.candidate_layers.size()),
                       static_cast<int64_t>(cfg.ratio_menu.size()), cfg.policy_hidden,
                       cfg.seed);
  SearchOutcome out;
  std::map<std::vector<int>, ExploredPlan> memo;

  auto reward_fn = [&](const std::vector<int>& actions) -> float {
    auto it = memo.find(actions);
    if (it != memo.end()) return it->second.reward;
    const CompensationPlan plan = plan_from_actions(model, cfg, actions);
    ExploredPlan ep = evaluate_plan(model, train_set, test_set, cfg, plan);
    memo.emplace(actions, ep);
    out.trace.push_back(ep);
    return ep.reward;
  };

  const rl::ReinforceOutcome ro = rl::run_reinforce(policy, reward_fn, cfg.reinforce);
  out.best_plan = plan_from_actions(model, cfg, ro.best_actions);
  out.best = memo.at(ro.best_actions);
  return out;
}

}  // namespace cn::core
