// Monte-Carlo evaluation of inference accuracy under weight variations.
//
// The paper samples the network weights 250 times from the variation model
// and reports mean and standard deviation of accuracy (§IV). Each sample is
// one "chip instance": every analog site gets fresh multiplicative factors.
#pragma once

#include <cstdint>
#include <vector>

#include "analog/variation.h"
#include "data/dataset.h"
#include "nn/sequential.h"

namespace cn::core {

struct McResult {
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  std::vector<double> samples;
};

struct McOptions {
  int samples = 25;
  uint64_t seed = 42;
  int64_t batch_size = 128;
  /// Perturb only analog sites with index >= first_site (execution order);
  /// 0 = all sites. Used by the Fig. 9 sensitivity sweep.
  int64_t first_site = 0;
};

/// Accuracy statistics over `opts.samples` chip instances. The model is
/// cloned internally, so the caller's weights are untouched. Implemented on
/// the runtime subsystem (runtime::ChipFarm + runtime::McEngine): samples
/// get deterministic per-sample seeds and evaluate in parallel, with
/// bit-identical results for any thread count.
McResult mc_accuracy(const nn::Sequential& model, const data::Dataset& test,
                     const analog::VariationModel& vm, const McOptions& opts);

}  // namespace cn::core
