#include "core/config.h"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>

namespace cn::core {

namespace {
int64_t env_int(const char* name, int64_t def) {
  const char* v = std::getenv(name);
  if (!v || !*v) return def;
  try {
    return std::stoll(v);
  } catch (...) {
    return def;
  }
}
}  // namespace

int RuntimeConfig::epochs(int base) const {
  return std::max(1, static_cast<int>(base * epoch_scale + 0.5));
}

const RuntimeConfig& RuntimeConfig::get() {
  static const RuntimeConfig cfg = [] {
    RuntimeConfig c;
    c.mc_samples = static_cast<int>(env_int("CORRECTNET_MC", 25));
    c.epoch_scale = static_cast<double>(env_int("CORRECTNET_EPOCHS", 100)) / 100.0;
    c.train_cap = env_int("CORRECTNET_TRAIN", 4000);
    c.test_cap = env_int("CORRECTNET_TEST", 800);
    return c;
  }();
  return cfg;
}

namespace {
std::string trimmed(const std::string& s) {
  const auto b = s.find_first_not_of(" \t\r");
  if (b == std::string::npos) return "";
  const auto e = s.find_last_not_of(" \t\r");
  return s.substr(b, e - b + 1);
}
}  // namespace

KeyValueConfig KeyValueConfig::from_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("KeyValueConfig: cannot open " + path);
  std::stringstream ss;
  ss << is.rdbuf();
  return from_string(ss.str());
}

KeyValueConfig KeyValueConfig::from_string(const std::string& text) {
  KeyValueConfig cfg;
  std::istringstream is(text);
  std::string line;
  int lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    const auto eq = line.find('=');
    if (eq == std::string::npos) {
      // A non-blank line that is not a pair is a malformed config, not
      // decoration: 'chips 8' silently ignored would run the default.
      if (!trimmed(line).empty())
        throw std::runtime_error("KeyValueConfig: malformed line " +
                                 std::to_string(lineno) + " (no '='): '" +
                                 trimmed(line) + "'");
      continue;
    }
    const std::string key = trimmed(line.substr(0, eq));
    if (key.empty())
      throw std::runtime_error("KeyValueConfig: malformed line " +
                               std::to_string(lineno) + " (empty key)");
    // Duplicate keys throw instead of one silently winning; programmatic
    // overrides go through set().
    if (cfg.find(key))
      throw std::runtime_error("KeyValueConfig: duplicate key '" + key +
                               "' at line " + std::to_string(lineno));
    cfg.kv_.emplace_back(key, trimmed(line.substr(eq + 1)));
  }
  if (cfg.kv_.empty())
    throw std::runtime_error(
        "KeyValueConfig: no key=value pairs (empty config)");
  return cfg;
}

void KeyValueConfig::set(const std::string& key, const std::string& value) {
  for (auto& kv : kv_) {
    if (kv.first == key) {
      kv.second = value;
      return;
    }
  }
  kv_.emplace_back(key, value);
}

void KeyValueConfig::validate_keys(const std::vector<std::string>& known) const {
  std::string unknown;
  for (const auto& kv : kv_) {
    if (std::find(known.begin(), known.end(), kv.first) != known.end()) continue;
    if (!unknown.empty()) unknown += ", ";
    unknown += "'" + kv.first + "'";
  }
  if (!unknown.empty())
    throw std::runtime_error("KeyValueConfig: unknown key(s) " + unknown);
}

const std::string* KeyValueConfig::find(const std::string& key) const {
  for (const auto& kv : kv_)
    if (kv.first == key) return &kv.second;
  return nullptr;
}

std::string KeyValueConfig::str(const std::string& key, const std::string& def) const {
  const std::string* v = find(key);
  return v ? *v : def;
}

int64_t KeyValueConfig::integer(const std::string& key, int64_t def) const {
  const std::string* v = find(key);
  if (!v || v->empty()) return def;
  size_t pos = 0;
  int64_t parsed = 0;
  try {
    parsed = std::stoll(*v, &pos);
  } catch (...) {
    pos = 0;
  }
  // Partial parses fail loudly: '1O' silently meaning 1 would mis-size runs.
  if (pos != v->size())
    throw std::runtime_error("KeyValueConfig: unparsable integer '" + *v +
                             "' in key '" + key + "'");
  return parsed;
}

double KeyValueConfig::number(const std::string& key, double def) const {
  const std::string* v = find(key);
  if (!v || v->empty()) return def;
  size_t pos = 0;
  double parsed = 0.0;
  try {
    parsed = std::stod(*v, &pos);
  } catch (...) {
    pos = 0;
  }
  if (pos != v->size())
    throw std::runtime_error("KeyValueConfig: unparsable number '" + *v +
                             "' in key '" + key + "'");
  return parsed;
}

std::vector<double> KeyValueConfig::numbers(const std::string& key,
                                            std::vector<double> def) const {
  const std::string* v = find(key);
  if (!v) return def;
  std::vector<double> out;
  std::istringstream is(*v);
  std::string cell;
  while (std::getline(is, cell, ',')) {
    cell = trimmed(cell);
    if (cell.empty()) continue;
    // A typo'd cell must fail loudly: silently dropping it would shrink a
    // campaign grid with no trace in the report.
    size_t pos = 0;
    double parsed = 0.0;
    try {
      parsed = std::stod(cell, &pos);
    } catch (...) {
      pos = 0;
    }
    if (pos != cell.size())
      throw std::runtime_error("KeyValueConfig: unparsable number '" + cell +
                               "' in key '" + key + "'");
    out.push_back(parsed);
  }
  return out;
}

}  // namespace cn::core
