#include "core/config.h"

#include <algorithm>
#include <cstdlib>
#include <string>

namespace cn::core {

namespace {
int64_t env_int(const char* name, int64_t def) {
  const char* v = std::getenv(name);
  if (!v || !*v) return def;
  try {
    return std::stoll(v);
  } catch (...) {
    return def;
  }
}
}  // namespace

int RuntimeConfig::epochs(int base) const {
  return std::max(1, static_cast<int>(base * epoch_scale + 0.5));
}

const RuntimeConfig& RuntimeConfig::get() {
  static const RuntimeConfig cfg = [] {
    RuntimeConfig c;
    c.mc_samples = static_cast<int>(env_int("CORRECTNET_MC", 25));
    c.epoch_scale = static_cast<double>(env_int("CORRECTNET_EPOCHS", 100)) / 100.0;
    c.train_cap = env_int("CORRECTNET_TRAIN", 4000);
    c.test_cap = env_int("CORRECTNET_TEST", 800);
    return c;
  }();
  return cfg;
}

}  // namespace cn::core
