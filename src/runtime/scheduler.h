// Deterministic indexed fan-out: the scheduling primitive behind
// campaign-level parallelism (faultsim::Campaign, examples/fault_sweep).
//
// parallel_indexed(n, c, fn) runs fn(0..n-1), every index exactly once, with
// up to c calls in flight. Jobs are handed out dynamically (an atomic
// cursor, not static chunks) so a grid whose cells cost wildly different
// amounts — a fault-free control next to a 50%-stuck scenario — still load
// balances. Determinism is the caller's contract: fn(i) must key every
// output by i (write result[i], derive seeds from i), never by completion
// order; under that contract results are byte-identical for any concurrency.
//
// Worker provisioning: when the shared tensor pool is at least c wide the
// jobs run there; otherwise a dedicated pool of c workers is spun up for the
// call (the knob must mean something on a narrow box — the bench compares
// c=1 vs c=N on one core, and sanitizers need real concurrency to see
// races). Either way, nested parallel_for from inside a job runs inline
// (ThreadPool's any-pool-worker rule), so each job executes serially within
// itself and jobs never funnel through another pool's queue.
#pragma once

#include <cstdint>
#include <functional>

namespace cn::runtime {

/// Resolves a concurrency knob against a job count: `requested` <= 0 means
/// auto (the global pool width), and the result is clamped to [1, n].
int64_t effective_concurrency(int64_t requested, int64_t n);

/// Runs fn(i) for every i in [0, n) with up to `concurrency` (resolved via
/// effective_concurrency) calls in flight. concurrency 1 — or a call from
/// inside a pool worker — degenerates to a plain sequential loop in index
/// order. The first exception a job throws is rethrown on the calling
/// thread after in-flight jobs finish; queued jobs after a failure are
/// abandoned.
void parallel_indexed(int64_t n, int64_t concurrency,
                      const std::function<void(int64_t)>& fn);

}  // namespace cn::runtime
