#include "runtime/model_router.h"

#include <algorithm>
#include <cstdio>
#include <stdexcept>
#include <utility>

#include "obs/exposition.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "tensor/threadpool.h"

namespace cn::runtime {

ModelRouter::ModelRouter(const ModelRouterOptions& opts) : opts_(opts) {
  if (opts_.max_live_total < 0)
    throw std::invalid_argument("ModelRouter: max_live_total must be >= 0");
  statusz_section_ = obs::statusz_add_section("model router", [this] {
    std::string out;
    for (const auto& [id, st] : stats()) {
      char buf[256];
      std::snprintf(buf, sizeof(buf),
                    "%s: %llu requests, %llu rejected, %s, "
                    "%d active workers (%d drilled)\n",
                    id.c_str(), static_cast<unsigned long long>(st.requests),
                    static_cast<unsigned long long>(st.rejected),
                    st.accepting ? "accepting" : "rejecting",
                    st.active_workers, st.drilled_workers);
      out += buf;
    }
    out += "live slots used: " + std::to_string(live_slots_used());
    if (opts_.max_live_total > 0)
      out += " / " + std::to_string(opts_.max_live_total);
    return out;
  });
}

ModelRouter::~ModelRouter() {
  if (statusz_section_) obs::statusz_remove_section(statusz_section_);
  shutdown();
}

void ModelRouter::charge_budget(const std::string& id, ChipFarmOptions& fo) {
  // Mirror ChipFarm::init_slots' resolution so the charge matches what the
  // farm will actually keep live.
  int64_t requested = fo.max_live;
  if (requested <= 0)
    requested = std::min<int64_t>(
        fo.instances, std::max<int64_t>(1, ThreadPool::global().size()));
  requested = std::min(requested, fo.instances);
  if (opts_.max_live_total > 0) {
    const int64_t remaining = opts_.max_live_total - live_slots_used_;
    if (remaining <= 0)
      throw std::invalid_argument(
          "ModelRouter: live-slot budget exhausted (" +
          std::to_string(opts_.max_live_total) + " slots, adding model \"" +
          id + "\")");
    if (requested > remaining) {
      obs::log_info("[router] clamping model \"" + id + "\" to " +
                    std::to_string(remaining) + " live slots (budget " +
                    std::to_string(opts_.max_live_total) + ", used " +
                    std::to_string(live_slots_used_) + ")");
      requested = remaining;
    }
  }
  fo.max_live = requested;
}

void ModelRouter::add_lane(
    const std::string& id, ChipFarmOptions farm_opts,
    InferenceServerOptions server_opts,
    const std::function<std::unique_ptr<ChipFarm>(const ChipFarmOptions&)>&
        build_farm) {
  if (id.empty())
    throw std::invalid_argument("ModelRouter: empty model id");
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (lanes_.count(id))
      throw std::invalid_argument("ModelRouter: duplicate model id \"" + id +
                                  "\"");
    charge_budget(id, farm_opts);
    // Reserve the id (a placeholder lane blocks duplicate registration) and
    // the budget before dropping the lock for the build.
    live_slots_used_ += farm_opts.max_live;
    lanes_.emplace(id, Lane{});
  }
  Lane lane;
  try {
    lane.farm = build_farm(farm_opts);
    server_opts.model = id;
    lane.server = std::make_unique<InferenceServer>(*lane.farm, server_opts);
  } catch (...) {
    std::lock_guard<std::mutex> lk(mu_);
    lanes_.erase(id);
    live_slots_used_ -= farm_opts.max_live;
    throw;
  }
  std::lock_guard<std::mutex> lk(mu_);
  // Settle the charge against what the farm actually kept live.
  live_slots_used_ += lane.farm->num_live() - farm_opts.max_live;
  lanes_[id] = std::move(lane);
  obs::metrics().gauge("router.models").set(static_cast<double>(lanes_.size()));
  obs::metrics().gauge("router.live_slots").set(
      static_cast<double>(live_slots_used_));
}

void ModelRouter::add_model(const std::string& id, const nn::Sequential& base,
                            const analog::VariationModel& vm,
                            ChipFarmOptions farm_opts,
                            InferenceServerOptions server_opts) {
  add_lane(id, std::move(farm_opts), std::move(server_opts),
           [&](const ChipFarmOptions& fo) {
             return std::make_unique<ChipFarm>(base, vm, fo);
           });
}

void ModelRouter::add_model(const std::string& id, const nn::Sequential& base,
                            const analog::RramDeviceParams& dev,
                            ChipFarmOptions farm_opts,
                            InferenceServerOptions server_opts,
                            analog::FaultList faults) {
  add_lane(id, std::move(farm_opts), std::move(server_opts),
           [&](const ChipFarmOptions& fo) {
             return std::make_unique<ChipFarm>(base, dev, fo, faults);
           });
}

ModelRouter::Lane& ModelRouter::lane(const std::string& id) {
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = lanes_.find(id);
  // A placeholder (mid-registration) lane is not routable yet.
  if (it == lanes_.end() || !it->second.server) {
    std::string known;
    for (const auto& [lid, l] : lanes_) {
      (void)l;
      known += known.empty() ? lid : ", " + lid;
    }
    throw std::out_of_range("ModelRouter: unknown model \"" + id +
                            "\" (registered: " +
                            (known.empty() ? "<none>" : known) + ")");
  }
  return it->second;
}

std::future<Tensor> ModelRouter::submit(const std::string& id, Tensor input) {
  // The lane reference stays valid after mu_ drops (std::map node
  // stability; lanes are never erased while the router lives), so the
  // submit itself runs without the router lock — lanes don't serialize on
  // each other.
  return lane(id).server->submit(std::move(input));
}

InferenceServer& ModelRouter::server(const std::string& id) {
  return *lane(id).server;
}

ChipFarm& ModelRouter::farm(const std::string& id) { return *lane(id).farm; }

void ModelRouter::drill(const std::string& id, const DrillSpec& spec) {
  lane(id).server->drill(spec);
}

void ModelRouter::undrill(const std::string& id) { lane(id).server->undrill(); }

std::vector<std::string> ModelRouter::model_ids() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<std::string> ids;
  ids.reserve(lanes_.size());
  for (const auto& [id, l] : lanes_)
    if (l.server) ids.push_back(id);
  return ids;
}

std::map<std::string, ServerStats> ModelRouter::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::map<std::string, ServerStats> out;
  for (const auto& [id, l] : lanes_)
    if (l.server) out.emplace(id, l.server->stats());
  return out;
}

int64_t ModelRouter::live_slots_used() const {
  std::lock_guard<std::mutex> lk(mu_);
  return live_slots_used_;
}

void ModelRouter::shutdown() {
  std::lock_guard<std::mutex> lk(mu_);
  for (auto& [id, l] : lanes_) {
    (void)id;
    if (l.server) l.server->shutdown();
  }
}

}  // namespace cn::runtime
