// ModelRouter: the multi-model serving-policy layer over InferenceServer.
//
// A router owns one "lane" per registered model id — a dedicated ChipFarm
// slice plus an InferenceServer over it — and routes submit(model_id, input)
// by id. Lanes are independent serving domains: each has its own queue,
// workers, admission control, stats, and {model=<id>}-labeled server.*
// metrics, so one overloaded model rejects without touching its siblings
// (the multi-tenant isolation property).
//
// The one shared resource is chip memory: ModelRouterOptions::max_live_total
// caps the sum of live farm slots across every lane. add_model() charges its
// farm's live slots against the budget — clamping a lane's slots (with a
// log notice) when the remainder is short, and refusing the lane outright
// when the budget is exhausted. The farm's own laziness keeps the bound
// real: live slots are the only chip-sized allocations.
//
// Fault drills route through the lane: drill(id, spec) degrades, remaps, or
// evicts workers of one model while other lanes keep serving untouched.
#pragma once

#include <cstdint>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "runtime/chip_farm.h"
#include "runtime/inference_server.h"

namespace cn::runtime {

struct ModelRouterOptions {
  // Total live farm slots across every registered model; 0 = uncapped.
  int64_t max_live_total = 0;
};

class ModelRouter {
 public:
  explicit ModelRouter(const ModelRouterOptions& opts = {});
  ~ModelRouter();  // shuts every lane down (readiness refcount drains)

  ModelRouter(const ModelRouter&) = delete;
  ModelRouter& operator=(const ModelRouter&) = delete;

  /// Registers model `id` backed by a factor-mode farm (fast path). The
  /// farm options' live slots are charged against the shared budget; the
  /// server options' model label is forced to `id`. Throws on a duplicate
  /// id or an exhausted budget.
  void add_model(const std::string& id, const nn::Sequential& base,
                 const analog::VariationModel& vm, ChipFarmOptions farm_opts,
                 InferenceServerOptions server_opts = {});
  /// Registers model `id` backed by a crossbar-mode farm (device-level
  /// substrate; fault drills need this mode).
  void add_model(const std::string& id, const nn::Sequential& base,
                 const analog::RramDeviceParams& dev, ChipFarmOptions farm_opts,
                 InferenceServerOptions server_opts = {},
                 analog::FaultList faults = {});

  /// Routes one input to model `id`'s lane. Unknown ids throw
  /// std::out_of_range; admission rejections resolve the future with
  /// Overloaded (see InferenceServer::submit).
  std::future<Tensor> submit(const std::string& id, Tensor input);

  /// The lane's server / farm (throws std::out_of_range on unknown ids).
  InferenceServer& server(const std::string& id);
  ChipFarm& farm(const std::string& id);

  /// Fault drill against one lane (InferenceServer::drill semantics).
  void drill(const std::string& id, const DrillSpec& spec);
  void undrill(const std::string& id);

  std::vector<std::string> model_ids() const;
  std::map<std::string, ServerStats> stats() const;

  int64_t live_slots_used() const;

  /// Shuts down every lane's server (idempotent; the dtor also runs it).
  void shutdown();

 private:
  struct Lane {
    std::unique_ptr<ChipFarm> farm;
    std::unique_ptr<InferenceServer> server;  // declared after farm: dies first
  };

  Lane& lane(const std::string& id);
  // Applies the shared live-slot budget to a lane about to be added:
  // resolves the farm options' max_live against the remaining budget
  // (clamping with a log notice) or throws when none remains. Caller holds
  // mu_.
  void charge_budget(const std::string& id, ChipFarmOptions& fo);
  // Shared add_model body: reserves the lane and its budget under mu_, then
  // builds the farm/server OUTSIDE the lock — the server ctor registers a
  // /statusz section (global sections lock), and a concurrent scrape holds
  // that lock while calling our section's stats(); holding mu_ across the
  // build would invert the order and deadlock.
  void add_lane(
      const std::string& id, ChipFarmOptions farm_opts,
      InferenceServerOptions server_opts,
      const std::function<std::unique_ptr<ChipFarm>(const ChipFarmOptions&)>&
          build_farm);

  ModelRouterOptions opts_;
  mutable std::mutex mu_;
  // std::map for node stability: lane references stay valid across inserts.
  std::map<std::string, Lane> lanes_;
  int64_t live_slots_used_ = 0;
  int statusz_section_ = 0;
};

}  // namespace cn::runtime
