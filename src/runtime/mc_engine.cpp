#include "runtime/mc_engine.h"

#include "core/trainer.h"
#include "nn/metrics.h"
#include "tensor/threadpool.h"

namespace cn::runtime {

McEngine::McEngine(ChipFarm& farm, McEngineOptions opts)
    : farm_(farm), opts_(opts) {}

core::McResult McEngine::accuracy(const data::Dataset& test) {
  const int64_t chips = farm_.num_chips();
  const int64_t live = farm_.num_live();
  core::McResult result;
  result.samples.resize(static_cast<size_t>(chips));
  // Slot k evaluates chips k, k+live, k+2*live, ... — each physical slot is
  // touched by exactly one task, so chip materialization never races.
  auto eval_slot = [&](int64_t k) {
    for (int64_t s = k; s < chips; s += live)
      result.samples[static_cast<size_t>(s)] =
          core::evaluate(farm_.chip(s), test, opts_.batch_size);
  };
  if (opts_.threads == 1 || live == 1) {
    for (int64_t k = 0; k < live; ++k) eval_slot(k);
  } else {
    ThreadPool::global().parallel_for(0, live, [&](int64_t lo, int64_t hi) {
      for (int64_t k = lo; k < hi; ++k) eval_slot(k);
    }, 1);
  }
  nn::RunningStats stats;
  for (double s : result.samples) stats.add(s);
  result.mean = stats.mean();
  result.stddev = stats.stddev();
  result.min = stats.min();
  result.max = stats.max();
  return result;
}

std::vector<core::SensitivityPoint> McEngine::sensitivity_sweep(
    const data::Dataset& test, int64_t num_sites, uint64_t base_seed,
    uint64_t seed_stride) {
  std::vector<core::SensitivityPoint> out;
  out.reserve(static_cast<size_t>(num_sites));
  for (int64_t i = 0; i < num_sites; ++i) {
    farm_.reconfigure(base_seed + static_cast<uint64_t>(i) * seed_stride, i);
    const core::McResult r = accuracy(test);
    out.push_back(core::SensitivityPoint{i, r.mean, r.stddev});
  }
  return out;
}

}  // namespace cn::runtime
