#include "runtime/inference_server.h"

#include <algorithm>
#include <cstdio>
#include <stdexcept>
#include <utility>

#include "obs/exposition.h"
#include "obs/trace.h"

namespace cn::runtime {

namespace {

// How many InferenceServers are currently alive in the process: the first
// one flips the global exposition server's readiness on, the last one's
// shutdown flips it back off — /healthz must stop answering "ok" once
// nothing can serve (the refcounted-readiness bugfix).
std::atomic<int>& live_server_count() {
  static std::atomic<int> count{0};
  return count;
}

// Monotonic server ordinal for /statusz section disambiguation: two servers
// must not both register "inference server" (the page would show two
// identically-named sections with no way to tell them apart).
int next_server_ordinal() {
  static std::atomic<int> ordinal{0};
  return ++ordinal;
}

// Registry name for a per-server metric: labeled with the model id when one
// is set ("server.requests{model=mnist}"), the classic unlabeled name
// otherwise.
std::string metric_name(const InferenceServerOptions& opts, const char* base) {
  return opts.model.empty() ? std::string(base)
                            : obs::labeled(base, "model", opts.model);
}

}  // namespace

Overloaded::Overloaded(std::string model, int64_t queue_depth,
                       double est_wait_us, const std::string& reason)
    : std::runtime_error(
          "InferenceServer overloaded (" + reason +
          (model.empty() ? std::string() : ", model " + model) + ", " +
          std::to_string(queue_depth) + " queued)"),
      model_(std::move(model)),
      queue_depth_(queue_depth),
      est_wait_us_(est_wait_us) {}

std::string ServerStats::summary() const {
  char buf[512];
  std::string out;
  if (!model.empty()) out += "model: " + model + "\n";
  std::snprintf(buf, sizeof(buf),
                "requests %llu in %llu batches (avg batch %.1f, %llu full)\n"
                "throughput %.0f req/s over %.3fs\n"
                "latency avg %.0fus  p50 %.0fus  p99 %.0fus  p999 %.0fus  "
                "max %.0fus",
                static_cast<unsigned long long>(requests),
                static_cast<unsigned long long>(batches), avg_batch(),
                static_cast<unsigned long long>(full_batches),
                throughput_rps(), wall_seconds, avg_latency_us(),
                p50_latency_us, p99_latency_us, p999_latency_us,
                max_latency_us);
  out += buf;
  if (admission_configured) {
    std::snprintf(buf, sizeof(buf),
                  "\nadmission: %s (rejected %llu, queue %lld, "
                  "max depth %lld, est wait %.0fus)",
                  accepting ? "accepting" : "rejecting",
                  static_cast<unsigned long long>(rejected),
                  static_cast<long long>(queue_depth),
                  static_cast<long long>(max_queue_depth), est_wait_us);
    out += buf;
  }
  if (drills > 0 || drilled_workers > 0) {
    std::snprintf(buf, sizeof(buf),
                  "\ndrill: %d degraded, %d active workers (%llu drills)",
                  drilled_workers, active_workers,
                  static_cast<unsigned long long>(drills));
    out += buf;
  }
  if (slo_configured) {
    std::snprintf(buf, sizeof(buf),
                  "\nslo p99 < %.1fms: window p99 %.0fus, burn %.2fx",
                  slo_p99_ms, slo_window_p99_us, slo_burn_rate);
    out += buf;
  }
  return out;
}

InferenceServer::InferenceServer(ChipFarm& farm, const InferenceServerOptions& opts)
    : farm_(farm),
      opts_(opts),
      m_requests_(obs::metrics().counter(metric_name(opts, "server.requests"))),
      m_batches_(obs::metrics().counter(metric_name(opts, "server.batches"))),
      m_rejected_(obs::metrics().counter(metric_name(opts, "server.rejected"))),
      m_drills_(obs::metrics().counter(metric_name(opts, "server.drills"))),
      m_queue_depth_(obs::metrics().gauge(metric_name(opts, "server.queue_depth"))),
      m_workers_active_(
          obs::metrics().gauge(metric_name(opts, "server.workers_active"))),
      m_latency_us_(obs::metrics().histogram(metric_name(opts, "server.latency_us"))),
      m_batch_size_(obs::metrics().histogram(metric_name(opts, "server.batch_size"))) {
  if (opts_.max_batch < 1)
    throw std::invalid_argument("InferenceServer: max_batch must be >= 1");
  if (opts_.queue_limit < 0 || opts_.queue_budget_us < 0 ||
      opts_.admission_burn_max < 0)
    throw std::invalid_argument(
        "InferenceServer: admission thresholds must be >= 0");
  const int workers = static_cast<int>(std::clamp<int64_t>(
      opts_.workers, 1, farm_.num_live()));
  opts_.workers = workers;
  // Materialize each worker's chip up front: farm slots are lazy and
  // worker w exclusively owns chip w from here on.
  for (int w = 0; w < workers; ++w) farm_.chip(w);

  // Latency objective: explicit option wins, otherwise the process default
  // (slo_p99_ms campaign key / --slo-p99-ms / CORRECTNET_SLO_P99_MS).
  double slo_ms = opts_.slo_p99_ms;
  if (slo_ms == 0) slo_ms = obs::default_slo_p99_ms();
  if (slo_ms > 0) {
    obs::SloConfig cfg;
    cfg.quantile = 0.99;
    cfg.threshold_us = slo_ms * 1000.0;
    cfg.window_s = opts_.slo_window_s;
    slo_ = std::make_unique<obs::SloTracker>(cfg, "slo");
    opts_.slo_p99_ms = slo_ms;
  }
  if (opts_.admission_burn_max > 0 && !slo_)
    throw std::invalid_argument(
        "InferenceServer: admission_burn_max needs an SLO objective "
        "(slo_p99_ms)");

  worker_ctl_.reserve(static_cast<size_t>(workers));
  for (int w = 0; w < workers; ++w)
    worker_ctl_.push_back(std::make_unique<WorkerCtl>());
  m_workers_active_.set(static_cast<double>(workers));

  // Live introspection: the server summary becomes a /statusz section
  // (named per server — ordinal plus model id — so concurrent servers stay
  // tellable apart), an admission probe joins /healthz when admission
  // control is armed, and a running global exposition server flips to
  // ready — the chips are programmed by this point, so the process can
  // serve. Readiness is refcounted across servers via live_server_count().
  std::string title = "inference server #" + std::to_string(next_server_ordinal());
  if (!opts_.model.empty()) title += " [" + opts_.model + "]";
  statusz_section_ =
      obs::statusz_add_section(title, [this] { return stats().summary(); });
  const bool admission = opts_.queue_limit > 0 || opts_.queue_budget_us > 0 ||
                         opts_.admission_burn_max > 0;
  if (admission)
    healthz_probe_ = obs::healthz_add_probe(
        title + " admission", [this] { return accepting(); });
  live_server_count().fetch_add(1, std::memory_order_relaxed);
  if (obs::ExpositionServer* srv = obs::ExpositionServer::global())
    srv->set_ready(true);

  workers_.reserve(static_cast<size_t>(workers));
  for (int w = 0; w < workers; ++w)
    workers_.emplace_back([this, w] { worker_loop(w); });
}

InferenceServer::~InferenceServer() {
  // The section's and probe's lambdas capture `this`; unregister before any
  // member dies.
  if (statusz_section_) obs::statusz_remove_section(statusz_section_);
  if (healthz_probe_) obs::healthz_remove_probe(healthz_probe_);
  shutdown();
}

double InferenceServer::estimate_wait_us(int64_t depth) const {
  const double per_req = ewma_req_us_.load(std::memory_order_relaxed);
  const int active = std::max(1, count_active_workers());
  return static_cast<double>(depth) * per_req / static_cast<double>(active);
}

int InferenceServer::count_active_workers() const {
  int active = 0;
  for (const auto& ctl : worker_ctl_)
    if (!ctl->evicted.load(std::memory_order_relaxed)) ++active;
  return active;
}

const char* InferenceServer::admission_reject_reason(int64_t depth,
                                                     double* est_out) const {
  *est_out = 0;
  if (opts_.queue_limit > 0 && depth >= opts_.queue_limit)
    return "queue limit";
  if (opts_.queue_budget_us > 0) {
    *est_out = estimate_wait_us(depth);
    if (*est_out > static_cast<double>(opts_.queue_budget_us))
      return "queue wait budget";
  }
  if (opts_.admission_burn_max > 0 && slo_ &&
      slo_->status().burn_rate > opts_.admission_burn_max)
    return "slo burn rate";
  return nullptr;
}

std::future<Tensor> InferenceServer::submit(Tensor input) {
  Request req;
  req.input = std::move(input);
  req.enqueued = std::chrono::steady_clock::now();
  std::future<Tensor> fut = req.promise.get_future();
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (stop_) throw std::logic_error("InferenceServer: submit after shutdown");
    if (input_shape_.empty()) {
      input_shape_ = req.input.shape();
    } else if (req.input.shape() != input_shape_) {
      throw std::invalid_argument("InferenceServer: input shape " +
                                  to_string(req.input.shape()) + " != expected " +
                                  to_string(input_shape_));
    }
    // Admission control: reject fast — the future resolves immediately with
    // a typed Overloaded — instead of growing the queue.
    const int64_t depth = static_cast<int64_t>(queue_.size());
    double est = 0;
    if (const char* reason = admission_reject_reason(depth, &est)) {
      accepting_.store(false, std::memory_order_relaxed);
      {
        std::lock_guard<std::mutex> slk(stats_mu_);
        stats_.rejected += 1;
        stats_.accepting = false;
      }
      m_rejected_.add(1);
      req.promise.set_exception(std::make_exception_ptr(
          Overloaded(opts_.model, depth, est, reason)));
      return fut;
    }
    // Record the wall-clock start only for admitted requests (and after the
    // checks above — a rejected or malformed first request must not start
    // the throughput clock), before the request becomes visible to the
    // workers so a fast completion can never observe an unset first_submit_.
    // Lock order mu_ -> stats_mu_ matches run_batch's callers (no path takes
    // mu_ while holding stats_mu_).
    {
      std::lock_guard<std::mutex> slk(stats_mu_);
      if (!saw_submit_) {
        first_submit_ = req.enqueued;
        saw_submit_ = true;
      }
    }
    queue_.push_back(std::move(req));
    max_queue_depth_ = std::max<int64_t>(max_queue_depth_,
                                         static_cast<int64_t>(queue_.size()));
    m_queue_depth_.set(static_cast<double>(queue_.size()));
  }
  cv_.notify_one();
  return fut;
}

void InferenceServer::worker_loop(int worker) {
  WorkerCtl& ctl = *worker_ctl_[static_cast<size_t>(worker)];
  uint64_t seen_epoch = ctl.epoch.load(std::memory_order_acquire);
  // The chip pointer is re-fetched whenever the epoch bumps (drill/undrill):
  // the rebuild happens here, on the owning worker's thread, between
  // batches — the farm threading contract (chip(s) mutates slot s) holds.
  nn::Sequential* chip = &farm_.chip(worker);
  const auto max_wait = std::chrono::microseconds(std::max<int64_t>(0, opts_.max_wait_us));
  for (;;) {
    const uint64_t cur_epoch = ctl.epoch.load(std::memory_order_acquire);
    if (cur_epoch != seen_epoch &&
        !ctl.evicted.load(std::memory_order_relaxed)) {
      seen_epoch = cur_epoch;
      farm_.invalidate(worker);
      chip = &farm_.chip(worker);
    }
    std::vector<Request> batch;
    {
      std::unique_lock<std::mutex> lk(mu_);
      for (;;) {
        if (ctl.evicted.load(std::memory_order_relaxed)) {
          // Parked by a drill: wait out the eviction (or shutdown). Queued
          // work is left for the active siblings.
          if (stop_) return;
          cv_.wait(lk);
          continue;
        }
        if (!queue_.empty()) {
          if (stop_ || static_cast<int64_t>(queue_.size()) >= opts_.max_batch) break;
          // Flush once the oldest pending request has waited long enough;
          // otherwise sleep until that deadline (or new arrivals/shutdown).
          const auto deadline = queue_.front().enqueued + max_wait;
          if (std::chrono::steady_clock::now() >= deadline) break;
          cv_.wait_until(lk, deadline);
          continue;
        }
        if (stop_) return;
        cv_.wait(lk);
      }
      // A drill may have landed while waiting: rebuild before serving the
      // batch so no request runs on a stale chip epoch.
      if (ctl.epoch.load(std::memory_order_acquire) != seen_epoch) continue;
      const int64_t take =
          std::min<int64_t>(opts_.max_batch, static_cast<int64_t>(queue_.size()));
      batch.reserve(static_cast<size_t>(take));
      for (int64_t i = 0; i < take; ++i) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      m_queue_depth_.set(static_cast<double>(queue_.size()));
      // Admission recovery on drain: once the queue is back under half its
      // limit and inside the wait budget, start accepting again.
      if (!accepting_.load(std::memory_order_relaxed)) {
        const int64_t depth = static_cast<int64_t>(queue_.size());
        bool recovered = true;
        if (opts_.queue_limit > 0 && depth > opts_.queue_limit / 2)
          recovered = false;
        if (recovered && opts_.queue_budget_us > 0 &&
            estimate_wait_us(depth) > static_cast<double>(opts_.queue_budget_us))
          recovered = false;
        if (recovered && opts_.admission_burn_max > 0 && slo_ &&
            slo_->status().burn_rate > opts_.admission_burn_max)
          recovered = false;
        if (recovered) {
          accepting_.store(true, std::memory_order_relaxed);
          std::lock_guard<std::mutex> slk(stats_mu_);
          stats_.accepting = true;
        }
      }
    }
    // More work may remain (e.g. during drain); let a sibling grab it while
    // this worker runs the forward pass.
    cv_.notify_one();
    run_batch(*chip, batch);
  }
}

void InferenceServer::run_batch(nn::Sequential& chip, std::vector<Request>& batch) {
  const int64_t b = static_cast<int64_t>(batch.size());
  Shape batch_shape = batch[0].input.shape();
  batch_shape.insert(batch_shape.begin(), b);
  Tensor stacked(batch_shape);
  const int64_t stride = batch[0].input.size();
  for (int64_t i = 0; i < b; ++i)
    std::copy(batch[static_cast<size_t>(i)].input.data(),
              batch[static_cast<size_t>(i)].input.data() + stride,
              stacked.data() + i * stride);
  Tensor out;
  std::exception_ptr err;
  const auto started = std::chrono::steady_clock::now();
  {
    obs::Span span("server.batch", "server");
    try {
      out = chip.forward(stacked, /*train=*/false);
    } catch (...) {
      err = std::current_exception();
    }
  }
  const auto done = std::chrono::steady_clock::now();
  // Per-request service-time EWMA feeding the admission wait estimate
  // (0.7/0.3 blend; first sample seeds it).
  const double svc_us =
      std::chrono::duration<double, std::micro>(done - started).count() /
      static_cast<double>(b);
  const double prev = ewma_req_us_.load(std::memory_order_relaxed);
  ewma_req_us_.store(prev == 0 ? svc_us : 0.7 * prev + 0.3 * svc_us,
                     std::memory_order_relaxed);
  // Record stats before resolving the promises: a client that has seen its
  // future complete must also see itself counted.
  {
    std::lock_guard<std::mutex> lk(stats_mu_);
    stats_.requests += static_cast<uint64_t>(b);
    stats_.batches += 1;
    if (b >= opts_.max_batch) stats_.full_batches += 1;
    for (const auto& req : batch) {
      const double lat_us =
          std::chrono::duration<double, std::micro>(done - req.enqueued).count();
      stats_.total_latency_us += lat_us;
      latency_us_.record(lat_us);
      m_latency_us_.record(lat_us);
    }
    last_done_ = std::max(last_done_, done);
    stats_.wall_seconds =
        std::chrono::duration<double>(last_done_ - first_submit_).count();
  }
  m_requests_.add(static_cast<uint64_t>(b));
  m_batches_.add(1);
  m_batch_size_.record(static_cast<double>(b));
  if (err) {
    for (auto& req : batch) req.promise.set_exception(err);
    return;
  }
  const int64_t out_stride = out.size() / b;
  Shape row_shape(out.shape().begin() + 1, out.shape().end());
  for (int64_t i = 0; i < b; ++i) {
    Tensor row(row_shape);
    std::copy(out.data() + i * out_stride, out.data() + (i + 1) * out_stride,
              row.data());
    batch[static_cast<size_t>(i)].promise.set_value(std::move(row));
  }
}

void InferenceServer::drill(const DrillSpec& spec) {
  if (spec.workers.empty())
    throw std::invalid_argument("InferenceServer::drill: no workers named");
  for (int w : spec.workers)
    if (w < 0 || w >= opts_.workers)
      throw std::out_of_range("InferenceServer::drill: bad worker index " +
                              std::to_string(w));
  if (spec.action == DrillSpec::Action::kEvict) {
    // The fleet must keep at least one active worker or the queue stalls.
    int active_after = 0;
    for (int w = 0; w < opts_.workers; ++w) {
      const bool evicted =
          worker_ctl_[static_cast<size_t>(w)]->evicted.load(
              std::memory_order_relaxed) ||
          std::find(spec.workers.begin(), spec.workers.end(), w) !=
              spec.workers.end();
      if (!evicted) ++active_after;
    }
    if (active_after == 0)
      throw std::invalid_argument(
          "InferenceServer::drill: eviction would leave no active worker");
  } else {
    if (spec.faults.empty())
      throw std::invalid_argument(
          "InferenceServer::drill: degrade/remap needs fault models");
    std::vector<int64_t> chips(spec.workers.begin(), spec.workers.end());
    farm_.drill(chips, spec.faults,
                spec.action == DrillSpec::Action::kRemap);
  }
  for (int w : spec.workers) {
    WorkerCtl& ctl = *worker_ctl_[static_cast<size_t>(w)];
    if (spec.action == DrillSpec::Action::kEvict)
      ctl.evicted.store(true, std::memory_order_relaxed);
    else
      ctl.drilled.store(true, std::memory_order_relaxed);
    ctl.epoch.fetch_add(1, std::memory_order_release);
  }
  drill_count_.fetch_add(1, std::memory_order_relaxed);
  m_drills_.add(1);
  m_workers_active_.set(static_cast<double>(count_active_workers()));
  cv_.notify_all();
}

void InferenceServer::undrill() {
  farm_.clear_drill();
  for (auto& ctl : worker_ctl_) {
    const bool was_afflicted = ctl->evicted.load(std::memory_order_relaxed) ||
                               ctl->drilled.load(std::memory_order_relaxed);
    ctl->evicted.store(false, std::memory_order_relaxed);
    ctl->drilled.store(false, std::memory_order_relaxed);
    // Only afflicted workers rebuild; clean siblings keep their chips.
    if (was_afflicted) ctl->epoch.fetch_add(1, std::memory_order_release);
  }
  m_workers_active_.set(static_cast<double>(count_active_workers()));
  cv_.notify_all();
}

void InferenceServer::shutdown() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (!(stop_ && workers_.empty())) stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
  workers_.clear();
  // Refcounted exposition readiness: the last live server going away flips
  // /healthz back to 503 — a load balancer must stop routing here.
  bool release = false;
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (!lifecycle_released_) {
      lifecycle_released_ = true;
      release = true;
    }
  }
  if (release &&
      live_server_count().fetch_sub(1, std::memory_order_relaxed) == 1) {
    if (obs::ExpositionServer* srv = obs::ExpositionServer::global())
      srv->set_ready(false);
  }
}

ServerStats InferenceServer::stats() const {
  int64_t depth = 0;
  int64_t max_depth = 0;
  {
    std::lock_guard<std::mutex> lk(mu_);
    depth = static_cast<int64_t>(queue_.size());
    max_depth = max_queue_depth_;
  }
  ServerStats out;
  {
    std::lock_guard<std::mutex> lk(stats_mu_);
    out = stats_;
  }
  out.model = opts_.model;
  out.admission_configured = opts_.queue_limit > 0 ||
                             opts_.queue_budget_us > 0 ||
                             opts_.admission_burn_max > 0;
  out.accepting = accepting_.load(std::memory_order_relaxed);
  out.queue_depth = depth;
  out.max_queue_depth = max_depth;
  out.est_wait_us = estimate_wait_us(depth);
  out.active_workers = count_active_workers();
  out.drilled_workers = 0;
  for (const auto& ctl : worker_ctl_)
    if (ctl->drilled.load(std::memory_order_relaxed)) ++out.drilled_workers;
  out.drills = drill_count_.load(std::memory_order_relaxed);
  // Percentiles come from this server's own histogram (snapshot once so all
  // three quantiles read one coherent set of bucket counts).
  const obs::LatencyHistogram::Snapshot s = latency_us_.snapshot();
  out.p50_latency_us = s.percentile(0.50);
  out.p99_latency_us = s.percentile(0.99);
  out.p999_latency_us = s.percentile(0.999);
  out.max_latency_us = static_cast<double>(s.max_us);
  if (slo_) {
    const obs::SloTracker::Status st = slo_->update(latency_us_);
    out.slo_configured = true;
    out.slo_p99_ms = opts_.slo_p99_ms;
    out.slo_window_p99_us = st.window_quantile_us;
    out.slo_burn_rate = st.burn_rate;
  }
  return out;
}

}  // namespace cn::runtime
