#include "runtime/inference_server.h"

#include <algorithm>
#include <cstdio>
#include <stdexcept>
#include <utility>

#include "obs/exposition.h"
#include "obs/trace.h"

namespace cn::runtime {

std::string ServerStats::summary() const {
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "requests %llu in %llu batches (avg batch %.1f, %llu full)\n"
                "throughput %.0f req/s over %.3fs\n"
                "latency avg %.0fus  p50 %.0fus  p99 %.0fus  p999 %.0fus  "
                "max %.0fus",
                static_cast<unsigned long long>(requests),
                static_cast<unsigned long long>(batches), avg_batch(),
                static_cast<unsigned long long>(full_batches),
                throughput_rps(), wall_seconds, avg_latency_us(),
                p50_latency_us, p99_latency_us, p999_latency_us,
                max_latency_us);
  std::string out = buf;
  if (slo_configured) {
    std::snprintf(buf, sizeof(buf),
                  "\nslo p99 < %.1fms: window p99 %.0fus, burn %.2fx",
                  slo_p99_ms, slo_window_p99_us, slo_burn_rate);
    out += buf;
  }
  return out;
}

InferenceServer::InferenceServer(ChipFarm& farm, const InferenceServerOptions& opts)
    : farm_(farm),
      opts_(opts),
      m_requests_(obs::metrics().counter("server.requests")),
      m_batches_(obs::metrics().counter("server.batches")),
      m_queue_depth_(obs::metrics().gauge("server.queue_depth")),
      m_latency_us_(obs::metrics().histogram("server.latency_us")),
      m_batch_size_(obs::metrics().histogram("server.batch_size")) {
  if (opts_.max_batch < 1)
    throw std::invalid_argument("InferenceServer: max_batch must be >= 1");
  const int workers = static_cast<int>(std::clamp<int64_t>(
      opts_.workers, 1, farm_.num_live()));
  opts_.workers = workers;
  // Materialize each worker's chip up front: farm slots are lazy and
  // worker w exclusively owns chip w from here on.
  for (int w = 0; w < workers; ++w) farm_.chip(w);

  // Latency objective: explicit option wins, otherwise the process default
  // (slo_p99_ms campaign key / --slo-p99-ms / CORRECTNET_SLO_P99_MS).
  double slo_ms = opts_.slo_p99_ms;
  if (slo_ms == 0) slo_ms = obs::default_slo_p99_ms();
  if (slo_ms > 0) {
    obs::SloConfig cfg;
    cfg.quantile = 0.99;
    cfg.threshold_us = slo_ms * 1000.0;
    cfg.window_s = opts_.slo_window_s;
    slo_ = std::make_unique<obs::SloTracker>(cfg, "slo");
    opts_.slo_p99_ms = slo_ms;
  }

  // Live introspection: the server summary becomes a /statusz section, and
  // a running global exposition server flips to ready — the chips are
  // programmed by this point, so the process can serve.
  statusz_section_ = obs::statusz_add_section(
      "inference server", [this] { return stats().summary(); });
  if (obs::ExpositionServer* srv = obs::ExpositionServer::global())
    srv->set_ready(true);

  workers_.reserve(static_cast<size_t>(workers));
  for (int w = 0; w < workers; ++w)
    workers_.emplace_back([this, w] { worker_loop(w); });
}

InferenceServer::~InferenceServer() {
  // The section's lambda captures `this`; unregister before any member dies.
  if (statusz_section_) obs::statusz_remove_section(statusz_section_);
  shutdown();
}

std::future<Tensor> InferenceServer::submit(Tensor input) {
  Request req;
  req.input = std::move(input);
  req.enqueued = std::chrono::steady_clock::now();
  std::future<Tensor> fut = req.promise.get_future();
  {
    // Record the wall-clock start before the request becomes visible to the
    // workers, so a fast completion can never observe an unset first_submit_.
    std::lock_guard<std::mutex> lk(stats_mu_);
    if (!saw_submit_) {
      first_submit_ = req.enqueued;
      saw_submit_ = true;
    }
  }
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (stop_) throw std::logic_error("InferenceServer: submit after shutdown");
    if (input_shape_.empty()) {
      input_shape_ = req.input.shape();
    } else if (req.input.shape() != input_shape_) {
      throw std::invalid_argument("InferenceServer: input shape " +
                                  to_string(req.input.shape()) + " != expected " +
                                  to_string(input_shape_));
    }
    queue_.push_back(std::move(req));
    m_queue_depth_.set(static_cast<double>(queue_.size()));
  }
  cv_.notify_one();
  return fut;
}

void InferenceServer::worker_loop(int worker) {
  nn::Sequential& chip = farm_.chip(worker);
  const auto max_wait = std::chrono::microseconds(std::max<int64_t>(0, opts_.max_wait_us));
  for (;;) {
    std::vector<Request> batch;
    {
      std::unique_lock<std::mutex> lk(mu_);
      for (;;) {
        if (!queue_.empty()) {
          if (stop_ || static_cast<int64_t>(queue_.size()) >= opts_.max_batch) break;
          // Flush once the oldest pending request has waited long enough;
          // otherwise sleep until that deadline (or new arrivals/shutdown).
          const auto deadline = queue_.front().enqueued + max_wait;
          if (std::chrono::steady_clock::now() >= deadline) break;
          cv_.wait_until(lk, deadline);
          continue;
        }
        if (stop_) return;
        cv_.wait(lk);
      }
      const int64_t take =
          std::min<int64_t>(opts_.max_batch, static_cast<int64_t>(queue_.size()));
      batch.reserve(static_cast<size_t>(take));
      for (int64_t i = 0; i < take; ++i) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      m_queue_depth_.set(static_cast<double>(queue_.size()));
    }
    // More work may remain (e.g. during drain); let a sibling grab it while
    // this worker runs the forward pass.
    cv_.notify_one();
    run_batch(chip, batch);
  }
}

void InferenceServer::run_batch(nn::Sequential& chip, std::vector<Request>& batch) {
  const int64_t b = static_cast<int64_t>(batch.size());
  Shape batch_shape = batch[0].input.shape();
  batch_shape.insert(batch_shape.begin(), b);
  Tensor stacked(batch_shape);
  const int64_t stride = batch[0].input.size();
  for (int64_t i = 0; i < b; ++i)
    std::copy(batch[static_cast<size_t>(i)].input.data(),
              batch[static_cast<size_t>(i)].input.data() + stride,
              stacked.data() + i * stride);
  Tensor out;
  std::exception_ptr err;
  {
    obs::Span span("server.batch", "server");
    try {
      out = chip.forward(stacked, /*train=*/false);
    } catch (...) {
      err = std::current_exception();
    }
  }
  const auto done = std::chrono::steady_clock::now();
  // Record stats before resolving the promises: a client that has seen its
  // future complete must also see itself counted.
  {
    std::lock_guard<std::mutex> lk(stats_mu_);
    stats_.requests += static_cast<uint64_t>(b);
    stats_.batches += 1;
    if (b >= opts_.max_batch) stats_.full_batches += 1;
    for (const auto& req : batch) {
      const double lat_us =
          std::chrono::duration<double, std::micro>(done - req.enqueued).count();
      stats_.total_latency_us += lat_us;
      latency_us_.record(lat_us);
      m_latency_us_.record(lat_us);
    }
    last_done_ = std::max(last_done_, done);
    stats_.wall_seconds =
        std::chrono::duration<double>(last_done_ - first_submit_).count();
  }
  m_requests_.add(static_cast<uint64_t>(b));
  m_batches_.add(1);
  m_batch_size_.record(static_cast<double>(b));
  if (err) {
    for (auto& req : batch) req.promise.set_exception(err);
    return;
  }
  const int64_t out_stride = out.size() / b;
  Shape row_shape(out.shape().begin() + 1, out.shape().end());
  for (int64_t i = 0; i < b; ++i) {
    Tensor row(row_shape);
    std::copy(out.data() + i * out_stride, out.data() + (i + 1) * out_stride,
              row.data());
    batch[static_cast<size_t>(i)].promise.set_value(std::move(row));
  }
}

void InferenceServer::shutdown() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (stop_ && workers_.empty()) return;
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
  workers_.clear();
}

ServerStats InferenceServer::stats() const {
  ServerStats out;
  {
    std::lock_guard<std::mutex> lk(stats_mu_);
    out = stats_;
  }
  // Percentiles come from this server's own histogram (snapshot once so all
  // three quantiles read one coherent set of bucket counts).
  const obs::LatencyHistogram::Snapshot s = latency_us_.snapshot();
  out.p50_latency_us = s.percentile(0.50);
  out.p99_latency_us = s.percentile(0.99);
  out.p999_latency_us = s.percentile(0.999);
  out.max_latency_us = static_cast<double>(s.max_us);
  if (slo_) {
    const obs::SloTracker::Status st = slo_->update(latency_us_);
    out.slo_configured = true;
    out.slo_p99_ms = opts_.slo_p99_ms;
    out.slo_window_p99_us = st.window_quantile_us;
    out.slo_burn_rate = st.burn_rate;
  }
  return out;
}

}  // namespace cn::runtime
