// ChipFarm: a pool of pre-instantiated "chip instances" of one trained model.
//
// The paper's Monte-Carlo evaluation (Table I, Fig. 7/9) treats every
// variation sample as one fabricated chip. The seed code re-derived each
// chip from scratch inside a sequential loop; the farm materializes chips
// once — with deterministic per-chip seeds — and reuses them across the
// whole test set, across sweep points, and across requests (InferenceServer).
//
// Two population modes:
//  - factor mode: chip s = clone of the base model with multiplicative
//    variation factors sampled from Rng(chip_seed(s)) (paper Eq. 1-2, the
//    fast path used by mc_accuracy and the Fig. 9 sweep);
//  - crossbar mode: chip s = program_to_crossbars(base, dev, Rng(chip_seed(s)))
//    — the device-level substrate with tiling, quantization and an owned
//    per-chip read-noise stream (no shared-Rng races across instances).
//
// Memory is bounded by `max_live` physical slots: logical chip s lives in
// slot s % num_live() and is re-materialized when a different sample last
// used the slot. Because chip s depends only on chip_seed(s), results are
// bit-identical no matter how many slots or threads are used.
//
// Threading contract: chip(s) mutates slot s % num_live(). Concurrent
// callers must partition slots (McEngine strides samples by slot;
// InferenceServer pins worker w to chip w).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "analog/crossbar_layers.h"
#include "analog/variation.h"
#include "nn/sequential.h"

namespace cn::runtime {

struct ChipFarmOptions {
  int64_t instances = 25;  // logical chips (one per MC sample)
  uint64_t seed = 42;      // farm seed; chip seeds derive deterministically
  int64_t max_live = 0;    // physical slots; 0 = min(instances, pool size)
  int64_t first_site = 0;  // injection start: factor sites, or fault sites
                           // when a crossbar farm carries a fault list
  int64_t tile = 128;      // crossbar mode: tile edge length
  remap::RemapParams remap;  // crossbar mode: fault-aware remapping (default off)
  // Crossbar mode: execution target of the batched path, resolved against
  // the exec registry at farm construction (fails fast on a typo). Empty =
  // process default (exec::default_target()). Factor farms execute
  // digitally and reject a non-empty value.
  std::string target;
};

class ChipFarm {
 public:
  /// Factor-injection farm (paper Eq. 1-2 fast path).
  ChipFarm(const nn::Sequential& base, const analog::VariationModel& vm,
           const ChipFarmOptions& opts);
  /// Device-level farm: every chip programmed onto crossbars. `faults`
  /// (faultsim scenario; non-owning, models must outlive the farm) injects
  /// device faults into analog sites >= opts.first_site of every chip, each
  /// chip drawing its fault realization from its own chip seed.
  ChipFarm(const nn::Sequential& base, const analog::RramDeviceParams& dev,
           const ChipFarmOptions& opts, analog::FaultList faults = {});

  int64_t num_chips() const { return opts_.instances; }
  int64_t num_live() const { return static_cast<int64_t>(slots_.size()); }
  /// Analog sites of the base model (the Fig. 9 sweep extent).
  int64_t num_analog_sites() { return static_cast<int64_t>(base_.analog_sites().size()); }
  bool crossbar_mode() const { return crossbar_; }
  uint64_t seed() const { return opts_.seed; }
  int64_t first_site() const { return opts_.first_site; }
  /// Execution target crossbar chips are lowered with: the per-farm
  /// override, or the process default. Factor farms return "" (digital).
  std::string target_name() const;

  /// Deterministic seed of logical chip s (independent of slot layout).
  uint64_t chip_seed(int64_t s) const;

  /// The model realizing logical chip s, materialized on demand in slot
  /// s % num_live(). Crossbar chips are handed out with freshly re-armed
  /// read-noise streams (seeded from chip s), so an evaluation starting at a
  /// handout is bit-identical no matter which slot hosts the chip or what
  /// ran before. See the threading contract above.
  nn::Sequential& chip(int64_t s);

  /// Re-keys the whole farm (the Fig. 9 sweep re-runs the same chips with a
  /// new seed and injection start site); live slots are re-materialized
  /// lazily. A crossbar farm accepts first_site only when it carries a fault
  /// list (fault-injection start); factor sites exist only in factor mode.
  void reconfigure(uint64_t seed, int64_t first_site = 0);

  /// Remap repair accounting of logical chip s (all-zero unless the farm is
  /// a crossbar farm with opts.remap enabled and chip s had defects). Cached
  /// when the chip is materialized — chips are pure functions of their seed,
  /// so the stats never change until reconfigure(); cold chips are
  /// materialized on demand.
  remap::RemapStats chip_remap_stats(int64_t s);

  /// Live fault drill (crossbar mode only): marks logical chips as degraded.
  /// The next (re)materialization of a drilled chip programs it with `faults`
  /// stacked after the farm's own fault list, drawing the realization from
  /// the chip's own seed — so a drilled chip is byte-identical to a fresh
  /// farm built with the combined list (seed purity survives the drill).
  /// `remap_repair` additionally runs the fault-aware remap controller on the
  /// drilled chip even when the farm itself has remapping off. The farm
  /// shares ownership of the models; callers may drop theirs. Does NOT
  /// invalidate live slots — call invalidate() from the thread that owns the
  /// slot (InferenceServer workers rebuild between batches).
  void drill(const std::vector<int64_t>& chips,
             std::vector<std::shared_ptr<const analog::FaultModel>> faults,
             bool remap_repair = false);
  /// Clears every drill entry; drilled chips return to their clean form at
  /// the next invalidate()+chip() cycle.
  void clear_drill();
  /// Whether logical chip s currently carries a drill entry.
  bool drilled(int64_t s) const;

  /// Drops the materialized model in chip s's slot so the next chip(s) call
  /// re-programs it — the live-drill rebuild seam. Caller must own the slot
  /// per the threading contract above.
  void invalidate(int64_t s);

  /// The clean base model the chips were derived from.
  const nn::Sequential& base() const { return base_; }

 private:
  void init_slots();
  void populate(int64_t slot, int64_t s);
  uint64_t read_seed(int64_t s) const;

  nn::Sequential base_;
  analog::VariationModel vm_;
  analog::RramDeviceParams dev_;
  analog::FaultList faults_;  // crossbar mode only; empty = fault-free
  bool crossbar_ = false;
  // Resolved opts_.target (registry-owned); nullptr = process default,
  // re-read at every populate so CLI-level set_default_target applies.
  const exec::Target* target_ = nullptr;
  ChipFarmOptions opts_;

  struct Slot {
    std::unique_ptr<nn::Sequential> model;
    int64_t sample = -1;  // logical chip currently materialized, -1 = none
  };
  std::vector<Slot> slots_;
  // Per-logical-chip remap accounting, filled at populate() time (concurrent
  // populates touch distinct elements; uint8_t, not vector<bool>, so the
  // flag writes don't share words).
  std::vector<remap::RemapStats> remap_stats_;
  std::vector<uint8_t> remap_stats_known_;

  // Live-drill table: logical chip -> extra fault models (+ repair flag),
  // consulted by populate(). Guarded by its own mutex because drill() is
  // called from a control thread while workers materialize chips.
  struct DrillEntry {
    std::vector<std::shared_ptr<const analog::FaultModel>> models;
    bool remap_repair = false;
  };
  mutable std::mutex drill_mu_;
  std::map<int64_t, DrillEntry> drills_;
};

}  // namespace cn::runtime
