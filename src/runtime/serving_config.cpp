#include "runtime/serving_config.h"

#include <set>
#include <stdexcept>

namespace cn::runtime {

namespace {

// Comma-separated id list, whitespace-trimmed; empty cells throw (a stray
// comma would silently register a ghost model).
std::vector<std::string> split_ids(const std::string& s) {
  std::vector<std::string> out;
  size_t pos = 0;
  while (pos <= s.size()) {
    size_t comma = s.find(',', pos);
    if (comma == std::string::npos) comma = s.size();
    std::string cell = s.substr(pos, comma - pos);
    const size_t b = cell.find_first_not_of(" \t");
    const size_t e = cell.find_last_not_of(" \t");
    cell = b == std::string::npos ? "" : cell.substr(b, e - b + 1);
    if (cell.empty())
      throw std::runtime_error("serving config: empty model id in \"" + s +
                               "\"");
    out.push_back(cell);
    pos = comma + 1;
  }
  return out;
}

}  // namespace

const std::vector<std::string>& serving_config_keys() {
  // Single source of truth for the serving key set: validate_keys enforces
  // it at parse time and tests/test_config.cpp diffs docs/CONFIG.md against
  // it, so a key added here without documentation (or vice versa) fails
  // tier-1.
  static const std::vector<std::string> keys = {
      "models", "chips", "live_slots", "workers", "max_batch", "max_wait_us",
      "queue_limit", "queue_budget_us", "admission.burn_max", "slo_p99_ms",
      "drill.kind", "drill.severity", "drill.workers", "drill.action",
  };
  return keys;
}

ServingConfig serving_from_config(const core::KeyValueConfig& cfg) {
  cfg.validate_keys(serving_config_keys());
  ServingConfig sc;
  if (cfg.has("models")) sc.models = split_ids(cfg.str("models"));
  {
    std::set<std::string> seen;
    for (const std::string& id : sc.models)
      if (!seen.insert(id).second)
        throw std::runtime_error("serving config: duplicate model id \"" + id +
                                 "\"");
  }
  sc.chips = cfg.integer("chips", sc.chips);
  sc.live_slots = cfg.integer("live_slots", sc.live_slots);
  sc.workers = cfg.integer("workers", sc.workers);
  sc.max_batch = cfg.integer("max_batch", sc.max_batch);
  sc.max_wait_us = cfg.integer("max_wait_us", sc.max_wait_us);
  sc.queue_limit = cfg.integer("queue_limit", sc.queue_limit);
  sc.queue_budget_us = cfg.integer("queue_budget_us", sc.queue_budget_us);
  sc.admission_burn_max = cfg.number("admission.burn_max", sc.admission_burn_max);
  sc.slo_p99_ms = cfg.number("slo_p99_ms", sc.slo_p99_ms);
  sc.drill_kind = cfg.str("drill.kind", sc.drill_kind);
  sc.drill_severity = cfg.number("drill.severity", sc.drill_severity);
  if (cfg.has("drill.workers")) {
    sc.drill_workers.clear();
    for (double v : cfg.numbers("drill.workers"))
      sc.drill_workers.push_back(static_cast<int64_t>(v));
  }
  sc.drill_action = cfg.str("drill.action", sc.drill_action);

  if (sc.models.empty())
    throw std::runtime_error("serving config: no models");
  if (sc.chips < 1 || sc.workers < 1 || sc.max_batch < 1)
    throw std::runtime_error(
        "serving config: chips, workers and max_batch must be >= 1");
  if (sc.max_wait_us < 0 || sc.live_slots < 0 || sc.queue_limit < 0 ||
      sc.queue_budget_us < 0 || sc.admission_burn_max < 0 || sc.slo_p99_ms < 0)
    throw std::runtime_error("serving config: negative threshold");
  if (sc.drill_action != "degrade" && sc.drill_action != "evict" &&
      sc.drill_action != "remap")
    throw std::runtime_error("serving config: drill.action must be degrade, "
                             "evict or remap (got \"" +
                             sc.drill_action + "\")");
  for (int64_t w : sc.drill_workers)
    if (w < 0 || w >= sc.workers)
      throw std::runtime_error("serving config: drill.workers index " +
                               std::to_string(w) + " outside [0, " +
                               std::to_string(sc.workers) + ")");
  return sc;
}

}  // namespace cn::runtime
