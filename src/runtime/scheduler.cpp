#include "runtime/scheduler.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "tensor/threadpool.h"

namespace cn::runtime {

int64_t effective_concurrency(int64_t requested, int64_t n) {
  int64_t c = requested;
  if (c <= 0) c = static_cast<int64_t>(ThreadPool::global().size());
  return std::max<int64_t>(1, std::min(c, std::max<int64_t>(1, n)));
}

void parallel_indexed(int64_t n, int64_t concurrency,
                      const std::function<void(int64_t)>& fn) {
  if (n <= 0) return;
  int64_t c = effective_concurrency(concurrency, n);
  // Inside a pool worker every parallel_for runs inline, so workers
  // provisioned here could never dispatch — degenerate to the serial loop.
  if (ThreadPool::current_thread_in_pool()) c = 1;
  // Job accounting is timing/count-only (no rng, no numeric effect): results
  // stay byte-identical with metrics on or off.
  obs::Counter& m_jobs = obs::metrics().counter("sched.jobs");
  if (c <= 1) {
    for (int64_t i = 0; i < n; ++i) {
      m_jobs.add(1);
      fn(i);
    }
    return;
  }

  std::atomic<int64_t> cursor{0};
  std::atomic<bool> failed{false};
  std::mutex err_mu;
  std::exception_ptr err;
  // Each drainer pulls the next unclaimed index until the range (or the run,
  // after a failure) is exhausted — dynamic load balancing across
  // heterogeneous jobs.
  auto drain = [&] {
    // One span per worker drain: the trace timeline shows per-worker
    // utilization (busy span length vs the call's wall clock).
    obs::Span worker_span("sched.worker", "sched");
    while (!failed.load(std::memory_order_relaxed)) {
      const int64_t i = cursor.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      m_jobs.add(1);
      try {
        fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lk(err_mu);
        if (!err) err = std::current_exception();
        failed.store(true, std::memory_order_relaxed);
      }
    }
  };
  auto run_on = [&](ThreadPool& pool) {
    pool.parallel_for(
        0, c,
        [&](int64_t lo, int64_t hi) {
          for (int64_t w = lo; w < hi; ++w) drain();
        },
        /*min_chunk=*/1);
  };
  ThreadPool& shared = ThreadPool::global();
  if (static_cast<int64_t>(shared.size()) >= c) {
    run_on(shared);
  } else {
    // The shared pool is narrower than the requested concurrency (1-core
    // box, or an explicit oversubscription request): give this call its own
    // workers so the knob still controls real in-flight jobs.
    ThreadPool own(static_cast<unsigned>(c));
    run_on(own);
  }
  if (err) std::rethrow_exception(err);
}

}  // namespace cn::runtime
