#include "runtime/chip_farm.h"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "exec/target.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "tensor/threadpool.h"

namespace cn::runtime {

ChipFarm::ChipFarm(const nn::Sequential& base, const analog::VariationModel& vm,
                   const ChipFarmOptions& opts)
    : base_(base.clone_model()), vm_(vm), crossbar_(false), opts_(opts) {
  if (opts.remap.enabled)
    throw std::invalid_argument(
        "ChipFarm: remapping needs crossbar mode (factor chips have no tiles)");
  if (!opts.target.empty())
    throw std::invalid_argument(
        "ChipFarm: execution targets need crossbar mode (factor chips run "
        "digitally)");
  init_slots();
}

ChipFarm::ChipFarm(const nn::Sequential& base, const analog::RramDeviceParams& dev,
                   const ChipFarmOptions& opts, analog::FaultList faults)
    : base_(base.clone_model()),
      dev_(dev),
      faults_(std::move(faults)),
      crossbar_(true),
      opts_(opts) {
  if (opts.first_site != 0 && faults_.empty())
    throw std::invalid_argument(
        "ChipFarm: crossbar first_site needs a fault list (no factor sites)");
  // Resolve eagerly: an unknown or unavailable target name must fail the
  // farm's construction, not the first chip materialization minutes later.
  if (!opts_.target.empty()) target_ = &exec::get_target(opts_.target);
  init_slots();
}

std::string ChipFarm::target_name() const {
  if (!crossbar_) return "";
  return target_ ? target_->name() : exec::default_target().name();
}

void ChipFarm::init_slots() {
  if (opts_.instances < 1)
    throw std::invalid_argument("ChipFarm: need at least one instance");
  int64_t live = opts_.max_live;
  if (live <= 0)
    live = std::min<int64_t>(opts_.instances,
                             std::max<int64_t>(1, ThreadPool::global().size()));
  live = std::min(live, opts_.instances);
  slots_.resize(static_cast<size_t>(live));
  if (crossbar_ && opts_.remap.active()) {
    remap_stats_.resize(static_cast<size_t>(opts_.instances));
    remap_stats_known_.assign(static_cast<size_t>(opts_.instances), 0);
  }
}

uint64_t ChipFarm::chip_seed(int64_t s) const {
  return mix64(opts_.seed ^ (0x9E3779B97F4A7C15ull * static_cast<uint64_t>(s + 1)));
}

nn::Sequential& ChipFarm::chip(int64_t s) {
  if (s < 0 || s >= opts_.instances)
    throw std::out_of_range("ChipFarm::chip: bad chip index");
  const int64_t slot = s % num_live();
  Slot& sl = slots_[static_cast<size_t>(slot)];
  if (sl.sample != s) {
    populate(slot, s);
    sl.sample = s;
  } else if (crossbar_) {
    // Re-arm the read-noise streams on every handout: a persistent slot must
    // not remember noise draws a previous evaluation consumed, or repeated
    // runs would depend on how many slots the farm keeps live.
    analog::set_read_seeds(*sl.model, read_seed(s));
  }
  return *sl.model;
}

uint64_t ChipFarm::read_seed(int64_t s) const {
  return mix64(chip_seed(s) ^ 0xC2B2AE3D27D4EB4Full);
}

void ChipFarm::populate(int64_t slot, int64_t s) {
  // Build accounting is count-only; the rng below is seeded before any metric
  // call and never reads from one, so chips are byte-identical either way.
  obs::metrics().counter("farm.chip_builds").add(1);
  obs::Span span("farm.populate", "farm");
  Slot& sl = slots_[static_cast<size_t>(slot)];
  Rng rng(chip_seed(s));
  if (crossbar_) {
    bool remapping = opts_.remap.active();
    // A drilled chip programs with the farm's faults plus the drill's,
    // in table order after the base list — identical to a farm built with
    // the combined list. The shared_ptrs copied here keep the models alive
    // through programming even if clear_drill() races this build.
    analog::FaultList effective = faults_;
    DrillEntry drill_entry;
    remap::RemapParams drill_remap;
    const remap::RemapParams* rp = remapping ? &opts_.remap : nullptr;
    {
      std::lock_guard<std::mutex> lk(drill_mu_);
      const auto it = drills_.find(s);
      if (it != drills_.end()) drill_entry = it->second;
    }
    for (const auto& m : drill_entry.models) effective.push_back(m.get());
    if (drill_entry.remap_repair && !remapping) {
      drill_remap.enabled = true;
      rp = &drill_remap;
      remapping = true;
    }
    sl.model = std::make_unique<nn::Sequential>(analog::program_to_crossbars(
        base_, dev_, rng, opts_.tile,
        effective.empty() ? nullptr : &effective, opts_.first_site, rp,
        target_));
    analog::set_read_seeds(*sl.model, read_seed(s));
    // remap_stats_ is sized only for farm-level remapping; a drill-only
    // repair still runs the controller but keeps no per-chip accounting.
    if (remapping && !remap_stats_.empty()) {
      remap_stats_[static_cast<size_t>(s)] = analog::collect_remap_stats(*sl.model);
      remap_stats_known_[static_cast<size_t>(s)] = 1;
      // Running totals of repair work across every chip build in the process
      // (gauges so snapshots read the current accumulation).
      const remap::RemapStats& st = remap_stats_[static_cast<size_t>(s)];
      obs::metrics().gauge("farm.remap.defects").add(static_cast<double>(st.defects));
      obs::metrics().gauge("farm.remap.absorbed").add(static_cast<double>(st.absorbed()));
      obs::metrics().gauge("farm.remap.residual").add(static_cast<double>(st.residual));
    }
    return;
  }
  if (!sl.model) sl.model = std::make_unique<nn::Sequential>(base_.clone_model());
  analog::perturb_from(*sl.model, vm_, rng, opts_.first_site);
}

remap::RemapStats ChipFarm::chip_remap_stats(int64_t s) {
  if (s < 0 || s >= opts_.instances)
    throw std::out_of_range("ChipFarm::chip_remap_stats: bad chip index");
  if (remap_stats_.empty()) return {};
  if (!remap_stats_known_[static_cast<size_t>(s)]) chip(s);
  return remap_stats_[static_cast<size_t>(s)];
}

void ChipFarm::drill(
    const std::vector<int64_t>& chips,
    std::vector<std::shared_ptr<const analog::FaultModel>> faults,
    bool remap_repair) {
  if (!crossbar_)
    throw std::invalid_argument(
        "ChipFarm::drill: fault drills need crossbar mode (factor chips have "
        "no devices to degrade)");
  if (faults.empty())
    throw std::invalid_argument("ChipFarm::drill: empty fault list");
  if (chips.empty())
    throw std::invalid_argument("ChipFarm::drill: empty chip list");
  for (int64_t s : chips)
    if (s < 0 || s >= opts_.instances)
      throw std::out_of_range("ChipFarm::drill: bad chip index " +
                              std::to_string(s));
  obs::metrics().counter("farm.drills").add(1);
  std::lock_guard<std::mutex> lk(drill_mu_);
  for (int64_t s : chips) drills_[s] = DrillEntry{faults, remap_repair};
}

void ChipFarm::clear_drill() {
  std::lock_guard<std::mutex> lk(drill_mu_);
  drills_.clear();
}

bool ChipFarm::drilled(int64_t s) const {
  std::lock_guard<std::mutex> lk(drill_mu_);
  return drills_.count(s) != 0;
}

void ChipFarm::invalidate(int64_t s) {
  if (s < 0 || s >= opts_.instances)
    throw std::out_of_range("ChipFarm::invalidate: bad chip index");
  Slot& sl = slots_[static_cast<size_t>(s % num_live())];
  if (sl.sample == s) sl.sample = -1;
  if (!remap_stats_known_.empty())
    remap_stats_known_[static_cast<size_t>(s)] = 0;
}

void ChipFarm::reconfigure(uint64_t seed, int64_t first_site) {
  if (crossbar_ && first_site != 0 && faults_.empty())
    throw std::invalid_argument(
        "ChipFarm: crossbar first_site needs a fault list (no factor sites)");
  opts_.seed = seed;
  opts_.first_site = first_site;
  for (Slot& sl : slots_) sl.sample = -1;
  if (!remap_stats_known_.empty())
    std::fill(remap_stats_known_.begin(), remap_stats_known_.end(), uint8_t{0});
}

}  // namespace cn::runtime
