// McEngine: sample-parallel Monte-Carlo accuracy evaluation over a ChipFarm.
//
// Replaces the sequential loop in the seed mc_accuracy: logical chips are
// strided across the farm's live slots and evaluated in parallel on the
// global thread pool (nested forward-pass parallelism runs inline, see
// ThreadPool::parallel_for). Because chip s is fully determined by
// chip_seed(s) and results reduce in chip order, McResult.samples is
// bit-identical for any thread count and any number of live slots.
//
// Execution-target selection rides the farm (ChipFarmOptions::target /
// exec::default_target()): the engine evaluates whatever target the farm's
// crossbar chips were lowered with, and bit-exact targets leave every
// McResult byte-identical by the registry's parity contract.
#pragma once

#include "core/montecarlo.h"
#include "core/sensitivity.h"
#include "data/dataset.h"
#include "runtime/chip_farm.h"

namespace cn::runtime {

struct McEngineOptions {
  int64_t batch_size = 128;
  /// 1 forces a fully serial loop (reference path); any other value uses the
  /// global thread pool, one task per live slot.
  int threads = 0;
};

class McEngine {
 public:
  /// Default per-point seed stride of sensitivity_sweep. Exported so
  /// callers that rebuild sweep points themselves (examples/fault_sweep's
  /// parallel sweep) stay bit-identical to the engine path by construction.
  static constexpr uint64_t kSweepSeedStride = 1000003ull;

  explicit McEngine(ChipFarm& farm, McEngineOptions opts = {});

  /// Accuracy statistics over every chip of the farm; samples[s] is chip s.
  core::McResult accuracy(const data::Dataset& test);

  /// The Fig. 9 sweep on top of the farm: point i re-keys the same chips
  /// with seed `base_seed + i*seed_stride` and injection start site i, then
  /// measures accuracy. Matches core::sensitivity_sweep's seeding.
  std::vector<core::SensitivityPoint> sensitivity_sweep(
      const data::Dataset& test, int64_t num_sites, uint64_t base_seed,
      uint64_t seed_stride = kSweepSeedStride);

 private:
  ChipFarm& farm_;
  McEngineOptions opts_;
};

}  // namespace cn::runtime
