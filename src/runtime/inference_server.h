// InferenceServer: a micro-batching request scheduler over a ChipFarm.
//
// Clients submit single inputs and get a std::future for the model output;
// worker threads coalesce queued requests into batches (up to max_batch, or
// whatever arrived within max_wait_us of the oldest pending request) and run
// them through a dedicated chip instance. This is the serving shape of
// graph-level inference runtimes (program once, batch aggressively, schedule
// across a pool) applied to the analog-chip simulator: batching feeds the
// crossbar matmul path whole tile passes instead of per-request MVMs.
//
// Execution-target selection rides the farm (ChipFarmOptions::target /
// exec::default_target()): workers serve through whatever target the farm's
// crossbar chips were lowered with — swapping targets swaps the served
// kernels without touching the scheduler.
//
// Latency/throughput counters are kept per server and snapshot via stats();
// per-request enqueue->complete latency feeds an obs::LatencyHistogram, so
// the snapshot carries exact-rank p50/p99/p999 percentiles. The server also
// publishes process-wide metrics (server.requests / server.batches counters,
// a server.queue_depth gauge, server.latency_us and server.batch_size
// histograms) into obs::MetricsRegistry — see docs/OBSERVABILITY.md.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/slo.h"
#include "runtime/chip_farm.h"
#include "tensor/tensor.h"

namespace cn::runtime {

struct InferenceServerOptions {
  int64_t max_batch = 32;     // coalesce at most this many requests
  int64_t max_wait_us = 2000; // flush a partial batch after this long
  int workers = 1;            // worker w runs chips on farm slot w (clamped
                              // to the farm's live slots)
  // Latency objective: p99 < slo_p99_ms over a slo_window_s sliding window.
  // 0 adopts the process default (obs::default_slo_p99_ms(), set by
  // --slo-p99-ms / the `slo_p99_ms` campaign key / CORRECTNET_SLO_P99_MS);
  // if that is also 0 the server runs without SLO tracking.
  double slo_p99_ms = 0;
  double slo_window_s = 60;
  // Model id for multi-model serving (ModelRouter sets it): labels every
  // server.* metric as {model=<id>} and tags the /statusz section. Empty =
  // unlabeled single-model metrics (the pre-router names).
  std::string model;
  // Admission control. All three gates default off; any non-zero value
  // arms admission and registers a /healthz probe reflecting accepting().
  //  - queue_limit: reject once the queue holds this many requests
  //  - queue_budget_us: reject once estimated queue wait (depth x EWMA
  //    per-request service time / active workers) exceeds this budget
  //  - admission_burn_max: reject while the SLO burn rate exceeds this
  //    (requires an SLO objective; the tracker turns from a read-out into
  //    a control input). Burn is read from the last computed window —
  //    stats()/scrape polls advance it.
  // Rejections resolve the returned future with a typed Overloaded error —
  // fast, never growing the queue.
  int64_t queue_limit = 0;
  int64_t queue_budget_us = 0;
  double admission_burn_max = 0;
};

/// Typed overload rejection: admission control resolves the submitted
/// request's future with this error instead of queueing it.
class Overloaded : public std::runtime_error {
 public:
  Overloaded(std::string model, int64_t queue_depth, double est_wait_us,
             const std::string& reason);
  const std::string& model() const noexcept { return model_; }
  int64_t queue_depth() const noexcept { return queue_depth_; }
  double est_wait_us() const noexcept { return est_wait_us_; }

 private:
  std::string model_;
  int64_t queue_depth_;
  double est_wait_us_;
};

/// A serve-path fault drill: degrade, remap-repair, or evict N of the
/// server's M workers mid-traffic (see InferenceServer::drill). Fault
/// models are shared-owned so drill specs built from faultsim::FaultSpec
/// outlive the spec object.
struct DrillSpec {
  enum class Action {
    kDegrade,  // rebuild the worker's chip with the faults injected
    kRemap,    // kDegrade + run the fault-aware remap repair on the chip
    kEvict,    // take the worker out of rotation (siblings absorb its load)
  };
  Action action = Action::kDegrade;
  std::vector<int> workers;  // worker indices to afflict
  // Fault models stacked onto the farm's own list (required for kDegrade /
  // kRemap; ignored by kEvict). faultsim::FaultSpec::models is this shape.
  std::vector<std::shared_ptr<const analog::FaultModel>> faults;
};

struct ServerStats {
  uint64_t requests = 0;       // completed requests
  uint64_t batches = 0;        // forward passes executed
  uint64_t full_batches = 0;   // batches that hit max_batch
  double total_latency_us = 0; // submit -> completion, summed over requests
  double wall_seconds = 0;     // first submit -> last completion
  // Enqueue->complete latency percentiles from the server's histogram
  // (exact-rank extraction, see obs::LatencyHistogram); 0 until the first
  // request completes.
  double p50_latency_us = 0;
  double p99_latency_us = 0;
  double p999_latency_us = 0;
  double max_latency_us = 0;
  // SLO status (obs::SloTracker over the server's histogram); slo_configured
  // false when no objective is set, and the other slo_ fields stay 0.
  bool slo_configured = false;
  double slo_p99_ms = 0;          // the objective
  double slo_window_p99_us = 0;   // p99 over the sliding window
  double slo_burn_rate = 0;       // error-budget burn (1.0 = at budget)
  // Serving-policy state.
  std::string model;              // "" = single-model server
  bool admission_configured = false;
  bool accepting = true;          // current admission state (healthz input)
  uint64_t rejected = 0;          // Overloaded-rejected submits
  int64_t queue_depth = 0;        // queued requests at snapshot time
  int64_t max_queue_depth = 0;    // deepest the queue has ever been
  double est_wait_us = 0;         // current estimated queue wait
  // Fault-drill state.
  int active_workers = 0;         // workers in rotation (not evicted)
  int drilled_workers = 0;        // workers serving a degraded/remapped chip
  uint64_t drills = 0;            // drill() invocations

  double avg_batch() const {
    return batches ? static_cast<double>(requests) / static_cast<double>(batches) : 0.0;
  }
  double avg_latency_us() const {
    return requests ? total_latency_us / static_cast<double>(requests) : 0.0;
  }
  double throughput_rps() const {
    return wall_seconds > 0 ? static_cast<double>(requests) / wall_seconds : 0.0;
  }

  /// Human-readable multi-line snapshot (requests/batches, throughput, avg
  /// plus percentile latencies) — the one formatting of these numbers, so
  /// demos and benches stop re-deriving them.
  std::string summary() const;
};

class InferenceServer {
 public:
  InferenceServer(ChipFarm& farm, const InferenceServerOptions& opts = {});
  ~InferenceServer();  // drains the queue, then joins the workers

  InferenceServer(const InferenceServer&) = delete;
  InferenceServer& operator=(const InferenceServer&) = delete;

  /// Enqueues one input (shape = model input without the batch dimension,
  /// e.g. (C,H,W)); the future resolves to the model output row for it.
  /// Every queued input must share one shape; mismatches and submits after
  /// shutdown() throw.
  std::future<Tensor> submit(Tensor input);

  /// Processes every queued request, then stops the workers. Idempotent;
  /// also called by the destructor. The last live server in the process
  /// clears the global exposition server's readiness — /healthz must stop
  /// saying "ok" once nothing can serve.
  void shutdown();

  /// Applies a fault drill mid-traffic: the afflicted workers rebuild their
  /// chips (with the drill faults injected, and remap repair for kRemap)
  /// between batches on their own threads — in-flight and queued requests
  /// are never failed, siblings keep draining the shared queue meanwhile.
  /// kEvict parks the workers instead. Throws if the drill would leave no
  /// active worker, if a worker index is out of range, or (for fault
  /// actions) if the farm is not a crossbar farm.
  void drill(const DrillSpec& spec);
  /// Lifts every drill: evicted workers rejoin, degraded chips rebuild
  /// clean on their next batch.
  void undrill();

  /// Current admission state: false while admission control is rejecting
  /// (flips back once the queue drains under its limits). Mirrored into the
  /// /healthz probe the server registers when admission is configured.
  bool accepting() const { return accepting_.load(std::memory_order_relaxed); }

  const std::string& model() const { return opts_.model; }

  ServerStats stats() const;

 private:
  struct Request {
    Tensor input;
    std::promise<Tensor> promise;
    std::chrono::steady_clock::time_point enqueued;
  };

  // Per-worker drill control. epoch bumps tell the worker to re-fetch its
  // chip from the farm (rebuilds happen on the worker's own thread, between
  // batches, honoring the farm threading contract); evicted parks it.
  struct WorkerCtl {
    std::atomic<uint64_t> epoch{0};
    std::atomic<bool> evicted{false};
    std::atomic<bool> drilled{false};
  };

  void worker_loop(int worker);
  void run_batch(nn::Sequential& chip, std::vector<Request>& batch);
  // Estimated queue wait for `depth` queued requests, from the EWMA
  // per-request service time and the active worker count.
  double estimate_wait_us(int64_t depth) const;
  // The admission decision for the current queue state; returns the gate
  // that fired (nullptr = admit). Caller holds mu_.
  const char* admission_reject_reason(int64_t depth, double* est_out) const;
  int count_active_workers() const;

  ChipFarm& farm_;
  InferenceServerOptions opts_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Request> queue_;
  Shape input_shape_;  // fixed by the first submit
  bool stop_ = false;

  mutable std::mutex stats_mu_;
  ServerStats stats_;
  std::chrono::steady_clock::time_point first_submit_;
  std::chrono::steady_clock::time_point last_done_;
  bool saw_submit_ = false;

  // Admission state. accepting_ is the /healthz probe input; the EWMA
  // per-request service time feeds the queue-wait estimate (relaxed atomics:
  // concurrent worker updates may interleave, fine for an estimate).
  std::atomic<bool> accepting_{true};
  std::atomic<double> ewma_req_us_{0};
  int64_t max_queue_depth_ = 0;  // guarded by mu_

  // Drill state: one ctl per worker (unique_ptr: atomics don't move), plus
  // the lifecycle flags for the refcounted exposition readiness and the
  // registered healthz probe.
  std::vector<std::unique_ptr<WorkerCtl>> worker_ctl_;
  std::atomic<uint64_t> drill_count_{0};
  bool lifecycle_released_ = false;  // guarded by mu_
  int healthz_probe_ = 0;            // 0 = none registered

  // Per-server latency histogram backing the stats() percentiles (always
  // recording — it is a product feature, not optional instrumentation), plus
  // cached handles into the process-wide registry (gated by its enabled
  // flag). Instrumentation is timing-only: no rng, no numeric-path effect.
  obs::LatencyHistogram latency_us_;
  obs::Counter& m_requests_;
  obs::Counter& m_batches_;
  obs::Counter& m_rejected_;
  obs::Counter& m_drills_;
  obs::Gauge& m_queue_depth_;
  obs::Gauge& m_workers_active_;
  obs::LatencyHistogram& m_latency_us_;
  obs::LatencyHistogram& m_batch_size_;

  // SLO tracking over latency_us_, when an objective is configured. stats()
  // feeds the tracker (the scrape path calls stats(), so the window advances
  // with every /statusz hit and every explicit stats() poll).
  std::unique_ptr<obs::SloTracker> slo_;
  int statusz_section_ = 0;  // 0 = none registered

  std::vector<std::thread> workers_;
};

}  // namespace cn::runtime
