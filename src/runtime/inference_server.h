// InferenceServer: a micro-batching request scheduler over a ChipFarm.
//
// Clients submit single inputs and get a std::future for the model output;
// worker threads coalesce queued requests into batches (up to max_batch, or
// whatever arrived within max_wait_us of the oldest pending request) and run
// them through a dedicated chip instance. This is the serving shape of
// graph-level inference runtimes (program once, batch aggressively, schedule
// across a pool) applied to the analog-chip simulator: batching feeds the
// crossbar matmul path whole tile passes instead of per-request MVMs.
//
// Execution-target selection rides the farm (ChipFarmOptions::target /
// exec::default_target()): workers serve through whatever target the farm's
// crossbar chips were lowered with — swapping targets swaps the served
// kernels without touching the scheduler.
//
// Latency/throughput counters are kept per server and snapshot via stats();
// per-request enqueue->complete latency feeds an obs::LatencyHistogram, so
// the snapshot carries exact-rank p50/p99/p999 percentiles. The server also
// publishes process-wide metrics (server.requests / server.batches counters,
// a server.queue_depth gauge, server.latency_us and server.batch_size
// histograms) into obs::MetricsRegistry — see docs/OBSERVABILITY.md.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/slo.h"
#include "runtime/chip_farm.h"
#include "tensor/tensor.h"

namespace cn::runtime {

struct InferenceServerOptions {
  int64_t max_batch = 32;     // coalesce at most this many requests
  int64_t max_wait_us = 2000; // flush a partial batch after this long
  int workers = 1;            // worker w runs chips on farm slot w (clamped
                              // to the farm's live slots)
  // Latency objective: p99 < slo_p99_ms over a slo_window_s sliding window.
  // 0 adopts the process default (obs::default_slo_p99_ms(), set by
  // --slo-p99-ms / the `slo_p99_ms` campaign key / CORRECTNET_SLO_P99_MS);
  // if that is also 0 the server runs without SLO tracking.
  double slo_p99_ms = 0;
  double slo_window_s = 60;
};

struct ServerStats {
  uint64_t requests = 0;       // completed requests
  uint64_t batches = 0;        // forward passes executed
  uint64_t full_batches = 0;   // batches that hit max_batch
  double total_latency_us = 0; // submit -> completion, summed over requests
  double wall_seconds = 0;     // first submit -> last completion
  // Enqueue->complete latency percentiles from the server's histogram
  // (exact-rank extraction, see obs::LatencyHistogram); 0 until the first
  // request completes.
  double p50_latency_us = 0;
  double p99_latency_us = 0;
  double p999_latency_us = 0;
  double max_latency_us = 0;
  // SLO status (obs::SloTracker over the server's histogram); slo_configured
  // false when no objective is set, and the other slo_ fields stay 0.
  bool slo_configured = false;
  double slo_p99_ms = 0;          // the objective
  double slo_window_p99_us = 0;   // p99 over the sliding window
  double slo_burn_rate = 0;       // error-budget burn (1.0 = at budget)

  double avg_batch() const {
    return batches ? static_cast<double>(requests) / static_cast<double>(batches) : 0.0;
  }
  double avg_latency_us() const {
    return requests ? total_latency_us / static_cast<double>(requests) : 0.0;
  }
  double throughput_rps() const {
    return wall_seconds > 0 ? static_cast<double>(requests) / wall_seconds : 0.0;
  }

  /// Human-readable multi-line snapshot (requests/batches, throughput, avg
  /// plus percentile latencies) — the one formatting of these numbers, so
  /// demos and benches stop re-deriving them.
  std::string summary() const;
};

class InferenceServer {
 public:
  InferenceServer(ChipFarm& farm, const InferenceServerOptions& opts = {});
  ~InferenceServer();  // drains the queue, then joins the workers

  InferenceServer(const InferenceServer&) = delete;
  InferenceServer& operator=(const InferenceServer&) = delete;

  /// Enqueues one input (shape = model input without the batch dimension,
  /// e.g. (C,H,W)); the future resolves to the model output row for it.
  /// Every queued input must share one shape; mismatches and submits after
  /// shutdown() throw.
  std::future<Tensor> submit(Tensor input);

  /// Processes every queued request, then stops the workers. Idempotent;
  /// also called by the destructor.
  void shutdown();

  ServerStats stats() const;

 private:
  struct Request {
    Tensor input;
    std::promise<Tensor> promise;
    std::chrono::steady_clock::time_point enqueued;
  };

  void worker_loop(int worker);
  void run_batch(nn::Sequential& chip, std::vector<Request>& batch);

  ChipFarm& farm_;
  InferenceServerOptions opts_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Request> queue_;
  Shape input_shape_;  // fixed by the first submit
  bool stop_ = false;

  mutable std::mutex stats_mu_;
  ServerStats stats_;
  std::chrono::steady_clock::time_point first_submit_;
  std::chrono::steady_clock::time_point last_done_;
  bool saw_submit_ = false;

  // Per-server latency histogram backing the stats() percentiles (always
  // recording — it is a product feature, not optional instrumentation), plus
  // cached handles into the process-wide registry (gated by its enabled
  // flag). Instrumentation is timing-only: no rng, no numeric-path effect.
  obs::LatencyHistogram latency_us_;
  obs::Counter& m_requests_;
  obs::Counter& m_batches_;
  obs::Gauge& m_queue_depth_;
  obs::LatencyHistogram& m_latency_us_;
  obs::LatencyHistogram& m_batch_size_;

  // SLO tracking over latency_us_, when an objective is configured. stats()
  // feeds the tracker (the scrape path calls stats(), so the window advances
  // with every /statusz hit and every explicit stats() poll).
  std::unique_ptr<obs::SloTracker> slo_;
  int statusz_section_ = 0;  // 0 = none registered

  std::vector<std::thread> workers_;
};

}  // namespace cn::runtime
