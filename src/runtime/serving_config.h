// Serving-policy configuration: the key=value surface for standing up a
// ModelRouter deployment (model list, per-lane scheduler shape, admission
// control, the shared live-slot budget, and an optional fault drill to
// rehearse against live traffic).
//
// Follows the campaign-config contract (src/faultsim/campaign.cpp):
// serving_config_keys() is the single source of truth — validate_keys
// enforces it at parse time and tests/test_config.cpp diffs the
// docs/CONFIG.md serving table against it, so an undocumented key (or a
// documented ghost key) fails tier-1. Consumed by `serve_demo --config`.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/config.h"

namespace cn::runtime {

struct ServingConfig {
  std::vector<std::string> models = {"default"};  // one lane per id
  int64_t chips = 2;           // farm instances per lane
  int64_t live_slots = 0;      // shared live-slot budget; 0 = uncapped
  int64_t workers = 2;         // per-lane worker threads
  int64_t max_batch = 16;      // per-lane batch coalescing cap
  int64_t max_wait_us = 1500;  // per-lane partial-batch flush deadline
  // Admission control (0 = each gate off; InferenceServerOptions semantics).
  int64_t queue_limit = 0;
  int64_t queue_budget_us = 0;
  double admission_burn_max = 0;
  double slo_p99_ms = 0;  // per-lane SLO objective; 0 = process default
  // Fault drill: injected mid-traffic by serve_demo when kind is non-empty.
  std::string drill_kind;            // "" = no drill; faultsim::make_fault kinds
  double drill_severity = 0;
  std::vector<int64_t> drill_workers = {0};  // worker indices to afflict
  std::string drill_action = "remap";        // degrade | evict | remap
};

/// The declared serving key set (docs/CONFIG.md serving table, test-enforced).
const std::vector<std::string>& serving_config_keys();

/// Builds a ServingConfig from a parsed key=value file. Unknown keys, empty
/// or duplicate model ids, non-positive scheduler knobs, negative admission
/// thresholds, and an unknown drill.action all throw.
ServingConfig serving_from_config(const core::KeyValueConfig& cfg);

}  // namespace cn::runtime
