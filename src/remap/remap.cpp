#include "remap/remap.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace cn::remap {

namespace {

// Working view of one defect while planning: target and actual difference
// contributions of its cell, in conductance units (the weight scale is one
// common factor per array, so ranking by conductance error ranks by weight
// error too).
struct Work {
  size_t fix_index;     // into RemapPlan::fixes
  int64_t row, col;
  double error;         // |d_actual - d_target| this device leaves behind
  bool repaired = false;
};

}  // namespace

RemapPlan RemapController::plan(const DefectMap& defects, int64_t rows,
                                int64_t cols, const float* g_pos_pre,
                                const float* g_neg_pre, float g_min,
                                float g_max) const {
  RemapPlan out;
  if (defects.empty()) return out;
  if (rows < 1 || cols < 1)
    throw std::invalid_argument("RemapController: empty tile");

  out.fixes.reserve(defects.size());
  const int64_t n = rows * cols;

  // Which devices are defective (a swap partner must be healthy). Two
  // passes: mark, then classify — the defect map order is preserved in
  // `fixes` so plans are reproducible for identical maps.
  std::vector<uint8_t> stuck_pos(static_cast<size_t>(n), 0);
  std::vector<uint8_t> stuck_neg(static_cast<size_t>(n), 0);
  for (const DefectCell& d : defects) {
    if (d.index < 0 || d.index >= n)
      throw std::out_of_range("RemapController: defect outside tile");
    (d.neg ? stuck_neg : stuck_pos)[static_cast<size_t>(d.index)] = 1;
  }

  std::vector<Work> residual;
  for (const DefectCell& d : defects) {
    PlannedFix fix;
    fix.cell = d;
    const size_t i = static_cast<size_t>(d.index);
    const float target = d.neg ? g_neg_pre[i] : g_pos_pre[i];
    // The error this device alone injects into the pair difference.
    const double err = std::abs(static_cast<double>(d.stuck_g) - target);
    if (d.stuck_g == target) {
      fix.fix = Fix::kBenign;
    } else if (params_.pair_swap &&
               !(d.neg ? stuck_pos : stuck_neg)[i]) {
      // Partner healthy: restore the pair difference by moving the error
      // onto the partner. G+ stuck: G-' = G-_target + (stuck - G+_target);
      // G- stuck: G+' = G+_target + (stuck - G-_target). Feasible when the
      // new partner conductance is still physical.
      const float partner_target = d.neg ? g_pos_pre[i] : g_neg_pre[i];
      const float shift = d.stuck_g - target;
      const float partner_new = partner_target + shift;
      if (partner_new >= g_min && partner_new <= g_max) {
        fix.fix = Fix::kPairSwap;
        fix.partner_g = partner_new;
      }
    }
    if (fix.fix == Fix::kResidual) {
      Work w;
      w.fix_index = out.fixes.size();
      w.row = d.index / cols;
      w.col = d.index % cols;
      w.error = err;
      residual.push_back(w);
    }
    out.fixes.push_back(fix);
  }
  if (residual.empty()) return out;

  // Cost-ranked greedy spare assignment: rows and columns compete for the
  // repair that removes the most residual error; spending a line repairs
  // every residual defect on it, so both tallies shrink as lines go.
  std::vector<double> row_cost(static_cast<size_t>(rows), 0.0);
  std::vector<double> col_cost(static_cast<size_t>(cols), 0.0);
  for (const Work& w : residual) {
    row_cost[static_cast<size_t>(w.row)] += w.error;
    col_cost[static_cast<size_t>(w.col)] += w.error;
  }
  int64_t rows_left = std::max<int64_t>(0, params_.spare_rows);
  int64_t cols_left = std::max<int64_t>(0, params_.spare_cols);
  auto best = [](const std::vector<double>& cost) {
    int64_t arg = -1;
    double top = 0.0;
    for (size_t i = 0; i < cost.size(); ++i)
      if (cost[i] > top) {  // strict: lowest index wins ties, zero never picked
        top = cost[i];
        arg = static_cast<int64_t>(i);
      }
    return std::make_pair(arg, top);
  };
  while (rows_left > 0 || cols_left > 0) {
    const auto [r, rcost] = rows_left > 0 ? best(row_cost) : std::make_pair(int64_t{-1}, 0.0);
    const auto [c, ccost] = cols_left > 0 ? best(col_cost) : std::make_pair(int64_t{-1}, 0.0);
    if (r < 0 && c < 0) break;  // no residual error left to repair
    const bool take_row = r >= 0 && (c < 0 || rcost >= ccost);
    for (Work& w : residual) {
      if (w.repaired || (take_row ? w.row != r : w.col != c)) continue;
      w.repaired = true;
      out.fixes[w.fix_index].fix = take_row ? Fix::kSpareRow : Fix::kSpareCol;
      row_cost[static_cast<size_t>(w.row)] -= w.error;
      col_cost[static_cast<size_t>(w.col)] -= w.error;
    }
    // Kill rounding residue so the spent line can't be picked again.
    if (take_row) {
      row_cost[static_cast<size_t>(r)] = 0.0;
      out.spare_row_lines.push_back(r);
      --rows_left;
    } else {
      col_cost[static_cast<size_t>(c)] = 0.0;
      out.spare_col_lines.push_back(c);
      --cols_left;
    }
  }
  return out;
}

RemapStats RemapController::apply(const RemapPlan& plan, float* g_pos,
                                  float* g_neg, const float* g_pos_pre,
                                  const float* g_neg_pre) const {
  RemapStats st;
  st.defects = static_cast<int64_t>(plan.fixes.size());
  st.spare_rows_used = static_cast<int64_t>(plan.spare_row_lines.size());
  st.spare_cols_used = static_cast<int64_t>(plan.spare_col_lines.size());
  for (const PlannedFix& f : plan.fixes) {
    const size_t i = static_cast<size_t>(f.cell.index);
    switch (f.fix) {
      case Fix::kBenign:
        ++st.benign;
        break;
      case Fix::kPairSwap:
        // The stuck device keeps its stuck value; the healthy partner takes
        // the compensating conductance.
        (f.cell.neg ? g_pos : g_neg)[i] = f.partner_g;
        ++st.swapped;
        break;
      case Fix::kSpareRow:
      case Fix::kSpareCol:
        // The line now lives on a healthy spare programmed with the same
        // targets: the defective device reads back its pre-fault value.
        (f.cell.neg ? g_neg : g_pos)[i] = (f.cell.neg ? g_neg_pre : g_pos_pre)[i];
        ++st.spared;
        break;
      case Fix::kResidual:
        ++st.residual;
        break;
    }
  }
  return st;
}

}  // namespace cn::remap
