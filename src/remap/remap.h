// Fault-aware remapping controller (ROADMAP: "StuckAtFault knows the defect
// map at program time; a real controller would remap or re-program around
// stuck cells").
//
// RRAM macros ship with spare wordlines/bitlines and program-verify loops;
// when the defect map of a tile is known before programming, a mapping
// controller absorbs hard defects instead of writing weights onto dead
// devices. This module implements the two standard repair moves on top of
// the differential-pair crossbar model:
//
//  * differential-pair swap — a weight w = s·(G⁺ − G⁻) only fixes the
//    *difference* of the pair. If one device is stuck, the healthy partner
//    can often be re-programmed to restore the exact target difference
//    (e.g. G⁺ stuck at g_max, w recovered via G⁻ = g_max − w/s). Feasible
//    whenever the required partner conductance stays inside [g_min, g_max]
//    and the partner itself is healthy; costs no spare resources.
//  * spare-line redundancy — defects no swap can fix are ranked by the
//    conductance error they leave behind, and whole tile rows/columns are
//    greedily routed to spare lines (budget `spare_rows`/`spare_cols` per
//    tile, worst line first). A logical line routed to a healthy spare
//    carries exactly the values the defective line was programmed with, so
//    the repair is modeled as restoring the line's defective cells to their
//    pre-fault conductances — output-equivalent to physically adding the
//    spare line (an unused spare pair contributes G⁺ = G⁻ = g_min, i.e. a
//    bitwise-zero differential current), while keeping the array shape and
//    the programming-rng stream identical to an unremapped chip.
//
// Everything here is a deterministic, rng-free function of the defect map
// and the pre-fault conductances: remapped chips stay pure functions of
// their chip seed, `matmul == matvec` bit-exactness is untouched (the plan
// is applied before the batched double-precision copies are built), and a
// zero-defect map yields an empty plan without a single rng draw.
#pragma once

#include <cstdint>
#include <vector>

namespace cn::remap {

/// One hard-defective physical device inside a tile, discovered at program
/// time: `index` is the row-major cell index of the differential pair, `neg`
/// selects the G⁻ device, `stuck_g` is the conductance the device is pinned
/// at. Produced by fault models that know their defect map (StuckAtFault via
/// analog::FaultModel::apply_mapped).
struct DefectCell {
  int64_t index = 0;
  bool neg = false;
  float stuck_g = 0.0f;
};
using DefectMap = std::vector<DefectCell>;

/// Remapping knobs, plumbed from campaign/CLI config down to every tile.
struct RemapParams {
  bool enabled = false;    // master switch (the campaign's protection axis)
  int64_t spare_rows = 2;  // spare wordlines per tile
  int64_t spare_cols = 2;  // spare bitlines per tile
  bool pair_swap = true;   // allow differential-pair partner re-programming

  bool active() const {
    return enabled && (spare_rows > 0 || spare_cols > 0 || pair_swap);
  }
};

/// How the controller disposed of one defective device.
enum class Fix : uint8_t {
  kBenign = 0,    // stuck value equals the programmed target: no error
  kPairSwap = 1,  // partner device re-programmed to restore the difference
  kSpareRow = 2,  // cell's wordline routed to a spare row
  kSpareCol = 3,  // cell's bitline routed to a spare column
  kResidual = 4,  // unrepaired: defect stays in the programmed array
};

/// One planned disposition, defect-map order.
struct PlannedFix {
  DefectCell cell;
  Fix fix = Fix::kResidual;
  float partner_g = 0.0f;  // kPairSwap: new conductance of the partner device
};

/// The per-tile repair plan: pure data, applied by RemapController::apply.
struct RemapPlan {
  std::vector<PlannedFix> fixes;
  std::vector<int64_t> spare_row_lines;  // tile rows routed to spares
  std::vector<int64_t> spare_col_lines;  // tile cols routed to spares
  bool empty() const { return fixes.empty(); }
};

/// Repair accounting, summable across tiles/arrays/chips (CampaignReport's
/// absorbed-defect counts). `defects` counts defective physical devices;
/// every defect lands in exactly one of benign/swapped/spared/residual.
struct RemapStats {
  int64_t defects = 0;
  int64_t benign = 0;    // no error to begin with
  int64_t swapped = 0;   // absorbed by differential-pair swap
  int64_t spared = 0;    // absorbed by spare-line redundancy
  int64_t residual = 0;  // left in the array
  int64_t spare_rows_used = 0;
  int64_t spare_cols_used = 0;

  /// Defects the controller actively repaired (the headline number).
  int64_t absorbed() const { return swapped + spared; }

  RemapStats& operator+=(const RemapStats& o) {
    defects += o.defects;
    benign += o.benign;
    swapped += o.swapped;
    spared += o.spared;
    residual += o.residual;
    spare_rows_used += o.spare_rows_used;
    spare_cols_used += o.spare_cols_used;
    return *this;
  }
};

/// Plans and applies defect repairs for one tile. Stateless beyond its
/// params; both methods are deterministic and draw no randomness.
class RemapController {
 public:
  explicit RemapController(const RemapParams& params) : params_(params) {}

  /// Builds the repair plan for one (rows x cols) tile. `g_pos_pre` /
  /// `g_neg_pre` are the conductances *before* the defect-reporting model
  /// ran (the targets a repair restores — including any nonidealities
  /// applied earlier in the fault list); defect entries carry the stuck
  /// values.
  /// Phases: classify benign -> differential-pair swap -> cost-ranked greedy
  /// spare-line assignment (line cost = summed |difference error| of its
  /// unrepaired defects; worst line first, rows and columns competing;
  /// deterministic lowest-index tie-break).
  RemapPlan plan(const DefectMap& defects, int64_t rows, int64_t cols,
                 const float* g_pos_pre, const float* g_neg_pre, float g_min,
                 float g_max) const;

  /// Applies a plan to the post-fault conductances in place and returns the
  /// accounting. Swap fixes write the partner device; spare-line fixes
  /// restore the defective device to its pre-fault value (see file comment
  /// for why that is output-equivalent to a physical spare line).
  RemapStats apply(const RemapPlan& plan, float* g_pos, float* g_neg,
                   const float* g_pos_pre, const float* g_neg_pre) const;

  const RemapParams& params() const { return params_; }

 private:
  RemapParams params_;
};

}  // namespace cn::remap
