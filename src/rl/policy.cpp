#include "rl/policy.h"

#include <cmath>

#include "tensor/ops.h"

namespace cn::rl {

RnnPolicy::RnnPolicy(int64_t steps, int64_t actions, int64_t hidden, uint64_t seed)
    : steps_(steps),
      actions_(actions),
      hidden_(hidden),
      wx_(Shape{hidden, actions}, "policy.wx"),
      wh_(Shape{hidden, hidden}, "policy.wh"),
      bh_(Shape{hidden}, "policy.bh"),
      wo_(Shape{actions, hidden}, "policy.wo"),
      bo_(Shape{actions}, "policy.bo") {
  Rng rng(seed);
  const float sx = 1.0f / std::sqrt(static_cast<float>(actions));
  const float sh = 1.0f / std::sqrt(static_cast<float>(hidden));
  rng.fill_normal(wx_.value, 0.0f, sx);
  rng.fill_normal(wh_.value, 0.0f, sh * 0.5f);
  rng.fill_normal(wo_.value, 0.0f, sh);
}

Tensor RnnPolicy::step_forward(const Tensor& x, Tensor& h) const {
  Tensor pre = matvec(wx_.value, x);
  add_inplace(pre, matvec(wh_.value, h));
  add_inplace(pre, bh_.value);
  for (int64_t i = 0; i < pre.size(); ++i) pre[i] = std::tanh(pre[i]);
  h = pre;
  Tensor logits = matvec(wo_.value, h);
  add_inplace(logits, bo_.value);
  return softmax_rows(logits.reshaped({1, actions_})).reshaped({actions_});
}

RnnPolicy::Episode RnnPolicy::sample(Rng& rng) const {
  Episode ep;
  Tensor h({hidden_});
  Tensor x({actions_});
  for (int64_t t = 0; t < steps_; ++t) {
    Tensor probs = step_forward(x, h);
    // Categorical sample.
    double u = rng.uniform();
    int a = static_cast<int>(actions_) - 1;
    double cum = 0.0;
    for (int64_t i = 0; i < actions_; ++i) {
      cum += probs[i];
      if (u <= cum) {
        a = static_cast<int>(i);
        break;
      }
    }
    ep.actions.push_back(a);
    ep.log_prob += std::log(std::max(1e-12f, probs[a]));
    ep.h.push_back(h);
    ep.probs.push_back(probs);
    x.zero();
    x[a] = 1.0f;
  }
  return ep;
}

std::vector<int> RnnPolicy::greedy() const {
  std::vector<int> actions;
  Tensor h({hidden_});
  Tensor x({actions_});
  for (int64_t t = 0; t < steps_; ++t) {
    Tensor probs = step_forward(x, h);
    int a = 0;
    for (int64_t i = 1; i < actions_; ++i)
      if (probs[i] > probs[a]) a = static_cast<int>(i);
    actions.push_back(a);
    x.zero();
    x[a] = 1.0f;
  }
  return actions;
}

void RnnPolicy::accumulate_grad(const Episode& ep, float advantage,
                                float entropy_coef) {
  // dh carried backwards through time.
  Tensor dh({hidden_});
  for (int64_t t = steps_ - 1; t >= 0; --t) {
    const Tensor& probs = ep.probs[static_cast<size_t>(t)];
    const Tensor& h = ep.h[static_cast<size_t>(t)];
    const int a = ep.actions[static_cast<size_t>(t)];
    // d(-adv·logp)/dlogits = adv·(p - onehot(a));
    // d(-c·H)/dlogits = c·p∘(logp + H)  (entropy gradient).
    Tensor dlogits = probs;
    scale_inplace(dlogits, advantage);
    dlogits[a] -= advantage;
    if (entropy_coef > 0.0f) {
      double H = 0.0;
      for (int64_t i = 0; i < probs.size(); ++i)
        H -= probs[i] * std::log(std::max(1e-12f, probs[i]));
      for (int64_t i = 0; i < probs.size(); ++i)
        dlogits[i] += entropy_coef * probs[i] *
                      (std::log(std::max(1e-12f, probs[i])) + static_cast<float>(H));
    }
    // wo, bo grads: dlogits ⊗ h.
    for (int64_t i = 0; i < actions_; ++i) {
      bo_.grad[i] += dlogits[i];
      for (int64_t j = 0; j < hidden_; ++j)
        wo_.grad[i * hidden_ + j] += dlogits[i] * h[j];
    }
    // into hidden: dh += Wo^T dlogits
    add_inplace(dh, matvec_t(wo_.value, dlogits));
    // through tanh.
    Tensor dpre = dh;
    for (int64_t i = 0; i < hidden_; ++i) dpre[i] *= 1.0f - h[i] * h[i];
    // x_t = onehot(a_{t-1}) (zero at t=0); h_{t-1} from cache.
    Tensor x({actions_});
    if (t > 0) x[ep.actions[static_cast<size_t>(t - 1)]] = 1.0f;
    const Tensor* hprev = (t > 0) ? &ep.h[static_cast<size_t>(t - 1)] : nullptr;
    for (int64_t i = 0; i < hidden_; ++i) {
      bh_.grad[i] += dpre[i];
      for (int64_t j = 0; j < actions_; ++j)
        wx_.grad[i * actions_ + j] += dpre[i] * x[j];
      if (hprev) {
        for (int64_t j = 0; j < hidden_; ++j)
          wh_.grad[i * hidden_ + j] += dpre[i] * (*hprev)[j];
      }
    }
    // dh for the previous step: Wh^T dpre.
    dh = matvec_t(wh_.value, dpre);
  }
}

std::vector<nn::Param*> RnnPolicy::params() { return {&wx_, &wh_, &bh_, &wo_, &bo_}; }

}  // namespace cn::rl
