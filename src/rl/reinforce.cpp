#include "rl/reinforce.h"

#include "nn/optimizer.h"

namespace cn::rl {

ReinforceOutcome run_reinforce(RnnPolicy& policy, const RewardFn& reward,
                               const ReinforceConfig& cfg) {
  Rng rng(cfg.seed);
  nn::Adam opt(cfg.lr);
  auto params = policy.params();
  ReinforceOutcome out;
  float baseline = 0.0f;
  bool baseline_init = false;

  for (int it = 0; it < cfg.iterations; ++it) {
    RnnPolicy::Episode ep = policy.sample(rng);
    const float r = reward(ep.actions);
    out.reward_history.push_back(r);
    if (r > out.best_reward) {
      out.best_reward = r;
      out.best_actions = ep.actions;
    }
    if (!baseline_init) {
      baseline = r;
      baseline_init = true;
    }
    const float advantage = r - baseline;
    baseline = cfg.baseline_momentum * baseline + (1.0f - cfg.baseline_momentum) * r;

    nn::Optimizer::zero_grad(params);
    policy.accumulate_grad(ep, advantage, cfg.entropy_coef);
    nn::clip_grad_norm(params, 5.0f);
    opt.step(params);
  }
  return out;
}

}  // namespace cn::rl
