// REINFORCE trainer for the placement policy.
#pragma once

#include <functional>
#include <vector>

#include "rl/policy.h"

namespace cn::rl {

struct ReinforceConfig {
  int iterations = 40;
  float lr = 0.02f;
  float baseline_momentum = 0.7f;  // EMA reward baseline
  float entropy_coef = 0.01f;
  uint64_t seed = 77;
};

/// Evaluates an action sequence, returning its reward.
using RewardFn = std::function<float(const std::vector<int>&)>;

struct ReinforceOutcome {
  std::vector<int> best_actions;
  float best_reward = -1e30f;
  std::vector<float> reward_history;  // per iteration
};

/// Runs REINFORCE on `policy` against `reward`. Deterministic given the seed
/// and a deterministic reward function.
ReinforceOutcome run_reinforce(RnnPolicy& policy, const RewardFn& reward,
                               const ReinforceConfig& cfg);

}  // namespace cn::rl
