// RNN policy network for the compensation-placement search (paper Fig. 6).
//
// The agent emits one action per candidate layer: an index into a menu of
// filter ratios (S_i = generator filters / original filters, with ratio 0
// meaning "no compensation here"). The policy is a small Elman RNN whose
// input at step t is the one-hot of the previous action, trained with
// REINFORCE (see reinforce.h).
#pragma once

#include <cstdint>
#include <vector>

#include "nn/param.h"
#include "tensor/rng.h"

namespace cn::rl {

class RnnPolicy {
 public:
  /// steps = number of candidate layers; actions = ratio-menu size.
  RnnPolicy(int64_t steps, int64_t actions, int64_t hidden, uint64_t seed);

  struct Episode {
    std::vector<int> actions;            // one per step
    float log_prob = 0.0f;               // Σ log π(a_t | s_t)
    // caches for BPTT
    std::vector<Tensor> h;               // hidden states, per step
    std::vector<Tensor> probs;           // action distributions, per step
  };

  /// Samples an action sequence (stores caches for accumulate_grad).
  Episode sample(Rng& rng) const;

  /// Greedy (argmax) rollout — used to report the final chosen plan.
  std::vector<int> greedy() const;

  /// REINFORCE gradient for one episode: accumulates
  /// d/dθ [ -advantage · log π(a|θ) − entropy_coef · H(π) ] into param grads.
  void accumulate_grad(const Episode& ep, float advantage, float entropy_coef = 0.0f);

  std::vector<nn::Param*> params();

  int64_t steps() const { return steps_; }
  int64_t actions() const { return actions_; }

 private:
  /// One forward step; returns probs and updates h in place.
  Tensor step_forward(const Tensor& x, Tensor& h) const;

  int64_t steps_, actions_, hidden_;
  nn::Param wx_, wh_, bh_, wo_, bo_;
};

}  // namespace cn::rl
