// Weight-variation models for analog in-memory computing.
//
// The paper's model (Eq. 1-2): w = w_nominal * e^θ, θ ~ N(0, σ²), independent
// per weight — the standard lognormal RRAM programming-variation model.
// Additional models (multiplicative Gaussian, additive Gaussian) are provided
// for ablations and to demonstrate the framework's claimed generality
// ("can be applied into any analog platform by adapting the variation model").
#pragma once

#include <cstdint>
#include <string>

#include "nn/sequential.h"
#include "tensor/rng.h"
#include "tensor/tensor.h"

namespace cn::analog {

enum class VariationKind {
  kNone,                    // factors == 1 (useful for control runs)
  kLognormal,               // f = e^θ, θ ~ N(0, σ²)           (paper Eq. 1-2)
  kGaussianMultiplicative,  // f = 1 + N(0, σ)
  kGaussianAdditiveRel,     // w' = w + N(0, σ·w_max); expressed via factors
};

/// A sampled-per-chip multiplicative perturbation of analog weights.
struct VariationModel {
  VariationKind kind = VariationKind::kLognormal;
  float sigma = 0.0f;

  /// Factors f with w_eff = w ∘ f for a weight of the given shape.
  /// For kGaussianAdditiveRel the caller's weight is needed to convert the
  /// additive noise into equivalent factors, hence the weight argument.
  Tensor sample_factors(const Tensor& weight, Rng& rng) const;

  /// Samples factors and applies them to one site.
  void perturb(nn::PerturbableWeight& site, Rng& rng) const;

  /// E[e^θ] + 3·std(e^θ) for θ~N(0,σ²): the paper's 3-sigma bound on the
  /// lognormal factor used to derive λ in Eq. (10).
  static double lognormal_bound3(double sigma);

  std::string name() const;
};

/// Perturbs every analog site of the model (one "chip instance").
void perturb_all(nn::Sequential& model, const VariationModel& vm, Rng& rng);

/// Perturbs analog sites with index in [first_site, model end). Sites are in
/// execution order; used by the paper's Fig. 9 sensitivity sweep ("inject
/// variations from the i-th layer to the last layer").
void perturb_from(nn::Sequential& model, const VariationModel& vm, Rng& rng,
                  int64_t first_site);

/// Restores nominal weights everywhere.
void clear_variations(nn::Sequential& model);

}  // namespace cn::analog
