// Quantization primitives for the analog periphery: conductance levels
// (multi-level RRAM programming), DAC-limited inputs, ADC-limited outputs.
#pragma once

#include "tensor/tensor.h"

namespace cn::analog {

/// Uniform quantizer over [lo, hi] with `levels` steps (levels >= 2).
/// Values are clamped to the range first.
float quantize_uniform(float x, float lo, float hi, int levels);

/// Quantizes every element of t in place.
void quantize_tensor(Tensor& t, float lo, float hi, int levels);

/// DAC model: quantizes an input vector to `bits` resolution over its
/// observed [min, max] range. bits <= 0 disables quantization.
void dac_quantize(Tensor& x, int bits);

/// dac_quantize over a raw span; the batched crossbar path quantizes each
/// input row independently so it stays equivalent to per-vector matvec.
void dac_quantize_span(float* x, int64_t n, int bits);

/// ADC model: quantizes accumulated bitline currents to `bits` resolution
/// over [-full_scale, full_scale]. bits <= 0 disables quantization.
void adc_quantize(Tensor& currents, int bits, float full_scale);

/// Symmetric int8 quantizer over a strided span: scale = max |x| / 127,
/// q[i] = round(x[i * stride] / scale), clamped to [-127, 127] (the -128
/// code is unused so the grid stays symmetric, like the ADC's signed range).
/// Returns the scale; an all-zero span returns 0 with q zeroed. The int8
/// execution target quantizes both tile conductance differences and input
/// voltages with this.
float quantize_symmetric_int8(const float* x, int64_t n, int64_t stride,
                              int8_t* q);

}  // namespace cn::analog
