// RRAM crossbar simulator (paper §II, Fig. 1).
//
// Weights map to differential conductance pairs: w = s·(G⁺ − G⁻) with both
// conductances in [g_min, g_max]. MAC is Ohm's law + Kirchhoff's current law:
// applying input voltages on wordlines, each bitline accumulates
// I_j = Σ_i V_i · G_ij, and the digital periphery computes s·(I⁺_j − I⁻_j).
//
// Programming variation perturbs each programmed conductance with the
// lognormal model; optional multi-level programming quantizes conductances,
// and optional read noise / ADC quantization model the readout path. At zero
// variation and full precision, crossbar MVM equals the ideal matvec — a
// property test pins this down.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "analog/quant.h"
#include "analog/variation.h"
#include "remap/remap.h"
#include "tensor/rng.h"
#include "tensor/tensor.h"

namespace cn::exec {
class Target;
class TileExec;
struct Scratch;
}  // namespace cn::exec

namespace cn::analog {

/// Runtime ISA levels of the built-in simd kernel family. Since the batched
/// path moved to the execution-target registry (src/exec/), this enum and
/// the force/reset functions below are a thin shim over the "simd" family's
/// level selection (exec::simd) — kept because the forced-dispatch parity
/// tests and benches pin levels through it. Arrays lowered with a *pinned*
/// target (e.g. "simd-avx2") ignore the forced level by design; the default
/// "simd" target re-reads it on every call.
enum class SimdLevel : int { kGeneric = 0, kAvx2 = 1, kAvx512f = 2 };

/// Widest level this build + host can execute.
SimdLevel simd_max_level();

/// Pins the simd family's dispatch to `level` for subsequent matmuls (the
/// forced-dispatch parity tests). Returns false — leaving dispatch unchanged
/// — when the build or host cannot execute the level. Not synchronized with
/// concurrently running matmuls; flip it only between calls.
bool force_simd_level(SimdLevel level);

/// Restores runtime auto-selection.
void reset_simd_level();

/// The level the simd family's next auto-dispatched matmul will use.
SimdLevel current_simd_level();

/// Readout-periphery knobs of a crossbar tile: everything that perturbs or
/// quantizes the signal path at read time rather than at programming time.
/// Nested so device specs (and faultsim scenario overrides) can set or copy
/// the whole periphery in one assignment.
struct RramReadout {
  float read_sigma = 0.0f;  // per-read multiplicative Gaussian noise on currents
  int adc_bits = 0;         // >0: quantize accumulated currents
  int dac_bits = 0;         // >0: quantize input voltages
};

/// Physical device / periphery parameters of one crossbar tile.
struct RramDeviceParams {
  float g_min = 1e-6f;        // Siemens; off conductance
  float g_max = 1e-4f;        // Siemens; on conductance
  int conductance_levels = 0; // >0: multi-level cell quantization before variation
  float program_sigma = 0.0f; // lognormal σ applied to programmed conductance
  RramReadout readout;        // read noise / ADC / DAC periphery
};

/// Injection hook for device-fault and nonideality models (src/faultsim).
/// After a tile is programmed (level quantization + programming variation),
/// every model of a fault list transforms the conductance pair arrays in
/// place, in list order. Implementations must derive all randomness from the
/// passed Rng so chips stay seed-deterministic (runtime::ChipFarm
/// re-materializes chips from chip_seed alone, and bit-identical results
/// across thread/slot counts depend on it). Models with zero severity must
/// be true no-ops: no rng draws, no writes. Conductances are not re-clamped
/// by the caller (matching programming variation, which may also exceed
/// g_max); models are responsible for staying physical.
class FaultModel {
 public:
  virtual ~FaultModel() = default;

  /// Placement of one tile inside its CrossbarArray, in the (in, out)
  /// orientation: tile wordline r is array wordline row0 + r, tile bitline c
  /// is array bitline col0 + c.
  struct TileCtx {
    int64_t rows = 0, cols = 0;              // tile extent
    int64_t row0 = 0, col0 = 0;              // offset within the array
    int64_t array_rows = 0, array_cols = 0;  // full array extent
  };

  /// Adjusts device parameters before programming (e.g. temperature-scaled
  /// sigmas). Called once per CrossbarArray on its private copy.
  virtual void prepare_device(RramDeviceParams&) const {}

  /// Transforms the programmed conductances of one tile in place. g_pos and
  /// g_neg are row-major (rows x cols).
  virtual void apply(float* g_pos, float* g_neg, const TileCtx& ctx,
                     const RramDeviceParams& dev, Rng& rng) const = 0;

  /// Like apply(), but additionally records hard-defective devices into
  /// `defects` (nullable) for the fault-aware remapping controller. Models
  /// with a program-time defect map (StuckAtFault) override this; soft
  /// nonidealities have nothing discrete to report and inherit the default,
  /// which forwards to apply(). Overrides MUST draw from `rng` in exactly
  /// the same sequence as apply() so remapped and unremapped chips built
  /// from one seed see identical fault realizations (the campaign's
  /// matched-pair axis depends on it).
  virtual void apply_mapped(float* g_pos, float* g_neg, const TileCtx& ctx,
                            const RramDeviceParams& dev, Rng& rng,
                            remap::DefectMap* defects) const {
    (void)defects;
    apply(g_pos, g_neg, ctx, dev, rng);
  }

  /// Whether this model can report defects via apply_mapped. Soft
  /// nonidealities return false so the remap hook skips the per-model
  /// conductance snapshot for them.
  virtual bool has_defect_map() const { return false; }

  virtual std::string name() const = 0;
};

/// Non-owning fault list, applied in order. Ownership stays with the caller
/// (faultsim::FaultSpec holds shared_ptrs); the pointed-to models must
/// outlive every chip programmed with them.
using FaultList = std::vector<const FaultModel*>;

/// One crossbar tile holding a weight matrix W (rows, cols): rows are inputs
/// (wordlines), cols are outputs (bitlines), i.e. y = W^T x is computed as
/// column current sums. CorrectNet layers store W as (out, in); use
/// CrossbarArray which handles the transpose and tiling.
class CrossbarTile {
 public:
  /// Programs the tile from `w` (rows=in, cols=out), scaling by max |w| of
  /// the whole array (`w_absmax`). Applies level quantization then
  /// programming variation via `rng`. The batched path executes through
  /// `target` (nullptr = exec::default_target()), which lowers the
  /// programmed conductances once at construction. `defer_lowering` skips
  /// that when an apply_faults call is known to follow immediately (it
  /// re-lowers) — callers who defer and then never apply faults would leave
  /// the batched path with no executable.
  CrossbarTile(const Tensor& w, float w_absmax, const RramDeviceParams& dev, Rng& rng,
               bool defer_lowering = false, const exec::Target* target = nullptr);

  CrossbarTile(CrossbarTile&&) noexcept;
  CrossbarTile& operator=(CrossbarTile&&) noexcept;
  ~CrossbarTile();

  int64_t rows() const { return rows_; }
  int64_t cols() const { return cols_; }

  /// Applies a fault list to the programmed conductances (construction-time
  /// transform; see FaultModel). Both execution paths read the transformed
  /// arrays, so batched matmul stays bit-identical to matvec under every
  /// model. CrossbarArray calls this right after placing each tile.
  ///
  /// With active `remap` params this is also the tile's remap hook: each
  /// model's defect map is collected as it runs (FaultModel::apply_mapped —
  /// same rng draws either way) and a remap::RemapController immediately
  /// plans and applies spare-line/pair-swap repairs against the values that
  /// model disturbed, sharing the tile's spare budget across the list, all
  /// before the batched copies are rebuilt. Soft nonidealities later in the
  /// list age repaired devices like any other. Repair accounting
  /// accumulates into `stats` (nullable). Zero defects -> no plan, no extra
  /// rng draws.
  void apply_faults(const FaultList& faults, const FaultModel::TileCtx& ctx,
                    Rng& rng, const remap::RemapParams* remap = nullptr,
                    remap::RemapStats* stats = nullptr);

  /// y_j += Σ_i x_i · w_eff(i,j); applies read noise/ADC if configured.
  void accumulate_matvec(const float* x, float* y, Rng* read_rng) const;

  /// accumulate_matvec with caller-provided scratch (each >= cols()): the
  /// per-column path without re-allocation. Bit-identical to
  /// accumulate_matvec for the same rng state.
  void accumulate_row(const float* x, float* y, Rng* read_rng, double* ip,
                      double* in_acc, float* currents) const;

  /// Batched path: accumulates `nitems` input vectors into y rows (stride
  /// ldy) through the tile's lowered execution target, item-blocked so
  /// conductance loads amortize across the batch. Input element (item i,
  /// wordline r) sits at x[i * x_item_stride + r * x_word_stride], which
  /// covers both row-major batches (item_stride = ld, word_stride = 1) and
  /// column-major ones like im2col outputs (item_stride = 1, word_stride =
  /// ld). With a bit-exact target each result row is bit-identical to
  /// accumulate_matvec (same per-column wordline accumulation order).
  /// `row_rngs` (nullable) holds one read-noise stream per item;
  /// `cur_scratch` must hold >= 8 * cols() floats, and `scratch` is the
  /// calling worker's target scratch.
  void accumulate_rows(const float* x, int64_t nitems, int64_t x_item_stride,
                       int64_t x_word_stride, float* y, int64_t ldy,
                       Rng* const* row_rngs, float* cur_scratch,
                       exec::Scratch& scratch) const;

  /// The effective (perturbed, quantized) weight matrix (rows=in, cols=out).
  Tensor effective_weights() const;

 private:
  /// Read noise + ADC + scaled accumulation of one current row into y;
  /// shared tail of the scalar and batched paths (exact parity).
  void finish_row(float* currents, float* y, Rng* read_rng) const;

  /// (Re-)lowers the programmed conductances through the execution target
  /// (after programming or fault injection): the target may precompute
  /// whatever representation it executes from (double copies, int8 planes).
  void lower();

  int64_t rows_, cols_;
  float scale_;                 // weight per Siemens
  RramDeviceParams dev_;
  std::vector<float> g_pos_, g_neg_;  // programmed conductances, row-major
  const exec::Target* target_;  // registry-owned, process lifetime
  // The lowered executable the batched path dispatches to. Borrows the g
  // arrays' heap storage, which survives tile moves; any mutation of the
  // arrays must re-lower.
  std::unique_ptr<exec::TileExec> exec_;
};

/// A weight matrix W (out, in) split into tiles of at most `tile` rows/cols,
/// as a real accelerator would. matvec(x) returns W_eff · x.
class CrossbarArray {
 public:
  /// Programs the array; if `faults` is given, each model first adjusts the
  /// array's private device-parameter copy (prepare_device) and then
  /// transforms every tile's conductances in place right after that tile is
  /// programmed, drawing from the same `rng` stream — so a chip remains a
  /// pure function of its seed. Active `remap` params additionally run the
  /// fault-aware remapping controller on every tile (see
  /// CrossbarTile::apply_faults); the summed repair accounting is readable
  /// via remap_stats(). The batched path executes through `target` (nullptr
  /// = exec::default_target() at construction time); the scalar matvec
  /// reference is target-independent.
  CrossbarArray(const Tensor& w_out_in, const RramDeviceParams& dev, Rng& rng,
                int64_t tile = 128, const FaultList* faults = nullptr,
                const remap::RemapParams* remap = nullptr,
                const exec::Target* target = nullptr);

  int64_t in_dim() const { return in_; }
  int64_t out_dim() const { return out_; }
  int64_t num_tiles() const { return static_cast<int64_t>(tiles_.size()); }

  /// The execution target this array was lowered with.
  const exec::Target& target() const { return *target_; }

  /// y = W_eff · x, with optional read noise if `read_rng` provided and the
  /// device has read_sigma > 0.
  Tensor matvec(const Tensor& x, Rng* read_rng = nullptr) const;

  /// Y = X · W_eff^T for X (batch, in) -> Y (batch, out): every row of X is
  /// one wordline-voltage vector. Tile-blocked and threadpool-parallel over
  /// (output-tile group × row block); with read noise off the result is
  /// bit-identical to matvec row by row (same accumulation order). With read
  /// noise on, one u64 is drawn from `read_rng` and independent per-(tile,
  /// row) streams are derived from it, so the output is deterministic for a
  /// given rng state regardless of thread count or row blocking.
  Tensor matmul(const Tensor& x, Rng* read_rng = nullptr) const;

  /// matmul for a column-major batch: X (in, batch) -> Y (batch, out),
  /// column b of X being one wordline-voltage vector. This is the natural
  /// layout of im2col outputs, so the conv path skips a transpose and the
  /// kernel reads contiguous lanes. Same bit-exactness guarantees as
  /// matmul.
  Tensor matmul_cols(const Tensor& x_cm, Rng* read_rng = nullptr) const;

  /// Reconstructs the full effective weight matrix (out, in) for validation.
  Tensor effective_weights() const;

  /// Repair accounting summed over every tile (all-zero when remapping was
  /// off or no defects occurred).
  const remap::RemapStats& remap_stats() const { return remap_stats_; }

 private:
  Tensor matmul_impl(const float* xd, int64_t n, bool colmajor, Rng* read_rng) const;

  struct Placed {
    int64_t row0, col0;  // offsets in the (in, out) orientation
    CrossbarTile tile;
  };
  int64_t in_, out_;
  int64_t max_tile_cols_ = 0;
  const exec::Target* target_ = nullptr;
  RramDeviceParams dev_;
  remap::RemapStats remap_stats_;
  std::vector<Placed> tiles_;
  // Tile indices grouped by col0 (disjoint output column ranges): the unit
  // of parallelism in matmul. Within a group, tiles stay in construction
  // order (ascending row0) to preserve matvec's accumulation order.
  std::vector<std::vector<size_t>> col_groups_;
};

}  // namespace cn::analog
