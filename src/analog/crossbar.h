// RRAM crossbar simulator (paper §II, Fig. 1).
//
// Weights map to differential conductance pairs: w = s·(G⁺ − G⁻) with both
// conductances in [g_min, g_max]. MAC is Ohm's law + Kirchhoff's current law:
// applying input voltages on wordlines, each bitline accumulates
// I_j = Σ_i V_i · G_ij, and the digital periphery computes s·(I⁺_j − I⁻_j).
//
// Programming variation perturbs each programmed conductance with the
// lognormal model; optional multi-level programming quantizes conductances,
// and optional read noise / ADC quantization model the readout path. At zero
// variation and full precision, crossbar MVM equals the ideal matvec — a
// property test pins this down.
#pragma once

#include <cstdint>
#include <vector>

#include "analog/quant.h"
#include "analog/variation.h"
#include "tensor/rng.h"
#include "tensor/tensor.h"

namespace cn::analog {

/// Physical device / periphery parameters of one crossbar tile.
struct RramDeviceParams {
  float g_min = 1e-6f;        // Siemens; off conductance
  float g_max = 1e-4f;        // Siemens; on conductance
  int conductance_levels = 0; // >0: multi-level cell quantization before variation
  float program_sigma = 0.0f; // lognormal σ applied to programmed conductance
  float read_sigma = 0.0f;    // per-read multiplicative Gaussian noise on currents
  int adc_bits = 0;           // >0: quantize accumulated currents
  int dac_bits = 0;           // >0: quantize input voltages
};

/// One crossbar tile holding a weight matrix W (rows, cols): rows are inputs
/// (wordlines), cols are outputs (bitlines), i.e. y = W^T x is computed as
/// column current sums. CorrectNet layers store W as (out, in); use
/// CrossbarArray which handles the transpose and tiling.
class CrossbarTile {
 public:
  /// Programs the tile from `w` (rows=in, cols=out), scaling by max |w| of
  /// the whole array (`w_absmax`). Applies level quantization then
  /// programming variation via `rng`.
  CrossbarTile(const Tensor& w, float w_absmax, const RramDeviceParams& dev, Rng& rng);

  int64_t rows() const { return rows_; }
  int64_t cols() const { return cols_; }

  /// y_j += Σ_i x_i · w_eff(i,j); applies read noise/ADC if configured.
  void accumulate_matvec(const float* x, float* y, Rng* read_rng) const;

  /// The effective (perturbed, quantized) weight matrix (rows=in, cols=out).
  Tensor effective_weights() const;

 private:
  int64_t rows_, cols_;
  float scale_;                 // weight per Siemens
  RramDeviceParams dev_;
  std::vector<float> g_pos_, g_neg_;  // programmed conductances, row-major
};

/// A weight matrix W (out, in) split into tiles of at most `tile` rows/cols,
/// as a real accelerator would. matvec(x) returns W_eff · x.
class CrossbarArray {
 public:
  CrossbarArray(const Tensor& w_out_in, const RramDeviceParams& dev, Rng& rng,
                int64_t tile = 128);

  int64_t in_dim() const { return in_; }
  int64_t out_dim() const { return out_; }
  int64_t num_tiles() const { return static_cast<int64_t>(tiles_.size()); }

  /// y = W_eff · x, with optional read noise if `read_rng` provided and the
  /// device has read_sigma > 0.
  Tensor matvec(const Tensor& x, Rng* read_rng = nullptr) const;

  /// Reconstructs the full effective weight matrix (out, in) for validation.
  Tensor effective_weights() const;

 private:
  struct Placed {
    int64_t row0, col0;  // offsets in the (in, out) orientation
    CrossbarTile tile;
  };
  int64_t in_, out_;
  RramDeviceParams dev_;
  std::vector<Placed> tiles_;
};

}  // namespace cn::analog
