#include "analog/variation.h"

#include <cmath>
#include <stdexcept>

#include "tensor/ops.h"

namespace cn::analog {

Tensor VariationModel::sample_factors(const Tensor& weight, Rng& rng) const {
  Tensor f(weight.shape());
  switch (kind) {
    case VariationKind::kNone:
      f.fill(1.0f);
      break;
    case VariationKind::kLognormal:
      rng.fill_lognormal_factor(f, sigma);
      break;
    case VariationKind::kGaussianMultiplicative:
      for (int64_t i = 0; i < f.size(); ++i)
        f[i] = 1.0f + static_cast<float>(rng.normal(0.0, sigma));
      break;
    case VariationKind::kGaussianAdditiveRel: {
      const float wmax = max_abs(weight);
      for (int64_t i = 0; i < f.size(); ++i) {
        const float w = weight[i];
        const float noise = static_cast<float>(rng.normal(0.0, sigma)) * wmax;
        // Convert additive noise to an equivalent multiplicative factor;
        // near-zero weights get factor 1 (their absolute error is kept small
        // by the relative model anyway).
        f[i] = (std::fabs(w) > 1e-12f) ? (w + noise) / w : 1.0f;
      }
      break;
    }
  }
  return f;
}

void VariationModel::perturb(nn::PerturbableWeight& site, Rng& rng) const {
  if (kind == VariationKind::kNone || sigma == 0.0f) {
    site.clear_weight_factors();
    return;
  }
  site.set_weight_factors(sample_factors(site.nominal_weight(), rng));
}

double VariationModel::lognormal_bound3(double sigma) {
  const double s2 = sigma * sigma;
  const double mean = std::exp(s2 / 2.0);
  const double stddev = std::sqrt((std::exp(s2) - 1.0) * std::exp(s2));
  return mean + 3.0 * stddev;
}

std::string VariationModel::name() const {
  switch (kind) {
    case VariationKind::kNone: return "none";
    case VariationKind::kLognormal: return "lognormal";
    case VariationKind::kGaussianMultiplicative: return "gauss-mult";
    case VariationKind::kGaussianAdditiveRel: return "gauss-add-rel";
  }
  return "?";
}

void perturb_all(nn::Sequential& model, const VariationModel& vm, Rng& rng) {
  for (nn::PerturbableWeight* s : model.analog_sites()) vm.perturb(*s, rng);
}

void perturb_from(nn::Sequential& model, const VariationModel& vm, Rng& rng,
                  int64_t first_site) {
  auto sites = model.analog_sites();
  for (int64_t i = 0; i < static_cast<int64_t>(sites.size()); ++i) {
    if (i >= first_site) {
      vm.perturb(*sites[static_cast<size_t>(i)], rng);
    } else {
      sites[static_cast<size_t>(i)]->clear_weight_factors();
    }
  }
}

void clear_variations(nn::Sequential& model) { model.clear_all_variations(); }

}  // namespace cn::analog
