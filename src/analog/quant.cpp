#include "analog/quant.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace cn::analog {

float quantize_uniform(float x, float lo, float hi, int levels) {
  if (levels < 2) throw std::invalid_argument("quantize_uniform: levels must be >= 2");
  if (hi <= lo) throw std::invalid_argument("quantize_uniform: bad range");
  x = std::clamp(x, lo, hi);
  const float step = (hi - lo) / static_cast<float>(levels - 1);
  const float q = std::round((x - lo) / step);
  return lo + q * step;
}

void quantize_tensor(Tensor& t, float lo, float hi, int levels) {
  for (int64_t i = 0; i < t.size(); ++i) t[i] = quantize_uniform(t[i], lo, hi, levels);
}

void dac_quantize(Tensor& x, int bits) { dac_quantize_span(x.data(), x.size(), bits); }

void dac_quantize_span(float* x, int64_t n, int bits) {
  if (bits <= 0 || n == 0) return;
  float lo = x[0], hi = x[0];
  for (int64_t i = 1; i < n; ++i) {
    lo = std::min(lo, x[i]);
    hi = std::max(hi, x[i]);
  }
  if (hi - lo < 1e-12f) return;
  for (int64_t i = 0; i < n; ++i) x[i] = quantize_uniform(x[i], lo, hi, 1 << bits);
}

void adc_quantize(Tensor& currents, int bits, float full_scale) {
  if (bits <= 0) return;
  quantize_tensor(currents, -full_scale, full_scale, 1 << bits);
}

float quantize_symmetric_int8(const float* x, int64_t n, int64_t stride,
                              int8_t* q) {
  float absmax = 0.0f;
  for (int64_t i = 0; i < n; ++i) absmax = std::max(absmax, std::fabs(x[i * stride]));
  if (absmax == 0.0f) {
    std::fill(q, q + n, int8_t{0});
    return 0.0f;
  }
  const float scale = absmax / 127.0f;
  const float inv = 127.0f / absmax;
  for (int64_t i = 0; i < n; ++i) {
    const float r = std::round(x[i * stride] * inv);
    q[i] = static_cast<int8_t>(std::clamp(r, -127.0f, 127.0f));
  }
  return scale;
}

}  // namespace cn::analog
