// Crossbar-backed inference: runs Dense/Conv2D layers through the
// device-level CrossbarArray substrate instead of the fast factor-injection
// path.
//
// The training pipeline injects variations as multiplicative factors
// (w_eff = w ∘ e^θ) because that is the paper's model and it is fast. This
// module executes the *same* layers through programmed conductances — tiling,
// differential pairs, optional quantization and read noise — so the shortcut
// can be validated end-to-end: at matched programming σ the two paths must
// produce statistically indistinguishable accuracy (see
// tests/test_crossbar_exec.cpp and examples/crossbar_inspect.cpp).
//
// Both layers default to the batched execution path (CrossbarArray::matmul,
// whole batches per tile pass); set_batched(false) restores the original
// per-column matvec loop, kept as the baseline for bench_runtime and the
// exact-equivalence tests.
#pragma once

#include <memory>
#include <optional>

#include "analog/crossbar.h"
#include "nn/conv2d.h"
#include "nn/dense.h"
#include "nn/sequential.h"

namespace cn::analog {

/// Inference-only Dense executed on a programmed crossbar array.
class CrossbarDense final : public nn::Layer {
 public:
  /// Programs the crossbar from the trained layer's nominal weights;
  /// `faults` (optional, non-owning) injects device faults at programming
  /// time (see analog::FaultModel), and active `remap` params run the
  /// fault-aware remapping controller over the injected defect maps.
  /// `target` selects the execution target of the batched path (nullptr =
  /// process default; see src/exec/target.h).
  CrossbarDense(const nn::Dense& src, const RramDeviceParams& dev, Rng& prog_rng,
                int64_t tile = 128, const FaultList* faults = nullptr,
                const remap::RemapParams* remap = nullptr,
                const exec::Target* target = nullptr);

  Tensor forward(const Tensor& x, bool train) override;
  /// Fused ReLU epilogue (relu-epilogue pass): the clamp rides the bias-add
  /// loop. Bitwise-identical to forward + standalone ReLU.
  Tensor forward_relu(const Tensor& x) override;
  Tensor backward(const Tensor&) override;  // throws: inference only
  std::unique_ptr<nn::Layer> clone() const override;
  std::string kind() const override { return "crossbar_dense"; }
  bool is_analog() const override { return true; }

  const CrossbarArray& array() const { return *xbar_; }
  /// Enables per-read noise using an external stream (nullptr disables).
  /// The stream is shared by clones — single-threaded use only; concurrent
  /// chip instances must use set_read_seed instead.
  void set_read_rng(Rng* rng) { read_rng_ = rng; }
  /// Enables per-read noise from a layer-owned stream. Clones copy the
  /// stream state by value, so each clone draws independently — safe for
  /// concurrent chip instances (give every instance its own seed).
  void set_read_seed(uint64_t seed) { owned_read_rng_.emplace(seed); }
  /// Switches between batched matmul (default) and per-column matvec.
  void set_batched(bool batched) { batched_ = batched; }

 private:
  Rng* effective_read_rng() {
    if (read_rng_) return read_rng_;
    return owned_read_rng_ ? &*owned_read_rng_ : nullptr;
  }

  Tensor forward_impl(const Tensor& x, bool relu);

  std::shared_ptr<CrossbarArray> xbar_;  // shared by clones (programmed once)
  Tensor bias_;
  Rng* read_rng_ = nullptr;
  std::optional<Rng> owned_read_rng_;
  bool batched_ = true;
};

/// Inference-only Conv2D executed on a programmed crossbar array
/// (im2col columns become wordline vectors).
class CrossbarConv2D final : public nn::Layer {
 public:
  CrossbarConv2D(const nn::Conv2D& src, const RramDeviceParams& dev, Rng& prog_rng,
                 int64_t tile = 128, const FaultList* faults = nullptr,
                 const remap::RemapParams* remap = nullptr,
                 const exec::Target* target = nullptr);

  Tensor forward(const Tensor& x, bool train) override;
  /// Fused ReLU epilogue (relu-epilogue pass): the clamp rides the bias-add
  /// write-out. Bitwise-identical to forward + standalone ReLU.
  Tensor forward_relu(const Tensor& x) override;
  Tensor backward(const Tensor&) override;  // throws: inference only
  std::unique_ptr<nn::Layer> clone() const override;
  std::string kind() const override { return "crossbar_conv2d"; }
  bool is_analog() const override { return true; }

  const CrossbarArray& array() const { return *xbar_; }
  void set_read_rng(Rng* rng) { read_rng_ = rng; }
  void set_read_seed(uint64_t seed) { owned_read_rng_.emplace(seed); }
  void set_batched(bool batched) { batched_ = batched; }

 private:
  Rng* effective_read_rng() {
    if (read_rng_) return read_rng_;
    return owned_read_rng_ ? &*owned_read_rng_ : nullptr;
  }

  Tensor forward_impl(const Tensor& x, bool relu);

  std::shared_ptr<CrossbarArray> xbar_;
  ConvGeom geom_;
  int64_t out_c_;
  Tensor bias_;
  Tensor cols_cm_;  // per-image im2col staging, reused across forwards
  Rng* read_rng_ = nullptr;
  std::optional<Rng> owned_read_rng_;
  bool batched_ = true;
};

/// Deep-copies `model`, replacing every Dense/Conv2D with its crossbar-backed
/// equivalent programmed with `dev` (one chip instance). Compensation blocks
/// and other layers are cloned unchanged (they are digital). `faults`
/// (optional, non-owning, must outlive the chip) injects device faults into
/// the analog sites with execution-order index >= first_fault_site — the
/// fault-campaign analogue of the paper's Fig. 9 "inject from the i-th layer
/// to the last layer" sweep; 0 faults every site.
/// Active `remap` params run the fault-aware remapping controller on every
/// faulted site (remapping repairs the defect maps faults inject, so it is
/// gated by the same first_fault_site window); per-chip repair accounting is
/// readable via collect_remap_stats. Every crossbar layer executes through
/// `target` (nullptr = process default execution target).
nn::Sequential program_to_crossbars(const nn::Sequential& model,
                                    const RramDeviceParams& dev, Rng& prog_rng,
                                    int64_t tile = 128,
                                    const FaultList* faults = nullptr,
                                    int64_t first_fault_site = 0,
                                    const remap::RemapParams* remap = nullptr,
                                    const exec::Target* target = nullptr);

/// Gives every crossbar layer in `model` (recursing into nested Sequentials)
/// its own read-noise stream, seeded deterministically from `seed`. Replaces
/// the shared-Rng* pattern for concurrent chip instances.
void set_read_seeds(nn::Sequential& model, uint64_t seed);

/// Toggles batched vs per-column execution on every crossbar layer.
void set_batched(nn::Sequential& model, bool batched);

/// Sums the remap repair accounting over every crossbar layer of a chip
/// (recursing into nested Sequentials and compensated-layer override slots).
/// All-zero when the chip was programmed without remapping or defect-free.
remap::RemapStats collect_remap_stats(nn::Sequential& model);

}  // namespace cn::analog
