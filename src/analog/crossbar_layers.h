// Crossbar-backed inference: runs Dense/Conv2D layers through the
// device-level CrossbarArray substrate instead of the fast factor-injection
// path.
//
// The training pipeline injects variations as multiplicative factors
// (w_eff = w ∘ e^θ) because that is the paper's model and it is fast. This
// module executes the *same* layers through programmed conductances — tiling,
// differential pairs, optional quantization and read noise — so the shortcut
// can be validated end-to-end: at matched programming σ the two paths must
// produce statistically indistinguishable accuracy (see
// tests/test_crossbar_exec.cpp and examples/crossbar_inspect.cpp).
#pragma once

#include <memory>

#include "analog/crossbar.h"
#include "nn/conv2d.h"
#include "nn/dense.h"
#include "nn/sequential.h"

namespace cn::analog {

/// Inference-only Dense executed on a programmed crossbar array.
class CrossbarDense final : public nn::Layer {
 public:
  /// Programs the crossbar from the trained layer's nominal weights.
  CrossbarDense(const nn::Dense& src, const RramDeviceParams& dev, Rng& prog_rng,
                int64_t tile = 128);

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor&) override;  // throws: inference only
  std::unique_ptr<nn::Layer> clone() const override;
  std::string kind() const override { return "crossbar_dense"; }
  bool is_analog() const override { return true; }

  const CrossbarArray& array() const { return *xbar_; }
  /// Enables per-read noise using the given stream (nullptr disables).
  void set_read_rng(Rng* rng) { read_rng_ = rng; }

 private:
  std::shared_ptr<CrossbarArray> xbar_;  // shared by clones (programmed once)
  Tensor bias_;
  Rng* read_rng_ = nullptr;
};

/// Inference-only Conv2D executed on a programmed crossbar array
/// (im2col columns become wordline vectors).
class CrossbarConv2D final : public nn::Layer {
 public:
  CrossbarConv2D(const nn::Conv2D& src, const RramDeviceParams& dev, Rng& prog_rng,
                 int64_t tile = 128);

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor&) override;  // throws: inference only
  std::unique_ptr<nn::Layer> clone() const override;
  std::string kind() const override { return "crossbar_conv2d"; }
  bool is_analog() const override { return true; }

  const CrossbarArray& array() const { return *xbar_; }
  void set_read_rng(Rng* rng) { read_rng_ = rng; }

 private:
  std::shared_ptr<CrossbarArray> xbar_;
  ConvGeom geom_;
  int64_t out_c_;
  Tensor bias_;
  Rng* read_rng_ = nullptr;
};

/// Deep-copies `model`, replacing every Dense/Conv2D with its crossbar-backed
/// equivalent programmed with `dev` (one chip instance). Compensation blocks
/// and other layers are cloned unchanged (they are digital).
nn::Sequential program_to_crossbars(const nn::Sequential& model,
                                    const RramDeviceParams& dev, Rng& prog_rng,
                                    int64_t tile = 128);

}  // namespace cn::analog
