#include "analog/crossbar_layers.h"

#include <algorithm>
#include <stdexcept>

namespace cn::analog {

CrossbarDense::CrossbarDense(const nn::Dense& src, const RramDeviceParams& dev,
                             Rng& prog_rng, int64_t tile, const FaultList* faults,
                             const remap::RemapParams* remap,
                             const exec::Target* target)
    : xbar_(std::make_shared<CrossbarArray>(src.nominal_weight(), dev, prog_rng,
                                            tile, faults, remap, target)),
      bias_(const_cast<nn::Dense&>(src).bias().value) {
  label_ = src.label() + "@xbar";
}

Tensor CrossbarDense::forward(const Tensor& x, bool) {
  return forward_impl(x, /*relu=*/false);
}

Tensor CrossbarDense::forward_relu(const Tensor& x) {
  return forward_impl(x, /*relu=*/true);
}

Tensor CrossbarDense::forward_impl(const Tensor& x, bool relu) {
  if (x.rank() != 2 || x.dim(1) != xbar_->in_dim())
    throw std::invalid_argument(label_ + ": bad input shape " + to_string(x.shape()));
  const int64_t N = x.dim(0), out = xbar_->out_dim(), in = xbar_->in_dim();
  Rng* rng = effective_read_rng();
  if (batched_) {
    Tensor y = xbar_->matmul(x, rng);
    // (v + bias) then max: identical values to bias-add + standalone ReLU.
    if (relu) {
      for (int64_t n = 0; n < N; ++n)
        for (int64_t o = 0; o < out; ++o)
          y[n * out + o] = std::max(y[n * out + o] + bias_[o], 0.0f);
    } else {
      for (int64_t n = 0; n < N; ++n)
        for (int64_t o = 0; o < out; ++o) y[n * out + o] += bias_[o];
    }
    return y;
  }
  Tensor y({N, out});
  Tensor xi({in});
  for (int64_t n = 0; n < N; ++n) {
    std::copy(x.data() + n * in, x.data() + (n + 1) * in, xi.data());
    Tensor yi = xbar_->matvec(xi, rng);
    if (relu)
      for (int64_t o = 0; o < out; ++o)
        y[n * out + o] = std::max(yi[o] + bias_[o], 0.0f);
    else
      for (int64_t o = 0; o < out; ++o) y[n * out + o] = yi[o] + bias_[o];
  }
  return y;
}

Tensor CrossbarDense::backward(const Tensor&) {
  throw std::logic_error(label_ + ": crossbar layers are inference-only");
}

std::unique_ptr<nn::Layer> CrossbarDense::clone() const {
  auto c = std::unique_ptr<CrossbarDense>(new CrossbarDense(*this));
  return c;
}

CrossbarConv2D::CrossbarConv2D(const nn::Conv2D& src, const RramDeviceParams& dev,
                               Rng& prog_rng, int64_t tile, const FaultList* faults,
                               const remap::RemapParams* remap,
                               const exec::Target* target)
    : xbar_(std::make_shared<CrossbarArray>(src.nominal_weight(), dev, prog_rng,
                                            tile, faults, remap, target)),
      geom_(src.geom()),
      out_c_(src.out_channels()),
      bias_(const_cast<nn::Conv2D&>(src).bias().value) {
  label_ = src.label() + "@xbar";
}

Tensor CrossbarConv2D::forward(const Tensor& x, bool) {
  return forward_impl(x, /*relu=*/false);
}

Tensor CrossbarConv2D::forward_relu(const Tensor& x) {
  return forward_impl(x, /*relu=*/true);
}

Tensor CrossbarConv2D::forward_impl(const Tensor& x, bool relu) {
  if (x.rank() != 4 || x.dim(1) != geom_.in_c || x.dim(2) != geom_.in_h ||
      x.dim(3) != geom_.in_w)
    throw std::invalid_argument(label_ + ": bad input shape " + to_string(x.shape()));
  const int64_t N = x.dim(0);
  const int64_t OH = geom_.out_h(), OW = geom_.out_w();
  const int64_t P = OH * OW;
  const int64_t K2 = geom_.in_c * geom_.k_h * geom_.k_w;
  const int64_t img_in = geom_.in_c * geom_.in_h * geom_.in_w;
  Rng* rng = effective_read_rng();
  Tensor y({N, out_c_, OH, OW});
  if (batched_) {
    // One im2col matrix per image, fed to the crossbar column-major as it
    // comes (P output pixels = P wordline vectors): whole tile passes
    // instead of P independent MVMs, with no transpose pass. The staging
    // tensor is a member so repeated forwards reuse its allocation.
    if (cols_cm_.rank() != 2 || cols_cm_.dim(0) != K2 || cols_cm_.dim(1) != P)
      cols_cm_ = Tensor({K2, P});
    for (int64_t n = 0; n < N; ++n) {
      im2col(x.data() + n * img_in, geom_, cols_cm_.data());
      Tensor acts = xbar_->matmul_cols(cols_cm_, rng);  // (P, out_c)
      float* out = y.data() + n * out_c_ * P;
      // (v + bias) then max: identical values to bias-add + standalone ReLU.
      if (relu) {
        for (int64_t o = 0; o < out_c_; ++o)
          for (int64_t p = 0; p < P; ++p)
            out[o * P + p] = std::max(acts[p * out_c_ + o] + bias_[o], 0.0f);
      } else {
        for (int64_t o = 0; o < out_c_; ++o)
          for (int64_t p = 0; p < P; ++p)
            out[o * P + p] = acts[p * out_c_ + o] + bias_[o];
      }
    }
    return y;
  }
  std::vector<float> cols(static_cast<size_t>(K2 * P));
  Tensor col({K2});
  for (int64_t n = 0; n < N; ++n) {
    im2col(x.data() + n * img_in, geom_, cols.data());
    float* out = y.data() + n * out_c_ * P;
    // Each output pixel: one crossbar MVM over its im2col column.
    for (int64_t p = 0; p < P; ++p) {
      for (int64_t k = 0; k < K2; ++k) col[k] = cols[static_cast<size_t>(k * P + p)];
      Tensor acts = xbar_->matvec(col, rng);
      if (relu)
        for (int64_t o = 0; o < out_c_; ++o)
          out[o * P + p] = std::max(acts[o] + bias_[o], 0.0f);
      else
        for (int64_t o = 0; o < out_c_; ++o) out[o * P + p] = acts[o] + bias_[o];
    }
  }
  return y;
}

Tensor CrossbarConv2D::backward(const Tensor&) {
  throw std::logic_error(label_ + ": crossbar layers are inference-only");
}

std::unique_ptr<nn::Layer> CrossbarConv2D::clone() const {
  return std::unique_ptr<CrossbarConv2D>(new CrossbarConv2D(*this));
}

nn::Sequential program_to_crossbars(const nn::Sequential& model,
                                    const RramDeviceParams& dev, Rng& prog_rng,
                                    int64_t tile, const FaultList* faults,
                                    int64_t first_fault_site,
                                    const remap::RemapParams* remap,
                                    const exec::Target* target) {
  nn::Sequential out(model.label() + "@xbar");
  int64_t site = 0;  // analog sites in execution order, matching perturb_from
  auto to_crossbar = [&](const nn::Layer& src) -> std::unique_ptr<nn::Layer> {
    const FaultList* site_faults =
        (faults && site >= first_fault_site) ? faults : nullptr;
    // Remapping repairs injected defect maps, so it rides the same window.
    const remap::RemapParams* site_remap = site_faults ? remap : nullptr;
    if (const auto* d = dynamic_cast<const nn::Dense*>(&src)) {
      ++site;
      return std::make_unique<CrossbarDense>(*d, dev, prog_rng, tile, site_faults,
                                             site_remap, target);
    }
    if (const auto* c = dynamic_cast<const nn::Conv2D*>(&src)) {
      ++site;
      return std::make_unique<CrossbarConv2D>(*c, dev, prog_rng, tile, site_faults,
                                              site_remap, target);
    }
    return nullptr;
  };
  for (int64_t i = 0; i < model.num_layers(); ++i) {
    const nn::Layer& l = model.layer(i);
    if (auto direct = to_crossbar(l)) {
      out.add(std::move(direct));
      continue;
    }
    // Composite analog layers (e.g. the compensated conv) carry their base
    // conv to the substrate through the override slot; digital parts are
    // cloned unchanged.
    auto cloned = l.clone();
    cloned->visit_analog_bases(
        [&](const nn::Layer& base, std::unique_ptr<nn::Layer>& slot) {
          if (auto converted = to_crossbar(base)) slot = std::move(converted);
        });
    out.add(std::move(cloned));
  }
  return out;
}

namespace {
template <typename Fn>
void dispatch_crossbar(nn::Layer* l, const Fn& fn) {
  if (auto* d = dynamic_cast<CrossbarDense*>(l)) fn(*d);
  else if (auto* c = dynamic_cast<CrossbarConv2D*>(l)) fn(*c);
}

template <typename Fn>
void for_each_crossbar_layer(nn::Sequential& model, const Fn& fn) {
  for (int64_t i = 0; i < model.num_layers(); ++i) {
    nn::Layer& l = model.layer(i);
    if (auto* s = dynamic_cast<nn::Sequential*>(&l)) {
      for_each_crossbar_layer(*s, fn);
      continue;
    }
    dispatch_crossbar(&l, fn);
    // Crossbar layers installed in composite override slots
    // (program_to_crossbars on compensated models).
    l.visit_analog_bases([&](const nn::Layer&, std::unique_ptr<nn::Layer>& slot) {
      dispatch_crossbar(slot.get(), fn);
    });
  }
}
}  // namespace

void set_read_seeds(nn::Sequential& model, uint64_t seed) {
  Rng derive(seed);
  for_each_crossbar_layer(model, [&](auto& l) { l.set_read_seed(derive.next_u64()); });
}

void set_batched(nn::Sequential& model, bool batched) {
  for_each_crossbar_layer(model, [&](auto& l) { l.set_batched(batched); });
}

remap::RemapStats collect_remap_stats(nn::Sequential& model) {
  remap::RemapStats total;
  for_each_crossbar_layer(model,
                          [&](auto& l) { total += l.array().remap_stats(); });
  return total;
}

}  // namespace cn::analog
