#include "analog/crossbar.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "exec/target.h"
#include "obs/metrics.h"
#include "tensor/ops.h"
#include "tensor/threadpool.h"

namespace cn::analog {

// Shim over the simd family's level selection in the execution-target
// registry (the kernels themselves live in exec/simd_target.cpp).
SimdLevel simd_max_level() {
  return static_cast<SimdLevel>(exec::simd::max_level());
}

bool force_simd_level(SimdLevel level) {
  return exec::simd::force_level(static_cast<int>(level));
}

void reset_simd_level() { exec::simd::reset_level(); }

SimdLevel current_simd_level() {
  return static_cast<SimdLevel>(exec::simd::current_level());
}

CrossbarTile::CrossbarTile(const Tensor& w, float w_absmax, const RramDeviceParams& dev,
                           Rng& rng, bool defer_lowering, const exec::Target* target)
    : rows_(w.dim(0)), cols_(w.dim(1)), dev_(dev),
      target_(target ? target : &exec::default_target()) {
  if (w.rank() != 2) throw std::invalid_argument("CrossbarTile: weight must be rank-2");
  if (dev.g_max <= dev.g_min)
    throw std::invalid_argument("CrossbarTile: g_max must exceed g_min");
  const float g_range = dev.g_max - dev.g_min;
  // scale maps conductance difference to weight: w = scale * (g+ - g-).
  scale_ = (w_absmax > 0.0f) ? w_absmax / g_range : 1.0f;

  const int64_t n = rows_ * cols_;
  g_pos_.resize(static_cast<size_t>(n));
  g_neg_.resize(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    const float wv = w[i];
    // Differential mapping: positive weights raise G+, negative raise G-.
    float gp = dev.g_min + (wv > 0.0f ? wv / scale_ : 0.0f);
    float gn = dev.g_min + (wv < 0.0f ? -wv / scale_ : 0.0f);
    gp = std::min(gp, dev.g_max);
    gn = std::min(gn, dev.g_max);
    if (dev.conductance_levels > 1) {
      gp = quantize_uniform(gp, dev.g_min, dev.g_max, dev.conductance_levels);
      gn = quantize_uniform(gn, dev.g_min, dev.g_max, dev.conductance_levels);
    }
    if (dev.program_sigma > 0.0f) {
      gp *= static_cast<float>(rng.lognormal(0.0, dev.program_sigma));
      gn *= static_cast<float>(rng.lognormal(0.0, dev.program_sigma));
    }
    g_pos_[static_cast<size_t>(i)] = gp;
    g_neg_[static_cast<size_t>(i)] = gn;
  }
  if (!defer_lowering) lower();
}

// Out-of-line so exec::TileExec stays an incomplete type in the header.
CrossbarTile::CrossbarTile(CrossbarTile&&) noexcept = default;
CrossbarTile& CrossbarTile::operator=(CrossbarTile&&) noexcept = default;
CrossbarTile::~CrossbarTile() = default;

void CrossbarTile::lower() {
  exec::TileView view;
  view.g_pos = g_pos_.data();
  view.g_neg = g_neg_.data();
  view.rows = rows_;
  view.cols = cols_;
  view.g_min = dev_.g_min;
  view.g_max = dev_.g_max;
  exec_ = target_->lower(view);
  // Per-target lowering volume (tiles and conductance bytes consumed). The
  // name lookup is mutex-guarded, so skip it entirely when gated off — this
  // runs per tile per chip build.
  if (obs::metrics().enabled()) {
    const std::string prefix = "exec." + std::string(target_->name());
    obs::metrics().counter(prefix + ".tiles").add(1);
    obs::metrics().counter(prefix + ".bytes")
        .add(static_cast<uint64_t>(rows_) * static_cast<uint64_t>(cols_) * 2 *
             sizeof(float));
  }
}

void CrossbarTile::apply_faults(const FaultList& faults,
                                const FaultModel::TileCtx& ctx, Rng& rng,
                                const remap::RemapParams* remap,
                                remap::RemapStats* stats) {
  if (!remap || !remap->active()) {
    for (const FaultModel* f : faults)
      f->apply(g_pos_.data(), g_neg_.data(), ctx, dev_, rng);
    lower();
    return;
  }
  // Repairs run per model, immediately after that model's defect map is
  // known: repair targets are the conductances the model actually disturbed
  // (so stuck-at stacked on drift restores the *drifted* values, not
  // stale pre-drift ones), and soft nonidealities later in the list age
  // repaired devices exactly like every other device. The tile's spare
  // budget is shared across the whole list.
  remap::RemapParams budget = *remap;
  std::vector<float> pre_pos, pre_neg;
  for (const FaultModel* f : faults) {
    if (!f->has_defect_map()) {
      // Soft nonideality: nothing to repair, no snapshot needed.
      f->apply(g_pos_.data(), g_neg_.data(), ctx, dev_, rng);
      continue;
    }
    pre_pos = g_pos_;
    pre_neg = g_neg_;
    remap::DefectMap defects;
    f->apply_mapped(g_pos_.data(), g_neg_.data(), ctx, dev_, rng, &defects);
    if (defects.empty()) continue;
    const remap::RemapController ctl(budget);
    const remap::RemapPlan plan = ctl.plan(defects, rows_, cols_,
                                           pre_pos.data(), pre_neg.data(),
                                           dev_.g_min, dev_.g_max);
    const remap::RemapStats s = ctl.apply(plan, g_pos_.data(), g_neg_.data(),
                                          pre_pos.data(), pre_neg.data());
    budget.spare_rows -= s.spare_rows_used;
    budget.spare_cols -= s.spare_cols_used;
    if (stats) *stats += s;
  }
  lower();
}

void CrossbarTile::accumulate_matvec(const float* x, float* y, Rng* read_rng) const {
  std::vector<double> ip(static_cast<size_t>(cols_));
  std::vector<double> in(static_cast<size_t>(cols_));
  std::vector<float> cur(static_cast<size_t>(cols_));
  accumulate_row(x, y, read_rng, ip.data(), in.data(), cur.data());
}

void CrossbarTile::accumulate_row(const float* x, float* y, Rng* read_rng,
                                  double* ip, double* in_acc, float* currents) const {
  // Currents on positive/negative bitlines.
  std::fill(ip, ip + cols_, 0.0);
  std::fill(in_acc, in_acc + cols_, 0.0);
  for (int64_t r = 0; r < rows_; ++r) {
    const float v = x[r];
    if (v == 0.0f) continue;
    const float* gp = g_pos_.data() + r * cols_;
    const float* gn = g_neg_.data() + r * cols_;
    for (int64_t c = 0; c < cols_; ++c) {
      ip[c] += static_cast<double>(v) * gp[c];
      in_acc[c] += static_cast<double>(v) * gn[c];
    }
  }
  for (int64_t c = 0; c < cols_; ++c)
    currents[c] = static_cast<float>(ip[c] - in_acc[c]);
  finish_row(currents, y, read_rng);
}

void CrossbarTile::finish_row(float* currents, float* y, Rng* read_rng) const {
  if (read_rng && dev_.readout.read_sigma > 0.0f) {
    for (int64_t c = 0; c < cols_; ++c)
      currents[c] *= 1.0f + static_cast<float>(read_rng->normal(0.0, dev_.readout.read_sigma));
  }
  if (dev_.readout.adc_bits > 0) {
    // Full scale: every row driving g_max differentially.
    const float fs = static_cast<float>(rows_) * (dev_.g_max - dev_.g_min);
    for (int64_t c = 0; c < cols_; ++c)
      currents[c] = quantize_uniform(currents[c], -fs, fs, 1 << dev_.readout.adc_bits);
  }
  for (int64_t c = 0; c < cols_; ++c) y[c] += scale_ * currents[c];
}

void CrossbarTile::accumulate_rows(const float* x, int64_t nitems,
                                   int64_t x_item_stride, int64_t x_word_stride,
                                   float* y, int64_t ldy, Rng* const* row_rngs,
                                   float* cur_scratch,
                                   exec::Scratch& scratch) const {
  // Item-blocking width never changes results (items accumulate
  // independently), only register/cache pressure; clamp to the 8 current
  // rows cur_scratch holds.
  const int64_t row_block = std::min<int64_t>(8, exec_->row_block());
  int64_t done = 0;
  while (done < nitems) {
    const int64_t rb = std::min<int64_t>(row_block, nitems - done);
    exec_->currents(x + done * x_item_stride, rb, x_item_stride, x_word_stride,
                    cur_scratch, cols_, scratch);
    for (int64_t i = 0; i < rb; ++i)
      finish_row(cur_scratch + i * cols_, y + (done + i) * ldy,
                 row_rngs ? row_rngs[done + i] : nullptr);
    done += rb;
  }
}

Tensor CrossbarTile::effective_weights() const {
  Tensor w({rows_, cols_});
  for (int64_t i = 0; i < rows_ * cols_; ++i)
    w[i] = scale_ * (g_pos_[static_cast<size_t>(i)] - g_neg_[static_cast<size_t>(i)]);
  return w;
}

CrossbarArray::CrossbarArray(const Tensor& w_out_in, const RramDeviceParams& dev,
                             Rng& rng, int64_t tile, const FaultList* faults,
                             const remap::RemapParams* remap,
                             const exec::Target* target) {
  if (w_out_in.rank() != 2)
    throw std::invalid_argument("CrossbarArray: weight must be rank-2");
  if (tile < 1) throw std::invalid_argument("CrossbarArray: tile must be positive");
  // Resolve the default once: every tile of the array lowers through one
  // target even if the process default changes mid-construction.
  target_ = target ? target : &exec::default_target();
  dev_ = dev;
  // Nonideality models may rescale device parameters (e.g. temperature-
  // dependent sigmas) before anything is programmed.
  if (faults)
    for (const FaultModel* f : *faults) f->prepare_device(dev_);
  out_ = w_out_in.dim(0);
  in_ = w_out_in.dim(1);
  const float absmax = max_abs(w_out_in);
  // Orient as (in, out): wordlines = inputs.
  Tensor w_in_out = transpose(w_out_in);
  for (int64_t r0 = 0; r0 < in_; r0 += tile) {
    const int64_t rr = std::min(tile, in_ - r0);
    for (int64_t c0 = 0; c0 < out_; c0 += tile) {
      const int64_t cc = std::min(tile, out_ - c0);
      Tensor sub({rr, cc});
      for (int64_t r = 0; r < rr; ++r)
        for (int64_t c = 0; c < cc; ++c)
          sub[r * cc + c] = w_in_out[(r0 + r) * out_ + (c0 + c)];
      const bool have_faults = faults && !faults->empty();
      tiles_.push_back(Placed{r0, c0, CrossbarTile(sub, absmax, dev_, rng,
                                                   /*defer_lowering=*/have_faults,
                                                   target_)});
      max_tile_cols_ = std::max(max_tile_cols_, cc);
      if (have_faults) {
        FaultModel::TileCtx ctx;
        ctx.rows = rr;
        ctx.cols = cc;
        ctx.row0 = r0;
        ctx.col0 = c0;
        ctx.array_rows = in_;
        ctx.array_cols = out_;
        tiles_.back().tile.apply_faults(*faults, ctx, rng, remap,
                                        &remap_stats_);
      }
    }
  }
  // Group tiles by output column block; construction order (ascending row0)
  // is preserved inside each group so matmul accumulates like matvec.
  const int64_t ncol_groups = (out_ + tile - 1) / tile;
  col_groups_.resize(static_cast<size_t>(ncol_groups));
  for (size_t t = 0; t < tiles_.size(); ++t)
    col_groups_[static_cast<size_t>(tiles_[t].col0 / tile)].push_back(t);
}

Tensor CrossbarArray::matvec(const Tensor& x, Rng* read_rng) const {
  if (x.size() != in_) throw std::invalid_argument("CrossbarArray::matvec: size mismatch");
  Tensor y({out_});
  // DAC quantization applies once to the shared input voltages.
  Tensor x_q = x;
  dac_quantize(x_q, dev_.readout.dac_bits);
  for (const Placed& p : tiles_) {
    p.tile.accumulate_matvec(x_q.data() + p.row0, y.data() + p.col0,
                             read_rng);
  }
  return y;
}

Tensor CrossbarArray::matmul(const Tensor& x, Rng* read_rng) const {
  if (x.rank() != 2 || x.dim(1) != in_)
    throw std::invalid_argument("CrossbarArray::matmul: input must be (batch, in)");
  const int64_t n = x.dim(0);
  // DAC quantization is per input vector (each row sees its own range),
  // exactly as matvec applies it.
  Tensor x_q;
  const float* xd = x.data();
  if (dev_.readout.dac_bits > 0 && n > 0) {
    x_q = x;
    for (int64_t i = 0; i < n; ++i)
      dac_quantize_span(x_q.data() + i * in_, in_, dev_.readout.dac_bits);
    xd = x_q.data();
  }
  return matmul_impl(xd, n, /*colmajor=*/false, read_rng);
}

Tensor CrossbarArray::matmul_cols(const Tensor& x_cm, Rng* read_rng) const {
  if (x_cm.rank() != 2 || x_cm.dim(0) != in_)
    throw std::invalid_argument(
        "CrossbarArray::matmul_cols: input must be (in, batch)");
  const int64_t n = x_cm.dim(1);
  if (dev_.readout.dac_bits > 0 && n > 0) {
    // DAC ranges are per input vector, i.e. per *column* here; materialize
    // the row-major batch and take the matmul path (quantization already
    // dominates this configuration).
    Tensor xr({n, in_});
    for (int64_t r = 0; r < in_; ++r)
      for (int64_t i = 0; i < n; ++i) xr[i * in_ + r] = x_cm[r * n + i];
    return matmul(xr, read_rng);
  }
  return matmul_impl(x_cm.data(), n, /*colmajor=*/true, read_rng);
}

Tensor CrossbarArray::matmul_impl(const float* xd, int64_t n, bool colmajor,
                                  Rng* read_rng) const {
  Tensor y({n, out_});
  if (n == 0) return y;
  const bool noisy = read_rng && dev_.readout.read_sigma > 0.0f;
  const uint64_t noise_base = noisy ? read_rng->next_u64() : 0ull;

  const int64_t row_block = 64;
  const int64_t nblocks = (n + row_block - 1) / row_block;
  const int64_t ngroups = static_cast<int64_t>(col_groups_.size());
  parallel_for(0, ngroups * nblocks, [&](int64_t lo, int64_t hi) {
    std::vector<float> cur(static_cast<size_t>(8 * max_tile_cols_));
    exec::Scratch scratch;
    std::vector<Rng> rngs;
    std::vector<Rng*> rng_ptrs;
    for (int64_t w = lo; w < hi; ++w) {
      const auto& group = col_groups_[static_cast<size_t>(w / nblocks)];
      const int64_t r0 = (w % nblocks) * row_block;
      const int64_t r1 = std::min(n, r0 + row_block);
      for (size_t t : group) {
        const Placed& p = tiles_[t];
        Rng* const* row_rngs = nullptr;
        if (noisy) {
          rngs.clear();
          rng_ptrs.clear();
          for (int64_t i = r0; i < r1; ++i)
            rngs.emplace_back(mix64(noise_base ^
                                    (static_cast<uint64_t>(t) * 0x100000001ull +
                                     static_cast<uint64_t>(i))));
          for (auto& r : rngs) rng_ptrs.push_back(&r);
          row_rngs = rng_ptrs.data();
        }
        const float* xt = colmajor ? xd + p.row0 * n + r0 : xd + r0 * in_ + p.row0;
        const int64_t xis = colmajor ? 1 : in_;
        const int64_t xws = colmajor ? n : 1;
        p.tile.accumulate_rows(xt, r1 - r0, xis, xws,
                               y.data() + r0 * out_ + p.col0, out_, row_rngs,
                               cur.data(), scratch);
      }
    }
  }, 1);
  return y;
}

Tensor CrossbarArray::effective_weights() const {
  Tensor w({out_, in_});
  for (const Placed& p : tiles_) {
    Tensor sub = p.tile.effective_weights();  // (rows=in slice, cols=out slice)
    for (int64_t r = 0; r < sub.dim(0); ++r)
      for (int64_t c = 0; c < sub.dim(1); ++c)
        w[(p.col0 + c) * in_ + (p.row0 + r)] = sub[r * sub.dim(1) + c];
  }
  return w;
}

}  // namespace cn::analog
