#include "analog/crossbar.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "tensor/ops.h"

namespace cn::analog {

CrossbarTile::CrossbarTile(const Tensor& w, float w_absmax, const RramDeviceParams& dev,
                           Rng& rng)
    : rows_(w.dim(0)), cols_(w.dim(1)), dev_(dev) {
  if (w.rank() != 2) throw std::invalid_argument("CrossbarTile: weight must be rank-2");
  if (dev.g_max <= dev.g_min)
    throw std::invalid_argument("CrossbarTile: g_max must exceed g_min");
  const float g_range = dev.g_max - dev.g_min;
  // scale maps conductance difference to weight: w = scale * (g+ - g-).
  scale_ = (w_absmax > 0.0f) ? w_absmax / g_range : 1.0f;

  const int64_t n = rows_ * cols_;
  g_pos_.resize(static_cast<size_t>(n));
  g_neg_.resize(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    const float wv = w[i];
    // Differential mapping: positive weights raise G+, negative raise G-.
    float gp = dev.g_min + (wv > 0.0f ? wv / scale_ : 0.0f);
    float gn = dev.g_min + (wv < 0.0f ? -wv / scale_ : 0.0f);
    gp = std::min(gp, dev.g_max);
    gn = std::min(gn, dev.g_max);
    if (dev.conductance_levels > 1) {
      gp = quantize_uniform(gp, dev.g_min, dev.g_max, dev.conductance_levels);
      gn = quantize_uniform(gn, dev.g_min, dev.g_max, dev.conductance_levels);
    }
    if (dev.program_sigma > 0.0f) {
      gp *= static_cast<float>(rng.lognormal(0.0, dev.program_sigma));
      gn *= static_cast<float>(rng.lognormal(0.0, dev.program_sigma));
    }
    g_pos_[static_cast<size_t>(i)] = gp;
    g_neg_[static_cast<size_t>(i)] = gn;
  }
}

void CrossbarTile::accumulate_matvec(const float* x, float* y, Rng* read_rng) const {
  // Currents on positive/negative bitlines.
  std::vector<double> ip(static_cast<size_t>(cols_), 0.0);
  std::vector<double> in(static_cast<size_t>(cols_), 0.0);
  for (int64_t r = 0; r < rows_; ++r) {
    const float v = x[r];
    if (v == 0.0f) continue;
    const float* gp = g_pos_.data() + r * cols_;
    const float* gn = g_neg_.data() + r * cols_;
    for (int64_t c = 0; c < cols_; ++c) {
      ip[static_cast<size_t>(c)] += static_cast<double>(v) * gp[c];
      in[static_cast<size_t>(c)] += static_cast<double>(v) * gn[c];
    }
  }
  Tensor currents({cols_});
  for (int64_t c = 0; c < cols_; ++c)
    currents[c] = static_cast<float>(ip[static_cast<size_t>(c)] - in[static_cast<size_t>(c)]);
  if (read_rng && dev_.read_sigma > 0.0f) {
    for (int64_t c = 0; c < cols_; ++c)
      currents[c] *= 1.0f + static_cast<float>(read_rng->normal(0.0, dev_.read_sigma));
  }
  if (dev_.adc_bits > 0) {
    // Full scale: every row driving g_max differentially.
    const float fs = static_cast<float>(rows_) * (dev_.g_max - dev_.g_min);
    adc_quantize(currents, dev_.adc_bits, fs);
  }
  for (int64_t c = 0; c < cols_; ++c) y[c] += scale_ * currents[c];
}

Tensor CrossbarTile::effective_weights() const {
  Tensor w({rows_, cols_});
  for (int64_t i = 0; i < rows_ * cols_; ++i)
    w[i] = scale_ * (g_pos_[static_cast<size_t>(i)] - g_neg_[static_cast<size_t>(i)]);
  return w;
}

CrossbarArray::CrossbarArray(const Tensor& w_out_in, const RramDeviceParams& dev,
                             Rng& rng, int64_t tile) {
  if (w_out_in.rank() != 2)
    throw std::invalid_argument("CrossbarArray: weight must be rank-2");
  if (tile < 1) throw std::invalid_argument("CrossbarArray: tile must be positive");
  dev_ = dev;
  out_ = w_out_in.dim(0);
  in_ = w_out_in.dim(1);
  const float absmax = max_abs(w_out_in);
  // Orient as (in, out): wordlines = inputs.
  Tensor w_in_out = transpose(w_out_in);
  for (int64_t r0 = 0; r0 < in_; r0 += tile) {
    const int64_t rr = std::min(tile, in_ - r0);
    for (int64_t c0 = 0; c0 < out_; c0 += tile) {
      const int64_t cc = std::min(tile, out_ - c0);
      Tensor sub({rr, cc});
      for (int64_t r = 0; r < rr; ++r)
        for (int64_t c = 0; c < cc; ++c)
          sub[r * cc + c] = w_in_out[(r0 + r) * out_ + (c0 + c)];
      tiles_.push_back(Placed{r0, c0, CrossbarTile(sub, absmax, dev, rng)});
    }
  }
}

Tensor CrossbarArray::matvec(const Tensor& x, Rng* read_rng) const {
  if (x.size() != in_) throw std::invalid_argument("CrossbarArray::matvec: size mismatch");
  Tensor y({out_});
  // DAC quantization applies once to the shared input voltages.
  Tensor x_q = x;
  dac_quantize(x_q, dev_.dac_bits);
  for (const Placed& p : tiles_) {
    p.tile.accumulate_matvec(x_q.data() + p.row0, y.data() + p.col0,
                             read_rng);
  }
  return y;
}

Tensor CrossbarArray::effective_weights() const {
  Tensor w({out_, in_});
  for (const Placed& p : tiles_) {
    Tensor sub = p.tile.effective_weights();  // (rows=in slice, cols=out slice)
    for (int64_t r = 0; r < sub.dim(0); ++r)
      for (int64_t c = 0; c < sub.dim(1); ++c)
        w[(p.col0 + c) * in_ + (p.row0 + r)] = sub[r * sub.dim(1) + c];
  }
  return w;
}

}  // namespace cn::analog
