// Pluggable execution targets for the batched crossbar path.
//
// A Target is one way of executing the hot bitline-current kernel: it lowers
// a programmed tile (TileView) into a TileExec, an immutable executable the
// batched matmul dispatches to. Targets self-describe (name, availability on
// this host, whether results are bit-identical to the scalar matvec
// reference) and live in a process-wide registry, so frontends can enumerate
// them (`correctnet_cli --list-targets`), configs can select them by name
// (the campaign `target` key), and new backends plug in without touching the
// dispatch sites.
//
// Built-in registrations:
//   simd          auto-dispatching kernel family (generic/avx2/avx512f picked
//                 per call; responds to force_simd_level) — the default
//   simd-generic  the portable kernels, pinned
//   simd-avx2     AVX2 kernels, pinned (x86-64 GCC builds on AVX2 hosts)
//   simd-avx512f  AVX-512F kernels, pinned
//   int8          digital half quantized to int8 end-to-end (approximate;
//                 documented accuracy bounds, see docs/ARCHITECTURE.md)
//   huge-tile     cache-blocked row-streaming kernels for large tiles
//                 (bit-exact)
//
// The lowering seam is deliberately narrow — conductance arrays in, current
// rows out — so an offload target (GPU, accelerator API) can fill it without
// the analog layer changing: implement Target::lower, call register_target.
//
// Bit-exactness contract: a Target reporting bit_exact() must produce
// currents bit-identical to CrossbarTile's per-column scalar reference under
// every fault model and remap setting (per-column accumulation in ascending
// wordline order, double accumulators, no FMA contraction — see the parity
// suites in tests/test_crossbar_exec.cpp). Approximate targets (int8) are
// exempt but must stay inside their pinned regression tolerances.
//
// The process default target is, in increasing precedence: "simd", the
// CORRECTNET_TARGET environment variable (validated at first registry use;
// how CI forces a target under every test binary), set_default_target().
// Already-constructed arrays keep the target they were lowered with.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace cn::exec {

/// Read-only view of one programmed tile handed to Target::lower. The
/// conductance arrays are row-major (rows x cols) differential pairs, valid
/// for the lifetime of the returned TileExec (the owning CrossbarTile
/// re-lowers whenever it mutates them).
struct TileView {
  const float* g_pos = nullptr;
  const float* g_neg = nullptr;
  int64_t rows = 0, cols = 0;
  float g_min = 0.0f, g_max = 0.0f;  // device conductance range
};

/// Per-worker scratch buffers for TileExec::currents: grown on demand,
/// reused across calls so the hot loop never allocates. One Scratch per
/// thread — TileExec itself must stay stateless across calls.
struct Scratch {
  double* doubles(size_t n) {
    if (d_.size() < n) d_.resize(n);
    return d_.data();
  }
  int32_t* ints(size_t n) {
    if (i32_.size() < n) i32_.resize(n);
    return i32_.data();
  }
  int8_t* bytes(size_t n) {
    if (i8_.size() < n) i8_.resize(n);
    return i8_.data();
  }

 private:
  std::vector<double> d_;
  std::vector<int32_t> i32_;
  std::vector<int8_t> i8_;
};

/// One tile lowered for execution. Implementations are immutable after
/// construction and must be safe to call concurrently (matmul workers share
/// one TileExec across row blocks; per-call state goes in Scratch).
class TileExec {
 public:
  virtual ~TileExec() = default;

  /// Differential bitline currents for a block of input vectors: input
  /// element (item i, wordline r) sits at x[i * x_item_stride +
  /// r * x_word_stride]; output current (item i, bitline c) is written to
  /// cur[i * ldcur + c]. nitems never exceeds row_block(). The caller
  /// applies read noise / ADC / weight scaling afterwards (shared periphery
  /// tail — targets only compute raw current sums).
  virtual void currents(const float* x, int64_t nitems, int64_t x_item_stride,
                        int64_t x_word_stride, float* cur, int64_t ldcur,
                        Scratch& scratch) const = 0;

  /// Preferred item-block size for currents() calls, in [1, 8] (the caller's
  /// current scratch holds 8 rows). Blocking never changes results, only
  /// register/cache pressure.
  virtual int64_t row_block() const = 0;
};

/// One execution strategy for the batched crossbar path.
class Target {
 public:
  virtual ~Target() = default;

  /// Registry key ([a-z0-9-], unique).
  virtual std::string name() const = 0;
  /// One-line human description for --list-targets.
  virtual std::string description() const = 0;
  /// Capability probe: can this build + host execute the target?
  virtual bool available() const = 0;
  /// Whether results are bit-identical to the scalar matvec reference (see
  /// the contract in the header comment).
  virtual bool bit_exact() const = 0;
  /// Lowers one programmed tile into an executable. May throw when the tile
  /// shape is outside the target's envelope (e.g. int8 accumulator range).
  virtual std::unique_ptr<TileExec> lower(const TileView& tile) const = 0;
};

/// Registers a target under its name(). Throws std::invalid_argument on a
/// duplicate or empty name. The registry owns the target for process
/// lifetime; the returned pointer is stable. Thread-safe.
const Target* register_target(std::unique_ptr<Target> target);

/// Looks up a target by name; nullptr when unknown (the target may still be
/// unavailable on this host — check available()).
const Target* find_target(const std::string& name);

/// Looks up a target by name, throwing std::runtime_error — with the list of
/// registered names — when it is unknown or unavailable on this host.
const Target& get_target(const std::string& name);

/// Every registered target, in registration order (builtins first).
std::vector<const Target*> registered_targets();

/// The target newly constructed CrossbarArrays lower with when no explicit
/// target is passed down (see precedence in the header comment).
const Target& default_target();

/// Overrides the process default (CLI --target). Throws like get_target.
void set_default_target(const std::string& name);

/// Drops the set_default_target override, restoring the startup default
/// (CORRECTNET_TARGET when set, else "simd").
void reset_default_target();

/// Dispatch-level shim of the built-in simd family (0 = generic, 1 = avx2,
/// 2 = avx512f): the "simd" target re-reads the forced level on every call,
/// which is what keeps analog::force_simd_level working on arrays that were
/// lowered before the flip. Pinned registrations (simd-generic/...) ignore
/// it. Not synchronized with running matmuls; flip only between calls.
namespace simd {
int max_level();              // widest level this build + host can execute
bool force_level(int level);  // false (no change) when unsupported
void reset_level();           // restore auto-selection
int current_level();          // level the next auto-dispatched call uses
}  // namespace simd

}  // namespace cn::exec
