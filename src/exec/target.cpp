#include "exec/target.h"

#include <cstdlib>
#include <mutex>
#include <stdexcept>

#include "exec/builtin.h"

namespace cn::exec {
namespace {

struct Registry {
  std::mutex mu;
  std::vector<std::unique_ptr<Target>> targets;
  const Target* builtin_default = nullptr;  // the "simd" family
  const Target* env_default = nullptr;      // CORRECTNET_TARGET
  const Target* override_default = nullptr; // set_default_target
  bool initialized = false;
};

Registry& registry() {
  static Registry r;
  return r;
}

const Target* find_locked(const Registry& r, const std::string& name) {
  for (const auto& t : r.targets)
    if (t->name() == name) return t.get();
  return nullptr;
}

std::string names_locked(const Registry& r) {
  std::string s;
  for (const auto& t : r.targets) {
    if (!s.empty()) s += ", ";
    s += t->name();
  }
  return s;
}

const Target& resolve_locked(const Registry& r, const std::string& name,
                             const char* what) {
  const Target* t = find_locked(r, name);
  if (!t)
    throw std::runtime_error(std::string(what) + ": unknown execution target '" +
                             name + "' (registered: " + names_locked(r) + ")");
  if (!t->available())
    throw std::runtime_error(std::string(what) + ": execution target '" + name +
                             "' is not available on this build/host");
  return *t;
}

// Builtins register lazily on first registry use rather than via static
// registrar objects (see builtin.h). CORRECTNET_TARGET is validated here, so
// a typo'd CI matrix value fails the first crossbar construction loudly
// instead of silently running the default target.
void ensure_init_locked(Registry& r) {
  if (r.initialized) return;
  r.initialized = true;
  detail::append_simd_targets(r.targets);
  r.targets.push_back(detail::make_int8_target());
  r.targets.push_back(detail::make_hugetile_target());
  r.builtin_default = find_locked(r, "simd");
  if (const char* env = std::getenv("CORRECTNET_TARGET"); env && *env)
    r.env_default = &resolve_locked(r, env, "CORRECTNET_TARGET");
}

}  // namespace

const Target* register_target(std::unique_ptr<Target> target) {
  if (!target) throw std::invalid_argument("register_target: null target");
  const std::string name = target->name();
  if (name.empty()) throw std::invalid_argument("register_target: empty name");
  Registry& r = registry();
  std::lock_guard<std::mutex> lk(r.mu);
  ensure_init_locked(r);
  if (find_locked(r, name))
    throw std::invalid_argument("register_target: duplicate execution target '" +
                                name + "'");
  r.targets.push_back(std::move(target));
  return r.targets.back().get();
}

const Target* find_target(const std::string& name) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lk(r.mu);
  ensure_init_locked(r);
  return find_locked(r, name);
}

const Target& get_target(const std::string& name) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lk(r.mu);
  ensure_init_locked(r);
  return resolve_locked(r, name, "get_target");
}

std::vector<const Target*> registered_targets() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lk(r.mu);
  ensure_init_locked(r);
  std::vector<const Target*> out;
  out.reserve(r.targets.size());
  for (const auto& t : r.targets) out.push_back(t.get());
  return out;
}

const Target& default_target() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lk(r.mu);
  ensure_init_locked(r);
  if (r.override_default) return *r.override_default;
  if (r.env_default) return *r.env_default;
  return *r.builtin_default;
}

void set_default_target(const std::string& name) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lk(r.mu);
  ensure_init_locked(r);
  r.override_default = &resolve_locked(r, name, "set_default_target");
}

void reset_default_target() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lk(r.mu);
  ensure_init_locked(r);
  r.override_default = nullptr;
}

}  // namespace cn::exec
