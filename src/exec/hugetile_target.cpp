// The "huge-tile" execution target: cache-blocked row streaming for large
// crossbar tiles.
//
// The simd family keeps double-precision conductance copies and walks them
// in 8-column strips, touching every g row once per strip — fine while a
// tile's working set fits in cache, but a 1024x1024 tile re-streams 16 MiB
// of doubles per strip pass. This target instead keeps the float arrays
// (half the bytes), splits bitlines into chunks whose double accumulators
// stay cache-resident, and makes one pass over the g rows per chunk,
// converting float->double in-register at the point of use.
//
// Bit-exactness: float->double conversion is exact, accumulators are
// per-(item, bitline) doubles summed in ascending wordline order, and the
// translation unit is contraction-free (src/CMakeLists.txt) — exactly the
// scalar reference's arithmetic, so results are bit-identical to matvec like
// the simd family (adding zero-voltage terms is a bitwise no-op; see the
// argument in simd_target.cpp).
#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>

#include "exec/builtin.h"
#include "exec/target.h"

namespace cn::exec {
namespace {

// 1024 bitlines x 4 items x 2 polarities = 64 KiB of accumulators: resident
// in L2 alongside the streamed g rows. Chunking never changes results, only
// locality (per-bitline sums are independent).
constexpr int64_t kColChunk = 1024;

class HugeTileExec final : public TileExec {
 public:
  explicit HugeTileExec(const TileView& t)
      : gp_(t.g_pos), gn_(t.g_neg), rows_(t.rows), cols_(t.cols) {}

  int64_t row_block() const override { return 4; }

  void currents(const float* x, int64_t nitems, int64_t xis, int64_t xws,
                float* cur, int64_t ldcur, Scratch& scratch) const override {
    const int64_t chunk = std::min(kColChunk, cols_);
    double* acc = scratch.doubles(static_cast<size_t>(2 * nitems * chunk));
    for (int64_t c0 = 0; c0 < cols_; c0 += chunk) {
      const int64_t cc = std::min(chunk, cols_ - c0);
      std::fill(acc, acc + 2 * nitems * cc, 0.0);
      for (int64_t r = 0; r < rows_; ++r) {
        const float* gpr = gp_ + r * cols_ + c0;
        const float* gnr = gn_ + r * cols_ + c0;
        for (int64_t i = 0; i < nitems; ++i) {
          const double v = static_cast<double>(x[i * xis + r * xws]);
          double* ap = acc + 2 * i * cc;
          double* an = ap + cc;
          for (int64_t c = 0; c < cc; ++c) {
            ap[c] += v * static_cast<double>(gpr[c]);
            an[c] += v * static_cast<double>(gnr[c]);
          }
        }
      }
      for (int64_t i = 0; i < nitems; ++i) {
        const double* ap = acc + 2 * i * cc;
        const double* an = ap + cc;
        float* out = cur + i * ldcur + c0;
        for (int64_t c = 0; c < cc; ++c)
          out[c] = static_cast<float>(ap[c] - an[c]);
      }
    }
  }

 private:
  const float *gp_, *gn_;  // borrowed from the tile; re-lowered on mutation
  int64_t rows_, cols_;
};

class HugeTileTarget final : public Target {
 public:
  std::string name() const override { return "huge-tile"; }
  std::string description() const override {
    return "cache-blocked row-streaming float kernels for large tiles "
           "(bit-exact)";
  }
  bool available() const override { return true; }
  bool bit_exact() const override { return true; }
  std::unique_ptr<TileExec> lower(const TileView& tile) const override {
    return std::make_unique<HugeTileExec>(tile);
  }
};

}  // namespace

namespace detail {
std::unique_ptr<Target> make_hugetile_target() {
  return std::make_unique<HugeTileTarget>();
}
}  // namespace detail

}  // namespace cn::exec
