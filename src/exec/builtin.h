// Internal: constructors of the built-in execution targets. The registry
// (target.cpp) references these directly instead of relying on static
// registrar objects — in a static library, registrars living in otherwise
// unreferenced translation units would be dead-stripped and the builtins
// would silently vanish from the registry.
#pragma once

#include <memory>
#include <vector>

#include "exec/target.h"

namespace cn::exec::detail {

/// Appends the simd kernel family: the auto-dispatching "simd" target plus
/// one pinned registration per ISA level.
void append_simd_targets(std::vector<std::unique_ptr<Target>>& out);

std::unique_ptr<Target> make_int8_target();
std::unique_ptr<Target> make_hugetile_target();

}  // namespace cn::exec::detail
