// The "int8" execution target: the digital half of the batched crossbar path
// runs int8 end-to-end, modeling an accelerator whose MAC datapath is
// integer. Lowering quantizes each tile's differential conductances
// (g+ - g-) to int8 with one symmetric per-tile scale; at execution time
// each input vector is quantized with its own symmetric scale (the same
// observed-range idea as the DAC model in analog/quant.*), products
// accumulate in int32, and currents dequantize with the product of the two
// scales.
//
// Accuracy bounds (documented in docs/ARCHITECTURE.md, pinned by
// tests/test_crossbar_exec.cpp): both quantizers are symmetric mid-tread
// grids with step s = max|.|/127, so each operand carries at most s/2
// absolute error. Per bitline current over R wordlines the error is bounded
// by R * (s_x/2 * max|g_diff| + s_w/2 * max|x| + s_x*s_w/4) — relative to
// the full-scale current, about R * 1/127 in the worst case and ~1% in
// practice (errors cancel statistically across wordlines). Not bit-exact by
// construction; the parity suite asserts pinned tolerances instead.
//
// The int32 accumulator is exact: |sum| <= rows * 127 * 127, so lowering
// rejects tiles taller than 2^31 / 127^2 wordlines (~133k — far beyond any
// physical tile) rather than risk silent wraparound.
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "analog/quant.h"
#include "exec/builtin.h"
#include "exec/target.h"

namespace cn::exec {
namespace {

constexpr int64_t kMaxRows = (int64_t{1} << 31) / (127 * 127);

class Int8TileExec final : public TileExec {
 public:
  explicit Int8TileExec(const TileView& t) : rows_(t.rows), cols_(t.cols) {
    if (rows_ > kMaxRows)
      throw std::runtime_error(
          "int8 target: tile has " + std::to_string(rows_) +
          " wordlines; int32 accumulation is exact only up to " +
          std::to_string(kMaxRows));
    const size_t n = static_cast<size_t>(rows_ * cols_);
    std::vector<float> diff(n);
    for (size_t i = 0; i < n; ++i) diff[i] = t.g_pos[i] - t.g_neg[i];
    qw_.resize(n);
    w_scale_ = analog::quantize_symmetric_int8(diff.data(),
                                               static_cast<int64_t>(n),
                                               /*stride=*/1, qw_.data());
  }

  int64_t row_block() const override { return 8; }

  void currents(const float* x, int64_t nitems, int64_t xis, int64_t xws,
                float* cur, int64_t ldcur, Scratch& scratch) const override {
    int8_t* qx = scratch.bytes(static_cast<size_t>(rows_));
    int32_t* acc = scratch.ints(static_cast<size_t>(cols_));
    for (int64_t i = 0; i < nitems; ++i) {
      float* out = cur + i * ldcur;
      const float x_scale =
          analog::quantize_symmetric_int8(x + i * xis, rows_, xws, qx);
      if (x_scale == 0.0f || w_scale_ == 0.0f) {
        for (int64_t c = 0; c < cols_; ++c) out[c] = 0.0f;
        continue;
      }
      for (int64_t c = 0; c < cols_; ++c) acc[c] = 0;
      for (int64_t r = 0; r < rows_; ++r) {
        const int32_t v = qx[r];
        if (v == 0) continue;
        const int8_t* qwr = qw_.data() + r * cols_;
        for (int64_t c = 0; c < cols_; ++c) acc[c] += v * qwr[c];
      }
      const float dq = w_scale_ * x_scale;
      for (int64_t c = 0; c < cols_; ++c)
        out[c] = static_cast<float>(acc[c]) * dq;
    }
  }

 private:
  int64_t rows_, cols_;
  float w_scale_ = 0.0f;
  std::vector<int8_t> qw_;
};

class Int8Target final : public Target {
 public:
  std::string name() const override { return "int8"; }
  std::string description() const override {
    return "digital half quantized to int8 end-to-end (approximate; pinned "
           "accuracy bounds)";
  }
  bool available() const override { return true; }
  bool bit_exact() const override { return false; }
  std::unique_ptr<TileExec> lower(const TileView& tile) const override {
    return std::make_unique<Int8TileExec>(tile);
  }
};

}  // namespace

namespace detail {
std::unique_ptr<Target> make_int8_target() {
  return std::make_unique<Int8Target>();
}
}  // namespace detail

}  // namespace cn::exec
