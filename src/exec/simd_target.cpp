// The simd kernel family: register-blocked current kernels at three ISA
// levels (generic / avx2 / avx512f), previously private tables inside
// analog/crossbar.cpp, now registered as execution targets.
//
// Registrations: "simd" auto-dispatches per call (widest supported level, or
// the level forced via exec::simd::force_level — the analog::force_simd_level
// shim), and one pinned target per level proves all variants bit-identical.
//
// This translation unit must stay contraction-free (see the avx attribute
// and src/CMakeLists.txt): a fused multiply-add would round differently from
// the scalar matvec path and break the bit-exactness contract.
#include <algorithm>
#include <atomic>
#include <cstdint>
#include <vector>

#include "exec/builtin.h"
#include "exec/target.h"

namespace cn::exec {
namespace {

// Register-blocked current accumulation for RB input rows at once: one pass
// over the tile's conductances serves RB rows, and per-(row, column)
// accumulators keep the exact wordline summation order of the scalar path.
// Adding a zero-voltage term is a bitwise no-op for these sums (products are
// +/-normal or signed zero; round-to-nearest never flips an accumulator to
// -0), so the scalar path's v == 0 skip does not change results. The g
// arrays carry 8 doubles of end padding: lanes past `cols` compute garbage
// that is simply not written back.
// CONTIG: the RB input items are contiguous at each wordline (column-major
// batch, x_item_stride == 1), letting the voltage loads vectorize.
template <int RB, bool CONTIG>
[[gnu::always_inline]] inline void block_currents_impl(
    const double* gp, const double* gn, int64_t rows, int64_t cols,
    const float* x, int64_t xis, int64_t xws, float* cur, int64_t ldcur) {
  for (int64_t c0 = 0; c0 < cols; c0 += 8) {
    double accp[RB][8] = {}, accn[RB][8] = {};
    for (int64_t r = 0; r < rows; ++r) {
      const double* gpr = gp + r * cols + c0;
      const double* gnr = gn + r * cols + c0;
      double v[RB];
      if (CONTIG) {
        const float* xr = x + r * xws;
        for (int i = 0; i < RB; ++i) v[i] = static_cast<double>(xr[i]);
      } else {
        for (int i = 0; i < RB; ++i)
          v[i] = static_cast<double>(x[i * xis + r * xws]);
      }
      for (int c = 0; c < 8; ++c) {
        const double gpc = gpr[c], gnc = gnr[c];
        for (int i = 0; i < RB; ++i) {
          accp[i][c] += v[i] * gpc;
          accn[i][c] += v[i] * gnc;
        }
      }
    }
    const int64_t cc = std::min<int64_t>(8, cols - c0);
    for (int i = 0; i < RB; ++i)
      for (int64_t c = 0; c < cc; ++c)
        cur[i * ldcur + c0 + c] = static_cast<float>(accp[i][c] - accn[i][c]);
  }
}

template <int RB, bool CONTIG>
void block_currents_generic(const double* gp, const double* gn, int64_t rows,
                            int64_t cols, const float* x, int64_t xis, int64_t xws,
                            float* cur, int64_t ldcur) {
  block_currents_impl<RB, CONTIG>(gp, gn, rows, cols, x, xis, xws, cur, ldcur);
}

using BlockKernel = void (*)(const double*, const double*, int64_t, int64_t,
                             const float*, int64_t, int64_t, float*, int64_t);

// Wider SIMD variants, dispatched at runtime. Contraction must stay off
// (separate vmulpd/vaddpd): a fused multiply-add would round differently
// from the scalar path and break the bit-exact matmul == matvec guarantee.
#if defined(__x86_64__) && defined(__GNUC__) && !defined(__clang__)
template <int RB, bool CONTIG>
__attribute__((target("avx2"), optimize("fp-contract=off"))) void
block_currents_avx2(const double* gp, const double* gn, int64_t rows, int64_t cols,
                    const float* x, int64_t xis, int64_t xws, float* cur,
                    int64_t ldcur) {
  block_currents_impl<RB, CONTIG>(gp, gn, rows, cols, x, xis, xws, cur, ldcur);
}

template <int RB, bool CONTIG>
__attribute__((target("avx512f"), optimize("fp-contract=off"))) void
block_currents_avx512(const double* gp, const double* gn, int64_t rows,
                      int64_t cols, const float* x, int64_t xis, int64_t xws,
                      float* cur, int64_t ldcur) {
  block_currents_impl<RB, CONTIG>(gp, gn, rows, cols, x, xis, xws, cur, ldcur);
}

#define CN_HAVE_X86_TARGETS 1
#else
#define CN_HAVE_X86_TARGETS 0
#endif

// One kernel table per ISA level (level-major: generic, avx2, avx512f), so
// dispatch can be pinned per level for the parity targets. Builds without
// x86 target attributes alias every level to the generic kernels.
#define CN_KERNEL_LEVEL(fn)                                                   \
  {{fn<1, false>, fn<2, false>, fn<3, false>, fn<4, false>, fn<5, false>,     \
    fn<6, false>, fn<7, false>, fn<8, false>},                                \
   {fn<1, true>, fn<2, true>, fn<3, true>, fn<4, true>, fn<5, true>,          \
    fn<6, true>, fn<7, true>, fn<8, true>}}

const BlockKernel kKernelTable[3][2][8] = {
    CN_KERNEL_LEVEL(block_currents_generic),
#if CN_HAVE_X86_TARGETS
    CN_KERNEL_LEVEL(block_currents_avx2),
    CN_KERNEL_LEVEL(block_currents_avx512),
#else
    CN_KERNEL_LEVEL(block_currents_generic),
    CN_KERNEL_LEVEL(block_currents_generic),
#endif
};
#undef CN_KERNEL_LEVEL

int detect_level() {
#if CN_HAVE_X86_TARGETS
  if (__builtin_cpu_supports("avx512f")) return 2;
  if (__builtin_cpu_supports("avx2")) return 1;
#endif
  return 0;
}

// -1 = auto (host detection); otherwise a pinned level.
std::atomic<int> g_forced_level{-1};

const char* level_name(int level) {
  switch (level) {
    case 1: return "avx2";
    case 2: return "avx512f";
    default: return "generic";
  }
}

/// One lowered tile: padded double-precision conductance copies
/// (float->double conversion is exact, so results match the scalar float
/// path bit for bit while the hot loop skips per-element converts), executed
/// at a pinned level, or at the per-call auto level when pinned < 0.
class SimdTileExec final : public TileExec {
 public:
  SimdTileExec(const TileView& t, int pinned_level)
      : rows_(t.rows), cols_(t.cols), pinned_(pinned_level) {
    const size_t n = static_cast<size_t>(rows_ * cols_);
    gd_pos_.assign(n + 8, 0.0);
    gd_neg_.assign(n + 8, 0.0);
    for (size_t i = 0; i < n; ++i) {
      gd_pos_[i] = static_cast<double>(t.g_pos[i]);
      gd_neg_[i] = static_cast<double>(t.g_neg[i]);
    }
  }

  int64_t row_block() const override {
    // AVX-512's 32 registers hold an 8-row accumulator block; narrower ISAs
    // spill past 4 rows.
    return effective_level() == 2 ? 8 : 4;
  }

  void currents(const float* x, int64_t nitems, int64_t xis, int64_t xws,
                float* cur, int64_t ldcur, Scratch&) const override {
    const BlockKernel* kernels =
        kKernelTable[effective_level()][xis == 1 ? 1 : 0];
    kernels[nitems - 1](gd_pos_.data(), gd_neg_.data(), rows_, cols_, x, xis,
                        xws, cur, ldcur);
  }

 private:
  int effective_level() const {
    return pinned_ < 0 ? simd::current_level() : pinned_;
  }

  int64_t rows_, cols_;
  int pinned_;
  std::vector<double> gd_pos_, gd_neg_;
};

/// pinned_level < 0: the auto-dispatching "simd" family target.
class SimdTarget final : public Target {
 public:
  explicit SimdTarget(int pinned_level) : pinned_(pinned_level) {}

  std::string name() const override {
    return pinned_ < 0 ? "simd" : std::string("simd-") + level_name(pinned_);
  }
  std::string description() const override {
    if (pinned_ < 0)
      return "register-blocked float kernels, widest supported ISA level "
             "picked per call (default)";
    return std::string("register-blocked float kernels pinned to the ") +
           level_name(pinned_) + " ISA level";
  }
  bool available() const override { return pinned_ <= simd::max_level(); }
  bool bit_exact() const override { return true; }
  std::unique_ptr<TileExec> lower(const TileView& tile) const override {
    return std::make_unique<SimdTileExec>(tile, pinned_);
  }

 private:
  int pinned_;
};

}  // namespace

namespace simd {

int max_level() {
  static const int max = detect_level();
  return max;
}

bool force_level(int level) {
  if (level < 0 || level > max_level()) return false;
  g_forced_level.store(level, std::memory_order_relaxed);
  return true;
}

void reset_level() { g_forced_level.store(-1, std::memory_order_relaxed); }

int current_level() {
  const int forced = g_forced_level.load(std::memory_order_relaxed);
  return forced < 0 ? max_level() : forced;
}

}  // namespace simd

namespace detail {

void append_simd_targets(std::vector<std::unique_ptr<Target>>& out) {
  out.push_back(std::make_unique<SimdTarget>(-1));
  for (int level = 0; level <= 2; ++level)
    out.push_back(std::make_unique<SimdTarget>(level));
}

}  // namespace detail
}  // namespace cn::exec
