// Build provenance for live introspection: which bits are running, answered
// without a shell. The git sha and build type are baked in at configure time
// (src/CMakeLists.txt passes CN_GIT_SHA / CN_BUILD_TYPE to this TU only, so
// a new commit dirties one object file, not the library); the compiler comes
// from its own version macros and the SIMD level from the same runtime
// detection the crossbar kernel dispatch uses. Surfaced three ways:
// `correctnet_cli --version`, the /statusz header, and the
// `correctnet_build_info{...} 1` Prometheus info metric (obs/prometheus.h).
#pragma once

#include <string>

namespace cn::obs {

struct BuildInfo {
  std::string git_sha;     // short sha at configure time; "unknown" outside git
  std::string compiler;    // e.g. "gcc 12.2.0"
  std::string build_type;  // CMAKE_BUILD_TYPE, e.g. "Release"
  std::string simd;        // runtime-detected kernel ISA: generic|avx2|avx512f
};

/// The process's build info, detected once on first use.
const BuildInfo& build_info();

/// One-line human form: "correctnet <sha> (<build_type>, <compiler>, simd <level>)".
std::string build_info_line();

}  // namespace cn::obs
