// Leveled logger: the one sink for progress/status prints that used to be
// scattered std::cout / fprintf calls (campaign [k/N] progress, farm
// rebuilds). Three levels:
//   kQuiet  nothing
//   kInfo   high-level milestones (default)
//   kDebug  per-cell / per-step detail (campaign progress lines)
// Frontends pick the level (`correctnet_cli faults --quiet / --log-level`,
// the campaign `log_level` config key, CORRECTNET_LOG); the library logs
// per-cell progress at kDebug, so test and CI output stays quiet unless a
// frontend asks for it. Lines are emitted atomically (one mutex-guarded
// sink call per message) and carry no timing/ordering guarantees beyond
// that — concurrent scenarios complete in scheduler order.
#pragma once

#include <atomic>
#include <functional>
#include <mutex>
#include <string>

namespace cn::obs {

enum class LogLevel { kQuiet = 0, kInfo = 1, kDebug = 2 };

/// "quiet" | "info" | "debug" -> level; anything else throws
/// std::invalid_argument (config values must fail loudly).
LogLevel parse_log_level(const std::string& s);
const char* to_string(LogLevel level);

class Logger {
 public:
  using Sink = std::function<void(LogLevel, const std::string&)>;

  Logger() = default;
  Logger(const Logger&) = delete;
  Logger& operator=(const Logger&) = delete;

  void set_level(LogLevel level) {
    level_.store(static_cast<int>(level), std::memory_order_relaxed);
  }
  LogLevel level() const {
    return static_cast<LogLevel>(level_.load(std::memory_order_relaxed));
  }
  bool should_log(LogLevel level) const {
    return static_cast<int>(level) <= level_.load(std::memory_order_relaxed) &&
           level != LogLevel::kQuiet;
  }

  /// Emits one message when `level` is at or below the configured level.
  /// The message build cost is the caller's; guard expensive formatting
  /// with should_log().
  void log(LogLevel level, const std::string& msg);

  /// Replaces the output sink (default: stdout, one line per message).
  /// Pass nullptr to restore the default. The sink is called under the
  /// logger mutex — keep it fast and never log from inside it.
  void set_sink(Sink sink);

  /// Process-wide logger (leaked singleton — see MetricsRegistry::global).
  static Logger& global();

 private:
  std::atomic<int> level_{static_cast<int>(LogLevel::kInfo)};
  std::mutex mu_;
  Sink sink_;  // empty = default stdout sink
};

/// Shorthands over the global logger.
void log_info(const std::string& msg);
void log_debug(const std::string& msg);

}  // namespace cn::obs
