#include "obs/snapshot_stream.h"

#include <stdexcept>

#include "obs/log.h"

namespace cn::obs {

namespace {

std::string json_num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

std::string json_escaped(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out.push_back(c);
  }
  return out;
}

}  // namespace

MetricsSnapshotter::MetricsSnapshotter(MetricsSnapshotterOptions opts,
                                       MetricsRegistry& reg)
    : opts_(std::move(opts)), reg_(reg) {
  if (!(opts_.interval_s > 0.0))
    throw std::invalid_argument("MetricsSnapshotter: interval_s must be > 0");
  f_ = std::fopen(opts_.path.c_str(), "a");
  if (!f_)
    throw std::runtime_error("MetricsSnapshotter: cannot open " + opts_.path);
  origin_ = std::chrono::steady_clock::now();
  prev_ = reg_.snapshot();  // tick 0 baseline: deltas start at "now"
  thread_ = std::thread([this] { tick_loop(); });
}

MetricsSnapshotter::~MetricsSnapshotter() { stop(); }

void MetricsSnapshotter::tick_loop() {
  std::unique_lock<std::mutex> lk(mu_);
  const auto period = std::chrono::duration<double>(opts_.interval_s);
  for (;;) {
    cv_.wait_for(lk, period, [this] { return stop_; });
    if (stop_) return;  // stop() writes the final line itself
    write_line_locked(std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - origin_)
                          .count());
  }
}

void MetricsSnapshotter::write_line_locked(double now_s) {
  const RegistrySnapshot cur = reg_.snapshot();
  std::string line = "{\"t_s\": " + json_num(now_s) +
                     ", \"dt_s\": " + json_num(now_s - prev_t_) +
                     ", \"seq\": " + std::to_string(seq_);
  // Counters: interval deltas, zero deltas omitted (long streams stay
  // proportional to activity, not to registry size).
  std::string part;
  for (const auto& [name, v] : cur.counters) {
    const auto it = prev_.counters.find(name);
    const uint64_t p = it == prev_.counters.end() ? 0 : it->second;
    const uint64_t d = v > p ? v - p : 0;
    if (!d) continue;
    if (!part.empty()) part += ", ";
    part += "\"" + json_escaped(name) + "\": " + std::to_string(d);
  }
  if (!part.empty()) line += ", \"counters\": {" + part + "}";
  // Gauges: instantaneous values (a delta of a last-write-wins value is
  // meaningless), always emitted so plots have a continuous series.
  part.clear();
  for (const auto& [name, v] : cur.gauges) {
    if (!part.empty()) part += ", ";
    part += "\"" + json_escaped(name) + "\": " + json_num(v);
  }
  if (!part.empty()) line += ", \"gauges\": {" + part + "}";
  // Histograms: interval delta count/sum plus rank-exact quantiles of just
  // this interval's samples (bucket sketches subtract exactly).
  part.clear();
  for (const auto& [name, s] : cur.histograms) {
    const auto it = prev_.histograms.find(name);
    const LatencyHistogram::Snapshot d =
        it == prev_.histograms.end()
            ? s
            : s.delta_since(it->second);
    if (!d.count) continue;
    if (!part.empty()) part += ", ";
    part += "\"" + json_escaped(name) + "\": {\"count\": " +
            std::to_string(d.count) + ", \"sum_us\": " +
            std::to_string(d.sum_us) + ", \"p50_us\": " +
            json_num(d.percentile(0.5)) + ", \"p99_us\": " +
            json_num(d.percentile(0.99)) + "}";
  }
  if (!part.empty()) line += ", \"hists\": {" + part + "}";
  line += "}\n";
  std::fwrite(line.data(), 1, line.size(), f_);
  std::fflush(f_);
  prev_ = cur;
  prev_t_ = now_s;
  ++seq_;
  ++lines_;
}

void MetricsSnapshotter::flush() {
  std::lock_guard<std::mutex> lk(mu_);
  if (!f_) return;
  write_line_locked(std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - origin_)
                        .count());
}

void MetricsSnapshotter::stop() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (stop_ && !f_) return;
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  std::lock_guard<std::mutex> lk(mu_);
  if (!f_) return;
  // Final partial-interval line: nothing recorded before shutdown is lost.
  write_line_locked(std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - origin_)
                        .count());
  std::fclose(f_);
  f_ = nullptr;
}

uint64_t MetricsSnapshotter::lines_written() const {
  std::lock_guard<std::mutex> lk(mu_);
  return lines_;
}

// ---------- global instance ----------

namespace {
// Leaked like the other obs singletons (atexit hooks and the signal handler
// may flush during teardown); guarded because start can race frontends.
std::mutex g_global_mu;
MetricsSnapshotter* g_global = nullptr;
}  // namespace

void MetricsSnapshotter::start_global(const std::string& path,
                                      double interval_s) {
  std::lock_guard<std::mutex> lk(g_global_mu);
  if (g_global) {
    if (g_global->opts_.path != path)
      log_info("[obs] metrics stream already running (" +
               g_global->opts_.path + "); ignoring " + path);
    return;
  }
  MetricsSnapshotterOptions o;
  o.path = path;
  o.interval_s = interval_s;
  g_global = new MetricsSnapshotter(std::move(o));
}

MetricsSnapshotter* MetricsSnapshotter::global() {
  std::lock_guard<std::mutex> lk(g_global_mu);
  return g_global;
}

void MetricsSnapshotter::flush_global() noexcept {
  try {
    if (MetricsSnapshotter* s = global()) s->flush();
  } catch (...) {
  }
}

void MetricsSnapshotter::stop_global() noexcept {
  try {
    MetricsSnapshotter* s = nullptr;
    {
      std::lock_guard<std::mutex> lk(g_global_mu);
      s = g_global;
      g_global = nullptr;
    }
    if (s) {
      s->stop();
      delete s;
    }
  } catch (...) {
  }
}

}  // namespace cn::obs
