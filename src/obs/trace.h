// Lightweight span tracer emitting Chrome trace_event-format JSON.
//
// The Tracer collects complete ("ph":"X") and instant ("ph":"i") events into
// a bounded in-memory buffer; write_json() emits the {"traceEvents": [...]}
// object that chrome://tracing and Perfetto load directly. Tracing is off by
// default: a disabled Span costs one relaxed atomic load and no clock read,
// so instrumented hot paths stay hot. Like every obs primitive, tracing
// never touches rng streams or numeric paths — results are byte-identical
// with tracing on or off.
//
// Enablement: CLI `--trace-out FILE`, the campaign `trace_out` config key,
// or CORRECTNET_TRACE=FILE (obs::init_from_env). Timestamps are steady-clock
// microseconds since the tracer singleton was created; thread ids are
// compacted to small integers at write time.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace cn::obs {

class Tracer {
 public:
  using Clock = std::chrono::steady_clock;

  /// Events beyond this are counted in dropped() instead of stored, so a
  /// runaway trace bounds memory (~100 bytes/event).
  static constexpr size_t kMaxEvents = 1 << 20;

  Tracer();
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Records a complete event covering [start, end] on the calling thread.
  void complete(std::string name, const char* cat, Clock::time_point start,
                Clock::time_point end);
  /// Records an instant event at now() on the calling thread.
  void instant(std::string name, const char* cat);

  size_t event_count() const;
  uint64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }
  void clear();

  /// Chrome trace-event JSON: {"traceEvents": [...]}. Thread ids are
  /// assigned densely in first-appearance order; pid is always 1.
  std::string to_json() const;
  void write_json(const std::string& path) const;

  /// Process-wide tracer (leaked singleton — see MetricsRegistry::global).
  static Tracer& global();

 private:
  struct Event {
    std::string name;
    const char* cat;
    uint64_t ts_us;
    uint64_t dur_us;  // 0 for instant events
    std::thread::id tid;
    char ph;  // 'X' complete, 'i' instant
  };
  void push(Event ev);

  std::atomic<bool> enabled_{false};
  std::atomic<uint64_t> dropped_{0};
  Clock::time_point origin_;
  mutable std::mutex mu_;
  std::vector<Event> events_;
};

/// RAII span over the global tracer: captures the start time when tracing is
/// enabled at construction, records a complete event at destruction. The
/// std::string overload takes the (possibly empty) name by value so callers
/// can build labels only when enabled() says anyone is listening.
class Span {
 public:
  Span(const char* name, const char* cat) : Span(std::string(name), cat) {}
  Span(std::string name, const char* cat);
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  std::string name_;
  const char* cat_;
  Tracer::Clock::time_point start_;
  bool active_;
};

}  // namespace cn::obs
