#include "obs/prometheus.h"

#include <cstdio>

#include "obs/build_info.h"

namespace cn::obs {

namespace {

// %.17g round-trips doubles and trims trailing zeros ("40", not "40.000000").
std::string prom_num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string u64(uint64_t v) { return std::to_string(v); }

// HELP text escaping: backslash and newline only (quotes are legal there).
std::string escape_help(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '\\') out += "\\\\";
    else if (c == '\n') out += "\\n";
    else out.push_back(c);
  }
  return out;
}

void family_header(std::string& out, const std::string& name,
                   const std::string& help, const char* type) {
  out += "# HELP " + name + " " + escape_help(help) + "\n";
  out += "# TYPE " + name + " " + std::string(type) + "\n";
}

void render_histogram(std::string& out, const std::string& reg_name,
                      const LatencyHistogram::Snapshot& s) {
  const std::string base = prom_name(reg_name);
  family_header(out, base,
                "CorrectNet histogram \"" + reg_name +
                    "\" (integer microseconds, cumulative buckets).",
                "histogram");
  // One cumulative le line per occupied sketch bucket (upper edge; values
  // are integer us, so every sample in bucket i is <= upper(i)), then +Inf.
  uint64_t cum = 0;
  for (size_t i = 0; i < s.buckets.size(); ++i) {
    if (!s.buckets[i]) continue;
    cum += s.buckets[i];
    out += base + "_bucket{le=\"" +
           u64(LatencyHistogram::bucket_upper(static_cast<int>(i))) + "\"} " +
           u64(cum) + "\n";
  }
  out += base + "_bucket{le=\"+Inf\"} " + u64(s.count) + "\n";
  out += base + "_sum " + u64(s.sum_us) + "\n";
  out += base + "_count " + u64(s.count) + "\n";
  // Exact-rank percentile gauges ride in their own family: quantile samples
  // inside a histogram family would be invalid exposition.
  family_header(out, base + "_quantile",
                "Exact-rank quantiles of \"" + reg_name +
                    "\" (lower edge of the bucket holding the rank).",
                "gauge");
  for (double q : {0.5, 0.99, 0.999})
    out += base + "_quantile{q=\"" + prom_num(q) + "\"} " +
           prom_num(s.percentile(q)) + "\n";
}

}  // namespace

std::string prom_name(const std::string& registry_name) {
  std::string out = "correctnet_";
  out.reserve(out.size() + registry_name.size());
  for (char c : registry_name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  return out;
}

std::string prom_escape_label(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    if (c == '\\') out += "\\\\";
    else if (c == '"') out += "\\\"";
    else if (c == '\n') out += "\\n";
    else out.push_back(c);
  }
  return out;
}

std::string render_prometheus(const RegistrySnapshot& snap) {
  std::string out;
  // One walk over the merged, sorted name space so families appear in
  // registry order regardless of kind.
  auto ci = snap.counters.begin();
  auto gi = snap.gauges.begin();
  auto hi = snap.histograms.begin();
  while (ci != snap.counters.end() || gi != snap.gauges.end() ||
         hi != snap.histograms.end()) {
    // Smallest pending name wins; names are unique across kinds (the
    // registry rejects cross-kind collisions).
    const std::string* next = nullptr;
    if (ci != snap.counters.end()) next = &ci->first;
    if (gi != snap.gauges.end() && (!next || gi->first < *next))
      next = &gi->first;
    if (hi != snap.histograms.end() && (!next || hi->first < *next))
      next = &hi->first;
    if (ci != snap.counters.end() && &ci->first == next) {
      const std::string name = prom_name(ci->first) + "_total";
      family_header(out, name, "CorrectNet counter \"" + ci->first + "\".",
                    "counter");
      out += name + " " + u64(ci->second) + "\n";
      ++ci;
    } else if (gi != snap.gauges.end() && &gi->first == next) {
      const std::string name = prom_name(gi->first);
      family_header(out, name, "CorrectNet gauge \"" + gi->first + "\".",
                    "gauge");
      out += name + " " + prom_num(gi->second) + "\n";
      ++gi;
    } else {
      render_histogram(out, hi->first, hi->second);
      ++hi;
    }
  }
  const BuildInfo& b = build_info();
  family_header(out, "correctnet_build_info",
                "Build provenance; the value is always 1.", "gauge");
  out += "correctnet_build_info{git_sha=\"" + prom_escape_label(b.git_sha) +
         "\",compiler=\"" + prom_escape_label(b.compiler) +
         "\",build_type=\"" + prom_escape_label(b.build_type) + "\",simd=\"" +
         prom_escape_label(b.simd) + "\"} 1\n";
  return out;
}

std::string render_prometheus(const MetricsRegistry& reg) {
  return render_prometheus(reg.snapshot());
}

}  // namespace cn::obs
