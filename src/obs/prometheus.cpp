#include "obs/prometheus.h"

#include <cstdio>

#include "obs/build_info.h"

namespace cn::obs {

namespace {

// %.17g round-trips doubles and trims trailing zeros ("40", not "40.000000").
std::string prom_num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string u64(uint64_t v) { return std::to_string(v); }

// HELP text escaping: backslash and newline only (quotes are legal there).
std::string escape_help(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '\\') out += "\\\\";
    else if (c == '\n') out += "\\n";
    else out.push_back(c);
  }
  return out;
}

void family_header(std::string& out, const std::string& name,
                   const std::string& help, const char* type) {
  out += "# HELP " + name + " " + escape_help(help) + "\n";
  out += "# TYPE " + name + " " + std::string(type) + "\n";
}

// Registry names carry optional labels as an opaque suffix
// ("server.requests{model=mnist}", see obs::labeled). Split one back into
// the base name and a rendered Prometheus label body (`model="mnist"`);
// a name without a well-formed suffix is all base.
struct SplitName {
  std::string base;
  std::string labels;  // rendered pairs, no braces; "" = unlabeled
};

SplitName split_name(const std::string& reg_name) {
  const size_t brace = reg_name.find('{');
  if (brace == std::string::npos || reg_name.back() != '}')
    return {reg_name, ""};
  SplitName sn;
  sn.base = reg_name.substr(0, brace);
  const std::string body =
      reg_name.substr(brace + 1, reg_name.size() - brace - 2);
  size_t pos = 0;
  while (pos <= body.size()) {
    const size_t comma = body.find(',', pos);
    const std::string pair =
        body.substr(pos, comma == std::string::npos ? comma : comma - pos);
    const size_t eq = pair.find('=');
    if (eq == std::string::npos || eq == 0)
      return {reg_name, ""};  // malformed: prom_name will sanitize the braces
    if (!sn.labels.empty()) sn.labels += ",";
    sn.labels +=
        pair.substr(0, eq) + "=\"" + prom_escape_label(pair.substr(eq + 1)) +
        "\"";
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return sn;
}

// All series of one base name, in registry (label-suffix) order.
template <typename V>
using Family = std::vector<std::pair<std::string /*labels*/, V>>;

template <typename V>
std::map<std::string, Family<const V*>> group_families(
    const std::map<std::string, V>& series) {
  std::map<std::string, Family<const V*>> fams;
  for (const auto& [name, value] : series) {
    SplitName sn = split_name(name);
    fams[sn.base].emplace_back(sn.labels, &value);
  }
  return fams;
}

std::string series_name(const std::string& prom_base,
                        const std::string& labels) {
  return labels.empty() ? prom_base : prom_base + "{" + labels + "}";
}

void render_histogram_family(
    std::string& out, const std::string& reg_base,
    const Family<const LatencyHistogram::Snapshot*>& fam) {
  const std::string base = prom_name(reg_base);
  family_header(out, base,
                "CorrectNet histogram \"" + reg_base +
                    "\" (integer microseconds, cumulative buckets).",
                "histogram");
  for (const auto& [labels, s] : fam) {
    // One cumulative le line per occupied sketch bucket (upper edge; values
    // are integer us, so every sample in bucket i is <= upper(i)), then +Inf.
    const std::string le_prefix =
        base + "_bucket{" + (labels.empty() ? "" : labels + ",") + "le=\"";
    uint64_t cum = 0;
    for (size_t i = 0; i < s->buckets.size(); ++i) {
      if (!s->buckets[i]) continue;
      cum += s->buckets[i];
      out += le_prefix +
             u64(LatencyHistogram::bucket_upper(static_cast<int>(i))) +
             "\"} " + u64(cum) + "\n";
    }
    out += le_prefix + "+Inf\"} " + u64(s->count) + "\n";
    out += series_name(base + "_sum", labels) + " " + u64(s->sum_us) + "\n";
    out += series_name(base + "_count", labels) + " " + u64(s->count) + "\n";
  }
  // Exact-rank percentile gauges ride in their own family: quantile samples
  // inside a histogram family would be invalid exposition.
  family_header(out, base + "_quantile",
                "Exact-rank quantiles of \"" + reg_base +
                    "\" (lower edge of the bucket holding the rank).",
                "gauge");
  for (const auto& [labels, s] : fam)
    for (double q : {0.5, 0.99, 0.999})
      out += base + "_quantile{" + (labels.empty() ? "" : labels + ",") +
             "q=\"" + prom_num(q) + "\"} " + prom_num(s->percentile(q)) + "\n";
}

}  // namespace

std::string prom_name(const std::string& registry_name) {
  std::string out = "correctnet_";
  out.reserve(out.size() + registry_name.size());
  for (char c : registry_name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  return out;
}

std::string prom_escape_label(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    if (c == '\\') out += "\\\\";
    else if (c == '"') out += "\\\"";
    else if (c == '\n') out += "\\n";
    else out.push_back(c);
  }
  return out;
}

std::string render_prometheus(const RegistrySnapshot& snap) {
  std::string out;
  // Labeled series ("base{model=x}") collapse into one family per base name
  // with one HELP/TYPE header and a sample line per label set; grouping
  // happens before the merge so "server.requests" and
  // "server.requests{model=x}" never split a family.
  const auto counters = group_families(snap.counters);
  const auto gauges = group_families(snap.gauges);
  const auto hists = group_families(snap.histograms);
  // One walk over the merged, sorted base-name space so families appear in
  // registry order regardless of kind.
  auto ci = counters.begin();
  auto gi = gauges.begin();
  auto hi = hists.begin();
  while (ci != counters.end() || gi != gauges.end() || hi != hists.end()) {
    // Smallest pending base name wins; names are unique across kinds (the
    // registry rejects cross-kind collisions).
    const std::string* next = nullptr;
    if (ci != counters.end()) next = &ci->first;
    if (gi != gauges.end() && (!next || gi->first < *next)) next = &gi->first;
    if (hi != hists.end() && (!next || hi->first < *next)) next = &hi->first;
    if (ci != counters.end() && &ci->first == next) {
      const std::string name = prom_name(ci->first) + "_total";
      family_header(out, name, "CorrectNet counter \"" + ci->first + "\".",
                    "counter");
      for (const auto& [labels, v] : ci->second)
        out += series_name(name, labels) + " " + u64(*v) + "\n";
      ++ci;
    } else if (gi != gauges.end() && &gi->first == next) {
      const std::string name = prom_name(gi->first);
      family_header(out, name, "CorrectNet gauge \"" + gi->first + "\".",
                    "gauge");
      for (const auto& [labels, v] : gi->second)
        out += series_name(name, labels) + " " + prom_num(*v) + "\n";
      ++gi;
    } else {
      render_histogram_family(out, hi->first, hi->second);
      ++hi;
    }
  }
  const BuildInfo& b = build_info();
  family_header(out, "correctnet_build_info",
                "Build provenance; the value is always 1.", "gauge");
  out += "correctnet_build_info{git_sha=\"" + prom_escape_label(b.git_sha) +
         "\",compiler=\"" + prom_escape_label(b.compiler) +
         "\",build_type=\"" + prom_escape_label(b.build_type) + "\",simd=\"" +
         prom_escape_label(b.simd) + "\"} 1\n";
  return out;
}

std::string render_prometheus(const MetricsRegistry& reg) {
  return render_prometheus(reg.snapshot());
}

}  // namespace cn::obs
