// MetricsSnapshotter: a background thread that appends interval-delta
// registry snapshots to a JSONL stream, so rate/derivative plots of a long
// run are possible post hoc without running a scraper against the
// exposition server.
//
// Each line is one self-contained JSON object:
//
//   {"t_s": 12.40, "dt_s": 1.00, "seq": 12,
//    "counters": {"server.requests": 830},            // interval deltas
//    "gauges": {"server.queue_depth": 3},             // current values
//    "hists": {"server.latency_us":
//      {"count": 830, "sum_us": 412000, "p50_us": 410, "p99_us": 2110}}}
//                                                     // interval deltas +
//                                                     // interval quantiles
//
// Counter and histogram entries are deltas against the previous tick
// (Snapshot::delta_since — bucket sketches subtract exactly, so the interval
// quantiles are rank-exact over just that interval's samples); zero-delta
// entries are omitted, gauges always report their instantaneous value. The
// first tick's baseline is the registry state at start(), and stop() (or
// flush()) emits one final partial-interval line so nothing recorded before
// shutdown is lost. Lines sum: adding a counter's deltas over all lines
// reproduces its cumulative value — pinned in tests/test_exposition.cpp.
//
// Exposure: `--metrics-stream FILE` (CLI / serve_demo), the campaign
// `metrics_stream` config key, CORRECTNET_METRICS_STREAM (init_from_env).
// The signal-flush handler (CORRECTNET_SIGNAL_FLUSH) flushes the global
// stream before re-raising. Timing-only, like every obs surface: streaming
// never changes a result byte.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <mutex>
#include <string>
#include <thread>

#include "obs/metrics.h"

namespace cn::obs {

struct MetricsSnapshotterOptions {
  std::string path;          // JSONL file, appended to
  double interval_s = 1.0;   // tick period; must be > 0
};

class MetricsSnapshotter {
 public:
  /// Opens the stream (append) and starts the tick thread. Throws when the
  /// file cannot be opened or the interval is not positive.
  MetricsSnapshotter(MetricsSnapshotterOptions opts,
                     MetricsRegistry& reg = metrics());
  ~MetricsSnapshotter();  // stop()

  MetricsSnapshotter(const MetricsSnapshotter&) = delete;
  MetricsSnapshotter& operator=(const MetricsSnapshotter&) = delete;

  /// Writes one delta line now (partial interval). Thread-safe; used by the
  /// signal-flush path and by stop().
  void flush();

  /// Final flush + joins the tick thread. Idempotent.
  void stop();

  uint64_t lines_written() const;

  /// Process-global instance management (CORRECTNET_METRICS_STREAM, the
  /// campaign `metrics_stream` key, --metrics-stream). start_global is
  /// first-writer-wins: a second path while one is running is ignored with a
  /// log_info notice, matching the process-wide registry it snapshots.
  static void start_global(const std::string& path, double interval_s = 1.0);
  static MetricsSnapshotter* global();  // nullptr when not running
  static void flush_global() noexcept;  // no-op when not running
  static void stop_global() noexcept;   // no-op when not running

 private:
  void tick_loop();
  void write_line_locked(double now_s);  // requires mu_ held

  MetricsSnapshotterOptions opts_;
  MetricsRegistry& reg_;
  std::FILE* f_ = nullptr;
  std::chrono::steady_clock::time_point origin_;
  RegistrySnapshot prev_;   // baseline for the next delta line
  double prev_t_ = 0.0;
  uint64_t seq_ = 0;
  uint64_t lines_ = 0;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::thread thread_;
};

}  // namespace cn::obs
