#include "obs/build_info.h"

#include <cstdio>

#include "analog/crossbar.h"

namespace cn::obs {

namespace {

std::string detect_compiler() {
#if defined(__clang__)
  return std::string("clang ") + std::to_string(__clang_major__) + "." +
         std::to_string(__clang_minor__) + "." +
         std::to_string(__clang_patchlevel__);
#elif defined(__GNUC__)
  return std::string("gcc ") + std::to_string(__GNUC__) + "." +
         std::to_string(__GNUC_MINOR__) + "." +
         std::to_string(__GNUC_PATCHLEVEL__);
#else
  return "unknown";
#endif
}

std::string detect_simd() {
  // The same detection the "simd" target's auto-dispatch uses, so /statusz
  // reports the ISA the kernels will actually run.
  switch (analog::simd_max_level()) {
    case analog::SimdLevel::kAvx512f: return "avx512f";
    case analog::SimdLevel::kAvx2: return "avx2";
    case analog::SimdLevel::kGeneric: break;
  }
  return "generic";
}

}  // namespace

const BuildInfo& build_info() {
  static const BuildInfo info = [] {
    BuildInfo b;
#ifdef CN_GIT_SHA
    b.git_sha = CN_GIT_SHA;
#else
    b.git_sha = "unknown";
#endif
#ifdef CN_BUILD_TYPE
    b.build_type = CN_BUILD_TYPE;
#else
    b.build_type = "unknown";
#endif
    if (b.git_sha.empty()) b.git_sha = "unknown";
    if (b.build_type.empty()) b.build_type = "unknown";
    b.compiler = detect_compiler();
    b.simd = detect_simd();
    return b;
  }();
  return info;
}

std::string build_info_line() {
  const BuildInfo& b = build_info();
  return "correctnet " + b.git_sha + " (" + b.build_type + ", " + b.compiler +
         ", simd " + b.simd + ")";
}

}  // namespace cn::obs
