// Prometheus text exposition (format v0.0.4) for the metrics registry — the
// pull-based twin of MetricsRegistry::snapshot_json(). Rendering consumes a
// RegistrySnapshot, so one coherent copy feeds the whole page, and maps the
// registry's dotted names into the Prometheus grammar:
//
//   counter   a.b        -> correctnet_a_b_total            (TYPE counter)
//   gauge     a.b        -> correctnet_a_b                  (TYPE gauge)
//   histogram a.b        -> correctnet_a_b histogram family:
//                             correctnet_a_b_bucket{le="..."}  cumulative
//                             correctnet_a_b_sum / _count
//                           plus exact-rank percentile gauges
//                             correctnet_a_b_quantile{q="0.5|0.99|0.999"}
//
// Histogram buckets emit one cumulative `le` line per *occupied* sketch
// bucket (upper edge) plus le="+Inf" — exact counts, without 1300 zero
// lines per histogram. The percentile gauges carry the same rank-exact
// values snapshot_json() reports (quantile labels on a separate _quantile
// family: mixing quantile samples into a histogram family is invalid
// exposition). Every family gets # HELP and # TYPE lines; label values are
// escaped per the text-format rules. The page ends with
// `correctnet_build_info{git_sha=...,compiler=...,build_type=...,simd=...} 1`
// (obs/build_info.h).
//
// Like every obs surface: rendering reads atomics and allocates strings,
// touches no rng stream and no numeric path — scraping a live run never
// changes a result byte (tier-1, tests/test_exposition.cpp).
#pragma once

#include <string>

#include "obs/metrics.h"

namespace cn::obs {

/// Maps a registry metric name onto the Prometheus name grammar
/// [a-zA-Z_:][a-zA-Z0-9_:]* under the "correctnet_" prefix: '.' and every
/// other illegal character become '_' ("server.latency_us" ->
/// "correctnet_server_latency_us"). Suffixes (_total, _bucket, ...) are the
/// renderer's job, not the caller's.
std::string prom_name(const std::string& registry_name);

/// Escapes a label value: backslash, double quote, and newline, per the text
/// exposition format.
std::string prom_escape_label(const std::string& value);

/// Renders one snapshot as a complete exposition page (build-info metric
/// included). Deterministic for a given snapshot: families in sorted
/// registry-name order, buckets in ascending le order.
std::string render_prometheus(const RegistrySnapshot& snap);

/// Convenience: snapshot + render, the /metrics endpoint body.
std::string render_prometheus(const MetricsRegistry& reg);

}  // namespace cn::obs
