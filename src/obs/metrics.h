// Process-wide metrics: counters, gauges, and fixed-bucket latency
// histograms behind a named registry.
//
// Design constraints, in order:
//  1. Instrumentation must never perturb results. No metric touches an rng
//     stream or a numeric path, so every byte-exactness contract in the repo
//     (matmul == matvec, seq == parallel CampaignReports, per-target parity)
//     holds with metrics on or off — asserted in tier-1 (tests/test_obs.cpp).
//  2. The hot path is lock-free. Callers resolve a metric by name once
//     (mutex-guarded map, setup time) and hold a stable reference; recording
//     is then a relaxed atomic add — histograms stripe one atomic per
//     bucket, so concurrent recorders never contend on a lock.
//  3. Summaries are mergeable. A histogram is a fixed vector of counts —
//     merging two is bucket-wise addition, the compact-sketch shape (cf. the
//     IBLT line of work in PAPERS.md) that lets per-thread or, later,
//     per-shard histograms combine into exactly the histogram one recorder
//     would have produced.
//
// Histogram buckets are HdrHistogram-style: integer microseconds, exact unit
// buckets below 32 us, then every power-of-two octave split into 32
// sub-buckets (3.1 % relative width) up to 2^40 us. Percentile extraction is
// rank-exact — the rank comes from exact bucket counts, and the returned
// value is the lower edge of the bucket holding that rank — so the true
// sample quantile q satisfies  p(q) <= quantile < p(q) * 33/32 + 1  (equality
// below 32 us). tests/test_obs.cpp pins this against a sorted-vector oracle.
//
// Exposure: MetricsRegistry::snapshot_json() emits the flat ordered-key
// BenchJson shape ("name" first, then sorted metric keys); the CLI surfaces
// it as `--metrics-out FILE`, the campaign config as `metrics_out`, and the
// CORRECTNET_METRICS env var (see init_from_env) writes it at process exit.
// docs/OBSERVABILITY.md is the metric catalog.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace cn::obs {

/// Monotonic event count. Relaxed atomic increments; a registry-owned
/// counter is gated on the registry's enabled flag (one relaxed load),
/// a standalone-constructed one always records.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void add(uint64_t n = 1) {
    if (gate_ && !gate_->load(std::memory_order_relaxed)) return;
    v_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  const std::atomic<bool>* gate_ = nullptr;
  std::atomic<uint64_t> v_{0};
};

/// Last-write-wins instantaneous value (queue depth, scenarios/sec). add()
/// is a CAS loop — cold-path only by design.
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void set(double v) {
    if (gate_ && !gate_->load(std::memory_order_relaxed)) return;
    v_.store(v, std::memory_order_relaxed);
  }
  void add(double d) {
    if (gate_ && !gate_->load(std::memory_order_relaxed)) return;
    double cur = v_.load(std::memory_order_relaxed);
    while (!v_.compare_exchange_weak(cur, cur + d, std::memory_order_relaxed)) {
    }
  }
  double value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0.0, std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  const std::atomic<bool>* gate_ = nullptr;
  std::atomic<double> v_{0.0};
};

/// Fixed-bucket latency histogram over integer microseconds (see the bucket
/// scheme in the header comment). Recording is one relaxed atomic add per
/// bucket plus count/sum/min/max maintenance; no allocation, no lock.
class LatencyHistogram {
 public:
  // 32 unit buckets, then 32 sub-buckets per octave for octaves 5..39.
  static constexpr int kSubBits = 5;
  static constexpr int kSubBuckets = 1 << kSubBits;  // 32
  static constexpr int kMaxOctave = 40;              // values cap at 2^40 us
  static constexpr int kNumBuckets =
      kSubBuckets + (kMaxOctave - kSubBits) * kSubBuckets;

  LatencyHistogram();
  LatencyHistogram(const LatencyHistogram&) = delete;
  LatencyHistogram& operator=(const LatencyHistogram&) = delete;

  /// Records one value (microseconds; negatives clamp to 0, huge values to
  /// the top bucket).
  void record(double us);

  /// Bucket index of an integer-microsecond value, and the inclusive lower /
  /// exclusive upper value edges of a bucket. Exposed for the oracle test.
  static int bucket_index(uint64_t us);
  static uint64_t bucket_lower(int index);
  static uint64_t bucket_upper(int index);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum_us() const {
    return static_cast<double>(sum_.load(std::memory_order_relaxed));
  }
  double mean_us() const;
  double min_us() const;  // 0 when empty
  double max_us() const;  // 0 when empty

  /// The lower edge of the bucket containing the exact rank ceil(q * count)
  /// (q clamped to (0, 1]); 0 when empty. The true sample quantile is never
  /// below the returned value and at most one bucket width above it.
  double percentile(double q) const;

  /// Bucket-wise addition of another histogram's current contents: the
  /// merged histogram equals what a single recorder would have produced.
  void merge(const LatencyHistogram& other);

  /// A coherent-enough copy for reporting: bucket counts plus the summary
  /// fields, loaded relaxed (concurrent recording may skew totals by the
  /// in-flight records; fine for observability).
  struct Snapshot {
    uint64_t count = 0;
    uint64_t sum_us = 0;
    uint64_t min_us = 0;
    uint64_t max_us = 0;
    std::vector<uint64_t> buckets;  // kNumBuckets entries
    double percentile(double q) const;
    /// Interval delta against an earlier snapshot of the same histogram:
    /// bucket-wise and count/sum subtraction (a snapshot taken later can
    /// never have smaller buckets; a reset in between clamps to this
    /// snapshot's values instead of underflowing). min/max cover the whole
    /// histogram lifetime, not the interval, and are copied through. The
    /// delta is itself a valid Snapshot — percentile() over it is the
    /// exact-rank quantile of just the interval's samples, which is what
    /// the snapshot stream and the SLO burn-rate tracker consume.
    Snapshot delta_since(const Snapshot& prev) const;
  };
  Snapshot snapshot() const;

  void reset();

 private:
  friend class MetricsRegistry;
  const std::atomic<bool>* gate_ = nullptr;
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> min_{UINT64_MAX};
  std::atomic<uint64_t> max_{0};
  std::vector<std::atomic<uint64_t>> buckets_;
};

/// One coherent copy of every registered metric, taken under the registry
/// lock. The one input shape every exposition surface consumes: the JSON
/// writer, the Prometheus text renderer (obs/prometheus.h), the interval
/// snapshot stream (obs/snapshot_stream.h), and the /statusz dump all
/// render a RegistrySnapshot rather than re-walking the registry.
struct RegistrySnapshot {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, LatencyHistogram::Snapshot> histograms;
};

/// Named metric registry. Lookup is mutex-guarded and returns a stable
/// reference — resolve once, record lock-free forever. A name is bound to
/// one metric kind; asking for the same name as a different kind throws.
/// set_enabled(false) gates every registry-owned metric off (the metrics-on
/// vs metrics-off byte-identity test flips this), without touching values.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  LatencyHistogram& histogram(const std::string& name);

  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Copies every registered metric under the registry lock (histograms via
  /// LatencyHistogram::snapshot, so bucket counts are per-histogram
  /// coherent). Names keep their registry form ("server.latency_us");
  /// renderers map them to their own conventions.
  RegistrySnapshot snapshot() const;

  /// Flat BenchJson-shaped object: {"name": "metrics", <sorted keys>...}.
  /// Counters/gauges emit under their name; a histogram emits
  /// name.count/.mean_us/.min_us/.max_us/.p50_us/.p99_us/.p999_us.
  std::string snapshot_json() const;
  void write_json(const std::string& path) const;

  /// Zeroes every registered metric (registrations survive). Not safe
  /// against concurrent recorders; test/tooling use only.
  void reset();

  /// Process-wide registry (leaked singleton: safe to record from worker
  /// threads and atexit hooks in any destruction order).
  static MetricsRegistry& global();

 private:
  mutable std::mutex mu_;
  std::atomic<bool> enabled_{true};
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<LatencyHistogram>> hists_;
};

/// Shorthand for MetricsRegistry::global().
MetricsRegistry& metrics();

/// Canonical labeled-metric registry name: labeled("server.requests",
/// "model", "mnist") == "server.requests{model=mnist}". The registry treats
/// the result as an opaque name (one independent metric per distinct label
/// value); the Prometheus renderer parses the suffix back into a real
/// `{model="mnist"}` label and groups all series of one base name into one
/// family. Multiple labels compose by calling labeled() on the result —
/// pairs stay comma-separated and the renderer splits them. The label key
/// must be a valid Prometheus label name ([a-zA-Z_][a-zA-Z0-9_]*); the value
/// must not contain '{', '}', ',', '=' or newline. Violations throw
/// std::invalid_argument — a malformed name would silently corrupt the
/// exposition page.
std::string labeled(const std::string& name, const std::string& key,
                    const std::string& value);

/// One-shot environment hookup, called by frontends (CLI, benches, demos)
/// before any work:
///   CORRECTNET_METRICS=FILE        write the registry snapshot to FILE at exit
///   CORRECTNET_TRACE=FILE          enable tracing now, write FILE at exit
///   CORRECTNET_LOG=LEVEL           set the Logger level (quiet|info|debug)
///   CORRECTNET_STATUSZ_PORT=N      start the live exposition server on port N
///                                  (0 = ephemeral; obs/exposition.h) now
///   CORRECTNET_METRICS_STREAM=FILE start the interval-delta JSONL metrics
///                                  stream (obs/snapshot_stream.h) now,
///                                  flushed at exit
///   CORRECTNET_SLO_P99_MS=X        process-default p99 latency objective for
///                                  InferenceServer SLO tracking (obs/slo.h)
///   CORRECTNET_SIGNAL_FLUSH=1      install SIGINT/SIGTERM handlers that
///                                  flush every configured writer (metrics
///                                  file, trace file, snapshot stream), then
///                                  re-raise — so an interrupted long
///                                  campaign keeps its observability
///                                  artifacts
/// Idempotent; a malformed value (log level, port, objective) throws.
void init_from_env();

/// The flush the signal handler and atexit hooks share: writes the
/// CORRECTNET_METRICS / CORRECTNET_TRACE files if configured and flushes the
/// global snapshot stream. Safe to call any number of times; errors go to
/// stderr instead of throwing (it runs on teardown paths).
void flush_observability_sinks() noexcept;

}  // namespace cn::obs
