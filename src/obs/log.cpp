#include "obs/log.h"

#include <cstdio>
#include <stdexcept>
#include <utility>

namespace cn::obs {

LogLevel parse_log_level(const std::string& s) {
  if (s == "quiet") return LogLevel::kQuiet;
  if (s == "info") return LogLevel::kInfo;
  if (s == "debug") return LogLevel::kDebug;
  throw std::invalid_argument("log level must be quiet|info|debug, got \"" +
                              s + "\"");
}

const char* to_string(LogLevel level) {
  switch (level) {
    case LogLevel::kQuiet: return "quiet";
    case LogLevel::kInfo: return "info";
    case LogLevel::kDebug: return "debug";
  }
  return "?";
}

void Logger::log(LogLevel level, const std::string& msg) {
  if (!should_log(level)) return;
  std::lock_guard<std::mutex> lk(mu_);
  if (sink_) {
    sink_(level, msg);
    return;
  }
  std::printf("%s\n", msg.c_str());
  std::fflush(stdout);
}

void Logger::set_sink(Sink sink) {
  std::lock_guard<std::mutex> lk(mu_);
  sink_ = std::move(sink);
}

Logger& Logger::global() {
  static Logger* l = new Logger();  // leaked on purpose; see MetricsRegistry
  return *l;
}

void log_info(const std::string& msg) {
  Logger::global().log(LogLevel::kInfo, msg);
}

void log_debug(const std::string& msg) {
  Logger::global().log(LogLevel::kDebug, msg);
}

}  // namespace cn::obs
