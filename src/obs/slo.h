// SLO burn-rate tracking over windowed histogram deltas.
//
// An objective is "quantile(latency) < threshold over a sliding window"
// (e.g. p99 < 5ms over 60s). The tracker keeps a ring of timestamped
// LatencyHistogram snapshots; each update() diffs the newest against the
// oldest snapshot still inside the window (Snapshot::delta_since — bucket
// sketches subtract exactly), which yields the window's own sample set:
// its exact-rank quantile, the fraction of requests over the threshold,
// and the error-budget burn rate
//
//     burn_rate = bad_fraction / (1 - quantile)
//
// — burn 1.0 means the window is consuming its error budget exactly at the
// allowed rate; 2.0 means the budget is gone in half the window. "Bad" is
// defined on bucket edges: a request counts as over-threshold when its
// bucket's lower edge is >= threshold_us (the threshold effectively rounds
// down to a sketch bucket boundary; hand-computable, which the oracle test
// pins).
//
// Consumers: InferenceServer owns a tracker over its private latency
// histogram when an objective is configured (ServerStats::summary() prints
// the status, /statusz shows it, and the tracker publishes the slo.* metric
// family — rendered as correctnet_slo_* by obs/prometheus.h). The process
// default objective comes from `slo_p99_ms` (campaign config), `--slo-p99-ms`
// flags, or CORRECTNET_SLO_P99_MS. Like every obs primitive the tracker only
// reads timing data: results stay byte-identical with SLO tracking on or off.
#pragma once

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <utility>

#include "obs/metrics.h"

namespace cn::obs {

struct SloConfig {
  double quantile = 0.99;       // objective quantile (0, 1)
  double threshold_us = 5000;   // objective: quantile(latency) < threshold
  double window_s = 60;         // sliding window the budget is rated over
};

class SloTracker {
 public:
  struct Status {
    bool configured = false;
    double quantile = 0.0;
    double threshold_us = 0.0;
    double window_s = 0.0;          // span actually covered by the window
    uint64_t window_count = 0;      // requests inside the window
    uint64_t window_bad = 0;        // of those, over the threshold
    double window_quantile_us = 0;  // exact-rank quantile of the window
    double bad_fraction = 0.0;      // window_bad / window_count
    double burn_rate = 0.0;         // bad_fraction / (1 - quantile)
    bool violating = false;         // window_quantile_us >= threshold_us

    /// One-line human form, e.g.
    /// "slo p99 < 5000us: window p99 812us, burn 0.31x (3/960 over, 42.0s)".
    std::string summary() const;
  };

  /// `metric_prefix` non-empty publishes the status into the global registry
  /// as <prefix>.burn_rate / <prefix>.window_quantile_us /
  /// <prefix>.bad_fraction gauges on every update. Throws on a quantile
  /// outside (0, 1), a non-positive threshold, or a non-positive window.
  explicit SloTracker(SloConfig cfg, std::string metric_prefix = "");

  /// Records `snap` (a cumulative histogram snapshot) at monotonic time
  /// `now_s`, prunes the ring to the window, and recomputes the status from
  /// the delta against the window's baseline. Deterministic given the
  /// snapshot/time sequence — the oracle test drives this directly.
  Status update(const LatencyHistogram::Snapshot& snap, double now_s);

  /// Convenience: snapshot `hist` at steady-clock now.
  Status update(const LatencyHistogram& hist);

  /// The last computed status (zero-valued before the first update).
  Status status() const;

  const SloConfig& config() const { return cfg_; }

  /// The bucket-edge "bad" rule, exposed for the oracle test: requests in
  /// buckets whose lower edge is >= threshold_us count as over-threshold.
  static uint64_t bad_count(const LatencyHistogram::Snapshot& delta,
                            double threshold_us);

 private:
  SloConfig cfg_;
  Gauge* g_burn_ = nullptr;  // registry-owned; null when prefix is empty
  Gauge* g_quantile_ = nullptr;
  Gauge* g_bad_fraction_ = nullptr;

  mutable std::mutex mu_;
  std::deque<std::pair<double, LatencyHistogram::Snapshot>> ring_;
  Status last_;
};

/// Process-default p99 objective for InferenceServer SLO tracking, in
/// milliseconds; 0 = none. Set by frontends (--slo-p99-ms, the `slo_p99_ms`
/// campaign key, CORRECTNET_SLO_P99_MS); servers constructed with
/// InferenceServerOptions::slo_p99_ms == 0 adopt it. A negative value throws.
void set_default_slo_p99_ms(double ms);
double default_slo_p99_ms();

}  // namespace cn::obs
