// ExpositionServer: the live introspection endpoint — a minimal embedded
// HTTP/1.0 server (plain POSIX sockets, one acceptor thread, one request per
// connection) that lets an operator look inside a running campaign or
// InferenceServer instead of waiting for exit-time artifacts:
//
//   /metrics   Prometheus text format v0.0.4 (obs/prometheus.h) over the
//              global registry — scrape it, or curl it by hand
//   /healthz   liveness (any 200/503 answer = the process is alive) plus
//              readiness: 200 "ok" once set_ready(true) — frontends flip it
//              when the chip farm is programmed — else 503 "not ready"
//   /statusz   human-readable status: build info (obs/build_info.h), uptime,
//              readiness, campaign progress, per-execution-target tile/byte
//              counters, and every registered statusz section (e.g. the
//              InferenceServer summary + SLO status)
//
// Deliberately not a web framework: HTTP/1.0, Connection: close, GET only,
// bound to 127.0.0.1 by default. One scraper at 10 Hz is the design load
// (bench_runtime pins the overhead); requests are served on the acceptor
// thread, so a slow client delays the next scrape, never the serving path.
//
// The PR 7 invariant extends to the live tier: request handling only reads
// registry atomics and formats strings — no rng streams, no numeric paths —
// so a CampaignReport is byte-identical with a scraper hammering /metrics
// mid-run (tier-1, tests/test_exposition.cpp).
//
// Exposure: `--statusz-port N` (CLI, serve_demo), the campaign
// `statusz_port` config key, CORRECTNET_STATUSZ_PORT (init_from_env).
// Port 0 binds an ephemeral port; port() reports the real one.
#pragma once

#include <atomic>
#include <functional>
#include <string>
#include <thread>
#include <vector>

namespace cn::obs {

struct ExpositionServerOptions {
  int port = 0;                   // 0 = ephemeral (port() reports the bound one)
  std::string bind = "127.0.0.1"; // numeric IPv4 only, by design
};

class ExpositionServer {
 public:
  /// Binds and starts the acceptor thread; throws std::runtime_error when
  /// the socket cannot be bound (port taken, bad address).
  explicit ExpositionServer(ExpositionServerOptions opts = {});
  ~ExpositionServer();  // stop()

  ExpositionServer(const ExpositionServer&) = delete;
  ExpositionServer& operator=(const ExpositionServer&) = delete;

  /// The actually-bound port (== opts.port unless that was 0).
  int port() const { return port_; }

  /// Readiness for /healthz. Starts false; InferenceServer flips it once
  /// its worker chips are programmed, Campaign::run at grid start.
  void set_ready(bool ready) {
    ready_.store(ready, std::memory_order_relaxed);
  }
  bool ready() const { return ready_.load(std::memory_order_relaxed); }

  /// Unbinds and joins the acceptor. Idempotent; also run by the dtor.
  void stop();

  /// Routes one request path to (status, body) exactly as the socket path
  /// would — the deterministic core, exposed so tests can exercise routing
  /// without a live socket.
  std::string handle(const std::string& path, int* status) const;

  /// Process-global server (nullptr until started). start_global is
  /// first-wins: an already-running server ignores later ports with a
  /// log_info notice. Leaked like the registry singletons.
  static ExpositionServer* global();
  static ExpositionServer& start_global(int port);

 private:
  void acceptor_loop();

  ExpositionServerOptions opts_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> ready_{false};
  std::atomic<bool> stop_{false};
  std::thread acceptor_;
};

/// Registers a /statusz section: `render` is called per request (keep it
/// cheap and thread-safe) and its text is printed under `title`. Returns an
/// id for statusz_remove_section — callers whose section captures `this`
/// must remove it before dying (InferenceServer does so in its dtor).
int statusz_add_section(const std::string& title,
                        std::function<std::string()> render);
void statusz_remove_section(int id);

/// Registers a /healthz readiness probe: /healthz answers 200 only while
/// set_ready(true) holds AND every registered probe returns true; failing
/// probe names are listed in the 503 body ("degraded: <name>"), so a load
/// balancer sheds traffic from a server that is alive but rejecting (e.g.
/// admission control under overload). Same lifetime rules as statusz
/// sections: a probe capturing `this` must be removed before `this` dies.
int healthz_add_probe(const std::string& name, std::function<bool()> probe);
void healthz_remove_probe(int id);

/// Names of currently-failing probes (empty = all passing). Exposed for
/// render paths and tests.
std::vector<std::string> healthz_failing_probes();

/// The /statusz body: build info, uptime, readiness, registry-derived
/// summaries (campaign progress, per-target exec counters), then every
/// registered section. Exposed for tests.
std::string render_statusz(bool ready);

/// Blocking one-shot HTTP GET against 127.0.0.1:port — the scrape client
/// used by tests, the bench scraper leg, and nothing else. Returns the raw
/// response (status line, headers, body); throws on connect/read failure.
std::string http_get_local(int port, const std::string& path);

}  // namespace cn::obs
