#include "obs/slo.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <stdexcept>

namespace cn::obs {

std::string SloTracker::Status::summary() const {
  if (!configured) return "slo: not configured";
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "slo p%g < %.0fus: window p%g %.0fus, burn %.2fx "
                "(%llu/%llu over, %.1fs)%s",
                100.0 * quantile, threshold_us, 100.0 * quantile,
                window_quantile_us, burn_rate,
                static_cast<unsigned long long>(window_bad),
                static_cast<unsigned long long>(window_count), window_s,
                violating ? "  VIOLATING" : "");
  return buf;
}

SloTracker::SloTracker(SloConfig cfg, std::string metric_prefix) : cfg_(cfg) {
  if (!(cfg_.quantile > 0.0 && cfg_.quantile < 1.0))
    throw std::invalid_argument("SloTracker: quantile must be in (0, 1)");
  if (!(cfg_.threshold_us > 0.0))
    throw std::invalid_argument("SloTracker: threshold_us must be > 0");
  if (!(cfg_.window_s > 0.0))
    throw std::invalid_argument("SloTracker: window_s must be > 0");
  if (!metric_prefix.empty()) {
    g_burn_ = &metrics().gauge(metric_prefix + ".burn_rate");
    g_quantile_ = &metrics().gauge(metric_prefix + ".window_quantile_us");
    g_bad_fraction_ = &metrics().gauge(metric_prefix + ".bad_fraction");
  }
}

uint64_t SloTracker::bad_count(const LatencyHistogram::Snapshot& delta,
                               double threshold_us) {
  // Bucket-edge rule: every sample in a bucket whose lower edge is at or
  // above the threshold is certainly >= threshold. Samples in the bucket
  // straddling the threshold count as good — the threshold rounds down to a
  // sketch boundary (<= 3.1% wide), which keeps the count exact and
  // hand-computable.
  uint64_t bad = 0;
  for (size_t i = 0; i < delta.buckets.size(); ++i) {
    if (!delta.buckets[i]) continue;
    if (static_cast<double>(
            LatencyHistogram::bucket_lower(static_cast<int>(i))) >=
        threshold_us)
      bad += delta.buckets[i];
  }
  return bad;
}

SloTracker::Status SloTracker::update(const LatencyHistogram::Snapshot& snap,
                                      double now_s) {
  std::lock_guard<std::mutex> lk(mu_);
  // The front entry is the window baseline: the newest snapshot taken at or
  // before (now - window). Keep exactly one entry older than the window so
  // the delta always spans >= window_s once enough history exists.
  ring_.emplace_back(now_s, snap);
  while (ring_.size() >= 2 && ring_[1].first <= now_s - cfg_.window_s)
    ring_.pop_front();

  const LatencyHistogram::Snapshot delta =
      snap.delta_since(ring_.front().second);
  Status st;
  st.configured = true;
  st.quantile = cfg_.quantile;
  st.threshold_us = cfg_.threshold_us;
  st.window_s = now_s - ring_.front().first;
  st.window_count = delta.count;
  st.window_bad = bad_count(delta, cfg_.threshold_us);
  st.window_quantile_us = delta.percentile(cfg_.quantile);
  st.bad_fraction =
      delta.count ? static_cast<double>(st.window_bad) /
                        static_cast<double>(delta.count)
                  : 0.0;
  st.burn_rate = st.bad_fraction / (1.0 - cfg_.quantile);
  st.violating = delta.count > 0 && st.window_quantile_us >= cfg_.threshold_us;
  last_ = st;
  if (g_burn_) {
    g_burn_->set(st.burn_rate);
    g_quantile_->set(st.window_quantile_us);
    g_bad_fraction_->set(st.bad_fraction);
  }
  return st;
}

SloTracker::Status SloTracker::update(const LatencyHistogram& hist) {
  const auto now = std::chrono::steady_clock::now().time_since_epoch();
  return update(hist.snapshot(),
                std::chrono::duration<double>(now).count());
}

SloTracker::Status SloTracker::status() const {
  std::lock_guard<std::mutex> lk(mu_);
  return last_;
}

namespace {
std::atomic<double> g_default_slo_p99_ms{0.0};
}

void set_default_slo_p99_ms(double ms) {
  if (ms < 0.0)
    throw std::invalid_argument("slo_p99_ms must be >= 0 (0 = off)");
  g_default_slo_p99_ms.store(ms, std::memory_order_relaxed);
}

double default_slo_p99_ms() {
  return g_default_slo_p99_ms.load(std::memory_order_relaxed);
}

}  // namespace cn::obs
