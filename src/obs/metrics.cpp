#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <stdexcept>

#include "obs/exposition.h"
#include "obs/log.h"
#include "obs/slo.h"
#include "obs/snapshot_stream.h"
#include "obs/trace.h"

namespace cn::obs {

namespace {

// Number formatting matching bench::BenchJson (%.6g).
std::string json_num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

std::string json_escaped(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out.push_back(c);
  }
  return out;
}

// Index of the most significant set bit (u > 0).
int msb_index(uint64_t u) {
#if defined(__GNUC__) || defined(__clang__)
  return 63 - __builtin_clzll(u);
#else
  int b = 0;
  while (u >>= 1) ++b;
  return b;
#endif
}

}  // namespace

// ---------- LatencyHistogram ----------

LatencyHistogram::LatencyHistogram() : buckets_(kNumBuckets) {}

int LatencyHistogram::bucket_index(uint64_t us) {
  constexpr uint64_t cap = (uint64_t{1} << kMaxOctave) - 1;
  if (us > cap) us = cap;
  if (us < kSubBuckets) return static_cast<int>(us);
  const int msb = msb_index(us);
  const int sub =
      static_cast<int>((us >> (msb - kSubBits)) & (kSubBuckets - 1));
  return kSubBuckets + (msb - kSubBits) * kSubBuckets + sub;
}

uint64_t LatencyHistogram::bucket_lower(int index) {
  if (index < kSubBuckets) return static_cast<uint64_t>(index);
  const int m = (index - kSubBuckets) / kSubBuckets;
  const int sub = (index - kSubBuckets) % kSubBuckets;
  return static_cast<uint64_t>(kSubBuckets + sub) << m;
}

uint64_t LatencyHistogram::bucket_upper(int index) {
  return index + 1 >= kNumBuckets ? (uint64_t{1} << kMaxOctave)
                                  : bucket_lower(index + 1);
}

void LatencyHistogram::record(double us) {
  if (gate_ && !gate_->load(std::memory_order_relaxed)) return;
  const uint64_t u =
      us <= 0.0 ? 0
                : static_cast<uint64_t>(std::min(
                      us, static_cast<double>(uint64_t{1} << kMaxOctave)));
  buckets_[static_cast<size_t>(bucket_index(u))].fetch_add(
      1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(u, std::memory_order_relaxed);
  uint64_t cur = min_.load(std::memory_order_relaxed);
  while (u < cur &&
         !min_.compare_exchange_weak(cur, u, std::memory_order_relaxed)) {
  }
  cur = max_.load(std::memory_order_relaxed);
  while (u > cur &&
         !max_.compare_exchange_weak(cur, u, std::memory_order_relaxed)) {
  }
}

double LatencyHistogram::mean_us() const {
  const uint64_t n = count();
  return n ? sum_us() / static_cast<double>(n) : 0.0;
}

double LatencyHistogram::min_us() const {
  const uint64_t m = min_.load(std::memory_order_relaxed);
  return m == UINT64_MAX ? 0.0 : static_cast<double>(m);
}

double LatencyHistogram::max_us() const {
  return static_cast<double>(max_.load(std::memory_order_relaxed));
}

double LatencyHistogram::Snapshot::percentile(double q) const {
  if (count == 0) return 0.0;
  q = std::min(1.0, std::max(q, 0.0));
  // Exact rank from exact counts: the smallest rank covering quantile q.
  uint64_t rank = static_cast<uint64_t>(
      std::ceil(q * static_cast<double>(count)));
  rank = std::max<uint64_t>(1, std::min(rank, count));
  uint64_t cum = 0;
  for (size_t i = 0; i < buckets.size(); ++i) {
    cum += buckets[i];
    if (cum >= rank)
      return static_cast<double>(bucket_lower(static_cast<int>(i)));
  }
  return static_cast<double>(bucket_lower(kNumBuckets - 1));
}

LatencyHistogram::Snapshot LatencyHistogram::snapshot() const {
  Snapshot s;
  s.buckets.resize(static_cast<size_t>(kNumBuckets));
  uint64_t total = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    const uint64_t c = buckets_[static_cast<size_t>(i)].load(
        std::memory_order_relaxed);
    s.buckets[static_cast<size_t>(i)] = c;
    total += c;
  }
  // Derive the count from the bucket loads so percentile ranks always
  // resolve inside the copied buckets, even while recorders are running.
  s.count = total;
  s.sum_us = sum_.load(std::memory_order_relaxed);
  const uint64_t mn = min_.load(std::memory_order_relaxed);
  s.min_us = mn == UINT64_MAX ? 0 : mn;
  s.max_us = max_.load(std::memory_order_relaxed);
  return s;
}

LatencyHistogram::Snapshot LatencyHistogram::Snapshot::delta_since(
    const Snapshot& prev) const {
  Snapshot d;
  d.buckets.resize(buckets.size());
  uint64_t total = 0, sum = 0;
  for (size_t i = 0; i < buckets.size(); ++i) {
    const uint64_t p = i < prev.buckets.size() ? prev.buckets[i] : 0;
    // A later snapshot of a live histogram never shrinks; a reset in
    // between would, so clamp instead of underflowing.
    d.buckets[i] = buckets[i] > p ? buckets[i] - p : 0;
    total += d.buckets[i];
  }
  sum = sum_us > prev.sum_us ? sum_us - prev.sum_us : 0;
  d.count = total;
  d.sum_us = sum;
  // Lifetime extremes, not interval extremes: the bucket sketch cannot
  // recover an interval min/max, so pass the current ones through.
  d.min_us = min_us;
  d.max_us = max_us;
  return d;
}

double LatencyHistogram::percentile(double q) const {
  return snapshot().percentile(q);
}

void LatencyHistogram::merge(const LatencyHistogram& other) {
  const Snapshot o = other.snapshot();
  for (int i = 0; i < kNumBuckets; ++i)
    if (o.buckets[static_cast<size_t>(i)])
      buckets_[static_cast<size_t>(i)].fetch_add(
          o.buckets[static_cast<size_t>(i)], std::memory_order_relaxed);
  count_.fetch_add(o.count, std::memory_order_relaxed);
  sum_.fetch_add(o.sum_us, std::memory_order_relaxed);
  if (o.count) {
    uint64_t cur = min_.load(std::memory_order_relaxed);
    while (o.min_us < cur && !min_.compare_exchange_weak(
                                 cur, o.min_us, std::memory_order_relaxed)) {
    }
    cur = max_.load(std::memory_order_relaxed);
    while (o.max_us > cur && !max_.compare_exchange_weak(
                                 cur, o.max_us, std::memory_order_relaxed)) {
    }
  }
}

void LatencyHistogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(UINT64_MAX, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

// ---------- MetricsRegistry ----------

namespace {

// A name is bound to exactly one metric kind — two kinds under one name
// would collide in the snapshot JSON key space.
template <typename Map>
void reject_if_present(const Map& m, const std::string& name,
                       const char* kind) {
  if (m.count(name))
    throw std::invalid_argument("MetricsRegistry: \"" + name +
                                "\" already registered as a " + kind);
}

}  // namespace

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    reject_if_present(gauges_, name, "gauge");
    reject_if_present(hists_, name, "histogram");
    it = counters_.emplace(name, std::make_unique<Counter>()).first;
    it->second->gate_ = &enabled_;
  }
  return *it->second;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    reject_if_present(counters_, name, "counter");
    reject_if_present(hists_, name, "histogram");
    it = gauges_.emplace(name, std::make_unique<Gauge>()).first;
    it->second->gate_ = &enabled_;
  }
  return *it->second;
}

LatencyHistogram& MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = hists_.find(name);
  if (it == hists_.end()) {
    reject_if_present(counters_, name, "counter");
    reject_if_present(gauges_, name, "gauge");
    it = hists_.emplace(name, std::make_unique<LatencyHistogram>()).first;
    it->second->gate_ = &enabled_;
  }
  return *it->second;
}

RegistrySnapshot MetricsRegistry::snapshot() const {
  RegistrySnapshot s;
  std::lock_guard<std::mutex> lk(mu_);
  for (const auto& [name, c] : counters_) s.counters[name] = c->value();
  for (const auto& [name, g] : gauges_) s.gauges[name] = g->value();
  for (const auto& [name, h] : hists_) s.histograms[name] = h->snapshot();
  return s;
}

std::string MetricsRegistry::snapshot_json() const {
  // Render every metric into a sorted key -> value map, then emit the flat
  // BenchJson shape ("name" first; maps keep the rest sorted).
  const RegistrySnapshot snap = snapshot();
  std::map<std::string, std::string> kv;
  for (const auto& [name, v] : snap.counters) kv[name] = std::to_string(v);
  for (const auto& [name, v] : snap.gauges) kv[name] = json_num(v);
  for (const auto& [name, s] : snap.histograms) {
    kv[name + ".count"] = std::to_string(s.count);
    kv[name + ".mean_us"] = json_num(
        s.count ? static_cast<double>(s.sum_us) / static_cast<double>(s.count)
                : 0.0);
    kv[name + ".min_us"] = json_num(static_cast<double>(s.min_us));
    kv[name + ".max_us"] = json_num(static_cast<double>(s.max_us));
    kv[name + ".p50_us"] = json_num(s.percentile(0.50));
    kv[name + ".p99_us"] = json_num(s.percentile(0.99));
    kv[name + ".p999_us"] = json_num(s.percentile(0.999));
  }
  std::string j = "{\n  \"name\": \"metrics\"";
  for (const auto& [k, v] : kv) j += ",\n  \"" + json_escaped(k) + "\": " + v;
  j += "\n}\n";
  return j;
}

void MetricsRegistry::write_json(const std::string& path) const {
  std::ofstream os(path);
  if (!os)
    throw std::runtime_error("MetricsRegistry: cannot write " + path);
  os << snapshot_json();
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lk(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : hists_) h->reset();
}

MetricsRegistry& MetricsRegistry::global() {
  // Leaked on purpose: worker threads and atexit hooks may record during
  // static destruction; the static pointer keeps the object reachable, so
  // LeakSanitizer stays quiet.
  static MetricsRegistry* r = new MetricsRegistry();
  return *r;
}

MetricsRegistry& metrics() { return MetricsRegistry::global(); }

std::string labeled(const std::string& name, const std::string& key,
                    const std::string& value) {
  if (key.empty()) throw std::invalid_argument("labeled(): empty label key");
  for (size_t i = 0; i < key.size(); ++i) {
    const char c = key[i];
    const bool alpha = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                       c == '_';
    const bool ok = alpha || (i > 0 && c >= '0' && c <= '9');
    if (!ok)
      throw std::invalid_argument("labeled(): bad label key \"" + key + "\"");
  }
  for (char c : value)
    if (c == '{' || c == '}' || c == ',' || c == '=' || c == '\n')
      throw std::invalid_argument("labeled(): bad char in label value \"" +
                                  value + "\"");
  // Compose onto an existing label suffix: "a{x=1}" + (y,2) -> "a{x=1,y=2}".
  if (!name.empty() && name.back() == '}') {
    const size_t brace = name.find('{');
    if (brace == std::string::npos)
      throw std::invalid_argument("labeled(): malformed name \"" + name +
                                  "\"");
    return name.substr(0, name.size() - 1) + "," + key + "=" + value + "}";
  }
  return name + "{" + key + "=" + value + "}";
}

namespace {

// Exit-time sink paths, leaked strings so the atexit hook and the signal
// handler can read them during teardown.
std::string* g_metrics_path = nullptr;
std::string* g_trace_path = nullptr;

void cn_obs_flush_and_reraise(int sig) {
  // Not strictly async-signal-safe (it formats and writes files), but this
  // path is opt-in (CORRECTNET_SIGNAL_FLUSH=1) and chosen deliberately: a
  // long campaign cut down by Ctrl-C keeps its metrics/trace/stream
  // artifacts instead of losing hours of telemetry to purity.
  flush_observability_sinks();
  std::signal(sig, SIG_DFL);
  std::raise(sig);
}

}  // namespace

void flush_observability_sinks() noexcept {
  try {
    if (g_metrics_path) MetricsRegistry::global().write_json(*g_metrics_path);
  } catch (...) {
  }
  try {
    if (g_trace_path) Tracer::global().write_json(*g_trace_path);
  } catch (...) {
  }
  MetricsSnapshotter::flush_global();
}

void init_from_env() {
  static bool done = false;
  if (done) return;
  done = true;
  bool want_atexit = false;
  if (const char* p = std::getenv("CORRECTNET_METRICS"); p && *p) {
    g_metrics_path = new std::string(p);
    want_atexit = true;
  }
  if (const char* p = std::getenv("CORRECTNET_TRACE"); p && *p) {
    Tracer::global().set_enabled(true);
    g_trace_path = new std::string(p);
    want_atexit = true;
  }
  if (const char* p = std::getenv("CORRECTNET_LOG"); p && *p)
    Logger::global().set_level(parse_log_level(p));
  if (const char* p = std::getenv("CORRECTNET_STATUSZ_PORT"); p && *p) {
    char* end = nullptr;
    const long port = std::strtol(p, &end, 10);
    if (end && *end == '\0' && port >= 0 && port <= 65535) {
      try {
        ExpositionServer::start_global(static_cast<int>(port)).set_ready(true);
      } catch (const std::exception& e) {
        std::fprintf(stderr, "CORRECTNET_STATUSZ_PORT: %s\n", e.what());
      }
    } else {
      std::fprintf(stderr,
                   "CORRECTNET_STATUSZ_PORT: invalid port '%s' (want 0-65535)\n",
                   p);
    }
  }
  if (const char* p = std::getenv("CORRECTNET_METRICS_STREAM"); p && *p) {
    try {
      MetricsSnapshotter::start_global(p);
      want_atexit = true;
    } catch (const std::exception& e) {
      std::fprintf(stderr, "CORRECTNET_METRICS_STREAM: %s\n", e.what());
    }
  }
  if (const char* p = std::getenv("CORRECTNET_SLO_P99_MS"); p && *p) {
    char* end = nullptr;
    const double ms = std::strtod(p, &end);
    if (end && *end == '\0' && ms >= 0.0)
      set_default_slo_p99_ms(ms);
    else
      std::fprintf(stderr, "CORRECTNET_SLO_P99_MS: invalid value '%s'\n", p);
  }
  if (want_atexit) {
    std::atexit(+[] {
      flush_observability_sinks();
      MetricsSnapshotter::stop_global();
    });
  }
  if (const char* p = std::getenv("CORRECTNET_SIGNAL_FLUSH");
      p && std::string(p) == "1") {
    std::signal(SIGINT, &cn_obs_flush_and_reraise);
    std::signal(SIGTERM, &cn_obs_flush_and_reraise);
  }
}

}  // namespace cn::obs
