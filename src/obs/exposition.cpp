#include "obs/exposition.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <map>
#include <mutex>
#include <stdexcept>
#include <vector>

#include "obs/build_info.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/prometheus.h"

namespace cn::obs {

namespace {

// Static-init timestamp, close enough to process start for an uptime line.
const std::chrono::steady_clock::time_point g_process_origin =
    std::chrono::steady_clock::now();

double uptime_s() {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       g_process_origin)
      .count();
}

struct StatuszSection {
  std::string title;
  std::function<std::string()> render;
};

std::mutex g_sections_mu;
std::map<int, StatuszSection>& sections() {
  static auto* s = new std::map<int, StatuszSection>();
  return *s;
}
int g_next_section_id = 1;

struct HealthzProbe {
  std::string name;
  std::function<bool()> probe;
};

std::mutex g_probes_mu;
std::map<int, HealthzProbe>& probes() {
  static auto* p = new std::map<int, HealthzProbe>();
  return *p;
}
int g_next_probe_id = 1;

void send_all(int fd, const std::string& data) {
  size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::send(fd, data.data() + off, data.size() - off,
#ifdef MSG_NOSIGNAL
                             MSG_NOSIGNAL
#else
                             0
#endif
    );
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return;  // client went away; nothing useful to do
    }
    off += static_cast<size_t>(n);
  }
}

std::string http_response(int status, const std::string& content_type,
                          const std::string& body) {
  const char* reason = status == 200   ? "OK"
                       : status == 404 ? "Not Found"
                       : status == 503 ? "Service Unavailable"
                                       : "Error";
  std::string r = "HTTP/1.0 " + std::to_string(status) + " " + reason +
                  "\r\nContent-Type: " + content_type +
                  "\r\nContent-Length: " + std::to_string(body.size()) +
                  "\r\nConnection: close\r\n\r\n";
  r += body;
  return r;
}

}  // namespace

int statusz_add_section(const std::string& title,
                        std::function<std::string()> render) {
  std::lock_guard<std::mutex> lk(g_sections_mu);
  const int id = g_next_section_id++;
  sections().emplace(id, StatuszSection{title, std::move(render)});
  return id;
}

void statusz_remove_section(int id) {
  std::lock_guard<std::mutex> lk(g_sections_mu);
  sections().erase(id);
}

int healthz_add_probe(const std::string& name, std::function<bool()> probe) {
  std::lock_guard<std::mutex> lk(g_probes_mu);
  const int id = g_next_probe_id++;
  probes().emplace(id, HealthzProbe{name, std::move(probe)});
  return id;
}

void healthz_remove_probe(int id) {
  std::lock_guard<std::mutex> lk(g_probes_mu);
  probes().erase(id);
}

std::vector<std::string> healthz_failing_probes() {
  std::lock_guard<std::mutex> lk(g_probes_mu);
  std::vector<std::string> failing;
  for (const auto& [id, p] : probes()) {
    (void)id;
    bool ok = false;
    try {
      ok = p.probe();
    } catch (const std::exception&) {
      ok = false;  // a throwing probe is a failing probe
    }
    if (!ok) failing.push_back(p.name);
  }
  return failing;
}

std::string render_statusz(bool ready) {
  char buf[160];
  std::string out = build_info_line() + "\n";
  std::snprintf(buf, sizeof(buf), "uptime: %.1fs\nready: %s\n", uptime_s(),
                ready ? "yes" : "no");
  out += buf;
  const std::vector<std::string> failing = healthz_failing_probes();
  if (!failing.empty()) {
    out += "degraded:";
    for (const std::string& name : failing) out += " " + name;
    out += "\n";
  }

  const RegistrySnapshot snap = metrics().snapshot();

  // Campaign progress, when a campaign published its gauges.
  const auto total_it = snap.gauges.find("campaign.cells_total");
  const auto done_it = snap.gauges.find("campaign.cells_done");
  if (total_it != snap.gauges.end() && total_it->second > 0) {
    const double done =
        done_it != snap.gauges.end() ? done_it->second : 0.0;
    std::snprintf(buf, sizeof(buf), "\ncampaign: %.0f/%.0f cells (%.1f%%)\n",
                  done, total_it->second,
                  100.0 * done / total_it->second);
    out += buf;
  }

  // Per-execution-target traffic (exec.<target>.tiles / .bytes counters).
  std::string exec;
  for (const auto& [name, v] : snap.counters) {
    if (name.rfind("exec.", 0) != 0) continue;
    exec += "  " + name + ": " + std::to_string(v) + "\n";
  }
  if (!exec.empty()) out += "\nexecution targets:\n" + exec;

  std::lock_guard<std::mutex> lk(g_sections_mu);
  for (const auto& [id, sec] : sections()) {
    (void)id;
    out += "\n== " + sec.title + " ==\n";
    try {
      out += sec.render();
    } catch (const std::exception& e) {
      out += std::string("<render failed: ") + e.what() + ">";
    }
    if (out.empty() || out.back() != '\n') out += "\n";
  }
  return out;
}

ExpositionServer::ExpositionServer(ExpositionServerOptions opts)
    : opts_(std::move(opts)) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0)
    throw std::runtime_error("ExpositionServer: socket() failed");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(opts_.port));
  if (::inet_pton(AF_INET, opts_.bind.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("ExpositionServer: bad bind address " +
                             opts_.bind);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
          0 ||
      ::listen(listen_fd_, 8) < 0) {
    const std::string err = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("ExpositionServer: cannot listen on " +
                             opts_.bind + ":" + std::to_string(opts_.port) +
                             " (" + err + ")");
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  acceptor_ = std::thread([this] { acceptor_loop(); });
}

ExpositionServer::~ExpositionServer() { stop(); }

void ExpositionServer::stop() {
  if (stop_.exchange(true)) {
    if (acceptor_.joinable()) acceptor_.join();
    return;
  }
  if (listen_fd_ >= 0) {
    // shutdown() wakes the blocking accept(); close() releases the port.
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
  }
  if (acceptor_.joinable()) acceptor_.join();
  listen_fd_ = -1;
}

std::string ExpositionServer::handle(const std::string& path,
                                     int* status) const {
  if (path == "/metrics") {
    *status = 200;
    return render_prometheus(metrics());
  }
  if (path == "/healthz") {
    const bool r = ready();
    if (!r) {
      *status = 503;
      return "not ready\n";
    }
    // Ready, but a registered probe (e.g. admission control) may be
    // shedding: list the failing probes so the 503 body says why.
    const std::vector<std::string> failing = healthz_failing_probes();
    if (failing.empty()) {
      *status = 200;
      return "ok\n";
    }
    *status = 503;
    std::string body = "degraded:";
    for (const std::string& name : failing) body += " " + name;
    body += "\n";
    return body;
  }
  if (path == "/statusz" || path == "/") {
    *status = 200;
    return render_statusz(ready());
  }
  *status = 404;
  return "not found: " + path + "\n(try /metrics, /healthz, /statusz)\n";
}

void ExpositionServer::acceptor_loop() {
  while (!stop_.load(std::memory_order_relaxed)) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listen fd shut down by stop()
    }
    // Read up to the end of the request line; HTTP/1.0, GET only, so the
    // first line is all that matters.
    std::string req;
    char buf[1024];
    while (req.find('\n') == std::string::npos && req.size() < 8192) {
      const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
      if (n <= 0) break;
      req.append(buf, static_cast<size_t>(n));
    }
    std::string method, path;
    {
      const size_t sp1 = req.find(' ');
      const size_t sp2 = sp1 == std::string::npos ? std::string::npos
                                                  : req.find(' ', sp1 + 1);
      if (sp2 != std::string::npos) {
        method = req.substr(0, sp1);
        path = req.substr(sp1 + 1, sp2 - sp1 - 1);
        const size_t q = path.find('?');  // ignore query strings
        if (q != std::string::npos) path.resize(q);
      }
    }
    std::string resp;
    if (method != "GET" || path.empty()) {
      resp = http_response(404, "text/plain; charset=utf-8",
                           "GET only\n");
    } else {
      int status = 500;
      const std::string body = handle(path, &status);
      const char* ctype =
          path == "/metrics"
              ? "text/plain; version=0.0.4; charset=utf-8"
              : "text/plain; charset=utf-8";
      resp = http_response(status, ctype, body);
    }
    send_all(fd, resp);
    ::close(fd);
  }
}

// ---------- global instance ----------

namespace {
std::mutex g_server_mu;
ExpositionServer* g_server = nullptr;  // leaked, like the registry singletons
}  // namespace

ExpositionServer* ExpositionServer::global() {
  std::lock_guard<std::mutex> lk(g_server_mu);
  return g_server;
}

ExpositionServer& ExpositionServer::start_global(int port) {
  std::lock_guard<std::mutex> lk(g_server_mu);
  if (g_server) {
    if (g_server->port() != port && port != 0)
      log_info("[obs] exposition server already on port " +
               std::to_string(g_server->port()) + "; ignoring port " +
               std::to_string(port));
    return *g_server;
  }
  ExpositionServerOptions o;
  o.port = port;
  g_server = new ExpositionServer(std::move(o));
  log_info("[obs] exposition server listening on 127.0.0.1:" +
           std::to_string(g_server->port()) +
           " (/metrics, /healthz, /statusz)");
  return *g_server;
}

std::string http_get_local(int port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw std::runtime_error("http_get_local: socket() failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    throw std::runtime_error("http_get_local: cannot connect to 127.0.0.1:" +
                             std::to_string(port));
  }
  send_all(fd, "GET " + path + " HTTP/1.0\r\nHost: 127.0.0.1\r\n\r\n");
  std::string resp;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    resp.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  if (resp.empty()) throw std::runtime_error("http_get_local: empty response");
  return resp;
}

}  // namespace cn::obs
