#include "obs/trace.h"

#include <fstream>
#include <map>
#include <stdexcept>
#include <utility>

namespace cn::obs {

namespace {

std::string json_escaped(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out.push_back(c);
  }
  return out;
}

uint64_t us_since(Tracer::Clock::time_point origin, Tracer::Clock::time_point t) {
  if (t <= origin) return 0;
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(t - origin)
          .count());
}

}  // namespace

Tracer::Tracer() : origin_(Clock::now()) {}

void Tracer::push(Event ev) {
  std::lock_guard<std::mutex> lk(mu_);
  if (events_.size() >= kMaxEvents) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  events_.push_back(std::move(ev));
}

void Tracer::complete(std::string name, const char* cat,
                      Clock::time_point start, Clock::time_point end) {
  if (!enabled()) return;
  Event ev;
  ev.name = std::move(name);
  ev.cat = cat;
  ev.ts_us = us_since(origin_, start);
  ev.dur_us = end > start ? us_since(start, end) : 0;
  ev.tid = std::this_thread::get_id();
  ev.ph = 'X';
  push(std::move(ev));
}

void Tracer::instant(std::string name, const char* cat) {
  if (!enabled()) return;
  Event ev;
  ev.name = std::move(name);
  ev.cat = cat;
  ev.ts_us = us_since(origin_, Clock::now());
  ev.dur_us = 0;
  ev.tid = std::this_thread::get_id();
  ev.ph = 'i';
  push(std::move(ev));
}

size_t Tracer::event_count() const {
  std::lock_guard<std::mutex> lk(mu_);
  return events_.size();
}

void Tracer::clear() {
  std::lock_guard<std::mutex> lk(mu_);
  events_.clear();
  dropped_.store(0, std::memory_order_relaxed);
}

std::string Tracer::to_json() const {
  std::lock_guard<std::mutex> lk(mu_);
  // Dense thread ids in first-appearance order: stable across identical
  // runs, and small enough for the trace viewer's track labels.
  std::map<std::thread::id, int> tids;
  for (const Event& ev : events_)
    tids.emplace(ev.tid, static_cast<int>(tids.size()) + 1);

  std::string j = "{\n\"traceEvents\": [\n";
  for (size_t i = 0; i < events_.size(); ++i) {
    const Event& ev = events_[i];
    j += "{\"name\": \"" + json_escaped(ev.name) + "\"";
    j += ", \"cat\": \"" + json_escaped(ev.cat) + "\"";
    j += ", \"ph\": \"";
    j += ev.ph;
    j += "\", \"ts\": " + std::to_string(ev.ts_us);
    if (ev.ph == 'X') j += ", \"dur\": " + std::to_string(ev.dur_us);
    if (ev.ph == 'i') j += ", \"s\": \"t\"";
    j += ", \"pid\": 1, \"tid\": " + std::to_string(tids[ev.tid]) + "}";
    if (i + 1 < events_.size()) j += ",";
    j += "\n";
  }
  j += "]\n}\n";
  return j;
}

void Tracer::write_json(const std::string& path) const {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("Tracer: cannot write " + path);
  os << to_json();
}

Tracer& Tracer::global() {
  static Tracer* t = new Tracer();  // leaked on purpose; see MetricsRegistry
  return *t;
}

Span::Span(std::string name, const char* cat)
    : cat_(cat), active_(Tracer::global().enabled()) {
  if (!active_) return;
  name_ = std::move(name);
  start_ = Tracer::Clock::now();
}

Span::~Span() {
  if (!active_) return;
  Tracer::global().complete(std::move(name_), cat_, start_,
                            Tracer::Clock::now());
}

}  // namespace cn::obs
