#include <gtest/gtest.h>

#include "models/lenet.h"
#include <cmath>

#include "models/vgg.h"

namespace cn::models {
namespace {

TEST(LeNet, GeometryFor28x28) {
  Rng rng(1);
  nn::Sequential m = lenet5(1, 28, 10, rng);
  Tensor x({2, 1, 28, 28});
  Tensor y = m.forward(x, false);
  EXPECT_EQ(y.shape(), (Shape{2, 10}));
}

TEST(LeNet, GeometryFor32x32) {
  Rng rng(2);
  nn::Sequential m = lenet5(3, 32, 10, rng);
  Tensor y = m.forward(Tensor({1, 3, 32, 32}), false);
  EXPECT_EQ(y.shape(), (Shape{1, 10}));
}

TEST(LeNet, HasFiveAnalogSites) {
  // 2 convs + 3 FCs.
  Rng rng(3);
  nn::Sequential m = lenet5(1, 28, 10, rng);
  EXPECT_EQ(m.analog_sites().size(), 5u);
}

TEST(LeNet, RejectsUnsupportedInput) {
  Rng rng(4);
  EXPECT_THROW(lenet5(1, 9, 10, rng), std::invalid_argument);
}

TEST(Vgg, TopologyHas16WeightLayers) {
  Rng rng(5);
  VggConfig cfg;
  nn::Sequential m = vgg16(cfg, rng);
  // 13 convs + 3 FC = 16 analog sites (paper's VGG16 depth).
  EXPECT_EQ(m.analog_sites().size(), 16u);
}

TEST(Vgg, ForwardShape) {
  Rng rng(6);
  VggConfig cfg;
  cfg.num_classes = 100;
  nn::Sequential m = vgg16(cfg, rng);
  Tensor y = m.forward(Tensor({2, 3, 32, 32}), false);
  EXPECT_EQ(y.shape(), (Shape{2, 100}));
}

TEST(Vgg, WidthScalesParameters) {
  Rng rng(7);
  VggConfig narrow;
  narrow.width = 0.5f;
  VggConfig wide;
  wide.width = 1.0f;
  nn::Sequential mn = vgg16(narrow, rng);
  nn::Sequential mw = vgg16(wide, rng);
  EXPECT_LT(mn.num_params(), mw.num_params());
}

TEST(Vgg, DropoutLayersOptional) {
  Rng rng(8);
  VggConfig cfg;
  cfg.dropout = 0.5f;
  nn::Sequential with = vgg16(cfg, rng);
  cfg.dropout = 0.0f;
  nn::Sequential without = vgg16(cfg, rng);
  EXPECT_EQ(with.num_layers(), without.num_layers() + 2);
}

TEST(Vgg, InitializedWeightsAreFinite) {
  Rng rng(9);
  VggConfig cfg;
  nn::Sequential m = vgg16(cfg, rng);
  for (nn::Param* p : m.params())
    for (int64_t i = 0; i < p->size(); ++i) ASSERT_TRUE(std::isfinite(p->value[i]));
}

}  // namespace
}  // namespace cn::models
