#include "core/config.h"

#include <fstream>
#include <set>
#include <stdexcept>
#include <string>

#include <gtest/gtest.h>

#include "faultsim/campaign.h"
#include "runtime/serving_config.h"

namespace cn::core {
namespace {

TEST(RuntimeConfig, SingletonIsStable) {
  const RuntimeConfig& a = RuntimeConfig::get();
  const RuntimeConfig& b = RuntimeConfig::get();
  EXPECT_EQ(&a, &b);
}

TEST(RuntimeConfig, DefaultsAreSane) {
  const RuntimeConfig& c = RuntimeConfig::get();
  EXPECT_GE(c.mc_samples, 1);
  EXPECT_GT(c.epoch_scale, 0.0);
  EXPECT_GE(c.train_cap, 1);
  EXPECT_GE(c.test_cap, 1);
}

TEST(RuntimeConfig, EpochScalingNeverBelowOne) {
  RuntimeConfig c;
  c.epoch_scale = 0.01;
  EXPECT_EQ(c.epochs(5), 1);
  c.epoch_scale = 1.0;
  EXPECT_EQ(c.epochs(5), 5);
  c.epoch_scale = 2.0;
  EXPECT_EQ(c.epochs(5), 10);
  c.epoch_scale = 0.5;
  EXPECT_EQ(c.epochs(5), 3);  // rounds to nearest
}

TEST(KeyValueConfig, ParsesCommentsWhitespaceAndEmptyValues) {
  const KeyValueConfig cfg = KeyValueConfig::from_string(
      "# a comment line\n"
      "  chips = 8   # trailing comment\n"
      "name= lenet \n"
      "rate=0.5\n"
      "list = 1, 2.5 ,3\n"
      "empty =\n"
      "\n"
      "   \t\n");
  EXPECT_TRUE(cfg.has("chips"));
  EXPECT_EQ(cfg.integer("chips", -1), 8);
  EXPECT_EQ(cfg.str("name", "x"), "lenet");
  EXPECT_DOUBLE_EQ(cfg.number("rate", 0.0), 0.5);
  const std::vector<double> list = cfg.numbers("list");
  ASSERT_EQ(list.size(), 3u);
  EXPECT_DOUBLE_EQ(list[1], 2.5);
  EXPECT_TRUE(cfg.has("empty"));
  EXPECT_EQ(cfg.str("empty", "d"), "");
  EXPECT_EQ(cfg.integer("empty", 4), 4);  // empty value -> default
  EXPECT_FALSE(cfg.has("missing"));
  EXPECT_TRUE(cfg.numbers("missing").empty());
  EXPECT_EQ(cfg.numbers("missing", {7.0}).size(), 1u);
}

TEST(KeyValueConfig, SetOverridesOrAppends) {
  // The override layer the CLI flags use now that duplicate keys throw.
  KeyValueConfig cfg = KeyValueConfig::from_string("chips = 8\n");
  cfg.set("chips", "12");
  EXPECT_EQ(cfg.integer("chips", -1), 12);
  cfg.set("remap", "1");
  EXPECT_EQ(cfg.integer("remap", 0), 1);
}

TEST(KeyValueConfig, DuplicateKeyThrows) {
  // Two values for one knob must not silently race; overrides go via set().
  EXPECT_THROW(KeyValueConfig::from_string("chips = 8\nchips = 12\n"),
               std::runtime_error);
}

TEST(KeyValueConfig, MalformedLineThrows) {
  // 'chips 8' silently ignored would run the default chip count.
  EXPECT_THROW(KeyValueConfig::from_string("chips 8\n"), std::runtime_error);
  EXPECT_THROW(KeyValueConfig::from_string("chips = 8\nnot a pair\n"),
               std::runtime_error);
  // '= value' has no key.
  EXPECT_THROW(KeyValueConfig::from_string("= 3\n"), std::runtime_error);
}

TEST(KeyValueConfig, EmptyConfigThrows) {
  // A config with no pairs at all (empty file, or only comments) is a
  // mistake, not an empty campaign.
  EXPECT_THROW(KeyValueConfig::from_string(""), std::runtime_error);
  EXPECT_THROW(KeyValueConfig::from_string("# only comments\n\n"),
               std::runtime_error);
}

TEST(KeyValueConfig, UnknownKeysFailValidation) {
  const KeyValueConfig cfg =
      KeyValueConfig::from_string("chips = 8\nstuck.ratez = 0.1\n");
  EXPECT_THROW(cfg.validate_keys({"chips", "stuck.rates"}), std::runtime_error);
  EXPECT_NO_THROW(cfg.validate_keys({"chips", "stuck.ratez"}));
}

TEST(KeyValueConfig, UnparsableListCellThrows) {
  // A typo'd severity must not silently shrink a campaign grid.
  const KeyValueConfig cfg =
      KeyValueConfig::from_string("rates = 0.1, o.2\ntrailing = 0.5x\n");
  EXPECT_THROW(cfg.numbers("rates"), std::runtime_error);
  EXPECT_THROW(cfg.numbers("trailing"), std::runtime_error);
}

TEST(KeyValueConfig, PartialScalarParsesThrow) {
  // 'chips = 1O' must not silently run with 1 chip instead of 10.
  const KeyValueConfig cfg =
      KeyValueConfig::from_string("chips = 1O\nrate = 0.5x\n");
  EXPECT_THROW(cfg.integer("chips", 8), std::runtime_error);
  EXPECT_THROW(cfg.number("rate", 0.0), std::runtime_error);
}

TEST(ConfigDocs, CampaignTableMatchesDeclaredKeySet) {
  // docs/CONFIG.md documents every campaign config key in a table between
  // `campaign-keys:begin/end` markers; faultsim::campaign_config_keys() is
  // the set campaign_from_config hands to validate_keys. This test diffs the
  // two, so a key added in code without documentation — or documented
  // without being declared — fails tier-1.
  std::ifstream in(std::string(CN_SOURCE_DIR) + "/docs/CONFIG.md");
  ASSERT_TRUE(in.is_open()) << "docs/CONFIG.md missing under " << CN_SOURCE_DIR;

  std::set<std::string> documented;
  std::string line;
  bool in_table = false;
  while (std::getline(in, line)) {
    if (line.find("campaign-keys:begin") != std::string::npos) in_table = true;
    if (line.find("campaign-keys:end") != std::string::npos) in_table = false;
    // A documented key is the first backticked token of a table row.
    if (!in_table || line.rfind("| `", 0) != 0) continue;
    const size_t open = line.find('`');
    const size_t close = line.find('`', open + 1);
    ASSERT_NE(close, std::string::npos) << "unterminated key cell: " << line;
    documented.insert(line.substr(open + 1, close - open - 1));
  }
  ASSERT_FALSE(documented.empty())
      << "campaign-keys markers or table rows missing from docs/CONFIG.md";

  const auto& declared_list = faultsim::campaign_config_keys();
  const std::set<std::string> declared(declared_list.begin(),
                                       declared_list.end());
  for (const std::string& k : declared)
    EXPECT_TRUE(documented.count(k))
        << "key `" << k << "` is declared in campaign_config_keys() but "
        << "undocumented in docs/CONFIG.md";
  for (const std::string& k : documented)
    EXPECT_TRUE(declared.count(k))
        << "key `" << k << "` is documented in docs/CONFIG.md but not "
        << "declared in campaign_config_keys()";
}

TEST(KeyValueConfig, MissingFileThrows) {
  EXPECT_THROW(KeyValueConfig::from_file("/nonexistent/campaign.cfg"),
               std::runtime_error);
}

TEST(ConfigDocs, ServingTableMatchesDeclaredKeySet) {
  // Same contract as the campaign table, for the serving-policy key set:
  // docs/CONFIG.md's `serving-keys:begin/end` table must stay in lockstep
  // with runtime::serving_config_keys().
  std::ifstream in(std::string(CN_SOURCE_DIR) + "/docs/CONFIG.md");
  ASSERT_TRUE(in.is_open()) << "docs/CONFIG.md missing under " << CN_SOURCE_DIR;

  std::set<std::string> documented;
  std::string line;
  bool in_table = false;
  while (std::getline(in, line)) {
    if (line.find("serving-keys:begin") != std::string::npos) in_table = true;
    if (line.find("serving-keys:end") != std::string::npos) in_table = false;
    if (!in_table || line.rfind("| `", 0) != 0) continue;
    const size_t open = line.find('`');
    const size_t close = line.find('`', open + 1);
    ASSERT_NE(close, std::string::npos) << "unterminated key cell: " << line;
    documented.insert(line.substr(open + 1, close - open - 1));
  }
  ASSERT_FALSE(documented.empty())
      << "serving-keys markers or table rows missing from docs/CONFIG.md";

  const auto& declared_list = runtime::serving_config_keys();
  const std::set<std::string> declared(declared_list.begin(),
                                       declared_list.end());
  for (const std::string& k : declared)
    EXPECT_TRUE(documented.count(k))
        << "key `" << k << "` is declared in serving_config_keys() but "
        << "undocumented in docs/CONFIG.md";
  for (const std::string& k : documented)
    EXPECT_TRUE(declared.count(k))
        << "key `" << k << "` is documented in docs/CONFIG.md but not "
        << "declared in serving_config_keys()";
}

TEST(ServingConfig, ParsesOverridesAndDefaults) {
  const KeyValueConfig cfg = KeyValueConfig::from_string(
      "models = alpha, beta\nchips = 3\nworkers = 4\nqueue_limit = 32\n"
      "queue_budget_us = 5000\ndrill.kind = stuck_at\ndrill.severity = 0.05\n"
      "drill.workers = 1, 2\ndrill.action = evict\n");
  const runtime::ServingConfig sc = runtime::serving_from_config(cfg);
  ASSERT_EQ(sc.models.size(), 2u);
  EXPECT_EQ(sc.models[0], "alpha");
  EXPECT_EQ(sc.models[1], "beta");
  EXPECT_EQ(sc.chips, 3);
  EXPECT_EQ(sc.workers, 4);
  EXPECT_EQ(sc.queue_limit, 32);
  EXPECT_EQ(sc.queue_budget_us, 5000);
  EXPECT_EQ(sc.drill_kind, "stuck_at");
  EXPECT_EQ(sc.drill_action, "evict");
  ASSERT_EQ(sc.drill_workers.size(), 2u);
  EXPECT_EQ(sc.drill_workers[0], 1);
  EXPECT_EQ(sc.drill_workers[1], 2);
  // Untouched knobs keep their defaults.
  EXPECT_EQ(sc.max_batch, 16);
  EXPECT_EQ(sc.live_slots, 0);
}

TEST(ServingConfig, RejectsMalformedDeployments) {
  auto parse = [](const std::string& text) {
    return runtime::serving_from_config(KeyValueConfig::from_string(text));
  };
  EXPECT_THROW(parse("models = alpha, alpha\n"), std::runtime_error)
      << "duplicate model ids";
  EXPECT_THROW(parse("models = alpha,,beta\n"), std::runtime_error)
      << "empty model id cell";
  EXPECT_THROW(parse("models = a\nworkers = 0\n"), std::runtime_error);
  EXPECT_THROW(parse("models = a\nqueue_limit = -1\n"), std::runtime_error);
  EXPECT_THROW(parse("models = a\ndrill.action = reboot\n"),
               std::runtime_error);
  EXPECT_THROW(parse("models = a\nworkers = 2\ndrill.workers = 2\n"),
               std::runtime_error)
      << "drill worker index outside [0, workers)";
  EXPECT_THROW(parse("models = a\nbogus_key = 1\n"), std::runtime_error);
}

}  // namespace
}  // namespace cn::core
