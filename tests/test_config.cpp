#include "core/config.h"

#include <gtest/gtest.h>

namespace cn::core {
namespace {

TEST(RuntimeConfig, SingletonIsStable) {
  const RuntimeConfig& a = RuntimeConfig::get();
  const RuntimeConfig& b = RuntimeConfig::get();
  EXPECT_EQ(&a, &b);
}

TEST(RuntimeConfig, DefaultsAreSane) {
  const RuntimeConfig& c = RuntimeConfig::get();
  EXPECT_GE(c.mc_samples, 1);
  EXPECT_GT(c.epoch_scale, 0.0);
  EXPECT_GE(c.train_cap, 1);
  EXPECT_GE(c.test_cap, 1);
}

TEST(RuntimeConfig, EpochScalingNeverBelowOne) {
  RuntimeConfig c;
  c.epoch_scale = 0.01;
  EXPECT_EQ(c.epochs(5), 1);
  c.epoch_scale = 1.0;
  EXPECT_EQ(c.epochs(5), 5);
  c.epoch_scale = 2.0;
  EXPECT_EQ(c.epochs(5), 10);
  c.epoch_scale = 0.5;
  EXPECT_EQ(c.epochs(5), 3);  // rounds to nearest
}

}  // namespace
}  // namespace cn::core
