#include "analog/quant.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "tensor/rng.h"

namespace cn::analog {
namespace {

TEST(QuantizeUniform, EndpointsExact) {
  EXPECT_FLOAT_EQ(quantize_uniform(0.0f, 0.0f, 1.0f, 5), 0.0f);
  EXPECT_FLOAT_EQ(quantize_uniform(1.0f, 0.0f, 1.0f, 5), 1.0f);
}

TEST(QuantizeUniform, RoundsToNearestLevel) {
  // Levels at 0, 0.25, 0.5, 0.75, 1.
  EXPECT_FLOAT_EQ(quantize_uniform(0.3f, 0.0f, 1.0f, 5), 0.25f);
  EXPECT_FLOAT_EQ(quantize_uniform(0.4f, 0.0f, 1.0f, 5), 0.5f);
}

TEST(QuantizeUniform, ClampsOutOfRange) {
  EXPECT_FLOAT_EQ(quantize_uniform(2.0f, 0.0f, 1.0f, 3), 1.0f);
  EXPECT_FLOAT_EQ(quantize_uniform(-1.0f, 0.0f, 1.0f, 3), 0.0f);
}

TEST(QuantizeUniform, Validates) {
  EXPECT_THROW(quantize_uniform(0.5f, 0.0f, 1.0f, 1), std::invalid_argument);
  EXPECT_THROW(quantize_uniform(0.5f, 1.0f, 0.0f, 4), std::invalid_argument);
}

TEST(QuantizeTensor, LimitsDistinctValues) {
  Rng rng(1);
  Tensor t({1000});
  rng.fill_uniform(t, -1.0f, 1.0f);
  quantize_tensor(t, -1.0f, 1.0f, 8);
  std::set<float> distinct(t.vec().begin(), t.vec().end());
  EXPECT_LE(distinct.size(), 8u);
}

TEST(DacQuantize, DisabledForNonPositiveBits) {
  Tensor t = Tensor::from({0.1f, 0.7f, 0.3f});
  Tensor orig = t;
  dac_quantize(t, 0);
  for (int64_t i = 0; i < t.size(); ++i) EXPECT_FLOAT_EQ(t[i], orig[i]);
}

TEST(DacQuantize, PreservesRangeEndpoints) {
  Tensor t = Tensor::from({0.0f, 1.0f, 0.49f});
  dac_quantize(t, 1);  // 2 levels: 0 or 1
  EXPECT_FLOAT_EQ(t[0], 0.0f);
  EXPECT_FLOAT_EQ(t[1], 1.0f);
  EXPECT_FLOAT_EQ(t[2], 0.0f);
}

TEST(DacQuantize, ConstantInputUntouched) {
  Tensor t({4}, 2.0f);
  dac_quantize(t, 4);
  for (int64_t i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(t[i], 2.0f);
}

TEST(AdcQuantize, HighResolutionIsNearLossless) {
  Rng rng(2);
  Tensor t({100});
  rng.fill_uniform(t, -0.9f, 0.9f);
  Tensor orig = t;
  adc_quantize(t, 12, 1.0f);
  for (int64_t i = 0; i < t.size(); ++i) EXPECT_NEAR(t[i], orig[i], 1e-3f);
}

TEST(AdcQuantize, LowResolutionIsCoarse) {
  Tensor t = Tensor::from({0.3f});
  adc_quantize(t, 2, 1.0f);  // 4 levels over [-1, 1]: -1, -1/3, 1/3, 1
  EXPECT_NEAR(t[0], 1.0f / 3.0f, 1e-5f);
}

}  // namespace
}  // namespace cn::analog
