#include "core/sensitivity.h"

#include <gtest/gtest.h>

#include "core/trainer.h"
#include "data/synthetic.h"
#include "models/lenet.h"

namespace cn::core {
namespace {

TEST(Sensitivity, SweepShapeAndMonotoneTrend) {
  data::DigitsSpec spec;
  spec.train_count = 600;
  spec.test_count = 150;
  data::SplitDataset ds = data::make_digits(spec);
  Rng rng(1);
  nn::Sequential m = models::lenet5(1, 28, 10, rng);
  TrainConfig cfg;
  cfg.epochs = 2;
  train(m, ds.train, ds.test, cfg);
  const float clean = evaluate(m, ds.test);

  analog::VariationModel vm{analog::VariationKind::kLognormal, 0.5f};
  McOptions opts;
  opts.samples = 6;
  auto sweep = sensitivity_sweep(m, ds.test, vm, opts);
  ASSERT_EQ(sweep.size(), 5u);  // LeNet-5 has 5 analog sites
  for (size_t i = 0; i < sweep.size(); ++i)
    EXPECT_EQ(sweep[i].first_site, static_cast<int64_t>(i));
  // Later starting site => fewer perturbed layers => accuracy at the last
  // point must beat the first point (broad trend, not strict monotonicity).
  EXPECT_GT(sweep.back().mean + 1e-9, sweep.front().mean);
  // All accuracies below clean.
  for (const auto& p : sweep) EXPECT_LE(p.mean, clean + 1e-6);
}

TEST(CandidateCount, PicksFirstQualifyingIndex) {
  std::vector<SensitivityPoint> sweep = {
      {0, 0.30, 0.01}, {1, 0.50, 0.01}, {2, 0.93, 0.01}, {3, 0.97, 0.01}};
  // clean = 1.0, ratio 0.95 -> first mean >= 0.95 is index 3.
  EXPECT_EQ(compensation_candidate_count(sweep, 1.0, 0.95), 3);
  // Looser ratio 0.9 -> index 2.
  EXPECT_EQ(compensation_candidate_count(sweep, 1.0, 0.90), 2);
}

TEST(CandidateCount, AllLayersWhenNoneQualify) {
  std::vector<SensitivityPoint> sweep = {{0, 0.2, 0.0}, {1, 0.3, 0.0}};
  EXPECT_EQ(compensation_candidate_count(sweep, 1.0, 0.95), 2);
}

TEST(CandidateCount, ZeroWhenAlreadyRobust) {
  std::vector<SensitivityPoint> sweep = {{0, 0.99, 0.0}, {1, 0.99, 0.0}};
  EXPECT_EQ(compensation_candidate_count(sweep, 1.0, 0.95), 0);
}

}  // namespace
}  // namespace cn::core
