#include "analog/variation.h"

#include <gtest/gtest.h>

#include <cmath>

#include "nn/activations.h"
#include "nn/dense.h"
#include "nn/init.h"
#include "nn/sequential.h"
#include "tensor/ops.h"

namespace cn::analog {
namespace {

TEST(VariationModel, NoneGivesUnitFactors) {
  VariationModel vm{VariationKind::kNone, 0.5f};
  Rng rng(1);
  Tensor w({4, 4}, 1.0f);
  Tensor f = vm.sample_factors(w, rng);
  for (int64_t i = 0; i < f.size(); ++i) EXPECT_FLOAT_EQ(f[i], 1.0f);
}

TEST(VariationModel, LognormalFactorStatistics) {
  VariationModel vm{VariationKind::kLognormal, 0.5f};
  Rng rng(2);
  Tensor w({200, 200}, 1.0f);
  Tensor f = vm.sample_factors(w, rng);
  double m = 0.0;
  for (int64_t i = 0; i < f.size(); ++i) {
    EXPECT_GT(f[i], 0.0f);  // lognormal factors never flip sign
    m += f[i];
  }
  m /= static_cast<double>(f.size());
  EXPECT_NEAR(m, std::exp(0.125), 0.02);  // E[e^θ] = e^{σ²/2}
}

TEST(VariationModel, GaussianMultiplicativeMean) {
  VariationModel vm{VariationKind::kGaussianMultiplicative, 0.1f};
  Rng rng(3);
  Tensor w({100, 100}, 1.0f);
  Tensor f = vm.sample_factors(w, rng);
  EXPECT_NEAR(mean(f), 1.0f, 0.01f);
}

TEST(VariationModel, AdditiveRelPreservesZeroWeights) {
  VariationModel vm{VariationKind::kGaussianAdditiveRel, 0.2f};
  Rng rng(4);
  Tensor w({2, 2}, std::vector<float>{1.0f, 0.0f, -2.0f, 0.0f});
  Tensor f = vm.sample_factors(w, rng);
  EXPECT_FLOAT_EQ(f[1], 1.0f);
  EXPECT_FLOAT_EQ(f[3], 1.0f);
}

TEST(VariationModel, Bound3MatchesClosedForm) {
  const double sigma = 0.5;
  const double s2 = sigma * sigma;
  const double expect =
      std::exp(s2 / 2.0) + 3.0 * std::sqrt((std::exp(s2) - 1.0) * std::exp(s2));
  EXPECT_NEAR(VariationModel::lognormal_bound3(sigma), expect, 1e-12);
  // Monotone in sigma, equals 1 at sigma=0.
  EXPECT_NEAR(VariationModel::lognormal_bound3(0.0), 1.0, 1e-12);
  EXPECT_GT(VariationModel::lognormal_bound3(0.4),
            VariationModel::lognormal_bound3(0.2));
}

TEST(VariationModel, ZeroSigmaPerturbIsIdentity) {
  nn::Dense d(3, 3, "d");
  d.weight().value.fill(2.0f);
  VariationModel vm{VariationKind::kLognormal, 0.0f};
  Rng rng(5);
  vm.perturb(d, rng);
  Tensor x({1, 3}, 1.0f);
  Tensor y = d.forward(x, false);
  for (int64_t i = 0; i < y.size(); ++i) EXPECT_FLOAT_EQ(y[i], 6.0f);
}

nn::Sequential three_layer_net(Rng& rng) {
  nn::Sequential m("net");
  m.emplace<nn::Dense>(4, 4, "a");
  m.emplace<nn::ReLU>();
  m.emplace<nn::Dense>(4, 4, "b");
  m.emplace<nn::ReLU>();
  m.emplace<nn::Dense>(4, 2, "c");
  nn::init_model(m, rng);
  return m;
}

TEST(PerturbAll, ChangesOutputsAndClears) {
  Rng rng(6);
  nn::Sequential m = three_layer_net(rng);
  Tensor x({1, 4});
  rng.fill_normal(x, 0.0f, 1.0f);
  Tensor y0 = m.forward(x, false);
  VariationModel vm{VariationKind::kLognormal, 0.5f};
  Rng vrng(7);
  perturb_all(m, vm, vrng);
  Tensor y1 = m.forward(x, false);
  float diff = 0.0f;
  for (int64_t i = 0; i < y0.size(); ++i) diff += std::fabs(y1[i] - y0[i]);
  EXPECT_GT(diff, 1e-4f);
  clear_variations(m);
  Tensor y2 = m.forward(x, false);
  for (int64_t i = 0; i < y0.size(); ++i) EXPECT_FLOAT_EQ(y2[i], y0[i]);
}

TEST(PerturbFrom, LeavesEarlySitesNominal) {
  Rng rng(8);
  nn::Sequential m = three_layer_net(rng);
  auto sites = m.analog_sites();
  ASSERT_EQ(sites.size(), 3u);
  VariationModel vm{VariationKind::kLognormal, 0.5f};
  Rng vrng(9);
  perturb_from(m, vm, vrng, 2);
  // First two sites nominal: their effective output on a probe must match.
  nn::Sequential ref = three_layer_net(rng);  // different weights; compare layer-wise
  // Instead check directly: forward of layer 0 equals nominal forward.
  Tensor x({1, 4});
  Rng xrng(10);
  xrng.fill_normal(x, 0.0f, 1.0f);
  Tensor y_pert = m.layer(0).forward(x, false);
  m.clear_all_variations();
  Tensor y_nom = m.layer(0).forward(x, false);
  for (int64_t i = 0; i < y_pert.size(); ++i) EXPECT_FLOAT_EQ(y_pert[i], y_nom[i]);
}

TEST(PerturbFrom, IndexZeroEqualsPerturbAll) {
  Rng rng(11);
  nn::Sequential a = three_layer_net(rng);
  nn::Sequential b = a.clone_model();
  VariationModel vm{VariationKind::kLognormal, 0.3f};
  Rng r1(99), r2(99);
  perturb_all(a, vm, r1);
  perturb_from(b, vm, r2, 0);
  Tensor x({2, 4});
  Rng xr(5);
  xr.fill_normal(x, 0.0f, 1.0f);
  Tensor ya = a.forward(x, false);
  Tensor yb = b.forward(x, false);
  for (int64_t i = 0; i < ya.size(); ++i) EXPECT_FLOAT_EQ(ya[i], yb[i]);
}

TEST(VariationModel, Names) {
  EXPECT_EQ((VariationModel{VariationKind::kLognormal, 0.1f}).name(), "lognormal");
  EXPECT_EQ((VariationModel{VariationKind::kNone, 0.0f}).name(), "none");
}

}  // namespace
}  // namespace cn::analog
