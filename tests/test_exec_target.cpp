// The execution-target registry: builtin registrations, lookup and default
// semantics, registration invariants, the lowering seam (a registered custom
// target actually executes the batched path), target selection through the
// campaign config / ChipFarm layers, the int8 lowering envelope, and the
// symmetric int8 quantizer it builds on.
#include "exec/target.h"

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <stdexcept>
#include <string>

#include <gtest/gtest.h>

#include "analog/crossbar.h"
#include "analog/quant.h"
#include "core/config.h"
#include "exec_testutil.h"
#include "faultsim/campaign.h"
#include "nn/dense.h"
#include "nn/sequential.h"
#include "runtime/chip_farm.h"

namespace cn {
namespace {

// What default_target() must resolve to when no set_default_target override
// is live: the validated CORRECTNET_TARGET (how the CI matrix forces a
// target under this very binary), else the builtin default.
std::string ambient_name() {
  const char* env = std::getenv("CORRECTNET_TARGET");
  return (env && *env) ? env : "simd";
}

analog::RramDeviceParams quiet_dev() {
  analog::RramDeviceParams dev;
  dev.g_min = 1e-6f;
  dev.g_max = 1e-4f;
  return dev;
}

TEST(ExecRegistry, BuiltinsAreRegistered) {
  for (const char* name : {"simd", "simd-generic", "simd-avx2", "simd-avx512f",
                           "int8", "huge-tile"}) {
    const exec::Target* t = exec::find_target(name);
    ASSERT_NE(t, nullptr) << name;
    EXPECT_EQ(t->name(), name);
    EXPECT_FALSE(t->description().empty()) << name;
  }
  // Registration order: builtins first, the default family leading.
  auto all = exec::registered_targets();
  ASSERT_GE(all.size(), 6u);
  EXPECT_EQ(all[0]->name(), "simd");
  // The portable members are executable everywhere.
  EXPECT_TRUE(exec::find_target("simd")->available());
  EXPECT_TRUE(exec::find_target("simd-generic")->available());
  EXPECT_TRUE(exec::find_target("int8")->available());
  EXPECT_TRUE(exec::find_target("huge-tile")->available());
  // Exactness self-description: the float targets honor the bit-exactness
  // contract, int8 is declared approximate.
  EXPECT_TRUE(exec::find_target("simd")->bit_exact());
  EXPECT_TRUE(exec::find_target("simd-generic")->bit_exact());
  EXPECT_TRUE(exec::find_target("huge-tile")->bit_exact());
  EXPECT_FALSE(exec::find_target("int8")->bit_exact());
}

TEST(ExecRegistry, UnknownLookupsFailTheRightWay) {
  EXPECT_EQ(exec::find_target("no-such-target"), nullptr);
  try {
    exec::get_target("no-such-target");
    FAIL() << "get_target must throw on an unknown name";
  } catch (const std::runtime_error& e) {
    // The error must teach: it lists what is registered.
    EXPECT_NE(std::string(e.what()).find("simd"), std::string::npos) << e.what();
  }
}

TEST(ExecRegistry, DefaultTargetPrecedenceAndReset) {
  EXPECT_EQ(exec::default_target().name(), ambient_name());
  exec::set_default_target("huge-tile");
  EXPECT_EQ(exec::default_target().name(), "huge-tile");
  exec::reset_default_target();
  EXPECT_EQ(exec::default_target().name(), ambient_name());
  // A bad override throws and leaves the default untouched.
  EXPECT_THROW(exec::set_default_target("no-such-target"), std::runtime_error);
  EXPECT_EQ(exec::default_target().name(), ambient_name());
}

// A minimal target for registration tests: lowers every tile to a TileExec
// that writes zero currents.
class NullExec : public exec::TileExec {
 public:
  explicit NullExec(int64_t cols) : cols_(cols) {}
  void currents(const float*, int64_t nitems, int64_t, int64_t, float* cur,
                int64_t ldcur, exec::Scratch&) const override {
    for (int64_t i = 0; i < nitems; ++i)
      for (int64_t c = 0; c < cols_; ++c) cur[i * ldcur + c] = 0.0f;
  }
  int64_t row_block() const override { return 8; }

 private:
  int64_t cols_;
};

class NullTarget : public exec::Target {
 public:
  explicit NullTarget(std::string name) : name_(std::move(name)) {}
  std::string name() const override { return name_; }
  std::string description() const override { return "writes zero currents"; }
  bool available() const override { return true; }
  bool bit_exact() const override { return false; }
  std::unique_ptr<exec::TileExec> lower(const exec::TileView& t) const override {
    return std::make_unique<NullExec>(t.cols);
  }

 private:
  std::string name_;
};

TEST(ExecRegistry, DuplicateAndEmptyRegistrationThrow) {
  EXPECT_THROW(exec::register_target(std::make_unique<NullTarget>("simd")),
               std::invalid_argument);
  EXPECT_THROW(exec::register_target(std::make_unique<NullTarget>("")),
               std::invalid_argument);
}

TEST(ExecRegistry, RegisteredTargetDrivesTheBatchedPath) {
  // The lowering seam end to end: a target registered at runtime must be
  // what matmul executes through when an array is built on it. Zero
  // currents -> zero outputs, unmistakably distinct from every real kernel.
  const exec::Target* null_t =
      exec::register_target(std::make_unique<NullTarget>("test-null"));
  ASSERT_EQ(exec::find_target("test-null"), null_t);
  Rng rng(91);
  Tensor w({5, 9});
  rng.fill_normal(w, 0.0f, 0.5f);
  Rng prog(92);
  analog::CrossbarArray xbar(w, quiet_dev(), prog, /*tile=*/4, nullptr,
                             nullptr, null_t);
  EXPECT_EQ(xbar.target().name(), "test-null");
  Tensor x({3, 9});
  rng.fill_normal(x, 0.0f, 1.0f);
  const Tensor y = xbar.matmul(x);
  testutil::expect_bitwise_equal(y, Tensor(y.shape()),
                                 "null-target batched output");
  // The scalar reference is target-independent and stays non-zero.
  Tensor xi({9});
  std::memcpy(xi.data(), x.data(), 9 * sizeof(float));
  const Tensor yv = xbar.matvec(xi);
  double mass = 0.0;
  for (int64_t i = 0; i < yv.size(); ++i) mass += std::abs(yv[i]);
  EXPECT_GT(mass, 0.0);
}

TEST(ExecRegistry, Int8LoweringRejectsTilesBeyondAccumulatorRange) {
  // 2^31 / 127^2 rows is where the int32 accumulator could overflow; the
  // int8 target must refuse to lower such a tile instead of wrapping.
  constexpr int64_t kRows = (int64_t{1} << 31) / (127 * 127) + 1;
  Rng rng(93);
  Tensor w({1, kRows});
  rng.fill_normal(w, 0.0f, 0.5f);
  Rng prog(94);
  EXPECT_THROW(analog::CrossbarArray(w, quiet_dev(), prog, /*tile=*/1 << 18,
                                     nullptr, nullptr,
                                     &exec::get_target("int8")),
               std::runtime_error);
  // The same shape lowers fine on the default float targets.
  Rng prog2(94);
  analog::CrossbarArray ok(w, quiet_dev(), prog2, /*tile=*/1 << 18, nullptr,
                           nullptr, &exec::get_target("huge-tile"));
  EXPECT_EQ(ok.num_tiles(), 1);
}

TEST(ExecConfig, CampaignValidatesTargetKey) {
  // A typo'd target fails at campaign construction, before any training or
  // evaluation happens.
  auto bad = core::KeyValueConfig::from_string(
      "stuck.rates = 0.01\ntarget = no-such-target\n");
  EXPECT_THROW(faultsim::campaign_from_config(bad), std::runtime_error);
  // A registered name threads through to the campaign options.
  auto good = core::KeyValueConfig::from_string(
      "stuck.rates = 0.01\ntarget = simd-generic\n");
  faultsim::Campaign c = faultsim::campaign_from_config(good);
  EXPECT_EQ(c.target(), "simd-generic");
  // And a key set that never mentions target leaves it to the process
  // default (empty string in the options).
  auto none = core::KeyValueConfig::from_string("stuck.rates = 0.01\n");
  EXPECT_EQ(faultsim::campaign_from_config(none).target(), "");
}

TEST(ExecFarm, CrossbarFarmResolvesTargetAndFactorFarmRejectsIt) {
  nn::Sequential m{"m"};
  m.emplace<nn::Dense>(6, 3, "fc");
  runtime::ChipFarmOptions fo;
  fo.instances = 2;
  fo.tile = 8;
  fo.target = "simd-generic";
  runtime::ChipFarm farm(m, quiet_dev(), fo);
  EXPECT_EQ(farm.target_name(), "simd-generic");
  // Empty target = process default, resolved at populate time.
  runtime::ChipFarmOptions fd;
  fd.instances = 2;
  fd.tile = 8;
  runtime::ChipFarm dfarm(m, quiet_dev(), fd);
  EXPECT_EQ(dfarm.target_name(), exec::default_target().name());
  // Unknown names fail at construction.
  runtime::ChipFarmOptions fbad = fo;
  fbad.target = "no-such-target";
  EXPECT_THROW(runtime::ChipFarm(m, quiet_dev(), fbad), std::runtime_error);
  // Factor farms execute digitally: a target makes no sense there.
  analog::VariationModel vm{analog::VariationKind::kLognormal, 0.3f};
  EXPECT_THROW(runtime::ChipFarm(m, vm, fo), std::invalid_argument);
  runtime::ChipFarmOptions ff;
  ff.instances = 2;
  runtime::ChipFarm factor(m, vm, ff);
  EXPECT_EQ(factor.target_name(), "");
}

TEST(Int8Quant, SymmetricQuantizerRoundTripsWithinHalfStep) {
  const float x[] = {0.8f, -0.3f, 0.05f, -1.27f, 0.0f, 0.64f};
  constexpr int64_t n = 6;
  int8_t q[n];
  const float scale = analog::quantize_symmetric_int8(x, n, 1, q);
  ASSERT_GT(scale, 0.0f);
  EXPECT_FLOAT_EQ(scale, 1.27f / 127.0f);
  for (int64_t i = 0; i < n; ++i) {
    EXPECT_GE(q[i], -127);  // -128 stays unused: symmetric range
    EXPECT_LE(q[i], 127);
    EXPECT_LE(std::abs(q[i] * scale - x[i]), scale / 2 + 1e-7f) << i;
  }
  // Strided reads quantize the same logical vector.
  float strided[2 * n];
  for (int64_t i = 0; i < n; ++i) strided[2 * i] = x[i];
  int8_t qs[n];
  const float s2 = analog::quantize_symmetric_int8(strided, n, 2, qs);
  EXPECT_EQ(s2, scale);
  for (int64_t i = 0; i < n; ++i) EXPECT_EQ(qs[i], q[i]);
  // The all-zero span: scale 0, all codes 0 (callers short-circuit on it).
  const float zeros[3] = {0.0f, 0.0f, 0.0f};
  int8_t qz[3] = {1, 2, 3};
  EXPECT_EQ(analog::quantize_symmetric_int8(zeros, 3, 1, qz), 0.0f);
  for (int64_t i = 0; i < 3; ++i) EXPECT_EQ(qz[i], 0);
}

}  // namespace
}  // namespace cn
