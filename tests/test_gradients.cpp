// Numerical gradient checks: the backbone correctness tests for the NN stack.
//
// For a scalar loss L(model(x)) we compare analytic parameter/input gradients
// against central finite differences.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "nn/activations.h"
#include "nn/conv2d.h"
#include "nn/dense.h"
#include "nn/loss.h"
#include "nn/pooling.h"
#include "nn/sequential.h"
#include "core/compensation.h"
#include "tensor/ops.h"
#include "tensor/rng.h"

namespace cn::nn {
namespace {

// Sum-of-outputs-squared loss: L = 0.5 * Σ y², dL/dy = y.
float loss_and_grad(Layer& layer, const Tensor& x, Tensor* dx) {
  Tensor y = layer.forward(x, true);
  float loss = 0.5f * sum_sq(y);
  Tensor g = y;  // dL/dy = y
  Tensor gx = layer.backward(g);
  if (dx) *dx = gx;
  return loss;
}

float loss_only(Layer& layer, const Tensor& x) {
  Tensor y = layer.forward(x, false);
  return 0.5f * sum_sq(y);
}

// Checks dL/dtheta for every param plus dL/dx numerically.
void check_layer_gradients(Layer& layer, Tensor x, float tol = 2e-2f) {
  for (Param* p : layer.params()) p->zero_grad();
  Tensor dx;
  loss_and_grad(layer, x, &dx);

  const float eps = 1e-2f;
  // Parameter gradients (probe a bounded number of entries).
  for (Param* p : layer.params()) {
    const int64_t stride = std::max<int64_t>(1, p->size() / 17);
    for (int64_t i = 0; i < p->size(); i += stride) {
      const float orig = p->value[i];
      p->value[i] = orig + eps;
      const float lp = loss_only(layer, x);
      p->value[i] = orig - eps;
      const float lm = loss_only(layer, x);
      p->value[i] = orig;
      const float num = (lp - lm) / (2 * eps);
      EXPECT_NEAR(p->grad[i], num, tol * std::max(1.0f, std::fabs(num)))
          << "param " << p->name << " index " << i;
    }
  }
  // Input gradients.
  const int64_t stride = std::max<int64_t>(1, x.size() / 13);
  for (int64_t i = 0; i < x.size(); i += stride) {
    const float orig = x[i];
    x[i] = orig + eps;
    const float lp = loss_only(layer, x);
    x[i] = orig - eps;
    const float lm = loss_only(layer, x);
    x[i] = orig;
    const float num = (lp - lm) / (2 * eps);
    EXPECT_NEAR(dx[i], num, tol * std::max(1.0f, std::fabs(num))) << "input index " << i;
  }
}

TEST(GradCheck, Dense) {
  Rng rng(1);
  Dense d(5, 4, "fc");
  rng.fill_normal(d.weight().value, 0.0f, 0.5f);
  rng.fill_normal(d.bias().value, 0.0f, 0.1f);
  Tensor x({3, 5});
  rng.fill_normal(x, 0.0f, 1.0f);
  check_layer_gradients(d, x);
}

TEST(GradCheck, DenseWithVariationFactors) {
  // Gradients must flow through the *perturbed* operator.
  Rng rng(2);
  Dense d(4, 3, "fc");
  rng.fill_normal(d.weight().value, 0.0f, 0.5f);
  Tensor f(d.weight().value.shape());
  rng.fill_lognormal_factor(f, 0.4f);
  d.set_weight_factors(f);
  Tensor x({2, 4});
  rng.fill_normal(x, 0.0f, 1.0f);

  for (Param* p : d.params()) p->zero_grad();
  Tensor dx;
  loss_and_grad(d, x, &dx);
  // Input gradient check only: the factor multiplies the weight, so dL/dx
  // must match finite differences of the perturbed forward.
  const float eps = 1e-2f;
  for (int64_t i = 0; i < x.size(); ++i) {
    const float orig = x[i];
    x[i] = orig + eps;
    const float lp = loss_only(d, x);
    x[i] = orig - eps;
    const float lm = loss_only(d, x);
    x[i] = orig;
    EXPECT_NEAR(dx[i], (lp - lm) / (2 * eps), 2e-2f);
  }
}

TEST(GradCheck, Conv2D) {
  Rng rng(3);
  Conv2D c(2, 3, 3, 1, 1, 5, 5, "conv");
  rng.fill_normal(c.weight().value, 0.0f, 0.3f);
  rng.fill_normal(c.bias().value, 0.0f, 0.1f);
  Tensor x({2, 2, 5, 5});
  rng.fill_normal(x, 0.0f, 1.0f);
  check_layer_gradients(c, x);
}

TEST(GradCheck, Conv2DStride2) {
  Rng rng(4);
  Conv2D c(1, 2, 3, 2, 1, 6, 6, "conv");
  rng.fill_normal(c.weight().value, 0.0f, 0.3f);
  Tensor x({1, 1, 6, 6});
  rng.fill_normal(x, 0.0f, 1.0f);
  check_layer_gradients(c, x);
}

TEST(GradCheck, MaxPool) {
  Rng rng(5);
  MaxPool2D p(2);
  Tensor x({2, 2, 4, 4});
  rng.fill_normal(x, 0.0f, 1.0f);
  check_layer_gradients(p, x);
}

TEST(GradCheck, AvgPool) {
  Rng rng(6);
  AvgPool2D p(2);
  Tensor x({2, 3, 4, 4});
  rng.fill_normal(x, 0.0f, 1.0f);
  check_layer_gradients(p, x);
}

TEST(GradCheck, SmallMlp) {
  Rng rng(7);
  Sequential m("mlp");
  auto& d1 = m.emplace<Dense>(4, 6, "d1");
  m.emplace<ReLU>();
  auto& d2 = m.emplace<Dense>(6, 3, "d2");
  rng.fill_normal(d1.weight().value, 0.0f, 0.5f);
  rng.fill_normal(d2.weight().value, 0.0f, 0.5f);
  Tensor x({2, 4});
  rng.fill_normal(x, 0.0f, 1.0f);
  check_layer_gradients(m, x);
}

TEST(GradCheck, CompensatedConv2D) {
  Rng rng(8);
  auto base = std::make_unique<Conv2D>(2, 3, 3, 1, 1, 6, 6, "base");
  rng.fill_normal(base->weight().value, 0.0f, 0.3f);
  core::CompensatedConv2D cc(std::move(base), 2, rng);
  Tensor x({2, 2, 6, 6});
  rng.fill_normal(x, 0.0f, 1.0f);
  check_layer_gradients(cc, x, 3e-2f);
}

TEST(GradCheck, CompensatedConvWithPerturbedBase) {
  // The compensation-training configuration: base perturbed + frozen,
  // gradients still correct for generator/compensator and inputs.
  Rng rng(9);
  auto base = std::make_unique<Conv2D>(1, 2, 3, 1, 1, 4, 4, "base");
  rng.fill_normal(base->weight().value, 0.0f, 0.4f);
  Tensor f(base->weight().value.shape());
  rng.fill_lognormal_factor(f, 0.5f);
  base->set_weight_factors(f);
  core::CompensatedConv2D cc(std::move(base), 1, rng);
  Tensor x({1, 1, 4, 4});
  rng.fill_normal(x, 0.0f, 1.0f);
  check_layer_gradients(cc, x, 3e-2f);
}

TEST(GradCheck, SoftmaxCrossEntropy) {
  Rng rng(10);
  Tensor logits({3, 5});
  rng.fill_normal(logits, 0.0f, 1.0f);
  std::vector<int> labels{1, 4, 0};
  SoftmaxCrossEntropy ce;
  Tensor grad;
  ce.forward(logits, labels, &grad);
  const float eps = 1e-3f;
  for (int64_t i = 0; i < logits.size(); ++i) {
    const float orig = logits[i];
    logits[i] = orig + eps;
    const float lp = ce.forward(logits, labels);
    logits[i] = orig - eps;
    const float lm = ce.forward(logits, labels);
    logits[i] = orig;
    EXPECT_NEAR(grad[i], (lp - lm) / (2 * eps), 1e-3f);
  }
}

TEST(GradCheck, MeanSquaredError) {
  Rng rng(11);
  Tensor pred({4}), target({4});
  rng.fill_normal(pred, 0.0f, 1.0f);
  rng.fill_normal(target, 0.0f, 1.0f);
  MeanSquaredError mse;
  Tensor grad;
  mse.forward(pred, target, &grad);
  const float eps = 1e-3f;
  for (int64_t i = 0; i < 4; ++i) {
    const float orig = pred[i];
    pred[i] = orig + eps;
    const float lp = mse.forward(pred, target);
    pred[i] = orig - eps;
    const float lm = mse.forward(pred, target);
    pred[i] = orig;
    EXPECT_NEAR(grad[i], (lp - lm) / (2 * eps), 1e-3f);
  }
}

}  // namespace
}  // namespace cn::nn
