// The batched/parallel inference runtime: ChipFarm determinism, McEngine
// thread-count invariance, batched crossbar execution equivalence, the
// per-clone read-noise streams, the indexed scenario scheduler, and the
// micro-batching InferenceServer.
#include <atomic>
#include <chrono>
#include <cmath>
#include <future>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "analog/crossbar_layers.h"
#include "core/trainer.h"
#include "exec_testutil.h"
#include "data/synthetic.h"
#include "faultsim/fault_models.h"
#include "models/lenet.h"
#include "runtime/chip_farm.h"
#include "runtime/inference_server.h"
#include "runtime/mc_engine.h"
#include "runtime/model_router.h"
#include "runtime/scheduler.h"
#include "tensor/ops.h"
#include "tensor/threadpool.h"

namespace cn::runtime {
namespace {

analog::RramDeviceParams quiet_dev() {
  analog::RramDeviceParams dev;
  dev.g_min = 1e-6f;
  dev.g_max = 1e-4f;
  return dev;
}

// Shared tiny trained model + dataset.
struct Fixture {
  data::SplitDataset ds;
  nn::Sequential model{"m"};

  Fixture() {
    data::DigitsSpec spec;
    spec.train_count = 500;
    spec.test_count = 150;
    ds = data::make_digits(spec);
    Rng rng(1);
    model = models::lenet5(1, 28, 10, rng);
    core::TrainConfig cfg;
    cfg.epochs = 2;
    core::train(model, ds.train, ds.test, cfg);
  }
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

// ---------- indexed scenario scheduler ----------

TEST(Scheduler, EffectiveConcurrencyResolvesAutoAndClamps) {
  const int64_t width = static_cast<int64_t>(ThreadPool::global().size());
  EXPECT_EQ(effective_concurrency(0, 100), std::min<int64_t>(width, 100));
  EXPECT_EQ(effective_concurrency(-3, 100), std::min<int64_t>(width, 100));
  EXPECT_EQ(effective_concurrency(8, 3), 3);   // never more workers than jobs
  EXPECT_EQ(effective_concurrency(1, 100), 1);
  EXPECT_EQ(effective_concurrency(4, 0), 1);   // degenerate ranges stay sane
}

TEST(Scheduler, CoversEveryIndexExactlyOnce) {
  constexpr int64_t kJobs = 200;
  std::vector<std::atomic<int>> hits(kJobs);
  parallel_indexed(kJobs, 4, [&](int64_t i) {
    hits[static_cast<size_t>(i)].fetch_add(1);
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Scheduler, ConcurrencyOneRunsInIndexOrderOnCaller) {
  const std::thread::id me = std::this_thread::get_id();
  std::vector<int64_t> order;
  parallel_indexed(10, 1, [&](int64_t i) {
    EXPECT_EQ(std::this_thread::get_id(), me);
    order.push_back(i);
  });
  ASSERT_EQ(order.size(), 10u);
  for (int64_t i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Scheduler, ProvisionsWorkersBeyondTheSharedPool) {
  // Requesting more concurrency than the shared pool is wide must still put
  // that many jobs in flight at once (a dedicated pool is spun up): with 4
  // workers and 4 jobs that block on a shared barrier, the barrier only
  // clears if all 4 genuinely run concurrently.
  const int64_t conc =
      static_cast<int64_t>(ThreadPool::global().size()) + 3;
  std::atomic<int64_t> arrived{0};
  parallel_indexed(conc, conc, [&](int64_t) {
    arrived.fetch_add(1);
    // Barrier: every job waits until all have started.
    while (arrived.load() < conc) std::this_thread::yield();
  });
  EXPECT_EQ(arrived.load(), conc);
}

TEST(Scheduler, PropagatesTheFirstJobException) {
  // A throwing job must surface on the calling thread (not terminate a
  // worker), and the scheduler must stay fully usable afterwards. How many
  // queued jobs run before the failure is seen is timing-dependent, so only
  // propagation and recovery are asserted.
  EXPECT_THROW(parallel_indexed(16, 4,
                                [&](int64_t i) {
                                  if (i == 3) throw std::runtime_error("boom");
                                }),
               std::runtime_error);
  std::atomic<int64_t> ran{0};
  parallel_indexed(16, 4, [&](int64_t) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 16);
}

TEST(Scheduler, NestedCallInsideAPoolWorkerRunsSequentially) {
  // A scheduler job that itself schedules must degrade to a serial loop
  // (its thread already lives inside a parallel region) instead of
  // deadlocking or spawning useless pools.
  std::atomic<int64_t> total{0};
  parallel_indexed(4, 4, [&](int64_t) {
    parallel_indexed(8, 4, [&](int64_t) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 32);
}

// ---------- batched crossbar execution ----------

TEST(CrossbarMatmul, MatchesMatvecExactlyUnderQuantization) {
  // Stress every deterministic device feature: programming variation,
  // conductance levels, DAC and ADC quantization, multiple tiles.
  CN_SKIP_UNLESS_BIT_EXACT_TARGET();
  analog::RramDeviceParams dev = quiet_dev();
  dev.program_sigma = 0.2f;
  dev.conductance_levels = 16;
  dev.readout.adc_bits = 8;
  dev.readout.dac_bits = 6;
  Rng rng(11);
  Tensor w({9, 20});  // (out, in): 20 inputs, 9 outputs
  rng.fill_normal(w, 0.0f, 0.5f);
  Rng prog(12);
  analog::CrossbarArray xbar(w, dev, prog, /*tile=*/7);  // force tiling both ways
  Tensor x({5, 20});
  rng.fill_normal(x, 0.0f, 1.0f);
  Tensor y_batch = xbar.matmul(x);
  ASSERT_EQ(y_batch.dim(0), 5);
  ASSERT_EQ(y_batch.dim(1), 9);
  Tensor x_cm({20, 5});  // column-major variant (conv im2col layout)
  for (int64_t n = 0; n < 5; ++n)
    for (int64_t k = 0; k < 20; ++k) x_cm[k * 5 + n] = x[n * 20 + k];
  Tensor y_cols = xbar.matmul_cols(x_cm);
  ASSERT_EQ(y_cols.shape(), y_batch.shape());
  Tensor xi({20});
  for (int64_t n = 0; n < 5; ++n) {
    std::copy(x.data() + n * 20, x.data() + (n + 1) * 20, xi.data());
    Tensor yi = xbar.matvec(xi);
    for (int64_t o = 0; o < 9; ++o) {
      EXPECT_EQ(y_batch[n * 9 + o], yi[o]) << "row " << n << " col " << o;
      EXPECT_EQ(y_cols[n * 9 + o], yi[o]) << "row " << n << " col " << o;
    }
  }
}

TEST(CrossbarLayers, BatchedForwardMatchesPerColumnPath) {
  CN_SKIP_UNLESS_BIT_EXACT_TARGET();
  auto& f = fixture();
  analog::RramDeviceParams dev = quiet_dev();
  dev.program_sigma = 0.3f;
  Rng prog(21);
  nn::Sequential chip = analog::program_to_crossbars(f.model, dev, prog);
  Tensor x({4, 1, 28, 28});
  std::copy(f.ds.test.images.data(), f.ds.test.images.data() + x.size(), x.data());
  analog::set_batched(chip, true);
  Tensor y_batched = chip.forward(x, false);
  analog::set_batched(chip, false);
  Tensor y_columns = chip.forward(x, false);
  ASSERT_EQ(y_batched.shape(), y_columns.shape());
  for (int64_t i = 0; i < y_batched.size(); ++i)
    EXPECT_EQ(y_batched[i], y_columns[i]) << "logit " << i;
}

// ---------- ChipFarm ----------

TEST(ChipFarm, ChipSeedsAreDeterministicAndDistinct) {
  auto& f = fixture();
  analog::VariationModel vm{analog::VariationKind::kLognormal, 0.3f};
  ChipFarmOptions fo;
  fo.instances = 4;
  fo.seed = 7;
  ChipFarm a(f.model, vm, fo);
  ChipFarm b(f.model, vm, fo);
  for (int64_t s = 0; s < 4; ++s) EXPECT_EQ(a.chip_seed(s), b.chip_seed(s));
  EXPECT_NE(a.chip_seed(0), a.chip_seed(1));
  EXPECT_NE(a.chip_seed(1), a.chip_seed(2));
}

TEST(ChipFarm, SlotReuseReproducesSameChip) {
  auto& f = fixture();
  analog::VariationModel vm{analog::VariationKind::kLognormal, 0.4f};
  ChipFarmOptions fo;
  fo.instances = 3;
  fo.max_live = 1;  // all chips share one physical slot
  ChipFarm farm(f.model, vm, fo);
  Tensor x({2, 1, 28, 28});
  std::copy(f.ds.test.images.data(), f.ds.test.images.data() + x.size(), x.data());
  Tensor y0_first = farm.chip(0).forward(x, false);
  Tensor y1 = farm.chip(1).forward(x, false);      // evicts chip 0
  Tensor y0_again = farm.chip(0).forward(x, false);  // re-materialized
  for (int64_t i = 0; i < y0_first.size(); ++i)
    EXPECT_EQ(y0_first[i], y0_again[i]);
  // And the chips genuinely differ from each other.
  double diff = 0.0;
  for (int64_t i = 0; i < y1.size(); ++i)
    diff += std::abs(static_cast<double>(y1[i]) - y0_first[i]);
  EXPECT_GT(diff, 0.0);
}

// ---------- McEngine determinism ----------

TEST(McEngine, SamplesIdenticalAcrossThreadAndSlotCounts) {
  auto& f = fixture();
  analog::VariationModel vm{analog::VariationKind::kLognormal, 0.4f};

  auto run = [&](int64_t max_live, int threads) {
    ChipFarmOptions fo;
    fo.instances = 6;
    fo.seed = 99;
    fo.max_live = max_live;
    ChipFarm farm(f.model, vm, fo);
    McEngineOptions eo;
    eo.batch_size = 64;
    eo.threads = threads;
    return McEngine(farm, eo).accuracy(f.ds.test);
  };

  const core::McResult serial = run(1, 1);
  const core::McResult pooled = run(3, 0);
  const core::McResult wide = run(6, 0);
  ASSERT_EQ(serial.samples.size(), 6u);
  ASSERT_EQ(pooled.samples.size(), 6u);
  ASSERT_EQ(wide.samples.size(), 6u);
  for (size_t s = 0; s < 6; ++s) {
    EXPECT_DOUBLE_EQ(serial.samples[s], pooled.samples[s]) << "sample " << s;
    EXPECT_DOUBLE_EQ(serial.samples[s], wide.samples[s]) << "sample " << s;
  }
  EXPECT_DOUBLE_EQ(serial.mean, wide.mean);
  EXPECT_DOUBLE_EQ(serial.stddev, wide.stddev);
}

TEST(McEngine, CrossbarReadNoiseIdenticalAcrossSlotCountsAndRuns) {
  // Regression: a persistent slot must not remember read-noise draws a
  // previous evaluation consumed — chip handouts re-arm the streams, so
  // results cannot depend on max_live or on how often the farm was used.
  auto& f = fixture();
  analog::RramDeviceParams dev = quiet_dev();
  dev.program_sigma = 0.2f;
  dev.readout.read_sigma = 0.05f;
  auto run = [&](int64_t max_live) {
    ChipFarmOptions fo;
    fo.instances = 3;
    fo.seed = 5;
    fo.max_live = max_live;
    ChipFarm farm(f.model, dev, fo);
    McEngineOptions eo;
    eo.batch_size = 64;
    McEngine engine(farm, eo);
    const core::McResult first = engine.accuracy(f.ds.test);
    const core::McResult second = engine.accuracy(f.ds.test);
    for (size_t s = 0; s < first.samples.size(); ++s)
      EXPECT_DOUBLE_EQ(first.samples[s], second.samples[s])
          << "repeat run, max_live " << max_live << " sample " << s;
    return first;
  };
  const core::McResult one = run(1);
  const core::McResult all = run(3);
  ASSERT_EQ(one.samples.size(), 3u);
  for (size_t s = 0; s < 3; ++s)
    EXPECT_DOUBLE_EQ(one.samples[s], all.samples[s]) << "sample " << s;
}

TEST(MonteCarlo, ZeroSampleBudgetIsANoop) {
  // CORRECTNET_MC=0 feeds samples == 0 straight through; the seed loop
  // returned empty stats instead of throwing.
  auto& f = fixture();
  analog::VariationModel vm{analog::VariationKind::kLognormal, 0.3f};
  core::McOptions opts;
  opts.samples = 0;
  const core::McResult r = core::mc_accuracy(f.model, f.ds.test, vm, opts);
  EXPECT_TRUE(r.samples.empty());
  EXPECT_EQ(r.mean, 0.0);
  const auto sweep = core::sensitivity_sweep(f.model, f.ds.test, vm, opts);
  EXPECT_EQ(sweep.size(), 5u);  // LeNet-5: 5 analog sites, zero stats
  for (const auto& p : sweep) EXPECT_EQ(p.mean, 0.0);
}

TEST(McEngine, SensitivitySweepMatchesCoreApi) {
  auto& f = fixture();
  analog::VariationModel vm{analog::VariationKind::kLognormal, 0.5f};
  core::McOptions opts;
  opts.samples = 3;
  opts.seed = 17;
  const auto via_core = core::sensitivity_sweep(f.model, f.ds.test, vm, opts);

  nn::Sequential probe = f.model.clone_model();
  const int64_t sites = static_cast<int64_t>(probe.analog_sites().size());
  ChipFarmOptions fo;
  fo.instances = opts.samples;
  fo.seed = opts.seed;
  ChipFarm farm(f.model, vm, fo);
  McEngineOptions eo;
  eo.batch_size = opts.batch_size;
  const auto via_engine =
      McEngine(farm, eo).sensitivity_sweep(f.ds.test, sites, opts.seed);

  ASSERT_EQ(via_core.size(), via_engine.size());
  for (size_t i = 0; i < via_core.size(); ++i) {
    EXPECT_EQ(via_core[i].first_site, via_engine[i].first_site);
    EXPECT_DOUBLE_EQ(via_core[i].mean, via_engine[i].mean);
    EXPECT_DOUBLE_EQ(via_core[i].stddev, via_engine[i].stddev);
  }
}

// ---------- read-noise streams across concurrent clones ----------

TEST(ReadNoise, OwnedStreamsAreDeterministicUnderConcurrency) {
  auto& f = fixture();
  analog::RramDeviceParams dev = quiet_dev();
  dev.readout.read_sigma = 0.05f;
  Rng prog(31);
  nn::Sequential chip = analog::program_to_crossbars(f.model, dev, prog);
  analog::set_read_seeds(chip, 555);

  Tensor x({2, 1, 28, 28});
  std::copy(f.ds.test.images.data(), f.ds.test.images.data() + x.size(), x.data());

  // Reference: one clone, K sequential forwards (each draws fresh noise, so
  // consecutive outputs differ but the whole sequence is seed-determined).
  constexpr int kForwards = 4;
  std::vector<Tensor> expected;
  {
    auto ref = chip.clone();  // clones copy the owned rng state
    for (int i = 0; i < kForwards; ++i) expected.push_back(ref->forward(x, false));
  }
  double drift = 0.0;
  for (int64_t i = 0; i < expected[0].size(); ++i)
    drift += std::abs(static_cast<double>(expected[0][i]) - expected[1][i]);
  EXPECT_GT(drift, 0.0) << "read noise should vary between reads";

  // Concurrent clones: every clone starts from the same copied stream state,
  // so each thread must reproduce the reference sequence exactly. With the
  // old shared-Rng* wiring the interleaved draws made this nondeterministic
  // (and racy).
  constexpr int kThreads = 4;
  std::vector<std::vector<Tensor>> got(kThreads);
  {
    std::vector<std::unique_ptr<nn::Layer>> clones;
    for (int t = 0; t < kThreads; ++t) clones.push_back(chip.clone());
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t)
      threads.emplace_back([&, t] {
        for (int i = 0; i < kForwards; ++i)
          got[static_cast<size_t>(t)].push_back(clones[static_cast<size_t>(t)]->forward(x, false));
      });
    for (auto& th : threads) th.join();
  }
  for (int t = 0; t < kThreads; ++t)
    for (int i = 0; i < kForwards; ++i)
      for (int64_t j = 0; j < expected[static_cast<size_t>(i)].size(); ++j)
        ASSERT_EQ(got[static_cast<size_t>(t)][static_cast<size_t>(i)][j],
                  expected[static_cast<size_t>(i)][j])
            << "thread " << t << " forward " << i << " elem " << j;
}

// ---------- InferenceServer ----------

TEST(InferenceServer, OutputsMatchDirectForwardAndStatsAddUp) {
  auto& f = fixture();
  analog::VariationModel vm{analog::VariationKind::kNone, 0.0f};
  ChipFarmOptions fo;
  fo.instances = 1;
  fo.max_live = 1;
  ChipFarm farm(f.model, vm, fo);

  InferenceServerOptions so;
  so.max_batch = 4;
  so.max_wait_us = 500;
  so.workers = 1;
  constexpr int kRequests = 10;
  std::vector<std::future<Tensor>> futs;
  {
    InferenceServer server(farm, so);
    for (int i = 0; i < kRequests; ++i)
      futs.push_back(server.submit(f.ds.test.image(i)));
    for (auto& fut : futs) fut.wait();
    const ServerStats st = server.stats();
    EXPECT_EQ(st.requests, static_cast<uint64_t>(kRequests));
    EXPECT_GE(st.batches, 1u);
    EXPECT_LE(st.batches, static_cast<uint64_t>(kRequests));
    EXPECT_GT(st.avg_batch(), 0.0);
    EXPECT_GE(st.avg_latency_us(), 0.0);
    server.shutdown();
    EXPECT_THROW(server.submit(f.ds.test.image(0)), std::logic_error);
  }
  // sigma = 0 farm chip == clean model; single-sample forwards are the
  // ground truth (row results are batch-composition independent).
  for (int i = 0; i < kRequests; ++i) {
    Tensor img = f.ds.test.image(i);
    Shape batched_shape = img.shape();
    batched_shape.insert(batched_shape.begin(), 1);
    Tensor ref = f.model.forward(img.reshaped(batched_shape), false);
    Tensor got = futs[static_cast<size_t>(i)].get();
    ASSERT_EQ(got.size(), ref.size());
    for (int64_t j = 0; j < ref.size(); ++j)
      EXPECT_FLOAT_EQ(got[j], ref[j]) << "request " << i << " logit " << j;
  }
}

TEST(InferenceServer, CoalescesConcurrentClientsIntoBatches) {
  auto& f = fixture();
  analog::VariationModel vm{analog::VariationKind::kNone, 0.0f};
  ChipFarmOptions fo;
  fo.instances = 2;
  fo.max_live = 2;
  ChipFarm farm(f.model, vm, fo);
  InferenceServerOptions so;
  so.max_batch = 8;
  so.max_wait_us = 20000;  // generous window so requests pile up
  so.workers = 2;
  InferenceServer server(farm, so);

  constexpr int kClients = 4, kPerClient = 8;
  std::vector<std::thread> clients;
  std::mutex futs_mu;
  std::vector<std::future<Tensor>> futs;
  for (int c = 0; c < kClients; ++c)
    clients.emplace_back([&, c] {
      for (int i = 0; i < kPerClient; ++i) {
        auto fut = server.submit(f.ds.test.image((c * kPerClient + i) % f.ds.test.size()));
        std::lock_guard<std::mutex> lk(futs_mu);
        futs.push_back(std::move(fut));
      }
    });
  for (auto& c : clients) c.join();
  for (auto& fut : futs) fut.get();
  const ServerStats st = server.stats();
  EXPECT_EQ(st.requests, static_cast<uint64_t>(kClients * kPerClient));
  // Micro-batching must actually coalesce: strictly fewer batches than
  // requests (with a 20ms window, most land in full batches).
  EXPECT_LT(st.batches, st.requests);
  EXPECT_GT(st.avg_batch(), 1.0);
  EXPECT_GT(st.throughput_rps(), 0.0);
}

// ---------- admission control ----------

TEST(Admission, BoundedQueueRejectsTypedOverloadedAndRecovers) {
  auto& f = fixture();
  analog::VariationModel vm{analog::VariationKind::kNone, 0.0f};
  ChipFarmOptions fo;
  fo.instances = 1;
  fo.max_live = 1;
  ChipFarm farm(f.model, vm, fo);
  InferenceServerOptions so;
  // The worker pulls only on a full batch (32, never reached) or a 300ms-old
  // request, so 12 rapid submits hit a deterministically stalled queue.
  so.max_batch = 32;
  so.max_wait_us = 300000;
  so.workers = 1;
  so.queue_limit = 8;
  so.model = "tiny";
  InferenceServer server(farm, so);
  EXPECT_TRUE(server.accepting());

  std::vector<std::future<Tensor>> futs;
  for (int i = 0; i < 12; ++i) futs.push_back(server.submit(f.ds.test.image(i)));

  // Submits 9..12 found the queue at its limit: rejected fast, future
  // already resolved with the typed error carrying the admission snapshot.
  int rejected = 0;
  for (size_t i = 8; i < futs.size(); ++i) {
    ASSERT_EQ(futs[i].wait_for(std::chrono::seconds(0)),
              std::future_status::ready)
        << "rejection must resolve the future immediately";
    try {
      futs[i].get();
    } catch (const Overloaded& e) {
      ++rejected;
      EXPECT_EQ(e.model(), "tiny");
      EXPECT_EQ(e.queue_depth(), 8);
    }
  }
  EXPECT_EQ(rejected, 4);
  EXPECT_FALSE(server.accepting());
  {
    const ServerStats st = server.stats();
    EXPECT_TRUE(st.admission_configured);
    EXPECT_FALSE(st.accepting);
    EXPECT_EQ(st.rejected, 4u);
    EXPECT_EQ(st.max_queue_depth, 8);
    EXPECT_EQ(st.model, "tiny");
  }

  // Recovery: once the flush deadline fires the worker drains the queue and
  // flips admission back on; subsequent submits are admitted again.
  for (size_t i = 0; i < 8; ++i) futs[i].get();
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (!server.accepting() && std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_TRUE(server.accepting());
  auto again = server.submit(f.ds.test.image(0));
  again.get();  // admitted and served
  EXPECT_EQ(server.stats().requests, 9u);
}

TEST(Admission, BurnGateRequiresSloObjective) {
  auto& f = fixture();
  analog::VariationModel vm{analog::VariationKind::kNone, 0.0f};
  ChipFarmOptions fo;
  fo.instances = 1;
  fo.max_live = 1;
  ChipFarm farm(f.model, vm, fo);
  InferenceServerOptions so;
  so.workers = 1;
  so.admission_burn_max = 0.5;  // a control input with nothing to read
  EXPECT_THROW(InferenceServer(farm, so), std::invalid_argument);
  so.slo_p99_ms = 50;  // objective present: the gate is well-formed
  InferenceServer ok(farm, so);
  EXPECT_TRUE(ok.stats().admission_configured);
}

TEST(Admission, RejectedOrInvalidSubmitsDoNotStartTheWallClock) {
  auto& f = fixture();
  analog::VariationModel vm{analog::VariationKind::kNone, 0.0f};
  ChipFarmOptions fo;
  fo.instances = 1;
  fo.max_live = 1;
  ChipFarm farm(f.model, vm, fo);
  InferenceServerOptions so;
  so.workers = 1;
  InferenceServer server(farm, so);
  server.shutdown();
  EXPECT_THROW(server.submit(f.ds.test.image(0)), std::logic_error);
  // Regression: the throughput clock used to be stamped before the stop /
  // shape checks, so a rejected submit skewed wall_seconds (and thus the
  // reported req/s) for the whole server lifetime.
  const ServerStats st = server.stats();
  EXPECT_EQ(st.requests, 0u);
  EXPECT_EQ(st.wall_seconds, 0.0);
}

// ---------- fault drills ----------

TEST(ChipFarmDrill, DrilledChipEqualsFreshFarmWithCombinedFaults) {
  auto& f = fixture();
  const analog::RramDeviceParams dev = quiet_dev();
  ChipFarmOptions fo;
  fo.instances = 2;
  fo.max_live = 2;
  fo.seed = 7;
  ChipFarm farm(f.model, dev, fo);
  Tensor x = f.ds.test.image(0);
  Shape bs = x.shape();
  bs.insert(bs.begin(), 1);
  x = x.reshaped(bs);
  const Tensor clean0 = farm.chip(0).forward(x, false);
  const Tensor clean1 = farm.chip(1).forward(x, false);

  // Drill chip 0; chip 1 must be untouched, and the drilled chip must be
  // bit-identical to a fresh farm built with the drill faults as its base
  // fault list (seed purity: a drill is indistinguishable from having
  // deployed the faulty chip from the start).
  const faultsim::FaultSpec spec = faultsim::stuck_at(0.05);
  farm.drill({0}, {spec.models.begin(), spec.models.end()});
  EXPECT_TRUE(farm.drilled(0));
  EXPECT_FALSE(farm.drilled(1));
  farm.invalidate(0);
  const Tensor drilled0 = farm.chip(0).forward(x, false);
  ChipFarm ref(f.model, dev, fo, {spec.models.front().get()});
  const Tensor ref0 = ref.chip(0).forward(x, false);
  ASSERT_EQ(drilled0.size(), ref0.size());
  for (int64_t j = 0; j < ref0.size(); ++j)
    ASSERT_EQ(drilled0[j], ref0[j]) << "logit " << j;
  for (int64_t j = 0; j < clean1.size(); ++j)
    ASSERT_EQ(farm.chip(1).forward(x, false)[j], clean1[j]) << "logit " << j;

  // clear_drill + invalidate restores the original chip exactly.
  farm.clear_drill();
  farm.invalidate(0);
  const Tensor restored0 = farm.chip(0).forward(x, false);
  for (int64_t j = 0; j < clean0.size(); ++j)
    ASSERT_EQ(restored0[j], clean0[j]) << "logit " << j;

  EXPECT_THROW(farm.drill({}, {spec.models.begin(), spec.models.end()}),
               std::invalid_argument);
  EXPECT_THROW(farm.drill({5}, {spec.models.begin(), spec.models.end()}),
               std::out_of_range);
  EXPECT_THROW(farm.drill({0}, {}), std::invalid_argument);

  // Factor-mode farms have no device substrate to inject into.
  analog::VariationModel vm{analog::VariationKind::kLognormal, 0.2f};
  ChipFarm factor_farm(f.model, vm, fo);
  EXPECT_THROW(factor_farm.drill({0}, {spec.models.begin(), spec.models.end()}),
               std::invalid_argument);
}

TEST(ServerDrill, MidTrafficDrillsNeverFailFuturesAndEvictionIsBounded) {
  auto& f = fixture();
  ChipFarmOptions fo;
  fo.instances = 2;
  fo.max_live = 2;
  fo.seed = 7;
  ChipFarm farm(f.model, quiet_dev(), fo);
  InferenceServerOptions so;
  so.max_batch = 8;
  so.max_wait_us = 500;
  so.workers = 2;
  InferenceServer server(farm, so);

  auto submit_phase = [&](int n, std::vector<std::future<Tensor>>& futs) {
    for (int i = 0; i < n; ++i)
      futs.push_back(server.submit(f.ds.test.image(i % f.ds.test.size())));
  };
  std::vector<std::future<Tensor>> futs;
  submit_phase(32, futs);

  const faultsim::FaultSpec spec = faultsim::stuck_at(0.02);
  DrillSpec evict_all;
  evict_all.action = DrillSpec::Action::kEvict;
  evict_all.workers = {0, 1};
  EXPECT_THROW(server.drill(evict_all), std::invalid_argument)
      << "a drill may never take the last active worker";
  DrillSpec no_faults;
  no_faults.action = DrillSpec::Action::kDegrade;
  no_faults.workers = {0};
  EXPECT_THROW(server.drill(no_faults), std::invalid_argument);

  DrillSpec evict0;
  evict0.action = DrillSpec::Action::kEvict;
  evict0.workers = {0};
  server.drill(evict0);  // phase-1 requests still in flight
  submit_phase(32, futs);
  for (auto& fut : futs) fut.get();  // zero failed futures, by contract
  {
    const ServerStats st = server.stats();
    EXPECT_EQ(st.requests, 64u);
    EXPECT_EQ(st.active_workers, 1);
    EXPECT_EQ(st.drills, 1u);
  }

  server.undrill();
  DrillSpec remap1;
  remap1.action = DrillSpec::Action::kRemap;
  remap1.workers = {1};
  remap1.faults = spec.models;
  server.drill(remap1);
  futs.clear();
  submit_phase(32, futs);
  for (auto& fut : futs) fut.get();
  const ServerStats st = server.stats();
  EXPECT_EQ(st.requests, 96u);
  EXPECT_EQ(st.active_workers, 2);
  EXPECT_EQ(st.drilled_workers, 1);
  EXPECT_EQ(st.drills, 2u);
  server.undrill();
}

// ---------- model router ----------

TEST(ModelRouter, RoutesPerModelWithIsolatedStats) {
  auto& f = fixture();
  analog::VariationModel none{analog::VariationKind::kNone, 0.0f};
  ModelRouter router;
  ChipFarmOptions fo;
  fo.instances = 1;
  fo.max_live = 1;
  InferenceServerOptions so;
  so.max_batch = 4;
  so.max_wait_us = 500;
  so.workers = 1;
  router.add_model("alpha", f.model, none, fo, so);
  router.add_model("beta", f.model, none, fo, so);
  EXPECT_THROW(router.add_model("alpha", f.model, none, fo, so),
               std::invalid_argument);
  EXPECT_THROW(router.submit("gamma", f.ds.test.image(0)), std::out_of_range);
  EXPECT_EQ(router.server("alpha").model(), "alpha");

  // sigma = 0 lanes serve the clean model: routed outputs must match the
  // direct forward, per model.
  Tensor img = f.ds.test.image(3);
  Shape bs = img.shape();
  bs.insert(bs.begin(), 1);
  const Tensor ref = f.model.forward(img.reshaped(bs), false);
  for (const char* id : {"alpha", "beta"}) {
    Tensor got = router.submit(id, f.ds.test.image(3)).get();
    ASSERT_EQ(got.size(), ref.size());
    for (int64_t j = 0; j < ref.size(); ++j)
      EXPECT_FLOAT_EQ(got[j], ref[j]) << id << " logit " << j;
  }
  router.submit("beta", f.ds.test.image(4)).get();

  const auto ids = router.model_ids();
  ASSERT_EQ(ids.size(), 2u);
  EXPECT_EQ(ids[0], "alpha");
  EXPECT_EQ(ids[1], "beta");
  auto stats = router.stats();
  EXPECT_EQ(stats.at("alpha").requests, 1u);
  EXPECT_EQ(stats.at("beta").requests, 2u);
  EXPECT_EQ(stats.at("alpha").model, "alpha");
  router.shutdown();
  router.shutdown();  // idempotent
}

TEST(ModelRouter, SharedLiveSlotBudgetClampsThenExhausts) {
  auto& f = fixture();
  analog::VariationModel none{analog::VariationKind::kNone, 0.0f};
  ModelRouterOptions ro;
  ro.max_live_total = 1;
  ModelRouter router(ro);
  ChipFarmOptions fo;
  fo.instances = 2;
  fo.max_live = 2;  // asks for 2, budget clamps to the remaining 1
  InferenceServerOptions so;
  so.workers = 2;  // clamped alongside the farm slots
  router.add_model("alpha", f.model, none, fo, so);
  EXPECT_EQ(router.live_slots_used(), 1);
  EXPECT_THROW(router.add_model("beta", f.model, none, fo, so),
               std::invalid_argument);
  // The failed add must not leak a half-registered lane or budget charge.
  EXPECT_EQ(router.live_slots_used(), 1);
  ASSERT_EQ(router.model_ids().size(), 1u);
  router.submit("alpha", f.ds.test.image(0)).get();
  EXPECT_EQ(router.stats().at("alpha").requests, 1u);
}

}  // namespace
}  // namespace cn::runtime
