// The layer-graph IR and fusion pass pipeline (nn/graph.h, nn/fusion.h):
// per-pass unit oracles (bn-fold math, relu-epilogue exactness, pool-fusion
// vs the standalone layers, dropout elision), the process-wide knob
// contract, train-mode lowering refusal, the randomized graph-parity sweep
// (fused vs unfused — bitwise without batchnorm, the pinned kBnFold*
// contract with it — on the digital path and on crossbar chips across every
// registered execution target), and campaign-report byte-identity with
// fusion forced on vs off.
#include "nn/fusion.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <stdexcept>
#include <string>

#include <gtest/gtest.h>

#include "analog/crossbar_layers.h"
#include "data/synthetic.h"
#include "exec/target.h"
#include "exec_testutil.h"
#include "faultsim/campaign.h"
#include "graph_testutil.h"
#include "models/lenet.h"
#include "nn/graph.h"
#include "obs/metrics.h"

namespace cn {
namespace {

// Every test pins the knob explicitly and restores the ambient default on
// exit, so the suite behaves identically under the CORRECTNET_FUSION=off CI
// leg and never leaks an override into later tests.
struct FusionGuard {
  FusionGuard() = default;
  ~FusionGuard() { nn::reset_fusion_enabled(); }
};

Tensor forward_with_fusion(nn::Sequential& m, const Tensor& x, bool fused) {
  nn::set_fusion_enabled(fused);
  return m.forward(x, /*train=*/false);
}

const nn::GraphNode* find_node(const nn::LayerGraph& g,
                               const std::string& label) {
  for (const nn::GraphNode& n : g.nodes)
    if (n.layer && n.layer->label() == label) return &n;
  return nullptr;
}

// What fusion_enabled() must resolve to with no override live: the
// validated CORRECTNET_FUSION (how the CI fusion-off leg forces the knob
// under this very binary), else on.
bool ambient_fusion() {
  const char* e = std::getenv("CORRECTNET_FUSION");
  if (!e || !*e) return true;
  const std::string v(e);
  return !(v == "off" || v == "0" || v == "false");
}

// ---------- knob ----------

TEST(FusionKnob, OverrideWinsAndResetRestoresAmbientDefault) {
  nn::reset_fusion_enabled();
  EXPECT_EQ(nn::fusion_enabled(), ambient_fusion());
  nn::set_fusion_enabled(false);
  EXPECT_FALSE(nn::fusion_enabled());
  nn::set_fusion_enabled(true);
  EXPECT_TRUE(nn::fusion_enabled());
  nn::reset_fusion_enabled();
  EXPECT_EQ(nn::fusion_enabled(), ambient_fusion());
}

// ---------- train-mode lowering ----------

TEST(LayerGraphBuild, TrainModeLoweringThrowsNamingSensitiveLayers) {
  nn::Sequential m("train");
  m.emplace<nn::Conv2D>(1, 2, 3, 1, 1, 6, 6, "conv");
  m.emplace<nn::BatchNorm2D>(2, 0.9f, 1e-5f, "bn0");
  m.emplace<nn::Dropout>(0.5f, 7, "d0");
  try {
    nn::LayerGraph::build(m, /*train=*/true);
    FAIL() << "train-mode lowering must throw";
  } catch (const std::logic_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("bn0"), std::string::npos) << msg;
    EXPECT_NE(msg.find("d0"), std::string::npos) << msg;
  }
  // Training graphs have no lowering even without sensitive layers.
  nn::Sequential plain("plain");
  plain.emplace<nn::Dense>(4, 2, "fc");
  EXPECT_THROW(nn::LayerGraph::build(plain, /*train=*/true), std::logic_error);
  // Eval-mode lowering of the same chains succeeds.
  EXPECT_EQ(nn::LayerGraph::build(m).nodes.size(), 3u);
  EXPECT_EQ(nn::LayerGraph::build(plain).nodes.size(), 1u);
}

TEST(LayerGraphBuild, LayersReportTrainModeSensitivity) {
  nn::BatchNorm2D bn(2);
  nn::Dropout dr(0.5f, 1);
  nn::Conv2D conv(1, 1, 3, 1, 1, 6, 6);
  nn::ReLU relu;
  EXPECT_TRUE(bn.train_mode_sensitive());
  EXPECT_TRUE(dr.train_mode_sensitive());
  EXPECT_FALSE(conv.train_mode_sensitive());
  EXPECT_FALSE(relu.train_mode_sensitive());
}

TEST(LayerGraphBuild, TrainForwardBypassesFusionEntirely) {
  // With fusion forced on, a train-mode forward must still run the plain
  // layer loop (live dropout, batch statistics) and never try to lower.
  FusionGuard guard;
  nn::set_fusion_enabled(true);
  Rng rng(41);
  nn::Sequential m("train-fwd");
  auto& conv = m.emplace<nn::Conv2D>(1, 2, 3, 1, 1, 6, 6, "conv");
  rng.fill_normal(conv.weight().value, 0.0f, 0.4f);
  m.emplace<nn::BatchNorm2D>(2, 0.9f, 1e-5f, "bn");
  m.emplace<nn::Dropout>(0.5f, 7, "d");
  Tensor x({2, 1, 6, 6});
  rng.fill_normal(x, 0.0f, 1.0f);
  const Tensor y = m.forward(x, /*train=*/true);
  EXPECT_EQ(y.size(), 2 * 2 * 6 * 6);
}

// ---------- per-pass oracles ----------

TEST(FusionPasses, BnFoldMatchesManualFoldAndPinnedTolerance) {
  FusionGuard guard;
  Rng rng(11);
  nn::Sequential m("bnfold");
  auto& conv = m.emplace<nn::Conv2D>(2, 3, 3, 1, 1, 8, 8, "conv");
  rng.fill_normal(conv.weight().value, 0.0f, 0.4f);
  rng.fill_normal(conv.bias().value, 0.0f, 0.2f);
  auto& bn = m.emplace<nn::BatchNorm2D>(3, 0.9f, 1e-5f, "bn");
  rng.fill_normal(bn.gamma().value, 1.0f, 0.2f);
  rng.fill_normal(bn.beta().value, 0.0f, 0.2f);
  // Warm the running statistics away from their (mean 0, var 1) init so the
  // fold is not trivially a no-op.
  Tensor warm({4, 2, 8, 8});
  for (int i = 0; i < 3; ++i) {
    rng.fill_normal(warm, 0.0f, 1.0f);
    (void)m.forward(warm, /*train=*/true);
  }

  Tensor x({2, 2, 8, 8});
  rng.fill_normal(x, 0.0f, 1.0f);
  const Tensor unfused = forward_with_fusion(m, x, false);
  const Tensor fused = forward_with_fusion(m, x, true);

  // The plan folded exactly once: bn skipped, conv annotated with it.
  nn::FusedPlan plan(m);
  EXPECT_EQ(plan.stats().bn_folded, 1);
  const nn::GraphNode* bn_node = find_node(plan.graph(), "bn");
  const nn::GraphNode* conv_node = find_node(plan.graph(), "conv");
  ASSERT_NE(bn_node, nullptr);
  ASSERT_NE(conv_node, nullptr);
  EXPECT_TRUE(bn_node->skip);
  EXPECT_EQ(conv_node->folded_bn, &bn);

  // Math oracle: a conv carrying the manually folded parameters
  // (w' = w·γ/√(σ²+ε), b' = (b−μ)·γ/√(σ²+ε)+β, float arithmetic in the same
  // order as the pass), executed unfused, must reproduce the fused output
  // bit for bit — same folded tensors, same kernel.
  nn::Sequential folded("folded");
  auto& fc = folded.emplace<nn::Conv2D>(2, 3, 3, 1, 1, 8, 8, "convf");
  const Tensor& w = conv.weight().value;
  const int64_t k2 = w.dim(1);
  for (int64_t c = 0; c < 3; ++c) {
    const float inv_std = 1.0f / std::sqrt(bn.running_var()[c] + bn.eps());
    const float s = bn.gamma().value[c] * inv_std;
    for (int64_t k = 0; k < k2; ++k)
      fc.weight().value[c * k2 + k] = w[c * k2 + k] * s;
    fc.bias().value[c] =
        (conv.bias().value[c] - bn.running_mean()[c]) * s + bn.beta().value[c];
  }
  const Tensor oracle = forward_with_fusion(folded, x, false);
  testutil::expect_bitwise_equal(fused, oracle, "fused vs manual fold oracle");

  // Against the unfused two-layer model the pass is approximate, pinned by
  // the bn-fold tolerance contract.
  testutil::expect_within_ulps(fused, unfused, nn::kBnFoldMaxUlps,
                               nn::kBnFoldRangeTol * max_abs(unfused),
                               "bn-fold pinned tolerance");
}

TEST(FusionPasses, ReluEpilogueIsBitwiseExact) {
  FusionGuard guard;
  Rng rng(21);
  nn::Sequential m("relu");
  auto& conv = m.emplace<nn::Conv2D>(1, 4, 3, 1, 0, 10, 10, "conv");
  rng.fill_normal(conv.weight().value, 0.0f, 0.4f);
  rng.fill_normal(conv.bias().value, 0.0f, 0.2f);
  m.emplace<nn::ReLU>("r1");
  m.emplace<nn::Flatten>();
  auto& d = m.emplace<nn::Dense>(4 * 8 * 8, 6, "fc");
  rng.fill_normal(d.weight().value, 0.0f, 0.3f);
  rng.fill_normal(d.bias().value, 0.0f, 0.1f);
  m.emplace<nn::ReLU>("r2");
  Tensor x({3, 1, 10, 10});
  rng.fill_normal(x, 0.0f, 1.0f);

  const Tensor unfused = forward_with_fusion(m, x, false);
  const Tensor fused = forward_with_fusion(m, x, true);
  testutil::expect_bitwise_equal(fused, unfused, "relu epilogue (conv+dense)");

  nn::FusedPlan plan(m);
  EXPECT_EQ(plan.stats().relu_fused, 2);
  EXPECT_TRUE(find_node(plan.graph(), "r1")->skip);
  EXPECT_TRUE(find_node(plan.graph(), "r2")->skip);
  EXPECT_TRUE(find_node(plan.graph(), "conv")->relu_epilogue);
  EXPECT_TRUE(find_node(plan.graph(), "fc")->relu_epilogue);
}

TEST(FusionPasses, PoolFusionIsBitwiseExact) {
  for (const bool use_max : {false, true}) {
    FusionGuard guard;
    Rng rng(use_max ? 31 : 32);
    nn::Sequential m(use_max ? "maxpool-conv" : "avgpool-conv");
    if (use_max)
      m.emplace<nn::MaxPool2D>(2, "pool");
    else
      m.emplace<nn::AvgPool2D>(2, "pool");
    auto& conv = m.emplace<nn::Conv2D>(1, 3, 3, 1, 1, 6, 6, "conv");
    rng.fill_normal(conv.weight().value, 0.0f, 0.4f);
    rng.fill_normal(conv.bias().value, 0.0f, 0.2f);
    Tensor x({2, 1, 12, 12});
    rng.fill_normal(x, 0.0f, 1.0f);

    const Tensor unfused = forward_with_fusion(m, x, false);
    const Tensor fused = forward_with_fusion(m, x, true);
    testutil::expect_bitwise_equal(
        fused, unfused, use_max ? "maxpool fusion" : "avgpool fusion");

    nn::FusedPlan plan(m);
    EXPECT_EQ(plan.stats().pools_fused, 1);
    const nn::GraphNode* conv_node = find_node(plan.graph(), "conv");
    ASSERT_NE(conv_node, nullptr);
    EXPECT_EQ(conv_node->pre_pool.window, 2);
    EXPECT_EQ(conv_node->pre_pool.kind, use_max ? nn::PrePool::Kind::kMax
                                                : nn::PrePool::Kind::kAvg);
    EXPECT_TRUE(find_node(plan.graph(), "pool")->skip);
  }
}

TEST(FusionPasses, PostPoolFusionIsBitwiseExact) {
  // A pool consuming a conv's output pools inside the conv kernel; the
  // conv→relu→pool chain collapses into one node because the pool's producer
  // resolves through the fused relu.
  for (const bool use_max : {false, true}) {
    FusionGuard guard;
    Rng rng(use_max ? 61 : 62);
    nn::Sequential m(use_max ? "conv-relu-maxpool" : "conv-relu-avgpool");
    auto& conv = m.emplace<nn::Conv2D>(1, 3, 3, 1, 1, 8, 8, "conv");
    rng.fill_normal(conv.weight().value, 0.0f, 0.4f);
    rng.fill_normal(conv.bias().value, 0.0f, 0.2f);
    m.emplace<nn::ReLU>("r");
    if (use_max)
      m.emplace<nn::MaxPool2D>(2, "pool");
    else
      m.emplace<nn::AvgPool2D>(2, "pool");
    Tensor x({2, 1, 8, 8});
    rng.fill_normal(x, 0.0f, 1.0f);

    const Tensor unfused = forward_with_fusion(m, x, false);
    const Tensor fused = forward_with_fusion(m, x, true);
    ASSERT_EQ(fused.dim(2), 4);  // pooled geometry survives the rewrite
    testutil::expect_bitwise_equal(
        fused, unfused, use_max ? "post-maxpool fusion" : "post-avgpool fusion");

    nn::FusedPlan plan(m);
    EXPECT_EQ(plan.stats().post_pools_fused, 1);
    EXPECT_EQ(plan.stats().pools_fused, 0);
    const nn::GraphNode* conv_node = find_node(plan.graph(), "conv");
    ASSERT_NE(conv_node, nullptr);
    EXPECT_TRUE(conv_node->relu_epilogue);
    EXPECT_EQ(conv_node->post_pool.window, 2);
    EXPECT_EQ(conv_node->post_pool.kind, use_max ? nn::PrePool::Kind::kMax
                                                 : nn::PrePool::Kind::kAvg);
    EXPECT_TRUE(find_node(plan.graph(), "pool")->skip);
  }
}

TEST(FusionPasses, PostPoolWinsOverPrePoolBetweenTwoConvs) {
  // conv1→pool→conv2: the pool must fuse into the UPSTREAM conv's epilogue
  // (eliding conv1's full-resolution output), not conv2's im2col producer —
  // and a relu AFTER the pool stays a standalone node (fusing it into conv1
  // would reorder relu before pooling).
  FusionGuard guard;
  Rng rng(63);
  nn::Sequential m("conv-pool-conv");
  auto& c1 = m.emplace<nn::Conv2D>(1, 2, 3, 1, 1, 8, 8, "c1");
  rng.fill_normal(c1.weight().value, 0.0f, 0.4f);
  rng.fill_normal(c1.bias().value, 0.0f, 0.2f);
  m.emplace<nn::AvgPool2D>(2, "pool");
  m.emplace<nn::ReLU>("r");
  auto& c2 = m.emplace<nn::Conv2D>(2, 3, 3, 1, 1, 4, 4, "c2");
  rng.fill_normal(c2.weight().value, 0.0f, 0.4f);
  rng.fill_normal(c2.bias().value, 0.0f, 0.2f);
  Tensor x({2, 1, 8, 8});
  rng.fill_normal(x, 0.0f, 1.0f);

  const Tensor unfused = forward_with_fusion(m, x, false);
  const Tensor fused = forward_with_fusion(m, x, true);
  testutil::expect_bitwise_equal(fused, unfused, "post-pool between convs");

  nn::FusedPlan plan(m);
  EXPECT_EQ(plan.stats().post_pools_fused, 1);
  EXPECT_EQ(plan.stats().pools_fused, 0);
  EXPECT_EQ(plan.stats().relu_fused, 0);  // relu's producer is the pool
  EXPECT_EQ(find_node(plan.graph(), "c1")->post_pool.window, 2);
  EXPECT_FALSE(find_node(plan.graph(), "c1")->relu_epilogue);
  EXPECT_EQ(find_node(plan.graph(), "c2")->pre_pool.window, 0);
  EXPECT_TRUE(find_node(plan.graph(), "pool")->skip);
  EXPECT_FALSE(find_node(plan.graph(), "r")->skip);
}

TEST(FusionPasses, DropoutElisionIsExactIdentity) {
  FusionGuard guard;
  Rng rng(51);
  nn::Sequential m("drop");
  m.emplace<nn::Dropout>(0.5f, 99, "d0");
  auto& d = m.emplace<nn::Dense>(8, 5, "fc");
  rng.fill_normal(d.weight().value, 0.0f, 0.3f);
  rng.fill_normal(d.bias().value, 0.0f, 0.1f);
  m.emplace<nn::Dropout>(0.3f, 100, "d1");
  Tensor x({4, 8});
  rng.fill_normal(x, 0.0f, 1.0f);

  const Tensor unfused = forward_with_fusion(m, x, false);
  const Tensor fused = forward_with_fusion(m, x, true);
  testutil::expect_bitwise_equal(fused, unfused, "dropout elision");

  nn::FusedPlan plan(m);
  EXPECT_EQ(plan.stats().dropout_elided, 2);
  EXPECT_TRUE(find_node(plan.graph(), "d0")->skip);
  EXPECT_TRUE(find_node(plan.graph(), "d1")->skip);
}

TEST(FusionObs, PassCountersAccumulate) {
  auto& reg = obs::metrics();
  const bool was_enabled = reg.enabled();
  reg.set_enabled(true);
  const uint64_t plans0 = reg.counter("fusion.plans").value();
  const uint64_t relu0 = reg.counter("fusion.relu_fused").value();
  Rng rng(77);
  nn::Sequential m("obs");
  auto& d = m.emplace<nn::Dense>(6, 4, "fc");
  rng.fill_normal(d.weight().value, 0.0f, 0.3f);
  m.emplace<nn::ReLU>("r");
  nn::FusedPlan plan(m);
  EXPECT_EQ(plan.stats().relu_fused, 1);
  EXPECT_EQ(reg.counter("fusion.plans").value(), plans0 + 1);
  EXPECT_EQ(reg.counter("fusion.relu_fused").value(), relu0 + 1);
  reg.set_enabled(was_enabled);
}

// ---------- randomized graph-parity sweep ----------

TEST(FusionParity, RandomizedDigitalGraphSweep) {
  FusionGuard guard;
  int bn_models = 0;
  int64_t rewrites = 0;
  for (uint64_t seed = 1; seed <= 12; ++seed) {
    for (const bool allow_bn : {false, true}) {
      testutil::RandomModelSpec spec;
      spec.seed = seed * 17 + (allow_bn ? 1 : 0);
      spec.allow_batchnorm = allow_bn;
      testutil::RandomModel rm = testutil::make_random_model(spec);
      const Tensor x = testutil::random_input(rm, seed * 31 + 5);
      const std::string what =
          "seed " + std::to_string(spec.seed) + (allow_bn ? " (+bn)" : "");

      const Tensor unfused = forward_with_fusion(rm.model, x, false);
      const Tensor fused = forward_with_fusion(rm.model, x, true);
      if (rm.has_batchnorm) {
        ++bn_models;
        testutil::expect_within_ulps(fused, unfused, nn::kBnFoldMaxUlps,
                                     nn::kBnFoldRangeTol * max_abs(unfused),
                                     what);
      } else {
        testutil::expect_bitwise_equal(fused, unfused, what);
      }
      // The cached plan re-executes deterministically.
      const Tensor again = forward_with_fusion(rm.model, x, true);
      testutil::expect_bitwise_equal(again, fused, what + " (plan reuse)");

      nn::FusedPlan plan(rm.model);
      rewrites += plan.stats().rewrites();
    }
  }
  EXPECT_GT(bn_models, 0);  // the sweep actually exercised bn-fold
  EXPECT_GT(rewrites, 0);   // and the passes rewrote something
}

TEST(FusionParity, CrossbarChipsAreBitwiseExactOnEveryTarget) {
  // Crossbar lowering keeps bn standalone (conductances are programmed, not
  // re-scalable), so fused vs unfused on a chip is bitwise for every target
  // — including the approximate int8 one, which is merely the same
  // approximation on both sides.
  FusionGuard guard;
  analog::RramDeviceParams dev;
  dev.g_min = 1e-6f;
  dev.g_max = 1e-4f;
  dev.program_sigma = 0.1f;
  int targets_run = 0;
  for (const uint64_t seed : {3u, 8u}) {
    testutil::RandomModelSpec spec;
    spec.seed = seed;
    spec.allow_batchnorm = (seed == 8);
    testutil::RandomModel rm = testutil::make_random_model(spec);
    const Tensor x = testutil::random_input(rm, seed + 101, 2);
    for (const exec::Target* t : exec::registered_targets()) {
      if (!t->available()) continue;
      ++targets_run;
      Rng prog(seed + 7);
      nn::Sequential chip = analog::program_to_crossbars(
          rm.model, dev, prog, /*tile=*/32, nullptr, 0, nullptr, t);
      const Tensor unfused = forward_with_fusion(chip, x, false);
      const Tensor fused = forward_with_fusion(chip, x, true);
      testutil::expect_bitwise_equal(fused, unfused,
                                     "target " + t->name() + " seed " +
                                         std::to_string(seed));
      nn::FusedPlan plan(chip);
      EXPECT_EQ(plan.stats().bn_folded, 0) << t->name();
      EXPECT_EQ(plan.stats().pools_fused, 0) << t->name();
      EXPECT_EQ(plan.stats().post_pools_fused, 0) << t->name();
    }
  }
  // simd, simd-generic, huge-tile and int8 are always executable.
  EXPECT_GE(targets_run, 8);

  // Pinned SIMD dispatch (the simd target's generic lane) preserves parity.
  testutil::RandomModelSpec spec;
  spec.seed = 13;
  spec.allow_batchnorm = false;
  testutil::RandomModel rm = testutil::make_random_model(spec);
  const Tensor x = testutil::random_input(rm, 131, 2);
  Rng prog(19);
  nn::Sequential chip = analog::program_to_crossbars(
      rm.model, dev, prog, /*tile=*/32, nullptr, 0, nullptr,
      exec::find_target("simd"));
  ASSERT_TRUE(analog::force_simd_level(analog::SimdLevel::kGeneric));
  const Tensor unfused = forward_with_fusion(chip, x, false);
  const Tensor fused = forward_with_fusion(chip, x, true);
  analog::reset_simd_level();
  testutil::expect_bitwise_equal(fused, unfused, "pinned generic simd");
}

// ---------- campaign byte-identity ----------

TEST(FusionCampaign, ReportsAreByteIdenticalOnVsOff) {
  FusionGuard guard;
  data::DigitsSpec spec;
  spec.train_count = 10;
  spec.test_count = 40;
  data::SplitDataset ds = data::make_digits(spec);
  Rng rng(5);
  nn::Sequential model = models::lenet5(1, 28, 10, rng);

  auto run = [&](int fusion) {
    faultsim::CampaignOptions co;
    co.chips = 2;
    co.seed = 9;
    co.batch_size = 32;
    co.tile = 64;
    co.fusion = fusion;
    faultsim::Campaign c(co);
    c.add_model("baseline", model, false);
    c.add_stuck_at_grid({0.02});
    faultsim::CampaignReport r = c.run(ds.test);
    r.wall_s = 0.0;  // the one field that legitimately differs between runs
    return r.to_json();
  };
  const std::string on = run(1);
  const std::string off = run(0);
  EXPECT_EQ(on, off);
}

}  // namespace
}  // namespace cn
