#include "nn/batchnorm.h"

#include <gtest/gtest.h>

#include <cmath>

#include "tensor/ops.h"
#include "tensor/rng.h"

namespace cn::nn {
namespace {

TEST(BatchNorm, NormalizesBatchStatistics) {
  Rng rng(1);
  BatchNorm2D bn(3);
  Tensor x({4, 3, 5, 5});
  rng.fill_normal(x, 2.0f, 3.0f);
  Tensor y = bn.forward(x, true);
  // Per channel: mean ~0, var ~1 (gamma=1, beta=0 initially).
  const int64_t per_c = 4 * 5 * 5;
  for (int64_t c = 0; c < 3; ++c) {
    double m = 0.0, v = 0.0;
    for (int64_t n = 0; n < 4; ++n) {
      const float* chan = y.data() + (n * 3 + c) * 25;
      for (int64_t i = 0; i < 25; ++i) m += chan[i];
    }
    m /= per_c;
    for (int64_t n = 0; n < 4; ++n) {
      const float* chan = y.data() + (n * 3 + c) * 25;
      for (int64_t i = 0; i < 25; ++i) v += (chan[i] - m) * (chan[i] - m);
    }
    v /= per_c;
    EXPECT_NEAR(m, 0.0, 1e-4);
    EXPECT_NEAR(v, 1.0, 1e-2);
  }
}

TEST(BatchNorm, InferenceUsesRunningStats) {
  Rng rng(2);
  BatchNorm2D bn(2, /*momentum=*/0.0f);  // running stats = last batch
  Tensor x({8, 2, 4, 4});
  rng.fill_normal(x, 1.0f, 2.0f);
  Tensor y_train = bn.forward(x, true);
  Tensor y_eval = bn.forward(x, false);
  // With momentum 0 the running stats equal the batch stats (up to the
  // biased/unbiased distinction we don't make), so outputs nearly agree.
  for (int64_t i = 0; i < y_train.size(); i += 7)
    EXPECT_NEAR(y_eval[i], y_train[i], 0.05f);
}

TEST(BatchNorm, GammaBetaAffine) {
  BatchNorm2D bn(1);
  bn.gamma().value[0] = 2.0f;
  bn.beta().value[0] = -1.0f;
  Rng rng(3);
  Tensor x({4, 1, 3, 3});
  rng.fill_normal(x, 0.0f, 1.0f);
  Tensor y = bn.forward(x, true);
  // y = 2*x_hat - 1: mean ~ -1.
  EXPECT_NEAR(mean(y), -1.0f, 1e-4f);
}

TEST(BatchNorm, GradCheck) {
  Rng rng(4);
  BatchNorm2D bn(2);
  rng.fill_normal(bn.gamma().value, 1.0f, 0.1f);
  rng.fill_normal(bn.beta().value, 0.0f, 0.1f);
  Tensor x({3, 2, 4, 4});
  rng.fill_normal(x, 0.0f, 1.0f);

  auto loss_of = [&](const Tensor& in) {
    BatchNorm2D probe(2);
    probe.gamma().value = bn.gamma().value;
    probe.beta().value = bn.beta().value;
    Tensor y = probe.forward(in, true);
    return 0.5f * sum_sq(y);
  };

  for (Param* p : bn.params()) p->zero_grad();
  Tensor y = bn.forward(x, true);
  Tensor gx = bn.backward(y);  // dL/dy = y for L = 0.5*||y||^2

  const float eps = 1e-2f;
  for (int64_t i = 0; i < x.size(); i += 11) {
    const float orig = x[i];
    x[i] = orig + eps;
    const float lp = loss_of(x);
    x[i] = orig - eps;
    const float lm = loss_of(x);
    x[i] = orig;
    EXPECT_NEAR(gx[i], (lp - lm) / (2 * eps), 3e-2f) << "input index " << i;
  }
}

TEST(BatchNorm, HasNoAnalogSites) {
  BatchNorm2D bn(4);
  std::vector<PerturbableWeight*> sites;
  bn.collect_analog(sites);
  EXPECT_TRUE(sites.empty());  // digital periphery: never perturbed
}

TEST(BatchNorm, CloneCarriesRunningStats) {
  Rng rng(5);
  BatchNorm2D bn(2);
  Tensor x({4, 2, 3, 3});
  rng.fill_normal(x, 3.0f, 1.0f);
  bn.forward(x, true);
  auto c = bn.clone();
  auto* bc = static_cast<BatchNorm2D*>(c.get());
  for (int64_t i = 0; i < 2; ++i) {
    EXPECT_FLOAT_EQ(bc->running_mean()[i], bn.running_mean()[i]);
    EXPECT_FLOAT_EQ(bc->running_var()[i], bn.running_var()[i]);
  }
}

TEST(BatchNorm, RejectsWrongChannelCount) {
  BatchNorm2D bn(3);
  EXPECT_THROW(bn.forward(Tensor({1, 4, 2, 2}), true), std::invalid_argument);
}

}  // namespace
}  // namespace cn::nn
