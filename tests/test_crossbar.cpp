#include "analog/crossbar.h"

#include <gtest/gtest.h>

#include <cmath>

#include "tensor/ops.h"

namespace cn::analog {
namespace {

RramDeviceParams ideal_device() {
  RramDeviceParams dev;
  dev.g_min = 1e-6f;
  dev.g_max = 1e-4f;
  return dev;  // no variation, no quantization, no noise
}

TEST(CrossbarTile, IdealTileReproducesWeights) {
  Rng rng(1);
  Tensor w({6, 5});
  rng.fill_normal(w, 0.0f, 0.5f);
  CrossbarTile tile(w, max_abs(w), ideal_device(), rng);
  Tensor w_eff = tile.effective_weights();
  for (int64_t i = 0; i < w.size(); ++i) EXPECT_NEAR(w_eff[i], w[i], 1e-6f);
}

TEST(CrossbarArray, IdealMatvecEqualsIdealMath) {
  Rng rng(2);
  Tensor w({9, 17});  // (out, in)
  rng.fill_normal(w, 0.0f, 0.5f);
  CrossbarArray xbar(w, ideal_device(), rng, /*tile=*/8);
  EXPECT_GT(xbar.num_tiles(), 1);
  Tensor x({17});
  rng.fill_normal(x, 0.0f, 1.0f);
  Tensor y = xbar.matvec(x);
  Tensor ref = matvec(w, x);
  for (int64_t i = 0; i < y.size(); ++i) EXPECT_NEAR(y[i], ref[i], 1e-4f);
}

TEST(CrossbarArray, EffectiveWeightsRoundTrip) {
  Rng rng(3);
  Tensor w({5, 7});
  rng.fill_normal(w, 0.0f, 1.0f);
  CrossbarArray xbar(w, ideal_device(), rng, 4);
  Tensor w_eff = xbar.effective_weights();
  ASSERT_EQ(w_eff.shape(), w.shape());
  for (int64_t i = 0; i < w.size(); ++i) EXPECT_NEAR(w_eff[i], w[i], 1e-5f);
}

TEST(CrossbarArray, ProgramSigmaPerturbsWeights) {
  Rng rng(4);
  Tensor w({8, 8});
  rng.fill_normal(w, 0.0f, 0.5f);
  RramDeviceParams dev = ideal_device();
  dev.program_sigma = 0.3f;
  CrossbarArray xbar(w, dev, rng, 8);
  Tensor w_eff = xbar.effective_weights();
  float total_dev = 0.0f;
  for (int64_t i = 0; i < w.size(); ++i) total_dev += std::fabs(w_eff[i] - w[i]);
  EXPECT_GT(total_dev, 0.01f);
}

TEST(CrossbarArray, ConductanceQuantizationLimitsLevels) {
  Rng rng(5);
  Tensor w({1, 16});
  rng.fill_normal(w, 0.0f, 1.0f);
  RramDeviceParams dev = ideal_device();
  dev.conductance_levels = 4;
  CrossbarArray xbar(w, dev, rng, 16);
  Tensor w_eff = xbar.effective_weights();
  // Each differential weight is a difference of 4-level conductances: the
  // distinct values are limited (<= 7 distinct differences).
  std::vector<float> vals;
  for (int64_t i = 0; i < w_eff.size(); ++i) {
    bool found = false;
    for (float v : vals)
      if (std::fabs(v - w_eff[i]) < 1e-7f) found = true;
    if (!found) vals.push_back(w_eff[i]);
  }
  EXPECT_LE(vals.size(), 7u);
}

TEST(CrossbarArray, ReadNoiseOnlyWithRng) {
  Rng rng(6);
  Tensor w({4, 4});
  rng.fill_normal(w, 0.0f, 0.5f);
  RramDeviceParams dev = ideal_device();
  dev.readout.read_sigma = 0.05f;
  CrossbarArray xbar(w, dev, rng, 4);
  Tensor x({4}, 1.0f);
  // Without read rng: deterministic.
  Tensor y1 = xbar.matvec(x);
  Tensor y2 = xbar.matvec(x);
  for (int64_t i = 0; i < y1.size(); ++i) EXPECT_FLOAT_EQ(y1[i], y2[i]);
  // With read rng: noisy.
  Rng read_rng(7);
  Tensor y3 = xbar.matvec(x, &read_rng);
  float diff = 0.0f;
  for (int64_t i = 0; i < y1.size(); ++i) diff += std::fabs(y3[i] - y1[i]);
  EXPECT_GT(diff, 1e-7f);
}

TEST(CrossbarArray, RejectsBadInputs) {
  Rng rng(8);
  EXPECT_THROW(CrossbarArray(Tensor({4}), ideal_device(), rng), std::invalid_argument);
  Tensor w({2, 2});
  EXPECT_THROW(CrossbarArray(w, ideal_device(), rng, 0), std::invalid_argument);
  CrossbarArray xbar(w, ideal_device(), rng);
  EXPECT_THROW(xbar.matvec(Tensor({5})), std::invalid_argument);
  RramDeviceParams bad = ideal_device();
  bad.g_max = bad.g_min;
  EXPECT_THROW(CrossbarTile(w, 1.0f, bad, rng), std::invalid_argument);
}

// Property: at matched sigma, the crossbar programming variation and the
// layer-level lognormal factor model produce deviations of similar scale.
TEST(CrossbarArray, ProgramVariationScalesLikeLognormalModel) {
  Rng rng(9);
  Tensor w({32, 32});
  rng.fill_normal(w, 0.0f, 0.5f);
  RramDeviceParams dev = ideal_device();
  dev.program_sigma = 0.2f;
  double dev_sum = 0.0;
  int count = 0;
  CrossbarArray xbar(w, dev, rng, 32);
  Tensor w_eff = xbar.effective_weights();
  for (int64_t i = 0; i < w.size(); ++i) {
    if (std::fabs(w[i]) > 0.3f) {  // well above g_min resolution
      dev_sum += std::fabs(w_eff[i] / w[i] - 1.0);
      ++count;
    }
  }
  const double mean_rel_dev = dev_sum / count;
  // E|e^θ - 1| for σ=0.2 is ≈ 0.16; allow wide tolerance (differential pairs).
  EXPECT_GT(mean_rel_dev, 0.05);
  EXPECT_LT(mean_rel_dev, 0.5);
}

}  // namespace
}  // namespace cn::analog
