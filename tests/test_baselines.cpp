#include "core/baselines.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/trainer.h"
#include "data/synthetic.h"
#include "models/lenet.h"
#include "tensor/ops.h"

namespace cn::core {
namespace {

struct BaselineFixture {
  data::SplitDataset ds;
  nn::Sequential model{"m"};

  BaselineFixture() {
    data::DigitsSpec spec;
    spec.train_count = 500;
    spec.test_count = 150;
    ds = data::make_digits(spec);
    Rng rng(1);
    model = models::lenet5(1, 28, 10, rng);
    TrainConfig cfg;
    cfg.epochs = 2;
    train(model, ds.train, ds.test, cfg);
  }
};

BaselineFixture& fixture() {
  static BaselineFixture f;
  return f;
}

TEST(ProtectionMasks, FractionRespected) {
  auto& f = fixture();
  Rng rng(2);
  auto masks = protection_masks(f.model, 0.25, /*topk=*/true, rng);
  ASSERT_EQ(masks.size(), f.model.analog_sites().size());
  auto sites = f.model.analog_sites();
  for (size_t i = 0; i < masks.size(); ++i) {
    const int64_t n = masks[i].size();
    int64_t prot = 0;
    for (int64_t j = 0; j < n; ++j)
      if (masks[i][j] != 0.0f) ++prot;
    EXPECT_NEAR(static_cast<double>(prot) / n, 0.25, 0.51 / n + 1e-9);
  }
}

TEST(ProtectionMasks, TopkSelectsLargestMagnitudes) {
  auto& f = fixture();
  Rng rng(3);
  auto masks = protection_masks(f.model, 0.1, /*topk=*/true, rng);
  auto sites = f.model.analog_sites();
  for (size_t i = 0; i < masks.size(); ++i) {
    const Tensor& w = sites[i]->nominal_weight();
    float min_protected = 1e30f, max_unprotected = 0.0f;
    for (int64_t j = 0; j < w.size(); ++j) {
      const float a = std::fabs(w[j]);
      if (masks[i][j] != 0.0f) min_protected = std::min(min_protected, a);
      else max_unprotected = std::max(max_unprotected, a);
    }
    EXPECT_GE(min_protected, max_unprotected - 1e-6f);
  }
}

TEST(ProtectionMasks, ZeroFractionProtectsNothing) {
  auto& f = fixture();
  Rng rng(4);
  auto masks = protection_masks(f.model, 0.0, true, rng);
  for (const Tensor& m : masks) EXPECT_FLOAT_EQ(sum(m), 0.0f);
}

TEST(ProtectedEval, FullProtectionEqualsClean) {
  auto& f = fixture();
  Rng rng(5);
  auto masks = protection_masks(f.model, 1.0, true, rng);
  analog::VariationModel vm{analog::VariationKind::kLognormal, 0.5f};
  McOptions mc;
  mc.samples = 3;
  McResult r = mc_accuracy_protected(f.model, f.ds.test, vm, masks, mc);
  EXPECT_NEAR(r.mean, evaluate(f.model, f.ds.test), 1e-6);
  EXPECT_NEAR(r.stddev, 0.0, 1e-9);
}

TEST(ProtectedEval, MoreProtectionHelps) {
  auto& f = fixture();
  Rng rng(6);
  analog::VariationModel vm{analog::VariationKind::kLognormal, 0.5f};
  McOptions mc;
  mc.samples = 8;
  auto none = protection_masks(f.model, 0.0, true, rng);
  auto half = protection_masks(f.model, 0.5, true, rng);
  McResult r0 = mc_accuracy_protected(f.model, f.ds.test, vm, none, mc);
  McResult r50 = mc_accuracy_protected(f.model, f.ds.test, vm, half, mc);
  EXPECT_GT(r50.mean, r0.mean);
}

TEST(ProtectedEval, TopkBeatsRandomAtSameBudget) {
  auto& f = fixture();
  Rng rng(7);
  analog::VariationModel vm{analog::VariationKind::kLognormal, 0.5f};
  McOptions mc;
  mc.samples = 10;
  auto topk = protection_masks(f.model, 0.2, true, rng);
  auto rnd = protection_masks(f.model, 0.2, false, rng);
  McResult rt = mc_accuracy_protected(f.model, f.ds.test, vm, topk, mc);
  McResult rr = mc_accuracy_protected(f.model, f.ds.test, vm, rnd, mc);
  // Important-weight protection should not lose badly to random protection.
  EXPECT_GT(rt.mean, rr.mean - 0.05);
}

TEST(OnlineRetrain, ImprovesOverStaticProtection) {
  auto& f = fixture();
  Rng rng(8);
  analog::VariationModel vm{analog::VariationKind::kLognormal, 0.5f};
  auto masks = protection_masks(f.model, 0.2, false, rng);
  McOptions mc;
  mc.samples = 3;
  McResult stat = mc_accuracy_protected(f.model, f.ds.test, vm, masks, mc);
  OnlineRetrainOptions online;
  online.steps = 20;
  McResult onl =
      mc_accuracy_protected_online(f.model, f.ds.train, f.ds.test, vm, masks, mc, online);
  EXPECT_GT(onl.mean, stat.mean - 0.03);
}

TEST(OnlineRetrain, DoesNotMutateInputModel) {
  auto& f = fixture();
  Rng rng(9);
  const float before = evaluate(f.model, f.ds.test);
  analog::VariationModel vm{analog::VariationKind::kLognormal, 0.5f};
  auto masks = protection_masks(f.model, 0.1, true, rng);
  McOptions mc;
  mc.samples = 2;
  OnlineRetrainOptions online;
  online.steps = 5;
  mc_accuracy_protected_online(f.model, f.ds.train, f.ds.test, vm, masks, mc, online);
  EXPECT_FLOAT_EQ(evaluate(f.model, f.ds.test), before);
}

TEST(VariationAwareTraining, BeatsPlainTrainingUnderVariations) {
  data::DigitsSpec spec;
  spec.train_count = 500;
  spec.test_count = 150;
  data::SplitDataset ds = data::make_digits(spec);
  Rng rng(10);
  nn::Sequential init = models::lenet5(1, 28, 10, rng);

  TrainConfig cfg;
  cfg.epochs = 3;
  analog::VariationModel vm{analog::VariationKind::kLognormal, 0.5f};
  cfg.variation = vm;

  nn::Sequential plain = init.clone_model();
  TrainConfig pcfg = cfg;
  pcfg.variation_in_loop = false;
  train(plain, ds.train, ds.test, pcfg);

  nn::Sequential aware = train_variation_aware(init, ds.train, ds.test, cfg);

  McOptions mc;
  mc.samples = 10;
  McResult rp = mc_accuracy(plain, ds.test, vm, mc);
  McResult ra = mc_accuracy(aware, ds.test, vm, mc);
  EXPECT_GT(ra.mean, rp.mean - 0.02);
}

}  // namespace
}  // namespace cn::core
