// Randomized model generator for the graph-parity fusion harness
// (tests/test_fusion.cpp). Draws a small Sequential from the fusible op set —
// conv blocks with optional leading pool, trailing batchnorm / relu /
// dropout, then flatten and a dense head — with every weight drawn from the
// seed, so a (seed, allow_batchnorm) pair is a reproducible parity case.
//
// BatchNorm running statistics are warmed by a few train-mode forwards inside
// the generator (an unwarmed BN has running_var = 1, which would make the
// bn-fold pass trivially exact); dropout layers get seeds derived from the
// model seed. The generator reports whether batchnorm was actually placed so
// callers can pick the right tolerance (bitwise without BN, the pinned
// kBnFold* contract with it).
#pragma once

#include <cstdint>
#include <string>

#include "nn/activations.h"
#include "nn/batchnorm.h"
#include "nn/conv2d.h"
#include "nn/dense.h"
#include "nn/dropout.h"
#include "nn/pooling.h"
#include "nn/sequential.h"
#include "tensor/rng.h"

namespace cn::testutil {

struct RandomModelSpec {
  uint64_t seed = 1;
  bool allow_batchnorm = true;
  int64_t in_c = 1;    // input channels
  int64_t in_hw = 12;  // input height == width
};

struct RandomModel {
  nn::Sequential model{"rand"};
  int64_t in_c = 0;
  int64_t in_hw = 0;
  bool has_batchnorm = false;  // a BN layer was actually placed
};

inline RandomModel make_random_model(const RandomModelSpec& spec) {
  Rng rng(spec.seed);
  RandomModel rm;
  rm.in_c = spec.in_c;
  rm.in_hw = spec.in_hw;
  nn::Sequential& m = rm.model;
  int64_t c = spec.in_c, h = spec.in_hw, w = spec.in_hw;

  const int blocks = 1 + static_cast<int>(rng.uniform_int(2));  // 1..2
  for (int b = 0; b < blocks; ++b) {
    // A pool in front of the conv exercises the pool-fuse pass; gated on
    // divisibility and on leaving room for the 3x3 kernel below.
    if (h % 2 == 0 && h / 2 >= 3 && rng.uniform() < 0.5) {
      if (rng.uniform() < 0.5)
        m.emplace<nn::MaxPool2D>(2, "pool" + std::to_string(b));
      else
        m.emplace<nn::AvgPool2D>(2, "pool" + std::to_string(b));
      h /= 2;
      w /= 2;
    }
    if (h < 3) break;  // no room left for a 3x3 kernel
    const int64_t out_c = 3 + rng.uniform_int(4);  // 3..6
    const int64_t pad = rng.uniform_int(2);        // 0 or 1
    auto& conv = m.emplace<nn::Conv2D>(c, out_c, 3, 1, pad, h, w,
                                       "conv" + std::to_string(b));
    rng.fill_normal(conv.weight().value, 0.0f, 0.4f);
    rng.fill_normal(conv.bias().value, 0.0f, 0.2f);
    h += 2 * pad - 2;
    w += 2 * pad - 2;
    c = out_c;
    if (spec.allow_batchnorm && rng.uniform() < 0.5) {
      auto& bn = m.emplace<nn::BatchNorm2D>(c, 0.9f, 1e-5f,
                                            "bn" + std::to_string(b));
      // Non-trivial affine so the fold is not a pure rescale.
      rng.fill_normal(bn.gamma().value, 1.0f, 0.2f);
      rng.fill_normal(bn.beta().value, 0.0f, 0.2f);
      rm.has_batchnorm = true;
    }
    if (rng.uniform() < 0.7) m.emplace<nn::ReLU>("relu" + std::to_string(b));
    if (rng.uniform() < 0.4)
      m.emplace<nn::Dropout>(0.3f, spec.seed + 7 + static_cast<uint64_t>(b),
                             "drop" + std::to_string(b));
  }

  m.emplace<nn::Flatten>();
  const int64_t feat = c * h * w;
  const int64_t hidden = 8 + rng.uniform_int(9);  // 8..16
  auto& d1 = m.emplace<nn::Dense>(feat, hidden, "fc1");
  rng.fill_normal(d1.weight().value, 0.0f, 0.3f);
  rng.fill_normal(d1.bias().value, 0.0f, 0.1f);
  if (rng.uniform() < 0.7) m.emplace<nn::ReLU>("relu_fc");
  if (rng.uniform() < 0.4) m.emplace<nn::Dropout>(0.25f, spec.seed + 31, "drop_fc");
  auto& d2 = m.emplace<nn::Dense>(hidden, 4, "head");
  rng.fill_normal(d2.weight().value, 0.0f, 0.3f);
  rng.fill_normal(d2.bias().value, 0.0f, 0.1f);

  // Warm BN running statistics with train-mode forwards (the plain layer
  // loop — fusion never engages in train mode).
  if (rm.has_batchnorm) {
    Tensor xb({4, spec.in_c, spec.in_hw, spec.in_hw});
    for (int it = 0; it < 3; ++it) {
      rng.fill_normal(xb, 0.0f, 1.0f);
      (void)m.forward(xb, /*train=*/true);
    }
  }
  return rm;
}

/// A deterministic eval batch matching the model's input geometry.
inline Tensor random_input(const RandomModel& rm, uint64_t seed,
                           int64_t batch = 3) {
  Rng rng(seed);
  Tensor x({batch, rm.in_c, rm.in_hw, rm.in_hw});
  rng.fill_normal(x, 0.0f, 1.0f);
  return x;
}

}  // namespace cn::testutil
