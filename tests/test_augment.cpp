#include "data/augment.h"

#include <gtest/gtest.h>

#include "data/synthetic.h"

namespace cn::data {
namespace {

TEST(ShiftImage, MovesPixels) {
  Tensor img({1, 3, 3}, std::vector<float>{1, 2, 3, 4, 5, 6, 7, 8, 9});
  shift_image(img.data(), 1, 3, 3, 1, 0, 0.0f);  // down by 1
  EXPECT_FLOAT_EQ(img[0], 0.0f);  // padded row
  EXPECT_FLOAT_EQ(img[3], 1.0f);  // old row 0
  EXPECT_FLOAT_EQ(img[8], 6.0f);
}

TEST(ShiftImage, ZeroShiftIsIdentity) {
  Tensor img({1, 2, 2}, std::vector<float>{1, 2, 3, 4});
  shift_image(img.data(), 1, 2, 2, 0, 0, 9.0f);
  EXPECT_FLOAT_EQ(img[0], 1.0f);
  EXPECT_FLOAT_EQ(img[3], 4.0f);
}

TEST(ShiftImage, CustomPadValue) {
  Tensor img({1, 2, 2}, std::vector<float>{1, 2, 3, 4});
  shift_image(img.data(), 1, 2, 2, 0, 1, -5.0f);  // right by 1
  EXPECT_FLOAT_EQ(img[0], -5.0f);
  EXPECT_FLOAT_EQ(img[1], 1.0f);
}

TEST(HflipImage, MirrorsRows) {
  Tensor img({1, 2, 3}, std::vector<float>{1, 2, 3, 4, 5, 6});
  hflip_image(img.data(), 1, 2, 3);
  EXPECT_FLOAT_EQ(img[0], 3.0f);
  EXPECT_FLOAT_EQ(img[2], 1.0f);
  EXPECT_FLOAT_EQ(img[3], 6.0f);
}

TEST(HflipImage, DoubleFlipIsIdentity) {
  Rng rng(1);
  Tensor img({3, 4, 5});
  rng.fill_normal(img, 0.0f, 1.0f);
  Tensor orig = img;
  hflip_image(img.data(), 3, 4, 5);
  hflip_image(img.data(), 3, 4, 5);
  for (int64_t i = 0; i < img.size(); ++i) EXPECT_FLOAT_EQ(img[i], orig[i]);
}

TEST(AugmentBatch, PreservesShapeAndLabels) {
  DigitsSpec spec;
  spec.train_count = 20;
  spec.test_count = 5;
  SplitDataset ds = make_digits(spec);
  Batcher b(ds.train, 20);
  Batch batch = b.get(0);
  auto labels = batch.labels;
  AugmentSpec aug;
  aug.max_shift = 2;
  aug.hflip = false;
  Rng rng(2);
  augment_batch(batch, aug, rng);
  EXPECT_EQ(batch.images.shape(), (Shape{20, 1, 28, 28}));
  EXPECT_EQ(batch.labels, labels);
}

TEST(AugmentBatch, DeterministicGivenSeed) {
  DigitsSpec spec;
  spec.train_count = 8;
  spec.test_count = 2;
  SplitDataset ds = make_digits(spec);
  Batcher b(ds.train, 8);
  Batch b1 = b.get(0);
  Batch b2 = b.get(0);
  AugmentSpec aug;
  Rng r1(7), r2(7);
  augment_batch(b1, aug, r1);
  augment_batch(b2, aug, r2);
  for (int64_t i = 0; i < b1.images.size(); ++i)
    ASSERT_FLOAT_EQ(b1.images[i], b2.images[i]);
}

TEST(AugmentBatch, NoopSpecLeavesPixels) {
  DigitsSpec spec;
  spec.train_count = 4;
  spec.test_count = 2;
  SplitDataset ds = make_digits(spec);
  Batcher b(ds.train, 4);
  Batch batch = b.get(0);
  Tensor before = batch.images;
  AugmentSpec aug;
  aug.max_shift = 0;
  aug.hflip = false;
  Rng rng(3);
  augment_batch(batch, aug, rng);
  for (int64_t i = 0; i < before.size(); ++i)
    EXPECT_FLOAT_EQ(batch.images[i], before[i]);
}

}  // namespace
}  // namespace cn::data
