#include "tensor/tensor.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace cn {
namespace {

TEST(Shape, Numel) {
  EXPECT_EQ(numel({}), 1);
  EXPECT_EQ(numel({3}), 3);
  EXPECT_EQ(numel({2, 3, 4}), 24);
  EXPECT_EQ(numel({5, 0}), 0);
}

TEST(Shape, ToString) {
  EXPECT_EQ(to_string({2, 3}), "[2, 3]");
  EXPECT_EQ(to_string({}), "[]");
}

TEST(Tensor, DefaultIsEmpty) {
  Tensor t;
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.size(), 0);
  EXPECT_EQ(t.rank(), 0);
}

TEST(Tensor, ZeroInitialized) {
  Tensor t({2, 3});
  EXPECT_EQ(t.size(), 6);
  for (int64_t i = 0; i < t.size(); ++i) EXPECT_EQ(t[i], 0.0f);
}

TEST(Tensor, FillConstructor) {
  Tensor t({4}, 2.5f);
  for (int64_t i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(t[i], 2.5f);
}

TEST(Tensor, FromInitializerList) {
  Tensor t = Tensor::from({1.0f, 2.0f, 3.0f});
  ASSERT_EQ(t.size(), 3);
  EXPECT_FLOAT_EQ(t[1], 2.0f);
}

TEST(Tensor, DataConstructorValidatesSize) {
  EXPECT_THROW(Tensor({2, 2}, std::vector<float>{1.0f}), std::invalid_argument);
}

TEST(Tensor, NegativeDimIndex) {
  Tensor t({2, 3, 4});
  EXPECT_EQ(t.dim(-1), 4);
  EXPECT_EQ(t.dim(-3), 2);
  EXPECT_EQ(t.dim(0), 2);
}

TEST(Tensor, At2D) {
  Tensor t({2, 3});
  t.at(1, 2) = 7.0f;
  EXPECT_FLOAT_EQ(t[5], 7.0f);
  EXPECT_FLOAT_EQ(t.at(1, 2), 7.0f);
}

TEST(Tensor, ReshapePreservesData) {
  Tensor t = Tensor::from({1, 2, 3, 4, 5, 6});
  Tensor r = t.reshaped({2, 3});
  EXPECT_EQ(r.rank(), 2);
  EXPECT_FLOAT_EQ(r.at(1, 0), 4.0f);
}

TEST(Tensor, ReshapeRejectsBadCount) {
  Tensor t({4});
  EXPECT_THROW(t.reshape({3}), std::invalid_argument);
}

TEST(Tensor, CloneIsDeep) {
  Tensor t({2}, 1.0f);
  Tensor c = t.clone();
  c[0] = 9.0f;
  EXPECT_FLOAT_EQ(t[0], 1.0f);
}

TEST(Tensor, FillAndZero) {
  Tensor t({3});
  t.fill(4.0f);
  EXPECT_FLOAT_EQ(t[2], 4.0f);
  t.zero();
  EXPECT_FLOAT_EQ(t[2], 0.0f);
}

TEST(Tensor, SameShape) {
  EXPECT_TRUE(Tensor({2, 3}).same_shape(Tensor({2, 3})));
  EXPECT_FALSE(Tensor({2, 3}).same_shape(Tensor({3, 2})));
}

}  // namespace
}  // namespace cn
