// Run-to-run determinism, promoted into tier-1 from bench_faultsim's
// asserts (bench binaries don't run under ctest): a repeated campaign and a
// repeated ChipFarm Monte-Carlo must reproduce byte-identical results —
// every per-chip accuracy sample and the emitted JSON report. Untrained
// models keep this fast; determinism does not care about accuracy.
#include <string>

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "faultsim/campaign.h"
#include "models/lenet.h"
#include "runtime/chip_farm.h"
#include "runtime/mc_engine.h"

namespace cn {
namespace {

analog::RramDeviceParams quiet_dev() {
  analog::RramDeviceParams dev;
  dev.g_min = 1e-6f;
  dev.g_max = 1e-4f;
  dev.program_sigma = 0.1f;
  return dev;
}

// Untrained model + tiny dataset: enough to exercise every execution path.
struct Fixture {
  data::SplitDataset ds;
  nn::Sequential model{"m"};

  Fixture() {
    data::DigitsSpec spec;
    spec.train_count = 40;  // unused (no training), keep synthesis cheap
    spec.test_count = 60;
    ds = data::make_digits(spec);
    Rng rng(1);
    model = models::lenet5(1, 28, 10, rng);
  }
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

faultsim::Campaign make_campaign(const nn::Sequential& model) {
  faultsim::CampaignOptions co;
  co.chips = 2;
  co.seed = 42;
  co.batch_size = 32;
  co.dev = quiet_dev();
  co.dev.readout.read_sigma = 0.05f;  // the stochastic read path too
  co.remap.enabled = true;            // and the remap axis
  faultsim::Campaign c(co);
  c.add_model("baseline", model, false);
  c.add_fault(faultsim::fault_free());
  c.add_fault(faultsim::stuck_at(0.05));
  c.add_fault(faultsim::drift(100.0));
  return c;
}

TEST(Determinism, CampaignRerunIsByteIdentical) {
  auto& f = fixture();
  faultsim::CampaignReport a = make_campaign(f.model).run(f.ds.test);
  faultsim::CampaignReport b = make_campaign(f.model).run(f.ds.test);

  ASSERT_EQ(a.scenarios.size(), 6u);  // 3 fault specs x 2 remap variants
  ASSERT_EQ(a.scenarios.size(), b.scenarios.size());
  for (size_t i = 0; i < a.scenarios.size(); ++i) {
    const faultsim::ScenarioResult& x = a.scenarios[i];
    const faultsim::ScenarioResult& y = b.scenarios[i];
    ASSERT_EQ(x.acc.samples.size(), y.acc.samples.size());
    for (size_t s = 0; s < x.acc.samples.size(); ++s)
      ASSERT_EQ(x.acc.samples[s], y.acc.samples[s])
          << "scenario " << i << " chip " << s;
    EXPECT_EQ(x.absorbed, y.absorbed);
    EXPECT_EQ(x.residual, y.residual);
    EXPECT_EQ(x.catastrophic, y.catastrophic);
  }
  // Byte-identical reports once the one nondeterministic field (wall-clock)
  // is normalized away.
  a.wall_s = 0.0;
  b.wall_s = 0.0;
  EXPECT_EQ(a.to_json(), b.to_json());
}

TEST(Determinism, CrossbarFarmMcRerunIsBitIdentical) {
  auto& f = fixture();
  const faultsim::FaultSpec spec = faultsim::stuck_at(0.05);
  auto run = [&]() {
    runtime::ChipFarmOptions fo;
    fo.instances = 3;
    fo.seed = 7;
    analog::RramDeviceParams dev = quiet_dev();
    dev.readout.read_sigma = 0.05f;
    runtime::ChipFarm farm(f.model, dev, fo, spec.list());
    runtime::McEngineOptions eo;
    eo.batch_size = 32;
    return runtime::McEngine(farm, eo).accuracy(f.ds.test);
  };
  const core::McResult a = run();
  const core::McResult b = run();
  ASSERT_EQ(a.samples.size(), 3u);
  ASSERT_EQ(a.samples.size(), b.samples.size());
  for (size_t s = 0; s < a.samples.size(); ++s)
    ASSERT_EQ(a.samples[s], b.samples[s]) << "chip " << s;
  ASSERT_EQ(a.mean, b.mean);
  ASSERT_EQ(a.stddev, b.stddev);
}

TEST(Determinism, FactorFarmMcRerunIsBitIdentical) {
  auto& f = fixture();
  analog::VariationModel vm{analog::VariationKind::kLognormal, 0.4f};
  auto run = [&]() {
    runtime::ChipFarmOptions fo;
    fo.instances = 4;
    fo.seed = 13;
    runtime::ChipFarm farm(f.model, vm, fo);
    runtime::McEngineOptions eo;
    eo.batch_size = 32;
    return runtime::McEngine(farm, eo).accuracy(f.ds.test);
  };
  const core::McResult a = run();
  const core::McResult b = run();
  ASSERT_EQ(a.samples.size(), 4u);
  for (size_t s = 0; s < a.samples.size(); ++s)
    ASSERT_EQ(a.samples[s], b.samples[s]) << "chip " << s;
}

}  // namespace
}  // namespace cn
