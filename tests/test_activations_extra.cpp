#include "nn/activations_extra.h"

#include <gtest/gtest.h>

#include <cmath>

#include "tensor/ops.h"
#include "tensor/rng.h"

namespace cn::nn {
namespace {

TEST(LeakyReLU, ForwardSlope) {
  LeakyReLU l(0.1f);
  Tensor y = l.forward(Tensor::from({-2, 0, 3}), false);
  EXPECT_FLOAT_EQ(y[0], -0.2f);
  EXPECT_FLOAT_EQ(y[1], 0.0f);
  EXPECT_FLOAT_EQ(y[2], 3.0f);
}

TEST(LeakyReLU, BackwardSlope) {
  LeakyReLU l(0.25f);
  l.forward(Tensor::from({-1, 2}), true);
  Tensor g = l.backward(Tensor::from({4, 4}));
  EXPECT_FLOAT_EQ(g[0], 1.0f);
  EXPECT_FLOAT_EQ(g[1], 4.0f);
}

TEST(Sigmoid, ForwardValues) {
  Sigmoid s;
  Tensor y = s.forward(Tensor::from({0.0f, 100.0f, -100.0f}), false);
  EXPECT_FLOAT_EQ(y[0], 0.5f);
  EXPECT_NEAR(y[1], 1.0f, 1e-6);
  EXPECT_NEAR(y[2], 0.0f, 1e-6);
}

TEST(Sigmoid, GradCheck) {
  Sigmoid s;
  Rng rng(1);
  Tensor x({10});
  rng.fill_normal(x, 0.0f, 2.0f);
  Tensor y = s.forward(x, true);
  Tensor gx = s.backward(y);  // L = 0.5*||y||²
  const float eps = 1e-3f;
  for (int64_t i = 0; i < x.size(); ++i) {
    Tensor xp = x, xm = x;
    xp[i] += eps;
    xm[i] -= eps;
    Sigmoid sp, sm;
    const float lp = 0.5f * sum_sq(sp.forward(xp, false));
    const float lm = 0.5f * sum_sq(sm.forward(xm, false));
    EXPECT_NEAR(gx[i], (lp - lm) / (2 * eps), 1e-3f);
  }
}

TEST(SoftmaxLayer, RowsSumToOneAndGradIsOrthogonalToOnes) {
  Softmax s;
  Rng rng(2);
  Tensor x({3, 5});
  rng.fill_normal(x, 0.0f, 1.0f);
  Tensor y = s.forward(x, true);
  for (int64_t r = 0; r < 3; ++r) {
    double sum_row = 0.0;
    for (int64_t c = 0; c < 5; ++c) sum_row += y[r * 5 + c];
    EXPECT_NEAR(sum_row, 1.0, 1e-5);
  }
  // d(softmax)/dx maps any grad to a vector orthogonal to the ones vector
  // (softmax output stays on the simplex).
  Tensor g({3, 5});
  rng.fill_normal(g, 0.0f, 1.0f);
  Tensor gx = s.backward(g);
  for (int64_t r = 0; r < 3; ++r) {
    double sum_row = 0.0;
    for (int64_t c = 0; c < 5; ++c) sum_row += gx[r * 5 + c];
    EXPECT_NEAR(sum_row, 0.0, 1e-4);
  }
}

TEST(GlobalAvgPool, ForwardAverages) {
  GlobalAvgPool g;
  Tensor x({1, 2, 2, 2}, std::vector<float>{1, 2, 3, 4, 10, 10, 10, 10});
  Tensor y = g.forward(x, false);
  EXPECT_EQ(y.shape(), (Shape{1, 2}));
  EXPECT_FLOAT_EQ(y[0], 2.5f);
  EXPECT_FLOAT_EQ(y[1], 10.0f);
}

TEST(GlobalAvgPool, BackwardDistributes) {
  GlobalAvgPool g;
  g.forward(Tensor({1, 1, 2, 2}), true);
  Tensor gx = g.backward(Tensor({1, 1}, std::vector<float>{8.0f}));
  for (int64_t i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(gx[i], 2.0f);
}

// Property: all provided activations are 1-Lipschitz (|f(a)-f(b)| <= |a-b|),
// the requirement for not amplifying propagated errors (paper §III-A).
class OneLipschitz : public ::testing::TestWithParam<int> {};

TEST_P(OneLipschitz, ActivationDoesNotExpand) {
  Rng rng(42 + static_cast<uint64_t>(GetParam()));
  std::unique_ptr<Layer> act;
  switch (GetParam()) {
    case 0: act = std::make_unique<LeakyReLU>(0.2f); break;
    case 1: act = std::make_unique<Sigmoid>(); break;
    default: act = std::make_unique<LeakyReLU>(0.9f); break;
  }
  for (int trial = 0; trial < 50; ++trial) {
    Tensor a({8}), b({8});
    rng.fill_normal(a, 0.0f, 2.0f);
    rng.fill_normal(b, 0.0f, 2.0f);
    Tensor fa = act->forward(a, false);
    Tensor fb = act->forward(b, false);
    EXPECT_LE(l2_norm(sub(fa, fb)), l2_norm(sub(a, b)) + 1e-5f);
  }
}

INSTANTIATE_TEST_SUITE_P(Activations, OneLipschitz, ::testing::Values(0, 1, 2));

}  // namespace
}  // namespace cn::nn
