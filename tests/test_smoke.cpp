// Build-system smoke test: links one symbol from every library module so
// that a future link regression (missing source in CMake, ODR break,
// dropped dependency) fails here with an obvious name instead of in a
// random suite.
#include <gtest/gtest.h>

#include <memory>

#include "analog/crossbar.h"
#include "core/compensation.h"
#include "data/synthetic.h"
#include "models/lenet.h"
#include "nn/conv2d.h"
#include "nn/sequential.h"
#include "rl/policy.h"
#include "tensor/ops.h"
#include "tensor/rng.h"
#include "tensor/tensor.h"

namespace cn {
namespace {

TEST(Smoke, TensorModuleLinks) {
  Tensor t(Shape{2, 3}, 1.5f);
  EXPECT_EQ(numel(t.shape()), 6);
  Rng rng(42);
  EXPECT_NE(rng.uniform(), rng.uniform());
}

TEST(Smoke, NnModuleLinks) {
  nn::Conv2D conv(1, 2, 3, 1, 1, 8, 8, "smoke.conv");
  Tensor x(Shape{1, 1, 8, 8}, 0.25f);
  Tensor y = conv.forward(x, /*train=*/false);
  EXPECT_EQ(y.shape(), (Shape{1, 2, 8, 8}));
}

TEST(Smoke, AnalogModuleLinks) {
  Rng rng(7);
  Tensor w(Shape{4, 6});
  for (int64_t i = 0; i < numel(w.shape()); ++i) w.data()[i] = 0.01f * float(i - 10);
  analog::RramDeviceParams dev;  // ideal device: zero variation
  analog::CrossbarArray xbar(w, dev, rng, /*tile=*/4);
  Tensor x(Shape{6}, 0.5f);
  Tensor y = xbar.matvec(x);
  EXPECT_EQ(y.shape(), (Shape{4}));
}

TEST(Smoke, CoreCompensationLinks) {
  Rng rng(11);
  auto base = std::make_unique<nn::Conv2D>(1, 2, 3, 1, 1, 6, 6, "smoke.base");
  core::CompensatedConv2D cc(std::move(base), /*m_filters=*/2, rng);
  Tensor x(Shape{1, 1, 6, 6}, 0.1f);
  Tensor y = cc.forward(x, /*train=*/false);
  EXPECT_EQ(y.shape(), (Shape{1, 2, 6, 6}));
}

TEST(Smoke, ModelsAndDataModulesLink) {
  Rng rng(13);
  nn::Sequential m = models::lenet5(1, 28, 10, rng);
  EXPECT_GT(m.num_layers(), 0);
}

}  // namespace
}  // namespace cn
