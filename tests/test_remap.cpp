// The fault-aware remapping subsystem: controller planning (benign
// classification, differential-pair swap, cost-ranked greedy spare-line
// assignment), the construction-time remap transform's determinism and
// bit-exactness contracts, and the campaign's matched-pair remap-on/off
// protection axis.
#include "remap/remap.h"

#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "analog/crossbar_layers.h"
#include "core/trainer.h"
#include "data/synthetic.h"
#include "exec_testutil.h"
#include "faultsim/campaign.h"
#include "models/lenet.h"
#include "runtime/chip_farm.h"
#include "runtime/mc_engine.h"
#include "tensor/ops.h"

namespace cn::remap {
namespace {

constexpr float kGMin = 1e-6f;
constexpr float kGMax = 1e-4f;

analog::RramDeviceParams quiet_dev() {
  analog::RramDeviceParams dev;
  dev.g_min = kGMin;
  dev.g_max = kGMax;
  return dev;
}

RemapParams full_params(int64_t spare_rows = 2, int64_t spare_cols = 2,
                        bool swap = true) {
  RemapParams p;
  p.enabled = true;
  p.spare_rows = spare_rows;
  p.spare_cols = spare_cols;
  p.pair_swap = swap;
  return p;
}

// Shared tiny trained model + dataset (mirrors test_faultsim's fixture).
struct Fixture {
  data::SplitDataset ds;
  nn::Sequential model{"m"};

  Fixture() {
    data::DigitsSpec spec;
    spec.train_count = 400;
    spec.test_count = 60;
    ds = data::make_digits(spec);
    Rng rng(1);
    model = models::lenet5(1, 28, 10, rng);
    core::TrainConfig cfg;
    cfg.epochs = 2;
    core::train(model, ds.train, ds.test, cfg);
  }
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

// ---------- controller planning ----------

TEST(RemapController, PairSwapMovesTheErrorOntoTheHealthyPartner) {
  // 2x2 tile, mid-range targets; G+ of cell 1 stuck at g_max. The partner
  // must absorb the full shift so the pair difference is restored.
  const std::vector<float> gp_pre = {2e-5f, 3e-5f, 4e-5f, 5e-5f};
  const std::vector<float> gn_pre = {1e-5f, 2e-5f, 1e-5f, 1e-5f};
  DefectMap defects = {{1, /*neg=*/false, kGMax}};
  const RemapController ctl(full_params());
  const RemapPlan plan = ctl.plan(defects, 2, 2, gp_pre.data(), gn_pre.data(),
                                  kGMin, kGMax);
  ASSERT_EQ(plan.fixes.size(), 1u);
  EXPECT_EQ(plan.fixes[0].fix, Fix::kPairSwap);
  // G-' = G-_target + (stuck - G+_target); difference preserved.
  const float expect_partner = gn_pre[1] + (kGMax - gp_pre[1]);
  EXPECT_FLOAT_EQ(plan.fixes[0].partner_g, expect_partner);

  std::vector<float> gp = gp_pre, gn = gn_pre;
  gp[1] = kGMax;  // the fault the defect map describes
  const RemapStats st = ctl.apply(plan, gp.data(), gn.data(), gp_pre.data(),
                                  gn_pre.data());
  EXPECT_EQ(st.swapped, 1);
  EXPECT_EQ(st.absorbed(), 1);
  EXPECT_EQ(st.residual, 0);
  EXPECT_NEAR(gp[1] - gn[1], gp_pre[1] - gn_pre[1], 1e-10f);
}

TEST(RemapController, InfeasibleSwapFallsBackToSpares) {
  // G+ stuck LOW under a strongly positive target difference: the partner
  // would need a conductance below g_min, so the swap is infeasible and the
  // defect must consume a spare line instead.
  const std::vector<float> gp_pre = {9e-5f};
  const std::vector<float> gn_pre = {1e-6f};
  DefectMap defects = {{0, false, kGMin}};
  const RemapController ctl(full_params(1, 0));
  const RemapPlan plan =
      ctl.plan(defects, 1, 1, gp_pre.data(), gn_pre.data(), kGMin, kGMax);
  ASSERT_EQ(plan.fixes.size(), 1u);
  EXPECT_EQ(plan.fixes[0].fix, Fix::kSpareRow);

  // Without any budget the defect stays residual.
  const RemapController none(full_params(0, 0, /*swap=*/false));
  const RemapPlan stuck =
      none.plan(defects, 1, 1, gp_pre.data(), gn_pre.data(), kGMin, kGMax);
  EXPECT_EQ(stuck.fixes[0].fix, Fix::kResidual);
}

TEST(RemapController, BenignAndBothStuckPairsClassifyCorrectly) {
  // Cell 0: G- stuck exactly at its target (benign). Cell 1: both devices
  // stuck (no healthy partner) -> swap impossible.
  const std::vector<float> gp_pre = {2e-5f, 3e-5f};
  const std::vector<float> gn_pre = {kGMin, 1e-5f};
  DefectMap defects = {
      {0, true, kGMin},    // benign: target already g_min
      {1, false, kGMax},   // partner also stuck
      {1, true, kGMin},
  };
  const RemapController ctl(full_params(0, 0));  // swap only
  const RemapPlan plan =
      ctl.plan(defects, 1, 2, gp_pre.data(), gn_pre.data(), kGMin, kGMax);
  ASSERT_EQ(plan.fixes.size(), 3u);
  EXPECT_EQ(plan.fixes[0].fix, Fix::kBenign);
  EXPECT_EQ(plan.fixes[1].fix, Fix::kResidual);
  EXPECT_EQ(plan.fixes[2].fix, Fix::kResidual);

  std::vector<float> gp = {kGMax, kGMax};
  std::vector<float> gn = {kGMin, kGMin};
  const RemapStats st =
      ctl.apply(plan, gp.data(), gn.data(), gp_pre.data(), gn_pre.data());
  EXPECT_EQ(st.defects, 3);
  EXPECT_EQ(st.benign, 1);
  EXPECT_EQ(st.residual, 2);
  EXPECT_EQ(st.defects, st.benign + st.swapped + st.spared + st.residual);
}

TEST(RemapController, GreedySpareAssignmentRepairsTheWorstLinesFirst) {
  // 3x3 tile, swap disabled. Row 1 carries two large defects, column 2 one
  // medium defect, cell (0,0) one small defect. Budget: 1 spare row + 1
  // spare col -> the greedy pass must spend the row on row 1 and the column
  // on column 2, leaving the small defect residual.
  std::vector<float> gp_pre(9, 5e-5f);
  std::vector<float> gn_pre(9, 5e-5f);
  DefectMap defects = {
      {0, false, 4.5e-5f},     // (0,0): small error 0.5e-5
      {3, false, kGMin},       // (1,0): large
      {5, false, kGMin},       // (1,2): large
      {8, true, 1e-5f},        // (2,2): medium error 4e-5
  };
  const RemapController ctl(full_params(1, 1, /*swap=*/false));
  const RemapPlan plan =
      ctl.plan(defects, 3, 3, gp_pre.data(), gn_pre.data(), kGMin, kGMax);
  ASSERT_EQ(plan.spare_row_lines.size(), 1u);
  ASSERT_EQ(plan.spare_col_lines.size(), 1u);
  EXPECT_EQ(plan.spare_row_lines[0], 1);
  EXPECT_EQ(plan.spare_col_lines[0], 2);
  EXPECT_EQ(plan.fixes[0].fix, Fix::kResidual);   // small defect unlucky
  EXPECT_EQ(plan.fixes[1].fix, Fix::kSpareRow);
  EXPECT_EQ(plan.fixes[2].fix, Fix::kSpareRow);   // row repair covers (1,2)
  EXPECT_EQ(plan.fixes[3].fix, Fix::kSpareCol);

  std::vector<float> gp = gp_pre, gn = gn_pre;
  gp[0] = 4.5e-5f;
  gp[3] = kGMin;
  gp[5] = kGMin;
  gn[8] = 1e-5f;
  const RemapStats st =
      ctl.apply(plan, gp.data(), gn.data(), gp_pre.data(), gn_pre.data());
  EXPECT_EQ(st.spared, 3);
  EXPECT_EQ(st.residual, 1);
  EXPECT_EQ(st.spare_rows_used, 1);
  EXPECT_EQ(st.spare_cols_used, 1);
  // Spared devices read back their pre-fault values; the residual stays.
  EXPECT_FLOAT_EQ(gp[3], gp_pre[3]);
  EXPECT_FLOAT_EQ(gp[5], gp_pre[5]);
  EXPECT_FLOAT_EQ(gn[8], gn_pre[8]);
  EXPECT_FLOAT_EQ(gp[0], 4.5e-5f);
}

// ---------- construction-time transform contracts ----------

TEST(RemapArray, ZeroDefectMapIsANoOpWithNoRngDraws) {
  analog::RramDeviceParams dev = quiet_dev();
  dev.program_sigma = 0.2f;
  Rng wrng(3);
  Tensor w({12, 18});
  wrng.fill_normal(w, 0.0f, 0.5f);

  faultsim::FaultSpec zero;
  zero.models.push_back(std::make_shared<faultsim::StuckAtFault>(0.0, 0.0));
  const analog::FaultList list = zero.list();
  const RemapParams params = full_params();

  Rng prog_a(7), prog_b(7);
  analog::CrossbarArray clean(w, dev, prog_a, /*tile=*/8);
  analog::CrossbarArray remapped(w, dev, prog_b, /*tile=*/8, &list, &params);
  // Identical rng stream positions afterwards: remapping drew nothing.
  EXPECT_EQ(prog_a.next_u64(), prog_b.next_u64());
  const Tensor we_clean = clean.effective_weights();
  const Tensor we_remap = remapped.effective_weights();
  for (int64_t i = 0; i < we_clean.size(); ++i)
    ASSERT_EQ(we_clean[i], we_remap[i]) << "weight " << i;
  const RemapStats st = remapped.remap_stats();
  EXPECT_EQ(st.defects, 0);
  EXPECT_EQ(st.absorbed(), 0);
  EXPECT_EQ(st.residual, 0);
}

TEST(RemapArray, MatchedPairSeesIdenticalDefectMapsAndNeverLosesAccuracyPerWeight) {
  // Remap-on and remap-off arrays built from one seed realize the same
  // faults (same rng draws), and on an ideal device every remapped weight is
  // at least as close to the clean weight as its unremapped twin — repairs
  // only ever restore cells toward their targets.
  const analog::RramDeviceParams dev = quiet_dev();  // sigma 0: targets exact
  Rng wrng(5);
  Tensor w({16, 24});
  wrng.fill_normal(w, 0.0f, 0.5f);
  const faultsim::FaultSpec spec = faultsim::stuck_at(0.08);
  const analog::FaultList list = spec.list();
  const RemapParams params = full_params();

  Rng prog_clean(11), prog_off(11), prog_on(11);
  analog::CrossbarArray clean(w, dev, prog_clean, /*tile=*/8);
  analog::CrossbarArray off(w, dev, prog_off, /*tile=*/8, &list);
  analog::CrossbarArray on(w, dev, prog_on, /*tile=*/8, &list, &params);
  // Same draws either way: the streams end at the same position.
  EXPECT_EQ(prog_off.next_u64(), prog_on.next_u64());

  const Tensor wc = clean.effective_weights();
  const Tensor wo = off.effective_weights();
  const Tensor wr = on.effective_weights();
  double err_off = 0.0, err_on = 0.0;
  for (int64_t i = 0; i < wc.size(); ++i) {
    const double eo = std::abs(static_cast<double>(wo[i]) - wc[i]);
    const double er = std::abs(static_cast<double>(wr[i]) - wc[i]);
    // Each weight is clean, swap-restored (float-rounding error only), or
    // exactly the unremapped faulted value; the epsilon covers swap
    // rounding, orders of magnitude below any real defect error.
    ASSERT_LE(er, eo + 1e-5) << "weight " << i;
    err_off += eo;
    err_on += er;
  }
  const RemapStats st = on.remap_stats();
  EXPECT_GT(st.defects, 0);
  EXPECT_GT(st.absorbed(), 0);
  EXPECT_EQ(st.defects, st.benign + st.swapped + st.spared + st.residual);
  // The controller genuinely moved the needle.
  EXPECT_LT(err_on, 0.8 * err_off);
}

TEST(RemapArray, CompositeFaultListRepairsAgainstThePerModelTargets) {
  // Stuck-at stacked on drift: repairs run per model against the values
  // that model disturbed, so a repaired device reads back its *drifted*
  // value — per weight no worse than the unremapped twin when compared to a
  // drift-only reference — and the rng streams stay aligned with remap off.
  // One tile on purpose: the drift-only reference consumes no stuck-at
  // draws, so its stream only matches the full list up to the first tile.
  const analog::RramDeviceParams dev = quiet_dev();  // sigma 0: drift is the
                                                     // only soft source
  Rng wrng(17);
  Tensor w({14, 20});
  wrng.fill_normal(w, 0.0f, 0.5f);

  const auto drift_model = std::make_shared<faultsim::DriftFault>(100.0);
  const auto stuck_model = std::make_shared<faultsim::StuckAtFault>(0.05, 0.05);
  const analog::FaultList soft = {drift_model.get()};
  const analog::FaultList full = {drift_model.get(), stuck_model.get()};
  const RemapParams params = full_params();

  Rng prog_soft(41), prog_off(41), prog_on(41);
  analog::CrossbarArray ref(w, dev, prog_soft, /*tile=*/128, &soft);
  analog::CrossbarArray off(w, dev, prog_off, /*tile=*/128, &full);
  analog::CrossbarArray on(w, dev, prog_on, /*tile=*/128, &full, &params);
  // Remap draws nothing: the full-list streams end at the same position.
  EXPECT_EQ(prog_off.next_u64(), prog_on.next_u64());

  const Tensor wref = ref.effective_weights();
  const Tensor wo = off.effective_weights();
  const Tensor wr = on.effective_weights();
  double err_off = 0.0, err_on = 0.0;
  for (int64_t i = 0; i < wref.size(); ++i) {
    const double eo = std::abs(static_cast<double>(wo[i]) - wref[i]);
    const double er = std::abs(static_cast<double>(wr[i]) - wref[i]);
    ASSERT_LE(er, eo + 1e-5) << "weight " << i;
    err_off += eo;
    err_on += er;
  }
  EXPECT_GT(on.remap_stats().absorbed(), 0);
  EXPECT_LT(err_on, err_off);

  // And the bit-exactness contract holds for the composite list too (only
  // asserted when the ambient target honors it; see exec_testutil.h).
  if (cn::exec::default_target().bit_exact()) {
    Tensor x({4, 20});
    wrng.fill_normal(x, 0.0f, 1.0f);
    const Tensor y_batch = on.matmul(x);
    Tensor xi({20});
    for (int64_t n = 0; n < 4; ++n) {
      std::copy(x.data() + n * 20, x.data() + (n + 1) * 20, xi.data());
      const Tensor yi = on.matvec(xi);
      for (int64_t o = 0; o < 14; ++o)
        ASSERT_EQ(y_batch[n * 14 + o], yi[o]) << n << "," << o;
    }
  }
}

TEST(RemapCampaign, InertRemapAxisFailsLoudly) {
  // remap = 1 with every repair move off would double the grid with no-op
  // rows; the campaign must reject it up front.
  faultsim::CampaignOptions co;
  co.remap.enabled = true;
  co.remap.spare_rows = 0;
  co.remap.spare_cols = 0;
  co.remap.pair_swap = false;
  EXPECT_THROW(faultsim::Campaign c(co), std::invalid_argument);
}

TEST(RemapArray, RemappedChipsAreSeedPure) {
  // Same seed -> same plan and same effective weights, run after run.
  const analog::RramDeviceParams dev = quiet_dev();
  Rng wrng(9);
  Tensor w({10, 14});
  wrng.fill_normal(w, 0.0f, 0.5f);
  const faultsim::FaultSpec spec = faultsim::stuck_at(0.1);
  const analog::FaultList list = spec.list();
  const RemapParams params = full_params(1, 1);

  Rng prog_a(21), prog_b(21);
  analog::CrossbarArray a(w, dev, prog_a, /*tile=*/6, &list, &params);
  analog::CrossbarArray b(w, dev, prog_b, /*tile=*/6, &list, &params);
  const Tensor wa = a.effective_weights();
  const Tensor wb = b.effective_weights();
  for (int64_t i = 0; i < wa.size(); ++i) ASSERT_EQ(wa[i], wb[i]);
  const RemapStats sa = a.remap_stats(), sb = b.remap_stats();
  EXPECT_EQ(sa.defects, sb.defects);
  EXPECT_EQ(sa.swapped, sb.swapped);
  EXPECT_EQ(sa.spared, sb.spared);
  EXPECT_EQ(sa.residual, sb.residual);
  EXPECT_EQ(sa.spare_rows_used, sb.spare_rows_used);
  EXPECT_EQ(sa.spare_cols_used, sb.spare_cols_used);
}

TEST(RemapArray, MatmulAndMatvecStayBitIdenticalUnderRemap) {
  // Remapping re-lowers the tile before any batched execution, so the
  // bit-exactness contract must survive it — including with the full
  // periphery stack on.
  CN_SKIP_UNLESS_BIT_EXACT_TARGET();
  analog::RramDeviceParams dev = quiet_dev();
  dev.program_sigma = 0.15f;
  dev.conductance_levels = 16;
  dev.readout.adc_bits = 8;
  dev.readout.dac_bits = 6;
  constexpr int64_t kIn = 23, kOut = 11, kBatch = 6;
  Rng rng(31);
  Tensor w({kOut, kIn});
  rng.fill_normal(w, 0.0f, 0.5f);
  const faultsim::FaultSpec spec = faultsim::stuck_at(0.1);
  const analog::FaultList list = spec.list();
  const RemapParams params = full_params();
  Rng prog(32);
  analog::CrossbarArray xbar(w, dev, prog, /*tile=*/8, &list, &params);
  EXPECT_GT(xbar.remap_stats().defects, 0);

  Tensor x({kBatch, kIn});
  rng.fill_normal(x, 0.0f, 1.0f);
  const Tensor y_batch = xbar.matmul(x);
  Tensor x_cm({kIn, kBatch});
  for (int64_t n = 0; n < kBatch; ++n)
    for (int64_t k = 0; k < kIn; ++k) x_cm[k * kBatch + n] = x[n * kIn + k];
  const Tensor y_cols = xbar.matmul_cols(x_cm);
  Tensor xi({kIn});
  for (int64_t n = 0; n < kBatch; ++n) {
    std::copy(x.data() + n * kIn, x.data() + (n + 1) * kIn, xi.data());
    const Tensor yi = xbar.matvec(xi);
    for (int64_t o = 0; o < kOut; ++o) {
      ASSERT_EQ(y_batch[n * kOut + o], yi[o]) << "matmul " << n << "," << o;
      ASSERT_EQ(y_cols[n * kOut + o], yi[o]) << "matmul_cols " << n << "," << o;
    }
  }
}

TEST(RemapFarm, SamplesAndStatsIdenticalAcrossThreadAndSlotCounts) {
  auto& f = fixture();
  const analog::RramDeviceParams dev = quiet_dev();
  const faultsim::FaultSpec spec = faultsim::stuck_at(0.05);

  auto run = [&](int64_t max_live, int threads) {
    runtime::ChipFarmOptions fo;
    fo.instances = 3;
    fo.seed = 77;
    fo.max_live = max_live;
    fo.remap = full_params();
    runtime::ChipFarm farm(f.model, dev, fo, spec.list());
    runtime::McEngineOptions eo;
    eo.batch_size = 32;
    eo.threads = threads;
    const core::McResult acc = runtime::McEngine(farm, eo).accuracy(f.ds.test);
    RemapStats st;
    for (int64_t s = 0; s < 3; ++s) st += farm.chip_remap_stats(s);
    return std::make_pair(acc, st);
  };
  const auto [acc_serial, st_serial] = run(1, 1);
  const auto [acc_pooled, st_pooled] = run(3, 0);
  ASSERT_EQ(acc_serial.samples.size(), 3u);
  for (size_t s = 0; s < 3; ++s)
    EXPECT_DOUBLE_EQ(acc_serial.samples[s], acc_pooled.samples[s]) << "chip " << s;
  EXPECT_GT(st_serial.defects, 0);
  EXPECT_EQ(st_serial.defects, st_pooled.defects);
  EXPECT_EQ(st_serial.swapped, st_pooled.swapped);
  EXPECT_EQ(st_serial.spared, st_pooled.spared);
  EXPECT_EQ(st_serial.residual, st_pooled.residual);
}

// ---------- campaign protection axis ----------

TEST(RemapCampaign, MatchedPairGridAbsorbsDefectsAndNeverTrailsRemapOff) {
  // The acceptance grid: stuck-at ladder x {remap off, remap on} under
  // matched per-scenario seeds. Remap-on must absorb at least the per-tile
  // spare budget in defective devices and post accuracy >= remap-off at
  // every severity; the fault-free control row must be bit-identical across
  // the axis with nothing to absorb.
  auto& f = fixture();
  faultsim::CampaignOptions co;
  co.chips = 3;
  co.seed = 99;
  co.batch_size = 32;
  co.dev = quiet_dev();  // ideal device: defects are the only error source
  co.remap = full_params(2, 2);
  faultsim::Campaign c(co);
  c.add_model("baseline", f.model, false);
  c.add_fault(faultsim::fault_free());
  c.add_stuck_at_grid({0.02, 0.05, 0.1});
  ASSERT_EQ(c.num_scenarios(), 8);  // 4 fault specs x 1 model x 2 remap variants

  const faultsim::CampaignReport r = c.run(f.ds.test);
  ASSERT_EQ(r.scenarios.size(), 8u);
  const auto off = r.for_model("baseline", false);
  const auto on = r.for_model("baseline", true);
  ASSERT_EQ(off.size(), 4u);
  ASSERT_EQ(on.size(), 4u);
  const int64_t budget = co.remap.spare_rows + co.remap.spare_cols;
  for (size_t i = 0; i < off.size(); ++i) {
    ASSERT_EQ(off[i]->fault_kind, on[i]->fault_kind);
    ASSERT_EQ(off[i]->severity, on[i]->severity);
    if (off[i]->fault_kind == "none") {
      // Control: remapping a defect-free chip changes nothing at all.
      ASSERT_EQ(off[i]->acc.samples.size(), on[i]->acc.samples.size());
      for (size_t s = 0; s < off[i]->acc.samples.size(); ++s)
        EXPECT_DOUBLE_EQ(off[i]->acc.samples[s], on[i]->acc.samples[s]);
      EXPECT_EQ(on[i]->defects, 0);
      EXPECT_EQ(on[i]->absorbed, 0);
      continue;
    }
    // Matched pairs: any gap is the controller's doing.
    EXPECT_GE(on[i]->acc.mean, off[i]->acc.mean)
        << off[i]->fault_kind << " @ " << off[i]->severity;
    EXPECT_GE(on[i]->absorbed, budget)
        << off[i]->fault_kind << " @ " << off[i]->severity;
    EXPECT_GT(on[i]->defects, 0);
    EXPECT_GE(on[i]->defects, on[i]->absorbed + on[i]->residual);
  }
  EXPECT_GE(r.total_absorbed(), 3 * budget);

  // Report plumbing: the JSON carries the axis and the repair accounting.
  const std::string j = r.to_json();
  EXPECT_NE(j.find("\"remap\": true"), std::string::npos);
  EXPECT_NE(j.find("\"remap\": false"), std::string::npos);
  EXPECT_NE(j.find("\"absorbed\":"), std::string::npos);
  EXPECT_NE(j.find("\"total_absorbed\":"), std::string::npos);
  EXPECT_GT(r.mean_accuracy("baseline", true),
            r.mean_accuracy("baseline", false) - 1e-12);
}

TEST(RemapCampaign, ConfigKeysBuildTheAxisAndTyposFailLoudly) {
  const core::KeyValueConfig cfg = core::KeyValueConfig::from_string(
      "chips = 2\n"
      "remap = 1\n"
      "remap.spare_rows = 3\n"
      "remap.spare_cols = 1\n"
      "remap.pair_swap = 0\n"
      "stuck.rates = 0.05\n");
  faultsim::Campaign c = faultsim::campaign_from_config(cfg);
  // (control + 1 stuck) x 2 remap variants per registered model.
  auto& f = fixture();
  c.add_model("baseline", f.model, false);
  EXPECT_EQ(c.num_scenarios(), 4);

  // A typo'd remap key must throw, not silently run without the axis.
  const core::KeyValueConfig bad = core::KeyValueConfig::from_string(
      "remap.spare_row = 3\nstuck.rates = 0.05\n");
  EXPECT_THROW(faultsim::campaign_from_config(bad), std::runtime_error);
}

TEST(RemapFarm, FactorModeRejectsRemap) {
  auto& f = fixture();
  analog::VariationModel vm{analog::VariationKind::kLognormal, 0.3f};
  runtime::ChipFarmOptions fo;
  fo.instances = 1;
  fo.remap.enabled = true;
  EXPECT_THROW(runtime::ChipFarm farm(f.model, vm, fo), std::invalid_argument);
}

}  // namespace
}  // namespace cn::remap
