#include "core/search.h"

#include <gtest/gtest.h>

#include "core/trainer.h"
#include "data/synthetic.h"
#include "models/lenet.h"

namespace cn::core {
namespace {

struct SearchFixture {
  data::SplitDataset ds;
  nn::Sequential model{"m"};

  SearchFixture() {
    data::DigitsSpec spec;
    spec.train_count = 400;
    spec.test_count = 120;
    ds = data::make_digits(spec);
    Rng rng(1);
    model = models::lenet5(1, 28, 10, rng);
    TrainConfig cfg;
    cfg.epochs = 2;
    train(model, ds.train, ds.test, cfg);
  }
};

SearchFixture& fixture() {
  static SearchFixture f;
  return f;
}

SearchConfig quick_config(nn::Sequential& model) {
  SearchConfig cfg;
  cfg.candidate_layers = conv_layer_indices(model);
  cfg.ratio_menu = {0.0f, 0.5f};
  cfg.overhead_limit = 0.10f;
  cfg.reinforce.iterations = 6;
  cfg.comp_train.epochs = 1;
  cfg.comp_train.lr = 2e-3f;
  cfg.mc.samples = 3;
  cfg.variation = analog::VariationModel{analog::VariationKind::kLognormal, 0.5f};
  return cfg;
}

TEST(PlanFromActions, MapsRatiosToFilterCounts) {
  auto& f = fixture();
  SearchConfig cfg = quick_config(f.model);
  // conv1 has 6 filters, conv2 has 16.
  CompensationPlan plan = plan_from_actions(f.model, cfg, {1, 1});
  ASSERT_EQ(plan.entries.size(), 2u);
  EXPECT_EQ(plan.entries[0].second, 3);
  EXPECT_EQ(plan.entries[1].second, 8);
  CompensationPlan none = plan_from_actions(f.model, cfg, {0, 0});
  EXPECT_TRUE(none.empty());
  EXPECT_FALSE(plan.empty());
}

TEST(EvaluatePlan, OverBudgetSkipsTrainingWithNegativeReward) {
  auto& f = fixture();
  SearchConfig cfg = quick_config(f.model);
  cfg.overhead_limit = 1e-6f;  // everything is over budget
  CompensationPlan plan = plan_from_actions(f.model, cfg, {1, 1});
  ExploredPlan ep = evaluate_plan(f.model, f.ds.train, f.ds.test, cfg, plan);
  EXPECT_FALSE(ep.trained);
  EXPECT_LT(ep.reward, 0.0f);
  EXPECT_FLOAT_EQ(ep.reward, -static_cast<float>(ep.overhead));
}

TEST(EvaluatePlan, EmptyPlanEvaluatesWithoutTraining) {
  auto& f = fixture();
  SearchConfig cfg = quick_config(f.model);
  CompensationPlan plan = plan_from_actions(f.model, cfg, {0, 0});
  ExploredPlan ep = evaluate_plan(f.model, f.ds.train, f.ds.test, cfg, plan);
  EXPECT_FALSE(ep.trained);
  EXPECT_DOUBLE_EQ(ep.overhead, 0.0);
  EXPECT_GT(ep.acc_mean, 0.0);
  // Reward = acc_mean - acc_std - overhead (Eq. 12).
  EXPECT_NEAR(ep.reward, ep.acc_mean - ep.acc_std, 1e-6);
}

TEST(EvaluatePlan, WithinBudgetTrainsAndReportsOverhead) {
  auto& f = fixture();
  SearchConfig cfg = quick_config(f.model);
  CompensationPlan plan = plan_from_actions(f.model, cfg, {1, 0});
  ExploredPlan ep = evaluate_plan(f.model, f.ds.train, f.ds.test, cfg, plan);
  EXPECT_TRUE(ep.trained);
  EXPECT_GT(ep.overhead, 0.0);
  EXPECT_LE(ep.overhead, cfg.overhead_limit);
}

TEST(RlSearch, ProducesBestPlanAndTrace) {
  auto& f = fixture();
  SearchConfig cfg = quick_config(f.model);
  SearchOutcome out = rl_search(f.model, f.ds.train, f.ds.test, cfg);
  EXPECT_FALSE(out.trace.empty());
  EXPECT_LE(out.trace.size(), 6u);  // memoized: at most one eval per iteration
  EXPECT_EQ(out.best_plan.entries.size(), 2u);
  // Best reward must match the best in the trace.
  float best = -1e30f;
  for (const auto& t : out.trace) best = std::max(best, t.reward);
  EXPECT_FLOAT_EQ(out.best.reward, best);
}

}  // namespace
}  // namespace cn::core
