#include "core/lipschitz.h"

#include <gtest/gtest.h>

#include <cmath>

#include "analog/variation.h"
#include "nn/dense.h"
#include "tensor/ops.h"
#include "tensor/rng.h"

namespace cn::core {
namespace {

TEST(Lambda, ClosedForm) {
  // λ = k / (e^{σ²/2} + 3√((e^{σ²}-1)e^{σ²})), Eq. (10).
  const double sigma = 0.5;
  const double bound = analog::VariationModel::lognormal_bound3(sigma);
  EXPECT_NEAR(lipschitz_lambda(1.0, sigma), 1.0 / bound, 1e-12);
  EXPECT_NEAR(lipschitz_lambda(2.0, sigma), 2.0 / bound, 1e-12);
  // σ=0: no variation, λ = k.
  EXPECT_NEAR(lipschitz_lambda(1.0, 0.0), 1.0, 1e-12);
}

TEST(Lambda, MonotoneDecreasingInSigma) {
  EXPECT_GT(lipschitz_lambda(1.0, 0.1), lipschitz_lambda(1.0, 0.3));
  EXPECT_GT(lipschitz_lambda(1.0, 0.3), lipschitz_lambda(1.0, 0.5));
}

TEST(LipschitzConfig, LambdaFloor) {
  LipschitzConfig cfg;
  cfg.k = 1.0f;
  cfg.sigma = 0.5f;
  cfg.lambda_min = 0.9f;
  EXPECT_NEAR(cfg.lambda(), 0.9, 1e-6);
  cfg.lambda_min = 0.0f;
  EXPECT_LT(cfg.lambda(), 0.5);
}

TEST(SpectralNorm, DiagonalMatrix) {
  Tensor w({3, 3});
  w[0] = 2.0f;
  w[4] = -5.0f;
  w[8] = 1.0f;
  EXPECT_NEAR(spectral_norm(w), 5.0f, 1e-3f);
}

TEST(SpectralNorm, ScaledIdentity) {
  Tensor w({4, 4});
  for (int64_t i = 0; i < 4; ++i) w[i * 4 + i] = 0.7f;
  EXPECT_NEAR(spectral_norm(w), 0.7f, 1e-4f);
}

TEST(SpectralNorm, RectangularMatchesSvdFact) {
  // For a rank-1 matrix u v^T, spectral norm = |u||v|.
  Tensor w({3, 4});
  const float u[3] = {1, 2, 2};   // |u| = 3
  const float v[4] = {2, 0, 0, 0};  // |v| = 2
  for (int64_t i = 0; i < 3; ++i)
    for (int64_t j = 0; j < 4; ++j) w[i * 4 + j] = u[i] * v[j];
  EXPECT_NEAR(spectral_norm(w), 6.0f, 1e-3f);
}

TEST(OrthPenalty, ZeroForScaledOrthogonal) {
  // W = λ·I has penalty 0 at target λ.
  const float lambda = 0.5f;
  Tensor w({4, 4});
  for (int64_t i = 0; i < 4; ++i) w[i * 4 + i] = lambda;
  EXPECT_NEAR(orthogonal_penalty(w, lambda), 0.0f, 1e-8f);
  EXPECT_GT(orthogonal_penalty(w, 0.9f), 1e-3f);
}

TEST(OrthPenalty, GradientMatchesFiniteDifference) {
  Rng rng(1);
  nn::Param p(Shape{3, 5}, "w");
  rng.fill_normal(p.value, 0.0f, 0.5f);
  const float beta = 0.7f, lambda = 0.6f;
  p.zero_grad();
  orthogonal_penalty_grad(p, beta, lambda);
  const float eps = 1e-3f;
  for (int64_t i = 0; i < p.size(); ++i) {
    const float orig = p.value[i];
    p.value[i] = orig + eps;
    const float lp = beta * orthogonal_penalty(p.value, lambda);
    p.value[i] = orig - eps;
    const float lm = beta * orthogonal_penalty(p.value, lambda);
    p.value[i] = orig;
    EXPECT_NEAR(p.grad[i], (lp - lm) / (2 * eps), 2e-2f) << "index " << i;
  }
}

TEST(OrthPenalty, TallMatrixGradientMatchesFiniteDifference) {
  // rows > cols exercises the W^T W branch.
  Rng rng(2);
  nn::Param p(Shape{6, 3}, "w");
  rng.fill_normal(p.value, 0.0f, 0.5f);
  p.zero_grad();
  orthogonal_penalty_grad(p, 1.0f, 0.5f);
  const float eps = 1e-3f;
  for (int64_t i = 0; i < p.size(); i += 2) {
    const float orig = p.value[i];
    // The penalty used in the wide branch differs by a constant from the
    // tall branch; finite-difference the same branch via the public helper.
    auto penalty_tall = [&](const Tensor& w) {
      Tensor G = matmul_tn(w.reshaped({6, 3}), w.reshaped({6, 3}));
      for (int64_t d = 0; d < 3; ++d) G[d * 3 + d] -= 0.25f;
      return sum_sq(G);
    };
    p.value[i] = orig + eps;
    const float lp = penalty_tall(p.value);
    p.value[i] = orig - eps;
    const float lm = penalty_tall(p.value);
    p.value[i] = orig;
    EXPECT_NEAR(p.grad[i], (lp - lm) / (2 * eps), 2e-2f) << "index " << i;
  }
}

TEST(OrthPenalty, BiasIgnored) {
  nn::Param b(Shape{8}, "b");
  b.value.fill(3.0f);
  b.zero_grad();
  EXPECT_FLOAT_EQ(orthogonal_penalty_grad(b, 1.0f, 0.5f), 0.0f);
  for (int64_t i = 0; i < b.size(); ++i) EXPECT_FLOAT_EQ(b.grad[i], 0.0f);
}

TEST(OrthPenalty, RegularizationDrivesSpectralNormToLambda) {
  // Gradient descent on the penalty alone converges to ‖W‖₂ ≈ λ.
  Rng rng(3);
  nn::Param p(Shape{6, 6}, "w");
  rng.fill_normal(p.value, 0.0f, 1.0f);
  const float lambda = 0.5f;
  for (int step = 0; step < 4000; ++step) {
    p.zero_grad();
    orthogonal_penalty_grad(p, 1.0f, lambda);
    for (int64_t i = 0; i < p.size(); ++i) p.value[i] -= 0.01f * p.grad[i];
  }
  EXPECT_NEAR(spectral_norm(p.value), lambda, 0.02f);
}

TEST(ApplyRegularization, DisabledReturnsZeroAndLeavesGrads) {
  nn::Param p(Shape{2, 2}, "w");
  p.value.fill(1.0f);
  p.zero_grad();
  LipschitzConfig cfg;  // enabled = false
  EXPECT_FLOAT_EQ(apply_lipschitz_regularization({&p}, cfg), 0.0f);
  EXPECT_FLOAT_EQ(p.grad[0], 0.0f);
}

TEST(ApplyRegularization, SkipsFrozenParams) {
  nn::Param p(Shape{2, 2}, "w");
  p.value.fill(1.0f);
  p.trainable = false;
  p.zero_grad();
  LipschitzConfig cfg;
  cfg.enabled = true;
  cfg.beta = 1.0f;
  apply_lipschitz_regularization({&p}, cfg);
  EXPECT_FLOAT_EQ(p.grad[0], 0.0f);
}

// Property test over sigma grid: a layer regularized to ‖W‖₂ ≤ λ(σ) cannot
// amplify deviations even at the 3-sigma factor bound — the paper's core
// suppression argument (Eq. 6-10).
class SuppressionProperty : public ::testing::TestWithParam<double> {};

TEST_P(SuppressionProperty, PerturbedLayerIsNonExpansiveAtBound) {
  const double sigma = GetParam();
  const double lambda = lipschitz_lambda(1.0, sigma);
  const double bound = analog::VariationModel::lognormal_bound3(sigma);
  // W with spectral norm exactly λ (scaled identity-ish orthogonal).
  Tensor w({4, 4});
  for (int64_t i = 0; i < 4; ++i) w[i * 4 + i] = static_cast<float>(lambda);
  // Worst-case factor matrix: every factor at the 3-sigma bound.
  Tensor w_pert = scale(w, static_cast<float>(bound));
  EXPECT_LE(spectral_norm(w_pert), 1.0f + 1e-4f);
}

INSTANTIATE_TEST_SUITE_P(SigmaGrid, SuppressionProperty,
                         ::testing::Values(0.1, 0.2, 0.3, 0.4, 0.5));

}  // namespace
}  // namespace cn::core
