// The faultsim subsystem: fault-model math, zero-severity no-ops, chip-farm
// fault injection determinism, the layer-selective fault sweep, and the
// campaign engine's grid execution + report aggregation + JSON emitter.
#include "faultsim/campaign.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include <gtest/gtest.h>

#include "core/compensation.h"
#include "core/trainer.h"
#include "data/synthetic.h"
#include "models/lenet.h"
#include "runtime/chip_farm.h"
#include "runtime/mc_engine.h"
#include "runtime/scheduler.h"

namespace cn::faultsim {
namespace {

analog::RramDeviceParams quiet_dev() {
  analog::RramDeviceParams dev;
  dev.g_min = 1e-6f;
  dev.g_max = 1e-4f;
  return dev;
}

// Shared tiny trained model + dataset (mirrors test_runtime's fixture).
struct Fixture {
  data::SplitDataset ds;
  nn::Sequential model{"m"};

  Fixture() {
    data::DigitsSpec spec;
    spec.train_count = 400;
    spec.test_count = 60;
    ds = data::make_digits(spec);
    Rng rng(1);
    model = models::lenet5(1, 28, 10, rng);
    core::TrainConfig cfg;
    cfg.epochs = 2;
    core::train(model, ds.train, ds.test, cfg);
  }
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

Tensor random_weight(int64_t out, int64_t in, uint64_t seed) {
  Rng rng(seed);
  Tensor w({out, in});
  rng.fill_normal(w, 0.0f, 0.5f);
  return w;
}

// ---------- fault-model math ----------

TEST(FaultModels, ZeroSeverityIsABitIdenticalNoOp) {
  // A fault list of zero-severity models must leave a programmed array
  // bit-identical to a fault-free one, including the rng stream (no draws).
  analog::RramDeviceParams dev = quiet_dev();
  dev.program_sigma = 0.2f;
  Tensor w = random_weight(12, 18, 3);

  FaultSpec zero;
  zero.models.push_back(std::make_shared<StuckAtFault>(0.0, 0.0));
  zero.models.push_back(std::make_shared<DriftFault>(1.0));
  zero.models.push_back(std::make_shared<IrDropFault>(0.0, 0.0));
  zero.models.push_back(std::make_shared<ThermalFault>(300.0));
  const analog::FaultList list = zero.list();

  Rng prog_a(7), prog_b(7);
  analog::CrossbarArray clean(w, dev, prog_a, /*tile=*/8);
  analog::CrossbarArray faulted(w, dev, prog_b, /*tile=*/8, &list);
  // Same rng stream position afterwards: programming draws must line up.
  EXPECT_EQ(prog_a.next_u64(), prog_b.next_u64());
  Tensor we_clean = clean.effective_weights();
  Tensor we_fault = faulted.effective_weights();
  for (int64_t i = 0; i < we_clean.size(); ++i)
    ASSERT_EQ(we_clean[i], we_fault[i]) << "weight " << i;
}

TEST(FaultModels, StuckAtRateOneGroundsEveryCell) {
  // rate_low = 1: every physical cell sits at g_min, so every differential
  // weight collapses to exactly zero.
  analog::RramDeviceParams dev = quiet_dev();
  dev.program_sigma = 0.3f;
  Tensor w = random_weight(9, 14, 5);
  FaultSpec s = stuck_at(1.0, /*high_fraction=*/0.0);
  const analog::FaultList list = s.list();
  Rng prog(11);
  analog::CrossbarArray xbar(w, dev, prog, /*tile=*/6, &list);
  Tensor we = xbar.effective_weights();
  for (int64_t i = 0; i < we.size(); ++i) ASSERT_EQ(we[i], 0.0f) << "weight " << i;
}

TEST(FaultModels, StuckAtRateScalesDefectCount) {
  // At a moderate rate the defect count lands near rate * cells and the
  // stuck cells sit exactly at g_min or g_max (visible through weights that
  // moved to extreme values). Checked statistically on the factor grid.
  analog::RramDeviceParams dev = quiet_dev();
  Tensor w = random_weight(32, 32, 8);
  FaultSpec s = stuck_at(0.25, 0.5);
  const analog::FaultList list = s.list();
  Rng prog_a(21), prog_b(21);
  analog::CrossbarArray clean(w, dev, prog_a, 32);
  analog::CrossbarArray faulted(w, dev, prog_b, 32, &list);
  Tensor we_clean = clean.effective_weights();
  Tensor we_fault = faulted.effective_weights();
  int64_t changed = 0;
  for (int64_t i = 0; i < we_clean.size(); ++i)
    if (we_clean[i] != we_fault[i]) ++changed;
  // P(pair untouched) = (1-rate)^2 = 0.5625 -> E[changed] ~ 0.4375 * 1024.
  EXPECT_GT(changed, 300);
  EXPECT_LT(changed, 600);
}

TEST(FaultModels, DriftIsMonotoneInTimePerCell) {
  // Same seed -> same per-cell nu draws, so a longer t strictly shrinks
  // every conductance: g(t=100) <= g(t=10) <= g0 cell by cell.
  constexpr int64_t kRows = 6, kCols = 10, kN = kRows * kCols;
  analog::FaultModel::TileCtx ctx;
  ctx.rows = kRows;
  ctx.cols = kCols;
  ctx.array_rows = kRows;
  ctx.array_cols = kCols;
  const analog::RramDeviceParams dev = quiet_dev();

  std::vector<float> base(static_cast<size_t>(2 * kN));
  Rng fill(33);
  for (float& g : base)
    g = static_cast<float>(fill.uniform(dev.g_min, dev.g_max));

  auto drifted = [&](double t) {
    std::vector<float> g = base;
    DriftFault f(t, 0.05, 0.02);
    Rng rng(44);  // identical stream for every t
    f.apply(g.data(), g.data() + kN, ctx, dev, rng);
    return g;
  };
  const std::vector<float> g10 = drifted(10.0);
  const std::vector<float> g100 = drifted(100.0);
  for (size_t i = 0; i < base.size(); ++i) {
    ASSERT_LE(g10[i], base[i]) << "cell " << i;
    ASSERT_LE(g100[i], g10[i]) << "cell " << i;
  }
  // And it genuinely decays somewhere.
  double total_base = 0.0, total_100 = 0.0;
  for (size_t i = 0; i < base.size(); ++i) {
    total_base += base[i];
    total_100 += g100[i];
  }
  EXPECT_LT(total_100, 0.9 * total_base);
}

TEST(FaultModels, IrDropAttenuatesFarCellsMore) {
  constexpr int64_t kRows = 8, kCols = 8, kN = kRows * kCols;
  analog::FaultModel::TileCtx ctx;
  ctx.rows = kRows;
  ctx.cols = kCols;
  ctx.array_rows = kRows;
  ctx.array_cols = kCols;
  const analog::RramDeviceParams dev = quiet_dev();
  std::vector<float> gp(static_cast<size_t>(kN), 1e-4f);
  std::vector<float> gn(static_cast<size_t>(kN), 1e-4f);
  IrDropFault f(0.2, 0.1);
  Rng rng(1);
  f.apply(gp.data(), gn.data(), ctx, dev, rng);
  // Near corner (0,0) untouched; far corner keeps 1 - 0.2 - 0.1 = 0.7.
  EXPECT_FLOAT_EQ(gp[0], 1e-4f);
  EXPECT_NEAR(gp[static_cast<size_t>(kN - 1)], 0.7e-4f, 1e-9f);
  // Monotone along a wordline (columns) and a bitline (rows).
  for (int64_t c = 1; c < kCols; ++c) ASSERT_LT(gp[static_cast<size_t>(c)], gp[static_cast<size_t>(c - 1)]);
  for (int64_t r = 1; r < kRows; ++r)
    ASSERT_LT(gp[static_cast<size_t>(r * kCols)], gp[static_cast<size_t>((r - 1) * kCols)]);
  EXPECT_FLOAT_EQ(gn[static_cast<size_t>(kN - 1)], gp[static_cast<size_t>(kN - 1)]);
}

TEST(FaultModels, ThermalScalesSigmasAndPerturbsCells) {
  analog::RramDeviceParams dev = quiet_dev();
  dev.program_sigma = 0.2f;
  dev.readout.read_sigma = 0.1f;
  ThermalFault hot(432.0, 300.0);  // sqrt(432/300) = 1.2
  hot.prepare_device(dev);
  EXPECT_NEAR(dev.program_sigma, 0.24f, 1e-6f);
  EXPECT_NEAR(dev.readout.read_sigma, 0.12f, 1e-6f);

  // Above-nominal temperature perturbs conductances; nominal is a no-op.
  analog::RramDeviceParams ideal = quiet_dev();
  Tensor w = random_weight(10, 10, 13);
  FaultSpec hot_spec = thermal(400.0);
  const analog::FaultList hot_list = hot_spec.list();
  Rng prog_a(3), prog_b(3);
  analog::CrossbarArray clean(w, ideal, prog_a, 16);
  analog::CrossbarArray heated(w, ideal, prog_b, 16, &hot_list);
  Tensor we_clean = clean.effective_weights();
  Tensor we_hot = heated.effective_weights();
  double diff = 0.0;
  for (int64_t i = 0; i < we_clean.size(); ++i)
    diff += std::abs(static_cast<double>(we_clean[i]) - we_hot[i]);
  EXPECT_GT(diff, 0.0);
}

// ---------- chip-farm fault injection ----------

TEST(FaultFarm, ZeroRateFaultsMatchFaultFreeChipBitForBit) {
  auto& f = fixture();
  analog::RramDeviceParams dev = quiet_dev();
  dev.program_sigma = 0.2f;
  runtime::ChipFarmOptions fo;
  fo.instances = 2;
  fo.seed = 9;

  FaultSpec zero;
  zero.models.push_back(std::make_shared<StuckAtFault>(0.0, 0.0));
  zero.models.push_back(std::make_shared<DriftFault>(1.0));
  runtime::ChipFarm clean(f.model, dev, fo);
  runtime::ChipFarm faulted(f.model, dev, fo, zero.list());
  runtime::McEngineOptions eo;
  eo.batch_size = 32;
  const core::McResult a = runtime::McEngine(clean, eo).accuracy(f.ds.test);
  const core::McResult b = runtime::McEngine(faulted, eo).accuracy(f.ds.test);
  ASSERT_EQ(a.samples.size(), b.samples.size());
  for (size_t s = 0; s < a.samples.size(); ++s)
    EXPECT_DOUBLE_EQ(a.samples[s], b.samples[s]) << "chip " << s;
}

TEST(FaultFarm, FaultSweepStartSiteGatesInjection) {
  auto& f = fixture();
  const analog::RramDeviceParams dev = quiet_dev();
  FaultSpec s = stuck_at(0.1);
  const int64_t sites = static_cast<int64_t>(f.model.analog_sites().size());

  auto accuracy_from = [&](int64_t first_site) {
    runtime::ChipFarmOptions fo;
    fo.instances = 2;
    fo.seed = 31;
    fo.first_site = first_site;
    runtime::ChipFarm farm(f.model, dev, fo, s.list());
    runtime::McEngineOptions eo;
    eo.batch_size = 32;
    return runtime::McEngine(farm, eo).accuracy(f.ds.test);
  };
  // Injecting past the last site leaves the chip fault-free (ideal device).
  runtime::ChipFarmOptions fo;
  fo.instances = 2;
  fo.seed = 31;
  runtime::ChipFarm clean(f.model, dev, fo);
  runtime::McEngineOptions eo;
  eo.batch_size = 32;
  const core::McResult none = runtime::McEngine(clean, eo).accuracy(f.ds.test);
  const core::McResult past = accuracy_from(sites);
  for (size_t i = 0; i < none.samples.size(); ++i)
    EXPECT_DOUBLE_EQ(none.samples[i], past.samples[i]);
  // Injecting everywhere hurts (10% stuck cells on an ideal device).
  const core::McResult all = accuracy_from(0);
  EXPECT_LT(all.mean, none.mean);
  // Crossbar farms without faults still reject first_site.
  EXPECT_THROW(
      {
        runtime::ChipFarmOptions bad;
        bad.instances = 1;
        bad.first_site = 1;
        runtime::ChipFarm reject(f.model, dev, bad);
      },
      std::invalid_argument);
}

TEST(FaultFarm, CompensatedModelsCarryBaseConvsToTheSubstrate) {
  // The corrected protection variant wraps convs in CompensatedConv2D; its
  // analog base must be programmed to the crossbar (via the override slot)
  // and receive faults, while generator/compensator stay digital. Without
  // this, the campaign's compensation-on column would be silently fault-free
  // in its most sensitive layers.
  auto& f = fixture();
  core::CompensationPlan plan;
  const auto convs = core::conv_layer_indices(f.model);
  ASSERT_FALSE(convs.empty());
  plan.entries.emplace_back(convs[0], 3);
  Rng crng(55);
  nn::Sequential corrected = core::with_compensation(f.model, plan, crng);

  // Ideal device: the substrate-backed corrected chip matches the digital
  // corrected model, so the base conv really executes through the crossbar.
  Rng prog(56);
  nn::Sequential chip = analog::program_to_crossbars(corrected, quiet_dev(), prog);
  int overrides = 0;
  for (int64_t i = 0; i < chip.num_layers(); ++i)
    chip.layer(i).visit_analog_bases(
        [&](const nn::Layer&, std::unique_ptr<nn::Layer>& slot) {
          ASSERT_NE(slot, nullptr);
          EXPECT_EQ(slot->kind(), "crossbar_conv2d");
          ++overrides;
        });
  EXPECT_EQ(overrides, 1);
  EXPECT_EQ(chip.layer(convs[0]).kind(), "compensated_conv2d");
  const float acc_ref = core::evaluate(corrected, f.ds.test, 32);
  const float acc_chip = core::evaluate(chip, f.ds.test, 32);
  EXPECT_NEAR(acc_chip, acc_ref, 1e-6f);
  // Training through the substrate is rejected.
  Tensor x({1, 1, 28, 28});
  chip.forward(x, false);
  EXPECT_THROW(chip.layer(convs[0]).backward(Tensor({1, 6, 24, 24})),
               std::logic_error);

  // Faults reach the compensated base: grounding every cell from site 0
  // zeroes the override's effective weights too.
  FaultSpec ground = stuck_at(1.0, 0.0);
  const analog::FaultList glist = ground.list();
  Rng gprog(57);
  nn::Sequential grounded =
      analog::program_to_crossbars(corrected, quiet_dev(), gprog, 128, &glist, 0);
  grounded.layer(convs[0]).visit_analog_bases(
      [&](const nn::Layer&, std::unique_ptr<nn::Layer>& slot) {
        auto* xc = dynamic_cast<analog::CrossbarConv2D*>(slot.get());
        ASSERT_NE(xc, nullptr);
        Tensor we = xc->array().effective_weights();
        for (int64_t i = 0; i < we.size(); ++i)
          ASSERT_EQ(we[i], 0.0f) << "weight " << i;
      });
}

// ---------- campaign engine ----------

Campaign small_campaign(const Fixture& f, int64_t max_live, int threads) {
  CampaignOptions co;
  co.chips = 3;
  co.seed = 77;
  co.batch_size = 32;
  co.max_live = max_live;
  co.threads = threads;
  co.dev = quiet_dev();
  co.dev.program_sigma = 0.1f;
  Campaign c(co);
  c.add_model("baseline", f.model, false);
  c.add_fault(fault_free());
  c.add_fault(stuck_at(0.05));
  c.add_fault(drift(100.0));
  c.add_fault(ir_drop(0.1));
  return c;
}

TEST(Campaign, BitIdenticalAcrossThreadAndSlotCounts) {
  auto& f = fixture();
  const CampaignReport serial = small_campaign(f, 1, 1).run(f.ds.test);
  const CampaignReport pooled = small_campaign(f, 3, 0).run(f.ds.test);
  ASSERT_EQ(serial.scenarios.size(), 4u);
  ASSERT_EQ(pooled.scenarios.size(), serial.scenarios.size());
  for (size_t i = 0; i < serial.scenarios.size(); ++i) {
    const ScenarioResult& a = serial.scenarios[i];
    const ScenarioResult& b = pooled.scenarios[i];
    EXPECT_EQ(a.fault_kind, b.fault_kind);
    ASSERT_EQ(a.acc.samples.size(), b.acc.samples.size());
    for (size_t s = 0; s < a.acc.samples.size(); ++s)
      EXPECT_DOUBLE_EQ(a.acc.samples[s], b.acc.samples[s])
          << "scenario " << i << " chip " << s;
    EXPECT_DOUBLE_EQ(a.acc.mean, b.acc.mean);
    EXPECT_EQ(a.catastrophic, b.catastrophic);
  }
}

TEST(Campaign, GridRunsPairedVariantsAndAggregates) {
  // The acceptance grid: 4 fault kinds x severities x compensation on/off
  // = 24 scenarios. Both variants here share the same trained network, so
  // the paired per-scenario chip seeds must make their rows bit-identical —
  // the matched-pairs property the real compensation comparison relies on.
  auto& f = fixture();
  CampaignOptions co;
  co.chips = 2;
  co.seed = 5;
  co.batch_size = 32;
  co.catastrophic_below = 0.15;
  co.dev = quiet_dev();
  Campaign c(co);
  c.add_model("suppressed", f.model, false);
  c.add_model("corrected", f.model, true);
  c.add_stuck_at_grid({0.005, 0.02, 0.5});
  c.add_drift_grid({10.0, 100.0, 1000.0});
  c.add_ir_drop_grid({0.05, 0.1, 0.2});
  c.add_thermal_grid({340.0, 400.0, 500.0});
  ASSERT_EQ(c.num_scenarios(), 24);

  const CampaignReport r = c.run(f.ds.test);
  ASSERT_EQ(r.scenarios.size(), 24u);
  EXPECT_EQ(r.chips, 2);

  const auto sup = r.for_model("suppressed");
  const auto cor = r.for_model("corrected");
  ASSERT_EQ(sup.size(), 12u);
  ASSERT_EQ(cor.size(), 12u);
  for (size_t i = 0; i < sup.size(); ++i) {
    EXPECT_EQ(sup[i]->fault_kind, cor[i]->fault_kind);
    EXPECT_EQ(sup[i]->severity, cor[i]->severity);
    EXPECT_FALSE(sup[i]->compensation);
    EXPECT_TRUE(cor[i]->compensation);
    ASSERT_EQ(sup[i]->acc.samples.size(), 2u);
    for (size_t s = 0; s < 2; ++s)
      EXPECT_DOUBLE_EQ(sup[i]->acc.samples[s], cor[i]->acc.samples[s])
          << "pairing broken at scenario " << i;
  }
  EXPECT_DOUBLE_EQ(r.mean_accuracy("suppressed"), r.mean_accuracy("corrected"));

  // Catastrophic accounting: totals equal the sum over rows, and the harsh
  // scenarios (50% stuck cells) must degrade below the mild ones.
  int64_t sum = 0;
  for (const ScenarioResult& s : r.scenarios) sum += s.catastrophic;
  EXPECT_EQ(sum, r.total_catastrophic());
  double harsh = 1.0, mild = 0.0;
  for (const ScenarioResult& s : r.scenarios) {
    if (s.fault_kind == "stuck_at" && s.severity == 0.5) harsh = s.acc.mean;
    if (s.fault_kind == "stuck_at" && s.severity == 0.005) mild = s.acc.mean;
  }
  EXPECT_LT(harsh, mild);

  // JSON report: headline keys and one row per scenario.
  const std::string j = r.to_json();
  EXPECT_NE(j.find("\"name\": \"faultsim_campaign\""), std::string::npos);
  EXPECT_NE(j.find("\"scenarios\": ["), std::string::npos);
  EXPECT_NE(j.find("\"fault\": \"thermal\""), std::string::npos);
  EXPECT_NE(j.find("\"compensation\": true"), std::string::npos);
  size_t rows = 0;
  for (size_t p = j.find("\"fault\":"); p != std::string::npos;
       p = j.find("\"fault\":", p + 1))
    ++rows;
  EXPECT_EQ(rows, 24u);
}

TEST(Campaign, SequentialVsParallelReportsAreByteIdentical) {
  // The scheduling-independence contract: the CampaignReport JSON — every
  // sample, every remap defect count, every aggregate — must be
  // byte-identical whether scenarios run one at a time or N at a time, with
  // the matched-pair remap axis on (the axis most sensitive to seed
  // misalignment). Concurrency beyond the shared pool width provisions a
  // dedicated scheduler pool, so this exercises real concurrency even on a
  // 1-core box.
  auto& f = fixture();
  auto make = [&](int64_t parallel) {
    CampaignOptions co;
    co.chips = 2;
    co.seed = 77;
    co.batch_size = 32;
    co.parallel_scenarios = parallel;
    co.dev = quiet_dev();
    co.dev.program_sigma = 0.1f;
    co.dev.readout.read_sigma = 0.05f;  // the stochastic read path too
    co.remap.enabled = true;
    Campaign c(co);
    c.add_model("baseline", f.model, false);
    c.add_fault(fault_free());
    c.add_fault(stuck_at(0.05));
    c.add_fault(drift(100.0));
    return c;
  };
  CampaignReport seq = make(1).run(f.ds.test);
  ASSERT_EQ(seq.scenarios.size(), 6u);  // 3 fault specs x 2 remap variants
  seq.wall_s = 0.0;
  const std::string ref = seq.to_json();
  for (int64_t parallel : {2, 4}) {
    CampaignReport par = make(parallel).run(f.ds.test);
    par.wall_s = 0.0;
    EXPECT_EQ(par.to_json(), ref) << "parallel_scenarios=" << parallel;
  }
}

TEST(Campaign, ConcurrentFarmsOnSharedPoolMatchSequential) {
  // Stress the farm/engine concurrency contract the scheduler depends on:
  // many crossbar farms built from one shared base model, programming and
  // evaluating at once, must each reproduce exactly what they produce alone.
  // Shared inputs (base model, fault models, dataset) are read-only; every
  // mutable structure is per-farm.
  auto& f = fixture();
  const FaultSpec spec = stuck_at(0.05);
  const analog::FaultList list = spec.list();
  analog::RramDeviceParams dev = quiet_dev();
  dev.program_sigma = 0.1f;
  dev.readout.read_sigma = 0.05f;
  constexpr int64_t kJobs = 8;
  auto eval_job = [&](int64_t i) {
    runtime::ChipFarmOptions fo;
    fo.instances = 2;
    fo.seed = 100 + static_cast<uint64_t>(i);
    fo.max_live = 1;
    runtime::ChipFarm farm(f.model, dev, fo, list);
    runtime::McEngineOptions eo;
    eo.batch_size = 32;
    return runtime::McEngine(farm, eo).accuracy(f.ds.test).samples;
  };
  std::vector<std::vector<double>> alone(kJobs), together(kJobs);
  for (int64_t i = 0; i < kJobs; ++i) alone[static_cast<size_t>(i)] = eval_job(i);
  runtime::parallel_indexed(kJobs, 4, [&](int64_t i) {
    together[static_cast<size_t>(i)] = eval_job(i);
  });
  for (int64_t i = 0; i < kJobs; ++i) {
    ASSERT_EQ(alone[static_cast<size_t>(i)].size(),
              together[static_cast<size_t>(i)].size());
    for (size_t s = 0; s < alone[static_cast<size_t>(i)].size(); ++s)
      EXPECT_EQ(alone[static_cast<size_t>(i)][s],
                together[static_cast<size_t>(i)][s])
          << "farm " << i << " chip " << s;
  }
}

TEST(Campaign, RejectsNegativeParallelScenarios) {
  CampaignOptions co;
  co.parallel_scenarios = -1;
  EXPECT_THROW(Campaign{co}, std::invalid_argument);
}

TEST(Campaign, ConfigFileBuildsTheGrid) {
  const core::KeyValueConfig cfg = core::KeyValueConfig::from_string(
      "# campaign\n"
      "chips = 4\n"
      "seed = 11\n"
      "catastrophic = 0.25\n"
      "program_sigma = 0.1\n"
      "stuck.rates = 0.01, 0.05\n"
      "drift.times = 10, 100\n"
      "ir.alphas = 0.1\n"
      "thermal.temps = 400\n");
  Campaign c = campaign_from_config(cfg);
  // control + 2 + 2 + 1 + 1 fault specs; no models yet.
  EXPECT_EQ(c.num_faults(), 7);
  EXPECT_EQ(c.num_models(), 0);
  auto& f = fixture();
  c.add_model("baseline", f.model, false);
  EXPECT_EQ(c.num_scenarios(), 7);
}

}  // namespace
}  // namespace cn::faultsim
