#include <gtest/gtest.h>

#include "nn/activations.h"
#include "nn/conv2d.h"
#include "nn/dense.h"
#include "nn/dropout.h"
#include "nn/pooling.h"
#include "nn/sequential.h"
#include "tensor/ops.h"

namespace cn::nn {
namespace {

TEST(Dense, ForwardMatchesManual) {
  Dense d(2, 3, "fc");
  // W (3,2) = [[1,2],[3,4],[5,6]], b = [0.5, -0.5, 0].
  d.weight().value = Tensor({3, 2}, std::vector<float>{1, 2, 3, 4, 5, 6});
  d.bias().value = Tensor::from({0.5f, -0.5f, 0.0f});
  Tensor x({1, 2}, std::vector<float>{1, -1});
  Tensor y = d.forward(x, false);
  EXPECT_FLOAT_EQ(y[0], 1 - 2 + 0.5f);
  EXPECT_FLOAT_EQ(y[1], 3 - 4 - 0.5f);
  EXPECT_FLOAT_EQ(y[2], 5 - 6 + 0.0f);
}

TEST(Dense, RejectsWrongInputWidth) {
  Dense d(4, 2);
  EXPECT_THROW(d.forward(Tensor({1, 3}), false), std::invalid_argument);
}

TEST(Dense, VariationFactorsScaleWeights) {
  Dense d(1, 1);
  d.weight().value = Tensor({1, 1}, std::vector<float>{2.0f});
  d.bias().value.zero();
  Tensor x({1, 1}, std::vector<float>{1.0f});
  EXPECT_FLOAT_EQ(d.forward(x, false)[0], 2.0f);
  d.set_weight_factors(Tensor({1, 1}, std::vector<float>{1.5f}));
  EXPECT_FLOAT_EQ(d.forward(x, false)[0], 3.0f);
  d.clear_weight_factors();
  EXPECT_FLOAT_EQ(d.forward(x, false)[0], 2.0f);
}

TEST(Dense, VariationFactorShapeChecked) {
  Dense d(2, 2);
  EXPECT_THROW(d.set_weight_factors(Tensor({3, 3})), std::invalid_argument);
}

TEST(Dense, CloneIsIndependent) {
  Dense d(2, 2);
  d.weight().value.fill(1.0f);
  auto c = d.clone();
  auto* dc = static_cast<Dense*>(c.get());
  dc->weight().value.fill(5.0f);
  EXPECT_FLOAT_EQ(d.weight().value[0], 1.0f);
}

TEST(Conv2D, IdentityKernelPassesThrough) {
  // 1x1 kernel with weight 1: output == input.
  Conv2D conv(1, 1, 1, 1, 0, 4, 4, "c");
  conv.weight().value.fill(1.0f);
  conv.bias().value.zero();
  Rng rng(1);
  Tensor x({2, 1, 4, 4});
  rng.fill_normal(x, 0.0f, 1.0f);
  Tensor y = conv.forward(x, false);
  for (int64_t i = 0; i < x.size(); ++i) EXPECT_FLOAT_EQ(y[i], x[i]);
}

TEST(Conv2D, KnownSmallConvolution) {
  // 2x2 image, 2x2 kernel of ones, no pad: single output = sum of pixels.
  Conv2D conv(1, 1, 2, 1, 0, 2, 2, "c");
  conv.weight().value.fill(1.0f);
  conv.bias().value = Tensor::from({0.25f});
  Tensor x({1, 1, 2, 2}, std::vector<float>{1, 2, 3, 4});
  Tensor y = conv.forward(x, false);
  ASSERT_EQ(y.size(), 1);
  EXPECT_FLOAT_EQ(y[0], 10.25f);
}

TEST(Conv2D, PaddedGeometry) {
  Conv2D conv(3, 8, 3, 1, 1, 16, 16, "c");
  EXPECT_EQ(conv.out_h(), 16);
  EXPECT_EQ(conv.out_w(), 16);
  Tensor x({2, 3, 16, 16});
  Tensor y = conv.forward(x, false);
  EXPECT_EQ(y.shape(), (Shape{2, 8, 16, 16}));
}

TEST(Conv2D, StridedGeometry) {
  Conv2D conv(1, 4, 3, 2, 1, 8, 8, "c");
  EXPECT_EQ(conv.out_h(), 4);
  Tensor y = conv.forward(Tensor({1, 1, 8, 8}), false);
  EXPECT_EQ(y.shape(), (Shape{1, 4, 4, 4}));
}

TEST(Conv2D, VariationChangesOutput) {
  Conv2D conv(1, 1, 1, 1, 0, 2, 2, "c");
  conv.weight().value.fill(1.0f);
  Tensor x({1, 1, 2, 2}, std::vector<float>{1, 1, 1, 1});
  Tensor f(conv.weight().value.shape());
  f.fill(2.0f);
  conv.set_weight_factors(f);
  Tensor y = conv.forward(x, false);
  EXPECT_FLOAT_EQ(y[0], 2.0f);
  // nominal_weight unchanged by the factors.
  EXPECT_FLOAT_EQ(conv.nominal_weight()[0], 1.0f);
}

TEST(ReLU, ClampsNegatives) {
  ReLU r;
  Tensor x = Tensor::from({-1, 0, 2});
  Tensor y = r.forward(x, false);
  EXPECT_FLOAT_EQ(y[0], 0.0f);
  EXPECT_FLOAT_EQ(y[1], 0.0f);
  EXPECT_FLOAT_EQ(y[2], 2.0f);
}

TEST(ReLU, BackwardMasks) {
  ReLU r;
  Tensor x = Tensor::from({-1, 3});
  r.forward(x, true);
  Tensor g = r.backward(Tensor::from({5, 7}));
  EXPECT_FLOAT_EQ(g[0], 0.0f);
  EXPECT_FLOAT_EQ(g[1], 7.0f);
}

TEST(Tanh, ForwardRange) {
  Tanh t;
  Tensor y = t.forward(Tensor::from({-100, 0, 100}), false);
  EXPECT_NEAR(y[0], -1.0f, 1e-5);
  EXPECT_FLOAT_EQ(y[1], 0.0f);
  EXPECT_NEAR(y[2], 1.0f, 1e-5);
}

TEST(Flatten, RoundTrip) {
  Flatten f;
  Tensor x({2, 3, 4, 5});
  Tensor y = f.forward(x, true);
  EXPECT_EQ(y.shape(), (Shape{2, 60}));
  Tensor g = f.backward(Tensor({2, 60}));
  EXPECT_EQ(g.shape(), (Shape{2, 3, 4, 5}));
}

TEST(MaxPool, SelectsMaximum) {
  MaxPool2D p(2);
  Tensor x({1, 1, 2, 2}, std::vector<float>{1, 5, 3, 2});
  Tensor y = p.forward(x, true);
  ASSERT_EQ(y.size(), 1);
  EXPECT_FLOAT_EQ(y[0], 5.0f);
  Tensor g = p.backward(Tensor::from({1.0f}).reshaped({1, 1, 1, 1}));
  EXPECT_FLOAT_EQ(g[1], 1.0f);  // gradient routed to the max location
  EXPECT_FLOAT_EQ(g[0], 0.0f);
}

TEST(MaxPool, RejectsIndivisibleInput) {
  MaxPool2D p(2);
  EXPECT_THROW(p.forward(Tensor({1, 1, 3, 4}), false), std::invalid_argument);
}

TEST(AvgPool, Averages) {
  AvgPool2D p(2);
  Tensor x({1, 1, 2, 2}, std::vector<float>{1, 2, 3, 6});
  Tensor y = p.forward(x, false);
  EXPECT_FLOAT_EQ(y[0], 3.0f);
}

TEST(AvgPool, BackwardDistributesUniformly) {
  AvgPool2D p(2);
  p.forward(Tensor({1, 1, 2, 2}), true);
  Tensor g = p.backward(Tensor({1, 1, 1, 1}, std::vector<float>{4.0f}));
  for (int64_t i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(g[i], 1.0f);
}

TEST(Dropout, InferenceIsIdentity) {
  Dropout d(0.5f, 1);
  Tensor x = Tensor::from({1, 2, 3});
  Tensor y = d.forward(x, false);
  for (int64_t i = 0; i < 3; ++i) EXPECT_FLOAT_EQ(y[i], x[i]);
}

TEST(Dropout, TrainPreservesExpectation) {
  Dropout d(0.3f, 2);
  Tensor x({10000}, 1.0f);
  Tensor y = d.forward(x, true);
  double s = 0.0;
  for (int64_t i = 0; i < y.size(); ++i) s += y[i];
  EXPECT_NEAR(s / y.size(), 1.0, 0.05);
}

TEST(Dropout, RejectsBadRate) {
  EXPECT_THROW(Dropout(1.0f, 1), std::invalid_argument);
  EXPECT_THROW(Dropout(-0.1f, 1), std::invalid_argument);
}

TEST(Sequential, ComposesAndClones) {
  Sequential m("m");
  m.emplace<Dense>(3, 4, "a");
  m.emplace<ReLU>();
  m.emplace<Dense>(4, 2, "b");
  EXPECT_EQ(m.num_layers(), 3);
  EXPECT_EQ(m.params().size(), 4u);
  EXPECT_EQ(m.num_params(), 3 * 4 + 4 + 4 * 2 + 2);
  EXPECT_EQ(m.analog_sites().size(), 2u);

  Sequential c = m.clone_model();
  static_cast<Dense&>(c.layer(0)).weight().value.fill(9.0f);
  EXPECT_NE(static_cast<Dense&>(m.layer(0)).weight().value[0], 9.0f);
}

TEST(Sequential, SetTrainableFreezesAll) {
  Sequential m("m");
  m.emplace<Dense>(2, 2);
  m.set_trainable(false);
  EXPECT_EQ(m.num_trainable_params(), 0);
  m.set_trainable(true);
  EXPECT_EQ(m.num_trainable_params(), m.num_params());
}

TEST(Sequential, ReplaceLayerSwaps) {
  Sequential m("m");
  m.emplace<Dense>(2, 2, "x");
  auto old = m.replace_layer(0, std::make_unique<ReLU>("r"));
  EXPECT_EQ(old->kind(), "dense");
  EXPECT_EQ(m.layer(0).kind(), "relu");
  EXPECT_THROW(m.replace_layer(5, std::make_unique<ReLU>()), std::out_of_range);
}

}  // namespace
}  // namespace cn::nn
