#include "nn/serialize.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "models/lenet.h"
#include "nn/dense.h"
#include "nn/init.h"
#include "tensor/rng.h"

namespace cn::nn {
namespace {

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(Serialize, RoundTripRestoresWeights) {
  Rng rng(1);
  Sequential a = models::lenet5(1, 28, 10, rng);
  const std::string path = temp_path("cn_test_roundtrip.wts");
  save_weights(a, path);

  Rng rng2(99);
  Sequential b = models::lenet5(1, 28, 10, rng2);
  load_weights(b, path);

  auto pa = a.params();
  auto pb = b.params();
  ASSERT_EQ(pa.size(), pb.size());
  for (size_t i = 0; i < pa.size(); ++i)
    for (int64_t j = 0; j < pa[i]->size(); ++j)
      ASSERT_FLOAT_EQ(pa[i]->value[j], pb[i]->value[j]);
  std::remove(path.c_str());
}

TEST(Serialize, LoadedModelProducesIdenticalOutputs) {
  Rng rng(2);
  Sequential a = models::lenet5(1, 28, 10, rng);
  const std::string path = temp_path("cn_test_outputs.wts");
  save_weights(a, path);
  Rng rng2(3);
  Sequential b = models::lenet5(1, 28, 10, rng2);
  load_weights(b, path);
  Tensor x({2, 1, 28, 28});
  rng.fill_normal(x, 0.0f, 1.0f);
  Tensor ya = a.forward(x, false);
  Tensor yb = b.forward(x, false);
  for (int64_t i = 0; i < ya.size(); ++i) EXPECT_FLOAT_EQ(ya[i], yb[i]);
  std::remove(path.c_str());
}

TEST(Serialize, ShapeMismatchRejected) {
  Rng rng(4);
  Sequential a("a");
  a.emplace<Dense>(4, 4, "d");
  const std::string path = temp_path("cn_test_mismatch.wts");
  save_weights(a, path);
  Sequential b("b");
  b.emplace<Dense>(4, 5, "d");
  EXPECT_THROW(load_weights(b, path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(Serialize, ParamCountMismatchRejected) {
  Rng rng(5);
  Sequential a("a");
  a.emplace<Dense>(2, 2, "d");
  const std::string path = temp_path("cn_test_count.wts");
  save_weights(a, path);
  Sequential b("b");
  b.emplace<Dense>(2, 2, "d1");
  b.emplace<Dense>(2, 2, "d2");
  EXPECT_THROW(load_weights(b, path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(Serialize, MissingFileThrows) {
  Sequential m("m");
  m.emplace<Dense>(2, 2);
  EXPECT_THROW(load_weights(m, "/nonexistent/dir/x.wts"), std::runtime_error);
  EXPECT_THROW(save_weights(m, "/nonexistent/dir/x.wts"), std::runtime_error);
}

TEST(Serialize, CorruptFileRejected) {
  const std::string path = temp_path("cn_test_corrupt.wts");
  {
    std::ofstream os(path, std::ios::binary);
    os << "not a weights file";
  }
  Sequential m("m");
  m.emplace<Dense>(2, 2);
  EXPECT_THROW(load_weights(m, path), std::runtime_error);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace cn::nn
