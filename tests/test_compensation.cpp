#include "core/compensation.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/montecarlo.h"
#include "core/trainer.h"
#include "data/synthetic.h"
#include "models/lenet.h"
#include "nn/init.h"
#include "tensor/ops.h"

namespace cn::core {
namespace {

TEST(AdaptiveAvgPool, IntegerRatioMatchesPlainPool) {
  Rng rng(1);
  Tensor x({2, 3, 8, 8});
  rng.fill_normal(x, 0.0f, 1.0f);
  Tensor y = adaptive_avgpool(x, 4, 4);
  EXPECT_EQ(y.shape(), (Shape{2, 3, 4, 4}));
  // Each output = mean of a 2x2 block.
  const float expect = (x[0] + x[1] + x[8] + x[9]) / 4.0f;
  EXPECT_NEAR(y[0], expect, 1e-5f);
}

TEST(AdaptiveAvgPool, NonIntegerRatioPreservesMean) {
  Rng rng(2);
  Tensor x({1, 1, 14, 14});
  rng.fill_normal(x, 0.0f, 1.0f);
  Tensor y = adaptive_avgpool(x, 10, 10);
  EXPECT_EQ(y.shape(), (Shape{1, 1, 10, 10}));
  // Identity case: out == in.
  Tensor z = adaptive_avgpool(x, 14, 14);
  for (int64_t i = 0; i < x.size(); ++i) EXPECT_FLOAT_EQ(z[i], x[i]);
}

TEST(AdaptiveAvgPool, BackwardIsAdjoint) {
  // <pool(x), g> == <x, pool_backward(g)>.
  Rng rng(3);
  Tensor x({1, 2, 7, 7});
  rng.fill_normal(x, 0.0f, 1.0f);
  Tensor y = adaptive_avgpool(x, 5, 5);
  Tensor g(y.shape());
  rng.fill_normal(g, 0.0f, 1.0f);
  Tensor gx = adaptive_avgpool_backward(g, 7, 7);
  EXPECT_NEAR(dot(y, g), dot(x, gx), 1e-3f);
}

TEST(ConcatSplit, RoundTrip) {
  Rng rng(4);
  Tensor a({2, 3, 4, 4}), b({2, 5, 4, 4});
  rng.fill_normal(a, 0.0f, 1.0f);
  rng.fill_normal(b, 0.0f, 1.0f);
  Tensor c = concat_channels(a, b);
  EXPECT_EQ(c.shape(), (Shape{2, 8, 4, 4}));
  Tensor ga, gb;
  split_channels(c, 3, ga, gb);
  for (int64_t i = 0; i < a.size(); ++i) EXPECT_FLOAT_EQ(ga[i], a[i]);
  for (int64_t i = 0; i < b.size(); ++i) EXPECT_FLOAT_EQ(gb[i], b[i]);
}

TEST(ConcatChannels, RejectsMismatchedSpatial) {
  EXPECT_THROW(concat_channels(Tensor({1, 1, 4, 4}), Tensor({1, 1, 5, 5})),
               std::invalid_argument);
}

TEST(CompensatedConv, IdentityInitIsNoop) {
  // Untrained compensation must not change the base layer's output.
  Rng rng(5);
  auto base = std::make_unique<nn::Conv2D>(3, 6, 3, 1, 1, 8, 8, "c");
  nn::he_normal(base->weight().value, 27, rng);
  nn::Sequential ref("ref");
  ref.add(base->clone());
  CompensatedConv2D cc(std::move(base), 3, rng);

  Tensor x({2, 3, 8, 8});
  rng.fill_normal(x, 0.0f, 1.0f);
  Tensor y_base = ref.forward(x, false);
  Tensor y_comp = cc.forward(x, false);
  ASSERT_EQ(y_base.shape(), y_comp.shape());
  for (int64_t i = 0; i < y_base.size(); ++i)
    EXPECT_NEAR(y_comp[i], y_base[i], 0.15f);  // identity + small noise taps
}

TEST(CompensatedConv, OnlyBaseIsAnalog) {
  Rng rng(6);
  auto base = std::make_unique<nn::Conv2D>(2, 4, 3, 1, 1, 6, 6, "c");
  CompensatedConv2D cc(std::move(base), 2, rng);
  std::vector<nn::PerturbableWeight*> sites;
  cc.collect_analog(sites);
  ASSERT_EQ(sites.size(), 1u);
  EXPECT_EQ(sites[0]->site_label(), "c");
}

TEST(CompensatedConv, WeightCountMatchesFormula) {
  // generator: m filters of 1x1x(l+n) + m biases;
  // compensator: n filters of 1x1x(n+m) + n biases.
  Rng rng(7);
  const int64_t l = 3, n = 6, m = 2;
  auto base = std::make_unique<nn::Conv2D>(l, n, 3, 1, 1, 8, 8, "c");
  CompensatedConv2D cc(std::move(base), m, rng);
  EXPECT_EQ(cc.compensation_weight_count(), m * (l + n) + m + n * (n + m) + n);
}

TEST(AttachCompensation, ReplacesConvInPlace) {
  data::DigitsSpec spec;
  spec.train_count = 50;
  spec.test_count = 10;
  data::SplitDataset ds = data::make_digits(spec);
  Rng rng(8);
  nn::Sequential m = models::lenet5(1, 28, 10, rng);
  const int64_t before_params = m.num_params();
  attach_compensation(m, 0, 3, rng);
  EXPECT_EQ(m.layer(0).kind(), "compensated_conv2d");
  EXPECT_GT(m.num_params(), before_params);
  // Still forward-compatible.
  Tensor y = m.forward(ds.test.images, false);
  EXPECT_EQ(y.dim(1), 10);
}

TEST(AttachCompensation, RejectsNonConvLayer) {
  Rng rng(9);
  nn::Sequential m = models::lenet5(1, 28, 10, rng);
  EXPECT_THROW(attach_compensation(m, 1, 3, rng), std::invalid_argument);  // ReLU
}

TEST(WithCompensation, LeavesOriginalUntouched) {
  Rng rng(10);
  nn::Sequential m = models::lenet5(1, 28, 10, rng);
  CompensationPlan plan;
  plan.entries.emplace_back(0, 2);
  nn::Sequential c = with_compensation(m, plan, rng);
  EXPECT_EQ(m.layer(0).kind(), "conv2d");
  EXPECT_EQ(c.layer(0).kind(), "compensated_conv2d");
}

TEST(ConvLayerIndices, FindsLeNetConvs) {
  Rng rng(11);
  nn::Sequential m = models::lenet5(1, 28, 10, rng);
  auto idx = conv_layer_indices(m);
  ASSERT_EQ(idx.size(), 2u);
  EXPECT_EQ(idx[0], 0);
  EXPECT_EQ(m.layer(idx[1]).kind(), "conv2d");
}

TEST(Overhead, ZeroWithoutCompensation) {
  Rng rng(12);
  nn::Sequential m = models::lenet5(1, 28, 10, rng);
  EXPECT_DOUBLE_EQ(compensation_overhead(m), 0.0);
}

TEST(Overhead, MatchesManualRatio) {
  Rng rng(13);
  nn::Sequential m = models::lenet5(1, 28, 10, rng);
  const int64_t orig = m.num_params();
  CompensationPlan plan;
  plan.entries.emplace_back(0, 3);
  nn::Sequential c = with_compensation(m, plan, rng);
  auto* cc = dynamic_cast<CompensatedConv2D*>(&c.layer(0));
  ASSERT_NE(cc, nullptr);
  const double expect = static_cast<double>(cc->compensation_weight_count()) / orig;
  EXPECT_NEAR(compensation_overhead(c), expect, 1e-12);
}

TEST(TrainCompensation, FreezesBaseAndImproves) {
  data::DigitsSpec spec;
  spec.train_count = 600;
  spec.test_count = 150;
  data::SplitDataset ds = data::make_digits(spec);
  Rng rng(14);
  nn::Sequential m = models::lenet5(1, 28, 10, rng);
  TrainConfig cfg;
  cfg.epochs = 2;
  train(m, ds.train, ds.test, cfg);

  CompensationPlan plan;
  plan.entries.emplace_back(0, 3);
  plan.entries.emplace_back(3, 8);
  nn::Sequential c = with_compensation(m, plan, rng);
  auto* cc0 = dynamic_cast<CompensatedConv2D*>(&c.layer(0));
  const Tensor base_w_before = cc0->base().weight().value;

  analog::VariationModel vm{analog::VariationKind::kLognormal, 0.5f};
  TrainConfig ccfg;
  ccfg.epochs = 2;
  ccfg.lr = 2e-3f;
  ccfg.variation = vm;
  train_compensation(c, ds.train, ds.test, ccfg);

  // Base conv untouched by compensation training.
  for (int64_t i = 0; i < base_w_before.size(); ++i)
    EXPECT_FLOAT_EQ(cc0->base().weight().value[i], base_w_before[i]);

  // Under variations, the compensated model beats the raw one.
  McOptions mc;
  mc.samples = 8;
  McResult raw = mc_accuracy(m, ds.test, vm, mc);
  McResult comp = mc_accuracy(c, ds.test, vm, mc);
  EXPECT_GT(comp.mean, raw.mean - 0.02);
}

TEST(CompensatedConv, CloneIsDeepAndEquivalent) {
  Rng rng(15);
  auto base = std::make_unique<nn::Conv2D>(2, 4, 3, 1, 1, 6, 6, "c");
  nn::he_normal(base->weight().value, 18, rng);
  CompensatedConv2D cc(std::move(base), 2, rng);
  auto clone = cc.clone();
  Tensor x({1, 2, 6, 6});
  rng.fill_normal(x, 0.0f, 1.0f);
  Tensor y1 = cc.forward(x, false);
  Tensor y2 = clone->forward(x, false);
  for (int64_t i = 0; i < y1.size(); ++i) EXPECT_FLOAT_EQ(y1[i], y2[i]);
}

}  // namespace
}  // namespace cn::core
