#include "tensor/threadpool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace cn {
namespace {

TEST(ThreadPool, CoversWholeRangeExactlyOnce) {
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(0, 1000, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) hits[static_cast<size_t>(i)].fetch_add(1);
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, EmptyRangeIsNoop) {
  std::atomic<int> calls{0};
  parallel_for(5, 5, [&](int64_t, int64_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
  parallel_for(5, 3, [&](int64_t, int64_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPool, SmallRangeRunsInline) {
  std::atomic<int64_t> total{0};
  parallel_for(
      0, 3, [&](int64_t lo, int64_t hi) { total.fetch_add(hi - lo); },
      /*min_chunk=*/10);
  EXPECT_EQ(total.load(), 3);
}

TEST(ThreadPool, RepeatedInvocationsAreStable) {
  // Regression test for the completion-signal race: many short parallel
  // sections in a row must not deadlock or crash.
  for (int iter = 0; iter < 2000; ++iter) {
    std::atomic<int64_t> sum{0};
    parallel_for(0, 64, [&](int64_t lo, int64_t hi) {
      int64_t local = 0;
      for (int64_t i = lo; i < hi; ++i) local += i;
      sum.fetch_add(local);
    });
    ASSERT_EQ(sum.load(), 64 * 63 / 2);
  }
}

TEST(ThreadPool, DedicatedPoolJoinsOnDestruction) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(3);
    EXPECT_EQ(pool.size(), 3u);
    pool.parallel_for(0, 100, [&](int64_t lo, int64_t hi) {
      done.fetch_add(static_cast<int>(hi - lo));
    });
  }
  EXPECT_EQ(done.load(), 100);
}

TEST(ThreadPool, GlobalPoolSingleton) {
  EXPECT_EQ(&ThreadPool::global(), &ThreadPool::global());
  EXPECT_GE(ThreadPool::global().size(), 1u);
}

TEST(ThreadPool, NestedParallelForRunsInlineWithoutDeadlock) {
  // Outer parallelism (runtime::McEngine samples) composes with inner
  // parallel kernels: a nested call from inside a pool task must run inline
  // instead of queueing chunks every blocked worker is waiting for.
  ThreadPool pool(2);
  std::atomic<int64_t> total{0};
  pool.parallel_for(0, 8, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      pool.parallel_for(0, 100, [&](int64_t ilo, int64_t ihi) {
        total.fetch_add(ihi - ilo);
      });
    }
  });
  EXPECT_EQ(total.load(), 800);
}

TEST(ThreadPool, CrossPoolNestedCallRunsInline) {
  // A worker of one pool calling another pool's parallel_for runs inline
  // too: dispatching would funnel every caller through the other pool's
  // queue (and can deadlock once pools wait on each other). The campaign
  // scenario scheduler relies on this — its workers own their scenario's
  // inner loops instead of contending for the global pool.
  ThreadPool outer(2);
  ThreadPool inner(2);
  std::atomic<int64_t> total{0};
  std::atomic<int> escaped{0};  // inner chunks run on a different thread
  outer.parallel_for(0, 4, [&](int64_t lo, int64_t hi) {
    const std::thread::id me = std::this_thread::get_id();
    for (int64_t i = lo; i < hi; ++i) {
      inner.parallel_for(0, 50, [&](int64_t ilo, int64_t ihi) {
        if (std::this_thread::get_id() != me) escaped.fetch_add(1);
        total.fetch_add(ihi - ilo);
      });
    }
  });
  EXPECT_EQ(total.load(), 200);
  EXPECT_EQ(escaped.load(), 0);
}

TEST(ThreadPool, CurrentThreadInPoolReflectsWorkerContext) {
  EXPECT_FALSE(ThreadPool::current_thread_in_pool());
  ThreadPool pool(2);
  std::atomic<int> inside{0};
  pool.parallel_for(0, 2, [&](int64_t, int64_t) {
    if (ThreadPool::current_thread_in_pool()) inside.fetch_add(1);
  });
  EXPECT_EQ(inside.load(), 2);
  EXPECT_FALSE(ThreadPool::current_thread_in_pool());
}

}  // namespace
}  // namespace cn
