#include "tensor/rng.h"

#include <gtest/gtest.h>

#include <cmath>

namespace cn {
namespace {

TEST(Rng, DeterministicGivenSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-2.0, 3.0);
    EXPECT_GE(u, -2.0);
    EXPECT_LT(u, 3.0);
  }
}

TEST(Rng, UniformIntBounds) {
  Rng rng(8);
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.uniform_int(10);
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 10);
  }
  EXPECT_EQ(rng.uniform_int(0), 0);
}

TEST(Rng, NormalMoments) {
  Rng rng(9);
  const int n = 200000;
  double sum = 0.0, sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.03);
}

TEST(Rng, LognormalMatchesTheory) {
  // E[e^θ] = e^{σ²/2} for θ ~ N(0, σ²).
  Rng rng(10);
  const double sigma = 0.5;
  const int n = 200000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.lognormal(0.0, sigma);
  EXPECT_NEAR(sum / n, std::exp(sigma * sigma / 2.0), 0.02);
}

TEST(Rng, BernoulliProbability) {
  Rng rng(11);
  int heads = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i)
    if (rng.bernoulli(0.3)) ++heads;
  EXPECT_NEAR(static_cast<double>(heads) / n, 0.3, 0.01);
}

TEST(Rng, ForkIndependence) {
  Rng a(12);
  Rng b = a.fork();
  // Forked stream should not track the parent.
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, FillLognormalFactorPositive) {
  Rng rng(13);
  Tensor t({1000});
  rng.fill_lognormal_factor(t, 0.5f);
  for (int64_t i = 0; i < t.size(); ++i) EXPECT_GT(t[i], 0.0f);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(14);
  std::vector<int> v{0, 1, 2, 3, 4, 5, 6, 7};
  auto orig = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

}  // namespace
}  // namespace cn
