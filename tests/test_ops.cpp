#include "tensor/ops.h"

#include <gtest/gtest.h>

#include <cmath>

#include "tensor/rng.h"

namespace cn {
namespace {

TEST(Elementwise, AddSubMul) {
  Tensor a = Tensor::from({1, 2, 3});
  Tensor b = Tensor::from({4, 5, 6});
  Tensor s = add(a, b);
  EXPECT_FLOAT_EQ(s[0], 5.0f);
  EXPECT_FLOAT_EQ(sub(b, a)[2], 3.0f);
  EXPECT_FLOAT_EQ(mul(a, b)[1], 10.0f);
  EXPECT_FLOAT_EQ(scale(a, 2.0f)[2], 6.0f);
}

TEST(Elementwise, ShapeMismatchThrows) {
  Tensor a({2}), b({3});
  EXPECT_THROW(add(a, b), std::invalid_argument);
  EXPECT_THROW(mul_inplace(a, b), std::invalid_argument);
}

TEST(Elementwise, Axpy) {
  Tensor a = Tensor::from({1, 1});
  Tensor b = Tensor::from({2, 3});
  axpy_inplace(a, 0.5f, b);
  EXPECT_FLOAT_EQ(a[0], 2.0f);
  EXPECT_FLOAT_EQ(a[1], 2.5f);
}

TEST(Reductions, SumMeanNorms) {
  Tensor a = Tensor::from({3, -4});
  EXPECT_FLOAT_EQ(sum(a), -1.0f);
  EXPECT_FLOAT_EQ(mean(a), -0.5f);
  EXPECT_FLOAT_EQ(max_abs(a), 4.0f);
  EXPECT_FLOAT_EQ(sum_sq(a), 25.0f);
  EXPECT_FLOAT_EQ(l2_norm(a), 5.0f);
}

TEST(Reductions, ArgmaxRow) {
  Tensor a({2, 3}, std::vector<float>{1, 5, 2, 9, 0, 3});
  EXPECT_EQ(argmax_row(a, 0), 1);
  EXPECT_EQ(argmax_row(a, 1), 0);
}

TEST(Matmul, SmallKnown) {
  Tensor a({2, 2}, std::vector<float>{1, 2, 3, 4});
  Tensor b({2, 2}, std::vector<float>{5, 6, 7, 8});
  Tensor c = matmul(a, b);
  EXPECT_FLOAT_EQ(c.at(0, 0), 19.0f);
  EXPECT_FLOAT_EQ(c.at(0, 1), 22.0f);
  EXPECT_FLOAT_EQ(c.at(1, 0), 43.0f);
  EXPECT_FLOAT_EQ(c.at(1, 1), 50.0f);
}

TEST(Matmul, InnerDimMismatchThrows) {
  EXPECT_THROW(matmul(Tensor({2, 3}), Tensor({2, 2})), std::invalid_argument);
}

TEST(Matmul, TransposedVariantsAgree) {
  Rng rng(3);
  Tensor a({7, 5});
  Tensor b({5, 9});
  rng.fill_normal(a, 0.0f, 1.0f);
  rng.fill_normal(b, 0.0f, 1.0f);
  Tensor ref = matmul(a, b);
  // matmul_tn(a^T stored, b) == a*b
  Tensor at = transpose(a);
  Tensor viaTn = matmul_tn(at, b);
  // matmul_nt(a, b^T stored) == a*b
  Tensor bt = transpose(b);
  Tensor viaNt = matmul_nt(a, bt);
  for (int64_t i = 0; i < ref.size(); ++i) {
    EXPECT_NEAR(viaTn[i], ref[i], 1e-4f);
    EXPECT_NEAR(viaNt[i], ref[i], 1e-4f);
  }
}

TEST(Matmul, AccumulateFlag) {
  Tensor a({1, 1}, std::vector<float>{2});
  Tensor b({1, 1}, std::vector<float>{3});
  Tensor c({1, 1}, std::vector<float>{10});
  matmul_into(a, b, c, /*accumulate=*/true);
  EXPECT_FLOAT_EQ(c[0], 16.0f);
  matmul_into(a, b, c, /*accumulate=*/false);
  EXPECT_FLOAT_EQ(c[0], 6.0f);
}

TEST(Matmul, LargeParallelMatchesSerial) {
  Rng rng(11);
  Tensor a({64, 33});
  Tensor b({33, 47});
  rng.fill_normal(a, 0.0f, 1.0f);
  rng.fill_normal(b, 0.0f, 1.0f);
  Tensor c = matmul(a, b);
  // Serial reference.
  for (int64_t i = 0; i < 64; i += 17) {
    for (int64_t j = 0; j < 47; j += 13) {
      double acc = 0.0;
      for (int64_t k = 0; k < 33; ++k) acc += static_cast<double>(a.at(i, k)) * b.at(k, j);
      EXPECT_NEAR(c.at(i, j), acc, 1e-3);
    }
  }
}

TEST(Matvec, ForwardAndTransposed) {
  Tensor a({2, 3}, std::vector<float>{1, 2, 3, 4, 5, 6});
  Tensor x = Tensor::from({1, 0, -1});
  Tensor y = matvec(a, x);
  EXPECT_FLOAT_EQ(y[0], -2.0f);
  EXPECT_FLOAT_EQ(y[1], -2.0f);
  Tensor u = Tensor::from({1, -1});
  Tensor v = matvec_t(a, u);
  EXPECT_FLOAT_EQ(v[0], -3.0f);
  EXPECT_FLOAT_EQ(v[1], -3.0f);
  EXPECT_FLOAT_EQ(v[2], -3.0f);
}

TEST(Transpose, RoundTrip) {
  Rng rng(5);
  Tensor a({4, 6});
  rng.fill_normal(a, 0.0f, 1.0f);
  Tensor tt = transpose(transpose(a));
  for (int64_t i = 0; i < a.size(); ++i) EXPECT_FLOAT_EQ(tt[i], a[i]);
}

TEST(Dot, Basic) {
  EXPECT_FLOAT_EQ(dot(Tensor::from({1, 2}), Tensor::from({3, 4})), 11.0f);
}

TEST(Im2col, IdentityKernelGeometry) {
  // 1 channel, 3x3 image, 1x1 kernel: cols == image.
  ConvGeom g{1, 3, 3, 1, 1, 1, 0};
  Tensor img({9}, std::vector<float>{1, 2, 3, 4, 5, 6, 7, 8, 9});
  Tensor cols({9});
  im2col(img.data(), g, cols.data());
  for (int64_t i = 0; i < 9; ++i) EXPECT_FLOAT_EQ(cols[i], img[i]);
}

TEST(Im2col, PaddingProducesZeros) {
  ConvGeom g{1, 2, 2, 3, 3, 1, 1};  // 2x2 image, 3x3 kernel, pad 1 -> 2x2 out
  EXPECT_EQ(g.out_h(), 2);
  Tensor img({4}, std::vector<float>{1, 2, 3, 4});
  Tensor cols({9 * 4});
  im2col(img.data(), g, cols.data());
  // First kernel position (kh=0,kw=0) at output (0,0) reads img(-1,-1) = 0.
  EXPECT_FLOAT_EQ(cols[0], 0.0f);
  // Center kernel position (kh=1,kw=1) reads the image itself.
  const int64_t center_row = 4;  // (0*3+1)*3+1
  EXPECT_FLOAT_EQ(cols[center_row * 4 + 0], 1.0f);
  EXPECT_FLOAT_EQ(cols[center_row * 4 + 3], 4.0f);
}

TEST(Col2im, IsAdjointOfIm2col) {
  // <im2col(x), y> == <x, col2im(y)> for random x, y (adjoint property).
  Rng rng(9);
  ConvGeom g{2, 5, 5, 3, 3, 2, 1};
  const int64_t cols_size = g.in_c * g.k_h * g.k_w * g.out_h() * g.out_w();
  Tensor x({g.in_c * g.in_h * g.in_w});
  Tensor y({cols_size});
  rng.fill_normal(x, 0.0f, 1.0f);
  rng.fill_normal(y, 0.0f, 1.0f);
  Tensor cx({cols_size});
  im2col(x.data(), g, cx.data());
  Tensor cy({g.in_c * g.in_h * g.in_w});
  col2im(y.data(), g, cy.data());
  EXPECT_NEAR(dot(cx, y), dot(x, cy), 1e-3f);
}

TEST(Softmax, RowsSumToOne) {
  Tensor logits({2, 4}, std::vector<float>{1, 2, 3, 4, -1, 0, 1, 100});
  Tensor p = softmax_rows(logits);
  for (int64_t r = 0; r < 2; ++r) {
    double s = 0.0;
    for (int64_t c = 0; c < 4; ++c) s += p.at(r, c);
    EXPECT_NEAR(s, 1.0, 1e-5);
  }
  // Large logit dominates without overflow.
  EXPECT_NEAR(p.at(1, 3), 1.0, 1e-5);
}

}  // namespace
}  // namespace cn
