#include "data/synthetic.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "data/batcher.h"

namespace cn::data {
namespace {

TEST(Digits, ShapesAndLabels) {
  DigitsSpec spec;
  spec.train_count = 100;
  spec.test_count = 40;
  SplitDataset ds = make_digits(spec);
  EXPECT_EQ(ds.train.images.shape(), (Shape{100, 1, 28, 28}));
  EXPECT_EQ(ds.test.images.shape(), (Shape{40, 1, 28, 28}));
  EXPECT_EQ(ds.train.num_classes, 10);
  for (int l : ds.train.labels) {
    EXPECT_GE(l, 0);
    EXPECT_LT(l, 10);
  }
  // Round-robin labeling covers all classes.
  std::set<int> classes(ds.train.labels.begin(), ds.train.labels.end());
  EXPECT_EQ(classes.size(), 10u);
}

TEST(Digits, TrainSetNormalized) {
  DigitsSpec spec;
  spec.train_count = 500;
  spec.test_count = 10;
  SplitDataset ds = make_digits(spec);
  double m = 0.0, v = 0.0;
  const int64_t n = ds.train.images.size();
  for (int64_t i = 0; i < n; ++i) m += ds.train.images[i];
  m /= n;
  for (int64_t i = 0; i < n; ++i) {
    const double d = ds.train.images[i] - m;
    v += d * d;
  }
  v /= n;
  EXPECT_NEAR(m, 0.0, 1e-3);
  EXPECT_NEAR(v, 1.0, 1e-2);
}

TEST(Digits, DeterministicGivenSeed) {
  DigitsSpec spec;
  spec.train_count = 20;
  spec.test_count = 5;
  SplitDataset a = make_digits(spec);
  SplitDataset b = make_digits(spec);
  for (int64_t i = 0; i < a.train.images.size(); ++i)
    ASSERT_FLOAT_EQ(a.train.images[i], b.train.images[i]);
}

TEST(Digits, DifferentSeedsDiffer) {
  DigitsSpec a, b;
  a.train_count = b.train_count = 20;
  a.test_count = b.test_count = 5;
  b.seed = a.seed + 1;
  SplitDataset da = make_digits(a);
  SplitDataset db = make_digits(b);
  float diff = 0.0f;
  for (int64_t i = 0; i < da.train.images.size(); ++i)
    diff += std::fabs(da.train.images[i] - db.train.images[i]);
  EXPECT_GT(diff, 1.0f);
}

TEST(Objects, ShapesAndClassCount) {
  ObjectsSpec spec;
  spec.num_classes = 7;
  spec.train_count = 70;
  spec.test_count = 14;
  SplitDataset ds = make_objects(spec);
  EXPECT_EQ(ds.train.images.shape(), (Shape{70, 3, 32, 32}));
  EXPECT_EQ(ds.train.num_classes, 7);
  std::set<int> classes(ds.train.labels.begin(), ds.train.labels.end());
  EXPECT_EQ(classes.size(), 7u);
}

TEST(Objects, RejectsDegenerateClassCount) {
  ObjectsSpec spec;
  spec.num_classes = 1;
  EXPECT_THROW(make_objects(spec), std::invalid_argument);
}

TEST(Objects, SamplesOfSameClassCorrelate) {
  // Same-class images should be closer than cross-class on average.
  ObjectsSpec spec;
  spec.num_classes = 4;
  spec.train_count = 200;
  spec.test_count = 8;
  spec.noise_std = 0.2f;
  SplitDataset ds = make_objects(spec);
  auto dist = [&](int64_t i, int64_t j) {
    double d = 0.0;
    const int64_t sz = 3 * 32 * 32;
    for (int64_t k = 0; k < sz; ++k) {
      const double diff = ds.train.images[i * sz + k] - ds.train.images[j * sz + k];
      d += diff * diff;
    }
    return d;
  };
  // images 0,4,8 are class 0; 1,5 class 1 (round-robin).
  const double same = dist(0, 4) + dist(0, 8) + dist(4, 8);
  const double cross = dist(0, 1) + dist(0, 5) + dist(4, 1);
  EXPECT_LT(same, cross);
}

TEST(Dataset, HeadAndImageAccessors) {
  DigitsSpec spec;
  spec.train_count = 30;
  spec.test_count = 5;
  SplitDataset ds = make_digits(spec);
  Dataset h = ds.train.head(12);
  EXPECT_EQ(h.size(), 12);
  EXPECT_EQ(h.labels.size(), 12u);
  Tensor img = ds.train.image(3);
  EXPECT_EQ(img.shape(), (Shape{1, 28, 28}));
  for (int64_t i = 0; i < img.size(); ++i)
    EXPECT_FLOAT_EQ(img[i], ds.train.images[3 * 28 * 28 + i]);
}

TEST(Batcher, CoversDatasetOnce) {
  DigitsSpec spec;
  spec.train_count = 25;
  spec.test_count = 5;
  SplitDataset ds = make_digits(spec);
  Batcher b(ds.train, 8);
  EXPECT_EQ(b.num_batches(), 4);
  int64_t total = 0;
  for (int64_t i = 0; i < b.num_batches(); ++i) total += b.get(i).size();
  EXPECT_EQ(total, 25);
  // Last batch is the remainder.
  EXPECT_EQ(b.get(3).size(), 1);
}

TEST(Batcher, ReshuffleChangesOrderButNotContent) {
  DigitsSpec spec;
  spec.train_count = 40;
  spec.test_count = 5;
  SplitDataset ds = make_digits(spec);
  Batcher b(ds.train, 40);
  Batch before = b.get(0);
  Rng rng(3);
  b.reshuffle(rng);
  Batch after = b.get(0);
  // Same multiset of labels.
  auto sorted = [](std::vector<int> v) {
    std::sort(v.begin(), v.end());
    return v;
  };
  EXPECT_EQ(sorted(before.labels), sorted(after.labels));
  EXPECT_NE(before.labels, after.labels);  // order changed (overwhelmingly likely)
}

TEST(Gather, PicksRequestedIndices) {
  DigitsSpec spec;
  spec.train_count = 10;
  spec.test_count = 5;
  SplitDataset ds = make_digits(spec);
  Batch b = gather(ds.train, {7, 2});
  EXPECT_EQ(b.size(), 2);
  EXPECT_EQ(b.labels[0], ds.train.labels[7]);
  EXPECT_EQ(b.labels[1], ds.train.labels[2]);
}

}  // namespace
}  // namespace cn::data
