// Integration tests: optimizers reduce loss; the trainer learns separable
// synthetic tasks; variation-in-the-loop training leaves weights nominal.
#include <gtest/gtest.h>

#include "core/trainer.h"
#include "data/synthetic.h"
#include "nn/activations.h"
#include "nn/dense.h"
#include "nn/init.h"
#include "nn/loss.h"
#include "nn/optimizer.h"
#include "nn/sequential.h"
#include "tensor/ops.h"

namespace cn {
namespace {

TEST(Optimizer, SgdDescendsQuadratic) {
  // minimize 0.5*(w-3)^2 by gradient steps.
  nn::Param w(Shape{1});
  w.value[0] = 0.0f;
  nn::SGD opt(0.1f, 0.0f);
  for (int i = 0; i < 200; ++i) {
    w.zero_grad();
    w.grad[0] = w.value[0] - 3.0f;
    opt.step({&w});
  }
  EXPECT_NEAR(w.value[0], 3.0f, 1e-3f);
}

TEST(Optimizer, AdamDescendsQuadratic) {
  nn::Param w(Shape{1});
  w.value[0] = -5.0f;
  nn::Adam opt(0.1f);
  for (int i = 0; i < 500; ++i) {
    w.zero_grad();
    w.grad[0] = w.value[0] - 3.0f;
    opt.step({&w});
  }
  EXPECT_NEAR(w.value[0], 3.0f, 1e-2f);
}

TEST(Optimizer, FrozenParamUntouched) {
  nn::Param w(Shape{1});
  w.value[0] = 1.0f;
  w.trainable = false;
  w.grad[0] = 100.0f;
  nn::Adam adam(0.1f);
  adam.step({&w});
  EXPECT_FLOAT_EQ(w.value[0], 1.0f);
  nn::SGD sgd(0.1f);
  sgd.step({&w});
  EXPECT_FLOAT_EQ(w.value[0], 1.0f);
}

TEST(Optimizer, ClipGradNorm) {
  nn::Param a(Shape{2});
  a.grad[0] = 3.0f;
  a.grad[1] = 4.0f;  // norm 5
  const float pre = nn::clip_grad_norm({&a}, 1.0f);
  EXPECT_FLOAT_EQ(pre, 5.0f);
  EXPECT_NEAR(l2_norm(a.grad), 1.0f, 1e-5f);
  // Below the cap: untouched.
  nn::Param b(Shape{1});
  b.grad[0] = 0.5f;
  nn::clip_grad_norm({&b}, 1.0f);
  EXPECT_FLOAT_EQ(b.grad[0], 0.5f);
}

// A linearly separable 2-D toy dataset.
data::Dataset make_toy(int64_t n, uint64_t seed) {
  Rng rng(seed);
  data::Dataset d;
  d.num_classes = 2;
  d.images = Tensor({n, 1, 1, 2});
  d.labels.resize(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    const int label = static_cast<int>(i % 2);
    const float cx = label ? 1.5f : -1.5f;
    d.images[i * 2 + 0] = cx + static_cast<float>(rng.normal(0.0, 0.4));
    d.images[i * 2 + 1] = static_cast<float>(rng.normal(0.0, 0.4));
    d.labels[static_cast<size_t>(i)] = label;
  }
  return d;
}

TEST(Trainer, LearnsSeparableTask) {
  data::Dataset train = make_toy(400, 1);
  data::Dataset test = make_toy(100, 2);
  Rng rng(3);
  nn::Sequential m("toy");
  m.emplace<nn::Flatten>();
  m.emplace<nn::Dense>(2, 8, "d1");
  m.emplace<nn::ReLU>();
  m.emplace<nn::Dense>(8, 2, "d2");
  nn::init_model(m, rng);

  core::TrainConfig cfg;
  cfg.epochs = 20;
  cfg.lr = 1e-2f;
  core::TrainResult tr = core::train(m, train, test, cfg);
  EXPECT_GT(tr.test_acc, 0.95f);
  EXPECT_LT(tr.final_loss, 0.3f);
}

TEST(Trainer, EpochCallbackFires) {
  data::Dataset train = make_toy(64, 4);
  Rng rng(5);
  nn::Sequential m("toy");
  m.emplace<nn::Flatten>();
  m.emplace<nn::Dense>(2, 2, "d");
  nn::init_model(m, rng);
  int calls = 0;
  core::TrainConfig cfg;
  cfg.epochs = 3;
  cfg.on_epoch = [&](int, float, float) { ++calls; };
  core::train(m, train, train, cfg);
  EXPECT_EQ(calls, 3);
}

TEST(Trainer, VariationInLoopClearsAfterTraining) {
  data::Dataset train = make_toy(64, 6);
  Rng rng(7);
  nn::Sequential m("toy");
  m.emplace<nn::Flatten>();
  auto& d = m.emplace<nn::Dense>(2, 2, "d");
  nn::init_model(m, rng);
  const Tensor before = d.weight().value;

  core::TrainConfig cfg;
  cfg.epochs = 2;
  cfg.variation_in_loop = true;
  cfg.variation = analog::VariationModel{analog::VariationKind::kLognormal, 0.5f};
  m.set_trainable(false);  // freeze so we can check factors are cleared
  core::train(m, train, train, cfg);
  // Frozen weights unchanged and no residual factors: forward == nominal.
  for (int64_t i = 0; i < before.size(); ++i)
    EXPECT_FLOAT_EQ(d.weight().value[i], before[i]);
  Tensor x({1, 1, 1, 2}, std::vector<float>{1.0f, 1.0f});
  Tensor y1 = m.forward(x, false);
  m.clear_all_variations();
  Tensor y2 = m.forward(x, false);
  for (int64_t i = 0; i < y1.size(); ++i) EXPECT_FLOAT_EQ(y1[i], y2[i]);
}

TEST(Trainer, DeterministicGivenSeed) {
  data::Dataset train = make_toy(128, 8);
  auto run = [&] {
    Rng rng(9);
    nn::Sequential m("toy");
    m.emplace<nn::Flatten>();
    m.emplace<nn::Dense>(2, 4, "d1");
    m.emplace<nn::ReLU>();
    m.emplace<nn::Dense>(4, 2, "d2");
    nn::init_model(m, rng);
    core::TrainConfig cfg;
    cfg.epochs = 3;
    cfg.seed = 42;
    core::train(m, train, train, cfg);
    return static_cast<nn::Dense&>(m.layer(1)).weight().value;
  };
  Tensor w1 = run();
  Tensor w2 = run();
  for (int64_t i = 0; i < w1.size(); ++i) EXPECT_FLOAT_EQ(w1[i], w2[i]);
}

TEST(Evaluate, PerfectModelScoresOne) {
  data::Dataset d = make_toy(50, 10);
  // A hand-built classifier: sign of x coordinate.
  nn::Sequential m("hand");
  m.emplace<nn::Flatten>();
  auto& fc = m.emplace<nn::Dense>(2, 2, "d");
  fc.weight().value = Tensor({2, 2}, std::vector<float>{-1, 0, 1, 0});
  EXPECT_GT(core::evaluate(m, d), 0.97f);
}

}  // namespace
}  // namespace cn
