// End-to-end pipeline integration test on a small LeNet/digits workload.
#include "core/pipeline.h"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "models/lenet.h"

namespace cn::core {
namespace {

// Statistical slack for comparing two Monte-Carlo accuracy means: a 99.9%
// normal-approximation confidence interval on the difference. The empirical
// chip-to-chip stddev already contains the binomial measurement noise of
// scoring accuracy over n_test images, so it is not added on top; it only
// serves as a floor (p(1-p)/n_test), protecting against a small sample set
// understating its own spread. Replaces the hard-coded 0.02 slack that sat
// within one reseeding of flipping.
double mc_ordering_slack(const McResult& a, const McResult& b, int64_t n_test) {
  const double n = static_cast<double>(std::max<size_t>(1, a.samples.size()));
  auto variance_of_mean = [&](const McResult& r) {
    const double p = std::clamp(r.mean, 1e-6, 1.0 - 1e-6);
    const double binomial = p * (1.0 - p) / static_cast<double>(n_test);
    return std::max(r.stddev * r.stddev, binomial) / n;
  };
  const double z999 = 3.29;  // two-sided 99.9%
  return z999 * std::sqrt(variance_of_mean(a) + variance_of_mean(b));
}

TEST(Pipeline, FullRunRecoversAccuracy) {
  data::DigitsSpec spec;
  spec.train_count = 800;
  spec.test_count = 200;
  data::SplitDataset ds = data::make_digits(spec);

  PipelineConfig cfg;
  cfg.name = "test";
  cfg.sigma = 0.5f;
  cfg.base_train.epochs = 3;
  cfg.lipschitz_train.epochs = 3;
  cfg.lipschitz_train.lipschitz.beta = 3e-2f;
  cfg.comp_train.epochs = 3;
  cfg.comp_train.lr = 2e-3f;
  cfg.mc.samples = 32;  // the derived ordering slack scales as 1/sqrt(this);
                        // 32 keeps the 99.9% CI comfortably inside the true
                        // recovery margins (16 sat within one reseeding of
                        // the boundary; see perf notes)
  cfg.plan_mode = PlanMode::kFixedRatio;
  cfg.fixed_ratio = 0.5f;

  std::vector<std::string> stages;
  cfg.log = [&](const std::string& s) { stages.push_back(s); };

  auto make_model = [](Rng& rng) { return models::lenet5(1, 28, 10, rng); };
  PipelineResult r = run_correctnet(make_model, ds.train, ds.test, cfg);

  // Clean accuracies in sane ranges.
  EXPECT_GT(r.clean_acc_base, 0.85f);
  EXPECT_GT(r.clean_acc_lipschitz, 0.80f);

  // Degradation under variations, then recovery ordering:
  // corrected > suppression-only > baseline, up to MC sampling error.
  const int64_t n_test = ds.test.size();
  EXPECT_LT(r.base_var.mean, r.clean_acc_base);
  EXPECT_GT(r.lipschitz_var.mean,
            r.base_var.mean - mc_ordering_slack(r.lipschitz_var, r.base_var, n_test));
  EXPECT_GT(r.corrected_var.mean,
            r.lipschitz_var.mean -
                mc_ordering_slack(r.corrected_var, r.lipschitz_var, n_test));
  EXPECT_GT(r.corrected_var.mean, r.base_var.mean);

  // Artifacts populated.
  EXPECT_FALSE(r.sensitivity.empty());
  EXPECT_GT(r.comp_layers, 0);
  EXPECT_GT(r.overhead, 0.0);
  EXPECT_LT(r.overhead, 0.25);
  EXPECT_FALSE(stages.empty());

  // The corrected model is runnable and consistent with the recorded stats.
  McResult check = mc_accuracy(r.corrected_model, ds.test, cfg.variation, cfg.mc);
  EXPECT_NEAR(check.mean, r.corrected_var.mean, 1e-9);
}

TEST(Pipeline, McOrderingSlackPinnedOnFixedInputs) {
  // Regression pin for the derived statistical slack: if the formula drifts
  // (z-score, binomial floor, clamping, sample-count scaling), these exact
  // values move and the recovery assertions above silently change meaning.
  auto mk = [](double mean, double stddev, size_t n) {
    McResult r;
    r.mean = mean;
    r.stddev = stddev;
    r.samples.assign(n, mean);
    return r;
  };
  // Empirical stddev dominating one side, the binomial floor the other.
  EXPECT_NEAR(mc_ordering_slack(mk(0.9, 0.05, 16), mk(0.7, 0.0, 16), 200),
              0.049006093371130904, 1e-12);
  // Symmetric case with a clean closed form: var = 0.01/32 per side,
  // slack = 3.29 * sqrt(6.25e-4) = 0.08225 exactly.
  EXPECT_NEAR(mc_ordering_slack(mk(0.5, 0.1, 32), mk(0.5, 0.1, 32), 200),
              0.08225, 1e-12);
  // Empty sample lists fall back to n = 1, and means clamp away from the
  // degenerate 0/1 endpoints before the binomial floor.
  McResult hi = mk(1.0, 0.0, 0), lo = mk(0.0, 0.0, 0);
  EXPECT_NEAR(mc_ordering_slack(hi, lo, 100), 0.00046527602938590396, 1e-15);
  // More chips shrink the slack: 4x the samples halves the CI.
  EXPECT_NEAR(mc_ordering_slack(mk(0.5, 0.1, 128), mk(0.5, 0.1, 128), 200),
              0.08225 / 2.0, 1e-12);
}

}  // namespace
}  // namespace cn::core
