// End-to-end pipeline integration test on a small LeNet/digits workload.
#include "core/pipeline.h"

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "models/lenet.h"

namespace cn::core {
namespace {

TEST(Pipeline, FullRunRecoversAccuracy) {
  data::DigitsSpec spec;
  spec.train_count = 800;
  spec.test_count = 200;
  data::SplitDataset ds = data::make_digits(spec);

  PipelineConfig cfg;
  cfg.name = "test";
  cfg.sigma = 0.5f;
  cfg.base_train.epochs = 3;
  cfg.lipschitz_train.epochs = 3;
  cfg.lipschitz_train.lipschitz.beta = 3e-2f;
  cfg.comp_train.epochs = 3;
  cfg.comp_train.lr = 2e-3f;
  cfg.mc.samples = 16;  // tight enough for the ordering margins below
  cfg.plan_mode = PlanMode::kFixedRatio;
  cfg.fixed_ratio = 0.5f;

  std::vector<std::string> stages;
  cfg.log = [&](const std::string& s) { stages.push_back(s); };

  auto make_model = [](Rng& rng) { return models::lenet5(1, 28, 10, rng); };
  PipelineResult r = run_correctnet(make_model, ds.train, ds.test, cfg);

  // Clean accuracies in sane ranges.
  EXPECT_GT(r.clean_acc_base, 0.85f);
  EXPECT_GT(r.clean_acc_lipschitz, 0.80f);

  // Degradation under variations, then recovery ordering:
  // corrected > suppression-only > baseline (allowing small noise slack).
  EXPECT_LT(r.base_var.mean, r.clean_acc_base);
  EXPECT_GT(r.lipschitz_var.mean, r.base_var.mean - 0.02);
  EXPECT_GT(r.corrected_var.mean, r.lipschitz_var.mean - 0.02);
  EXPECT_GT(r.corrected_var.mean, r.base_var.mean);

  // Artifacts populated.
  EXPECT_FALSE(r.sensitivity.empty());
  EXPECT_GT(r.comp_layers, 0);
  EXPECT_GT(r.overhead, 0.0);
  EXPECT_LT(r.overhead, 0.25);
  EXPECT_FALSE(stages.empty());

  // The corrected model is runnable and consistent with the recorded stats.
  McResult check = mc_accuracy(r.corrected_model, ds.test, cfg.variation, cfg.mc);
  EXPECT_NEAR(check.mean, r.corrected_var.mean, 1e-9);
}

}  // namespace
}  // namespace cn::core
