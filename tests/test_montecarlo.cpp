#include "core/montecarlo.h"

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "models/lenet.h"
#include "core/trainer.h"

namespace cn::core {
namespace {

// Shared tiny trained model + dataset for the MC tests.
struct Fixture {
  data::SplitDataset ds;
  nn::Sequential model{"m"};

  Fixture() {
    data::DigitsSpec spec;
    spec.train_count = 600;
    spec.test_count = 200;
    ds = data::make_digits(spec);
    Rng rng(1);
    model = models::lenet5(1, 28, 10, rng);
    TrainConfig cfg;
    cfg.epochs = 2;
    train(model, ds.train, ds.test, cfg);
  }
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

TEST(MonteCarlo, ZeroSigmaMatchesCleanAccuracy) {
  auto& f = fixture();
  const float clean = evaluate(f.model, f.ds.test);
  analog::VariationModel vm{analog::VariationKind::kLognormal, 0.0f};
  McOptions opts;
  opts.samples = 3;
  McResult r = mc_accuracy(f.model, f.ds.test, vm, opts);
  EXPECT_NEAR(r.mean, clean, 1e-6);
  EXPECT_NEAR(r.stddev, 0.0, 1e-9);
}

TEST(MonteCarlo, AccuracyDegradesWithSigma) {
  auto& f = fixture();
  McOptions opts;
  opts.samples = 8;
  analog::VariationModel lo{analog::VariationKind::kLognormal, 0.1f};
  analog::VariationModel hi{analog::VariationKind::kLognormal, 0.6f};
  McResult rlo = mc_accuracy(f.model, f.ds.test, lo, opts);
  McResult rhi = mc_accuracy(f.model, f.ds.test, hi, opts);
  EXPECT_GT(rlo.mean, rhi.mean);
}

TEST(MonteCarlo, DoesNotMutateCallerModel) {
  auto& f = fixture();
  const float before = evaluate(f.model, f.ds.test);
  analog::VariationModel vm{analog::VariationKind::kLognormal, 0.5f};
  McOptions opts;
  opts.samples = 3;
  mc_accuracy(f.model, f.ds.test, vm, opts);
  EXPECT_FLOAT_EQ(evaluate(f.model, f.ds.test), before);
}

TEST(MonteCarlo, DeterministicGivenSeed) {
  auto& f = fixture();
  analog::VariationModel vm{analog::VariationKind::kLognormal, 0.4f};
  McOptions opts;
  opts.samples = 4;
  opts.seed = 123;
  McResult a = mc_accuracy(f.model, f.ds.test, vm, opts);
  McResult b = mc_accuracy(f.model, f.ds.test, vm, opts);
  ASSERT_EQ(a.samples.size(), b.samples.size());
  for (size_t i = 0; i < a.samples.size(); ++i)
    EXPECT_DOUBLE_EQ(a.samples[i], b.samples[i]);
}

TEST(MonteCarlo, SampleCountRespected) {
  auto& f = fixture();
  analog::VariationModel vm{analog::VariationKind::kLognormal, 0.3f};
  McOptions opts;
  opts.samples = 7;
  McResult r = mc_accuracy(f.model, f.ds.test, vm, opts);
  EXPECT_EQ(r.samples.size(), 7u);
  EXPECT_GE(r.max, r.mean);
  EXPECT_LE(r.min, r.mean);
}

TEST(MonteCarlo, FirstSiteSkipsEarlyLayers) {
  auto& f = fixture();
  analog::VariationModel vm{analog::VariationKind::kLognormal, 0.5f};
  McOptions all;
  all.samples = 8;
  McOptions late;
  late.samples = 8;
  late.first_site = 4;  // only the last FC perturbed
  McResult r_all = mc_accuracy(f.model, f.ds.test, vm, all);
  McResult r_late = mc_accuracy(f.model, f.ds.test, vm, late);
  // Perturbing fewer (and later) layers hurts less.
  EXPECT_GT(r_late.mean, r_all.mean);
}

}  // namespace
}  // namespace cn::core
