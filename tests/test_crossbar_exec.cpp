// Crossbar-backed execution of whole models, the equivalence between the
// device-level substrate and the fast factor-injection path, and the
// per-execution-target parity of the batched matmul path vs the per-column
// matvec loop across every periphery configuration and fault model: every
// bit-exact target must match bit for bit, the int8 target must stay inside
// its pinned tolerances.
#include "analog/crossbar_layers.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "core/montecarlo.h"
#include "core/trainer.h"
#include "data/synthetic.h"
#include "exec/target.h"
#include "exec_testutil.h"
#include "faultsim/fault_models.h"
#include "models/lenet.h"
#include "tensor/ops.h"

namespace cn::analog {
namespace {

RramDeviceParams ideal() {
  RramDeviceParams dev;
  dev.g_min = 1e-6f;
  dev.g_max = 1e-4f;
  return dev;
}

// For every registered bit-exact target this host can execute, builds an
// array from (dev, faults) explicitly on that target and asserts
// y == matvec row by row for matmul and matmul_cols on a random batch. Each
// target's array is programmed from a freshly re-seeded rng, so all targets
// execute identical conductances; matvec itself is target-independent. Read
// noise stays off: with a noise stream the two paths intentionally derive
// different per-row rngs.
void expect_paths_bit_identical(const RramDeviceParams& dev,
                                const FaultList* faults, uint64_t seed,
                                const std::string& what) {
  constexpr int64_t kIn = 23, kOut = 11, kBatch = 6;
  Rng rng(seed);
  Tensor w({kOut, kIn});
  rng.fill_normal(w, 0.0f, 0.5f);
  Tensor x({kBatch, kIn});
  rng.fill_normal(x, 0.0f, 1.0f);
  Tensor x_cm({kIn, kBatch});
  for (int64_t n = 0; n < kBatch; ++n)
    for (int64_t k = 0; k < kIn; ++k) x_cm[k * kBatch + n] = x[n * kIn + k];
  int targets_run = 0;
  for (const exec::Target* t : exec::registered_targets()) {
    if (!t->bit_exact() || !t->available()) continue;
    ++targets_run;
    Rng prog(seed + 1);
    CrossbarArray xbar(w, dev, prog, /*tile=*/8, faults, nullptr,
                       t);  // multiple tiles both ways
    Tensor y_batch = xbar.matmul(x);
    Tensor y_cols = xbar.matmul_cols(x_cm);
    Tensor xi({kIn});
    for (int64_t n = 0; n < kBatch; ++n) {
      std::copy(x.data() + n * kIn, x.data() + (n + 1) * kIn, xi.data());
      Tensor yi = xbar.matvec(xi);
      const std::string row = what + " [" + t->name() + "] row " +
                              std::to_string(n);
      testutil::expect_bitwise_equal(y_batch.data() + n * kOut, yi.data(),
                                     kOut, row + " matmul");
      testutil::expect_bitwise_equal(y_cols.data() + n * kOut, yi.data(),
                                     kOut, row + " matmul_cols");
    }
  }
  // simd, simd-generic and huge-tile are always executable.
  ASSERT_GE(targets_run, 3) << what;
}

TEST(CrossbarExec, PeripheryCombosKeepBatchedAndMatvecBitIdentical) {
  // The periphery knobs, alone and combined — these paths were only covered
  // by the single all-on configuration in test_runtime before.
  struct Combo {
    const char* name;
    int adc_bits, dac_bits, levels;
    float program_sigma, read_sigma;
  };
  const Combo combos[] = {
      {"adc only", 6, 0, 0, 0.0f, 0.0f},
      {"dac only", 0, 5, 0, 0.0f, 0.0f},
      {"adc+dac", 4, 4, 0, 0.0f, 0.0f},
      {"adc+variation", 8, 0, 0, 0.25f, 0.0f},
      {"dac+levels", 0, 6, 8, 0.0f, 0.0f},
      {"adc+dac+levels+variation", 6, 6, 16, 0.15f, 0.0f},
      // read_sigma configured but no stream handed out: the noise gate in
      // finish_row must stay off on both paths.
      {"read_sigma without stream", 6, 4, 0, 0.1f, 0.2f},
  };
  uint64_t seed = 100;
  for (const Combo& c : combos) {
    RramDeviceParams dev = ideal();
    dev.readout.adc_bits = c.adc_bits;
    dev.readout.dac_bits = c.dac_bits;
    dev.conductance_levels = c.levels;
    dev.program_sigma = c.program_sigma;
    dev.readout.read_sigma = c.read_sigma;
    expect_paths_bit_identical(dev, nullptr, seed += 7, c.name);
  }
}

TEST(CrossbarExec, EveryFaultModelKeepsBatchedAndMatvecBitIdentical) {
  // Fault injection is a construction-time conductance transform, so the
  // bit-exactness contract must survive every model — alone, composed, and
  // stacked on the full periphery.
  using faultsim::FaultSpec;
  auto run = [](const FaultSpec& spec, const RramDeviceParams& dev,
                uint64_t seed) {
    const FaultList list = spec.list();
    expect_paths_bit_identical(dev, &list, seed, spec.kind);
  };
  RramDeviceParams plain = ideal();
  plain.program_sigma = 0.2f;
  run(faultsim::stuck_at(0.05), plain, 200);
  run(faultsim::drift(100.0), plain, 210);
  run(faultsim::ir_drop(0.1), plain, 220);
  run(faultsim::thermal(420.0), plain, 230);

  FaultSpec combined;
  combined.kind = "combined";
  combined.models.push_back(std::make_shared<faultsim::StuckAtFault>(0.02, 0.02));
  combined.models.push_back(std::make_shared<faultsim::DriftFault>(50.0));
  combined.models.push_back(std::make_shared<faultsim::IrDropFault>(0.05, 0.05));
  combined.models.push_back(std::make_shared<faultsim::ThermalFault>(380.0));
  RramDeviceParams full = ideal();
  full.program_sigma = 0.15f;
  full.conductance_levels = 16;
  full.readout.adc_bits = 8;
  full.readout.dac_bits = 6;
  run(combined, full, 240);
}

TEST(CrossbarExec, ForcedSimdDispatchLevelsAreBitIdentical) {
  // The runtime dispatcher normally picks the widest ISA the host supports,
  // so parity was only ever proven for that one level. Pin dispatch to every
  // supported level on the same inputs: each must reproduce the per-column
  // matvec loop bit for bit (fp-contract stays off in the SIMD variants, so
  // there is no FMA to round differently).
  struct DispatchGuard {
    ~DispatchGuard() { reset_simd_level(); }
  } guard;

  RramDeviceParams dev = ideal();
  dev.program_sigma = 0.2f;
  dev.conductance_levels = 16;
  dev.readout.adc_bits = 8;
  constexpr int64_t kIn = 37, kOut = 13, kBatch = 9;  // odd sizes: tail lanes
  Rng rng(400);
  Tensor w({kOut, kIn});
  rng.fill_normal(w, 0.0f, 0.5f);
  Rng prog(401);
  // Explicitly on the auto "simd" target: forcing a dispatch level is a simd
  // family knob, and the test must hold under any ambient default target.
  CrossbarArray xbar(w, dev, prog, /*tile=*/8, nullptr, nullptr,
                     exec::find_target("simd"));
  Tensor x({kBatch, kIn});
  rng.fill_normal(x, 0.0f, 1.0f);
  Tensor x_cm({kIn, kBatch});
  for (int64_t n = 0; n < kBatch; ++n)
    for (int64_t k = 0; k < kIn; ++k) x_cm[k * kBatch + n] = x[n * kIn + k];

  // Reference: the scalar per-column loop (dispatch-independent).
  std::vector<Tensor> ref;
  Tensor xi({kIn});
  for (int64_t n = 0; n < kBatch; ++n) {
    std::copy(x.data() + n * kIn, x.data() + (n + 1) * kIn, xi.data());
    ref.push_back(xbar.matvec(xi));
  }

  const SimdLevel levels[] = {SimdLevel::kGeneric, SimdLevel::kAvx2,
                              SimdLevel::kAvx512f};
  int tested = 0;
  for (SimdLevel level : levels) {
    if (level > simd_max_level()) continue;  // host can't execute it
    ASSERT_TRUE(force_simd_level(level));
    ASSERT_EQ(current_simd_level(), level);
    ++tested;
    const Tensor y_batch = xbar.matmul(x);
    const Tensor y_cols = xbar.matmul_cols(x_cm);
    for (int64_t n = 0; n < kBatch; ++n) {
      const std::string row = "level " + std::to_string(static_cast<int>(level)) +
                              " row " + std::to_string(n);
      testutil::expect_bitwise_equal(y_batch.data() + n * kOut,
                                     ref[static_cast<size_t>(n)].data(), kOut,
                                     row + " matmul");
      testutil::expect_bitwise_equal(y_cols.data() + n * kOut,
                                     ref[static_cast<size_t>(n)].data(), kOut,
                                     row + " matmul_cols");
    }
  }
  EXPECT_GE(tested, 1);  // generic always runs
  // Unsupported levels must be rejected without changing the pin.
  if (simd_max_level() < SimdLevel::kAvx512f) {
    EXPECT_FALSE(force_simd_level(SimdLevel::kAvx512f));
  }
  reset_simd_level();
  EXPECT_EQ(current_simd_level(), simd_max_level());
}

TEST(CrossbarExec, HugeTileTargetIsBitExactAcrossColumnChunks) {
  // The cache-blocked target walks bitlines in 1024-column chunks; a tile
  // wider than one chunk must still reproduce the scalar reference bit for
  // bit (per-column accumulation order is chunk-invariant).
  RramDeviceParams dev = ideal();
  dev.program_sigma = 0.2f;
  dev.readout.adc_bits = 8;
  constexpr int64_t kIn = 40, kOut = 1100, kBatch = 5;  // cols span 2 chunks
  Rng rng(500);
  Tensor w({kOut, kIn});
  rng.fill_normal(w, 0.0f, 0.5f);
  Rng prog(501);
  CrossbarArray xbar(w, dev, prog, /*tile=*/2048, nullptr, nullptr,
                     &exec::get_target("huge-tile"));
  Tensor x({kBatch, kIn});
  rng.fill_normal(x, 0.0f, 1.0f);
  const Tensor y_batch = xbar.matmul(x);
  Tensor xi({kIn});
  for (int64_t n = 0; n < kBatch; ++n) {
    std::copy(x.data() + n * kIn, x.data() + (n + 1) * kIn, xi.data());
    const Tensor yi = xbar.matvec(xi);
    testutil::expect_bitwise_equal(y_batch.data() + n * kOut, yi.data(), kOut,
                                   "huge-tile row " + std::to_string(n));
  }
}

// Max |y_int8 - y_ref| over the batch, relative to max |y_ref|, between an
// int8-target array and its own scalar float matvec (identical
// conductances).
double int8_max_rel_err(const RramDeviceParams& dev, uint64_t seed) {
  constexpr int64_t kIn = 23, kOut = 11, kBatch = 6;
  Rng rng(seed);
  Tensor w({kOut, kIn});
  rng.fill_normal(w, 0.0f, 0.5f);
  Tensor x({kBatch, kIn});
  rng.fill_normal(x, 0.0f, 1.0f);
  Rng prog(seed + 1);
  CrossbarArray xbar(w, dev, prog, /*tile=*/8, nullptr, nullptr,
                     &exec::get_target("int8"));
  const Tensor y = xbar.matmul(x);
  double max_err = 0.0, max_ref = 0.0;
  Tensor xi({kIn});
  for (int64_t n = 0; n < kBatch; ++n) {
    std::copy(x.data() + n * kIn, x.data() + (n + 1) * kIn, xi.data());
    const Tensor yi = xbar.matvec(xi);
    for (int64_t o = 0; o < kOut; ++o) {
      max_err = std::max(max_err,
                         std::abs(static_cast<double>(y[n * kOut + o]) - yi[o]));
      max_ref = std::max(max_ref, std::abs(static_cast<double>(yi[o])));
    }
  }
  EXPECT_GT(max_ref, 0.0);
  return max_err / max_ref;
}

TEST(CrossbarExec, Int8TargetStaysInsidePinnedTolerances) {
  // The int8 target is approximate by design; what is pinned is how
  // approximate. The bounds below are ~2x the worst error measured across
  // these seeds (see docs/ARCHITECTURE.md for the analytic bound) — a
  // regression that widens int8 quantization error trips them.
  RramDeviceParams plain = ideal();
  plain.program_sigma = 0.2f;
  double worst_plain = 0.0;
  for (uint64_t seed : {600u, 610u, 620u, 630u})
    worst_plain = std::max(worst_plain, int8_max_rel_err(plain, seed));
  EXPECT_GT(worst_plain, 0.0);    // quantization genuinely engages
  EXPECT_LE(worst_plain, 0.02);   // pinned: 2% of the output range

  // With the full periphery stack (levels + DAC + ADC) the int8 delta can
  // push a borderline current across an ADC bucket edge, so the bound is
  // wider than the raw quantization error.
  RramDeviceParams full = ideal();
  full.program_sigma = 0.15f;
  full.conductance_levels = 16;
  full.readout.adc_bits = 8;
  full.readout.dac_bits = 6;
  double worst_full = 0.0;
  for (uint64_t seed : {700u, 710u, 720u, 730u})
    worst_full = std::max(worst_full, int8_max_rel_err(full, seed));
  EXPECT_LE(worst_full, 0.07);    // pinned: 7% (worst measured 3.4%)
}

TEST(CrossbarExec, ReadNoisePathsAreSeedDeterministic) {
  // With read noise on, matvec and matmul use different stream derivations
  // by design; what each must guarantee is exact reproducibility from the
  // rng state.
  RramDeviceParams dev = ideal();
  dev.readout.read_sigma = 0.1f;
  Rng rng(300);
  Tensor w({9, 17});
  rng.fill_normal(w, 0.0f, 0.5f);
  Rng prog(301);
  CrossbarArray xbar(w, dev, prog, 8);
  Tensor x({4, 17});
  rng.fill_normal(x, 0.0f, 1.0f);

  Rng ra(77), rb(77);
  Tensor ya = xbar.matmul(x, &ra);
  Tensor yb = xbar.matmul(x, &rb);
  testutil::expect_bitwise_equal(ya, yb, "same-seed matmul reads");

  Tensor xi({17});
  std::copy(x.data(), x.data() + 17, xi.data());
  Rng rc(78), rd(78);
  Tensor yc = xbar.matvec(xi, &rc);
  Tensor yd = xbar.matvec(xi, &rd);
  testutil::expect_bitwise_equal(yc, yd, "same-seed matvec reads");
  // And the noise actually engages: a different seed changes the output.
  Rng re(79);
  Tensor ye = xbar.matvec(xi, &re);
  double diff = 0.0;
  for (int64_t i = 0; i < yc.size(); ++i)
    diff += std::abs(static_cast<double>(yc[i]) - ye[i]);
  EXPECT_GT(diff, 0.0);
}

// Digital-agreement tolerance: loose enough for the ambient target's int8
// quantization when the CI matrix forces CORRECTNET_TARGET=int8.
float ambient_tol(float exact_tol) {
  return exec::default_target().bit_exact() ? exact_tol : 0.05f;
}

TEST(CrossbarDense, IdealMatchesDigitalLayer) {
  Rng rng(1);
  nn::Dense d(6, 4, "fc");
  rng.fill_normal(d.weight().value, 0.0f, 0.5f);
  rng.fill_normal(d.bias().value, 0.0f, 0.2f);
  Rng prog(2);
  CrossbarDense xd(d, ideal(), prog);
  Tensor x({3, 6});
  rng.fill_normal(x, 0.0f, 1.0f);
  Tensor y_ref = d.forward(x, false);
  Tensor y_xbar = xd.forward(x, false);
  for (int64_t i = 0; i < y_ref.size(); ++i)
    EXPECT_NEAR(y_xbar[i], y_ref[i], ambient_tol(1e-3f));
}

TEST(CrossbarConv2D, IdealMatchesDigitalLayer) {
  Rng rng(3);
  nn::Conv2D c(2, 4, 3, 1, 1, 6, 6, "conv");
  rng.fill_normal(c.weight().value, 0.0f, 0.4f);
  rng.fill_normal(c.bias().value, 0.0f, 0.1f);
  Rng prog(4);
  CrossbarConv2D xc(c, ideal(), prog);
  Tensor x({2, 2, 6, 6});
  rng.fill_normal(x, 0.0f, 1.0f);
  Tensor y_ref = c.forward(x, false);
  Tensor y_xbar = xc.forward(x, false);
  ASSERT_EQ(y_ref.shape(), y_xbar.shape());
  for (int64_t i = 0; i < y_ref.size(); ++i)
    EXPECT_NEAR(y_xbar[i], y_ref[i], ambient_tol(2e-3f));
}

TEST(CrossbarLayers, BackwardThrows) {
  Rng rng(5);
  nn::Dense d(2, 2, "fc");
  Rng prog(6);
  CrossbarDense xd(d, ideal(), prog);
  xd.forward(Tensor({1, 2}), false);
  EXPECT_THROW(xd.backward(Tensor({1, 2})), std::logic_error);
}

TEST(ProgramToCrossbars, WholeModelIdealAccuracyMatches) {
  data::DigitsSpec spec;
  spec.train_count = 400;
  spec.test_count = 60;
  data::SplitDataset ds = data::make_digits(spec);
  Rng rng(7);
  nn::Sequential m = models::lenet5(1, 28, 10, rng);
  core::TrainConfig cfg;
  cfg.epochs = 2;
  core::train(m, ds.train, ds.test, cfg);

  Rng prog(8);
  nn::Sequential xm = program_to_crossbars(m, ideal(), prog);
  const float acc_ref = core::evaluate(m, ds.test);
  const float acc_xbar = core::evaluate(xm, ds.test, /*batch=*/20);
  // Bit-exact targets flip no logits on the ideal device; an approximate
  // ambient target (int8 CI leg) may flip a borderline sample or two.
  EXPECT_NEAR(acc_xbar, acc_ref, ambient_tol(1e-6f));
}

TEST(ProgramToCrossbars, VariationDegradesLikeFactorModel) {
  // The device-level programming variation and the layer-level factor model
  // must produce accuracy drops of the same order at matched sigma.
  data::DigitsSpec spec;
  spec.train_count = 400;
  spec.test_count = 60;
  data::SplitDataset ds = data::make_digits(spec);
  Rng rng(9);
  nn::Sequential m = models::lenet5(1, 28, 10, rng);
  core::TrainConfig cfg;
  cfg.epochs = 2;
  core::train(m, ds.train, ds.test, cfg);

  const float sigma = 0.4f;
  // Factor path (paper Eq. 1-2), a few chips.
  VariationModel vm{VariationKind::kLognormal, sigma};
  core::McOptions mc;
  mc.samples = 4;
  core::McResult factor = core::mc_accuracy(m, ds.test, vm, mc);
  // Device path, a few programmed chips.
  RramDeviceParams dev = ideal();
  dev.program_sigma = sigma;
  double dev_acc = 0.0;
  for (int chip = 0; chip < 4; ++chip) {
    Rng prog(100 + static_cast<uint64_t>(chip));
    nn::Sequential xm = program_to_crossbars(m, dev, prog);
    dev_acc += core::evaluate(xm, ds.test, 20);
  }
  dev_acc /= 4.0;
  // Same ballpark (both well below clean, within 20 points of each other).
  const float clean = core::evaluate(m, ds.test);
  EXPECT_LT(dev_acc, clean);
  EXPECT_LT(factor.mean, clean);
  EXPECT_NEAR(dev_acc, factor.mean, 0.25);
}

TEST(ProgramToCrossbars, NonAnalogLayersPreserved) {
  Rng rng(11);
  nn::Sequential m = models::lenet5(1, 28, 10, rng);
  Rng prog(12);
  nn::Sequential xm = program_to_crossbars(m, ideal(), prog);
  ASSERT_EQ(xm.num_layers(), m.num_layers());
  EXPECT_EQ(xm.layer(0).kind(), "crossbar_conv2d");
  EXPECT_EQ(xm.layer(1).kind(), "relu");
  EXPECT_EQ(xm.layer(7).kind(), "crossbar_dense");
}

}  // namespace
}  // namespace cn::analog
