// Crossbar-backed execution of whole models, and the equivalence between the
// device-level substrate and the fast factor-injection path.
#include "analog/crossbar_layers.h"

#include <gtest/gtest.h>

#include "core/montecarlo.h"
#include "core/trainer.h"
#include "data/synthetic.h"
#include "models/lenet.h"
#include "tensor/ops.h"

namespace cn::analog {
namespace {

RramDeviceParams ideal() {
  RramDeviceParams dev;
  dev.g_min = 1e-6f;
  dev.g_max = 1e-4f;
  return dev;
}

TEST(CrossbarDense, IdealMatchesDigitalLayer) {
  Rng rng(1);
  nn::Dense d(6, 4, "fc");
  rng.fill_normal(d.weight().value, 0.0f, 0.5f);
  rng.fill_normal(d.bias().value, 0.0f, 0.2f);
  Rng prog(2);
  CrossbarDense xd(d, ideal(), prog);
  Tensor x({3, 6});
  rng.fill_normal(x, 0.0f, 1.0f);
  Tensor y_ref = d.forward(x, false);
  Tensor y_xbar = xd.forward(x, false);
  for (int64_t i = 0; i < y_ref.size(); ++i) EXPECT_NEAR(y_xbar[i], y_ref[i], 1e-3f);
}

TEST(CrossbarConv2D, IdealMatchesDigitalLayer) {
  Rng rng(3);
  nn::Conv2D c(2, 4, 3, 1, 1, 6, 6, "conv");
  rng.fill_normal(c.weight().value, 0.0f, 0.4f);
  rng.fill_normal(c.bias().value, 0.0f, 0.1f);
  Rng prog(4);
  CrossbarConv2D xc(c, ideal(), prog);
  Tensor x({2, 2, 6, 6});
  rng.fill_normal(x, 0.0f, 1.0f);
  Tensor y_ref = c.forward(x, false);
  Tensor y_xbar = xc.forward(x, false);
  ASSERT_EQ(y_ref.shape(), y_xbar.shape());
  for (int64_t i = 0; i < y_ref.size(); ++i) EXPECT_NEAR(y_xbar[i], y_ref[i], 2e-3f);
}

TEST(CrossbarLayers, BackwardThrows) {
  Rng rng(5);
  nn::Dense d(2, 2, "fc");
  Rng prog(6);
  CrossbarDense xd(d, ideal(), prog);
  xd.forward(Tensor({1, 2}), false);
  EXPECT_THROW(xd.backward(Tensor({1, 2})), std::logic_error);
}

TEST(ProgramToCrossbars, WholeModelIdealAccuracyMatches) {
  data::DigitsSpec spec;
  spec.train_count = 400;
  spec.test_count = 60;
  data::SplitDataset ds = data::make_digits(spec);
  Rng rng(7);
  nn::Sequential m = models::lenet5(1, 28, 10, rng);
  core::TrainConfig cfg;
  cfg.epochs = 2;
  core::train(m, ds.train, ds.test, cfg);

  Rng prog(8);
  nn::Sequential xm = program_to_crossbars(m, ideal(), prog);
  const float acc_ref = core::evaluate(m, ds.test);
  const float acc_xbar = core::evaluate(xm, ds.test, /*batch=*/20);
  EXPECT_NEAR(acc_xbar, acc_ref, 1e-6f);
}

TEST(ProgramToCrossbars, VariationDegradesLikeFactorModel) {
  // The device-level programming variation and the layer-level factor model
  // must produce accuracy drops of the same order at matched sigma.
  data::DigitsSpec spec;
  spec.train_count = 400;
  spec.test_count = 60;
  data::SplitDataset ds = data::make_digits(spec);
  Rng rng(9);
  nn::Sequential m = models::lenet5(1, 28, 10, rng);
  core::TrainConfig cfg;
  cfg.epochs = 2;
  core::train(m, ds.train, ds.test, cfg);

  const float sigma = 0.4f;
  // Factor path (paper Eq. 1-2), a few chips.
  VariationModel vm{VariationKind::kLognormal, sigma};
  core::McOptions mc;
  mc.samples = 4;
  core::McResult factor = core::mc_accuracy(m, ds.test, vm, mc);
  // Device path, a few programmed chips.
  RramDeviceParams dev = ideal();
  dev.program_sigma = sigma;
  double dev_acc = 0.0;
  for (int chip = 0; chip < 4; ++chip) {
    Rng prog(100 + static_cast<uint64_t>(chip));
    nn::Sequential xm = program_to_crossbars(m, dev, prog);
    dev_acc += core::evaluate(xm, ds.test, 20);
  }
  dev_acc /= 4.0;
  // Same ballpark (both well below clean, within 20 points of each other).
  const float clean = core::evaluate(m, ds.test);
  EXPECT_LT(dev_acc, clean);
  EXPECT_LT(factor.mean, clean);
  EXPECT_NEAR(dev_acc, factor.mean, 0.25);
}

TEST(ProgramToCrossbars, NonAnalogLayersPreserved) {
  Rng rng(11);
  nn::Sequential m = models::lenet5(1, 28, 10, rng);
  Rng prog(12);
  nn::Sequential xm = program_to_crossbars(m, ideal(), prog);
  ASSERT_EQ(xm.num_layers(), m.num_layers());
  EXPECT_EQ(xm.layer(0).kind(), "crossbar_conv2d");
  EXPECT_EQ(xm.layer(1).kind(), "relu");
  EXPECT_EQ(xm.layer(7).kind(), "crossbar_dense");
}

}  // namespace
}  // namespace cn::analog
