#include <gtest/gtest.h>

#include <cmath>

#include "nn/optimizer.h"
#include "rl/reinforce.h"

namespace cn::rl {
namespace {

TEST(RnnPolicy, SampleShapeAndDeterminism) {
  RnnPolicy p(6, 4, 16, 1);
  Rng a(5), b(5);
  auto ea = p.sample(a);
  auto eb = p.sample(b);
  ASSERT_EQ(ea.actions.size(), 6u);
  EXPECT_EQ(ea.actions, eb.actions);
  for (int v : ea.actions) {
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 4);
  }
  EXPECT_LE(ea.log_prob, 0.0f);
}

TEST(RnnPolicy, ProbsAreDistributions) {
  RnnPolicy p(3, 5, 8, 2);
  Rng rng(7);
  auto ep = p.sample(rng);
  for (const auto& probs : ep.probs) {
    double s = 0.0;
    for (int64_t i = 0; i < probs.size(); ++i) {
      EXPECT_GE(probs[i], 0.0f);
      s += probs[i];
    }
    EXPECT_NEAR(s, 1.0, 1e-5);
  }
}

TEST(RnnPolicy, GreedyIsDeterministic) {
  RnnPolicy p(4, 3, 8, 3);
  EXPECT_EQ(p.greedy(), p.greedy());
}

TEST(RnnPolicy, GradientPushesTowardRewardedActions) {
  // One-step policy; positive advantage on action 2 must raise its prob.
  RnnPolicy p(1, 3, 8, 4);
  Rng rng(9);
  nn::Adam opt(0.05f);
  auto params = p.params();
  for (int it = 0; it < 200; ++it) {
    auto ep = p.sample(rng);
    const float reward = (ep.actions[0] == 2) ? 1.0f : 0.0f;
    nn::Optimizer::zero_grad(params);
    p.accumulate_grad(ep, reward - 0.3f);
    opt.step(params);
  }
  EXPECT_EQ(p.greedy()[0], 2);
}

TEST(Reinforce, MaximizesSimpleCountingReward) {
  // Reward = number of actions equal to 1; optimum is all-ones.
  RnnPolicy policy(5, 3, 16, 11);
  ReinforceConfig cfg;
  cfg.iterations = 400;
  cfg.lr = 0.03f;
  cfg.seed = 13;
  auto outcome = run_reinforce(
      policy,
      [](const std::vector<int>& a) {
        float r = 0.0f;
        for (int v : a)
          if (v == 1) r += 1.0f;
        return r;
      },
      cfg);
  EXPECT_GE(outcome.best_reward, 4.0f);
  EXPECT_EQ(outcome.reward_history.size(), 400u);
  // The trained policy's greedy rollout is near-optimal.
  int ones = 0;
  for (int v : policy.greedy())
    if (v == 1) ++ones;
  EXPECT_GE(ones, 4);
}

TEST(Reinforce, TracksBestEpisode) {
  RnnPolicy policy(2, 2, 8, 17);
  ReinforceConfig cfg;
  cfg.iterations = 30;
  cfg.seed = 3;
  float best_seen = -1e30f;
  auto outcome = run_reinforce(
      policy,
      [&](const std::vector<int>& a) {
        const float r = static_cast<float>(a[0] * 2 + a[1]);
        best_seen = std::max(best_seen, r);
        return r;
      },
      cfg);
  EXPECT_FLOAT_EQ(outcome.best_reward, best_seen);
}

}  // namespace
}  // namespace cn::rl
