// The obs subsystem: histogram bucket math and rank-exact percentiles
// against a sorted-vector oracle, registry thread-safety under the scenario
// scheduler, trace JSON well-formedness, logger levels, and the load-bearing
// invariant of the whole layer — metrics/tracing on vs off never changes a
// CampaignReport byte.
#include "obs/metrics.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iterator>
#include <random>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "faultsim/campaign.h"
#include "models/lenet.h"
#include "obs/log.h"
#include "obs/trace.h"
#include "runtime/chip_farm.h"
#include "runtime/inference_server.h"
#include "runtime/scheduler.h"

namespace cn {
namespace {

using obs::LatencyHistogram;

// ---------- minimal JSON well-formedness checker ----------
// Recursive-descent over the full JSON grammar (objects, arrays, strings
// with escapes, numbers, literals). Deliberately independent of the
// emitters under test: it knows nothing about BenchJson or trace_event
// shapes, only whether the bytes are JSON.
struct JsonParser {
  const std::string& s;
  size_t p = 0;
  explicit JsonParser(const std::string& str) : s(str) {}

  void ws() {
    while (p < s.size() && std::isspace(static_cast<unsigned char>(s[p]))) ++p;
  }
  bool lit(const char* t) {
    const size_t n = std::char_traits<char>::length(t);
    if (s.compare(p, n, t) != 0) return false;
    p += n;
    return true;
  }
  bool string_lit() {
    if (p >= s.size() || s[p] != '"') return false;
    ++p;
    while (p < s.size()) {
      const char c = s[p];
      if (c == '"') {
        ++p;
        return true;
      }
      if (c == '\\') {
        ++p;
        if (p >= s.size()) return false;
        const char e = s[p];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i)
            if (++p >= s.size() ||
                !std::isxdigit(static_cast<unsigned char>(s[p])))
              return false;
        } else if (!std::strchr("\"\\/bfnrt", e)) {
          return false;
        }
      }
      ++p;
    }
    return false;
  }
  bool number() {
    const size_t start = p;
    if (p < s.size() && s[p] == '-') ++p;
    size_t digits = 0;
    while (p < s.size() && std::isdigit(static_cast<unsigned char>(s[p]))) {
      ++p;
      ++digits;
    }
    if (!digits) return false;
    if (p < s.size() && s[p] == '.') {
      ++p;
      digits = 0;
      while (p < s.size() && std::isdigit(static_cast<unsigned char>(s[p]))) {
        ++p;
        ++digits;
      }
      if (!digits) return false;
    }
    if (p < s.size() && (s[p] == 'e' || s[p] == 'E')) {
      ++p;
      if (p < s.size() && (s[p] == '+' || s[p] == '-')) ++p;
      digits = 0;
      while (p < s.size() && std::isdigit(static_cast<unsigned char>(s[p]))) {
        ++p;
        ++digits;
      }
      if (!digits) return false;
    }
    return p > start;
  }
  bool object() {
    if (p >= s.size() || s[p] != '{') return false;
    ++p;
    ws();
    if (p < s.size() && s[p] == '}') {
      ++p;
      return true;
    }
    for (;;) {
      ws();
      if (!string_lit()) return false;
      ws();
      if (p >= s.size() || s[p] != ':') return false;
      ++p;
      if (!value()) return false;
      ws();
      if (p < s.size() && s[p] == ',') {
        ++p;
        continue;
      }
      if (p < s.size() && s[p] == '}') {
        ++p;
        return true;
      }
      return false;
    }
  }
  bool array() {
    if (p >= s.size() || s[p] != '[') return false;
    ++p;
    ws();
    if (p < s.size() && s[p] == ']') {
      ++p;
      return true;
    }
    for (;;) {
      if (!value()) return false;
      ws();
      if (p < s.size() && s[p] == ',') {
        ++p;
        continue;
      }
      if (p < s.size() && s[p] == ']') {
        ++p;
        return true;
      }
      return false;
    }
  }
  bool value() {
    ws();
    if (p >= s.size()) return false;
    switch (s[p]) {
      case '{': return object();
      case '[': return array();
      case '"': return string_lit();
      case 't': return lit("true");
      case 'f': return lit("false");
      case 'n': return lit("null");
      default: return number();
    }
  }
};

bool valid_json(const std::string& s) {
  JsonParser jp(s);
  if (!jp.value()) return false;
  jp.ws();
  return jp.p == s.size();
}

std::string slurp(const std::string& path) {
  std::ifstream is(path);
  std::string out((std::istreambuf_iterator<char>(is)),
                  std::istreambuf_iterator<char>());
  return out;
}

// ---------- histogram bucket math ----------

TEST(Histogram, BucketEdgesContainTheirValues) {
  // Every value lands in a bucket whose [lower, upper) range contains it,
  // indices are monotone in the value, and values below 32us get unit-exact
  // buckets.
  std::mt19937_64 gen(11);
  int prev_idx = -1;
  uint64_t prev_u = 0;
  for (int e = 0; e < 40; ++e) {
    for (int r = 0; r < 8; ++r) {
      const uint64_t u = (uint64_t{1} << e) +
                         gen() % std::max<uint64_t>(1, uint64_t{1} << e);
      const int idx = LatencyHistogram::bucket_index(u);
      ASSERT_GE(idx, 0);
      ASSERT_LT(idx, LatencyHistogram::kNumBuckets);
      EXPECT_LE(LatencyHistogram::bucket_lower(idx), u);
      EXPECT_GT(LatencyHistogram::bucket_upper(idx), u);
      if (u >= prev_u) {
        EXPECT_GE(idx, prev_idx) << "index not monotone at " << u;
      }
      prev_u = u;
      prev_idx = idx;
    }
  }
  for (uint64_t u = 0; u < LatencyHistogram::kSubBuckets; ++u) {
    EXPECT_EQ(LatencyHistogram::bucket_index(u), static_cast<int>(u));
    EXPECT_EQ(LatencyHistogram::bucket_lower(static_cast<int>(u)), u);
    EXPECT_EQ(LatencyHistogram::bucket_upper(static_cast<int>(u)), u + 1);
  }
  // Buckets tile the range: each upper edge is the next lower edge.
  for (int i = 0; i + 1 < LatencyHistogram::kNumBuckets; ++i)
    EXPECT_EQ(LatencyHistogram::bucket_upper(i),
              LatencyHistogram::bucket_lower(i + 1));
}

TEST(Histogram, PercentilesMatchSortedVectorOracle) {
  // Rank-exact extraction: percentile(q) must equal the lower edge of the
  // bucket holding the true rank-ceil(q*n) order statistic, for values
  // spanning many octaves.
  LatencyHistogram h;
  std::vector<uint64_t> vals;
  std::mt19937_64 gen(42);
  std::lognormal_distribution<double> ln(6.0, 2.5);  // ~4us .. ~10s spread
  for (int i = 0; i < 20000; ++i) {
    const uint64_t u = static_cast<uint64_t>(ln(gen));
    vals.push_back(u);
    h.record(static_cast<double>(u));
  }
  std::sort(vals.begin(), vals.end());
  ASSERT_EQ(h.count(), vals.size());
  const LatencyHistogram::Snapshot s = h.snapshot();
  for (double q : {0.001, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0}) {
    const size_t rank = std::max<size_t>(
        1, std::min<size_t>(
               vals.size(),
               static_cast<size_t>(
                   std::ceil(q * static_cast<double>(vals.size())))));
    const uint64_t truth = vals[rank - 1];
    const double p = s.percentile(q);
    // Exactly the truth's bucket floor — and therefore within one bucket
    // width (3.1%) of the true order statistic.
    EXPECT_EQ(p, static_cast<double>(LatencyHistogram::bucket_lower(
                     LatencyHistogram::bucket_index(truth))))
        << "q=" << q;
    EXPECT_LE(p, static_cast<double>(truth)) << "q=" << q;
    EXPECT_LT(static_cast<double>(truth), p + p / 32.0 + 1.0) << "q=" << q;
  }
  EXPECT_EQ(h.min_us(), static_cast<double>(vals.front()));
  EXPECT_EQ(h.max_us(), static_cast<double>(vals.back()));
}

TEST(Histogram, SmallValuesAreUnitExact) {
  LatencyHistogram h;
  for (int v = 0; v < 32; ++v) h.record(v);
  for (int v = 1; v <= 32; ++v) {
    const double q = static_cast<double>(v) / 32.0;
    EXPECT_EQ(h.percentile(q), static_cast<double>(v - 1)) << "q=" << q;
  }
  // Negative and sub-microsecond values clamp to the zero bucket.
  LatencyHistogram neg;
  neg.record(-5.0);
  neg.record(0.4);
  EXPECT_EQ(neg.count(), 2u);
  EXPECT_EQ(neg.percentile(1.0), 0.0);
}

TEST(Histogram, MergeEqualsSingleRecorder) {
  // Bucket-wise merge: two shards merged must be indistinguishable from one
  // recorder that saw every value (the mergeable-summary contract).
  LatencyHistogram a, b, all;
  std::mt19937_64 gen(7);
  for (int i = 0; i < 500; ++i) {
    const double v = static_cast<double>(gen() % 1000000);
    ((i % 2) ? a : b).record(v);
    all.record(v);
  }
  a.merge(b);
  const auto sa = a.snapshot();
  const auto sall = all.snapshot();
  EXPECT_EQ(sa.count, sall.count);
  EXPECT_EQ(sa.sum_us, sall.sum_us);
  EXPECT_EQ(sa.min_us, sall.min_us);
  EXPECT_EQ(sa.max_us, sall.max_us);
  EXPECT_EQ(sa.buckets, sall.buckets);
  for (double q : {0.5, 0.99})
    EXPECT_EQ(sa.percentile(q), sall.percentile(q));
}

// ---------- registry ----------

TEST(MetricsRegistry, NamesAreStableAndKindsCollide) {
  obs::MetricsRegistry reg;
  obs::Counter& c = reg.counter("x.count");
  c.add(3);
  EXPECT_EQ(&reg.counter("x.count"), &c);  // stable reference
  EXPECT_EQ(reg.counter("x.count").value(), 3u);
  reg.gauge("x.gauge").set(1.5);
  reg.histogram("x.hist").record(10.0);
  EXPECT_THROW(reg.gauge("x.count"), std::invalid_argument);
  EXPECT_THROW(reg.counter("x.gauge"), std::invalid_argument);
  EXPECT_THROW(reg.histogram("x.count"), std::invalid_argument);
  EXPECT_THROW(reg.counter("x.hist"), std::invalid_argument);
}

TEST(MetricsRegistry, GateStopsRecordingWithoutClearing) {
  obs::MetricsRegistry reg;
  obs::Counter& c = reg.counter("g.c");
  obs::Gauge& g = reg.gauge("g.g");
  obs::LatencyHistogram& h = reg.histogram("g.h");
  c.add(2);
  g.set(4.0);
  h.record(8.0);
  reg.set_enabled(false);
  c.add(100);
  g.set(100.0);
  g.add(100.0);
  h.record(100.0);
  EXPECT_EQ(c.value(), 2u);
  EXPECT_EQ(g.value(), 4.0);
  EXPECT_EQ(h.count(), 1u);
  reg.set_enabled(true);
  c.add(1);
  EXPECT_EQ(c.value(), 3u);
}

TEST(MetricsRegistry, SnapshotJsonIsWellFormed) {
  obs::MetricsRegistry reg;
  reg.counter("snap.count").add(7);
  reg.gauge("snap.gauge").set(2.25);
  obs::LatencyHistogram& h = reg.histogram("snap.lat_us");
  for (int i = 1; i <= 100; ++i) h.record(i * 10.0);
  const std::string j = reg.snapshot_json();
  EXPECT_TRUE(valid_json(j)) << j;
  EXPECT_NE(j.find("\"name\": \"metrics\""), std::string::npos);
  EXPECT_NE(j.find("\"snap.count\": 7"), std::string::npos);
  EXPECT_NE(j.find("\"snap.lat_us.count\": 100"), std::string::npos);
  EXPECT_NE(j.find("\"snap.lat_us.p99_us\":"), std::string::npos);
}

TEST(MetricsRegistry, ConcurrentRecordingUnderSchedulerIsExact) {
  // The thread-safety stress: scheduler workers hammer one shared counter
  // and histogram while concurrently registering fresh names. Relaxed
  // atomics must still account every event exactly.
  obs::MetricsRegistry& reg = obs::metrics();
  obs::Counter& shared = reg.counter("stress.shared");
  obs::LatencyHistogram& hist = reg.histogram("stress.lat");
  const uint64_t c0 = shared.value();
  const uint64_t h0 = hist.count();
  constexpr int64_t kJobs = 2000;
  runtime::parallel_indexed(kJobs, 8, [&](int64_t i) {
    shared.add(1);
    hist.record(static_cast<double>(i % 4096));
    // Concurrent lookups: same-name resolution from many threads plus a
    // rotating set of fresh registrations.
    reg.counter("stress.shared").add(1);
    reg.counter("stress.dyn." + std::to_string(i % 13)).add(1);
  });
  EXPECT_EQ(shared.value() - c0, static_cast<uint64_t>(2 * kJobs));
  EXPECT_EQ(hist.count() - h0, static_cast<uint64_t>(kJobs));
  uint64_t dyn = 0;
  for (int k = 0; k < 13; ++k)
    dyn += reg.counter("stress.dyn." + std::to_string(k)).value();
  EXPECT_EQ(dyn, static_cast<uint64_t>(kJobs));
  EXPECT_TRUE(valid_json(reg.snapshot_json()));
}

// ---------- tracer ----------

TEST(Tracer, EmitsValidChromeTraceJsonAcrossThreads) {
  obs::Tracer& tr = obs::Tracer::global();
  tr.clear();
  tr.set_enabled(true);
  // Hostile names: quotes, backslashes, newlines must all be escaped.
  {
    obs::Span s("outer \"quoted\" \\slash\\\nnewline", "test");
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t)
      threads.emplace_back([t] {
        for (int i = 0; i < 5; ++i)
          obs::Span inner("worker " + std::to_string(t), "test");
      });
    for (auto& th : threads) th.join();
  }
  tr.instant("marker", "test");
  tr.set_enabled(false);
  EXPECT_EQ(tr.event_count(), 22u);  // 1 outer + 4*5 spans + 1 instant
  EXPECT_EQ(tr.dropped(), 0u);
  const std::string j = tr.to_json();
  EXPECT_TRUE(valid_json(j)) << j;
  EXPECT_NE(j.find("\"traceEvents\": ["), std::string::npos);
  EXPECT_NE(j.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(j.find("\"ph\": \"i\""), std::string::npos);
  EXPECT_NE(j.find("\\\"quoted\\\""), std::string::npos);
  // 5 distinct threads: main plus the 4 workers, densely numbered.
  EXPECT_NE(j.find("\"tid\": 5"), std::string::npos);
  EXPECT_EQ(j.find("\"tid\": 6"), std::string::npos);
  tr.clear();
}

TEST(Tracer, DisabledSpansRecordNothing) {
  obs::Tracer& tr = obs::Tracer::global();
  tr.clear();
  ASSERT_FALSE(tr.enabled());
  { obs::Span s("invisible", "test"); }
  // Enabling mid-span must not produce a half-armed event either: activity
  // is latched at construction.
  {
    obs::Span s("latched-off", "test");
    tr.set_enabled(true);
  }
  tr.set_enabled(false);
  EXPECT_EQ(tr.event_count(), 0u);
}

// ---------- logger ----------

TEST(Logger, LevelsGateAndSinkCaptures) {
  obs::Logger& lg = obs::Logger::global();
  std::vector<std::string> lines;
  lg.set_sink([&](obs::LogLevel, const std::string& m) { lines.push_back(m); });
  lg.set_level(obs::LogLevel::kInfo);
  obs::log_info("at-info");
  obs::log_debug("hidden-debug");
  lg.set_level(obs::LogLevel::kDebug);
  obs::log_debug("visible-debug");
  lg.set_level(obs::LogLevel::kQuiet);
  obs::log_info("hidden-info");
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0], "at-info");
  EXPECT_EQ(lines[1], "visible-debug");
  EXPECT_TRUE(lg.should_log(obs::LogLevel::kQuiet) == false);
  lg.set_sink(nullptr);
  lg.set_level(obs::LogLevel::kInfo);
}

TEST(Logger, ParseLevelRoundTripsAndThrows) {
  EXPECT_EQ(obs::parse_log_level("quiet"), obs::LogLevel::kQuiet);
  EXPECT_EQ(obs::parse_log_level("info"), obs::LogLevel::kInfo);
  EXPECT_EQ(obs::parse_log_level("debug"), obs::LogLevel::kDebug);
  EXPECT_STREQ(obs::to_string(obs::LogLevel::kDebug), "debug");
  EXPECT_THROW(obs::parse_log_level("verbose"), std::invalid_argument);
  EXPECT_THROW(obs::parse_log_level(""), std::invalid_argument);
}

TEST(Logger, InitFromEnvSetsLevel) {
  ::unsetenv("CORRECTNET_METRICS");
  ::unsetenv("CORRECTNET_TRACE");
  ::setenv("CORRECTNET_LOG", "debug", 1);
  obs::init_from_env();
  EXPECT_EQ(obs::Logger::global().level(), obs::LogLevel::kDebug);
  ::unsetenv("CORRECTNET_LOG");
  obs::Logger::global().set_level(obs::LogLevel::kInfo);
}

// ---------- server stats percentiles ----------

TEST(ServerStats, PercentilesComeFromRealLatencies) {
  // An untrained model is fine: the percentiles are a latency feature, not
  // an accuracy one.
  Rng rng(3);
  nn::Sequential model = models::lenet5(1, 28, 10, rng);
  analog::VariationModel none{analog::VariationKind::kNone, 0.0f};
  runtime::ChipFarmOptions fo;
  fo.instances = 1;
  fo.max_live = 1;
  runtime::ChipFarm farm(model, none, fo);
  runtime::InferenceServerOptions so;
  so.max_batch = 8;
  so.max_wait_us = 200;
  so.workers = 1;
  runtime::InferenceServer server(farm, so);
  data::DigitsSpec spec;
  spec.train_count = 1;
  spec.test_count = 40;
  data::SplitDataset ds = data::make_digits(spec);
  std::vector<std::future<Tensor>> futs;
  for (int64_t i = 0; i < 40; ++i) futs.push_back(server.submit(ds.test.image(i)));
  for (auto& f : futs) f.wait();
  server.shutdown();
  const runtime::ServerStats st = server.stats();
  EXPECT_EQ(st.requests, 40u);
  EXPECT_GT(st.max_latency_us, 0.0);
  EXPECT_LE(st.p50_latency_us, st.p99_latency_us);
  EXPECT_LE(st.p99_latency_us, st.p999_latency_us);
  EXPECT_LE(st.p999_latency_us, st.max_latency_us);
  // One formatting for all of it.
  const std::string sum = st.summary();
  EXPECT_NE(sum.find("p50"), std::string::npos);
  EXPECT_NE(sum.find("p999"), std::string::npos);
}

// ---------- the invariant: instrumentation never changes results ----------

TEST(ObsInvariant, CampaignReportByteIdenticalWithMetricsAndTracingOnOrOff) {
  // The load-bearing contract of the whole obs layer, on the axis most
  // sensitive to hidden state (remap matched pairs + stochastic read path):
  // a campaign run with metrics gated off and tracing disabled must produce
  // byte-for-byte the same report JSON as one with both fully on and
  // writing files.
  Rng rng(1);
  nn::Sequential model = models::lenet5(1, 28, 10, rng);
  data::DigitsSpec spec;
  spec.train_count = 1;
  spec.test_count = 48;
  data::SplitDataset ds = data::make_digits(spec);

  // Relative to the ctest working directory (the build tree).
  const std::string metrics_path = "test_obs_metrics.json";
  const std::string trace_path = "test_obs_trace.json";
  auto run_campaign = [&](bool instrumented) {
    faultsim::CampaignOptions co;
    co.chips = 2;
    co.seed = 77;
    co.batch_size = 32;
    co.parallel_scenarios = 2;
    co.dev.g_min = 1e-6f;
    co.dev.g_max = 1e-4f;
    co.dev.program_sigma = 0.1f;
    co.dev.readout.read_sigma = 0.05f;
    co.remap.enabled = true;
    if (instrumented) {
      co.metrics_out = metrics_path;
      co.trace_out = trace_path;
    }
    faultsim::Campaign c(co);
    c.add_model("baseline", model, false);
    c.add_fault(faultsim::fault_free());
    c.add_fault(faultsim::stuck_at(0.05));
    c.add_fault(faultsim::drift(100.0));
    faultsim::CampaignReport r = c.run(ds.test);
    r.wall_s = 0.0;
    return r.to_json();
  };

  obs::metrics().set_enabled(false);
  obs::Tracer::global().set_enabled(false);
  const std::string off = run_campaign(false);

  obs::metrics().set_enabled(true);
  obs::Tracer::global().clear();
  const std::string on = run_campaign(true);  // enables tracing itself
  obs::Tracer::global().set_enabled(false);
  obs::Tracer::global().clear();

  EXPECT_EQ(on, off);

  // The instrumented run's artifacts must be real: parseable JSON in the
  // right shapes, with campaign activity actually recorded.
  const std::string mj = slurp(metrics_path);
  ASSERT_FALSE(mj.empty());
  EXPECT_TRUE(valid_json(mj)) << mj;
  EXPECT_NE(mj.find("\"campaign.scenarios\":"), std::string::npos);
  EXPECT_NE(mj.find("\"farm.chip_builds\":"), std::string::npos);
  const std::string tj = slurp(trace_path);
  ASSERT_FALSE(tj.empty());
  EXPECT_TRUE(valid_json(tj)) << tj;
  EXPECT_NE(tj.find("\"traceEvents\": ["), std::string::npos);
  EXPECT_NE(tj.find("scenario "), std::string::npos);
}

TEST(ObsInvariant, ConfigKeysCoverObservability) {
  const auto& keys = faultsim::campaign_config_keys();
  auto has = [&](const char* k) {
    return std::find(keys.begin(), keys.end(), k) != keys.end();
  };
  EXPECT_TRUE(has("metrics_out"));
  EXPECT_TRUE(has("trace_out"));
  EXPECT_TRUE(has("log_level"));
  EXPECT_TRUE(has("statusz_port"));
  EXPECT_TRUE(has("metrics_stream"));
  EXPECT_TRUE(has("slo_p99_ms"));
  // And they parse end to end, including the loud failure on a bad level.
  core::KeyValueConfig cfg = core::KeyValueConfig::from_string(
      "stuck.rates = 0.01\nlog_level = info\nmetrics_out = \n");
  faultsim::campaign_from_config(cfg);
  core::KeyValueConfig bad =
      core::KeyValueConfig::from_string("stuck.rates = 0.01\nlog_level = loud\n");
  EXPECT_THROW(faultsim::campaign_from_config(bad), std::invalid_argument);
  obs::Logger::global().set_level(obs::LogLevel::kInfo);
}

}  // namespace
}  // namespace cn
