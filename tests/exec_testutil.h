// Shared helper for suites that assert the bit-exactness contract between
// the batched crossbar path and the scalar matvec reference. The contract is
// a property of the execution target: under an approximate ambient target
// (the CORRECTNET_TARGET=int8 CI matrix leg) those assertions are vacuously
// out of force, so the tests skip — loudly, with the target named — instead
// of failing. Per-target parity itself is proven with explicit targets in
// tests/test_crossbar_exec.cpp, which runs identically under every leg.
#pragma once

#include <gtest/gtest.h>

#include "exec/target.h"

#define CN_SKIP_UNLESS_BIT_EXACT_TARGET()                                  \
  do {                                                                     \
    const cn::exec::Target& cn_ambient = cn::exec::default_target();       \
    if (!cn_ambient.bit_exact())                                           \
      GTEST_SKIP() << "ambient execution target '" << cn_ambient.name()    \
                   << "' is approximate; the bit-exactness contract this " \
                      "test asserts is not in force";                      \
  } while (0)
