// Shared helpers for suites that assert the bit-exactness contract between
// execution paths (batched crossbar vs scalar matvec, fused vs unfused
// graphs). The contract is a property of the execution target: under an
// approximate ambient target (the CORRECTNET_TARGET=int8 CI matrix leg)
// those assertions are vacuously out of force, so the tests skip — loudly,
// with the target named — instead of failing. Per-target parity itself is
// proven with explicit targets in tests/test_crossbar_exec.cpp, which runs
// identically under every leg.
//
// expect_bitwise_equal / expect_within_ulps are the shared parity
// assertions: one failure per call with the first mismatching index, both
// values, the magnitude of the difference, and the mismatch count — instead
// of a per-element ASSERT_EQ spray.
#pragma once

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <string>

#include <gtest/gtest.h>

#include "exec/target.h"
#include "tensor/tensor.h"

namespace cn::testutil {

// Sign-adjusted integer image of a float: monotone in the IEEE-754 value
// order (with -0 mapping next to +0), so ulp distance is plain subtraction.
inline int64_t float_ordinal(float f) {
  int32_t i;
  std::memcpy(&i, &f, sizeof(i));
  return i >= 0 ? static_cast<int64_t>(i)
                : -static_cast<int64_t>(i & 0x7FFFFFFF);
}

inline int64_t ulp_distance(float a, float b) {
  if (std::isnan(a) || std::isnan(b))
    return std::numeric_limits<int64_t>::max();
  const int64_t d = float_ordinal(a) - float_ordinal(b);
  return d < 0 ? -d : d;
}

// Asserts got[i] and want[i] carry identical bit patterns for every i
// (strictly stronger than ==: a +0/-0 split fails, identical NaNs pass).
// One failure per call, carrying the diff geometry.
inline void expect_bitwise_equal(const float* got, const float* want,
                                 int64_t n, const std::string& what) {
  int64_t first = -1, mismatches = 0;
  for (int64_t i = 0; i < n; ++i) {
    if (std::memcmp(&got[i], &want[i], sizeof(float)) != 0) {
      if (first < 0) first = i;
      ++mismatches;
    }
  }
  if (mismatches == 0) return;
  ADD_FAILURE() << what << ": " << mismatches << "/" << n
                << " elements differ; first at [" << first << "]: got "
                << got[first] << ", want " << want[first] << " (|diff| "
                << std::abs(static_cast<double>(got[first]) - want[first])
                << ", " << ulp_distance(got[first], want[first]) << " ulps)";
}

inline void expect_bitwise_equal(const Tensor& got, const Tensor& want,
                                 const std::string& what) {
  ASSERT_TRUE(got.same_shape(want)) << what << ": shape mismatch (got "
                                    << got.size() << " elements, want "
                                    << want.size() << ")";
  expect_bitwise_equal(got.data(), want.data(), got.size(), what);
}

// Asserts every element pair is within `max_ulps` ulps OR within `abs_eps`
// absolute (the escape hatch for catastrophic cancellation near zero, where
// ulp distance explodes while the absolute error stays negligible). Reports
// the worst surviving element on failure.
inline void expect_within_ulps(const float* got, const float* want, int64_t n,
                               int64_t max_ulps, float abs_eps,
                               const std::string& what) {
  int64_t worst_i = -1, worst_ulps = -1, bad = 0;
  for (int64_t i = 0; i < n; ++i) {
    const int64_t u = ulp_distance(got[i], want[i]);
    if (u <= max_ulps) continue;
    if (std::abs(static_cast<double>(got[i]) - want[i]) <= abs_eps) continue;
    ++bad;
    if (u > worst_ulps) {
      worst_ulps = u;
      worst_i = i;
    }
  }
  if (bad == 0) return;
  ADD_FAILURE() << what << ": " << bad << "/" << n
                << " elements beyond " << max_ulps << " ulps (abs escape "
                << abs_eps << "); worst at [" << worst_i << "]: got "
                << got[worst_i] << ", want " << want[worst_i] << " (|diff| "
                << std::abs(static_cast<double>(got[worst_i]) - want[worst_i])
                << ", " << worst_ulps << " ulps)";
}

inline void expect_within_ulps(const Tensor& got, const Tensor& want,
                               int64_t max_ulps, float abs_eps,
                               const std::string& what) {
  ASSERT_TRUE(got.same_shape(want)) << what << ": shape mismatch (got "
                                    << got.size() << " elements, want "
                                    << want.size() << ")";
  expect_within_ulps(got.data(), want.data(), got.size(), max_ulps, abs_eps,
                     what);
}

}  // namespace cn::testutil

#define CN_SKIP_UNLESS_BIT_EXACT_TARGET()                                  \
  do {                                                                     \
    const cn::exec::Target& cn_ambient = cn::exec::default_target();       \
    if (!cn_ambient.bit_exact())                                           \
      GTEST_SKIP() << "ambient execution target '" << cn_ambient.name()    \
                   << "' is approximate; the bit-exactness contract this " \
                      "test asserts is not in force";                      \
  } while (0)
